// Tests for the front-end dump printers.

#include <gtest/gtest.h>

#include "src/ast/parser.h"
#include "src/cpg/dump.h"

namespace refscan {
namespace {

const char* kCode =
    "#define MAGIC 42\n"
    "struct widget { struct kref ref; int id; };\n"
    "static struct platform_driver w_driver = { .probe = w_probe, .remove = w_remove };\n"
    "static int w_probe(struct platform_device *pdev)\n"
    "{\n"
    "  struct device_node *np = of_find_node_by_path(\"/w\");\n"
    "  if (!np)\n"
    "    return -ENODEV;\n"
    "  of_node_put(np);\n"
    "  return 0;\n"
    "}\n";

TEST(DumpTest, Tokens) {
  SourceFile file("w.c", kCode);
  const std::string out = DumpTokens(file);
  EXPECT_NE(out.find("preproc"), std::string::npos);
  EXPECT_NE(out.find("keyword  struct"), std::string::npos);
  EXPECT_NE(out.find("ident"), std::string::npos);
  EXPECT_NE(out.find("eof"), std::string::npos);
}

TEST(DumpTest, Ast) {
  SourceFile file("w.c", kCode);
  const std::string out = DumpAst(ParseFile(file));
  EXPECT_NE(out.find("macro MAGIC"), std::string::npos);
  EXPECT_NE(out.find("struct widget"), std::string::npos);
  EXPECT_NE(out.find("field ref : struct kref"), std::string::npos);
  EXPECT_NE(out.find(".probe = w_probe"), std::string::npos);
  EXPECT_NE(out.find("function static w_probe"), std::string::npos);
  EXPECT_NE(out.find("if @7"), std::string::npos);
  EXPECT_NE(out.find("return @8"), std::string::npos);
}

TEST(DumpTest, Cfg) {
  SourceFile file("w.c", kCode);
  static TranslationUnit unit = ParseFile(file);
  const Cfg cfg = BuildCfg(*unit.FindFunction("w_probe"));
  const std::string out = DumpCfg(cfg);
  EXPECT_NE(out.find("cfg for w_probe"), std::string::npos);
  EXPECT_NE(out.find("entry"), std::string::npos);
  EXPECT_NE(out.find("cond"), std::string::npos);
  EXPECT_NE(out.find("->"), std::string::npos);
}

TEST(DumpTest, Cpg) {
  SourceFile file("w.c", kCode);
  static TranslationUnit unit = ParseFile(file);
  static const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  static const Cfg cfg = BuildCfg(*unit.FindFunction("w_probe"));
  const Cpg cpg = BuildCpg(cfg, kb);
  const std::string out = DumpCpg(cpg);
  EXPECT_NE(out.find("INC"), std::string::npos);
  EXPECT_NE(out.find("DEC"), std::string::npos);
  EXPECT_NE(out.find("NULLCHK"), std::string::npos);
  EXPECT_NE(out.find("api=of_find_node_by_path"), std::string::npos);
}

TEST(DumpTest, SemOpNamesComplete) {
  for (SemOp op : {SemOp::kIncrease, SemOp::kDecrease, SemOp::kAssign, SemOp::kDeref,
                   SemOp::kLock, SemOp::kUnlock, SemOp::kFree, SemOp::kNullCheck, SemOp::kReturn,
                   SemOp::kLoopHead}) {
    EXPECT_NE(SemOpName(op), "?");
  }
}

}  // namespace
}  // namespace refscan
