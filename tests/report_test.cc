// Unit tests for the ASCII table / chart renderers.

#include <gtest/gtest.h>

#include "src/report/table.h"

namespace refscan {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  Table t("Table X. Demo");
  t.Header({"Name", "Count"}, {Align::kLeft, Align::kRight});
  t.Row({"drivers", "588"});
  t.Row({"net", "152"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("Table X. Demo"), std::string::npos);
  EXPECT_NE(out.find("| Name"), std::string::npos);
  EXPECT_NE(out.find("588 |"), std::string::npos);
  // Right alignment: count column ends right before the separator.
  EXPECT_NE(out.find("|   588 |"), std::string::npos) << out;
}

TEST(TableTest, PadsShortRows) {
  Table t("");
  t.Header({"A", "B", "C"});
  t.Row({"x"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("| x |"), std::string::npos);
}

TEST(TableTest, SeparatorProducesRule) {
  Table t("");
  t.Header({"A"});
  t.Row({"1"});
  t.Separator();
  t.Row({"2"});
  const std::string out = t.Render();
  // 5 rules: top, under header, separator, bottom... count '+---' lines.
  int rules = 0;
  size_t pos = 0;
  while ((pos = out.find("+---", pos)) != std::string::npos) {
    ++rules;
    pos += 4;
  }
  EXPECT_EQ(rules, 4);
}

TEST(BarChartTest, ScalesToMax) {
  const std::string out = BarChart("chart", {{"a", 10.0}, {"b", 5.0}, {"c", 0.0}}, 10);
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("##########"), std::string::npos);  // full bar for max
  EXPECT_NE(out.find("#####"), std::string::npos);       // half bar
}

TEST(BarChartTest, EmptyDataDoesNotCrash) {
  const std::string out = BarChart("empty", {}, 10);
  EXPECT_NE(out.find("empty"), std::string::npos);
}

TEST(SeriesChartTest, RendersGrid) {
  std::vector<std::pair<int, double>> data;
  for (int year = 2005; year <= 2022; ++year) {
    data.emplace_back(year, static_cast<double>(year - 2004));
  }
  const std::string out = SeriesChart("growth", data, 8);
  EXPECT_NE(out.find("growth"), std::string::npos);
  EXPECT_NE(out.find("first=2005"), std::string::npos);
  EXPECT_NE(out.find("last=2022"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(SeriesChartTest, EmptyData) {
  const std::string out = SeriesChart("t", {}, 8);
  EXPECT_EQ(out, "t\n");
}

TEST(PctTest, Formats) {
  EXPECT_EQ(Pct(0.717), "71.7%");
  EXPECT_EQ(Pct(0.0), "0.0%");
  EXPECT_EQ(Pct(1.0), "100.0%");
}

}  // namespace
}  // namespace refscan
