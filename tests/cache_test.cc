// Incremental scan cache tests (src/cache, DESIGN.md §5.8).
//
// The contract under test: enabling `ScanOptions::cache_dir` can change how
// much work a scan does, but never what it outputs. Warm rescans must be
// byte-identical to cold scans at every thread count; corrupted, truncated
// or stale cache entries must degrade to a cold scan, never to a crash or a
// wrong report.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/ast/parser.h"
#include "src/cache/cache.h"
#include "src/cache/store.h"
#include "src/checkers/engine.h"
#include "src/corpus/generator.h"
#include "src/cpg/dump.h"
#include "src/kb/kb.h"

namespace refscan {
namespace {

namespace stdfs = std::filesystem;

// Fresh cache directory per test, removed on teardown.
class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cache_dir_ = (stdfs::temp_directory_path() /
                  (std::string("refscan_cache_test_") +
                   ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                     .string();
    stdfs::remove_all(cache_dir_);
  }
  void TearDown() override { stdfs::remove_all(cache_dir_); }

  std::string cache_dir_;
};

// A small tree with cross-file discovery (a wrapper in one file classifies
// from an API used in another) and real reports.
SourceTree SmallTree() {
  SourceTree tree;
  tree.Add("drivers/a/leak.c",
           "static int probe(struct device_node *np)\n"
           "{\n"
           "  struct device_node *child = of_get_parent(np);\n"
           "  return 0;\n"
           "}\n");
  tree.Add("drivers/b/wrapper.c",
           "static void my_grab(struct device_node *np)\n"
           "{\n"
           "  of_node_get(np);\n"
           "}\n");
  tree.Add("drivers/c/user.c",
           "static int attach(struct device_node *np)\n"
           "{\n"
           "  my_grab(np);\n"
           "  if (np == NULL)\n"
           "    return -EINVAL;\n"
           "  return 0;\n"
           "}\n");
  tree.Add("include/foo.h",
           "struct foo { int refcount; struct list_head list; };\n");
  return tree;
}

ScanResult ScanTree(const SourceTree& tree, const std::string& cache_dir, size_t jobs = 1,
                    bool interprocedural = false) {
  ScanOptions options;
  options.jobs = jobs;
  options.cache_dir = cache_dir;
  options.interprocedural = interprocedural;
  CheckerEngine engine(KnowledgeBase::BuiltIn(), options);
  return engine.Scan(tree);
}

void ExpectSameReports(const ScanResult& a, const ScanResult& b) {
  EXPECT_EQ(a.stats.files, b.stats.files);
  EXPECT_EQ(a.stats.functions, b.stats.functions);
  EXPECT_EQ(a.stats.discovered_apis, b.stats.discovered_apis);
  EXPECT_EQ(a.stats.refcounted_structs, b.stats.refcounted_structs);
  ASSERT_EQ(a.reports.size(), b.reports.size());
  EXPECT_EQ(ReportsToJson(a.reports), ReportsToJson(b.reports));
}

TEST_F(CacheTest, WarmRescanIsByteIdenticalAndSkipsAllWork) {
  const SourceTree tree = SmallTree();
  const ScanResult uncached = ScanTree(tree, /*cache_dir=*/"");
  EXPECT_GT(uncached.reports.size(), 0u);
  EXPECT_EQ(uncached.stats.cache_hits + uncached.stats.cache_misses, 0u);

  const ScanResult cold = ScanTree(tree, cache_dir_);
  ExpectSameReports(uncached, cold);
  EXPECT_EQ(cold.stats.cache_hits, 0u);
  EXPECT_EQ(cold.stats.cache_misses, tree.size());

  for (const size_t jobs : {size_t{1}, size_t{4}}) {
    const ScanResult warm = ScanTree(tree, cache_dir_, jobs);
    ExpectSameReports(uncached, warm);
    // Acceptance criterion: a 0-changed-files rescan skips parse+check for
    // every file.
    EXPECT_EQ(warm.stats.cache_hits, tree.size()) << "jobs=" << jobs;
    EXPECT_EQ(warm.stats.cache_misses, 0u) << "jobs=" << jobs;
    EXPECT_EQ(warm.stats.cache_parse_skips, tree.size()) << "jobs=" << jobs;
  }
}

TEST_F(CacheTest, CommentOnlyChangeInvalidatesOnlyThatFile) {
  SourceTree tree = SmallTree();
  ScanTree(tree, cache_dir_);  // prime

  // A comment changes the file's content hash but not its facts, so the KB
  // fingerprint is stable and every *other* file's reports stay hot.
  SourceTree edited = SmallTree();
  std::string text(tree.Find("drivers/a/leak.c")->text());
  edited.Add("drivers/a/leak.c", text + "// reviewed\n");

  const ScanResult uncached = ScanTree(edited, /*cache_dir=*/"");
  const ScanResult warm = ScanTree(edited, cache_dir_);
  ExpectSameReports(uncached, warm);
  EXPECT_EQ(warm.stats.cache_hits, edited.size() - 1);
  EXPECT_EQ(warm.stats.cache_misses, 1u);
  EXPECT_EQ(warm.stats.cache_parse_skips, edited.size() - 1);
}

TEST_F(CacheTest, DiscoveryChangeInvalidatesEveryReportShard) {
  ScanTree(SmallTree(), cache_dir_);  // prime

  // A new increase-API wrapper changes what discovery finds, so the KB
  // fingerprint moves and every stored report shard must be recomputed —
  // correctness over reuse.
  SourceTree edited = SmallTree();
  std::string text(edited.Find("drivers/b/wrapper.c")->text());
  edited.Add("drivers/b/wrapper.c",
             text +
                 "static void my_grab2(struct device_node *np)\n"
                 "{\n"
                 "  of_node_get(np);\n"
                 "}\n");

  const ScanResult uncached = ScanTree(edited, /*cache_dir=*/"");
  const ScanResult warm = ScanTree(edited, cache_dir_);
  ExpectSameReports(uncached, warm);
  EXPECT_EQ(warm.stats.cache_hits, 0u);
  EXPECT_EQ(warm.stats.cache_misses, edited.size());
}

TEST_F(CacheTest, CorruptedAndTruncatedObjectsActAsCold) {
  const SourceTree tree = SmallTree();
  const ScanResult cold = ScanTree(tree, cache_dir_);

  // Mangle every stored object: truncate the first, garbage the rest.
  size_t mangled = 0;
  for (const auto& entry : stdfs::recursive_directory_iterator(
           stdfs::path(cache_dir_) / "objects")) {
    if (!entry.is_regular_file()) {
      continue;
    }
    if (mangled == 0) {
      stdfs::resize_file(entry.path(), 5);
    } else {
      std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
      out << "not a cache object at all — just noise " << mangled;
    }
    ++mangled;
  }
  ASSERT_GT(mangled, 0u);

  const ScanResult warm = ScanTree(tree, cache_dir_);
  ExpectSameReports(cold, warm);
  EXPECT_EQ(warm.stats.cache_hits, 0u);
  EXPECT_EQ(warm.stats.cache_misses, tree.size());

  // And the re-stored objects serve the next scan again.
  const ScanResult rewarmed = ScanTree(tree, cache_dir_);
  EXPECT_EQ(rewarmed.stats.cache_hits, tree.size());
}

TEST_F(CacheTest, DifferentOptionsMissTheCache) {
  const SourceTree tree = SmallTree();
  ScanTree(tree, cache_dir_);  // prime with all patterns

  ScanOptions narrow;
  narrow.jobs = 1;
  narrow.cache_dir = cache_dir_;
  narrow.enabled_patterns = {2};
  CheckerEngine engine(KnowledgeBase::BuiltIn(), narrow);
  const ScanResult scoped = engine.Scan(tree);
  // Different enabled patterns → different options fingerprint → the primed
  // entries are invisible, not wrongly reused.
  EXPECT_EQ(scoped.stats.cache_hits, 0u);

  ScanOptions narrow_uncached = narrow;
  narrow_uncached.cache_dir.clear();
  CheckerEngine plain(KnowledgeBase::BuiltIn(), narrow_uncached);
  ExpectSameReports(plain.Scan(tree), scoped);
}

TEST_F(CacheTest, JobsDoNotChangeTheFingerprint) {
  ScanOptions a;
  a.jobs = 1;
  ScanOptions b;
  b.jobs = 8;
  EXPECT_EQ(ScanOptionsFingerprint(a), ScanOptionsFingerprint(b));
  // --ipa reuses plain-scan parses: same fingerprint by design.
  b.interprocedural = true;
  EXPECT_EQ(ScanOptionsFingerprint(a), ScanOptionsFingerprint(b));
  b.enabled_patterns = {1, 2};
  EXPECT_NE(ScanOptionsFingerprint(a), ScanOptionsFingerprint(b));
}

TEST_F(CacheTest, DialectAndNewFamilyOptionsChangeTheFingerprint) {
  ScanOptions base;
  ScanOptions with_dialect = base;
  with_dialect.dialects = {"uacpi"};
  EXPECT_NE(ScanOptionsFingerprint(base), ScanOptionsFingerprint(with_dialect));

  ScanOptions both = with_dialect;
  both.dialects = {"glib", "uacpi"};
  EXPECT_NE(ScanOptionsFingerprint(with_dialect), ScanOptionsFingerprint(both));

  ScanOptions extended = base;
  extended.enabled_patterns = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  EXPECT_NE(ScanOptionsFingerprint(base), ScanOptionsFingerprint(extended));
}

TEST_F(CacheTest, DialectScanMissesTheDialectlessCache) {
  const SourceTree tree = SmallTree();
  ScanTree(tree, cache_dir_);  // prime without any dialect

  ScanOptions with_dialect;
  with_dialect.jobs = 1;
  with_dialect.cache_dir = cache_dir_;
  with_dialect.dialects = {"glib"};
  CheckerEngine engine(KnowledgeBase::BuiltIn(), with_dialect);
  const ScanResult dialect_scan = engine.Scan(tree);
  // The dialect seeds the KB before discovery, so reusing dialect-less
  // entries would be wrong; the options fingerprint must keep them apart.
  EXPECT_EQ(dialect_scan.stats.cache_hits, 0u);

  ScanOptions uncached = with_dialect;
  uncached.cache_dir.clear();
  CheckerEngine plain(KnowledgeBase::BuiltIn(), uncached);
  ExpectSameReports(plain.Scan(tree), dialect_scan);
}

TEST_F(CacheTest, KbSnapshotRoundTripsDialectRegistries) {
  // tests_zero flags, refcount-field names and extra free functions all
  // live in the KB snapshot; losing any of them on a warm scan would
  // silently disable P10-P12.
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  ASSERT_TRUE(ApplyDialect(kb, "uacpi"));
  ASSERT_TRUE(ApplyDialect(kb, "glib"));
  const std::optional<KnowledgeBase> back = DeserializeKb(SerializeKb(kb));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(FingerprintKnowledgeBase(*back), FingerprintKnowledgeBase(kb));
  EXPECT_TRUE(back->IsRefcountField("reference_count"));
  EXPECT_TRUE(back->IsRefcountField("ref_count"));
  EXPECT_TRUE(back->IsFreeApi("uacpi_free"));
  EXPECT_TRUE(back->IsFreeApi("g_free"));
  const RefApiInfo* unref = back->FindApi("uacpi_shareable_unref");
  ASSERT_NE(unref, nullptr);
  EXPECT_TRUE(unref->tests_zero);

  // A KB without the dialects fingerprints differently — the registries
  // are part of the identity, not cosmetic.
  EXPECT_NE(FingerprintKnowledgeBase(KnowledgeBase::BuiltIn()), FingerprintKnowledgeBase(kb));
}

TEST_F(CacheTest, InterproceduralScanSharesTheCacheCorrectly) {
  const SourceTree tree = SmallTree();
  const ScanResult uncached = ScanTree(tree, /*cache_dir=*/"", 1, /*interprocedural=*/true);

  const ScanResult cold = ScanTree(tree, cache_dir_, 1, true);
  ExpectSameReports(uncached, cold);
  EXPECT_EQ(cold.stats.summarized_functions, uncached.stats.summarized_functions);

  // Warm --ipa rescan: summaries recompute (they are whole-tree) but every
  // parse comes from the cache and every report shard splices.
  const ScanResult warm = ScanTree(tree, cache_dir_, 1, true);
  ExpectSameReports(uncached, warm);
  EXPECT_EQ(warm.stats.cache_hits, tree.size());
  EXPECT_EQ(warm.stats.cache_parse_skips, tree.size());
  EXPECT_EQ(warm.stats.summarized_functions, uncached.stats.summarized_functions);

  // A plain scan after an --ipa scan still hits the parse cache (shared
  // options fingerprint) and computes its own (different-KB) reports.
  const ScanResult plain = ScanTree(tree, cache_dir_, 1, false);
  ExpectSameReports(ScanTree(tree, /*cache_dir=*/"", 1, false), plain);
}

TEST_F(CacheTest, IndexSkipsMalformedLines) {
  const SourceTree tree = SmallTree();
  ScanTree(tree, cache_dir_);
  ScanCache cache(cache_dir_);
  const size_t stored = cache.ReadIndex().size();
  ASSERT_GT(stored, 0u);

  std::ofstream index(stdfs::path(cache_dir_) / "index.tsv", std::ios::app);
  index << "garbage line without tabs\n\tstarts\twith\ttab\nkind\tonly-two-fields\n";
  index.close();
  EXPECT_EQ(cache.ReadIndex().size(), stored);
}

TEST_F(CacheTest, DisabledCacheNeverTouchesDisk) {
  ScanCache cache("");
  EXPECT_FALSE(cache.enabled());
  const CacheKey key = MakeFileKey("a.c", "int x;", 0);
  EXPECT_FALSE(cache.LoadFacts(key).has_value());
  cache.StoreFacts(key, DiscoveryFacts{}, "a.c");
  EXPECT_TRUE(cache.ReadIndex().empty());
}

TEST_F(CacheTest, FileKeySeparatesPathContentAndOptions) {
  const CacheKey base = MakeFileKey("a.c", "int x;", 1);
  EXPECT_NE(base, MakeFileKey("b.c", "int x;", 1));  // same content, new path
  EXPECT_NE(base, MakeFileKey("a.c", "int y;", 1));
  EXPECT_NE(base, MakeFileKey("a.c", "int x;", 2));
  EXPECT_EQ(base, MakeFileKey("a.c", "int x;", 1));
  EXPECT_EQ(base.Hex().size(), 32u);
}

TEST_F(CacheTest, UnitSerializationRoundTripsTheAst) {
  // A nontrivial file: control flow, loops, calls, structs, macros, globals.
  const SourceFile file("drivers/x/x.c",
                        "struct widget { int refcount; struct widget *next; };\n"
                        "#define for_each_w(w) for (w = head; w; w = w->next)\n"
                        "static struct widget *head;\n"
                        "static int scan(struct widget *start)\n"
                        "{\n"
                        "  struct widget *w = start;\n"
                        "  int n = 0;\n"
                        "  for_each_w(w) {\n"
                        "    if (!try_get(w))\n"
                        "      break;\n"
                        "    n += w->refcount;\n"
                        "    put_widget(w);\n"
                        "  }\n"
                        "  while (n > 10) {\n"
                        "    n = n - 1;\n"
                        "  }\n"
                        "  return n ? n : -EINVAL;\n"
                        "}\n");
  const TranslationUnit unit = ParseFile(file);
  const std::string bytes = SerializeUnit(unit);
  const std::optional<TranslationUnit> restored = DeserializeUnit(bytes);
  ASSERT_TRUE(restored.has_value());
  // DumpAst renders every node recursively, so equal dumps mean the tree
  // survived the round trip.
  EXPECT_EQ(DumpAst(unit), DumpAst(*restored));
  EXPECT_EQ(unit.path, restored->path);
}

TEST_F(CacheTest, TruncatedUnitBytesNeverParseAsAUnit) {
  const SourceFile file("a.c", "static void f(struct device_node *np) { of_node_get(np); }\n");
  const std::string bytes = SerializeUnit(ParseFile(file));
  // Every proper prefix must be rejected cleanly (bounds-checked reader).
  for (size_t len = 0; len < bytes.size(); len += 7) {
    EXPECT_FALSE(DeserializeUnit(std::string_view(bytes).substr(0, len)).has_value())
        << "prefix length " << len;
  }
  // Trailing junk is rejected too (AtEnd check).
  EXPECT_FALSE(DeserializeUnit(bytes + "x").has_value());
  EXPECT_TRUE(DeserializeUnit(bytes).has_value());
}

TEST_F(CacheTest, FactsRoundTripRebuildsAnIdenticalKb) {
  const SourceTree tree = SmallTree();
  KnowledgeBase fresh = KnowledgeBase::BuiltIn();
  KnowledgeBase replayed = KnowledgeBase::BuiltIn();
  std::vector<DiscoveryFacts> restored;
  for (const auto& [path, file] : tree.files()) {
    const DiscoveryFacts facts = ExtractDiscoveryFacts(ParseFile(file));
    const std::optional<DiscoveryFacts> back = DeserializeFacts(SerializeFacts(facts));
    ASSERT_TRUE(back.has_value()) << path;
    restored.push_back(*back);
  }
  for (int round = 0; round < 2; ++round) {
    size_t i = 0;
    for (const auto& [path, file] : tree.files()) {
      fresh.DiscoverFromUnit(ParseFile(file));
      replayed.DiscoverFromFacts(restored[i++]);
    }
  }
  EXPECT_EQ(FingerprintKnowledgeBase(fresh), FingerprintKnowledgeBase(replayed));
  EXPECT_EQ(fresh.apis().size(), replayed.apis().size());
  EXPECT_EQ(fresh.refcounted_structs().size(), replayed.refcounted_structs().size());
}

TEST_F(CacheTest, KbSnapshotRoundTripsTheWholeKb) {
  // The tree-level snapshot must fingerprint identically to the replayed
  // KB it was stored from — that equality is what lets a snapshot hit
  // replace both discovery rounds without perturbing stage 3's kb_fp keys.
  const SourceTree tree = SmallTree();
  KnowledgeBase replayed = KnowledgeBase::BuiltIn();
  for (int round = 0; round < 2; ++round) {
    for (const auto& [path, file] : tree.files()) {
      replayed.DiscoverFromUnit(ParseFile(file));
    }
  }
  const std::string bytes = SerializeKb(replayed);
  const std::optional<KnowledgeBase> back = DeserializeKb(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(FingerprintKnowledgeBase(*back), FingerprintKnowledgeBase(replayed));
  EXPECT_EQ(back->apis().size(), replayed.apis().size());
  EXPECT_EQ(back->smart_loops().size(), replayed.smart_loops().size());
  EXPECT_EQ(back->refcounted_structs().size(), replayed.refcounted_structs().size());
  const RefApiInfo* wrapper = back->FindApi("my_grab");
  ASSERT_NE(wrapper, nullptr);
  EXPECT_TRUE(wrapper->discovered);

  // Truncations must never deserialize into a partial KB.
  for (size_t len = 0; len < bytes.size(); len += 9) {
    EXPECT_FALSE(DeserializeKb(bytes.substr(0, len)).has_value()) << "prefix " << len;
  }
  EXPECT_FALSE(DeserializeKb(bytes + "x").has_value());
}

TEST_F(CacheTest, CorruptedKbSnapshotFallsBackToReplay) {
  const SourceTree tree = SmallTree();
  const ScanResult uncached = ScanTree(tree, /*cache_dir=*/"");
  ScanTree(tree, cache_dir_);  // prime

  // Garble every stored snapshot object: the warm scan must silently fall
  // back to the two replay rounds and still be byte-identical — and the
  // per-file artifacts keep hitting.
  size_t garbled = 0;
  for (const auto& entry : stdfs::recursive_directory_iterator(cache_dir_)) {
    if (entry.is_regular_file() && entry.path().extension() == ".kb") {
      std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
      out << "not a snapshot";
      ++garbled;
    }
  }
  EXPECT_EQ(garbled, 1u);

  const ScanResult warm = ScanTree(tree, cache_dir_);
  ExpectSameReports(uncached, warm);
  EXPECT_EQ(warm.stats.cache_hits, tree.size());
  EXPECT_EQ(warm.stats.cache_parse_skips, tree.size());
}

TEST_F(CacheTest, ReportsRoundTrip) {
  CachedFileReports entry;
  BugReport r;
  r.file = "drivers/a/leak.c";
  r.line = 3;
  r.anti_pattern = 2;
  r.function = "probe";
  r.object = "child";
  r.message = "acquired reference leaks on the NULL-check path";
  r.template_path = "F_start -> S_P(p0) -> F_end";
  entry.reports.push_back(r);
  entry.functions = 7;

  const std::optional<CachedFileReports> back = DeserializeReports(SerializeReports(entry));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->functions, 7u);
  ASSERT_EQ(back->reports.size(), 1u);
  EXPECT_EQ(ReportsToJson(back->reports), ReportsToJson(entry.reports));
}

TEST_F(CacheTest, DegradedFunctionsRoundTripThroughTheCache) {
  // v4 artifacts carry the quarantined-function list, so a warm hit must
  // reproduce the degraded section (and the exit-2) without re-parsing.
  CachedFileReports entry;
  entry.functions = 12;
  entry.degraded.push_back({"hopeless", 42, "9 unparseable statements in body"});
  entry.degraded.push_back({"also_bad", 99, "parse derailed inside body"});
  const std::optional<CachedFileReports> back = DeserializeReports(SerializeReports(entry));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->degraded.size(), 2u);
  EXPECT_EQ(back->degraded[0].name, "hopeless");
  EXPECT_EQ(back->degraded[0].line, 42u);
  EXPECT_EQ(back->degraded[0].what, "9 unparseable statements in body");
  EXPECT_EQ(back->degraded[1].name, "also_bad");

  // Cold/warm scans of a tree with a quarantined function agree end-to-end.
  SourceTree tree;
  tree.Add("drivers/q/q.c",
           "int fine(void) { return 1; }\n"
           "int hopeless(void) {\n"
           "  @@ 1$ !! 2?? ;\n"
           "  @@ 3$ !! 4?? ;\n"
           "  @@ 5$ !! 6?? ;\n"
           "  @@ 7$ !! 8?? ;\n"
           "}\n");
  const ScanResult cold = ScanTree(tree, cache_dir_);
  const ScanResult warm = ScanTree(tree, cache_dir_);
  EXPECT_EQ(warm.stats.cache_hits, tree.size());
  EXPECT_EQ(warm.stats.cache_parse_skips, tree.size());
  ASSERT_EQ(cold.degraded_functions.size(), 1u);
  ASSERT_EQ(warm.degraded_functions.size(), 1u);
  EXPECT_EQ(warm.degraded_functions[0].function, cold.degraded_functions[0].function);
  EXPECT_EQ(warm.degraded_functions[0].line, cold.degraded_functions[0].line);
  EXPECT_EQ(warm.degraded_functions[0].what, cold.degraded_functions[0].what);
  EXPECT_EQ(warm.stats.functions_degraded, 1u);
  EXPECT_EQ(ScanExitCodeFor(cold), kExitDegraded);
  EXPECT_EQ(ScanExitCodeFor(warm), kExitDegraded);
}

TEST_F(CacheTest, FullCorpusColdWarmIdentical) {
  // The integration-scale check: the whole synthetic kernel corpus, cold
  // then warm, byte-identical with a full cache hit.
  const Corpus corpus = GenerateKernelCorpus();
  const ScanResult cold = ScanTree(corpus.tree, cache_dir_, /*jobs=*/0);
  EXPECT_GT(cold.reports.size(), 0u);
  const ScanResult warm = ScanTree(corpus.tree, cache_dir_, /*jobs=*/0);
  ExpectSameReports(cold, warm);
  EXPECT_EQ(warm.stats.cache_hits, corpus.tree.size());
  EXPECT_EQ(warm.stats.cache_parse_skips, corpus.tree.size());
}

// ---- object-store backends (src/cache/store, DESIGN.md §5.13) ----------

TEST_F(CacheTest, LocalStoreSurvivesConcurrentWritersFromManyProcesses) {
  // N processes append to one index.tsv concurrently. Every line must land
  // intact (single O_APPEND write under PIPE_BUF — no torn or interleaved
  // lines) and every object must load back byte-exact.
  constexpr int kWriters = 8;
  constexpr int kObjectsPerWriter = 40;
  {
    LocalStore warmup(cache_dir_);  // create the directory before forking
    ASSERT_TRUE(warmup.ok());
  }
  std::vector<pid_t> children;
  for (int w = 0; w < kWriters; ++w) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      LocalStore store(cache_dir_);
      if (!store.ok()) {
        _exit(2);
      }
      for (int i = 0; i < kObjectsPerWriter; ++i) {
        const std::string name =
            "deadbeef" + std::to_string(w) + "f" + std::to_string(i) + ".facts";
        store.Put(name, "blob-" + std::to_string(w) + "-" + std::to_string(i), "facts",
                  "writer" + std::to_string(w));
      }
      _exit(0);
    }
    children.push_back(pid);
  }
  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }
  LocalStore store(cache_dir_);
  const std::vector<CacheIndexEntry> index = store.Index();
  EXPECT_EQ(index.size(), static_cast<size_t>(kWriters * kObjectsPerWriter));
  for (const CacheIndexEntry& e : index) {
    EXPECT_EQ(e.kind, "facts");
    EXPECT_NE(e.source.find("writer"), std::string::npos) << e.source;
  }
  std::string blob;
  ASSERT_TRUE(store.Get("deadbeef3f7.facts", blob));
  EXPECT_EQ(blob, "blob-3-7");
}

TEST_F(CacheTest, CacheGcEvictsLruObjectsDownToTheByteBudget) {
  LocalStore store(cache_dir_);
  ASSERT_TRUE(store.ok());
  // Object names carry the `objects/` fan-out prefix, exactly like the
  // names ScanCache generates — RunCacheGc only walks that subtree.
  for (int i = 0; i < 10; ++i) {
    store.Put("objects/ca/fe" + std::to_string(i) + ".unit", std::string(100, 'a' + i), "unit",
              "f" + std::to_string(i) + ".c");
  }
  // Pin a deterministic LRU order: object i's mtime = epoch + i seconds
  // (Put order is too fast for mtime granularity to separate).
  const std::vector<CacheIndexEntry> before = store.Index();
  ASSERT_EQ(before.size(), 10u);
  for (size_t i = 0; i < before.size(); ++i) {
    const stdfs::path obj = stdfs::path(cache_dir_) / before[i].object;
    ASSERT_TRUE(stdfs::exists(obj)) << obj;
    stdfs::last_write_time(obj,
                           stdfs::file_time_type(std::chrono::seconds(1000000 + i)));
  }

  const CacheGcStats gc = RunCacheGc(cache_dir_, 450);
  EXPECT_EQ(gc.kept_objects, 4u);  // 4 * 100 <= 450 < 5 * 100
  EXPECT_EQ(gc.kept_bytes, 400u);
  EXPECT_EQ(gc.evicted_objects, 6u);
  EXPECT_EQ(gc.evicted_bytes, 600u);

  // The oldest six are gone, the newest four still load; the index was
  // compacted to exactly the survivors.
  LocalStore after(cache_dir_);
  std::string blob;
  for (int i = 0; i < 6; ++i) {
    EXPECT_FALSE(after.Get("objects/ca/fe" + std::to_string(i) + ".unit", blob)) << i;
  }
  for (int i = 6; i < 10; ++i) {
    EXPECT_TRUE(after.Get("objects/ca/fe" + std::to_string(i) + ".unit", blob)) << i;
    EXPECT_EQ(blob, std::string(100, 'a' + i));
  }
  EXPECT_EQ(after.Index().size(), 4u);
}

TEST_F(CacheTest, CacheServerServesGetsAndPutsAcrossClients) {
  const std::string socket = cache_dir_ + ".sock";
  CacheServer server(cache_dir_, socket);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  RemoteStore writer(socket);
  writer.Put("feed0001.facts", "shared-blob", "facts", "a.c");
  std::string blob;
  ASSERT_TRUE(writer.Get("feed0001.facts", blob));
  EXPECT_EQ(blob, "shared-blob");

  // A second client (a different "process" in fleet terms) sees the same
  // object: the store is shared server-side, not per-connection.
  RemoteStore reader(socket);
  blob.clear();
  ASSERT_TRUE(reader.Get("feed0001.facts", blob));
  EXPECT_EQ(blob, "shared-blob");
  EXPECT_FALSE(reader.Get("feed0002.facts", blob));  // miss, not error

  EXPECT_EQ(server.puts(), 1u);
  EXPECT_EQ(server.gets(), 3u);
  EXPECT_EQ(server.hits(), 2u);
  server.Stop();
  ::unlink(socket.c_str());
}

TEST_F(CacheTest, CorruptServerObjectDegradesToMissNotWrongFacts) {
  const std::string socket = cache_dir_ + ".sock";
  CacheServer server(cache_dir_, socket);
  ASSERT_TRUE(server.Start());

  ScanCache cache(std::make_shared<RemoteStore>(socket));
  ASSERT_TRUE(cache.enabled());
  const CacheKey key = MakeFileKey("a.c", "int x;\n", 1);
  DiscoveryFacts facts;
  cache.StoreFacts(key, facts, "a.c");
  ASSERT_TRUE(cache.LoadFacts(key).has_value());

  // Flip bytes in the stored object on disk, behind the server's back.
  bool corrupted = false;
  for (const auto& entry : stdfs::recursive_directory_iterator(cache_dir_)) {
    if (entry.is_regular_file() && entry.path().extension() == ".facts") {
      std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
      out << "garbage bytes, definitely not a cache artifact";
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted);

  ScanCache fresh(std::make_shared<RemoteStore>(socket));
  EXPECT_FALSE(fresh.LoadFacts(key).has_value());
  EXPECT_EQ(fresh.corrupt_loads(), 1u);
  server.Stop();
  ::unlink(socket.c_str());
}

TEST_F(CacheTest, RemoteStoreReconnectsAcrossAServerRestart) {
  const std::string socket = cache_dir_ + ".sock";
  auto server = std::make_unique<CacheServer>(cache_dir_, socket);
  ASSERT_TRUE(server->Start());

  // A patient client: enough backoff budget to outlive the bounce below.
  BackoffPolicy backoff;
  backoff.attempts = 10;
  backoff.base_delay_ms = 1;
  backoff.max_delay_ms = 5;
  RemoteStore client(socket, backoff);
  client.Put("feed0003.facts", "durable-blob", "facts", "a.c");
  std::string blob;
  ASSERT_TRUE(client.Get("feed0003.facts", blob));

  // Bounce the server. The client's connection is now a dead fd; the next
  // call must reconnect (one replay — get is idempotent) and hit the object
  // the first server persisted to disk.
  server.reset();
  ::unlink(socket.c_str());
  server = std::make_unique<CacheServer>(cache_dir_, socket);
  ASSERT_TRUE(server->Start());

  blob.clear();
  EXPECT_TRUE(client.Get("feed0003.facts", blob));
  EXPECT_EQ(blob, "durable-blob");
  server->Stop();
  ::unlink(socket.c_str());
}

TEST_F(CacheTest, CacheServerDrainWakesParkedReadersAndRefusesNew) {
  const std::string socket = cache_dir_ + ".sock";
  CacheServer server(cache_dir_, socket);
  ASSERT_TRUE(server.Start());

  // One client with a completed put, then parked idle (its connection body
  // is blocked in a frame read server-side); one hostile client parked
  // mid-frame. Drain must wake both without hanging and finish in budget.
  RemoteStore parked(socket);
  parked.Put("feed0004.facts", "drained-blob", "facts", "a.c");
  std::string blob;
  ASSERT_TRUE(parked.Get("feed0004.facts", blob));
  OwnedFd midframe = UnixConnect(socket);
  ASSERT_TRUE(midframe.valid());
  const char partial[] = {50, 0, 0, 0, 1};  // promises 50 bytes, sends none
  ASSERT_EQ(::write(midframe.get(), partial, sizeof(partial)),
            static_cast<ssize_t>(sizeof(partial)));

  EXPECT_TRUE(server.Drain(5000));
  // The listener is gone and the object survived the drain.
  EXPECT_FALSE(UnixConnect(socket).valid());
  LocalStore store(cache_dir_);
  blob.clear();
  EXPECT_TRUE(store.Get("feed0004.facts", blob));
  EXPECT_EQ(blob, "drained-blob");
}

TEST_F(CacheTest, UnreachableCacheServerDegradesEveryCallToAMiss) {
  ScanCache cache(std::make_shared<RemoteStore>("/tmp/refscan-no-such-server.sock"));
  ASSERT_TRUE(cache.enabled());
  const CacheKey key = MakeFileKey("a.c", "int x;\n", 1);
  DiscoveryFacts facts;
  cache.StoreFacts(key, facts, "a.c");          // swallowed, no throw
  EXPECT_FALSE(cache.LoadFacts(key).has_value());  // miss, no throw
}

}  // namespace
}  // namespace refscan
