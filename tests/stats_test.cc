// Direct unit tests for the statistics module over hand-built datasets
// (histmine_test covers the full mined-pipeline path; these pin down the
// arithmetic on controlled inputs).

#include <gtest/gtest.h>

#include "src/stats/stats.h"

namespace refscan {
namespace {

MinedBug Bug(HistBugKind kind, bool leak, const char* subsystem, int fixed_release,
             int introduced_release = -1, bool uad = false) {
  MinedBug bug;
  bug.kind = kind;
  bug.is_leak = leak;
  bug.is_uad = uad;
  bug.subsystem = subsystem;
  bug.fixed_release = fixed_release;
  bug.introduced_release = introduced_release;
  return bug;
}

TEST(TaxonomyTest, CountsAndFractions) {
  std::vector<MinedBug> dataset = {
      Bug(HistBugKind::kMissingDecIntra, true, "drivers", 80),
      Bug(HistBugKind::kMissingDecIntra, true, "drivers", 80),
      Bug(HistBugKind::kMissingDecInter, true, "net", 80),
      Bug(HistBugKind::kMisplacedDec, false, "fs", 80, -1, true),
      Bug(HistBugKind::kMissingIncIntra, false, "drivers", 80),
  };
  const Taxonomy tax = TaxonomyBreakdown(dataset);
  EXPECT_EQ(tax.total, 5);
  EXPECT_EQ(tax.leak, 3);
  EXPECT_EQ(tax.uaf, 2);
  EXPECT_EQ(tax.uad, 1);
  EXPECT_EQ(tax.MissingDec(), 3);
  EXPECT_EQ(tax.MissingInc(), 1);
  EXPECT_DOUBLE_EQ(tax.Fraction(tax.leak), 0.6);
  EXPECT_DOUBLE_EQ(Taxonomy{}.Fraction(3), 0.0);  // empty dataset: no division
}

TEST(GrowthTrendTest, CountsByFixedYear) {
  const auto& timeline = ReleaseTimeline();
  // Release 0 is v2.6.12 (2005); the last release is v6.1 (2022).
  std::vector<MinedBug> dataset = {
      Bug(HistBugKind::kMissingDecIntra, true, "drivers", 0),
      Bug(HistBugKind::kMissingDecIntra, true, "drivers", 0),
      Bug(HistBugKind::kMissingDecIntra, true, "drivers",
          static_cast<int>(timeline.size()) - 1),
  };
  const auto trend = GrowthTrend(dataset);
  EXPECT_EQ(trend.at(2005), 2);
  EXPECT_EQ(trend.at(2022), 1);
  EXPECT_EQ(trend.size(), 2u);
}

TEST(SubsystemBreakdownTest, SortsAndComputesDensity) {
  std::vector<MinedBug> dataset;
  for (int i = 0; i < 10; ++i) {
    dataset.push_back(Bug(HistBugKind::kMissingDecIntra, true, "drivers", 80));
  }
  for (int i = 0; i < 3; ++i) {
    dataset.push_back(Bug(HistBugKind::kMissingDecIntra, true, "block", 80));
  }
  const auto breakdown = SubsystemBreakdown(dataset);
  ASSERT_GE(breakdown.size(), 2u);
  EXPECT_EQ(breakdown[0].name, "drivers");
  EXPECT_EQ(breakdown[0].bugs, 10);
  // block: 3 bugs / 65 KLOC — far denser than drivers' 10 / 12000.
  const SubsystemStats* block = nullptr;
  for (const SubsystemStats& s : breakdown) {
    if (s.name == "block") {
      block = &s;
    }
  }
  ASSERT_NE(block, nullptr);
  EXPECT_NEAR(block->density, 3.0 / 65.0, 1e-9);
  EXPECT_GT(block->density, breakdown[0].density);
}

TEST(SubsystemBreakdownTest, UnknownSubsystemStillListed) {
  std::vector<MinedBug> dataset = {
      Bug(HistBugKind::kMissingDecIntra, true, "staging", 80),
  };
  const auto breakdown = SubsystemBreakdown(dataset);
  bool found = false;
  for (const SubsystemStats& s : breakdown) {
    if (s.name == "staging") {
      found = true;
      EXPECT_EQ(s.bugs, 1);
      EXPECT_DOUBLE_EQ(s.density, 0.0);  // no size data
    }
  }
  EXPECT_TRUE(found);
}

TEST(LifetimeTest, UntaggedBugsAreExcluded) {
  std::vector<MinedBug> dataset = {
      Bug(HistBugKind::kMissingDecIntra, true, "drivers", 80, -1),
      Bug(HistBugKind::kMissingDecIntra, true, "drivers", 80, 10),
  };
  const LifetimeStats stats = LifetimeAnalysis(dataset);
  EXPECT_EQ(stats.total, 2);
  EXPECT_EQ(stats.with_fixes_tag, 1);
  EXPECT_EQ(stats.spans.size(), 1u);
}

TEST(LifetimeTest, SpanClassification) {
  const int v26 = FirstReleaseOfMajor(2);
  const int v3 = FirstReleaseOfMajor(3);
  const int v4 = FirstReleaseOfMajor(4);
  const int v5 = FirstReleaseOfMajor(5);
  const int v6 = FirstReleaseOfMajor(6);
  std::vector<MinedBug> dataset = {
      Bug(HistBugKind::kMissingDecIntra, true, "drivers", v5 + 3, v26),       // ancient
      Bug(HistBugKind::kMisplacedDec, false, "drivers", v5 + 5, v26 + 1),     // ancient + UAF
      Bug(HistBugKind::kMissingDecIntra, true, "drivers", v5 + 2, v3),        // v3 -> v5
      Bug(HistBugKind::kMissingDecIntra, true, "drivers", v5 + 2, v4),        // v4 -> v5
      Bug(HistBugKind::kMissingDecIntra, true, "drivers", v5 + 4, v5),        // within v5
      Bug(HistBugKind::kMissingDecIntra, true, "drivers", v6, v5),            // v5 -> v6
  };
  const LifetimeStats stats = LifetimeAnalysis(dataset);
  EXPECT_EQ(stats.ancient_to_modern, 2);
  EXPECT_EQ(stats.span_v3_to_v5, 1);
  EXPECT_EQ(stats.span_v4_to_v5, 1);
  EXPECT_EQ(stats.within_v5, 1);
  // The two ancient bugs lived ~14 years: both > 10y, one UAF.
  EXPECT_EQ(stats.over_ten_years, 2);
  EXPECT_EQ(stats.over_ten_years_uaf, 1);
  EXPECT_GE(stats.max_releases_infected, v5 + 3 - v26 + 1);
  EXPECT_GT(stats.mean_releases_infected, 1.0);
}

TEST(LifetimeTest, OneYearBoundaryUsesFractionalTime) {
  const auto& timeline = ReleaseTimeline();
  // Two adjacent releases are well under a year apart.
  std::vector<MinedBug> dataset = {
      Bug(HistBugKind::kMissingDecIntra, true, "drivers", 5, 4),
  };
  (void)timeline;
  const LifetimeStats stats = LifetimeAnalysis(dataset);
  EXPECT_EQ(stats.over_one_year, 0);
}

}  // namespace
}  // namespace refscan
