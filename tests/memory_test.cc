// Tests for the hot-path memory layer (DESIGN.md §5.11): global string
// interner determinism under concurrency, and arena reset/reuse semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/support/arena.h"
#include "src/support/interner.h"

namespace refscan {
namespace {

// ---------------------------------------------------------------------------
// Interner

TEST(InternerTest, EmptyStringIsSymbolZero) {
  EXPECT_TRUE(Intern("").empty());
  EXPECT_EQ(Intern("").id(), 0u);
  EXPECT_EQ(Symbol().view(), "");
  EXPECT_STREQ(Symbol().c_str(), "");
}

TEST(InternerTest, RoundTripAndIdentity) {
  const Symbol a = Intern("refcount_inc");
  const Symbol b = Intern("refcount_inc");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.view(), "refcount_inc");
  EXPECT_STREQ(a.c_str(), "refcount_inc");
  EXPECT_NE(a, Intern("refcount_dec"));
}

TEST(InternerTest, FindSymbolDoesNotInsert) {
  const size_t before = InternedSymbolCount();
  EXPECT_TRUE(FindSymbol("InternerTest.never_interned_text").empty());
  EXPECT_EQ(InternedSymbolCount(), before);
  const Symbol s = Intern("InternerTest.now_interned");
  EXPECT_EQ(FindSymbol("InternerTest.now_interned"), s);
}

TEST(InternerTest, SymbolOrderingIsTextOrder) {
  // operator< must compare text, not ids: intern in reverse-lexical order so
  // an id-ordered comparison would give the opposite answer.
  const Symbol z = Intern("InternerTest.order.zz");
  const Symbol a = Intern("InternerTest.order.aa");
  EXPECT_LT(a, z);
  EXPECT_FALSE(z < a);
}

// The determinism contract (interner.h): one global table, one id per text.
// Concurrent interning of the same working set from many threads — in
// per-thread shuffled orders, mimicking `--jobs N` parse workers hitting the
// same identifiers — must agree on every text -> id mapping and must create
// each symbol exactly once.
TEST(InternerTest, ConcurrentInternIsDeterministicAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kStrings = 500;

  std::vector<std::string> words;
  words.reserve(kStrings);
  for (int i = 0; i < kStrings; ++i) {
    words.push_back("InternerTest.concurrent." + std::to_string(i));
  }

  const size_t count_before = InternedSymbolCount();
  std::vector<std::map<std::string, uint32_t>> per_thread(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &words, &per_thread] {
      // Each thread walks the word list at a different stride (coprime with
      // kStrings, so every word is visited) — the first-toucher of any given
      // word then varies across threads.
      constexpr int kStrides[kThreads] = {1, 3, 7, 9, 11, 13, 17, 19};
      const int stride = kStrides[t];
      for (int i = 0; i < kStrings; ++i) {
        const std::string& w = words[static_cast<size_t>((i * stride) % kStrings)];
        per_thread[static_cast<size_t>(t)][w] = Intern(w).id();
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }

  // Exactly kStrings fresh symbols, no duplicates from racing first-touches.
  EXPECT_EQ(InternedSymbolCount(), count_before + kStrings);
  // Every thread observed the identical text -> id table.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(per_thread[0], per_thread[static_cast<size_t>(t)]) << "thread " << t;
  }
  // And a serial re-intern agrees with the concurrent result.
  for (const auto& [text, id] : per_thread[0]) {
    EXPECT_EQ(Intern(text).id(), id);
    EXPECT_EQ(Symbol(id).view(), text);
  }
}

TEST(SymbolSetTest, MembershipOnly) {
  SymbolSet set;
  EXPECT_TRUE(set.empty());
  set.insert(Intern("np"));
  set.insert(Intern("dev"));
  set.insert(Intern("np"));  // duplicate
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(Intern("np")));
  EXPECT_TRUE(set.contains("dev"));
  EXPECT_FALSE(set.contains("SymbolSetTest.absent"));
}

// ---------------------------------------------------------------------------
// Arena

TEST(ArenaTest, AddressesStableAcrossGrowth) {
  Arena arena;
  std::vector<int*> ptrs;
  // Enough to force several block growths past the initial 8KB block.
  for (int i = 0; i < 100000; ++i) {
    ptrs.push_back(arena.New<int>(i));
  }
  EXPECT_GT(arena.block_count(), 1u);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_EQ(*ptrs[static_cast<size_t>(i)], i);
  }
}

TEST(ArenaTest, AllocateRespectsAlignment) {
  Arena arena;
  arena.Allocate(1, 1);  // misalign the bump pointer
  void* p8 = arena.Allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p8) % 8, 0u);
  arena.Allocate(3, 1);
  void* p64 = arena.Allocate(64, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p64) % 64, 0u);
}

TEST(ArenaTest, CopyStringIsNulTerminated) {
  Arena arena;
  const std::string_view copy = arena.CopyString("kobject_get");
  EXPECT_EQ(copy, "kobject_get");
  EXPECT_EQ(copy.data()[copy.size()], '\0');
  // Not a view of the input: the arena owns its bytes.
  const std::string src = "transient";
  const std::string_view owned = arena.CopyString(src);
  EXPECT_NE(owned.data(), src.data());
  EXPECT_EQ(owned, "transient");
}

TEST(ArenaTest, ResetReusesLargestBlock) {
  Arena arena;
  for (int i = 0; i < 50000; ++i) {
    arena.New<uint64_t>(static_cast<uint64_t>(i));
  }
  const size_t used_before = arena.bytes_used();
  EXPECT_GT(used_before, 0u);
  EXPECT_GT(arena.block_count(), 1u);

  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  // Reset keeps exactly the largest block for reuse.
  EXPECT_EQ(arena.block_count(), 1u);
  const size_t reserved_after_reset = arena.bytes_reserved();
  EXPECT_GT(reserved_after_reset, 0u);

  // A same-shaped unit re-parsed into the reset arena must fit in the kept
  // block's capacity without growing the chain (the steady-state rescan
  // allocates zero fresh blocks until it outgrows the previous peak).
  const size_t fits = reserved_after_reset / sizeof(uint64_t);
  for (size_t i = 0; i < fits; ++i) {
    arena.New<uint64_t>(i);
  }
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_EQ(arena.bytes_reserved(), reserved_after_reset);
}

TEST(ArenaTest, ResetThenOutgrowAllocatesFreshBlock) {
  Arena arena;
  arena.Allocate(16, 8);
  arena.Reset();
  const size_t reserved = arena.bytes_reserved();
  // Exceed the kept block: the chain must grow, previous contents untouched.
  arena.Allocate(reserved + 1024, 8);
  EXPECT_GT(arena.block_count(), 1u);
  EXPECT_GT(arena.bytes_reserved(), reserved);
}

TEST(ArenaVecTest, GrowsLikeVector) {
  Arena arena;
  ArenaVec<int> vec;
  EXPECT_TRUE(vec.empty());
  for (int i = 0; i < 1000; ++i) {
    vec.push_back(i, arena);
  }
  ASSERT_EQ(vec.size(), 1000u);
  EXPECT_EQ(vec.front(), 0);
  EXPECT_EQ(vec.back(), 999);
  int expect = 0;
  for (const int v : vec) {
    EXPECT_EQ(v, expect++);
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(vec[static_cast<size_t>(i)], i);
  }
}

}  // namespace
}  // namespace refscan
