// Tests for the Unix-socket frame transport (src/support/ipc) that the
// sharded scan and the cache server both ride on.

#include "src/support/ipc.h"

#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace refscan {
namespace {

std::string TestSocketPath(const char* tag) {
  return "/tmp/refscan-ipc-test-" + std::to_string(::getpid()) + "-" + tag + ".sock";
}

TEST(IpcTest, FrameRoundTripOverSocket) {
  const std::string path = TestSocketPath("roundtrip");
  std::string error;
  OwnedFd listener = UnixListen(path, &error);
  ASSERT_TRUE(listener.valid()) << error;

  std::thread client([&] {
    OwnedFd conn = UnixConnect(path);
    ASSERT_TRUE(conn.valid());
    ASSERT_TRUE(SendFrame(conn.get(), 7, "hello frames"));
    uint8_t type = 0;
    std::string payload;
    ASSERT_EQ(RecvFrame(conn.get(), type, payload), RecvOutcome::kFrame);
    EXPECT_EQ(type, 9);
    EXPECT_EQ(payload, "reply");
  });

  OwnedFd server_conn = UnixAccept(listener.get(), 5000, &error);
  ASSERT_TRUE(server_conn.valid()) << error;
  uint8_t type = 0;
  std::string payload;
  ASSERT_EQ(RecvFrame(server_conn.get(), type, payload), RecvOutcome::kFrame);
  EXPECT_EQ(type, 7);
  EXPECT_EQ(payload, "hello frames");
  ASSERT_TRUE(SendFrame(server_conn.get(), 9, "reply"));
  client.join();
  ::unlink(path.c_str());
}

TEST(IpcTest, EmptyPayloadAndBackToBackFrames) {
  const std::string path = TestSocketPath("backtoback");
  OwnedFd listener = UnixListen(path);
  ASSERT_TRUE(listener.valid());

  std::thread client([&] {
    OwnedFd conn = UnixConnect(path);
    ASSERT_TRUE(conn.valid());
    // Several frames in a row before the peer reads any: framing must not
    // depend on lockstep reads.
    ASSERT_TRUE(SendFrame(conn.get(), 1, ""));
    ASSERT_TRUE(SendFrame(conn.get(), 2, std::string(100000, 'x')));
    ASSERT_TRUE(SendFrame(conn.get(), 3, "tail"));
  });

  OwnedFd conn = UnixAccept(listener.get(), 5000);
  ASSERT_TRUE(conn.valid());
  uint8_t type = 0;
  std::string payload;
  ASSERT_EQ(RecvFrame(conn.get(), type, payload), RecvOutcome::kFrame);
  EXPECT_EQ(type, 1);
  EXPECT_TRUE(payload.empty());
  ASSERT_EQ(RecvFrame(conn.get(), type, payload), RecvOutcome::kFrame);
  EXPECT_EQ(type, 2);
  EXPECT_EQ(payload.size(), 100000u);
  ASSERT_EQ(RecvFrame(conn.get(), type, payload), RecvOutcome::kFrame);
  EXPECT_EQ(type, 3);
  EXPECT_EQ(payload, "tail");
  client.join();
  ::unlink(path.c_str());
}

TEST(IpcTest, CleanEofAtFrameBoundaryIsClosedNotError) {
  const std::string path = TestSocketPath("eof");
  OwnedFd listener = UnixListen(path);
  ASSERT_TRUE(listener.valid());
  std::thread client([&] {
    OwnedFd conn = UnixConnect(path);
    ASSERT_TRUE(conn.valid());
    ASSERT_TRUE(SendFrame(conn.get(), 5, "last"));
    // conn closes here — a complete frame followed by EOF.
  });
  OwnedFd conn = UnixAccept(listener.get(), 5000);
  ASSERT_TRUE(conn.valid());
  client.join();
  uint8_t type = 0;
  std::string payload;
  ASSERT_EQ(RecvFrame(conn.get(), type, payload), RecvOutcome::kFrame);
  EXPECT_EQ(type, 5);
  EXPECT_EQ(RecvFrame(conn.get(), type, payload), RecvOutcome::kClosed);
  ::unlink(path.c_str());
}

TEST(IpcTest, TruncatedFrameIsErrorNotClosed) {
  const std::string path = TestSocketPath("truncated");
  OwnedFd listener = UnixListen(path);
  ASSERT_TRUE(listener.valid());
  std::thread client([&] {
    OwnedFd conn = UnixConnect(path);
    ASSERT_TRUE(conn.valid());
    // A length prefix promising 100 bytes, then EOF mid-frame.
    const char partial[] = {100, 0, 0, 0, 1, 'a', 'b'};
    ASSERT_EQ(::write(conn.get(), partial, sizeof(partial)),
              static_cast<ssize_t>(sizeof(partial)));
  });
  OwnedFd conn = UnixAccept(listener.get(), 5000);
  ASSERT_TRUE(conn.valid());
  client.join();
  uint8_t type = 0;
  std::string payload;
  std::string error;
  EXPECT_EQ(RecvFrame(conn.get(), type, payload, &error), RecvOutcome::kError);
  ::unlink(path.c_str());
}

TEST(IpcTest, OversizedLengthPrefixIsRejectedWithoutAllocating) {
  const std::string path = TestSocketPath("oversized");
  OwnedFd listener = UnixListen(path);
  ASSERT_TRUE(listener.valid());
  std::thread client([&] {
    OwnedFd conn = UnixConnect(path);
    ASSERT_TRUE(conn.valid());
    const unsigned char huge[] = {0xff, 0xff, 0xff, 0xff, 1};  // ~4 GiB claim
    ASSERT_EQ(::write(conn.get(), huge, sizeof(huge)), static_cast<ssize_t>(sizeof(huge)));
  });
  OwnedFd conn = UnixAccept(listener.get(), 5000);
  ASSERT_TRUE(conn.valid());
  client.join();
  uint8_t type = 0;
  std::string payload;
  std::string error;
  EXPECT_EQ(RecvFrame(conn.get(), type, payload, &error), RecvOutcome::kError);
  EXPECT_NE(error.find("frame"), std::string::npos) << error;
  ::unlink(path.c_str());
}

TEST(IpcTest, SendToClosedPeerFailsWithoutSignal) {
  const std::string path = TestSocketPath("epipe");
  OwnedFd listener = UnixListen(path);
  ASSERT_TRUE(listener.valid());
  OwnedFd client = UnixConnect(path);
  ASSERT_TRUE(client.valid());
  OwnedFd server_conn = UnixAccept(listener.get(), 5000);
  ASSERT_TRUE(server_conn.valid());
  server_conn.Reset();  // peer gone
  // The first send may land in the (now orphaned) buffer; keep writing
  // until the EPIPE surfaces. If MSG_NOSIGNAL were missing this would kill
  // the test process with SIGPIPE instead of returning false.
  bool failed = false;
  for (int i = 0; i < 64 && !failed; ++i) {
    failed = !SendFrame(client.get(), 1, std::string(65536, 'p'));
  }
  EXPECT_TRUE(failed);
  ::unlink(path.c_str());
}

TEST(IpcTest, AcceptTimesOutWhenNobodyConnects) {
  const std::string path = TestSocketPath("timeout");
  OwnedFd listener = UnixListen(path);
  ASSERT_TRUE(listener.valid());
  OwnedFd conn = UnixAccept(listener.get(), 50);
  EXPECT_FALSE(conn.valid());
  ::unlink(path.c_str());
}

TEST(IpcTest, ListenReplacesStaleSocketFile) {
  const std::string path = TestSocketPath("stale");
  {
    OwnedFd first = UnixListen(path);
    ASSERT_TRUE(first.valid());
  }  // closed without unlink: the socket file is now stale
  OwnedFd second = UnixListen(path);
  EXPECT_TRUE(second.valid());
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace refscan
