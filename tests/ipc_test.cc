// Tests for the Unix-socket frame transport (src/support/ipc) that the
// sharded scan and the cache server both ride on.

#include "src/support/ipc.h"

#include <csignal>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/support/faultinject.h"

namespace refscan {
namespace {

std::string TestSocketPath(const char* tag) {
  return "/tmp/refscan-ipc-test-" + std::to_string(::getpid()) + "-" + tag + ".sock";
}

TEST(IpcTest, FrameRoundTripOverSocket) {
  const std::string path = TestSocketPath("roundtrip");
  std::string error;
  OwnedFd listener = UnixListen(path, &error);
  ASSERT_TRUE(listener.valid()) << error;

  std::thread client([&] {
    OwnedFd conn = UnixConnect(path);
    ASSERT_TRUE(conn.valid());
    ASSERT_TRUE(SendFrame(conn.get(), 7, "hello frames"));
    uint8_t type = 0;
    std::string payload;
    ASSERT_EQ(RecvFrame(conn.get(), type, payload), RecvOutcome::kFrame);
    EXPECT_EQ(type, 9);
    EXPECT_EQ(payload, "reply");
  });

  OwnedFd server_conn = UnixAccept(listener.get(), 5000, &error);
  ASSERT_TRUE(server_conn.valid()) << error;
  uint8_t type = 0;
  std::string payload;
  ASSERT_EQ(RecvFrame(server_conn.get(), type, payload), RecvOutcome::kFrame);
  EXPECT_EQ(type, 7);
  EXPECT_EQ(payload, "hello frames");
  ASSERT_TRUE(SendFrame(server_conn.get(), 9, "reply"));
  client.join();
  ::unlink(path.c_str());
}

TEST(IpcTest, EmptyPayloadAndBackToBackFrames) {
  const std::string path = TestSocketPath("backtoback");
  OwnedFd listener = UnixListen(path);
  ASSERT_TRUE(listener.valid());

  std::thread client([&] {
    OwnedFd conn = UnixConnect(path);
    ASSERT_TRUE(conn.valid());
    // Several frames in a row before the peer reads any: framing must not
    // depend on lockstep reads.
    ASSERT_TRUE(SendFrame(conn.get(), 1, ""));
    ASSERT_TRUE(SendFrame(conn.get(), 2, std::string(100000, 'x')));
    ASSERT_TRUE(SendFrame(conn.get(), 3, "tail"));
  });

  OwnedFd conn = UnixAccept(listener.get(), 5000);
  ASSERT_TRUE(conn.valid());
  uint8_t type = 0;
  std::string payload;
  ASSERT_EQ(RecvFrame(conn.get(), type, payload), RecvOutcome::kFrame);
  EXPECT_EQ(type, 1);
  EXPECT_TRUE(payload.empty());
  ASSERT_EQ(RecvFrame(conn.get(), type, payload), RecvOutcome::kFrame);
  EXPECT_EQ(type, 2);
  EXPECT_EQ(payload.size(), 100000u);
  ASSERT_EQ(RecvFrame(conn.get(), type, payload), RecvOutcome::kFrame);
  EXPECT_EQ(type, 3);
  EXPECT_EQ(payload, "tail");
  client.join();
  ::unlink(path.c_str());
}

TEST(IpcTest, CleanEofAtFrameBoundaryIsClosedNotError) {
  const std::string path = TestSocketPath("eof");
  OwnedFd listener = UnixListen(path);
  ASSERT_TRUE(listener.valid());
  std::thread client([&] {
    OwnedFd conn = UnixConnect(path);
    ASSERT_TRUE(conn.valid());
    ASSERT_TRUE(SendFrame(conn.get(), 5, "last"));
    // conn closes here — a complete frame followed by EOF.
  });
  OwnedFd conn = UnixAccept(listener.get(), 5000);
  ASSERT_TRUE(conn.valid());
  client.join();
  uint8_t type = 0;
  std::string payload;
  ASSERT_EQ(RecvFrame(conn.get(), type, payload), RecvOutcome::kFrame);
  EXPECT_EQ(type, 5);
  EXPECT_EQ(RecvFrame(conn.get(), type, payload), RecvOutcome::kClosed);
  ::unlink(path.c_str());
}

TEST(IpcTest, TruncatedFrameIsErrorNotClosed) {
  const std::string path = TestSocketPath("truncated");
  OwnedFd listener = UnixListen(path);
  ASSERT_TRUE(listener.valid());
  std::thread client([&] {
    OwnedFd conn = UnixConnect(path);
    ASSERT_TRUE(conn.valid());
    // A length prefix promising 100 bytes, then EOF mid-frame.
    const char partial[] = {100, 0, 0, 0, 1, 'a', 'b'};
    ASSERT_EQ(::write(conn.get(), partial, sizeof(partial)),
              static_cast<ssize_t>(sizeof(partial)));
  });
  OwnedFd conn = UnixAccept(listener.get(), 5000);
  ASSERT_TRUE(conn.valid());
  client.join();
  uint8_t type = 0;
  std::string payload;
  std::string error;
  EXPECT_EQ(RecvFrame(conn.get(), type, payload, &error), RecvOutcome::kError);
  ::unlink(path.c_str());
}

TEST(IpcTest, OversizedLengthPrefixIsRejectedWithoutAllocating) {
  const std::string path = TestSocketPath("oversized");
  OwnedFd listener = UnixListen(path);
  ASSERT_TRUE(listener.valid());
  std::thread client([&] {
    OwnedFd conn = UnixConnect(path);
    ASSERT_TRUE(conn.valid());
    const unsigned char huge[] = {0xff, 0xff, 0xff, 0xff, 1};  // ~4 GiB claim
    ASSERT_EQ(::write(conn.get(), huge, sizeof(huge)), static_cast<ssize_t>(sizeof(huge)));
  });
  OwnedFd conn = UnixAccept(listener.get(), 5000);
  ASSERT_TRUE(conn.valid());
  client.join();
  uint8_t type = 0;
  std::string payload;
  std::string error;
  EXPECT_EQ(RecvFrame(conn.get(), type, payload, &error), RecvOutcome::kError);
  EXPECT_NE(error.find("frame"), std::string::npos) << error;
  ::unlink(path.c_str());
}

TEST(IpcTest, SendToClosedPeerFailsWithoutSignal) {
  const std::string path = TestSocketPath("epipe");
  OwnedFd listener = UnixListen(path);
  ASSERT_TRUE(listener.valid());
  OwnedFd client = UnixConnect(path);
  ASSERT_TRUE(client.valid());
  OwnedFd server_conn = UnixAccept(listener.get(), 5000);
  ASSERT_TRUE(server_conn.valid());
  server_conn.Reset();  // peer gone
  // The first send may land in the (now orphaned) buffer; keep writing
  // until the EPIPE surfaces. If MSG_NOSIGNAL were missing this would kill
  // the test process with SIGPIPE instead of returning false.
  bool failed = false;
  for (int i = 0; i < 64 && !failed; ++i) {
    failed = !SendFrame(client.get(), 1, std::string(65536, 'p'));
  }
  EXPECT_TRUE(failed);
  ::unlink(path.c_str());
}

TEST(IpcTest, AcceptTimesOutWhenNobodyConnects) {
  const std::string path = TestSocketPath("timeout");
  OwnedFd listener = UnixListen(path);
  ASSERT_TRUE(listener.valid());
  OwnedFd conn = UnixAccept(listener.get(), 50);
  EXPECT_FALSE(conn.valid());
  ::unlink(path.c_str());
}

TEST(IpcTest, ListenReplacesStaleSocketFile) {
  const std::string path = TestSocketPath("stale");
  {
    OwnedFd first = UnixListen(path);
    ASSERT_TRUE(first.valid());
  }  // closed without unlink: the socket file is now stale
  OwnedFd second = UnixListen(path);
  EXPECT_TRUE(second.valid());
  ::unlink(path.c_str());
}

TEST(BackoffTest, DelaysAreDeterministicJitteredAndCapped) {
  BackoffPolicy policy;
  policy.base_delay_ms = 10;
  policy.max_delay_ms = 100;
  policy.jitter_seed = 42;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const uint32_t a = BackoffDelayMs(policy, attempt);
    const uint32_t b = BackoffDelayMs(policy, attempt);
    EXPECT_EQ(a, b) << "same (policy, attempt) must yield the same delay";
    // Equal-jitter: at least half the capped exponential, at most all of it.
    const uint32_t ceiling = std::min<uint32_t>(10u << std::min(attempt, 20), 100);
    EXPECT_GE(a, ceiling / 2) << "attempt " << attempt;
    EXPECT_LE(a, ceiling) << "attempt " << attempt;
  }
  // Different seeds decorrelate the fleet.
  BackoffPolicy other = policy;
  other.jitter_seed = 43;
  bool any_differ = false;
  for (int attempt = 2; attempt < 8; ++attempt) {
    any_differ = any_differ || BackoffDelayMs(policy, attempt) != BackoffDelayMs(other, attempt);
  }
  EXPECT_TRUE(any_differ);
}

TEST(BackoffTest, ConnectWithRetryOutlastsALateServer) {
  const std::string path = TestSocketPath("lateserver");
  ::unlink(path.c_str());
  std::thread late_server([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    OwnedFd listener = UnixListen(path);
    ASSERT_TRUE(listener.valid());
    OwnedFd conn = UnixAccept(listener.get(), 5000);
    EXPECT_TRUE(conn.valid());
  });
  BackoffPolicy policy;
  policy.attempts = 20;
  policy.base_delay_ms = 20;
  policy.max_delay_ms = 50;
  std::string error;
  OwnedFd fd = ConnectWithRetry(path, policy, &error);
  EXPECT_TRUE(fd.valid()) << error;
  late_server.join();
  ::unlink(path.c_str());
}

TEST(BackoffTest, ConnectWithRetryGivesUpAfterBudget) {
  BackoffPolicy policy;
  policy.attempts = 3;
  policy.base_delay_ms = 1;
  policy.max_delay_ms = 2;
  std::string error;
  OwnedFd fd = ConnectWithRetry("/tmp/refscan-ipc-test-no-such-server.sock", policy, &error);
  EXPECT_FALSE(fd.valid());
  EXPECT_FALSE(error.empty());
}

TEST(IpcFaultTest, InjectedWriteFaultTruncatesMidFrameDeterministically) {
  const std::string path = TestSocketPath("writefault");
  OwnedFd listener = UnixListen(path);
  ASSERT_TRUE(listener.valid());
  OwnedFd client = UnixConnect(path);
  ASSERT_TRUE(client.valid());
  OwnedFd server_conn = UnixAccept(listener.get(), 5000);
  ASSERT_TRUE(server_conn.valid());

  {
    ScopedFaultArm arm("ipc.write:once");
    std::string error;
    // The injected fault cuts the frame mid-payload: the sender learns it
    // failed, and the peer must see a mid-frame error, never a short but
    // "valid" frame.
    EXPECT_FALSE(SendFrame(client.get(), 7, "payload bytes", &error));
    EXPECT_NE(error.find("ipc.write"), std::string::npos) << error;
  }
  client.Reset();  // EOF after the truncated bytes
  uint8_t type = 0;
  std::string payload;
  std::string error;
  EXPECT_EQ(RecvFrame(server_conn.get(), type, payload, &error), RecvOutcome::kError);
  EXPECT_NE(error.find("mid-frame"), std::string::npos) << error;
  ::unlink(path.c_str());
}

TEST(IpcFaultTest, InjectedWriteFaultOnTinyPayloadCutsTheHeader) {
  const std::string path = TestSocketPath("writefault2");
  OwnedFd listener = UnixListen(path);
  ASSERT_TRUE(listener.valid());
  OwnedFd client = UnixConnect(path);
  ASSERT_TRUE(client.valid());
  OwnedFd server_conn = UnixAccept(listener.get(), 5000);
  ASSERT_TRUE(server_conn.valid());
  {
    ScopedFaultArm arm("ipc.write:once");
    EXPECT_FALSE(SendFrame(client.get(), 7, ""));  // nothing to halve: cut the header
  }
  client.Reset();
  uint8_t type = 0;
  std::string payload;
  EXPECT_EQ(RecvFrame(server_conn.get(), type, payload), RecvOutcome::kError);
  ::unlink(path.c_str());
}

// Signal-interrupted partial writes: a sender whose send(2) keeps getting
// cut short by EINTR must still deliver every frame intact. A tiny SO_SNDBUF
// forces short writes; a storm of SIGUSR1 at the sender thread forces EINTR
// returns while it is blocked.
TEST(IpcTest, PartialWritesUnderSignalStormDeliverIntactFrames) {
  struct sigaction sa = {};
  sa.sa_handler = [](int) {};  // no SA_RESTART: send() returns EINTR
  sigemptyset(&sa.sa_mask);
  struct sigaction old_sa = {};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old_sa), 0);

  const std::string path = TestSocketPath("eintr");
  OwnedFd listener = UnixListen(path);
  ASSERT_TRUE(listener.valid());
  OwnedFd client = UnixConnect(path);
  ASSERT_TRUE(client.valid());
  const int sndbuf = 4096;
  ::setsockopt(client.get(), SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
  OwnedFd server_conn = UnixAccept(listener.get(), 5000);
  ASSERT_TRUE(server_conn.valid());

  const std::string big(1 << 20, 'z');
  std::atomic<bool> done{false};
  std::thread sender([&] {
    EXPECT_TRUE(SendFrame(client.get(), 3, big));
    done.store(true);
  });
  const pthread_t sender_handle = sender.native_handle();
  std::thread pummel([&] {
    while (!done.load()) {
      ::pthread_kill(sender_handle, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  uint8_t type = 0;
  std::string payload;
  ASSERT_EQ(RecvFrame(server_conn.get(), type, payload), RecvOutcome::kFrame);
  EXPECT_EQ(type, 3);
  EXPECT_EQ(payload, big);
  sender.join();
  pummel.join();
  ::sigaction(SIGUSR1, &old_sa, nullptr);
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace refscan
