// Parser/front-end tolerance for real-kernel constructs the corpus does not
// emit: GNU attributes, inline asm, designated array initializers, bitfields,
// do-while(0) macros, string concatenation, and other kernel idioms. The
// invariant everywhere: parsing never crashes and the surrounding functions
// remain analysable.

#include <gtest/gtest.h>

#include "src/ast/parser.h"
#include "src/checkers/engine.h"
#include "src/checkers/template_matcher.h"

namespace refscan {
namespace {

TranslationUnit Parse(std::string text) {
  SourceFile file("k.c", std::move(text));
  return ParseFile(file);
}

TEST(KernelConstructsTest, GnuAttributeOnFunction) {
  const auto unit = Parse(
      "static int __attribute__((cold)) slow_path(void)\n"
      "{\n"
      "  return -EAGAIN;\n"
      "}\n"
      "int after(void) { return 1; }\n");
  // The attributed function may degrade, but `after` must parse.
  EXPECT_NE(unit.FindFunction("after"), nullptr);
}

TEST(KernelConstructsTest, InlineAsmStatement) {
  const auto unit = Parse(
      "void barrier_user(void)\n"
      "{\n"
      "  asm volatile(\"mfence\" ::: \"memory\");\n"
      "  after_asm();\n"
      "}\n");
  ASSERT_EQ(unit.functions.size(), 1u);
  bool saw_call = false;
  ForEachExpr(*unit.functions[0].body, [&](const Expr& e) {
    saw_call |= e.IsCall() && e.CalleeName() == "after_asm";
  });
  EXPECT_TRUE(saw_call);
}

TEST(KernelConstructsTest, DesignatedArrayInitializer) {
  const auto unit = Parse(
      "static const int prio_map[8] = { [0] = 1, [3] = 7, [7] = 2 };\n"
      "int f(void) { return prio_map[0]; }\n");
  EXPECT_NE(unit.FindFunction("f"), nullptr);
}

TEST(KernelConstructsTest, Bitfields) {
  const auto unit = Parse(
      "struct flags {\n"
      "  unsigned int ready : 1;\n"
      "  unsigned int mode : 3;\n"
      "  struct kref ref;\n"
      "};\n");
  ASSERT_EQ(unit.structs.size(), 1u);
  // The kref field must still be visible for structure discovery.
  bool has_ref = false;
  for (const StructField& field : unit.structs[0].fields) {
    has_ref |= field.name == "ref" && field.type.view().find("kref") != std::string_view::npos;
  }
  EXPECT_TRUE(has_ref);
}

TEST(KernelConstructsTest, DoWhileZeroMacroBody) {
  const auto unit = Parse(
      "void user(struct device_node *np)\n"
      "{\n"
      "  do {\n"
      "    of_node_get(np);\n"
      "    of_node_put(np);\n"
      "  } while (0);\n"
      "}\n");
  ASSERT_EQ(unit.functions.size(), 1u);
  int calls = 0;
  ForEachExpr(*unit.functions[0].body, [&](const Expr& e) { calls += e.IsCall() ? 1 : 0; });
  EXPECT_EQ(calls, 2);
}

TEST(KernelConstructsTest, StringConcatenationInCall) {
  const auto unit = Parse(
      "void log_it(void)\n"
      "{\n"
      "  printk(KERN_ERR \"oops: \" \"%d\\n\", code);\n"
      "}\n");
  EXPECT_EQ(unit.functions.size(), 1u);
}

TEST(KernelConstructsTest, ConditionalCompilationBlocks) {
  const auto unit = Parse(
      "#ifdef CONFIG_OF\n"
      "int with_of(void) { return 1; }\n"
      "#else\n"
      "int without_of(void) { return 0; }\n"
      "#endif\n");
  // Both arms parse (no preprocessing): two functions.
  EXPECT_EQ(unit.functions.size(), 2u);
}

TEST(KernelConstructsTest, PointerToPointerParams) {
  const auto unit = Parse(
      "int fetch(struct device_node **out)\n"
      "{\n"
      "  *out = of_find_node_by_path(\"/x\");\n"
      "  return 0;\n"
      "}\n");
  ASSERT_EQ(unit.functions.size(), 1u);
  ASSERT_EQ(unit.functions[0].params.size(), 1u);
  EXPECT_EQ(unit.functions[0].params[0].name, "out");
}

TEST(KernelConstructsTest, AnalysisSurvivesMixedFile) {
  // A file mixing all of the above plus one real bug: the bug must still be
  // found despite the exotic surroundings.
  CheckerEngine engine;
  const auto result = engine.ScanFileText(
      "drivers/t/t.c",
      "static const int prio_map[4] = { [0] = 1, [3] = 2 };\n"
      "struct flags { unsigned int ready : 1; };\n"
      "void barrier_user(void)\n"
      "{\n"
      "  asm volatile(\"mfence\" ::: \"memory\");\n"
      "}\n"
      "static int leaky(void)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
      "  if (!np)\n"
      "    return -ENODEV;\n"
      "  use(np);\n"
      "  return 0;\n"
      "}\n");
  ASSERT_EQ(result.reports.size(), 1u);
  EXPECT_EQ(result.reports[0].function, "leaky");
  EXPECT_EQ(result.reports[0].anti_pattern, 4);
}

// Template-matcher fuzz: arbitrary well-formed templates over exotic code
// never crash, and parse/match round trips are stable.
class TemplateFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(TemplateFuzzTest, RandomTemplatesDoNotCrash) {
  const char* steps[] = {"F_start", "S_G(p0)",  "S_G_E", "S_G_H", "S_P(p0)", "S_D(p0)",
                         "S_A",     "S_A_GO",   "S_L",   "S_U",   "S_free",  "S_ret",
                         "B_error", "M_SL",     "!S_P(p0)", "!S_G", "F_end"};
  uint64_t seed = static_cast<uint64_t>(GetParam()) * 2654435761u + 1;
  auto next = [&seed]() {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return seed;
  };
  std::string text;
  const int n = 2 + static_cast<int>(next() % 5);
  for (int i = 0; i < n; ++i) {
    if (i > 0) {
      text += " -> ";
    }
    text += steps[next() % std::size(steps)];
  }
  SCOPED_TRACE(text);
  const auto tmpl = ParseTemplate(text);
  ASSERT_TRUE(tmpl.has_value());
  SourceTree tree;
  tree.Add("drivers/t/t.c",
           "static int leaky(struct platform_device *pdev)\n"
           "{\n"
           "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
           "  int ret = pm_runtime_get_sync(pdev->dev);\n"
           "  if (ret < 0)\n"
           "    return ret;\n"
           "  ctx->node = np;\n"
           "  of_node_put(np);\n"
           "  kfree(np);\n"
           "  mutex_unlock(&pdev->lock);\n"
           "  return 0;\n"
           "}\n");
  const auto reports = RunTemplateChecker(*tmpl, tree);
  (void)reports;  // not crashing and terminating is the property
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TemplateFuzzTest, ::testing::Range(1, 26));

}  // namespace
}  // namespace refscan
