// Allocation-count regression test (DESIGN.md §5.11): the whole point of the
// arena + interner + flat-CPG overhaul is that scanning a function performs a
// small, bounded number of heap allocations instead of one per AST node /
// string / event list. Global operator new is instrumented below; if a change
// reintroduces per-node or per-event heap traffic, the per-function budget
// here fails long before a benchmark would flag it.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include "src/checkers/engine.h"

namespace {

std::atomic<size_t> g_alloc_count{0};

}  // namespace

void* operator new(size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace refscan {
namespace {

// One representative unit: refcount APIs, branches, a loop, member chains —
// enough to exercise lexer, parser, CFG, CPG and the checkers end to end.
constexpr char kUnit[] = R"(
static int probe_one(struct device_node *np)
{
    struct device *dev = of_find_device_by_node(np);
    if (!dev)
        return -ENODEV;
    if (dev->flags & FLAG_BAD) {
        of_node_put(np);
        return -EINVAL;
    }
    dev->state = 1;
    put_device(dev);
    return 0;
}

static void walk_children(struct device_node *parent)
{
    struct device_node *child;
    for_each_child_of_node(parent, child) {
        if (child->flags)
            continue;
        of_node_get(child);
    }
}

static int setup_pair(struct widget *w)
{
    kobject_get(&w->kobj);
    if (w->count > 4) {
        kobject_put(&w->kobj);
        return -EBUSY;
    }
    w->ready = 1;
    kobject_put(&w->kobj);
    return 0;
}
)";

constexpr int kFunctionsPerFile = 3;
constexpr int kFiles = 32;

ScanResult ScanOnce(const SourceTree& tree) {
  ScanOptions options;
  options.jobs = 1;
  CheckerEngine engine(KnowledgeBase::BuiltIn(), options);
  return engine.Scan(tree);
}

TEST(AllocRegressionTest, HeapAllocationsPerFunctionStayBounded) {
  SourceTree tree;
  for (int i = 0; i < kFiles; ++i) {
    tree.Add("drivers/demo/f" + std::to_string(i) + ".c", kUnit);
  }

  // Warm-up: interner first-touches, KB discovery tables, thread-pool and
  // engine one-time setup all happen here, outside the measured window.
  const ScanResult warm = ScanOnce(tree);
  ASSERT_EQ(warm.stats.files, static_cast<size_t>(kFiles));
  ASSERT_EQ(warm.stats.functions, static_cast<size_t>(kFiles * kFunctionsPerFile));

  const size_t before = g_alloc_count.load(std::memory_order_relaxed);
  const ScanResult result = ScanOnce(tree);
  const size_t allocs = g_alloc_count.load(std::memory_order_relaxed) - before;

  ASSERT_EQ(result.stats.functions, static_cast<size_t>(kFiles * kFunctionsPerFile));
  const size_t per_function = allocs / result.stats.functions;

  // Budget rationale: with arena-backed AST/CFG/CPG storage a function costs
  // a few container allocations (token vector, CFG node vector, flat event
  // array, per-path scratch in the checkers), not one per node. Measured
  // ~73/function at head (debug build); the ceiling leaves ~4x headroom for
  // legitimate growth while still catching a per-node/per-event regression,
  // which multiplies the count by an order of magnitude.
  constexpr size_t kPerFunctionBudget = 300;
  EXPECT_LE(per_function, kPerFunctionBudget)
      << "scan performed " << allocs << " heap allocations for "
      << result.stats.functions << " functions (" << per_function
      << "/function); arena/interner regression?";
}

}  // namespace
}  // namespace refscan
