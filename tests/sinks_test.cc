// Tests for inter-procedural ownership-sink inference: a callee that stores
// a parameter into longer-lived state takes ownership of the reference, so
// passing an acquired object to it is a transfer (not a leak) — and
// dropping the reference afterwards is an escape bug (P9 through a call).

#include <gtest/gtest.h>

#include "src/ast/parser.h"
#include "src/checkers/engine.h"

namespace refscan {
namespace {

std::vector<BugReport> ScanText(std::string text) {
  CheckerEngine engine;
  return engine.ScanFileText("drivers/t/t.c", std::move(text)).reports;
}

int CountPattern(const std::vector<BugReport>& reports, int pattern) {
  int n = 0;
  for (const BugReport& r : reports) {
    n += r.anti_pattern == pattern ? 1 : 0;
  }
  return n;
}

constexpr const char* kSinkDefinition =
    "static void card_adopt_node(struct card *card, struct device_node *np)\n"
    "{\n"
    "  card->np = np;\n"  // stores its parameter: an ownership sink
    "}\n";

TEST(SinkDiscoveryTest, ParamStoreIsRecognised) {
  SourceFile file("t.c", kSinkDefinition);
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  kb.DiscoverFromUnit(ParseFile(file));
  EXPECT_EQ(kb.FindOwnershipSink("card_adopt_node"), 1);  // param index 1 = np
  EXPECT_EQ(kb.FindOwnershipSink("unknown_fn"), -1);
}

TEST(SinkDiscoveryTest, LocalStoreIsNotASink) {
  SourceFile file("t.c",
                  "static void stash_locally(struct device_node *np)\n"
                  "{\n"
                  "  struct walk_state st;\n"
                  "  st.node = np;\n"  // local: dies with the frame
                  "}\n");
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  kb.DiscoverFromUnit(ParseFile(file));
  EXPECT_EQ(kb.FindOwnershipSink("stash_locally"), -1);
}

TEST(SinkDiscoveryTest, GlobalStoreIsASink) {
  SourceFile file("t.c",
                  "static void publish(struct device_node *np)\n"
                  "{\n"
                  "  g_state.root = np;\n"
                  "}\n");
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  kb.DiscoverFromUnit(ParseFile(file));
  EXPECT_EQ(kb.FindOwnershipSink("publish"), 0);
}

TEST(SinkTransferTest, PassingAcquiredObjectToSinkIsNotALeak) {
  const auto reports = ScanText(std::string(kSinkDefinition) +
                                "static int probe_one(struct card *card)\n"
                                "{\n"
                                "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
                                "  if (!np)\n"
                                "    return -ENODEV;\n"
                                "  card_adopt_node(card, np);\n"  // ownership moves into card
                                "  return 0;\n"
                                "}\n");
  EXPECT_EQ(CountPattern(reports, 4), 0) << (reports.empty() ? "" : reports[0].message);
}

TEST(SinkTransferTest, DropAfterSinkHandOffIsP9) {
  const auto reports = ScanText(std::string(kSinkDefinition) +
                                "static int probe_one(struct card *card)\n"
                                "{\n"
                                "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
                                "  if (!np)\n"
                                "    return -ENODEV;\n"
                                "  card_adopt_node(card, np);\n"  // card holds np now...
                                "  of_node_put(np);\n"            // ...but the only ref is dropped
                                "  return 0;\n"
                                "}\n");
  EXPECT_EQ(CountPattern(reports, 9), 1);
}

TEST(SinkTransferTest, NonSinkCallDoesNotTransfer) {
  const auto reports = ScanText(
      "static int probe_one(struct card *card)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
      "  if (!np)\n"
      "    return -ENODEV;\n"
      "  card_log_node(card, np);\n"  // unknown callee: no transfer assumed
      "  return 0;\n"                 // *BUG*: still a leak
      "}\n");
  EXPECT_EQ(CountPattern(reports, 4), 1);
}

TEST(BuiltInSinkTest, DevmReleaseCallbackIsATransfer) {
  // devm_add_action_or_reset(dev, fn, data) hands `data` to the devres
  // machinery; the registered callback releases it at teardown.
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  EXPECT_EQ(kb.FindOwnershipSink("devm_add_action_or_reset"), 2);
  EXPECT_EQ(kb.FindOwnershipSink("devm_add_action"), 2);

  const auto reports = ScanText(
      "static int probe_devm(struct platform_device *pdev)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
      "  if (!np)\n"
      "    return -ENODEV;\n"
      "  return devm_add_action_or_reset(&pdev->dev, put_node_cb, np);\n"
      "}\n");
  EXPECT_TRUE(reports.empty()) << (reports.empty() ? "" : reports[0].message);
}

}  // namespace
}  // namespace refscan
