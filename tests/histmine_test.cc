// Tests for the commit-history generator, the two-level mining pipeline and
// the dataset statistics (Findings 1-5, Figures 1-3, Table 2).

#include <gtest/gtest.h>

#include "src/histmine/history.h"
#include "src/histmine/miner.h"
#include "src/kb/kb.h"
#include "src/stats/stats.h"

namespace refscan {
namespace {

// Shared fixture: generate + mine once (the dominant cost).
class MiningTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    HistoryOptions options;
    options.noise_commits = 5000;  // keep unit tests fast
    history_ = new History(GenerateHistory(options));
    kb_ = new KnowledgeBase(KnowledgeBase::BuiltIn());
    result_ = new MiningResult(MineRefcountBugs(*history_, *kb_));
  }
  static void TearDownTestSuite() {
    delete history_;
    delete kb_;
    delete result_;
    history_ = nullptr;
    kb_ = nullptr;
    result_ = nullptr;
  }
  static History* history_;
  static KnowledgeBase* kb_;
  static MiningResult* result_;
};

History* MiningTest::history_ = nullptr;
KnowledgeBase* MiningTest::kb_ = nullptr;
MiningResult* MiningTest::result_ = nullptr;

TEST(TimelineTest, CoversPaperRange) {
  const auto& timeline = ReleaseTimeline();
  EXPECT_EQ(timeline.size(), 91u);
  EXPECT_EQ(timeline.front().name, "v2.6.12");
  EXPECT_EQ(timeline.front().year, 2005);
  EXPECT_EQ(timeline.back().name, "v6.1");
  EXPECT_EQ(timeline.back().year, 2022);
  EXPECT_EQ(TotalVersionCount(), 753);
  // Monotone time.
  for (size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_GT(ReleaseTime(timeline[i]), ReleaseTime(timeline[i - 1])) << timeline[i].name;
  }
  EXPECT_EQ(FirstReleaseOfMajor(3), 28);
  EXPECT_EQ(FirstReleaseOfMajor(9), -1);
}

TEST(TimelineTest, CalibrationTablesSum) {
  int growth = 0;
  for (const auto& [year, count] : Figure1GrowthTargets()) {
    growth += count;
  }
  EXPECT_EQ(growth, 1033);
  int subsystem_bugs = 0;
  for (const SubsystemTarget& target : Figure2SubsystemTargets()) {
    subsystem_bugs += target.bugs;
  }
  EXPECT_EQ(subsystem_bugs, 1033);
}

TEST(Level1KeywordTest, Matches) {
  EXPECT_TRUE(Level1KeywordMatch("of_node_put"));
  EXPECT_TRUE(Level1KeywordMatch("kref_get"));
  EXPECT_TRUE(Level1KeywordMatch("mux_take_control"));
  EXPECT_TRUE(Level1KeywordMatch("dma_release_channel"));
  EXPECT_FALSE(Level1KeywordMatch("queue_register"));
  EXPECT_FALSE(Level1KeywordMatch("spi_transfer_one"));
}

TEST_F(MiningTest, GeneratorPlantsExactPopulation) {
  EXPECT_EQ(history_->ground_truth.size(), 1033u);
  EXPECT_GT(history_->commits.size(), 1033u + 780u + 24u);
  // Commits are release-ordered.
  for (size_t i = 1; i < history_->commits.size(); ++i) {
    EXPECT_LE(history_->commits[i - 1].release, history_->commits[i].release);
  }
}

TEST_F(MiningTest, TwoLevelFilteringMatchesPaperCounts) {
  // §3.1: 1,825 candidates from level-1; 1,033 bugs after level-2 + FP
  // removal; 12 wrong fixes dropped via Fixes: tags.
  EXPECT_EQ(result_->level1_candidates.size(), 1825u);
  EXPECT_EQ(result_->level2_candidates.size(), 1045u);
  EXPECT_EQ(result_->removed_as_wrong_fix.size(), 12u);
  EXPECT_EQ(result_->dataset.size(), 1033u);
}

TEST_F(MiningTest, MinedDatasetMatchesGroundTruthCommits) {
  std::set<std::string> truth_ids;
  for (const HistBug& bug : history_->ground_truth) {
    truth_ids.insert(bug.fix_commit);
  }
  for (const MinedBug& bug : result_->dataset) {
    EXPECT_TRUE(truth_ids.contains(bug.commit->id))
        << "mined a non-bug commit: " << bug.commit->subject;
  }
}

TEST_F(MiningTest, ClassificationMatchesGroundTruthKinds) {
  std::map<std::string, const HistBug*> truth;
  for (const HistBug& bug : history_->ground_truth) {
    truth[bug.fix_commit] = &bug;
  }
  int mismatches = 0;
  for (const MinedBug& bug : result_->dataset) {
    const HistBug* expected = truth.at(bug.commit->id);
    if (bug.kind != expected->kind || bug.is_uad != expected->is_uad ||
        bug.is_leak != expected->is_leak) {
      ++mismatches;
      if (mismatches < 5) {
        ADD_FAILURE() << bug.commit->subject << ": kind " << static_cast<int>(bug.kind) << " vs "
                      << static_cast<int>(expected->kind);
      }
    }
  }
  EXPECT_EQ(mismatches, 0);
}

TEST_F(MiningTest, Table2TaxonomyMatchesPaper) {
  const Taxonomy taxonomy = TaxonomyBreakdown(result_->dataset);
  EXPECT_EQ(taxonomy.total, 1033);
  EXPECT_EQ(taxonomy.leak, 741);  // 71.7%
  EXPECT_EQ(taxonomy.uaf, 292);   // 28.3%
  EXPECT_EQ(taxonomy.MissingDec(), 694);
  EXPECT_EQ(taxonomy.per_kind.at(HistBugKind::kMissingDecIntra), 590);
  EXPECT_EQ(taxonomy.per_kind.at(HistBugKind::kMissingDecInter), 104);
  EXPECT_EQ(taxonomy.per_kind.at(HistBugKind::kMisplacedDec), 119);
  EXPECT_EQ(taxonomy.uad, 94);  // 9.1%
  EXPECT_EQ(taxonomy.per_kind.at(HistBugKind::kMisplacedInc), 25);
  EXPECT_EQ(taxonomy.MissingInc(), 74);
  EXPECT_NEAR(taxonomy.Fraction(taxonomy.leak), 0.717, 0.005);
  EXPECT_NEAR(taxonomy.Fraction(taxonomy.per_kind.at(HistBugKind::kMissingDecIntra)), 0.571,
              0.005);
}

TEST_F(MiningTest, Figure1GrowthMatchesTargets) {
  const std::map<int, int> trend = GrowthTrend(result_->dataset);
  int total = 0;
  for (const auto& [year, target] : Figure1GrowthTargets()) {
    auto it = trend.find(year);
    const int measured = it != trend.end() ? it->second : 0;
    EXPECT_NEAR(measured, target, 6) << "year " << year;
    total += measured;
  }
  EXPECT_EQ(total, 1033);
  // Monotone-ish growth: 2022 >> 2005.
  EXPECT_GT(trend.at(2022), 10 * trend.at(2005));
}

TEST_F(MiningTest, Figure2DistributionMatchesFinding3) {
  const auto breakdown = SubsystemBreakdown(result_->dataset);
  ASSERT_FALSE(breakdown.empty());
  EXPECT_EQ(breakdown[0].name, "drivers");
  EXPECT_EQ(breakdown[0].bugs, 588);  // 56.9%
  int top3 = breakdown[0].bugs + breakdown[1].bugs + breakdown[2].bugs;
  EXPECT_EQ(top3, 851);  // 82.4% in drivers+net+fs
  // Density: block is the most bug-dense subsystem (Finding 3 discussion).
  const SubsystemStats* block = nullptr;
  double max_density = 0;
  for (const SubsystemStats& s : breakdown) {
    max_density = std::max(max_density, s.density);
    if (s.name == "block") {
      block = &s;
    }
  }
  ASSERT_NE(block, nullptr);
  EXPECT_DOUBLE_EQ(block->density, max_density);
  EXPECT_EQ(block->bugs, 18);
}

TEST_F(MiningTest, LifetimesMatchFindings4And5) {
  const LifetimeStats stats = LifetimeAnalysis(result_->dataset);
  EXPECT_EQ(stats.total, 1033);
  EXPECT_EQ(stats.with_fixes_tag, 567);
  EXPECT_EQ(stats.over_one_year, 429);  // 75.7% of tagged
  EXPECT_EQ(stats.over_ten_years, 19);
  EXPECT_EQ(stats.over_ten_years_uaf, 7);
  EXPECT_EQ(stats.ancient_to_modern, 23);
  EXPECT_NEAR(stats.span_v4_to_v5, 135, 1);
  EXPECT_NEAR(stats.span_v3_to_v5, 80, 1);
  EXPECT_NEAR(stats.within_v5, 189, 41);  // some v5-era fixes land in v6.0/v6.1
  EXPECT_EQ(stats.spans.size(), 567u);
}

TEST_F(MiningTest, DeterministicGeneration) {
  HistoryOptions options;
  options.noise_commits = 100;
  const History a = GenerateHistory(options);
  const History b = GenerateHistory(options);
  ASSERT_EQ(a.commits.size(), b.commits.size());
  for (size_t i = 0; i < a.commits.size(); ++i) {
    EXPECT_EQ(a.commits[i].id, b.commits[i].id);
    EXPECT_EQ(a.commits[i].subject, b.commits[i].subject);
  }
}

TEST(HistoryTest, FindCommit) {
  HistoryOptions options;
  options.noise_commits = 10;
  const History history = GenerateHistory(options);
  ASSERT_FALSE(history.commits.empty());
  const Commit& first = history.commits.front();
  EXPECT_EQ(history.FindCommit(first.id), &first);
  EXPECT_EQ(history.FindCommit("nope"), nullptr);
}

// Property sweep: different noise sizes never change the mined dataset.
class NoiseInvarianceTest : public ::testing::TestWithParam<int> {};

TEST_P(NoiseInvarianceTest, NoiseDoesNotPerturbDataset) {
  HistoryOptions options;
  options.noise_commits = GetParam();
  const History history = GenerateHistory(options);
  const MiningResult result = MineRefcountBugs(history, KnowledgeBase::BuiltIn());
  EXPECT_EQ(result.level1_candidates.size(), 1825u);
  EXPECT_EQ(result.dataset.size(), 1033u);
}

INSTANTIATE_TEST_SUITE_P(NoiseSizes, NoiseInvarianceTest, ::testing::Values(0, 100, 2000, 10000));

}  // namespace
}  // namespace refscan
