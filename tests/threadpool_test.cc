// Tests for the work-stealing thread pool and the ParallelFor/ParallelMap
// helpers that the scan pipeline fans out with.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/support/threadpool.h"

namespace refscan {
namespace {

TEST(ThreadPoolTest, ResolveJobsMapsZeroToHardware) {
  const size_t hw = ThreadPool::ResolveJobs(0);
  EXPECT_GE(hw, 1u);
  EXPECT_EQ(ThreadPool::ResolveJobs(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveJobs(7), 7u);
}

TEST(ThreadPoolTest, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.parallelism(), 1u);
  // With no background workers Submit executes in the caller.
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.Submit([&] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(pool, 0, hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHonoursBeginOffset) {
  ThreadPool pool(3);
  std::atomic<size_t> sum{0};
  ParallelFor(pool, 10, 20, [&sum](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), size_t{145});  // 10 + 11 + ... + 19
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsANoop) {
  ThreadPool pool(2);
  bool touched = false;
  ParallelFor(pool, 5, 5, [&touched](size_t) { touched = true; });
  ParallelFor(pool, 7, 3, [&touched](size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(8);
  const std::vector<std::string> out =
      ParallelMap(pool, 257, [](size_t i) { return std::to_string(i * 3); });
  ASSERT_EQ(out.size(), 257u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], std::to_string(i * 3));
  }
}

TEST(ThreadPoolTest, ParallelMapMatchesSerialResult) {
  ThreadPool serial(1);
  ThreadPool wide(6);
  const auto fn = [](size_t i) { return static_cast<int>(i * i % 97); };
  EXPECT_EQ(ParallelMap(serial, 500, fn), ParallelMap(wide, 500, fn));
}

TEST(ThreadPoolTest, UnevenWorkLoadBalances) {
  // A few expensive items among many cheap ones: the shared cursor hands
  // iterations out one at a time, so the batch still terminates quickly and
  // covers everything. (Correctness check, not a timing assertion.)
  ThreadPool pool(4);
  std::atomic<uint64_t> total{0};
  ParallelFor(pool, 0, 64, [&total](size_t i) {
    uint64_t acc = 1;
    const uint64_t spins = (i % 16 == 0) ? 200000 : 100;
    for (uint64_t k = 0; k < spins; ++k) {
      acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
    }
    total.fetch_add(acc != 0 ? 1 : 0);
  });
  EXPECT_EQ(total.load(), 64u);
}

TEST(ThreadPoolTest, ManySmallBatchesBackToBack) {
  // Exercises the sleep/wake path: each batch is smaller than the pool, so
  // workers keep going idle and being woken.
  ThreadPool pool(8);
  std::atomic<int> count{0};
  for (int round = 0; round < 200; ++round) {
    ParallelFor(pool, 0, 2, [&count](size_t) { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 400);
}

TEST(ThreadPoolTest, ParallelForCollectsEveryExceptionAfterTheBarrier) {
  // A mid-batch throw must not stop the batch: every other iteration still
  // runs, and the aggregate error lists every failing index in order.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  try {
    ParallelFor(pool, 0, hits.size(), [&hits](size_t i) {
      hits[i].fetch_add(1);
      if (i % 10 == 3) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected ParallelForError";
  } catch (const ParallelForError& e) {
    ASSERT_EQ(e.failures().size(), 10u);
    for (size_t k = 0; k < e.failures().size(); ++k) {
      EXPECT_EQ(e.failures()[k].first, k * 10 + 3);
      EXPECT_EQ(e.failures()[k].second, "boom " + std::to_string(k * 10 + 3));
    }
  }
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i << " was skipped by a sibling's throw";
  }
}

TEST(ThreadPoolTest, ParallelForExceptionSemanticsIdenticalAtParallelismOne) {
  ThreadPool pool(1);
  int ran = 0;
  try {
    ParallelFor(pool, 0, 5, [&ran](size_t i) {
      ++ran;
      if (i == 1 || i == 4) {
        throw std::runtime_error("serial boom");
      }
    });
    FAIL() << "expected ParallelForError";
  } catch (const ParallelForError& e) {
    ASSERT_EQ(e.failures().size(), 2u);
    EXPECT_EQ(e.failures()[0].first, 1u);
    EXPECT_EQ(e.failures()[1].first, 4u);
  }
  EXPECT_EQ(ran, 5);  // the throw at index 1 did not cut the serial loop short
}

TEST(ThreadPoolTest, ParallelMapNeverPartiallySpliced) {
  // Regression: a throwing iteration used to be able to abandon a batch,
  // leaving default-constructed holes in the ParallelMap result. Now the
  // whole vector is filled before the aggregate error surfaces.
  ThreadPool pool(8);
  std::vector<std::string> out;
  try {
    out = ParallelMap(pool, 64, [](size_t i) -> std::string {
      if (i == 17) {
        throw std::runtime_error("shard failure");
      }
      return "v" + std::to_string(i);
    });
    FAIL() << "expected ParallelForError";
  } catch (const ParallelForError& e) {
    ASSERT_EQ(e.failures().size(), 1u);
    EXPECT_EQ(e.failures()[0].first, 17u);
  }
}

TEST(ThreadPoolTest, NonStdExceptionsAreCollectedToo) {
  ThreadPool pool(2);
  try {
    ParallelFor(pool, 0, 3, [](size_t i) {
      if (i == 2) {
        throw 42;  // not derived from std::exception
      }
    });
    FAIL() << "expected ParallelForError";
  } catch (const ParallelForError& e) {
    ASSERT_EQ(e.failures().size(), 1u);
    EXPECT_EQ(e.failures()[0].first, 2u);
    EXPECT_EQ(e.failures()[0].second, "unknown exception");
  }
}

TEST(ThreadPoolTest, ConcurrentPoolsDoNotInterfere) {
  // Two pools driven from two threads at once — the shape of the parallel
  // scan stress test, at the pool level.
  std::atomic<uint64_t> a{0};
  std::atomic<uint64_t> b{0};
  std::thread ta([&a] {
    ThreadPool pool(4);
    ParallelFor(pool, 0, 500, [&a](size_t i) { a.fetch_add(i); });
  });
  std::thread tb([&b] {
    ThreadPool pool(4);
    ParallelFor(pool, 0, 500, [&b](size_t i) { b.fetch_add(i); });
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a.load(), size_t{124750});
  EXPECT_EQ(b.load(), size_t{124750});
}

}  // namespace
}  // namespace refscan
