// Unit tests for the CPG semantic-event extraction.

#include <gtest/gtest.h>

#include <deque>
#include <string>

#include "src/ast/parser.h"
#include "src/cpg/cpg.h"
#include "src/support/source.h"

namespace refscan {
namespace {

struct Pipeline {
  TranslationUnit unit;
  Cfg cfg;
  Cpg cpg;
};

// Keeps units/cfgs alive; returns a stable pipeline for the first function.
Pipeline& Build(std::string text, const KnowledgeBase& kb) {
  static std::deque<Pipeline> keep;
  keep.push_back(Pipeline{});
  Pipeline& p = keep.back();
  SourceFile file("t.c", std::move(text));
  p.unit = ParseFile(file);
  EXPECT_FALSE(p.unit.functions.empty());
  p.cfg = BuildCfg(p.unit.functions[0]);
  p.cpg = BuildCpg(p.cfg, kb);
  return p;
}

std::vector<const SemEvent*> AllEvents(const Pipeline& p) {
  std::vector<const SemEvent*> out;
  for (size_t i = 0; i < p.cpg.size(); ++i) {
    for (const SemEvent& ev : p.cpg.events(static_cast<int>(i))) {
      out.push_back(&ev);
    }
  }
  return out;
}

const SemEvent* FindEvent(const Pipeline& p, SemOp op, std::string_view object = "") {
  for (const SemEvent* ev : AllEvents(p)) {
    if (ev->op == op && (object.empty() || ev->object == object)) {
      return ev;
    }
  }
  return nullptr;
}

TEST(ObjectSpellingTest, Shapes) {
  auto spell = [](std::string_view text) {
    const ParsedExpr e = ParseExpression(text);
    return ObjectSpelling(*e);
  };
  EXPECT_EQ(spell("np"), "np");
  EXPECT_EQ(spell("crc->dev"), "crc->dev");
  EXPECT_EQ(spell("pdev->dev.of_node"), "pdev->dev.of_node");
  EXPECT_EQ(spell("&serial->kref"), "serial->kref");  // & stripped
  EXPECT_EQ(spell("(struct device *)data"), "data");  // cast stripped
  EXPECT_EQ(spell("*pp"), "*pp");
  EXPECT_EQ(spell("NULL"), "");
  EXPECT_EQ(spell("f(x)"), "");
  EXPECT_EQ(spell("a + b"), "");
}

TEST(ObjectRootTest, Shapes) {
  EXPECT_EQ(ObjectRootOfSpelling("serial->kref"), "serial");
  EXPECT_EQ(ObjectRootOfSpelling("np"), "np");
  EXPECT_EQ(ObjectRootOfSpelling("*pp"), "pp");
  EXPECT_EQ(ObjectRootOfSpelling("a.b.c"), "a");
}

TEST(CpgTest, IncreaseEventFromSpecificApi) {
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  auto& p = Build("void f(struct device_node *np) { of_node_get(np); }", kb);
  const SemEvent* ev = FindEvent(p, SemOp::kIncrease, "np");
  ASSERT_NE(ev, nullptr);
  ASSERT_NE(ev->api, nullptr);
  EXPECT_EQ(ev->api->name, "of_node_get");
}

TEST(CpgTest, DecreaseEventObjectThroughAddressOf) {
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  auto& p = Build("void f(struct s *x) { kref_put(&x->ref, rel); }", kb);
  const SemEvent* ev = FindEvent(p, SemOp::kDecrease);
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ev->object, "x->ref");
}

TEST(CpgTest, FindLikeInitializerBindsResultObject) {
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  auto& p = Build(
      "void f(void) {\n"
      "  struct device_node *np = of_find_node_by_path(\"/cpus\");\n"
      "}\n",
      kb);
  const SemEvent* inc = FindEvent(p, SemOp::kIncrease, "np");
  ASSERT_NE(inc, nullptr);
  EXPECT_EQ(inc->api->name, "of_find_node_by_path");
}

TEST(CpgTest, FindLikeAssignmentBindsResultObject) {
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  auto& p = Build(
      "void f(struct device_node *np) {\n"
      "  np = of_find_node_by_path(\"/cpus\");\n"
      "}\n",
      kb);
  const SemEvent* inc = FindEvent(p, SemOp::kIncrease, "np");
  ASSERT_NE(inc, nullptr);
}

TEST(CpgTest, ConsumedParamEmitsDecrease) {
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  auto& p = Build(
      "void f(struct device_node *from) {\n"
      "  struct device_node *np = of_find_matching_node(from, matches);\n"
      "}\n",
      kb);
  const SemEvent* dec = FindEvent(p, SemOp::kDecrease, "from");
  ASSERT_NE(dec, nullptr);
  EXPECT_EQ(dec->api->name, "of_find_matching_node");
  const SemEvent* inc = FindEvent(p, SemOp::kIncrease, "np");
  ASSERT_NE(inc, nullptr);
}

TEST(CpgTest, DerefEventsFromMemberChain) {
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  auto& p = Build("void f(struct s *a) { use(a->b->c); }", kb);
  EXPECT_NE(FindEvent(p, SemOp::kDeref, "a"), nullptr);
  EXPECT_NE(FindEvent(p, SemOp::kDeref, "a->b"), nullptr);
}

TEST(CpgTest, AddressOfMemberInCallStillDereferencesBase) {
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  auto& p = Build("void f(struct usb_serial *serial) { mutex_unlock(&serial->disc_mutex); }", kb);
  const SemEvent* unlock = FindEvent(p, SemOp::kUnlock);
  ASSERT_NE(unlock, nullptr);
  EXPECT_EQ(unlock->object, "serial->disc_mutex");
}

TEST(CpgTest, LockAndFreeEvents) {
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  auto& p = Build(
      "void f(struct s *x) {\n"
      "  mutex_lock(&x->lock);\n"
      "  kfree(x);\n"
      "}\n",
      kb);
  EXPECT_NE(FindEvent(p, SemOp::kLock), nullptr);
  const SemEvent* free_ev = FindEvent(p, SemOp::kFree, "x");
  ASSERT_NE(free_ev, nullptr);
}

TEST(CpgTest, NullCheckEventsFromConditions) {
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  auto& p = Build(
      "void f(struct s *a, struct s *b, struct s *c) {\n"
      "  if (!a) return;\n"
      "  if (b == NULL) return;\n"
      "  if (c) use(c);\n"
      "}\n",
      kb);
  const SemEvent* a = FindEvent(p, SemOp::kNullCheck, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->checks_null_true_branch);
  const SemEvent* b = FindEvent(p, SemOp::kNullCheck, "b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->checks_null_true_branch);
  const SemEvent* c = FindEvent(p, SemOp::kNullCheck, "c");
  ASSERT_NE(c, nullptr);
  EXPECT_FALSE(c->checks_null_true_branch);
}

TEST(CpgTest, ReturnEventCarriesObject) {
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  auto& p = Build("struct s *f(struct s *x) { return x; }", kb);
  const SemEvent* ret = FindEvent(p, SemOp::kReturn);
  ASSERT_NE(ret, nullptr);
  EXPECT_EQ(ret->object, "x");
}

TEST(CpgTest, EscapeFlagOnGlobalAssignment) {
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  auto& p = Build(
      "void f(struct s *x) {\n"
      "  struct s *local;\n"
      "  local = x;\n"
      "  g_cache = x;\n"
      "}\n",
      kb);
  bool local_escapes = true;
  bool global_escapes = false;
  for (const SemEvent* ev : AllEvents(p)) {
    if (ev->op == SemOp::kAssign && ev->object == "local") {
      local_escapes = ev->escapes;
    }
    if (ev->op == SemOp::kAssign && ev->object == "g_cache") {
      global_escapes = ev->escapes;
    }
  }
  EXPECT_FALSE(local_escapes);
  EXPECT_TRUE(global_escapes);
}

TEST(CpgTest, EscapeFlagOnOutParamStore) {
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  auto& p = Build(
      "void f(struct ctx *ctx, struct s *x) {\n"
      "  ctx->cached = x;\n"
      "}\n",
      kb);
  const SemEvent* assign = FindEvent(p, SemOp::kAssign, "ctx->cached");
  ASSERT_NE(assign, nullptr);
  EXPECT_TRUE(assign->escapes);
  EXPECT_EQ(assign->aux, "x");
}

TEST(CpgTest, SmartLoopHeadEvent) {
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  auto& p = Build(
      "void f(struct device_node *parent) {\n"
      "  struct device_node *child;\n"
      "  for_each_child_of_node(parent, child) {\n"
      "    use(child);\n"
      "  }\n"
      "}\n",
      kb);
  const SemEvent* head = FindEvent(p, SemOp::kLoopHead);
  ASSERT_NE(head, nullptr);
  ASSERT_NE(head->loop, nullptr);
  EXPECT_EQ(head->loop->name, "for_each_child_of_node");
  EXPECT_EQ(head->object, "child");  // iterator_arg = 1
}

TEST(CpgTest, UnknownMacroLoopHasNullLoopInfo) {
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  auto& p = Build(
      "void f(void) {\n"
      "  list_for_each_entry(evt, head, node) { use(evt); }\n"
      "}\n",
      kb);
  const SemEvent* head = FindEvent(p, SemOp::kLoopHead);
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->loop, nullptr);
}

TEST(CpgTest, ParamsAndLocalsCollected) {
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  auto& p = Build(
      "void f(struct s *a, int b) {\n"
      "  int x = 0;\n"
      "  struct s *y;\n"
      "}\n",
      kb);
  EXPECT_TRUE(p.cpg.params().contains("a"));
  EXPECT_TRUE(p.cpg.params().contains("b"));
  EXPECT_TRUE(p.cpg.locals().contains("x"));
  EXPECT_TRUE(p.cpg.locals().contains("y"));
  EXPECT_FALSE(p.cpg.locals().contains("a"));
}

TEST(CpgTest, EventsAlongConcatenatesPath) {
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  auto& p = Build(
      "void f(struct device_node *np) {\n"
      "  of_node_get(np);\n"
      "  of_node_put(np);\n"
      "}\n",
      kb);
  std::vector<int> found_path;
  p.cfg.EnumeratePaths([&](const std::vector<int>& path) { found_path = path; }, 1);
  const auto events = p.cpg.EventsAlong(found_path);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0]->op, SemOp::kIncrease);
  EXPECT_EQ(events[1]->op, SemOp::kDecrease);
}

}  // namespace
}  // namespace refscan
