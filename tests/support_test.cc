// Unit tests for src/support: PRNG determinism, string utilities, source
// buffers and kernel-path splitting.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/support/prng.h"
#include "src/support/source.h"
#include "src/support/strings.h"

namespace refscan {
namespace {

TEST(SplitMix64Test, KnownSequence) {
  // Reference values for seed 0 from the SplitMix64 reference implementation.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.Next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.Next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.Next(), 0x06c45d188009454fULL);
}

TEST(Xoshiro256ppTest, DeterministicForSeed) {
  Xoshiro256pp a(42);
  Xoshiro256pp b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Xoshiro256ppTest, DifferentSeedsDiverge) {
  Xoshiro256pp a(1);
  Xoshiro256pp b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += (a.Next() == b.Next()) ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro256ppTest, BelowStaysInRange) {
  Xoshiro256pp rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
  EXPECT_EQ(rng.Below(0), 0u);
}

TEST(Xoshiro256ppTest, RangeInclusive) {
  Xoshiro256pp rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 500 draws
}

TEST(Xoshiro256ppTest, NextDoubleInUnitInterval) {
  Xoshiro256pp rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256ppTest, ChanceExtremes) {
  Xoshiro256pp rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(Xoshiro256ppTest, ForkIndependentOfParentDraws) {
  // Forking with the same salt from the same state must give equal streams.
  Xoshiro256pp parent(99);
  Xoshiro256pp c1 = parent.Fork(5);
  Xoshiro256pp c2 = parent.Fork(5);
  EXPECT_EQ(c1.Next(), c2.Next());
  Xoshiro256pp c3 = parent.Fork(6);
  EXPECT_NE(c1.Next(), c3.Next());
}

TEST(HashStringTest, StableAndSensitive) {
  constexpr uint64_t h1 = HashString("drivers/usb", 11);
  constexpr uint64_t h2 = HashString("drivers/usb", 11);
  constexpr uint64_t h3 = HashString("drivers/usc", 11);
  static_assert(h1 == h2);
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, h3);
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitWhitespaceTest, DropsEmptyFields) {
  const auto parts = SplitWhitespace("  foo\t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"x"}, ", "), "x");
}

TEST(TrimTest, Basic) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(ToLowerTest, Ascii) {
  EXPECT_EQ(ToLower("Use-After-Free"), "use-after-free");
}

TEST(IdentifierWordsTest, SplitsOnUnderscoresAndPunct) {
  const auto words = IdentifierWords("of_node_get(np)->kref");
  const std::vector<std::string> expected = {"of", "node", "get", "np", "kref"};
  EXPECT_EQ(words, expected);
}

TEST(ContainsIdentifierWordTest, MatchesApiKeywords) {
  EXPECT_TRUE(ContainsIdentifierWord("bus_find_device", "find"));
  EXPECT_TRUE(ContainsIdentifierWord("of_node_get", "get"));
  EXPECT_FALSE(ContainsIdentifierWord("forget_me", "get"));
  EXPECT_FALSE(ContainsIdentifierWord("target", "get"));
}

TEST(EndsWithWordTest, IdentifierBoundaries) {
  EXPECT_TRUE(EndsWithWord("usb_serial_put", "put"));
  EXPECT_TRUE(EndsWithWord("put", "put"));
  EXPECT_FALSE(EndsWithWord("output", "put"));
  EXPECT_FALSE(EndsWithWord("input", "put"));
  EXPECT_TRUE(EndsWithWord("kref_get", "get"));
}

TEST(StartsWithWordTest, IdentifierBoundaries) {
  EXPECT_TRUE(StartsWithWord("get_device", "get"));
  EXPECT_FALSE(StartsWithWord("getter_device", "get"));
  EXPECT_TRUE(StartsWithWord("get", "get"));
}

TEST(StrFormatTest, Basic) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.1f%%", 71.66), "71.7%");
}

TEST(SourceFileTest, LineAtMapsOffsets) {
  SourceFile file("a.c", "one\ntwo\nthree\n");
  EXPECT_EQ(file.LineAt(0), 1u);
  EXPECT_EQ(file.LineAt(3), 1u);
  EXPECT_EQ(file.LineAt(4), 2u);
  EXPECT_EQ(file.LineAt(8), 3u);
  EXPECT_EQ(file.LineAt(1000), 3u);
  EXPECT_EQ(file.line_count(), 3u);
}

TEST(SourceFileTest, LineTextExtraction) {
  SourceFile file("a.c", "one\ntwo\nthree");
  EXPECT_EQ(file.Line(1), "one");
  EXPECT_EQ(file.Line(2), "two");
  EXPECT_EQ(file.Line(3), "three");
  EXPECT_EQ(file.Line(0), "");
  EXPECT_EQ(file.Line(4), "");
}

TEST(SourceFileTest, EmptyFile) {
  SourceFile file("e.c", "");
  EXPECT_EQ(file.LineAt(0), 1u);
  EXPECT_EQ(file.line_count(), 1u);
}

TEST(SourceTreeTest, AddFindAndLinesUnder) {
  SourceTree tree;
  tree.Add("drivers/usb/serial.c", "a\nb\nc\n");
  tree.Add("drivers/net/eth.c", "x\ny\n");
  tree.Add("fs/ext4/inode.c", "z\n");
  ASSERT_NE(tree.Find("drivers/usb/serial.c"), nullptr);
  EXPECT_EQ(tree.Find("nope.c"), nullptr);
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.LinesUnder("drivers/"), 5u);
  EXPECT_EQ(tree.LinesUnder("fs/"), 1u);
  EXPECT_EQ(tree.LinesUnder(""), 6u);
}

TEST(SourceTreeTest, AddReplacesExisting) {
  SourceTree tree;
  tree.Add("a.c", "1\n2\n");
  tree.Add("a.c", "1\n");
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.Find("a.c")->line_count(), 1u);
}

TEST(SplitKernelPathTest, SubsystemAndModule) {
  const PathParts p1 = SplitKernelPath("drivers/usb/serial/console.c");
  EXPECT_EQ(p1.subsystem, "drivers");
  EXPECT_EQ(p1.module, "usb");
  const PathParts p2 = SplitKernelPath("init/main.c");
  EXPECT_EQ(p2.subsystem, "init");
  EXPECT_EQ(p2.module, "");
  const PathParts p3 = SplitKernelPath("Makefile");
  EXPECT_EQ(p3.subsystem, "Makefile");
  EXPECT_EQ(p3.module, "");
}

// Property sweep: Below(bound) is roughly uniform for several bounds.
class PrngUniformityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrngUniformityTest, BelowIsApproximatelyUniform) {
  const uint64_t bound = GetParam();
  Xoshiro256pp rng(123 + bound);
  std::vector<int> counts(bound, 0);
  const int draws = static_cast<int>(2000 * bound);
  for (int i = 0; i < draws; ++i) {
    ++counts[rng.Below(bound)];
  }
  for (uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], 2000, 2000 * 0.25) << "bound=" << bound << " value=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, PrngUniformityTest, ::testing::Values(2, 3, 5, 8, 13));

}  // namespace
}  // namespace refscan
