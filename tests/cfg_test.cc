// Unit tests for CFG construction, error-context classification and path
// enumeration.

#include <gtest/gtest.h>

#include <set>

#include "src/ast/parser.h"
#include "src/cfg/cfg.h"
#include "src/support/source.h"

namespace refscan {
namespace {

struct Built {
  TranslationUnit unit;
  Cfg cfg;
};

Built Build(std::string text) {
  SourceFile file("t.c", std::move(text));
  static std::vector<TranslationUnit> keep;  // function ASTs must outlive CFGs
  keep.push_back(ParseFile(file));
  EXPECT_FALSE(keep.back().functions.empty());
  return Built{TranslationUnit{}, BuildCfg(keep.back().functions[0])};
}

size_t CountPaths(const Cfg& cfg, size_t max_paths = 2048) {
  size_t n = 0;
  cfg.EnumeratePaths([&](const std::vector<int>&) { ++n; }, max_paths);
  return n;
}

TEST(CfgTest, StraightLineHasOnePath) {
  auto built = Build("void f(void) { a(); b(); c(); }");
  EXPECT_EQ(CountPaths(built.cfg), 1u);
  // entry, exit, 3 statements
  EXPECT_EQ(built.cfg.size(), 5u);
}

TEST(CfgTest, IfElseGivesTwoPaths) {
  auto built = Build("void f(int x) { if (x) a(); else b(); c(); }");
  EXPECT_EQ(CountPaths(built.cfg), 2u);
}

TEST(CfgTest, IfWithoutElseGivesTwoPaths) {
  auto built = Build("void f(int x) { if (x) a(); c(); }");
  EXPECT_EQ(CountPaths(built.cfg), 2u);
}

TEST(CfgTest, ReturnShortCircuitsToExit) {
  auto built = Build("int f(int x) { if (x) return 1; a(); return 0; }");
  EXPECT_EQ(CountPaths(built.cfg), 2u);
  // No path contains both the early return and a().
  built.cfg.EnumeratePaths([&](const std::vector<int>& path) {
    bool saw_ret1 = false;
    bool saw_a = false;
    for (int n : path) {
      const CfgNode& node = built.cfg.node(n);
      if (node.stmt != nullptr && node.stmt->kind == Stmt::Kind::kReturn &&
          node.stmt->expr != nullptr && node.stmt->expr->value == "1") {
        saw_ret1 = true;
      }
      if (node.expr != nullptr && node.expr->IsCall() && node.expr->CalleeName() == "a") {
        saw_a = true;
      }
    }
    EXPECT_FALSE(saw_ret1 && saw_a);
  });
}

TEST(CfgTest, WhileLoopBoundedPaths) {
  auto built = Build("void f(void) { while (c()) body(); after(); }");
  // 0, 1 or 2 iterations under the visit cap.
  const size_t paths = CountPaths(built.cfg);
  EXPECT_GE(paths, 2u);
  EXPECT_LE(paths, 4u);
}

TEST(CfgTest, GotoResolvesToLabel) {
  auto built = Build(
      "int f(void) {\n"
      "  if (bad())\n"
      "    goto err;\n"
      "  ok();\n"
      "  return 0;\n"
      "err:\n"
      "  cleanup();\n"
      "  return -1;\n"
      "}\n");
  // Paths: good path; goto path. The fallthrough `return 0` prevents
  // falling into err:, so exactly 2 paths.
  EXPECT_EQ(CountPaths(built.cfg), 2u);
  bool goto_reaches_cleanup = false;
  built.cfg.EnumeratePaths([&](const std::vector<int>& path) {
    bool saw_goto = false;
    for (int n : path) {
      const CfgNode& node = built.cfg.node(n);
      if (node.stmt != nullptr && node.stmt->kind == Stmt::Kind::kGoto) {
        saw_goto = true;
      }
      if (saw_goto && node.expr != nullptr && node.expr->IsCall() &&
          node.expr->CalleeName() == "cleanup") {
        goto_reaches_cleanup = true;
      }
    }
  });
  EXPECT_TRUE(goto_reaches_cleanup);
}

TEST(CfgTest, ErrorLabelRegionIsErrorContext) {
  auto built = Build(
      "int f(void) {\n"
      "  ok();\n"
      "  return 0;\n"
      "err_free:\n"
      "  cleanup();\n"
      "  return -1;\n"
      "}\n");
  bool cleanup_is_error = false;
  bool ok_is_error = false;
  for (size_t i = 0; i < built.cfg.size(); ++i) {
    const CfgNode& node = built.cfg.node(static_cast<int>(i));
    if (node.expr != nullptr && node.expr->IsCall()) {
      if (node.expr->CalleeName() == "cleanup") {
        cleanup_is_error = node.is_error_context;
      }
      if (node.expr->CalleeName() == "ok") {
        ok_is_error = node.is_error_context;
      }
    }
  }
  EXPECT_TRUE(cleanup_is_error);
  EXPECT_FALSE(ok_is_error);
}

TEST(CfgTest, ErrorConditionBranchIsErrorContext) {
  auto built = Build(
      "int f(void) {\n"
      "  int ret = g();\n"
      "  if (ret < 0) {\n"
      "    handle();\n"
      "    return ret;\n"
      "  }\n"
      "  good();\n"
      "  return 0;\n"
      "}\n");
  bool handle_is_error = false;
  bool good_is_error = true;
  for (size_t i = 0; i < built.cfg.size(); ++i) {
    const CfgNode& node = built.cfg.node(static_cast<int>(i));
    if (node.expr != nullptr && node.expr->IsCall()) {
      if (node.expr->CalleeName() == "handle") {
        handle_is_error = node.is_error_context;
      }
      if (node.expr->CalleeName() == "good") {
        good_is_error = node.is_error_context;
      }
    }
  }
  EXPECT_TRUE(handle_is_error);
  EXPECT_FALSE(good_is_error);
}

TEST(CfgTest, MacroLoopMembershipRecorded) {
  auto built = Build(
      "void f(void) {\n"
      "  for_each_child_of_node(parent, child) {\n"
      "    use(child);\n"
      "    if (match(child))\n"
      "      break;\n"
      "  }\n"
      "  after();\n"
      "}\n");
  int head = -1;
  for (size_t i = 0; i < built.cfg.size(); ++i) {
    if (built.cfg.node(static_cast<int>(i)).kind == CfgNode::Kind::kLoopHead) {
      head = static_cast<int>(i);
    }
  }
  ASSERT_GE(head, 0);
  bool use_in_loop = false;
  bool after_in_loop = false;
  bool break_in_loop = false;
  for (size_t i = 0; i < built.cfg.size(); ++i) {
    const CfgNode& node = built.cfg.node(static_cast<int>(i));
    if (node.expr != nullptr && node.expr->IsCall() && node.expr->CalleeName() == "use") {
      use_in_loop = node.macro_loop == head;
    }
    if (node.expr != nullptr && node.expr->IsCall() && node.expr->CalleeName() == "after") {
      after_in_loop = node.macro_loop == head;
    }
    if (node.stmt != nullptr && node.stmt->kind == Stmt::Kind::kBreak) {
      break_in_loop = node.macro_loop == head;
    }
  }
  EXPECT_TRUE(use_in_loop);
  EXPECT_TRUE(break_in_loop);
  EXPECT_FALSE(after_in_loop);
}

TEST(CfgTest, PathCapTruncates) {
  // 12 sequential ifs → 2^12 paths, cap at 16.
  std::string body;
  for (int i = 0; i < 12; ++i) {
    body += "if (c" + std::to_string(i) + ") a();\n";
  }
  auto built = Build("void f(void) {\n" + body + "}\n");
  size_t n = 0;
  const bool complete = built.cfg.EnumeratePaths([&](const std::vector<int>&) { ++n; }, 16);
  EXPECT_FALSE(complete);
  EXPECT_EQ(n, 16u);
}

TEST(ClassifyErrorConditionTest, Shapes) {
  auto classify = [](std::string_view text) {
    const ParsedExpr e = ParseExpression(text);
    return ClassifyErrorCondition(*e);
  };
  EXPECT_EQ(classify("ret < 0"), 1);
  EXPECT_EQ(classify("ret >= 0"), -1);
  EXPECT_EQ(classify("!np"), 1);
  EXPECT_EQ(classify("np == NULL"), 1);
  EXPECT_EQ(classify("np != NULL"), -1);
  EXPECT_EQ(classify("IS_ERR(ptr)"), 1);
  EXPECT_EQ(classify("unlikely(ret < 0)"), 1);
  EXPECT_EQ(classify("ret"), 1);
  EXPECT_EQ(classify("x > 10"), 0);
  EXPECT_EQ(classify("a && ret < 0"), 1);
}

TEST(IsErrorLabelTest, Names) {
  EXPECT_TRUE(IsErrorLabel("err"));
  EXPECT_TRUE(IsErrorLabel("err_out"));
  EXPECT_TRUE(IsErrorLabel("out"));
  EXPECT_TRUE(IsErrorLabel("fail_unmap"));
  EXPECT_TRUE(IsErrorLabel("cleanup"));
  EXPECT_FALSE(IsErrorLabel("retry"));
  EXPECT_FALSE(IsErrorLabel("done_ok"));
}

TEST(ReturnsErrorCodeTest, Shapes) {
  auto returns_err = [](std::string body) {
    const TranslationUnit unit = ParseSnippet(std::move(body));
    bool found = false;
    ForEachStmt(*unit.functions[0].body, [&](const Stmt& s) { found |= ReturnsErrorCode(s); });
    return found;
  };
  EXPECT_TRUE(returns_err("return -EINVAL;"));
  EXPECT_TRUE(returns_err("return -1;"));
  EXPECT_TRUE(returns_err("return ERR_PTR(-ENOMEM);"));
  EXPECT_FALSE(returns_err("return 0;"));
  EXPECT_FALSE(returns_err("return np;"));
}

// Property sweep: for N sequential binary branches, path count is exactly
// 2^N (below the cap) and all paths start at entry / end at exit.
class PathCountTest : public ::testing::TestWithParam<int> {};

TEST_P(PathCountTest, SequentialBranches) {
  const int n = GetParam();
  std::string body;
  for (int i = 0; i < n; ++i) {
    body += "if (c" + std::to_string(i) + ") a" + std::to_string(i) + "();\n";
  }
  auto built = Build("void f(void) {\n" + body + "}\n");
  size_t paths = 0;
  built.cfg.EnumeratePaths(
      [&](const std::vector<int>& path) {
        ++paths;
        ASSERT_FALSE(path.empty());
        EXPECT_EQ(path.front(), built.cfg.entry());
        EXPECT_EQ(path.back(), built.cfg.exit());
      },
      4096);
  EXPECT_EQ(paths, static_cast<size_t>(1) << n);
}

INSTANTIATE_TEST_SUITE_P(Branches, PathCountTest, ::testing::Values(0, 1, 2, 3, 5, 8));

}  // namespace
}  // namespace refscan
