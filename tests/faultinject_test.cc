// Fault-isolation tests (DESIGN.md §5.9): the deterministic fault-injection
// registry, the engine's per-file sandboxes and quarantine reports, the
// resource governors, and the circuit breaker.
//
// The contract under test: a scan of N files with k injected failures still
// completes, quarantines exactly the k failed files, and emits reports for
// the other N−k that are byte-identical to scanning the healthy subset
// alone — at every thread count, cached and uncached.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "src/checkers/engine.h"
#include "src/support/faultinject.h"
#include "src/support/governor.h"

namespace refscan {
namespace {

namespace stdfs = std::filesystem;

// One known-leaky function per file (of_get_parent with no matching put):
// every healthy file contributes exactly one deterministic report.
std::string LeakyFile(const std::string& fn) {
  return "static int " + fn +
         "_probe(struct device_node *np)\n"
         "{\n"
         "  struct device_node *child = of_get_parent(np);\n"
         "  return 0;\n"
         "}\n";
}

SourceTree ThreeFileTree() {
  SourceTree tree;
  tree.Add("drivers/a/alpha.c", LeakyFile("alpha"));
  tree.Add("drivers/b/broken.c", LeakyFile("broken"));
  tree.Add("drivers/c/gamma.c", LeakyFile("gamma"));
  return tree;
}

SourceTree HealthySubset() {
  SourceTree tree;
  tree.Add("drivers/a/alpha.c", LeakyFile("alpha"));
  tree.Add("drivers/c/gamma.c", LeakyFile("gamma"));
  return tree;
}

ScanResult ScanTree(const SourceTree& tree, ScanOptions options) {
  CheckerEngine engine(KnowledgeBase::BuiltIn(), std::move(options));
  return engine.Scan(tree);
}

// ---- spec parsing ----

TEST(FaultSpecTest, ParsesTriggersActionsAndSeed) {
  FaultPlan plan;
  ASSERT_TRUE(ParseFaultSpec(
      "seed=42, fs.read:every=7, parser.parse:file=*.broken.c, cache.load:once:truncate, "
      "checker.run:always:delay=5",
      plan));
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.rules.size(), 4u);
  EXPECT_EQ(plan.rules[0].site, "fs.read");
  EXPECT_EQ(plan.rules[0].trigger, FaultRule::Trigger::kEvery);
  EXPECT_EQ(plan.rules[0].every_n, 7u);
  EXPECT_EQ(plan.rules[1].trigger, FaultRule::Trigger::kFile);
  EXPECT_EQ(plan.rules[1].glob, "*.broken.c");
  EXPECT_EQ(plan.rules[2].action, FaultRule::Action::kTruncate);
  EXPECT_EQ(plan.rules[3].action, FaultRule::Action::kDelay);
  EXPECT_EQ(plan.rules[3].delay_ms, 5u);
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(ParseFaultSpec("nonsense", plan, &error));
  EXPECT_FALSE(ParseFaultSpec("no.such.site:always", plan, &error));
  EXPECT_NE(error.find("unknown fault site"), std::string::npos);
  EXPECT_FALSE(ParseFaultSpec("fs.read:every=0", plan, &error));
  EXPECT_FALSE(ParseFaultSpec("fs.read:file=", plan, &error));
  EXPECT_FALSE(ParseFaultSpec("fs.read:always:delay=999999", plan, &error));
  EXPECT_FALSE(ParseFaultSpec("fs.read:whenever", plan, &error));
  // A failed parse must leave `plan` untouched.
  ASSERT_TRUE(ParseFaultSpec("fs.read:always", plan));
  EXPECT_FALSE(ParseFaultSpec("garbage", plan, &error));
  EXPECT_EQ(plan.rules.size(), 1u);
}

TEST(FaultSpecTest, GlobMatchCoversStarsAndQuestionMarks) {
  EXPECT_TRUE(GlobMatch("*.c", "drivers/a/alpha.c"));
  EXPECT_TRUE(GlobMatch("*broken*", "drivers/b/broken.c"));
  EXPECT_TRUE(GlobMatch("drivers/?/*.c", "drivers/b/broken.c"));
  EXPECT_TRUE(GlobMatch("*", ""));
  EXPECT_FALSE(GlobMatch("*.h", "drivers/a/alpha.c"));
  EXPECT_FALSE(GlobMatch("alpha.c", "drivers/a/alpha.c"));  // whole-string match
  EXPECT_TRUE(GlobMatch("a*b*c", "a_x_b_y_c"));
  EXPECT_FALSE(GlobMatch("a*b*c", "a_x_b_y"));
}

// ---- the registry itself ----

TEST(FaultRegistryTest, DisarmedIsNoop) {
  DisarmFaults();
  EXPECT_FALSE(FaultsArmed());
  EXPECT_NO_THROW(MaybeFault("fs.read", "anything"));
}

TEST(FaultRegistryTest, ScopedArmFiresAndRestores) {
  {
    ScopedFaultArm arm(std::string_view("parser.parse:always"));
    EXPECT_TRUE(FaultsArmed());
    EXPECT_THROW(MaybeFault("parser.parse", "x.c"), FaultInjected);
    EXPECT_NO_THROW(MaybeFault("fs.read", "x.c"));  // other sites unaffected
  }
  EXPECT_FALSE(FaultsArmed());
  EXPECT_NO_THROW(MaybeFault("parser.parse", "x.c"));
}

TEST(FaultRegistryTest, OnceFiresOncePerSubject) {
  ScopedFaultArm arm(std::string_view("fs.read:once:io"));
  EXPECT_THROW(MaybeFault("fs.read", "a.c"), FaultInjected);
  EXPECT_NO_THROW(MaybeFault("fs.read", "a.c"));  // second hit: counter spent
  EXPECT_THROW(MaybeFault("fs.read", "b.c"), FaultInjected);  // fresh subject
}

TEST(FaultRegistryTest, TransientIoIsMarked) {
  ScopedFaultArm arm(std::string_view("fs.read:always:io"));
  try {
    MaybeFault("fs.read", "a.c");
    FAIL() << "expected FaultInjected";
  } catch (const FaultInjected& e) {
    EXPECT_TRUE(e.transient_io());
    EXPECT_EQ(e.site(), "fs.read");
  }
}

TEST(FaultRegistryTest, EverySelectsByHashNotCallOrder) {
  // The every=N selector must depend only on (seed, site, subject) — calling
  // in a different order, or repeatedly, picks the same subjects.
  const auto selected = [](const std::vector<std::string>& subjects) {
    std::vector<std::string> hit;
    for (const std::string& s : subjects) {
      try {
        MaybeFault("fs.read", s);
      } catch (const FaultInjected&) {
        hit.push_back(s);
      }
    }
    return hit;
  };
  std::vector<std::string> subjects;
  for (int i = 0; i < 64; ++i) {
    subjects.push_back("dir/file" + std::to_string(i) + ".c");
  }
  ScopedFaultArm arm(std::string_view("seed=1,fs.read:every=3"));
  const std::vector<std::string> forward = selected(subjects);
  std::vector<std::string> reversed_input(subjects.rbegin(), subjects.rend());
  std::vector<std::string> backward = selected(reversed_input);
  std::sort(backward.begin(), backward.end());
  std::vector<std::string> forward_sorted = forward;
  std::sort(forward_sorted.begin(), forward_sorted.end());
  EXPECT_EQ(forward_sorted, backward);
  EXPECT_FALSE(forward.empty());                  // ~1/3 of 64 subjects
  EXPECT_LT(forward.size(), subjects.size());     // but never all of them
}

// ---- per-file sandboxes & quarantine ----

TEST(FaultIsolationTest, ParseFaultQuarantinesExactlyThatFile) {
  ScanOptions options;
  options.fault_spec = "parser.parse:file=*broken.c";
  const ScanResult degraded = ScanTree(ThreeFileTree(), options);
  const ScanResult healthy = ScanTree(HealthySubset(), ScanOptions{});

  EXPECT_FALSE(degraded.aborted);
  ASSERT_EQ(degraded.failures.size(), 1u);
  EXPECT_EQ(degraded.failures[0].path, "drivers/b/broken.c");
  EXPECT_EQ(degraded.failures[0].stage, FailureStage::kParse);
  EXPECT_EQ(degraded.failures[0].kind, FailureKind::kParse);
  EXPECT_EQ(degraded.stats.files_quarantined, 1u);

  // The surviving reports are byte-identical to scanning the healthy subset
  // alone: the quarantined file contributed nothing, not even KB facts.
  EXPECT_EQ(ReportsToJson(degraded.reports), ReportsToJson(healthy.reports));
  EXPECT_EQ(degraded.reports.size(), 2u);
}

TEST(FaultIsolationTest, QuarantineDeterministicAcrossJobs) {
  SourceTree tree;
  for (int i = 0; i < 12; ++i) {
    const std::string name = "drivers/x/file" + std::to_string(i) + ".c";
    tree.Add(name, LeakyFile("f" + std::to_string(i)));
  }
  ScanOptions serial;
  serial.jobs = 1;
  serial.fault_spec = "seed=9,parser.parse:every=3";
  ScanOptions wide = serial;
  wide.jobs = 4;
  const ScanResult a = ScanTree(tree, serial);
  const ScanResult b = ScanTree(tree, wide);

  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].path, b.failures[i].path);
    EXPECT_EQ(a.failures[i].stage, b.failures[i].stage);
  }
  EXPECT_EQ(ReportsToJson(a.reports), ReportsToJson(b.reports));
  EXPECT_FALSE(a.failures.empty());
  EXPECT_FALSE(a.reports.empty());
}

TEST(FaultIsolationTest, TransientIoIsRetriedAndSucceeds) {
  // `once:io`: the first parse attempt per file throws a transient failure,
  // the sandbox retries, the retry succeeds — nothing is quarantined and
  // the output matches a clean scan.
  ScanOptions options;
  options.fault_spec = "parser.parse:once:io";
  const ScanResult retried = ScanTree(ThreeFileTree(), options);
  const ScanResult clean = ScanTree(ThreeFileTree(), ScanOptions{});

  EXPECT_TRUE(retried.failures.empty());
  EXPECT_EQ(retried.stats.files_quarantined, 0u);
  EXPECT_EQ(retried.stats.files_retried, 3u);
  EXPECT_EQ(ReportsToJson(retried.reports), ReportsToJson(clean.reports));
}

TEST(FaultIsolationTest, CheckStageFaultQuarantinesAfterDiscovery) {
  // A stage-3 failure quarantines the file but its stage-1 facts already fed
  // the KB, so the healthy files' reports match the *full* clean scan with
  // the broken file's own reports removed.
  ScanOptions options;
  options.fault_spec = "checker.run:file=*broken.c";
  const ScanResult degraded = ScanTree(ThreeFileTree(), options);
  ScanResult clean = ScanTree(ThreeFileTree(), ScanOptions{});

  ASSERT_EQ(degraded.failures.size(), 1u);
  EXPECT_EQ(degraded.failures[0].path, "drivers/b/broken.c");
  EXPECT_EQ(degraded.failures[0].stage, FailureStage::kCheck);

  std::erase_if(clean.reports,
                [](const BugReport& r) { return r.file == "drivers/b/broken.c"; });
  EXPECT_EQ(ReportsToJson(degraded.reports), ReportsToJson(clean.reports));
}

TEST(FaultIsolationTest, BadFaultSpecAbortsLoudly) {
  ScanOptions options;
  options.fault_spec = "parser.parse:whenever";
  const ScanResult result = ScanTree(ThreeFileTree(), options);
  EXPECT_TRUE(result.aborted);
  EXPECT_NE(result.abort_reason.find("invalid fault spec"), std::string::npos);
  EXPECT_TRUE(result.reports.empty());
}

TEST(FaultIsolationTest, CircuitBreakerAbortsMostlyBrokenTree) {
  ScanOptions options;
  options.fault_spec = "parser.parse:always";
  options.max_failure_ratio = 0.5;
  const ScanResult result = ScanTree(ThreeFileTree(), options);
  EXPECT_TRUE(result.aborted);
  EXPECT_NE(result.abort_reason.find("max_failure_ratio"), std::string::npos);
  EXPECT_EQ(result.failures.size(), 3u);

  // Off by default: the same scan without the breaker completes (degraded).
  ScanOptions no_breaker;
  no_breaker.fault_spec = "parser.parse:always";
  const ScanResult completed = ScanTree(ThreeFileTree(), no_breaker);
  EXPECT_FALSE(completed.aborted);
  EXPECT_EQ(completed.failures.size(), 3u);
  EXPECT_TRUE(completed.reports.empty());
}

TEST(FaultIsolationTest, ScanResultJsonCarriesDegradedEntries) {
  ScanOptions options;
  options.fault_spec = "parser.parse:file=*broken.c";
  const ScanResult result = ScanTree(ThreeFileTree(), options);
  const std::string json = ScanResultToJson(result, /*include_stats=*/true);
  EXPECT_NE(json.find("\"degraded\": ["), std::string::npos);
  EXPECT_NE(json.find("\"path\": \"drivers/b/broken.c\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\": \"parse\""), std::string::npos);
  EXPECT_NE(json.find("\"stats\": {"), std::string::npos);
  EXPECT_NE(json.find("\"quarantined\": 1"), std::string::npos);
  EXPECT_EQ(json.find("\"aborted\""), std::string::npos);

  const std::string no_stats = ScanResultToJson(result);
  EXPECT_EQ(no_stats.find("\"stats\""), std::string::npos);
}

// ---- cache hardening ----

class FaultCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cache_dir_ = (stdfs::temp_directory_path() /
                  (std::string("refscan_fault_cache_") +
                   ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                     .string();
    stdfs::remove_all(cache_dir_);
  }
  void TearDown() override { stdfs::remove_all(cache_dir_); }

  std::string cache_dir_;
};

TEST_F(FaultCacheTest, ArmedRescanQuarantinesColdAndWarm) {
  // A faulted file never stores cache artifacts, so a warm armed rescan
  // re-parses (and re-faults) it deterministically while the healthy files
  // replay from the cache.
  ScanOptions options;
  options.cache_dir = cache_dir_;
  options.fault_spec = "parser.parse:file=*broken.c";
  const ScanResult cold = ScanTree(ThreeFileTree(), options);
  const ScanResult warm = ScanTree(ThreeFileTree(), options);

  ASSERT_EQ(cold.failures.size(), 1u);
  ASSERT_EQ(warm.failures.size(), 1u);
  EXPECT_EQ(warm.failures[0].path, "drivers/b/broken.c");
  EXPECT_EQ(ReportsToJson(cold.reports), ReportsToJson(warm.reports));
  EXPECT_GT(warm.stats.cache_hits, 0u);

  const ScanResult healthy = ScanTree(HealthySubset(), ScanOptions{});
  EXPECT_EQ(ReportsToJson(warm.reports), ReportsToJson(healthy.reports));
}

TEST_F(FaultCacheTest, CorruptCacheLoadsDegradeToMisses) {
  ScanOptions clean_options;
  clean_options.cache_dir = cache_dir_;
  const ScanResult cold = ScanTree(ThreeFileTree(), clean_options);

  ScanOptions faulty = clean_options;
  faulty.fault_spec = "cache.load:always:truncate";
  const ScanResult warm = ScanTree(ThreeFileTree(), faulty);

  // Every load "corrupted": the scan silently falls back to a cold scan —
  // same reports, no quarantine, and the corruption is visible in stats.
  EXPECT_TRUE(warm.failures.empty());
  EXPECT_EQ(ReportsToJson(cold.reports), ReportsToJson(warm.reports));
  EXPECT_EQ(warm.stats.cache_hits, 0u);
  EXPECT_GT(warm.stats.cache_corrupt, 0u);
}

TEST_F(FaultCacheTest, FailedStoresLeaveNextScanCold) {
  ScanOptions faulty;
  faulty.cache_dir = cache_dir_;
  faulty.fault_spec = "cache.store:always";
  const ScanResult first = ScanTree(ThreeFileTree(), faulty);
  EXPECT_TRUE(first.failures.empty());  // store failures never quarantine

  ScanOptions clean_options;
  clean_options.cache_dir = cache_dir_;
  const ScanResult second = ScanTree(ThreeFileTree(), clean_options);
  EXPECT_EQ(second.stats.cache_hits, 0u);  // nothing was ever stored
  EXPECT_EQ(ReportsToJson(first.reports), ReportsToJson(second.reports));
}

// ---- stage 2.5 degradation ----

TEST(FaultIsolationTest, SummaryStageFaultDegradesToIntraprocedural) {
  ScanOptions ipa_options;
  ipa_options.interprocedural = true;
  ipa_options.fault_spec = "ipa.summarize:always";
  const ScanResult degraded = ScanTree(ThreeFileTree(), ipa_options);

  ASSERT_EQ(degraded.failures.size(), 1u);
  EXPECT_EQ(degraded.failures[0].path, "<tree>");
  EXPECT_EQ(degraded.failures[0].stage, FailureStage::kSummarize);
  EXPECT_EQ(degraded.stats.summarized_functions, 0u);

  const ScanResult intra = ScanTree(ThreeFileTree(), ScanOptions{});
  EXPECT_EQ(ReportsToJson(degraded.reports), ReportsToJson(intra.reports));
}

// ---- resource governors ----

TEST(ResourceGovernorTest, DeepNestingTripsDepthCapNotTheStack) {
  std::string body = "static void deep(struct device_node *np)\n{\n";
  for (int i = 0; i < 64; ++i) {
    body += "  if (np) {\n";
  }
  body += "    of_node_get(np);\n";
  for (int i = 0; i < 64; ++i) {
    body += "  }\n";
  }
  body += "}\n";
  SourceTree tree;
  tree.Add("drivers/d/deep.c", body);

  ScanOptions capped;
  capped.max_ast_depth = 16;
  const ScanResult result = ScanTree(tree, capped);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].kind, FailureKind::kResourceLimit);
  EXPECT_NE(result.failures[0].what.find("depth"), std::string::npos);

  // Without the hard cap the parser's flatten-at-200 default absorbs it.
  const ScanResult uncapped = ScanTree(tree, ScanOptions{});
  EXPECT_TRUE(uncapped.failures.empty());
}

TEST(ResourceGovernorTest, OversizedFileTripsSizeCap) {
  ScanOptions options;
  options.max_file_bytes = 32;  // every test file is bigger than this
  const ScanResult result = ScanTree(ThreeFileTree(), options);
  EXPECT_EQ(result.failures.size(), 3u);
  for (const FileFailure& f : result.failures) {
    EXPECT_EQ(f.kind, FailureKind::kResourceLimit);
    EXPECT_NE(f.what.find("input size"), std::string::npos);
  }
  EXPECT_TRUE(result.reports.empty());
}

TEST(ResourceGovernorTest, NodeBudgetTripsNodeCap) {
  ScanOptions options;
  options.max_ast_nodes = 3;  // any real function exceeds this
  const ScanResult result = ScanTree(HealthySubset(), options);
  EXPECT_EQ(result.failures.size(), 2u);
  for (const FileFailure& f : result.failures) {
    EXPECT_EQ(f.kind, FailureKind::kResourceLimit);
    EXPECT_NE(f.what.find("node count"), std::string::npos);
  }
}

TEST(ResourceGovernorTest, InjectedDelayTripsFileDeadline) {
  // The delay fires at the parser.parse site, burning the whole budget
  // before parsing starts; the cooperative poll in the statement loop then
  // trips. The file needs enough statements for the amortised (1-in-8)
  // clock check to run.
  std::string body = "static void slow(struct device_node *np)\n{\n";
  for (int i = 0; i < 64; ++i) {
    body += "  of_node_get(np);\n";
  }
  body += "}\n";
  SourceTree tree;
  tree.Add("drivers/s/slow.c", body);
  tree.Add("drivers/a/alpha.c", LeakyFile("alpha"));

  ScanOptions options;
  options.fault_spec = "parser.parse:file=*slow.c:delay=200";
  options.file_timeout_ms = 50;
  const ScanResult result = ScanTree(tree, options);

  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].path, "drivers/s/slow.c");
  EXPECT_EQ(result.failures[0].kind, FailureKind::kResourceLimit);
  EXPECT_NE(result.failures[0].what.find("deadline"), std::string::npos);

  // The healthy file still reports.
  ASSERT_EQ(result.reports.size(), 1u);
  EXPECT_EQ(result.reports[0].file, "drivers/a/alpha.c");
}

TEST(ResourceGovernorTest, DeadlineIsPerFileNotPerScan) {
  // A generous budget with no injected delay: nothing trips even across
  // many files whose total wall time could exceed a single budget.
  SourceTree tree;
  for (int i = 0; i < 8; ++i) {
    tree.Add("drivers/x/f" + std::to_string(i) + ".c", LeakyFile("f" + std::to_string(i)));
  }
  ScanOptions options;
  options.file_timeout_ms = 10'000;
  const ScanResult result = ScanTree(tree, options);
  EXPECT_TRUE(result.failures.empty());
  EXPECT_EQ(result.reports.size(), 8u);
}

}  // namespace
}  // namespace refscan
