// Tests for the resident scan service (src/serve): byte-identity of remote
// vs local scans, the warm resident store, request isolation under injected
// faults, the watchdog deadline, kServeBusy backpressure, graceful drain,
// hostile-peer handling on the serve path, and the watch-mode delta.

#include "src/serve/serve.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/checkers/engine.h"
#include "src/checkers/report.h"
#include "src/corpus/generator.h"
#include "src/serve/client.h"
#include "src/serve/protocol.h"
#include "src/serve/watch.h"
#include "src/support/faultinject.h"
#include "src/support/ipc.h"
#include "src/support/source.h"

namespace refscan {
namespace {

std::string TestSocketPath(const char* tag) {
  return "/tmp/refscan-serve-test-" + std::to_string(::getpid()) + "-" + tag + ".sock";
}

// A corpus slice: big enough to exercise discovery + every checker, small
// enough that the suite's several scans stay fast.
SourceTree TestTree(size_t max_files = 32) {
  static const Corpus* corpus = new Corpus(GenerateKernelCorpus());
  SourceTree tree;
  size_t n = 0;
  for (const auto& [path, file] : corpus->tree.files()) {
    if (n++ == max_files) {
      break;
    }
    tree.Add(path, std::string(file.text()));
  }
  return tree;
}

// Fast-retry policy so transient-failure paths don't sleep for real.
BackoffPolicy FastBackoff(int attempts = 3) {
  BackoffPolicy policy;
  policy.attempts = attempts;
  policy.base_delay_ms = 1;
  policy.max_delay_ms = 4;
  return policy;
}

ScanResult LocalScan(const SourceTree& tree, const ScanOptions& options) {
  CheckerEngine engine(KnowledgeBase::BuiltIn(), options);
  return engine.Scan(tree);
}

void ExpectSameOutput(const ScanResult& a, const ScanResult& b) {
  EXPECT_EQ(ReportsToJson(a.reports), ReportsToJson(b.reports));
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].path, b.failures[i].path);
    EXPECT_EQ(a.failures[i].what, b.failures[i].what);
  }
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_EQ(ScanExitCodeFor(a), ScanExitCodeFor(b));
}

TEST(ServeProtocolTest, ScanRequestRoundTrip) {
  SourceTree tree;
  tree.Add("a.c", "int main(void) { return 0; }\n");
  tree.Add("dir/b.c", "void f(void) {}\n");
  ScanOptions options;
  options.jobs = 4;
  options.dialects = {"glib"};
  options.max_ast_nodes = 1234;
  const std::string wire = EncodeScanRequest(tree, options);

  SourceTree decoded_tree;
  ScanOptions decoded;
  ASSERT_TRUE(DecodeScanRequest(wire, decoded_tree, decoded));
  EXPECT_EQ(decoded_tree.size(), 2u);
  ASSERT_NE(decoded_tree.Find("dir/b.c"), nullptr);
  EXPECT_EQ(decoded_tree.Find("dir/b.c")->text(), "void f(void) {}\n");
  EXPECT_EQ(decoded.jobs, 4u);
  EXPECT_EQ(decoded.dialects, options.dialects);
  EXPECT_EQ(decoded.max_ast_nodes, 1234u);

  // Truncated payloads must fail loudly, not decode partially.
  SourceTree t2;
  ScanOptions o2;
  EXPECT_FALSE(DecodeScanRequest(std::string_view(wire).substr(0, wire.size() / 2), t2, o2));
}

TEST(ServeProtocolTest, ScanResultRoundTripIncludingFailures) {
  const SourceTree tree = TestTree(8);
  ScanResult result = LocalScan(tree, ScanOptions{});
  FileFailure f;
  f.path = "broken.c";
  f.stage = FailureStage::kCheck;
  f.kind = FailureKind::kResourceLimit;
  f.what = "deadline";
  f.retries = 1;
  result.failures.push_back(f);
  result.stats.files_quarantined = 1;
  result.degraded_functions.push_back(
      DegradedFunctionReport{"drivers/q/q.c", "hopeless", 42, "parse derailed inside body"});
  result.stats.functions_degraded = 1;

  ScanResult decoded;
  ASSERT_TRUE(DecodeScanResult(EncodeScanResult(result), decoded));
  ExpectSameOutput(result, decoded);
  EXPECT_EQ(decoded.stats.files, result.stats.files);
  EXPECT_EQ(decoded.stats.files_quarantined, 1u);
  ASSERT_EQ(decoded.failures.size(), 1u);
  EXPECT_EQ(decoded.failures[0].kind, FailureKind::kResourceLimit);
  EXPECT_EQ(decoded.failures[0].retries, 1);
  // The degraded-functions section travels over the wire too (exit-2
  // parity between a remote and a local scan depends on it).
  EXPECT_EQ(decoded.stats.functions_degraded, 1u);
  ASSERT_EQ(decoded.degraded_functions.size(), 1u);
  EXPECT_EQ(decoded.degraded_functions[0].file, "drivers/q/q.c");
  EXPECT_EQ(decoded.degraded_functions[0].function, "hopeless");
  EXPECT_EQ(decoded.degraded_functions[0].line, 42u);
  EXPECT_EQ(decoded.degraded_functions[0].what, "parse derailed inside body");
}

TEST(ServeTest, HealthAndStatsAnswer) {
  ServeConfig config;
  config.socket_path = TestSocketPath("health");
  ScanServer server(config);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  std::string reply;
  ASSERT_TRUE(RemoteRequestText(config.socket_path, kServeHealthReq, "", reply, &error)) << error;
  EXPECT_EQ(reply, "ok");
  ASSERT_TRUE(RemoteRequestText(config.socket_path, kServeStatsReq, "", reply, &error)) << error;
  EXPECT_NE(reply.find("\"requests\":"), std::string::npos) << reply;
  server.Drain();
}

TEST(ServeTest, RemoteMatchesLocalColdAndWarmAtEveryJobs) {
  const SourceTree tree = TestTree();
  ServeConfig config;
  config.socket_path = TestSocketPath("identity");
  ScanServer server(config);
  ASSERT_TRUE(server.Start());

  for (const size_t jobs : {size_t{1}, size_t{4}}) {
    ScanOptions options;
    options.jobs = jobs;
    const ScanResult local = LocalScan(tree, options);
    // Cold and warm: the resident store may only change the stats counters,
    // never the output.
    std::string note;
    std::optional<ScanResult> cold = RemoteScan(tree, options, config.socket_path,
                                                FastBackoff(), &note);
    ASSERT_TRUE(cold.has_value()) << note;
    ExpectSameOutput(local, *cold);
    std::optional<ScanResult> warm = RemoteScan(tree, options, config.socket_path,
                                                FastBackoff(), &note);
    ASSERT_TRUE(warm.has_value()) << note;
    ExpectSameOutput(local, *warm);
    // The resident store is what makes "warm": every file skips its parse
    // and the KB snapshot replaces discovery.
    EXPECT_EQ(warm->stats.cache_parse_skips, warm->stats.files);
    EXPECT_EQ(warm->stats.cache_hits, warm->stats.files);
    EXPECT_GE(warm->stats.kb_snapshot_hits, 1u);
  }
  EXPECT_TRUE(server.Drain());
  const ScanServer::Counters c = server.counters();
  EXPECT_EQ(c.scans, 4u);
  EXPECT_EQ(c.faulted, 0u);
}

TEST(ServeTest, InjectedRequestFaultDegradesOnlyThatRequest) {
  const SourceTree tree = TestTree(12);
  ServeConfig config;
  config.socket_path = TestSocketPath("isolation");
  ScanServer server(config);
  ASSERT_TRUE(server.Start());

  const ScanOptions options;
  const ScanResult local = LocalScan(tree, options);
  ScopedFaultArm arm("serve.request:once");
  std::optional<ScanResult> faulted =
      RemoteScan(tree, options, config.socket_path, FastBackoff(), nullptr);
  ASSERT_TRUE(faulted.has_value());
  EXPECT_EQ(ScanExitCodeFor(*faulted), kExitDegraded);
  ASSERT_EQ(faulted->failures.size(), 1u);
  EXPECT_NE(faulted->failures[0].what.find("injected fault"), std::string::npos)
      << faulted->failures[0].what;

  // The faulted request poisoned nothing: the next request on the same
  // server is clean and byte-identical to a local scan.
  std::optional<ScanResult> clean =
      RemoteScan(tree, options, config.socket_path, FastBackoff(), nullptr);
  ASSERT_TRUE(clean.has_value());
  ExpectSameOutput(local, *clean);
  EXPECT_TRUE(server.Drain());
  EXPECT_EQ(server.counters().faulted, 1u);
}

TEST(ServeTest, ClientFaultSpecIsStrippedServerSide) {
  const SourceTree tree = TestTree(8);
  ServeConfig config;
  config.socket_path = TestSocketPath("stripspec");
  ScanServer server(config);
  ASSERT_TRUE(server.Start());

  ScanOptions options;
  options.fault_spec = "checker.run:always";  // would quarantine every file
  std::optional<ScanResult> result =
      RemoteScan(tree, options, config.socket_path, FastBackoff(), nullptr);
  ASSERT_TRUE(result.has_value());
  // The server must have refused to arm a tenant's spec in its own process:
  // nothing quarantined, nothing faulted.
  EXPECT_TRUE(result->failures.empty());
  options.fault_spec.clear();
  ExpectSameOutput(LocalScan(tree, options), *result);
  server.Drain();
}

TEST(ServeTest, AdmissionQueueShedsWithBusy) {
  ServeConfig config;
  config.socket_path = TestSocketPath("busy");
  config.sessions = 1;
  config.max_pending = 0;
  ScanServer server(config);
  ASSERT_TRUE(server.Start());

  // One parked connection fills the whole admission budget (sessions=1,
  // pending=0). The health round-trip proves the server has admitted it —
  // connect() alone only means the kernel queued us in the backlog.
  OwnedFd parked = UnixConnect(config.socket_path);
  ASSERT_TRUE(parked.valid());
  ASSERT_TRUE(SendFrame(parked.get(), kServeHealthReq, ""));
  uint8_t type = 0;
  std::string payload;
  ASSERT_EQ(RecvFrame(parked.get(), type, payload), RecvOutcome::kFrame);
  ASSERT_EQ(type, kServeText);

  // Now the next connection must be shed with kServeBusy, immediately and
  // without us sending a byte.
  OwnedFd extra = UnixConnect(config.socket_path);
  ASSERT_TRUE(extra.valid());
  ASSERT_EQ(RecvFrame(extra.get(), type, payload), RecvOutcome::kFrame);
  EXPECT_EQ(type, kServeBusy);
  EXPECT_GE(server.counters().shed, 1u);

  // RemoteScan treats kServeBusy as a transient: it retries with backoff
  // and, once the parked connection is gone, succeeds.
  parked.Reset();
  extra.Reset();
  const SourceTree tree = TestTree(4);
  std::optional<ScanResult> result =
      RemoteScan(tree, ScanOptions{}, config.socket_path, FastBackoff(50), nullptr);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->failures.empty());
  server.Drain();
}

TEST(ServeTest, WatchdogAnswersHungRequestAndServerSurvives) {
  const SourceTree tree = TestTree(4);
  ServeConfig config;
  config.socket_path = TestSocketPath("watchdog");
  config.request_timeout_ms = 60;
  ScanServer server(config);
  ASSERT_TRUE(server.Start());

  {
    // Hang the dispatch for much longer than the deadline; the watchdog
    // must answer (kServeErr → degraded) long before the handler wakes.
    ScopedFaultArm arm("serve.request:once:delay=1500");
    const auto start = std::chrono::steady_clock::now();
    std::optional<ScanResult> result =
        RemoteScan(tree, ScanOptions{}, config.socket_path, FastBackoff(1), nullptr);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(ScanExitCodeFor(*result), kExitDegraded);
    ASSERT_EQ(result->failures.size(), 1u);
    EXPECT_NE(result->failures[0].what.find("deadline"), std::string::npos)
        << result->failures[0].what;
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 1200);
  }
  EXPECT_GE(server.counters().timed_out, 1u);

  // The hung session thread is still sleeping, but the server keeps
  // serving: a fresh request completes cleanly.
  std::optional<ScanResult> clean =
      RemoteScan(tree, ScanOptions{}, config.socket_path, FastBackoff(), nullptr);
  ASSERT_TRUE(clean.has_value());
  EXPECT_TRUE(clean->failures.empty());
  server.Drain();
}

TEST(ServeTest, DrainFinishesInFlightAndRefusesNew) {
  const SourceTree tree = TestTree(12);
  ServeConfig config;
  config.socket_path = TestSocketPath("drain");
  ScanServer server(config);
  ASSERT_TRUE(server.Start());

  // Slow the request enough that Drain provably overlaps it.
  ScopedFaultArm arm("serve.request:once:delay=300");
  OwnedFd conn = UnixConnect(config.socket_path);
  ASSERT_TRUE(conn.valid());
  ASSERT_TRUE(SendFrame(conn.get(), kServeScanReq, EncodeScanRequest(tree, ScanOptions{})));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::atomic<bool> drained{false};
  std::thread drainer([&] {
    EXPECT_TRUE(server.Drain());
    drained.store(true);
  });
  uint8_t type = 0;
  std::string payload;
  ASSERT_EQ(RecvFrame(conn.get(), type, payload), RecvOutcome::kFrame)
      << "in-flight request must complete and flush during drain";
  EXPECT_EQ(type, kServeScanResp);
  ScanResult result;
  ASSERT_TRUE(DecodeScanResult(payload, result));
  ExpectSameOutput(LocalScan(tree, ScanOptions{}), result);
  drainer.join();
  EXPECT_TRUE(drained.load());
  // The listener is gone: new connections fail outright.
  OwnedFd refused = UnixConnect(config.socket_path);
  EXPECT_FALSE(refused.valid());
}

TEST(ServeTest, HostilePeersDoNotWedgeTheServer) {
  const SourceTree tree = TestTree(4);
  ServeConfig config;
  config.socket_path = TestSocketPath("hostile");
  ScanServer server(config);
  ASSERT_TRUE(server.Start());

  {
    // Oversized length prefix: the serve path must reject the frame and
    // drop the connection without allocating the claimed 4 GiB.
    OwnedFd conn = UnixConnect(config.socket_path);
    ASSERT_TRUE(conn.valid());
    const unsigned char huge[] = {0xff, 0xff, 0xff, 0xff, kServeScanReq};
    ASSERT_EQ(::write(conn.get(), huge, sizeof(huge)), static_cast<ssize_t>(sizeof(huge)));
    uint8_t type = 0;
    std::string payload;
    EXPECT_NE(RecvFrame(conn.get(), type, payload), RecvOutcome::kFrame);
  }
  {
    // Disconnect mid-frame: a length prefix promising bytes that never come.
    OwnedFd conn = UnixConnect(config.socket_path);
    ASSERT_TRUE(conn.valid());
    const char partial[] = {100, 0, 0, 0, kServeScanReq, 'x'};
    ASSERT_EQ(::write(conn.get(), partial, sizeof(partial)),
              static_cast<ssize_t>(sizeof(partial)));
  }
  {
    // Disconnect mid-request: full request sent, peer gone before the
    // reply. The server's reply write fails quietly; nothing leaks.
    OwnedFd conn = UnixConnect(config.socket_path);
    ASSERT_TRUE(conn.valid());
    ASSERT_TRUE(SendFrame(conn.get(), kServeScanReq, EncodeScanRequest(tree, ScanOptions{})));
  }
  {
    // Malformed scan payload: one kServeErr reply, the session lives on.
    OwnedFd conn = UnixConnect(config.socket_path);
    ASSERT_TRUE(conn.valid());
    ASSERT_TRUE(SendFrame(conn.get(), kServeScanReq, "not a scan request"));
    uint8_t type = 0;
    std::string payload;
    ASSERT_EQ(RecvFrame(conn.get(), type, payload), RecvOutcome::kFrame);
    EXPECT_EQ(type, kServeErr);
    ASSERT_TRUE(SendFrame(conn.get(), kServeHealthReq, ""));
    ASSERT_EQ(RecvFrame(conn.get(), type, payload), RecvOutcome::kFrame);
    EXPECT_EQ(type, kServeText);
  }
  // After all of that, a normal request still round-trips byte-identically.
  std::optional<ScanResult> result =
      RemoteScan(tree, ScanOptions{}, config.socket_path, FastBackoff(), nullptr);
  ASSERT_TRUE(result.has_value());
  ExpectSameOutput(LocalScan(tree, ScanOptions{}), *result);
  server.Drain();
}

TEST(ServeTest, UnreachableServerYieldsNulloptAfterBudget) {
  const SourceTree tree = TestTree(2);
  std::string note;
  std::optional<ScanResult> result = RemoteScan(
      tree, ScanOptions{}, "/tmp/refscan-serve-test-no-such-daemon.sock", FastBackoff(2), &note);
  EXPECT_FALSE(result.has_value());
  EXPECT_FALSE(note.empty());
}

TEST(WatchTest, ReportDeltaTracksFreshAndFixed) {
  BugReport a;
  a.anti_pattern = 1;
  a.file = "a.c";
  a.function = "f";
  a.line = 10;
  a.message = "leak";
  BugReport b = a;
  b.file = "b.c";
  b.line = 20;
  BugReport c = a;
  c.file = "c.c";
  c.line = 30;

  const ReportDelta delta = ComputeReportDelta({a, b}, {b, c});
  ASSERT_EQ(delta.fresh.size(), 1u);
  EXPECT_EQ(delta.fresh[0].file, "c.c");
  ASSERT_EQ(delta.fixed.size(), 1u);
  EXPECT_EQ(delta.fixed[0].file, "a.c");

  const std::string text = FormatWatchDelta(2, delta, 2);
  EXPECT_NE(text.find("generation 2: 2 report(s), +1 fresh, -1 fixed"), std::string::npos)
      << text;
  EXPECT_NE(text.find("+ P1 c.c:30 [f] leak"), std::string::npos) << text;
  EXPECT_NE(text.find("- P1 a.c:10 [f] leak"), std::string::npos) << text;

  // No churn: an identical rescan is an empty delta.
  const ReportDelta none = ComputeReportDelta({a, b}, {a, b});
  EXPECT_TRUE(none.fresh.empty());
  EXPECT_TRUE(none.fixed.empty());
}

}  // namespace
}  // namespace refscan
