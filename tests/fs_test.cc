// LoadSourceTreeFromDisk tests: filtering (extensions, skip_dirs,
// max_file_bytes), error reporting for unreadable inputs, and the
// parallel-read determinism guarantee (identical tree at every `jobs`).

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/support/faultinject.h"
#include "src/support/fs.h"

namespace refscan {
namespace {

namespace stdfs = std::filesystem;

class FsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (stdfs::temp_directory_path() /
             (std::string("refscan_fs_test_") +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
    stdfs::remove_all(root_);
    stdfs::create_directories(root_);
  }
  void TearDown() override {
    // Restore permissions so remove_all can do its job.
    std::error_code ec;
    for (const auto& entry : stdfs::recursive_directory_iterator(root_, ec)) {
      stdfs::permissions(entry.path(), stdfs::perms::owner_all, stdfs::perm_options::add, ec);
    }
    stdfs::remove_all(root_, ec);
  }

  void WriteFile(const std::string& relative, const std::string& text) {
    const stdfs::path target = stdfs::path(root_) / relative;
    stdfs::create_directories(target.parent_path());
    std::ofstream out(target, std::ios::binary);
    out << text;
  }

  std::string root_;
};

TEST_F(FsTest, LoadsOnlyMatchingExtensionsKeyedByRelativePath) {
  WriteFile("drivers/gpu/a.c", "int a;\n");
  WriteFile("include/b.h", "int b;\n");
  WriteFile("README.md", "not C\n");
  WriteFile("drivers/gpu/notes.txt", "not C either\n");

  const SourceTree tree = LoadSourceTreeFromDisk(root_);
  EXPECT_EQ(tree.size(), 2u);
  ASSERT_NE(tree.Find("drivers/gpu/a.c"), nullptr);
  EXPECT_EQ(tree.Find("drivers/gpu/a.c")->text(), "int a;\n");
  EXPECT_NE(tree.Find("include/b.h"), nullptr);
  EXPECT_EQ(tree.Find("README.md"), nullptr);
}

TEST_F(FsTest, SkipDirsPruneWholeSubtreesAtAnyDepth) {
  WriteFile("drivers/a.c", "int a;\n");
  WriteFile(".git/objects/deep/fake.c", "int git;\n");
  WriteFile("drivers/build/gen.c", "int gen;\n");
  WriteFile("Documentation/example.c", "int doc;\n");

  const SourceTree tree = LoadSourceTreeFromDisk(root_);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_NE(tree.Find("drivers/a.c"), nullptr);

  // An empty skip list loads everything.
  LoadOptions open_options;
  open_options.skip_dirs.clear();
  EXPECT_EQ(LoadSourceTreeFromDisk(root_, open_options).size(), 4u);
}

TEST_F(FsTest, MaxFileBytesFiltersLargeFiles) {
  WriteFile("small.c", "int s;\n");
  WriteFile("large.c", std::string(1024, 'x'));

  LoadOptions options;
  options.max_file_bytes = 100;
  const SourceTree tree = LoadSourceTreeFromDisk(root_, options);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_NE(tree.Find("small.c"), nullptr);

  // 0 disables the limit.
  options.max_file_bytes = 0;
  EXPECT_EQ(LoadSourceTreeFromDisk(root_, options).size(), 2u);
}

TEST_F(FsTest, ParallelAndSerialLoadsAreIdentical) {
  // Enough files (with varied sizes, including empty) that the parallel
  // path actually fans out.
  for (int i = 0; i < 40; ++i) {
    WriteFile("dir" + std::to_string(i % 5) + "/f" + std::to_string(i) + ".c",
              std::string(static_cast<size_t>(i) * 97, 'a' + static_cast<char>(i % 26)));
  }

  LoadOptions serial;
  serial.jobs = 1;
  LoadOptions wide;
  wide.jobs = 8;
  const SourceTree a = LoadSourceTreeFromDisk(root_, serial);
  const SourceTree b = LoadSourceTreeFromDisk(root_, wide);
  ASSERT_EQ(a.size(), 40u);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [path, file] : a.files()) {
    const SourceFile* other = b.Find(path);
    ASSERT_NE(other, nullptr) << path;
    EXPECT_EQ(file.text(), other->text()) << path;
  }
}

TEST_F(FsTest, UnreadableFileIsReportedAndSkipped) {
  if (::geteuid() == 0) {
    GTEST_SKIP() << "root reads chmod-000 files; permission test is meaningless";
  }
  WriteFile("ok.c", "int ok;\n");
  WriteFile("secret.c", "int secret;\n");
  stdfs::permissions(stdfs::path(root_) / "secret.c", stdfs::perms::none);

  std::vector<std::string> errors;
  const SourceTree tree = LoadSourceTreeFromDisk(root_, LoadOptions{}, &errors);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_NE(tree.Find("ok.c"), nullptr);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("secret.c"), std::string::npos);
}

TEST_F(FsTest, MissingRootReportsAnError) {
  std::vector<std::string> errors;
  const SourceTree tree =
      LoadSourceTreeFromDisk(root_ + "/does/not/exist", LoadOptions{}, &errors);
  EXPECT_EQ(tree.size(), 0u);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("does not exist"), std::string::npos);
}

TEST_F(FsTest, UnreadableFileYieldsStructuredLoadFailure) {
  if (::geteuid() == 0) {
    GTEST_SKIP() << "root reads chmod-000 files; permission test is meaningless";
  }
  WriteFile("ok.c", "int ok;\n");
  WriteFile("secret.c", "int secret;\n");
  stdfs::permissions(stdfs::path(root_) / "secret.c", stdfs::perms::none);

  std::vector<LoadFailure> failures;
  const SourceTree tree = LoadSourceTreeFromDisk(root_, LoadOptions{}, &failures);
  EXPECT_EQ(tree.size(), 1u);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].path, "secret.c");  // tree-relative key, not the OS path
  EXPECT_EQ(failures[0].what, "unreadable");
  EXPECT_EQ(failures[0].retries, 0);
}

TEST_F(FsTest, InjectedReadFaultQuarantinesOnlyTheMatchingFile) {
  WriteFile("good.c", "int good;\n");
  WriteFile("flaky.c", "int flaky;\n");

  ScopedFaultArm arm(std::string_view("fs.read:file=flaky.c"));
  std::vector<LoadFailure> failures;
  const SourceTree tree = LoadSourceTreeFromDisk(root_, LoadOptions{}, &failures);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_NE(tree.Find("good.c"), nullptr);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].path, "flaky.c");
  EXPECT_NE(failures[0].what.find("injected fault"), std::string::npos);
}

TEST_F(FsTest, TransientReadFaultIsRetriedOnceAndSucceeds) {
  WriteFile("flaky.c", "int flaky;\n");

  // `once:io`: the first read attempt fails transiently, the retry passes.
  ScopedFaultArm arm(std::string_view("fs.read:once:io"));
  std::vector<LoadFailure> failures;
  const SourceTree tree = LoadSourceTreeFromDisk(root_, LoadOptions{}, &failures);
  EXPECT_TRUE(failures.empty());
  ASSERT_NE(tree.Find("flaky.c"), nullptr);
  EXPECT_EQ(tree.Find("flaky.c")->text(), "int flaky;\n");
}

TEST_F(FsTest, LoadStatsCountRetriedThenSucceededReads) {
  // The retry-accounting contract (fs.h): a retried-then-SUCCEEDED read
  // produces no LoadFailure, so LoadStats is the only place it is visible.
  WriteFile("a.c", "int a;\n");
  WriteFile("b.c", "int b;\n");
  WriteFile("c.c", "int c;\n");

  ScopedFaultArm arm(std::string_view("fs.read:once:io"));
  std::vector<LoadFailure> failures;
  LoadStats stats;
  const SourceTree tree = LoadSourceTreeFromDisk(root_, LoadOptions{}, &failures, &stats);
  EXPECT_TRUE(failures.empty());  // retried != degraded
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(stats.files_loaded, 3u);
  EXPECT_EQ(stats.files_failed, 0u);
  EXPECT_EQ(stats.files_retried, 3u);
}

TEST_F(FsTest, PersistentTransientFaultGivesUpAfterOneRetry) {
  WriteFile("flaky.c", "int flaky;\n");

  ScopedFaultArm arm(std::string_view("fs.read:always:io"));
  std::vector<LoadFailure> failures;
  const SourceTree tree = LoadSourceTreeFromDisk(root_, LoadOptions{}, &failures);
  EXPECT_EQ(tree.size(), 0u);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].path, "flaky.c");
  EXPECT_EQ(failures[0].retries, 1);  // exactly one bounded retry, then give up
}

TEST_F(FsTest, EmptyFileLoadsAsEmptyText) {
  WriteFile("empty.c", "");
  const SourceTree tree = LoadSourceTreeFromDisk(root_);
  ASSERT_NE(tree.Find("empty.c"), nullptr);
  EXPECT_EQ(tree.Find("empty.c")->text(), "");
}

TEST_F(FsTest, MmapLoadIsByteIdenticalToBufferedLoad) {
  // The streaming-ingestion path (DESIGN.md §5.15): use_mmap swaps the
  // per-file buffer for a read-only mapping; every byte, line index and
  // key must be indistinguishable from the plain-read path.
  WriteFile("drivers/a/a.c", "int a;\nint b;\nchar *s = \"multi\\nline\";\n");
  WriteFile("drivers/a/b.c", std::string(1 << 16, 'x') + "\n");
  WriteFile("empty.c", "");  // mmap of size 0 fails; must fall back to read

  LoadOptions mapped;
  mapped.use_mmap = true;
  const SourceTree plain = LoadSourceTreeFromDisk(root_);
  const SourceTree mm = LoadSourceTreeFromDisk(root_, mapped);
  ASSERT_EQ(plain.size(), mm.size());
  for (const auto& [path, file] : plain.files()) {
    const SourceFile* other = mm.Find(path);
    ASSERT_NE(other, nullptr) << path;
    EXPECT_EQ(file.text(), other->text()) << path;
  }
  // Line indexing is built over the mapping, not a copy.
  const SourceFile* a = mm.Find("drivers/a/a.c");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->Line(2), "int b;");
}

}  // namespace
}  // namespace refscan
