// Tests for the production-tool surfaces: deviation detection, suppression
// comments, disk loading and the git-log round trip.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "src/checkers/engine.h"
#include "src/histmine/gitlog.h"
#include "src/histmine/miner.h"
#include "src/kb/deviations.h"
#include "src/support/fs.h"

namespace refscan {
namespace {

// ------------------------------------------------------------- deviations

TEST(DeviationsTest, DetectsReturnErrorDeviant) {
  SourceTree tree;
  tree.Add("drivers/power/rt.c",
           "int foo_power_get(struct dev *d)\n"
           "{\n"
           "  atomic_inc(&d->usage);\n"
           "  if (resume(d) < 0)\n"
           "    return -EIO;\n"
           "  return 0;\n"
           "}\n");
  const auto reports = DetectDeviations(tree);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].kind, DeviationKind::kReturnError);
  EXPECT_EQ(reports[0].api, "foo_power_get");
  EXPECT_EQ(reports[0].file, "drivers/power/rt.c");
}

TEST(DeviationsTest, DetectsReturnNullDeviant) {
  SourceTree tree;
  tree.Add("drivers/sbus/md.c",
           "struct md *my_grab(void)\n"
           "{\n"
           "  if (!global_md)\n"
           "    return NULL;\n"
           "  refcount_inc(&global_md->refs);\n"
           "  return global_md;\n"
           "}\n");
  const auto reports = DetectDeviations(tree);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].kind, DeviationKind::kReturnNull);
}

TEST(DeviationsTest, WellBehavedApiIsNotReported) {
  SourceTree tree;
  tree.Add("drivers/x/x.c",
           "struct foo *foo_get(struct foo *f)\n"
           "{\n"
           "  kref_get(&f->ref);\n"
           "  return f;\n"
           "}\n");
  EXPECT_TRUE(DetectDeviations(tree).empty());
}

TEST(DeviationsTest, HiddenDeviantFlagged) {
  SourceTree tree;
  tree.Add("drivers/x/x.c",
           "int widget_autoresume(struct dev *d)\n"  // no refcount keyword in the name
           "{\n"
           "  atomic_inc(&d->usage);\n"
           "  if (resume(d) < 0)\n"
           "    return -EBUSY;\n"
           "  return 0;\n"
           "}\n");
  const auto reports = DetectDeviations(tree);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].hidden);
}

// ------------------------------------------------------------ suppression

TEST(SuppressionTest, IgnoreCommentSilencesReport) {
  CheckerEngine engine;
  const auto with = engine.ScanFileText(
      "drivers/t/t.c",
      "static int p(struct platform_device *pdev)\n"
      "{\n"
      "  struct device_node *dn;\n"
      "  for_each_matching_node(dn, ids) {\n"
      "    if (match(dn))\n"
      "      break; /* refscan: ignore */\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_TRUE(with.reports.empty());

  CheckerEngine engine2;
  const auto without = engine2.ScanFileText(
      "drivers/t/t.c",
      "static int p(struct platform_device *pdev)\n"
      "{\n"
      "  struct device_node *dn;\n"
      "  for_each_matching_node(dn, ids) {\n"
      "    if (match(dn))\n"
      "      break;\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(without.reports.size(), 1u);
}

TEST(SuppressionTest, CommentOnPrecedingLineAlsoWorks) {
  CheckerEngine engine;
  const auto result = engine.ScanFileText(
      "drivers/t/t.c",
      "static int setup(void)\n"
      "{\n"
      "  /* refscan: ignore -- ownership documented elsewhere */\n"
      "  struct device_node *np = of_find_compatible_node(NULL, NULL, \"x\");\n"
      "  if (!np)\n"
      "    return -ENODEV;\n"
      "  use(np);\n"
      "  return 0;\n"
      "}\n");
  EXPECT_TRUE(result.reports.empty());
}

// --------------------------------------------------------- pattern filter

TEST(PatternListTest, ParsesValidLists) {
  std::set<int> out;
  EXPECT_TRUE(ParsePatternList("1,4,8", out));
  EXPECT_EQ(out, (std::set<int>{1, 4, 8}));
  EXPECT_TRUE(ParsePatternList("9", out));
  EXPECT_EQ(out, std::set<int>{9});
  EXPECT_TRUE(ParsePatternList("3,3,3", out));  // duplicates collapse
  EXPECT_EQ(out, std::set<int>{3});
  EXPECT_TRUE(ParsePatternList("10,11,12", out));  // the P10-P12 extensions
  EXPECT_EQ(out, (std::set<int>{10, 11, 12}));
}

TEST(PatternListTest, RejectsInvalidListsWithoutTouchingOutput) {
  std::set<int> out = {7};
  EXPECT_FALSE(ParsePatternList("0", out));
  EXPECT_FALSE(ParsePatternList("13", out));
  EXPECT_FALSE(ParsePatternList("abc", out));
  EXPECT_FALSE(ParsePatternList("", out));
  EXPECT_FALSE(ParsePatternList("1,,2", out));
  EXPECT_FALSE(ParsePatternList("1,x", out));
  EXPECT_FALSE(ParsePatternList("-1", out));
  EXPECT_EQ(out, std::set<int>{7});  // failed parses leave the set alone
}

TEST(PatternListTest, EnabledPatternsRestrictTheScan) {
  // The P2 missing-null-check bug below must vanish when only P1 runs.
  const char* text =
      "static int vio_init(void)\n"
      "{\n"
      "  struct mdesc_handle *hp = mdesc_grab();\n"
      "  parse_node(hp->root);\n"
      "  mdesc_release(hp);\n"
      "  return 0;\n"
      "}\n";
  CheckerEngine all;
  const auto unrestricted = all.ScanFileText("drivers/t/t.c", text);
  EXPECT_FALSE(unrestricted.reports.empty());

  ScanOptions only_p1;
  ASSERT_TRUE(ParsePatternList("1", only_p1.enabled_patterns));
  CheckerEngine restricted(KnowledgeBase::BuiltIn(), only_p1);
  const auto filtered = restricted.ScanFileText("drivers/t/t.c", text);
  EXPECT_TRUE(filtered.reports.empty());
}

// --------------------------------------------------------------- disk I/O

class DiskTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() / "refscan_fs_test";
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_ / "drivers" / "usb");
    std::filesystem::create_directories(root_ / ".git");
    Write("drivers/usb/dev.c",
          "static int p(void)\n"
          "{\n"
          "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
          "  if (!np)\n"
          "    return -ENODEV;\n"
          "  use(np);\n"
          "  return 0;\n"
          "}\n");
    Write("drivers/usb/dev.h", "struct widget { struct kref ref; };\n");
    Write("drivers/usb/notes.txt", "not C\n");
    Write(".git/blob.c", "garbage\n");
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  void Write(const std::string& relative, const std::string& text) {
    std::ofstream out(root_ / relative);
    out << text;
  }

  std::filesystem::path root_;
};

TEST_F(DiskTreeTest, LoadsOnlyWantedFiles) {
  const SourceTree tree = LoadSourceTreeFromDisk(root_.string());
  EXPECT_EQ(tree.size(), 2u);  // .c and .h; .txt and .git skipped
  EXPECT_NE(tree.Find("drivers/usb/dev.c"), nullptr);
  EXPECT_NE(tree.Find("drivers/usb/dev.h"), nullptr);
  EXPECT_EQ(tree.Find("drivers/usb/notes.txt"), nullptr);
}

TEST_F(DiskTreeTest, ScanningDiskTreeFindsTheBug) {
  const SourceTree tree = LoadSourceTreeFromDisk(root_.string());
  CheckerEngine engine;
  const ScanResult result = engine.Scan(tree);
  ASSERT_EQ(result.reports.size(), 1u);
  EXPECT_EQ(result.reports[0].anti_pattern, 4);
  EXPECT_EQ(result.reports[0].file, "drivers/usb/dev.c");
}

TEST(DiskTreeErrorsTest, MissingRootReportsError) {
  std::vector<std::string> errors;
  const SourceTree tree = LoadSourceTreeFromDisk("/nonexistent/refscan/path", {}, &errors);
  EXPECT_EQ(tree.size(), 0u);
  ASSERT_EQ(errors.size(), 1u);
}

// ----------------------------------------------------------- gitlog round trip

TEST(GitLogTest, RoundTripPreservesMiningResult) {
  HistoryOptions options;
  options.noise_commits = 500;
  const History original = GenerateHistory(options);
  const std::string log = SerializeGitLog(original);
  const History parsed = ParseGitLog(log);

  EXPECT_EQ(parsed.commits.size(), original.commits.size());
  EXPECT_EQ(parsed.commit_release.size(), original.commit_release.size());

  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const MiningResult a = MineRefcountBugs(original, kb);
  const MiningResult b = MineRefcountBugs(parsed, kb);
  EXPECT_EQ(a.level1_candidates.size(), b.level1_candidates.size());
  EXPECT_EQ(a.dataset.size(), b.dataset.size());

  // Kind/impact classification survives the round trip.
  std::map<std::string, std::pair<int, bool>> by_id;
  for (const MinedBug& bug : a.dataset) {
    by_id[bug.commit->id] = {static_cast<int>(bug.kind), bug.is_leak};
  }
  for (const MinedBug& bug : b.dataset) {
    const auto it = by_id.find(bug.commit->id);
    ASSERT_NE(it, by_id.end());
    EXPECT_EQ(it->second.first, static_cast<int>(bug.kind));
    EXPECT_EQ(it->second.second, bug.is_leak);
  }
}

TEST(GitLogTest, FixesTagSurvives) {
  HistoryOptions options;
  options.noise_commits = 0;
  const History original = GenerateHistory(options);
  const History parsed = ParseGitLog(SerializeGitLog(original));
  int tagged_original = 0;
  int tagged_parsed = 0;
  for (const Commit& c : original.commits) {
    tagged_original += c.fixes_tag.empty() ? 0 : 1;
  }
  for (const Commit& c : parsed.commits) {
    tagged_parsed += c.fixes_tag.empty() ? 0 : 1;
    if (!c.fixes_tag.empty()) {
      EXPECT_TRUE(parsed.commit_release.contains(c.fixes_tag)) << c.fixes_tag;
    }
  }
  EXPECT_EQ(tagged_original, tagged_parsed);
}

TEST(GitLogTest, ParseGarbageIsSafe) {
  const History parsed = ParseGitLog("this is not a log\nat all\n\ncommit zzz\nnonsense");
  EXPECT_EQ(parsed.commits.size(), 1u);  // the malformed block parses to an empty commit
}

}  // namespace
}  // namespace refscan
