// Cross-process determinism tests for the sharded scan (src/checkers/
// sharded): `ShardedScan` must produce byte-identical reports, stats and
// failures to `CheckerEngine::Scan` at any --jobs × --workers combination,
// cold and warm, and a killed worker must degrade into exactly "the
// surviving subset's scan plus a quarantined dead shard".
//
// The worker subprocesses exec the real CLI binary (REFSCAN_CLI_PATH, a
// compile definition pointing at the built `refscan`), so these tests cover
// the whole wire protocol, not a mock.

#include "src/checkers/sharded.h"

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/cache/store.h"
#include "src/checkers/engine.h"
#include "src/checkers/report.h"
#include "src/corpus/generator.h"
#include "src/support/telemetry.h"

namespace refscan {
namespace {

namespace stdfs = std::filesystem;

// A corpus slice: enough files for 4 shards to be non-trivial, small
// enough that the suite's handful of full scans stays fast.
SourceTree TestTree(size_t max_files = 48) {
  static const Corpus* corpus = new Corpus(GenerateKernelCorpus());
  SourceTree tree;
  size_t n = 0;
  for (const auto& [path, file] : corpus->tree.files()) {
    if (n++ == max_files) {
      break;
    }
    tree.Add(path, std::string(file.text()));
  }
  return tree;
}

ShardedScanConfig Config(size_t workers) {
  ShardedScanConfig config;
  config.workers = workers;
  config.worker_cmd = REFSCAN_CLI_PATH;
  return config;
}

std::string TempDir(const char* tag) {
  const std::string dir =
      "/tmp/refscan-sharded-test-" + std::to_string(::getpid()) + "-" + tag;
  stdfs::remove_all(dir);
  return dir;
}

// Full-result equality, field by field, with ReportsToJson as the
// byte-level report comparison (it renders every report field).
void ExpectSameResult(const ScanResult& want, const ScanResult& got) {
  EXPECT_EQ(ReportsToJson(want.reports), ReportsToJson(got.reports));
  EXPECT_EQ(want.aborted, got.aborted);
  EXPECT_EQ(want.abort_reason, got.abort_reason);
  for (const ScanStatsField& f : ScanStatsFields()) {
    EXPECT_EQ(want.stats.*f.member, got.stats.*f.member) << f.json_key;
  }
  ASSERT_EQ(want.failures.size(), got.failures.size());
  for (size_t i = 0; i < want.failures.size(); ++i) {
    EXPECT_EQ(want.failures[i].path, got.failures[i].path);
    EXPECT_EQ(want.failures[i].stage, got.failures[i].stage) << want.failures[i].path;
    EXPECT_EQ(want.failures[i].kind, got.failures[i].kind) << want.failures[i].path;
    EXPECT_EQ(want.failures[i].what, got.failures[i].what) << want.failures[i].path;
  }
}

std::vector<const SourceFile*> FilePointers(const SourceTree& tree) {
  std::vector<const SourceFile*> files;
  for (const auto& [path, file] : tree.files()) {
    files.push_back(&file);
  }
  return files;
}

TEST(ShardFilesTest, CoversEveryFileExactlyOnceAndIsDeterministic) {
  const SourceTree tree = TestTree();
  const std::vector<const SourceFile*> files = FilePointers(tree);
  const auto shards = ShardFiles(files, 4);
  ASSERT_EQ(shards.size(), 4u);
  std::vector<int> seen(files.size(), 0);
  for (const auto& shard : shards) {
    EXPECT_FALSE(shard.empty());
    EXPECT_TRUE(std::is_sorted(shard.begin(), shard.end()));
    for (const size_t idx : shard) {
      ASSERT_LT(idx, files.size());
      ++seen[idx];
    }
  }
  for (const int count : seen) {
    EXPECT_EQ(count, 1);
  }
  EXPECT_EQ(shards, ShardFiles(files, 4));  // pure function of its inputs
}

TEST(ShardFilesTest, BalancesContentBytesNotFileCounts) {
  SourceTree tree;
  // One huge file and many tiny ones: byte-balanced sharding must put the
  // huge file alone and spread the tiny ones over the other shards.
  tree.Add("huge.c", std::string(100000, '\n'));
  for (int i = 0; i < 9; ++i) {
    tree.Add("tiny" + std::to_string(i) + ".c", "int x;\n");
  }
  const std::vector<const SourceFile*> files = FilePointers(tree);
  const auto shards = ShardFiles(files, 2);
  ASSERT_EQ(shards.size(), 2u);
  size_t huge_idx = 0;
  for (size_t i = 0; i < files.size(); ++i) {
    if (files[i]->path() == "huge.c") {
      huge_idx = i;
    }
  }
  for (const auto& shard : shards) {
    if (std::find(shard.begin(), shard.end(), huge_idx) != shard.end()) {
      EXPECT_EQ(shard.size(), 1u) << "the huge file should get a shard to itself";
    } else {
      EXPECT_EQ(shard.size(), 9u);
    }
  }
}

TEST(ShardedScanTest, ByteIdenticalToInProcessCold) {
  const SourceTree tree = TestTree();
  ScanOptions options;
  options.jobs = 2;
  CheckerEngine engine(KnowledgeBase::BuiltIn(), options);
  const ScanResult want = engine.Scan(tree);
  EXPECT_FALSE(want.reports.empty());

  for (const size_t workers : {1u, 4u}) {
    const ScanResult got = ShardedScan(tree, options, Config(workers));
    ExpectSameResult(want, got);
  }
}

TEST(ShardedScanTest, ByteIdenticalWarmAndColdWithSharedLocalCache) {
  const SourceTree tree = TestTree();
  const std::string cache_dir = TempDir("localcache");
  ScanOptions options;
  options.jobs = 2;
  options.cache_dir = cache_dir;

  // In-process cold populates the cache; the sharded warm rescans must
  // replay it identically — including the cache accounting in the stats.
  CheckerEngine cold_engine(KnowledgeBase::BuiltIn(), options);
  const ScanResult cold = cold_engine.Scan(tree);
  CheckerEngine warm_engine(KnowledgeBase::BuiltIn(), options);
  const ScanResult warm = warm_engine.Scan(tree);
  EXPECT_EQ(warm.stats.cache_hits, warm.stats.files);
  EXPECT_EQ(ReportsToJson(cold.reports), ReportsToJson(warm.reports));

  const ScanResult sharded_warm = ShardedScan(tree, options, Config(4));
  ExpectSameResult(warm, sharded_warm);

  // And a sharded scan against a cold cache must both match the cold scan
  // and leave a cache a later in-process scan can fully hit.
  const std::string cache_dir2 = TempDir("localcache2");
  options.cache_dir = cache_dir2;
  const ScanResult sharded_cold = ShardedScan(tree, options, Config(4));
  ExpectSameResult(cold, sharded_cold);
  CheckerEngine warm_engine2(KnowledgeBase::BuiltIn(), options);
  const ScanResult warm2 = warm_engine2.Scan(tree);
  ExpectSameResult(warm, warm2);

  stdfs::remove_all(cache_dir);
  stdfs::remove_all(cache_dir2);
}

TEST(ShardedScanTest, WorkerFleetSharesOneCacheServer) {
  const SourceTree tree = TestTree();
  const std::string store_dir = TempDir("serverstore");
  const std::string socket = "/tmp/refscan-sharded-test-" +
                             std::to_string(::getpid()) + "-cached.sock";
  CacheServer server(store_dir, socket);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  ScanOptions options;
  options.jobs = 2;
  options.cache_server = socket;

  ScanOptions plain;
  plain.jobs = 2;
  CheckerEngine engine(KnowledgeBase::BuiltIn(), plain);
  const ScanResult want = engine.Scan(tree);

  const ScanResult cold = ShardedScan(tree, options, Config(4));
  EXPECT_EQ(ReportsToJson(want.reports), ReportsToJson(cold.reports));
  EXPECT_EQ(cold.stats.cache_misses, cold.stats.files);
  EXPECT_GT(server.puts(), 0u);

  // The warm fleet: every worker hits the pre-warmed shared store, so at
  // least 90% of the parse work is skipped (here: all of it).
  const ScanResult fleet_warm = ShardedScan(tree, options, Config(4));
  EXPECT_EQ(ReportsToJson(want.reports), ReportsToJson(fleet_warm.reports));
  EXPECT_EQ(fleet_warm.stats.cache_hits, fleet_warm.stats.files);
  EXPECT_GE(fleet_warm.stats.cache_parse_skips * 10, fleet_warm.stats.files * 9);

  server.Stop();
  stdfs::remove_all(store_dir);
}

TEST(ShardedScanTest, KilledWorkerDegradesToSurvivingSubsetScan) {
  const SourceTree tree = TestTree();
  const std::vector<const SourceFile*> files = FilePointers(tree);
  const auto shards = ShardFiles(files, 4);
  ASSERT_EQ(shards.size(), 4u);

  ScanOptions options;
  options.jobs = 2;
  // Deterministically crash worker 1 at the facts barrier: the injected
  // fault throws out of RunShardWorker, killing the process like any other
  // unhandled worker crash would.
  options.fault_spec = "worker.facts:file=1";
  const ScanResult degraded = ShardedScan(tree, options, Config(4));
  EXPECT_FALSE(degraded.aborted);

  // The dead shard's files are quarantined (stage check, kind internal)...
  ASSERT_EQ(degraded.failures.size(), shards[1].size());
  for (const FileFailure& f : degraded.failures) {
    EXPECT_EQ(f.stage, FailureStage::kCheck) << f.path;
    EXPECT_EQ(f.kind, FailureKind::kInternal) << f.path;
    EXPECT_NE(f.what.find("shard worker 1"), std::string::npos) << f.what;
  }

  // ...and the reports are byte-identical to scanning the survivors alone.
  SourceTree survivors;
  std::vector<bool> dead(files.size(), false);
  for (const size_t idx : shards[1]) {
    dead[idx] = true;
  }
  for (size_t i = 0; i < files.size(); ++i) {
    if (!dead[i]) {
      survivors.Add(files[i]->path(), std::string(files[i]->text()));
    }
  }
  ScanOptions plain;
  plain.jobs = 2;
  CheckerEngine engine(KnowledgeBase::BuiltIn(), plain);
  const ScanResult want = engine.Scan(survivors);
  EXPECT_EQ(ReportsToJson(want.reports), ReportsToJson(degraded.reports));
  EXPECT_EQ(degraded.stats.files, files.size());
  EXPECT_EQ(degraded.stats.files_quarantined, shards[1].size());
}

TEST(ShardedScanTest, TraceAndMetricsIdenticalAcrossWorkerCounts) {
  const SourceTree tree = TestTree();
  ScanOptions options;
  options.jobs = 2;

  // Coordinator-side spans and the scan.* counters must not depend on the
  // worker count (timings excepted — only names/args/values compare).
  const auto run = [&](size_t workers, std::vector<std::string>& span_names,
                       std::vector<uint64_t>& counters) {
    Telemetry session;
    {
      ScopedTelemetry arm(session);
      ShardedScan(tree, options, Config(workers));
    }
    for (const TraceEvent& e : session.SortedEvents()) {
      span_names.push_back(std::string(e.name) + "|" + e.arg);
    }
    for (const ScanStatsField& f : ScanStatsFields()) {
      counters.push_back(session.metrics().CounterValue(f.metric));
    }
    counters.push_back(session.metrics().CounterValue("scan.raw_reports"));
    counters.push_back(session.metrics().CounterValue("scan.reports"));
  };
  std::vector<std::string> spans1, spans4;
  std::vector<uint64_t> counters1, counters4;
  run(1, spans1, counters1);
  run(4, spans4, counters4);
  EXPECT_EQ(spans1, spans4);
  EXPECT_EQ(counters1, counters4);
  EXPECT_FALSE(spans1.empty());
}

TEST(ShardedScanTest, BreakerAbortMatchesInProcess) {
  // Oversized files + a low cap: every file fails in the parse stage, so
  // the breaker must trip with the engine's exact abort string.
  SourceTree tree;
  for (int i = 0; i < 4; ++i) {
    tree.Add("big" + std::to_string(i) + ".c", std::string(4096, '\n'));
  }
  ScanOptions options;
  options.jobs = 2;
  options.max_file_bytes = 16;
  options.max_failure_ratio = 0.5;
  CheckerEngine engine(KnowledgeBase::BuiltIn(), options);
  const ScanResult want = engine.Scan(tree);
  ASSERT_TRUE(want.aborted);
  const ScanResult got = ShardedScan(tree, options, Config(2));
  ExpectSameResult(want, got);
}

TEST(ShardedScanTest, MoreWorkersThanFilesClampsAndStaysIdentical) {
  SourceTree tree;
  tree.Add("a.c", "void f(void) { }\n");
  tree.Add("b.c", "void g(void) { }\n");
  ScanOptions options;
  options.jobs = 1;
  CheckerEngine engine(KnowledgeBase::BuiltIn(), options);
  const ScanResult want = engine.Scan(tree);
  const ScanResult got = ShardedScan(tree, options, Config(16));
  ExpectSameResult(want, got);
}

}  // namespace
}  // namespace refscan
