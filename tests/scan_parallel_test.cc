// Parallel scan pipeline tests: reports must be byte-identical at every
// thread count (the engine's determinism guarantee), and concurrent engines
// must not interfere (the ThreadSanitizer-facing stress shape; build with
// -DREFSCAN_SANITIZE=thread to run it under TSan).

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/checkers/engine.h"
#include "src/checkers/template_matcher.h"
#include "src/corpus/generator.h"
#include "src/histmine/miner.h"
#include "src/kb/deviations.h"
#include "src/support/threadpool.h"

namespace refscan {
namespace {

const Corpus& SharedCorpus() {
  static const Corpus* corpus = new Corpus(GenerateKernelCorpus());
  return *corpus;
}

ScanResult ScanWithJobs(const SourceTree& tree, size_t jobs) {
  ScanOptions options;
  options.jobs = jobs;
  CheckerEngine engine(KnowledgeBase::BuiltIn(), options);
  return engine.Scan(tree);
}

void ExpectIdentical(const ScanResult& a, const ScanResult& b) {
  EXPECT_EQ(a.stats.files, b.stats.files);
  EXPECT_EQ(a.stats.functions, b.stats.functions);
  EXPECT_EQ(a.stats.discovered_apis, b.stats.discovered_apis);
  EXPECT_EQ(a.stats.discovered_smart_loops, b.stats.discovered_smart_loops);
  EXPECT_EQ(a.stats.refcounted_structs, b.stats.refcounted_structs);
  EXPECT_EQ(a.stats.summarized_functions, b.stats.summarized_functions);
  ASSERT_EQ(a.reports.size(), b.reports.size());
  // The JSON rendering covers every report field, so equal JSON means the
  // report lists are byte-identical.
  EXPECT_EQ(ReportsToJson(a.reports), ReportsToJson(b.reports));
}

TEST(ScanParallelTest, ReportsIdenticalAcrossThreadCounts) {
  const Corpus& corpus = SharedCorpus();
  const ScanResult serial = ScanWithJobs(corpus.tree, 1);
  EXPECT_GT(serial.reports.size(), 0u);
  ExpectIdentical(serial, ScanWithJobs(corpus.tree, 2));
  ExpectIdentical(serial, ScanWithJobs(corpus.tree, 8));
  ExpectIdentical(serial, ScanWithJobs(corpus.tree, 0));  // hardware concurrency
}

TEST(ScanParallelTest, MoreThreadsThanFiles) {
  // Lanes are clamped to the item count; a tiny tree with a huge jobs value
  // must still scan correctly.
  SourceTree tree;
  tree.Add("drivers/a/a.c",
           "static int probe(struct device_node *np)\n"
           "{\n"
           "  struct device_node *child = of_get_parent(np);\n"
           "  return 0;\n"
           "}\n");
  ScanResult serial = ScanWithJobs(tree, 1);
  ScanResult wide = ScanWithJobs(tree, 64);
  EXPECT_GT(serial.reports.size(), 0u);
  EXPECT_EQ(ReportsToJson(serial.reports), ReportsToJson(wide.reports));
}

TEST(ScanParallelTest, ConcurrentEnginesStress) {
  // Two engines, each with its own pool, scanning the same (const) tree at
  // the same time. Under -DREFSCAN_SANITIZE=thread this is the test that
  // would flag any shared mutable state between scans.
  const Corpus& corpus = SharedCorpus();
  const ScanResult baseline = ScanWithJobs(corpus.tree, 1);

  ScanResult from_a;
  ScanResult from_b;
  std::thread ta([&] { from_a = ScanWithJobs(corpus.tree, 4); });
  std::thread tb([&] { from_b = ScanWithJobs(corpus.tree, 4); });
  ta.join();
  tb.join();

  ExpectIdentical(baseline, from_a);
  ExpectIdentical(baseline, from_b);
}

TEST(ScanParallelTest, SuppressionOnLineOneChecksTheLineOnlyOnce) {
  // Regression: the old probe-line initializer {r.line, r.line-1 or r.line}
  // scanned line 1 twice for a line-1 report. The dedup keeps behaviour
  // correct at the boundary: a marker on line 1 suppresses a line-1 report,
  // and there is no phantom "line above".
  const char* bug_on_line_one =
      "static void f(struct device_node *np) { struct device_node *c = of_get_parent(np); }\n";
  CheckerEngine plain;
  const ScanResult unsuppressed = plain.ScanFileText("drivers/t/t.c", bug_on_line_one);
  ASSERT_GT(unsuppressed.reports.size(), 0u);
  EXPECT_EQ(unsuppressed.reports[0].line, 1u);

  const std::string suppressed_text =
      "static void f(struct device_node *np) { struct device_node *c = of_get_parent(np); } "
      "/* refscan: ignore */\n";
  CheckerEngine with_marker;
  const ScanResult suppressed = with_marker.ScanFileText("drivers/t/t.c", suppressed_text);
  EXPECT_EQ(suppressed.reports.size(), 0u);
}

TEST(ScanParallelTest, TemplateCheckerDeterministicAcrossJobs) {
  const Corpus& corpus = SharedCorpus();
  const auto tmpl = ParseTemplate("F_start -> S_P(p0) -> S_D(p0) -> F_end");
  ASSERT_TRUE(tmpl.has_value());
  ScanOptions serial_options;
  serial_options.jobs = 1;
  ScanOptions wide_options;
  wide_options.jobs = 8;
  const auto serial = RunTemplateChecker(*tmpl, corpus.tree, KnowledgeBase::BuiltIn(),
                                         serial_options);
  const auto wide = RunTemplateChecker(*tmpl, corpus.tree, KnowledgeBase::BuiltIn(),
                                       wide_options);
  EXPECT_EQ(ReportsToJson(serial), ReportsToJson(wide));
}

TEST(ScanParallelTest, DeviationDetectorDeterministicAcrossJobs) {
  const Corpus& corpus = SharedCorpus();
  const auto serial = DetectDeviations(corpus.tree, KnowledgeBase::BuiltIn(), 1);
  const auto wide = DetectDeviations(corpus.tree, KnowledgeBase::BuiltIn(), 8);
  ASSERT_EQ(serial.size(), wide.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].api, wide[i].api);
    EXPECT_EQ(serial[i].file, wide[i].file);
    EXPECT_EQ(serial[i].line, wide[i].line);
    EXPECT_EQ(serial[i].kind, wide[i].kind);
    EXPECT_EQ(serial[i].hidden, wide[i].hidden);
    EXPECT_EQ(serial[i].note, wide[i].note);
  }
}

TEST(ScanParallelTest, MinerDeterministicAcrossJobs) {
  HistoryOptions options;
  options.noise_commits = 2000;
  const History history = GenerateHistory(options);
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const MiningResult serial = MineRefcountBugs(history, kb, 1);
  const MiningResult wide = MineRefcountBugs(history, kb, 4);

  EXPECT_EQ(serial.level1_candidates, wide.level1_candidates);
  EXPECT_EQ(serial.level2_candidates, wide.level2_candidates);
  EXPECT_EQ(serial.removed_as_wrong_fix, wide.removed_as_wrong_fix);
  ASSERT_EQ(serial.dataset.size(), wide.dataset.size());
  for (size_t i = 0; i < serial.dataset.size(); ++i) {
    EXPECT_EQ(serial.dataset[i].commit, wide.dataset[i].commit);
    EXPECT_EQ(serial.dataset[i].kind, wide.dataset[i].kind);
    EXPECT_EQ(serial.dataset[i].is_uad, wide.dataset[i].is_uad);
    EXPECT_EQ(serial.dataset[i].is_leak, wide.dataset[i].is_leak);
    EXPECT_EQ(serial.dataset[i].subsystem, wide.dataset[i].subsystem);
    EXPECT_EQ(serial.dataset[i].fixed_release, wide.dataset[i].fixed_release);
    EXPECT_EQ(serial.dataset[i].introduced_release, wide.dataset[i].introduced_release);
  }
}

}  // namespace
}  // namespace refscan
