// Unit tests for the refcounting knowledge base: built-in catalogue,
// structure-parser discovery, API classification and smartloop discovery.

#include <gtest/gtest.h>

#include "src/ast/parser.h"
#include "src/checkers/engine.h"
#include "src/kb/kb.h"
#include "src/support/source.h"

namespace refscan {
namespace {

TranslationUnit Parse(std::string text) {
  SourceFile file("t.c", std::move(text));
  return ParseFile(file);
}

TEST(KbBuiltInTest, GeneralApis) {
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const RefApiInfo* inc = kb.FindApi("kref_get");
  ASSERT_NE(inc, nullptr);
  EXPECT_EQ(inc->direction, RefDirection::kIncrease);
  EXPECT_EQ(inc->category, ApiCategory::kGeneral);
  const RefApiInfo* dec = kb.FindApi("kobject_put");
  ASSERT_NE(dec, nullptr);
  EXPECT_EQ(dec->direction, RefDirection::kDecrease);
}

TEST(KbBuiltInTest, ReturnErrorDeviants) {
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const RefApiInfo* api = kb.FindApi("pm_runtime_get_sync");
  ASSERT_NE(api, nullptr);
  EXPECT_TRUE(api->returns_error);
  EXPECT_EQ(api->direction, RefDirection::kIncrease);
  const RefApiInfo* kobj = kb.FindApi("kobject_init_and_add");
  ASSERT_NE(kobj, nullptr);
  EXPECT_TRUE(kobj->returns_error);
}

TEST(KbBuiltInTest, ReturnNullDeviants) {
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const RefApiInfo* api = kb.FindApi("mdesc_grab");
  ASSERT_NE(api, nullptr);
  EXPECT_TRUE(api->may_return_null);
  EXPECT_TRUE(api->returns_object);
}

TEST(KbBuiltInTest, FindLikeApisAreHiddenAndConsume) {
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const RefApiInfo* api = kb.FindApi("of_find_matching_node");
  ASSERT_NE(api, nullptr);
  EXPECT_TRUE(api->hidden);
  EXPECT_TRUE(api->returns_object);
  EXPECT_EQ(api->category, ApiCategory::kEmbedded);
  EXPECT_EQ(api->consumed_param, 0);  // decrements `from`
  const RefApiInfo* parse = kb.FindApi("of_parse_phandle");
  ASSERT_NE(parse, nullptr);
  EXPECT_EQ(parse->consumed_param, -1);
}

TEST(KbBuiltInTest, SmartLoops) {
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const SmartLoopInfo* loop = kb.FindSmartLoop("for_each_matching_node");
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->iterator_arg, 0);
  const SmartLoopInfo* child = kb.FindSmartLoop("for_each_child_of_node");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->iterator_arg, 1);  // (parent, child)
  EXPECT_EQ(kb.FindSmartLoop("list_for_each_entry"), nullptr);
}

TEST(KbHelpersTest, FreeLockUnlock) {
  EXPECT_TRUE(KnowledgeBase::IsFreeFunction("kfree"));
  EXPECT_TRUE(KnowledgeBase::IsFreeFunction("kvfree"));
  EXPECT_FALSE(KnowledgeBase::IsFreeFunction("of_node_put"));
  EXPECT_TRUE(KnowledgeBase::IsLockFunction("mutex_lock"));
  EXPECT_TRUE(KnowledgeBase::IsUnlockFunction("mutex_unlock"));
  EXPECT_FALSE(KnowledgeBase::IsLockFunction("mutex_unlock"));
}

TEST(KbKeywordsTest, NameSoundsLikeRefcounting) {
  EXPECT_TRUE(NameSoundsLikeRefcounting("of_node_get"));
  EXPECT_TRUE(NameSoundsLikeRefcounting("usb_serial_put"));
  EXPECT_TRUE(NameSoundsLikeRefcounting("dev_hold"));
  EXPECT_TRUE(NameSoundsLikeRefcounting("mdesc_grab"));
  EXPECT_FALSE(NameSoundsLikeRefcounting("of_find_compatible_node"));
  EXPECT_FALSE(NameSoundsLikeRefcounting("usb_console_setup"));
}

TEST(KbPairsTest, OpsFieldsAndWords) {
  bool has_probe_remove = false;
  for (const auto& [a, r] : PairedOpsFields()) {
    has_probe_remove |= (a == "probe" && r == "remove");
  }
  EXPECT_TRUE(has_probe_remove);
  EXPECT_EQ(PairedReleaseWord("register"), "unregister");
  EXPECT_EQ(PairedReleaseWord("create"), "destroy");
  EXPECT_EQ(PairedReleaseWord("nonsense"), "");
}

TEST(KbDiscoveryTest, DirectRefcounterField) {
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const auto unit = Parse(
      "struct my_widget {\n"
      "  int id;\n"
      "  struct kref refcnt;\n"
      "};\n");
  kb.DiscoverFromUnit(unit);
  EXPECT_TRUE(kb.IsRefcountedStruct("my_widget"));
}

TEST(KbDiscoveryTest, AtomicCounterNamedRef) {
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const auto unit = Parse(
      "struct conn { atomic_t refcnt; };\n"
      "struct plain { atomic_t pending_io; };\n");
  kb.DiscoverFromUnit(unit);
  EXPECT_TRUE(kb.IsRefcountedStruct("conn"));
  EXPECT_FALSE(kb.IsRefcountedStruct("plain"));
}

TEST(KbDiscoveryTest, NestedWithinThreshold) {
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const auto unit = Parse(
      "struct level0 { struct kobject kobj; };\n"
      "struct level1 { struct level0 inner; };\n"
      "struct level2 { struct level1 inner; };\n"
      "struct level3 { struct level2 inner; };\n"
      "struct level4 { struct level3 inner; };\n");
  kb.DiscoverFromUnit(unit, /*nesting_threshold=*/3);
  EXPECT_TRUE(kb.IsRefcountedStruct("level0"));
  EXPECT_TRUE(kb.IsRefcountedStruct("level3"));
  EXPECT_FALSE(kb.IsRefcountedStruct("level4"));  // beyond the threshold
}

TEST(KbDiscoveryTest, WrapperApiClassification) {
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const auto unit = Parse(
      "struct foo_dev *foo_dev_get(struct foo_dev *fd)\n"
      "{\n"
      "  kref_get(&fd->ref);\n"
      "  return fd;\n"
      "}\n"
      "void foo_dev_put(struct foo_dev *fd)\n"
      "{\n"
      "  kref_put(&fd->ref, foo_dev_release);\n"
      "}\n");
  kb.DiscoverFromUnit(unit);
  const RefApiInfo* get = kb.FindApi("foo_dev_get");
  ASSERT_NE(get, nullptr);
  EXPECT_EQ(get->direction, RefDirection::kIncrease);
  EXPECT_FALSE(get->hidden);  // "get" is a refcounting keyword
  EXPECT_TRUE(get->returns_object);
  const RefApiInfo* put = kb.FindApi("foo_dev_put");
  ASSERT_NE(put, nullptr);
  EXPECT_EQ(put->direction, RefDirection::kDecrease);
}

TEST(KbDiscoveryTest, HiddenFindLikeApiClassification) {
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const auto unit = Parse(
      "struct foo_dev *foo_bus_find(struct bus *b)\n"
      "{\n"
      "  struct foo_dev *fd = bus_walk(b);\n"
      "  if (fd)\n"
      "    kref_get(&fd->ref);\n"
      "  return fd;\n"
      "}\n");
  kb.DiscoverFromUnit(unit);
  const RefApiInfo* api = kb.FindApi("foo_bus_find");
  ASSERT_NE(api, nullptr);
  EXPECT_TRUE(api->hidden);  // "find" is not a refcounting keyword
  EXPECT_EQ(api->category, ApiCategory::kEmbedded);
  EXPECT_TRUE(api->returns_object);
}

TEST(KbDiscoveryTest, TwoRoundDiscoveryIsUnitOrderInsensitive) {
  // A wrapper-of-a-wrapper split across translation units must classify
  // identically whichever unit is visited first: round one always learns the
  // inner wrapper, round two the outer one.
  SourceFile outer_file("outer.c",
                        "struct foo_dev *foo_outer_get(struct foo_dev *fd)\n"
                        "{\n"
                        "  return foo_inner_get(fd);\n"
                        "}\n");
  SourceFile inner_file("inner.c",
                        "struct foo_dev *foo_inner_get(struct foo_dev *fd)\n"
                        "{\n"
                        "  kref_get(&fd->ref);\n"
                        "  return fd;\n"
                        "}\n");
  const TranslationUnit outer = ParseFile(outer_file);
  const TranslationUnit inner = ParseFile(inner_file);

  auto classify = [](const std::vector<const TranslationUnit*>& order) {
    KnowledgeBase kb = KnowledgeBase::BuiltIn();
    for (int round = 0; round < 2; ++round) {
      for (const TranslationUnit* unit : order) {
        kb.DiscoverFromUnit(*unit);
      }
    }
    return kb;
  };

  const KnowledgeBase first = classify({&outer, &inner});
  const KnowledgeBase second = classify({&inner, &outer});
  for (const KnowledgeBase* kb : {&first, &second}) {
    const RefApiInfo* api = kb->FindApi("foo_outer_get");
    ASSERT_NE(api, nullptr);
    EXPECT_EQ(api->direction, RefDirection::kIncrease);
    EXPECT_TRUE(api->returns_object);
    EXPECT_FALSE(api->hidden);
  }
}

TEST(KbDiscoveryTest, ReturnErrorDeviantDiscovered) {
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const auto unit = Parse(
      "int foo_power_get(struct dev *d)\n"
      "{\n"
      "  atomic_inc(&d->usage);\n"
      "  if (resume(d) < 0)\n"
      "    return -EIO;\n"
      "  return 0;\n"
      "}\n");
  kb.DiscoverFromUnit(unit);
  const RefApiInfo* api = kb.FindApi("foo_power_get");
  ASSERT_NE(api, nullptr);
  EXPECT_TRUE(api->returns_error);
}

TEST(KbDiscoveryTest, ReturnNullDeviantDiscovered) {
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const auto unit = Parse(
      "struct md *md_grab(void)\n"
      "{\n"
      "  if (!global_md)\n"
      "    return NULL;\n"
      "  refcount_inc(&global_md->refs);\n"
      "  return global_md;\n"
      "}\n");
  kb.DiscoverFromUnit(unit);
  const RefApiInfo* api = kb.FindApi("md_grab");
  ASSERT_NE(api, nullptr);
  EXPECT_TRUE(api->may_return_null);
}

TEST(KbDiscoveryTest, ConsumedParamDiscovered) {
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const auto unit = Parse(
      "struct node *my_find_next(struct node *from)\n"
      "{\n"
      "  struct node *np = walk(from);\n"
      "  if (np)\n"
      "    of_node_get(np);\n"
      "  of_node_put(from);\n"
      "  return np;\n"
      "}\n");
  kb.DiscoverFromUnit(unit);
  const RefApiInfo* api = kb.FindApi("my_find_next");
  ASSERT_NE(api, nullptr);
  EXPECT_EQ(api->direction, RefDirection::kIncrease);
  EXPECT_EQ(api->consumed_param, 0);
}

TEST(KbDiscoveryTest, SmartLoopMacroDiscovered) {
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const auto unit = Parse(
      "#define my_for_each_widget(w) \\\n"
      "  for (w = my_find_next(NULL); w; w = my_find_next(w))\n"
      "struct node *my_find_next(struct node *from)\n"
      "{\n"
      "  struct node *np = walk(from);\n"
      "  if (np)\n"
      "    of_node_get(np);\n"
      "  of_node_put(from);\n"
      "  return np;\n"
      "}\n");
  kb.DiscoverFromUnit(unit);
  kb.DiscoverFromUnit(unit);  // second round: macro sees the discovered API
  const SmartLoopInfo* loop = kb.FindSmartLoop("my_for_each_widget");
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->embedded_api, "my_find_next");
  EXPECT_EQ(loop->iterator_arg, 0);
}

TEST(KbDiscoveryTest, NonRefcountingFunctionNotClassified) {
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const auto unit = Parse(
      "int plain_math(int a, int b)\n"
      "{\n"
      "  return a * b + 1;\n"
      "}\n");
  kb.DiscoverFromUnit(unit);
  EXPECT_EQ(kb.FindApi("plain_math"), nullptr);
}

// ------------------------------------------------------------- P10-P12 KB

TEST(KbTestsZeroTest, DecAndTestBuiltinsCarryTheFlag) {
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  for (const char* name :
       {"refcount_dec_and_test", "atomic_dec_and_test", "atomic_long_dec_and_test"}) {
    const RefApiInfo* api = kb.FindApi(name);
    ASSERT_NE(api, nullptr) << name;
    EXPECT_EQ(api->direction, RefDirection::kDecrease) << name;
    EXPECT_TRUE(api->tests_zero) << name;
  }
  // Plain decrements do not test-and-report.
  const RefApiInfo* put = kb.FindApi("kref_put");
  ASSERT_NE(put, nullptr);
  EXPECT_FALSE(put->tests_zero);
}

TEST(KbRegistryTest, RefcountFieldsDiscoveredFromStructTypes) {
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const auto unit = Parse(
      "struct conn { refcount_t usage; int id; };\n"
      "struct stats { unsigned long hits; int depth; };\n");
  kb.DiscoverFromUnit(unit);
  EXPECT_TRUE(kb.IsRefcountField("usage"));
  // Plain integer counters never register — the P10 zero-FP guarantee.
  EXPECT_FALSE(kb.IsRefcountField("hits"));
  EXPECT_FALSE(kb.IsRefcountField("depth"));
  EXPECT_FALSE(kb.IsRefcountField("id"));
}

TEST(KbRegistryTest, FreeApiCoversKernelListPlusRegistrations) {
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  EXPECT_TRUE(kb.IsFreeApi("kfree"));
  EXPECT_FALSE(kb.IsFreeApi("g_free"));
  kb.AddFreeFunction("g_free");
  EXPECT_TRUE(kb.IsFreeApi("g_free"));
  EXPECT_TRUE(kb.extra_free_functions().contains("g_free"));
  // The static kernel classifier is unchanged by instance registrations.
  EXPECT_FALSE(KnowledgeBase::IsFreeFunction("g_free"));
}

TEST(KbDialectTest, KnownDialectsAreSorted) {
  const std::vector<std::string>& dialects = KnownDialects();
  ASSERT_EQ(dialects.size(), 2u);
  EXPECT_EQ(dialects[0], "glib");
  EXPECT_EQ(dialects[1], "uacpi");
}

TEST(KbDialectTest, UacpiCatalogue) {
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  ASSERT_TRUE(ApplyDialect(kb, "uacpi"));
  const RefApiInfo* ref = kb.FindApi("uacpi_shareable_ref");
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(ref->direction, RefDirection::kIncrease);
  const RefApiInfo* unref = kb.FindApi("uacpi_shareable_unref");
  ASSERT_NE(unref, nullptr);
  EXPECT_EQ(unref->direction, RefDirection::kDecrease);
  EXPECT_TRUE(unref->tests_zero);  // returns the previous count
  EXPECT_TRUE(kb.IsRefcountedStruct("uacpi_shareable"));
  EXPECT_TRUE(kb.IsRefcountField("reference_count"));
  EXPECT_TRUE(kb.IsFreeApi("uacpi_free"));
  EXPECT_TRUE(kb.IsFreeApi("uacpi_kernel_free"));
}

TEST(KbDialectTest, GlibCatalogue) {
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  ASSERT_TRUE(ApplyDialect(kb, "glib"));
  const RefApiInfo* ref = kb.FindApi("g_object_ref");
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(ref->direction, RefDirection::kIncrease);
  EXPECT_TRUE(ref->returns_object);  // g_object_ref returns its argument
  const RefApiInfo* dat = kb.FindApi("g_atomic_int_dec_and_test");
  ASSERT_NE(dat, nullptr);
  EXPECT_TRUE(dat->tests_zero);
  EXPECT_TRUE(kb.IsRefcountField("ref_count"));
  EXPECT_TRUE(kb.IsFreeApi("g_free"));
}

TEST(KbDialectTest, UnknownDialectIsRejectedWithoutSideEffects) {
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  EXPECT_FALSE(ApplyDialect(kb, "qt"));
  EXPECT_EQ(kb.FindApi("g_object_ref"), nullptr);
  EXPECT_EQ(kb.FindApi("uacpi_shareable_ref"), nullptr);
  EXPECT_TRUE(kb.extra_free_functions().empty());
}

TEST(ApiFamilyTest, Families) {
  EXPECT_EQ(ApiFamily("of_node_get"), "of-node");
  EXPECT_EQ(ApiFamily("of_node_put"), "of-node");
  EXPECT_EQ(ApiFamily("of_find_compatible_node"), "of-node");
  EXPECT_EQ(ApiFamily("of_parse_phandle"), "of-node");
  EXPECT_EQ(ApiFamily("pm_runtime_get_sync"), "pm-runtime");
  EXPECT_EQ(ApiFamily("pm_runtime_put"), "pm-runtime");
  EXPECT_EQ(ApiFamily("get_device"), "device");
  EXPECT_EQ(ApiFamily("put_device"), "device");
  EXPECT_EQ(ApiFamily("bus_find_device"), "device");
  EXPECT_EQ(ApiFamily("usb_serial_get"), ApiFamily("usb_serial_put"));
  EXPECT_EQ(ApiFamily("dev_hold"), ApiFamily("dev_put"));
  EXPECT_NE(ApiFamily("of_node_put"), ApiFamily("put_device"));
}

}  // namespace
}  // namespace refscan
