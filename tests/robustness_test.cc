// Robustness features for scanning real kernel trees: IS_ERR guards,
// underscore-prefixed internal API variants, unlikely() wrappers, and the
// JSON report serialization.

#include <gtest/gtest.h>

#include "src/checkers/engine.h"

namespace refscan {
namespace {

std::vector<BugReport> ScanText(std::string text) {
  CheckerEngine engine;
  return engine.ScanFileText("drivers/t/t.c", std::move(text)).reports;
}

TEST(IsErrGuardTest, GuardedErrPtrPathIsNotALeak) {
  const auto reports = ScanText(
      "static int f(void)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
      "  if (IS_ERR(np))\n"
      "    return PTR_ERR(np);\n"
      "  use(np);\n"
      "  of_node_put(np);\n"
      "  return 0;\n"
      "}\n");
  EXPECT_TRUE(reports.empty()) << (reports.empty() ? "" : reports[0].message);
}

TEST(IsErrGuardTest, UnlikelyWrappedNullCheckRecognised) {
  const auto reports = ScanText(
      "static int f(void)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
      "  if (unlikely(!np))\n"
      "    return -ENODEV;\n"
      "  use(np);\n"
      "  of_node_put(np);\n"
      "  return 0;\n"
      "}\n");
  EXPECT_TRUE(reports.empty()) << (reports.empty() ? "" : reports[0].message);
}

TEST(UnderscoreAliasTest, InternalVariantsShareKbEntries) {
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const RefApiInfo* internal = kb.FindApi("__of_find_matching_node");
  ASSERT_NE(internal, nullptr);
  EXPECT_EQ(internal->name, "of_find_matching_node");
  EXPECT_NE(kb.FindApi("__pm_runtime_get_sync"), nullptr);
  EXPECT_EQ(kb.FindApi("__totally_unknown"), nullptr);
}

TEST(UnderscoreAliasTest, InternalVariantDetectedByCheckers) {
  const auto reports = ScanText(
      "static int f(void)\n"
      "{\n"
      "  struct device_node *np = __of_find_node_by_path(\"/x\");\n"
      "  if (!np)\n"
      "    return -ENODEV;\n"
      "  use(np);\n"
      "  return 0;\n"  // *BUG*: leak through the internal variant
      "}\n");
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].anti_pattern, 4);
}

TEST(AttributeMacroTest, KernelSectionAttributesParse) {
  // __init / __exit / __must_check between storage class and name.
  const auto reports = ScanText(
      "static int __init late_setup(void)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
      "  if (!np)\n"
      "    return -ENODEV;\n"
      "  use(np);\n"
      "  return 0;\n"  // *BUG*
      "}\n");
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].function, "late_setup");
}

TEST(JsonOutputTest, WellFormedAndComplete) {
  const auto reports = ScanText(
      "static int f(struct platform_device *pdev)\n"
      "{\n"
      "  int ret = pm_runtime_get_sync(pdev->dev);\n"
      "  if (ret < 0)\n"
      "    return ret;\n"
      "  pm_runtime_put(pdev->dev);\n"
      "  return 0;\n"
      "}\n");
  ASSERT_EQ(reports.size(), 1u);
  const std::string json = ReportsToJson(reports);
  EXPECT_NE(json.find("\"anti_pattern\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"impact\": \"Leak\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"drivers/t/t.c\""), std::string::npos);
  EXPECT_NE(json.find("\"api\": \"pm_runtime_get_sync\""), std::string::npos);
  EXPECT_NE(json.find("\"exit_line\": 5"), std::string::npos);
  // Balanced brackets/braces (poor man's well-formedness).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(JsonOutputTest, EscapesSpecialCharacters) {
  BugReport r;
  r.anti_pattern = 4;
  r.file = "a\"b\\c.c";
  r.message = "line1\nline2\ttabbed";
  const std::string json = ReportsToJson({r});
  EXPECT_NE(json.find("a\\\"b\\\\c.c"), std::string::npos) << json;
  EXPECT_NE(json.find("line1\\nline2\\ttabbed"), std::string::npos);
}

TEST(JsonOutputTest, EmptyListIsEmptyArray) {
  EXPECT_EQ(ReportsToJson({}), "[\n]\n");
}

}  // namespace
}  // namespace refscan
