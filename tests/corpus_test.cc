// Tests for the synthetic kernel corpus: plan calibration against the
// paper's Table 4/5 totals, generation determinism, and the end-to-end
// ground-truth self-check (every planted bug is detected; detections beyond
// the plan are only the planted false-positive shapes).

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/checkers/engine.h"
#include "src/corpus/generator.h"
#include "src/corpus/plan.h"

namespace refscan {
namespace {

TEST(PlanTest, TotalsMatchTable4) {
  const PlanTotals totals = ComputePlanTotals(Table5Plan());
  EXPECT_EQ(totals.bugs, 351);
  EXPECT_EQ(totals.confirmed, 240);
  EXPECT_EQ(totals.patch_rejected, 3);
  EXPECT_EQ(totals.false_positives, 5);
  EXPECT_EQ(totals.per_subsystem.at("arch"), 156);
  EXPECT_EQ(totals.per_subsystem.at("drivers"), 182);
  EXPECT_EQ(totals.per_subsystem.at("include"), 2);
  EXPECT_EQ(totals.per_subsystem.at("net"), 2);
  EXPECT_EQ(totals.per_subsystem.at("sound"), 9);
}

TEST(PlanTest, PatternTotalsMatchTable5) {
  const PlanTotals totals = ComputePlanTotals(Table5Plan());
  EXPECT_EQ(totals.per_pattern.at(1), 1);
  EXPECT_EQ(totals.per_pattern.at(2), 7);   // NPD bugs (§6.3: 7 NPD)
  EXPECT_EQ(totals.per_pattern.at(4), 253);
  EXPECT_EQ(totals.per_pattern.at(9), 17);  // §7: 17 escape bugs
}

TEST(CorpusTest, GroundTruthMatchesPlan) {
  const Corpus corpus = GenerateKernelCorpus();
  EXPECT_EQ(corpus.ground_truth.size(), 351u);
  EXPECT_EQ(corpus.planted_fps.size(), 5u);

  std::map<std::string, int> per_subsystem;
  int confirmed = 0;
  int rejected = 0;
  int no_response = 0;
  for (const PlantedBug& bug : corpus.ground_truth) {
    per_subsystem[SplitKernelPath(bug.file).subsystem]++;
    switch (bug.response) {
      case MaintainerResponse::kConfirmed:
        ++confirmed;
        break;
      case MaintainerResponse::kPatchRejected:
        ++rejected;
        break;
      case MaintainerResponse::kNoResponse:
        ++no_response;
        break;
    }
  }
  EXPECT_EQ(per_subsystem["arch"], 156);
  EXPECT_EQ(per_subsystem["drivers"], 182);
  EXPECT_EQ(confirmed, 240);
  EXPECT_EQ(rejected, 3);
  EXPECT_EQ(no_response, 108);  // 351 - 240 - 3
}

TEST(CorpusTest, DeterministicForSeed) {
  const Corpus a = GenerateKernelCorpus();
  const Corpus b = GenerateKernelCorpus();
  ASSERT_EQ(a.tree.size(), b.tree.size());
  for (const auto& [path, file] : a.tree.files()) {
    const SourceFile* other = b.tree.Find(path);
    ASSERT_NE(other, nullptr) << path;
    EXPECT_EQ(file.text(), other->text()) << path;
  }
}

TEST(CorpusTest, DifferentSeedsDiffer) {
  CorpusOptions options;
  options.seed = 12345;
  const Corpus a = GenerateKernelCorpus();
  const Corpus b = GenerateKernelCorpus(options);
  bool any_difference = a.tree.size() != b.tree.size();
  for (const auto& [path, file] : a.tree.files()) {
    const SourceFile* other = b.tree.Find(path);
    if (other == nullptr || other->text() != file.text()) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(CorpusTest, TreeShapeIsKernelLike) {
  const Corpus corpus = GenerateKernelCorpus();
  EXPECT_GT(corpus.tree.size(), 60u);  // 54 modules, several files each
  EXPECT_GT(corpus.tree.LinesUnder("drivers/"), 2000u);
  EXPECT_GT(corpus.tree.LinesUnder("arch/"), 1000u);
  // Header-module bugs live in .h files.
  bool include_header = false;
  for (const auto& [path, file] : corpus.tree.files()) {
    if (path.starts_with("include/linux/") && path.ends_with(".h")) {
      include_header = true;
    }
  }
  EXPECT_TRUE(include_header);
}

// The central self-check: scanning the corpus finds every planted bug with
// the right anti-pattern, and everything else it reports is a planted FP.
class CorpusScanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new Corpus(GenerateKernelCorpus());
    CheckerEngine engine;
    result_ = new ScanResult(engine.Scan(corpus_->tree));
  }
  static void TearDownTestSuite() {
    delete corpus_;
    delete result_;
    corpus_ = nullptr;
    result_ = nullptr;
  }
  static Corpus* corpus_;
  static ScanResult* result_;
};

Corpus* CorpusScanTest::corpus_ = nullptr;
ScanResult* CorpusScanTest::result_ = nullptr;

TEST_F(CorpusScanTest, EveryPlantedBugIsDetected) {
  std::set<std::pair<std::string, std::string>> reported_functions;
  for (const BugReport& r : result_->reports) {
    reported_functions.emplace(r.file, r.function);
  }
  int missed = 0;
  for (const PlantedBug& bug : corpus_->ground_truth) {
    if (!reported_functions.contains({bug.file, bug.function})) {
      ++missed;
      ADD_FAILURE() << "missed planted bug: " << bug.file << " " << bug.function << " P"
                    << bug.anti_pattern << " api=" << bug.api;
      if (missed > 10) {
        break;
      }
    }
  }
  EXPECT_EQ(missed, 0);
}

TEST_F(CorpusScanTest, NoSpuriousReportsBeyondPlantedFps) {
  int spurious = 0;
  for (const BugReport& r : result_->reports) {
    if (corpus_->FindBug(r.file, r.function) == nullptr && !corpus_->IsPlantedFp(r.file, r.function)) {
      ++spurious;
      ADD_FAILURE() << "spurious report: " << r.file << " " << r.function << " P"
                    << r.anti_pattern << " " << r.message;
      if (spurious > 10) {
        break;
      }
    }
  }
  EXPECT_EQ(spurious, 0);
}

TEST_F(CorpusScanTest, PlantedFpsAreReportedAsThePaperFound) {
  // The five Listing-5 shapes must be *reported* (they were the paper's
  // false positives — the checkers did flag them).
  for (const PlantedFalsePositive& fp : corpus_->planted_fps) {
    bool reported = false;
    for (const BugReport& r : result_->reports) {
      reported |= r.file == fp.file && r.function == fp.function;
    }
    EXPECT_TRUE(reported) << "planted FP shape not flagged: " << fp.function;
  }
}

TEST_F(CorpusScanTest, DetectedPatternsMatchGroundTruth) {
  int mismatched = 0;
  for (const BugReport& r : result_->reports) {
    const PlantedBug* bug = corpus_->FindBug(r.file, r.function);
    if (bug == nullptr) {
      continue;
    }
    if (bug->anti_pattern != r.anti_pattern) {
      ++mismatched;
      if (mismatched <= 10) {
        ADD_FAILURE() << r.function << ": planted P" << bug->anti_pattern << " detected as P"
                      << r.anti_pattern;
      }
    }
  }
  EXPECT_EQ(mismatched, 0);
}

TEST_F(CorpusScanTest, ImpactsMatchGroundTruth) {
  for (const BugReport& r : result_->reports) {
    const PlantedBug* bug = corpus_->FindBug(r.file, r.function);
    if (bug != nullptr && bug->anti_pattern == r.anti_pattern) {
      EXPECT_EQ(static_cast<int>(r.impact), static_cast<int>(bug->impact))
          << r.function << " P" << r.anti_pattern;
    }
  }
}

TEST_F(CorpusScanTest, ReportTotalsMatchTable4Shape) {
  // 351 planted + 5 FP shapes; each planted bug should yield exactly one
  // report per (file, function) site after deduplication, so 356 total.
  std::set<std::pair<std::string, std::string>> functions;
  for (const BugReport& r : result_->reports) {
    functions.emplace(r.file, r.function);
  }
  EXPECT_EQ(functions.size(), 356u);
}

// ------------------------------------------------- P10-P12 new-family modules

TEST(CorpusTest, NewFamilyModulesAreOptInAndAdditive) {
  const Corpus base = GenerateKernelCorpus();
  CorpusOptions options;
  options.new_family_modules = true;
  const Corpus extended = GenerateKernelCorpus(options);

  // Every base file is byte-identical in the extended corpus; the new
  // modules only add files.
  EXPECT_GT(extended.tree.size(), base.tree.size());
  for (const auto& [path, file] : base.tree.files()) {
    const SourceFile* other = extended.tree.Find(path);
    ASSERT_NE(other, nullptr) << path;
    EXPECT_EQ(file.text(), other->text()) << path;
  }

  // Ground truth grows only by P10-P12 entries, and those live only in the
  // new-family files.
  EXPECT_GT(extended.ground_truth.size(), base.ground_truth.size());
  const size_t added = extended.ground_truth.size() - base.ground_truth.size();
  size_t new_family = 0;
  for (const PlantedBug& bug : extended.ground_truth) {
    if (bug.anti_pattern >= 10 || base.tree.Find(bug.file) == nullptr) {
      ++new_family;
      EXPECT_GE(bug.anti_pattern, 10) << bug.file << " " << bug.function;
      EXPECT_EQ(base.tree.Find(bug.file), nullptr) << bug.file;
    }
  }
  EXPECT_EQ(new_family, added);
}

TEST(CorpusTest, KernelishModulesAreOptInDeterministicAndAdditive) {
  const Corpus base = GenerateKernelCorpus();
  CorpusOptions options;
  options.kernelish_modules = 6;
  const Corpus a = GenerateKernelCorpus(options);
  const Corpus b = GenerateKernelCorpus(options);

  // Opt-in and additive: every base file is byte-identical, kernelish
  // modules only add files under drivers/kernelish/.
  EXPECT_EQ(a.tree.size(), base.tree.size() + 6);
  for (const auto& [path, file] : base.tree.files()) {
    const SourceFile* other = a.tree.Find(path);
    ASSERT_NE(other, nullptr) << path;
    EXPECT_EQ(file.text(), other->text()) << path;
  }

  // Deterministic: every byte is a pure function of (seed, module index).
  for (const auto& [path, file] : a.tree.files()) {
    const SourceFile* other = b.tree.Find(path);
    ASSERT_NE(other, nullptr) << path;
    EXPECT_EQ(file.text(), other->text()) << path;
  }

  // The realism shapes are actually present.
  size_t kernelish = 0;
  bool saw_crlf = false;
  bool saw_attribute = false;
  bool saw_asm = false;
  bool saw_unparseable = false;
  for (const auto& [path, file] : a.tree.files()) {
    if (path.rfind("drivers/kernelish/", 0) != 0) {
      continue;
    }
    ++kernelish;
    const std::string_view text = file.text();
    saw_crlf |= text.find("\\\r\n") != std::string_view::npos;
    saw_attribute |= text.find("__attribute__") != std::string_view::npos;
    saw_asm |= text.find("__asm__") != std::string_view::npos;
    saw_unparseable |= text.find("_unparseable") != std::string_view::npos;
  }
  EXPECT_EQ(kernelish, 6u);
  EXPECT_TRUE(saw_crlf);
  EXPECT_TRUE(saw_attribute);
  EXPECT_TRUE(saw_asm);
  EXPECT_TRUE(saw_unparseable);
}

TEST(CorpusTest, KernelishModulesScanWithinTheQuarantineBudget) {
  // The acceptance bar (DESIGN.md §5.15): >= 99% of kernelish functions
  // parse, the deliberately unparseable ones quarantine (never a whole
  // file), and the scan exits kExitDegraded.
  CorpusOptions options;
  options.kernelish_modules = 8;
  const Corpus corpus = GenerateKernelCorpus(options);
  SourceTree tree;
  for (const auto& [path, file] : corpus.tree.files()) {
    if (path.rfind("drivers/kernelish/", 0) == 0) {
      tree.Add(path, std::string(file.text()));
    }
  }
  ASSERT_EQ(tree.size(), 8u);

  CheckerEngine engine;
  const ScanResult result = engine.Scan(tree);
  EXPECT_TRUE(result.failures.empty());  // no whole-file drops
  EXPECT_EQ(ScanExitCodeFor(result), kExitDegraded);
  // Every other module carries exactly one hopeless function.
  EXPECT_EQ(result.degraded_functions.size(), 4u);
  for (const DegradedFunctionReport& d : result.degraded_functions) {
    EXPECT_NE(d.function.find("_unparseable"), std::string::npos) << d.function;
  }
  const size_t parsed = result.stats.functions;
  const size_t degraded = result.stats.functions_degraded;
  ASSERT_GT(parsed + degraded, 0u);
  EXPECT_GE(static_cast<double>(parsed) / static_cast<double>(parsed + degraded), 0.99);
}

// Scans the extended corpus with all twelve families and both dialect
// catalogues — the configuration the EXPERIMENTS.md recall/precision rows
// are measured under.
class NewFamilyScanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CorpusOptions options;
    options.new_family_modules = true;
    corpus_ = new Corpus(GenerateKernelCorpus(options));
    ScanOptions scan;
    scan.enabled_patterns = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
    scan.dialects = {"glib", "uacpi"};
    CheckerEngine engine(KnowledgeBase::BuiltIn(), scan);
    result_ = new ScanResult(engine.Scan(corpus_->tree));
  }
  static void TearDownTestSuite() {
    delete corpus_;
    delete result_;
    corpus_ = nullptr;
    result_ = nullptr;
  }
  static Corpus* corpus_;
  static ScanResult* result_;
};

Corpus* NewFamilyScanTest::corpus_ = nullptr;
ScanResult* NewFamilyScanTest::result_ = nullptr;

TEST_F(NewFamilyScanTest, EveryNewFamilyBugIsDetectedWithTheRightPattern) {
  // Recall per family: every P10/P11/P12 planted bug must be reported in
  // its function with the planted pattern id (the ISSUE floor is 95%;
  // the corpus is calibrated for 100%).
  std::map<int, int> planted;
  std::map<int, int> found;
  for (const PlantedBug& bug : corpus_->ground_truth) {
    if (bug.anti_pattern < 10) {
      continue;
    }
    planted[bug.anti_pattern]++;
    for (const BugReport& r : result_->reports) {
      if (r.file == bug.file && r.function == bug.function &&
          r.anti_pattern == bug.anti_pattern) {
        found[bug.anti_pattern]++;
        break;
      }
    }
  }
  for (const auto& [pattern, count] : planted) {
    EXPECT_EQ(found[pattern], count) << "P" << pattern << " recall below 100%";
  }
  // All three families are represented in the extended corpus.
  EXPECT_GT(planted[10], 0);
  EXPECT_GT(planted[11], 0);
  EXPECT_GT(planted[12], 0);
}

TEST_F(NewFamilyScanTest, NoSpuriousReportsInNewFamilyModules) {
  // Precision: inside the new-family files, every report lands on a planted
  // bug — the clean counterparts (checked APIs, plain counters, correct
  // dec_and_test destructors) stay silent.
  const Corpus base = GenerateKernelCorpus();
  int spurious = 0;
  for (const BugReport& r : result_->reports) {
    if (base.tree.Find(r.file) != nullptr) {
      continue;  // base-corpus file: covered by the base-corpus tests
    }
    if (corpus_->FindBug(r.file, r.function) == nullptr) {
      ++spurious;
      ADD_FAILURE() << "spurious new-family report: " << r.file << " " << r.function
                    << " P" << r.anti_pattern << " " << r.message;
    }
  }
  EXPECT_EQ(spurious, 0);
}

TEST_F(NewFamilyScanTest, ImpactsMatchNewFamilyGroundTruth) {
  for (const BugReport& r : result_->reports) {
    if (r.anti_pattern < 10) {
      continue;
    }
    const PlantedBug* bug = corpus_->FindBug(r.file, r.function);
    ASSERT_NE(bug, nullptr) << r.file << " " << r.function;
    EXPECT_EQ(static_cast<int>(r.impact), static_cast<int>(bug->impact))
        << r.function << " P" << r.anti_pattern;
  }
}

TEST(NewFamilyBaseCorpusTest, EnablingNewFamiliesDoesNotPerturbBaseReports) {
  // Zero-new-FP guarantee on the P1-P9 corpus: with P10-P12 and both
  // dialects enabled, the base corpus produces byte-identical reports to
  // the default nine-pattern scan.
  const Corpus base = GenerateKernelCorpus();
  CheckerEngine defaults;
  const ScanResult nine = defaults.Scan(base.tree);

  ScanOptions all;
  all.enabled_patterns = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  all.dialects = {"glib", "uacpi"};
  CheckerEngine extended(KnowledgeBase::BuiltIn(), all);
  const ScanResult twelve = extended.Scan(base.tree);

  EXPECT_EQ(ReportsToJson(nine.reports), ReportsToJson(twelve.reports));
}

}  // namespace
}  // namespace refscan
