// Unit tests for the tolerant kernel-C parser.

#include <gtest/gtest.h>

#include <string>

#include "src/ast/ast.h"
#include "src/ast/parser.h"
#include "src/support/source.h"

namespace refscan {
namespace {

TranslationUnit Parse(std::string text) {
  SourceFile file("t.c", std::move(text));
  return ParseFile(file);
}

TEST(ParserTest, SimpleFunction) {
  const auto unit = Parse(
      "static int foo(int a, char *b)\n"
      "{\n"
      "  return a;\n"
      "}\n");
  ASSERT_EQ(unit.functions.size(), 1u);
  const FunctionDef& fn = unit.functions[0];
  EXPECT_EQ(fn.name, "foo");
  EXPECT_TRUE(fn.is_static);
  EXPECT_EQ(fn.return_type, "int");
  ASSERT_EQ(fn.params.size(), 2u);
  EXPECT_EQ(fn.params[0].name, "a");
  EXPECT_EQ(fn.params[0].type, "int");
  EXPECT_EQ(fn.params[1].name, "b");
  ASSERT_NE(fn.body, nullptr);
  ASSERT_EQ(fn.body->stmts.size(), 1u);
  EXPECT_EQ(fn.body->stmts[0]->kind, Stmt::Kind::kReturn);
}

TEST(ParserTest, VoidParamListIsEmpty) {
  const auto unit = Parse("int f(void) { return 0; }");
  ASSERT_EQ(unit.functions.size(), 1u);
  EXPECT_TRUE(unit.functions[0].params.empty());
}

TEST(ParserTest, PointerReturnType) {
  const auto unit = Parse("struct device_node *of_find_node(const char *path) { return 0; }");
  ASSERT_EQ(unit.functions.size(), 1u);
  EXPECT_EQ(unit.functions[0].name, "of_find_node");
  EXPECT_EQ(unit.functions[0].return_type, "struct device_node*");
}

TEST(ParserTest, StructDefinitionFields) {
  const auto unit = Parse(
      "struct nvmem_device {\n"
      "  struct device dev;\n"
      "  struct kref refcnt;\n"
      "  int users;\n"
      "  int (*reg_read)(void *ctx);\n"
      "};\n");
  ASSERT_EQ(unit.structs.size(), 1u);
  const StructDef& s = unit.structs[0];
  EXPECT_EQ(s.name, "nvmem_device");
  ASSERT_EQ(s.fields.size(), 4u);
  EXPECT_EQ(s.fields[0].type, "struct device");
  EXPECT_EQ(s.fields[0].name, "dev");
  EXPECT_EQ(s.fields[1].type, "struct kref");
  EXPECT_EQ(s.fields[1].name, "refcnt");
  EXPECT_EQ(s.fields[2].name, "users");
  EXPECT_EQ(s.fields[3].type, "fnptr");
  EXPECT_EQ(s.fields[3].name, "reg_read");
}

TEST(ParserTest, GlobalOpsStructDesignatedInit) {
  const auto unit = Parse(
      "static struct platform_driver brcmstb_driver = {\n"
      "  .probe = brcmstb_pm_probe,\n"
      "  .remove = brcmstb_pm_remove,\n"
      "  .driver = { .name = \"brcmstb\" },\n"
      "};\n");
  ASSERT_EQ(unit.globals.size(), 1u);
  const GlobalVar& g = unit.globals[0];
  EXPECT_EQ(g.name, "brcmstb_driver");
  EXPECT_EQ(g.type, "struct platform_driver");
  ASSERT_GE(g.inits.size(), 2u);
  EXPECT_EQ(g.inits[0].field, "probe");
  EXPECT_EQ(g.inits[0].value, "brcmstb_pm_probe");
  EXPECT_EQ(g.inits[1].field, "remove");
  EXPECT_EQ(g.inits[1].value, "brcmstb_pm_remove");
}

TEST(ParserTest, MacroDefinitionCaptured) {
  const auto unit = Parse(
      "#define for_each_matching_node(dn, m) \\\n"
      "  for (dn = of_find_matching_node(NULL, m); dn; dn = of_find_matching_node(dn, m))\n");
  ASSERT_EQ(unit.macros.size(), 1u);
  const MacroDef& m = unit.macros[0];
  EXPECT_EQ(m.name, "for_each_matching_node");
  ASSERT_EQ(m.params.size(), 2u);
  EXPECT_EQ(m.params[0], "dn");
  EXPECT_EQ(m.params[1], "m");
  EXPECT_NE(m.body.find("of_find_matching_node"), std::string::npos);
}

TEST(ParserTest, ObjectLikeMacro) {
  const auto unit = Parse("#define MAX_NODES 128\n");
  ASSERT_EQ(unit.macros.size(), 1u);
  EXPECT_EQ(unit.macros[0].name, "MAX_NODES");
  EXPECT_TRUE(unit.macros[0].params.empty());
  EXPECT_EQ(unit.macros[0].body, "128");
}

TEST(ParserTest, IfElseChain) {
  const auto unit = Parse(
      "void f(int x) {\n"
      "  if (x < 0)\n"
      "    g();\n"
      "  else if (x == 0) {\n"
      "    h();\n"
      "  } else\n"
      "    k();\n"
      "}\n");
  ASSERT_EQ(unit.functions.size(), 1u);
  const Stmt& body = *unit.functions[0].body;
  ASSERT_EQ(body.stmts.size(), 1u);
  const Stmt& if_stmt = *body.stmts[0];
  EXPECT_EQ(if_stmt.kind, Stmt::Kind::kIf);
  ASSERT_NE(if_stmt.else_body, nullptr);
  EXPECT_EQ(if_stmt.else_body->kind, Stmt::Kind::kIf);
}

TEST(ParserTest, GotoAndLabels) {
  const auto unit = Parse(
      "int f(void) {\n"
      "  if (bad)\n"
      "    goto err_out;\n"
      "  return 0;\n"
      "err_out:\n"
      "  cleanup();\n"
      "  return -1;\n"
      "}\n");
  const Stmt& body = *unit.functions[0].body;
  int gotos = 0;
  int labels = 0;
  ForEachStmt(body, [&](const Stmt& s) {
    if (s.kind == Stmt::Kind::kGoto) {
      ++gotos;
      EXPECT_EQ(s.name, "err_out");
    }
    if (s.kind == Stmt::Kind::kLabel) {
      ++labels;
      EXPECT_EQ(s.name, "err_out");
    }
  });
  EXPECT_EQ(gotos, 1);
  EXPECT_EQ(labels, 1);
}

TEST(ParserTest, ForLoop) {
  const auto unit = Parse("void f(void) { for (i = 0; i < n; i++) body(i); }");
  const Stmt& loop = *unit.functions[0].body->stmts[0];
  EXPECT_EQ(loop.kind, Stmt::Kind::kFor);
  ASSERT_NE(loop.init, nullptr);
  ASSERT_NE(loop.expr, nullptr);
  ASSERT_NE(loop.incr, nullptr);
  ASSERT_NE(loop.body, nullptr);
}

TEST(ParserTest, ForLoopWithDeclInit) {
  const auto unit = Parse("void f(void) { for (int i = 0; i < n; i++) body(i); }");
  const Stmt& loop = *unit.functions[0].body->stmts[0];
  EXPECT_EQ(loop.kind, Stmt::Kind::kFor);
  ASSERT_NE(loop.init, nullptr);
  EXPECT_EQ(loop.init->kind, Expr::Kind::kAssign);
}

TEST(ParserTest, WhileAndDoWhile) {
  const auto unit = Parse(
      "void f(void) {\n"
      "  while (cond()) step();\n"
      "  do { step(); } while (again);\n"
      "}\n");
  const auto& stmts = unit.functions[0].body->stmts;
  ASSERT_EQ(stmts.size(), 2u);
  EXPECT_EQ(stmts[0]->kind, Stmt::Kind::kWhile);
  EXPECT_EQ(stmts[1]->kind, Stmt::Kind::kDoWhile);
}

TEST(ParserTest, SwitchCases) {
  const auto unit = Parse(
      "void f(int x) {\n"
      "  switch (x) {\n"
      "  case 1:\n"
      "    a();\n"
      "    break;\n"
      "  default:\n"
      "    b();\n"
      "  }\n"
      "}\n");
  int cases = 0;
  int defaults = 0;
  ForEachStmt(*unit.functions[0].body, [&](const Stmt& s) {
    cases += s.kind == Stmt::Kind::kCase ? 1 : 0;
    defaults += s.kind == Stmt::Kind::kDefault ? 1 : 0;
  });
  EXPECT_EQ(cases, 1);
  EXPECT_EQ(defaults, 1);
}

TEST(ParserTest, MacroLoopWithBracedBody) {
  const auto unit = Parse(
      "void f(void) {\n"
      "  for_each_child_of_node(parent, child) {\n"
      "    use(child);\n"
      "    if (match(child))\n"
      "      break;\n"
      "  }\n"
      "}\n");
  const Stmt& loop = *unit.functions[0].body->stmts[0];
  ASSERT_EQ(loop.kind, Stmt::Kind::kMacroLoop);
  ASSERT_NE(loop.expr, nullptr);
  EXPECT_EQ(loop.expr->CalleeName(), "for_each_child_of_node");
  ASSERT_NE(loop.body, nullptr);
  EXPECT_EQ(loop.body->kind, Stmt::Kind::kCompound);
}

TEST(ParserTest, MacroLoopWithSingleStatementBody) {
  const auto unit = Parse("void f(void) { for_each_node_by_name(np, \"cpu\") count++; }");
  const Stmt& loop = *unit.functions[0].body->stmts[0];
  ASSERT_EQ(loop.kind, Stmt::Kind::kMacroLoop);
  ASSERT_NE(loop.body, nullptr);
  EXPECT_EQ(loop.body->kind, Stmt::Kind::kExpr);
}

TEST(ParserTest, CallStatementFollowedByBraceIsMacroLoop) {
  const auto unit = Parse("void f(void) { list_for_each_entry(evt, head, node) { use(evt); } }");
  const Stmt& loop = *unit.functions[0].body->stmts[0];
  EXPECT_EQ(loop.kind, Stmt::Kind::kMacroLoop);
}

TEST(ParserTest, PlainCallIsExprStatement) {
  const auto unit = Parse("void f(void) { of_node_put(np); }");
  const Stmt& s = *unit.functions[0].body->stmts[0];
  ASSERT_EQ(s.kind, Stmt::Kind::kExpr);
  EXPECT_EQ(s.expr->CalleeName(), "of_node_put");
}

TEST(ParserTest, Declarations) {
  const auto unit = Parse(
      "void f(void) {\n"
      "  int ret = 0;\n"
      "  struct device_node *np;\n"
      "  u32 value;\n"
      "  struct nvmem_device *dev = bus_find_device(bus, NULL, data, match);\n"
      "}\n");
  const auto& stmts = unit.functions[0].body->stmts;
  ASSERT_EQ(stmts.size(), 4u);
  EXPECT_EQ(stmts[0]->kind, Stmt::Kind::kDecl);
  EXPECT_EQ(stmts[0]->name, "ret");
  EXPECT_EQ(stmts[0]->type, "int");
  ASSERT_NE(stmts[0]->expr, nullptr);
  EXPECT_EQ(stmts[1]->kind, Stmt::Kind::kDecl);
  EXPECT_EQ(stmts[1]->name, "np");
  EXPECT_EQ(stmts[2]->kind, Stmt::Kind::kDecl);
  EXPECT_EQ(stmts[2]->name, "value");
  EXPECT_EQ(stmts[3]->kind, Stmt::Kind::kDecl);
  ASSERT_NE(stmts[3]->expr, nullptr);
  EXPECT_EQ(stmts[3]->expr->CalleeName(), "bus_find_device");
}

TEST(ParserTest, MultiDeclarator) {
  const auto unit = Parse("void f(void) { int a = 1, b = 2; }");
  const Stmt& s = *unit.functions[0].body->stmts[0];
  ASSERT_EQ(s.kind, Stmt::Kind::kCompound);
  ASSERT_EQ(s.stmts.size(), 2u);
  EXPECT_EQ(s.stmts[0]->name, "a");
  EXPECT_EQ(s.stmts[1]->name, "b");
}

TEST(ParserExprTest, MemberChains) {
  const auto expr = ParseExpression("pdev->dev.of_node");
  ASSERT_NE(expr, nullptr);
  EXPECT_EQ(expr->kind, Expr::Kind::kMember);
  EXPECT_EQ(expr->value, "of_node");
  EXPECT_FALSE(expr->arrow);
  ASSERT_EQ(expr->args.size(), 1u);
  EXPECT_EQ(expr->args[0]->kind, Expr::Kind::kMember);
  EXPECT_TRUE(expr->args[0]->arrow);
  EXPECT_EQ(expr->args[0]->value, "dev");
}

TEST(ParserExprTest, CallWithArgs) {
  const auto expr = ParseExpression("of_find_matching_node(from, matches)");
  ASSERT_NE(expr, nullptr);
  EXPECT_EQ(expr->CalleeName(), "of_find_matching_node");
  EXPECT_EQ(expr->args.size(), 3u);  // callee + 2 args
}

TEST(ParserExprTest, PrecedenceAndToString) {
  const auto expr = ParseExpression("a + b * c");
  ASSERT_NE(expr, nullptr);
  EXPECT_EQ(expr->ToString(), "a + b * c");
  EXPECT_EQ(expr->value, "+");
  EXPECT_EQ(expr->args[1]->value, "*");
}

TEST(ParserExprTest, AssignmentIsRightAssociative) {
  const auto expr = ParseExpression("a = b = c");
  ASSERT_NE(expr, nullptr);
  EXPECT_EQ(expr->kind, Expr::Kind::kAssign);
  EXPECT_EQ(expr->args[1]->kind, Expr::Kind::kAssign);
}

TEST(ParserExprTest, UnaryDerefAndNot) {
  const auto expr = ParseExpression("!*ptr");
  ASSERT_NE(expr, nullptr);
  EXPECT_EQ(expr->kind, Expr::Kind::kUnary);
  EXPECT_EQ(expr->value, "!");
  EXPECT_EQ(expr->args[0]->value, "*");
}

TEST(ParserExprTest, Ternary) {
  const auto expr = ParseExpression("x ? y : z");
  ASSERT_NE(expr, nullptr);
  EXPECT_EQ(expr->kind, Expr::Kind::kTernary);
  EXPECT_EQ(expr->args.size(), 3u);
}

TEST(ParserExprTest, CastOfPointer) {
  const auto expr = ParseExpression("(struct device *)data");
  ASSERT_NE(expr, nullptr);
  EXPECT_EQ(expr->kind, Expr::Kind::kCast);
  ASSERT_EQ(expr->args.size(), 1u);
  EXPECT_EQ(expr->args[0]->value, "data");
}

TEST(ParserTest, ErrorRecoverySkipsGarbageStatement) {
  const auto unit = Parse(
      "void f(void) {\n"
      "  int ok1 = 1;\n"
      "  @@ ??? garbage $$$;\n"
      "  int ok2 = 2;\n"
      "}\n");
  ASSERT_EQ(unit.functions.size(), 1u);
  const auto& stmts = unit.functions[0].body->stmts;
  bool found_ok2 = false;
  for (const auto& s : stmts) {
    if (s->kind == Stmt::Kind::kDecl && s->name == "ok2") {
      found_ok2 = true;
    }
  }
  EXPECT_TRUE(found_ok2);
}

// ---- GNU extensions real kernel C is full of (DESIGN.md §5.15) ----------

TEST(ParserTest, AttributeSoupOnFunctionAndStruct) {
  const auto unit = Parse(
      "struct __attribute__((aligned(8))) dev_state {\n"
      "  int refs;\n"
      "};\n"
      "__attribute__((cold)) static int probe(void) __attribute__((section(\".init\")))\n"
      "{\n"
      "  return 0;\n"
      "}\n");
  ASSERT_EQ(unit.structs.size(), 1u);
  EXPECT_EQ(unit.structs[0].name, "dev_state");
  ASSERT_EQ(unit.structs[0].fields.size(), 1u);
  ASSERT_EQ(unit.functions.size(), 1u);
  EXPECT_EQ(unit.functions[0].name, "probe");
  EXPECT_TRUE(unit.degraded.empty());
}

TEST(ParserTest, StatementExpressionKeepsCallsVisible) {
  // `({ ... })` flattens to a comma chain so calls inside stay reachable
  // by ForEachExpr — the checkers must see the of_node_get().
  const auto unit = Parse(
      "void f(struct device_node *np) {\n"
      "  int v = ({ int __t = of_node_get(np) ? 1 : 0; __t + 1; });\n"
      "  use(v);\n"
      "}\n");
  ASSERT_EQ(unit.functions.size(), 1u);
  bool saw_get = false;
  ForEachExpr(*unit.functions[0].body, [&](const Expr& x) {
    saw_get |= x.IsCall() && x.CalleeName() == "of_node_get";
  });
  EXPECT_TRUE(saw_get);
  EXPECT_TRUE(unit.degraded.empty());
}

TEST(ParserTest, InlineAsmCollapsesToEmptyStatement) {
  const auto unit = Parse(
      "void barrier_heavy(void) {\n"
      "  __asm__ volatile(\"mfence\" ::: \"memory\");\n"
      "  asm volatile(\"nop\");\n"
      "  asm(\"\");\n"
      "  done();\n"
      "}\n");
  ASSERT_EQ(unit.functions.size(), 1u);
  const auto& stmts = unit.functions[0].body->stmts;
  ASSERT_EQ(stmts.size(), 4u);
  EXPECT_EQ(stmts[0]->kind, Stmt::Kind::kEmpty);
  EXPECT_EQ(stmts[1]->kind, Stmt::Kind::kEmpty);
  EXPECT_EQ(stmts[2]->kind, Stmt::Kind::kEmpty);
  EXPECT_EQ(stmts[3]->kind, Stmt::Kind::kExpr);
  EXPECT_TRUE(unit.degraded.empty());
}

TEST(ParserTest, TypeofDeclarationsParse) {
  const auto unit = Parse(
      "void f(int base) {\n"
      "  typeof(base) copy = base;\n"
      "  __typeof__(base) other = copy + 1;\n"
      "  use(copy, other);\n"
      "}\n");
  ASSERT_EQ(unit.functions.size(), 1u);
  EXPECT_EQ(unit.functions[0].body->stmts.size(), 3u);
  EXPECT_TRUE(unit.degraded.empty());
}

// ---- function-granular quarantine (DESIGN.md §5.15) ---------------------

TEST(ParserTest, UnparseableBodyQuarantinesOnlyThatFunction) {
  const auto unit = Parse(
      "int good_before(void) { return 1; }\n"
      "int hopeless(void) {\n"
      "  @@ 1$ !! 2?? ;\n"
      "  @@ 3$ !! 4?? ;\n"
      "  @@ 5$ !! 6?? ;\n"
      "  @@ 7$ !! 8?? ;\n"
      "}\n"
      "int good_after(void) { return 2; }\n");
  ASSERT_EQ(unit.functions.size(), 2u);
  EXPECT_EQ(unit.functions[0].name, "good_before");
  EXPECT_EQ(unit.functions[1].name, "good_after");
  ASSERT_EQ(unit.degraded.size(), 1u);
  EXPECT_EQ(unit.degraded[0].name, "hopeless");
  EXPECT_EQ(unit.degraded[0].line, 2u);
  EXPECT_FALSE(unit.degraded[0].what.empty());
}

TEST(ParserTest, QuarantineMatchesDeletingTheFunction) {
  // The recovery contract: siblings of a quarantined function parse exactly
  // as if the bad function had been deleted from the source.
  const std::string good_part =
      "static int balanced(struct device_node *np) {\n"
      "  struct device_node *child = of_get_child_by_name(np, \"x\");\n"
      "  if (!child)\n"
      "    return -1;\n"
      "  of_node_put(child);\n"
      "  return 0;\n"
      "}\n";
  const std::string bad_fn =
      "int mangled(void) {\n"
      "  @@ ?? $$ ;\n"
      "  @@ ?? $$ ;\n"
      "  @@ ?? $$ ;\n"
      "  @@ ?? $$ ;\n"
      "}\n";
  const auto with_bad = Parse(good_part + bad_fn);
  const auto without_bad = Parse(good_part);
  ASSERT_EQ(with_bad.functions.size(), without_bad.functions.size());
  ASSERT_EQ(with_bad.functions.size(), 1u);
  EXPECT_EQ(with_bad.functions[0].name, "balanced");
  EXPECT_EQ(with_bad.functions[0].body->stmts.size(),
            without_bad.functions[0].body->stmts.size());
  ASSERT_EQ(with_bad.degraded.size(), 1u);
  EXPECT_EQ(with_bad.degraded[0].name, "mangled");
  EXPECT_TRUE(without_bad.degraded.empty());
}

TEST(ParserTest, RecoveryBudgetToleratesAFewBadStatements) {
  // A couple of recovery events is routine tolerant parsing, not grounds
  // for quarantine — the budget only trips on genuinely unparseable soup.
  const auto unit = Parse(
      "int mostly_fine(void) {\n"
      "  int a = 1;\n"
      "  @@ one bad statement $$;\n"
      "  int b = 2;\n"
      "  return a + b;\n"
      "}\n");
  ASSERT_EQ(unit.functions.size(), 1u);
  EXPECT_EQ(unit.functions[0].name, "mostly_fine");
  EXPECT_TRUE(unit.degraded.empty());
}

TEST(ParserTest, ForwardDeclarationIgnored) {
  const auto unit = Parse("int foo(int a);\nint bar(void) { return 1; }");
  ASSERT_EQ(unit.functions.size(), 1u);
  EXPECT_EQ(unit.functions[0].name, "bar");
}

TEST(ParserTest, TypedefSkipped) {
  const auto unit = Parse("typedef struct { int x; } pair_t;\nint f(void) { return 0; }");
  EXPECT_EQ(unit.functions.size(), 1u);
}

TEST(ParserTest, FindFunction) {
  const auto unit = Parse("void a(void) {}\nvoid b(void) {}");
  EXPECT_NE(unit.FindFunction("a"), nullptr);
  EXPECT_NE(unit.FindFunction("b"), nullptr);
  EXPECT_EQ(unit.FindFunction("c"), nullptr);
}

TEST(ParserTest, ParseSnippetWrapsBody) {
  const auto unit = ParseSnippet("int x = 1;\nuse(x);");
  ASSERT_EQ(unit.functions.size(), 1u);
  EXPECT_EQ(unit.functions[0].name, "snippet");
  EXPECT_EQ(unit.functions[0].body->stmts.size(), 2u);
}

TEST(ParserTest, LinesRecordedOnStatements) {
  const auto unit = Parse(
      "void f(void)\n"   // 1
      "{\n"              // 2
      "  a();\n"         // 3
      "  b();\n"         // 4
      "}\n");
  const auto& stmts = unit.functions[0].body->stmts;
  ASSERT_EQ(stmts.size(), 2u);
  EXPECT_EQ(stmts[0]->line, 3u);
  EXPECT_EQ(stmts[1]->line, 4u);
}

// Property sweep: the parser terminates and never crashes on mutated inputs.
class ParserRobustnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserRobustnessTest, NeverCrashesOnMutatedSource) {
  const std::string base =
      "static int stm32_crc_remove(struct platform_device *pdev)\n"
      "{\n"
      "  struct stm32_crc *crc = platform_get_drvdata(pdev);\n"
      "  int ret = pm_runtime_get_sync(crc->dev);\n"
      "  if (ret < 0)\n"
      "    return ret;\n"
      "  for_each_child_of_node(np, child) {\n"
      "    if (of_device_is_compatible(child, \"x\"))\n"
      "      break;\n"
      "  }\n"
      "  return 0;\n"
      "}\n";
  // Deterministic mutation: delete, duplicate or replace bytes.
  std::string text = base;
  uint64_t seed = GetParam();
  auto next = [&seed]() {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return seed >> 33;
  };
  for (int i = 0; i < 20 && !text.empty(); ++i) {
    const size_t pos = next() % text.size();
    switch (next() % 3) {
      case 0:
        text.erase(pos, 1);
        break;
      case 1:
        text.insert(pos, 1, static_cast<char>("{}();*&"[next() % 7]));
        break;
      default:
        text[pos] = static_cast<char>(32 + next() % 90);
        break;
    }
  }
  SourceFile file("m.c", text);
  const TranslationUnit unit = ParseFile(file);
  (void)unit;  // reaching here without crash/hang is the property
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustnessTest,
                         ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace refscan
