// Tests for the nine anti-pattern checkers (P1..P9), built around the
// paper's own listings:
//   Listing 1 — __nvmem_device_get missing put on the error path
//   Listing 2 — usb_console_setup UAD through mutex_unlock
//   Listing 3 — stm32_crc_remove pm_runtime_get_sync return-error leak
//   Listing 4 — brcmstb_pm_probe smartloop break leak
//   Listing 5 — lpfc conditional-ref false positive
//   Listing 6 — ping_unhash UAD patch-reject

#include <gtest/gtest.h>

#include <deque>
#include <string>

#include "src/ast/parser.h"
#include "src/checkers/engine.h"
#include "src/checkers/templates.h"
#include "src/support/source.h"

namespace refscan {
namespace {

struct Scanned {
  const UnitContext* uc;
  std::vector<BugReport> reports;
};

// Runs the full engine over one file.
std::vector<BugReport> ScanText(std::string text) {
  CheckerEngine engine;
  return engine.ScanFileText("drivers/test/t.c", std::move(text)).reports;
}

int CountPattern(const std::vector<BugReport>& reports, int pattern) {
  int n = 0;
  for (const BugReport& r : reports) {
    n += r.anti_pattern == pattern ? 1 : 0;
  }
  return n;
}

const BugReport* FindPattern(const std::vector<BugReport>& reports, int pattern) {
  for (const BugReport& r : reports) {
    if (r.anti_pattern == pattern) {
      return &r;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------- P1

TEST(CheckerP1Test, Listing3ReturnErrorLeak) {
  const auto reports = ScanText(
      "static int stm32_crc_remove(struct platform_device *pdev)\n"
      "{\n"
      "  struct stm32_crc *crc = platform_get_drvdata(pdev);\n"
      "  int ret = pm_runtime_get_sync(crc->dev);\n"
      "  if (ret < 0)\n"
      "    return ret;\n"  // *BUG*: decrement missed
      "  crc_shutdown(crc);\n"
      "  pm_runtime_put_noidle(crc->dev);\n"
      "  return 0;\n"
      "}\n");
  const BugReport* r = FindPattern(reports, 1);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->impact, Impact::kLeak);
  EXPECT_EQ(r->api, "pm_runtime_get_sync");
  EXPECT_EQ(r->function, "stm32_crc_remove");
}

TEST(CheckerP1Test, PairedOnAllPathsIsClean) {
  const auto reports = ScanText(
      "static int good_remove(struct platform_device *pdev)\n"
      "{\n"
      "  struct stm32_crc *crc = platform_get_drvdata(pdev);\n"
      "  int ret = pm_runtime_get_sync(crc->dev);\n"
      "  if (ret < 0) {\n"
      "    pm_runtime_put_noidle(crc->dev);\n"
      "    return ret;\n"
      "  }\n"
      "  crc_shutdown(crc);\n"
      "  pm_runtime_put(crc->dev);\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(CountPattern(reports, 1), 0);
  EXPECT_EQ(CountPattern(reports, 5), 0);
}

// ---------------------------------------------------------------- P2

TEST(CheckerP2Test, ReturnNullDerefWithoutCheck) {
  const auto reports = ScanText(
      "static int vio_init(void)\n"
      "{\n"
      "  struct mdesc_handle *hp = mdesc_grab();\n"
      "  parse_node(hp->root);\n"  // *BUG*: hp may be NULL
      "  mdesc_release(hp);\n"
      "  return 0;\n"
      "}\n");
  const BugReport* r = FindPattern(reports, 2);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->impact, Impact::kNpd);
  EXPECT_EQ(r->api, "mdesc_grab");
}

TEST(CheckerP2Test, NullCheckedIsClean) {
  const auto reports = ScanText(
      "static int vio_init(void)\n"
      "{\n"
      "  struct mdesc_handle *hp = mdesc_grab();\n"
      "  if (!hp)\n"
      "    return -ENODEV;\n"
      "  parse_node(hp->root);\n"
      "  mdesc_release(hp);\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(CountPattern(reports, 2), 0);
}

// ---------------------------------------------------------------- P3

TEST(CheckerP3Test, Listing4SmartLoopBreakLeak) {
  const auto reports = ScanText(
      "static int brcmstb_pm_probe(struct platform_device *pdev)\n"
      "{\n"
      "  struct device_node *dn;\n"
      "  for_each_matching_node(dn, aon_ctrl_dt_ids) {\n"
      "    if (of_device_is_compatible(dn, \"brcm\"))\n"
      "      break;\n"  // *BUG*: dn's reference leaks
      "  }\n"
      "  return 0;\n"
      "}\n");
  const BugReport* r = FindPattern(reports, 3);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->impact, Impact::kLeak);
  EXPECT_EQ(r->api, "for_each_matching_node");
  EXPECT_EQ(r->object, "dn");
}

TEST(CheckerP3Test, PutBeforeBreakIsClean) {
  const auto reports = ScanText(
      "static int good_probe(struct platform_device *pdev)\n"
      "{\n"
      "  struct device_node *dn;\n"
      "  for_each_matching_node(dn, ids) {\n"
      "    if (of_device_is_compatible(dn, \"brcm\")) {\n"
      "      of_node_put(dn);\n"
      "      break;\n"
      "    }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(CountPattern(reports, 3), 0);
}

TEST(CheckerP3Test, ReturnInsideSmartLoopAlsoLeaks) {
  const auto reports = ScanText(
      "static int probe_ret(struct platform_device *pdev)\n"
      "{\n"
      "  struct device_node *child;\n"
      "  for_each_child_of_node(parent_node(pdev), child) {\n"
      "    if (bad(child))\n"
      "      return -EINVAL;\n"  // *BUG*: child leaks
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_GE(CountPattern(reports, 3), 1);
}

TEST(CheckerP3Test, NonRefcountingLoopIsIgnored) {
  const auto reports = ScanText(
      "static void walk(struct list_head *head)\n"
      "{\n"
      "  list_for_each_entry(evt, head, node) {\n"
      "    if (match(evt))\n"
      "      break;\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(CountPattern(reports, 3), 0);
}

// ---------------------------------------------------------------- P4

TEST(CheckerP4Test, HiddenFindNeverReleased) {
  const auto reports = ScanText(
      "static int setup_clock(void)\n"
      "{\n"
      "  struct device_node *np = of_find_compatible_node(NULL, NULL, \"fixed-clock\");\n"
      "  if (!np)\n"
      "    return -ENODEV;\n"
      "  read_rate(np);\n"
      "  return 0;\n"  // *BUG*: np never put on any path
      "}\n");
  const BugReport* r = FindPattern(reports, 4);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->impact, Impact::kLeak);
  EXPECT_EQ(r->api, "of_find_compatible_node");
}

TEST(CheckerP4Test, ReleasedOnAllPathsIsClean) {
  const auto reports = ScanText(
      "static int setup_clock(void)\n"
      "{\n"
      "  struct device_node *np = of_find_compatible_node(NULL, NULL, \"fixed-clock\");\n"
      "  if (!np)\n"
      "    return -ENODEV;\n"
      "  read_rate(np);\n"
      "  of_node_put(np);\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(CountPattern(reports, 4), 0);
}

TEST(CheckerP4Test, ReturnedObjectIsOwnershipTransfer) {
  const auto reports = ScanText(
      "static struct device_node *lookup(void)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/soc\");\n"
      "  return np;\n"  // caller owns the reference: not a bug
      "}\n");
  EXPECT_EQ(CountPattern(reports, 4), 0);
}

TEST(CheckerP4Test, MissingIncreaseOnConsumedParameter) {
  const auto reports = ScanText(
      "static struct device_node *next_for(struct device_node *from)\n"
      "{\n"
      "  struct device_node *np = of_find_matching_node(from, ids);\n"  // consumes `from`
      "  return np;\n"
      "}\n");
  const BugReport* r = FindPattern(reports, 4);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->impact, Impact::kUaf);
  EXPECT_EQ(r->object, "from");
}

TEST(CheckerP4Test, IncreaseBeforeConsumptionIsClean) {
  const auto reports = ScanText(
      "static struct device_node *next_for(struct device_node *from)\n"
      "{\n"
      "  of_node_get(from);\n"
      "  struct device_node *np = of_find_matching_node(from, ids);\n"
      "  return np;\n"
      "}\n");
  EXPECT_EQ(CountPattern(reports, 4), 0);
}

// ---------------------------------------------------------------- P5

TEST(CheckerP5Test, Listing1ErrorPathMissesRelease) {
  const auto reports = ScanText(
      "struct nvmem_device *__nvmem_device_get(void *data)\n"
      "{\n"
      "  struct device *dev = bus_find_device(nvmem_bus_type, NULL, data, match);\n"
      "  if (!dev)\n"
      "    return ERR_PTR(-ENOENT);\n"
      "  if (probe_lock(dev) < 0)\n"
      "    return ERR_PTR(-EBUSY);\n"  // *BUG*: dev's reference leaks
      "  return to_nvmem(dev);\n"
      "}\n");
  // The !dev early-return is fine (nothing acquired); the -EBUSY path leaks.
  const BugReport* r = FindPattern(reports, 5);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->impact, Impact::kLeak);
  EXPECT_EQ(r->api, "bus_find_device");
}

TEST(CheckerP5Test, ErrorPathWithReleaseIsClean) {
  const auto reports = ScanText(
      "struct nvmem_device *__nvmem_device_get(void *data)\n"
      "{\n"
      "  struct device *dev = bus_find_device(nvmem_bus_type, NULL, data, match);\n"
      "  if (!dev)\n"
      "    return ERR_PTR(-ENOENT);\n"
      "  if (probe_lock(dev) < 0) {\n"
      "    put_device(dev);\n"
      "    return ERR_PTR(-EBUSY);\n"
      "  }\n"
      "  return to_nvmem(dev);\n"
      "}\n");
  EXPECT_EQ(CountPattern(reports, 5), 0);
}

TEST(CheckerP5Test, Listing5ConditionalRefReassignIsReported) {
  // The lpfc false-positive shape from §6.4: the checkers *do* report it —
  // exactly as the paper's did (it was later proved safe by the developers).
  const auto reports = ScanText(
      "static int lpfc_bsg_get_event(struct bsg_job *job)\n"
      "{\n"
      "  struct lpfc_bsg_event *evt;\n"
      "  list_for_each_entry(evt, waiters, node) {\n"
      "    if (evt->reg_id == req_id)\n"
      "      lpfc_bsg_event_ref(evt);\n"
      "  }\n"
      "  if (list_end(evt)) {\n"
      "    evt = lpfc_bsg_event_new(req_id);\n"
      "  }\n"
      "  return use(evt);\n"
      "}\n");
  EXPECT_GE(CountPattern(reports, 5), 1);
}

// ---------------------------------------------------------------- P6

TEST(CheckerP6Test, ProbeAcquiresRemoveNeverReleases) {
  const auto reports = ScanText(
      "static int foo_probe(struct platform_device *pdev)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/soc/foo\");\n"
      "  if (!np)\n"
      "    return -ENODEV;\n"
      "  pdev->priv = np;\n"  // stored for later: ownership moves to the device
      "  return 0;\n"
      "}\n"
      "static int foo_remove(struct platform_device *pdev)\n"
      "{\n"
      "  stop_hw(pdev);\n"
      "  return 0;\n"  // *BUG*: never puts the node acquired in probe
      "}\n"
      "static struct platform_driver foo_driver = {\n"
      "  .probe = foo_probe,\n"
      "  .remove = foo_remove,\n"
      "};\n");
  const BugReport* r = FindPattern(reports, 6);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->function, "foo_probe");
  EXPECT_EQ(r->impact, Impact::kLeak);
}

TEST(CheckerP6Test, RemoveWithReleaseIsClean) {
  const auto reports = ScanText(
      "static int foo_probe(struct platform_device *pdev)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/soc/foo\");\n"
      "  if (!np)\n"
      "    return -ENODEV;\n"
      "  pdev->priv = np;\n"
      "  return 0;\n"
      "}\n"
      "static int foo_remove(struct platform_device *pdev)\n"
      "{\n"
      "  of_node_put(pdev->priv);\n"
      "  return 0;\n"
      "}\n"
      "static struct platform_driver foo_driver = {\n"
      "  .probe = foo_probe,\n"
      "  .remove = foo_remove,\n"
      "};\n");
  EXPECT_EQ(CountPattern(reports, 6), 0);
}

TEST(CheckerP6Test, NamePairedRegisterUnregister) {
  const auto reports = ScanText(
      "int foo_register(struct foo *f)\n"
      "{\n"
      "  f->np = of_get_parent(f->base);\n"
      "  return 0;\n"
      "}\n"
      "void foo_unregister(struct foo *f)\n"
      "{\n"
      "  detach(f);\n"  // *BUG*: missing of_node_put(f->np)
      "}\n");
  EXPECT_GE(CountPattern(reports, 6), 1);
}

// ---------------------------------------------------------------- P7

TEST(CheckerP7Test, DirectFreeOfRefcountedObject) {
  const auto reports = ScanText(
      "static void teardown(void)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/soc\");\n"
      "  if (!np)\n"
      "    return;\n"
      "  kfree(np);\n"  // *BUG*: bypasses the release callback
      "}\n");
  const BugReport* r = FindPattern(reports, 7);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->impact, Impact::kLeak);
}

TEST(CheckerP7Test, ReleaseInsteadOfFreeIsClean) {
  const auto reports = ScanText(
      "static void teardown(void)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/soc\");\n"
      "  if (!np)\n"
      "    return;\n"
      "  of_node_put(np);\n"
      "}\n");
  EXPECT_EQ(CountPattern(reports, 7), 0);
}

// ---------------------------------------------------------------- P8

TEST(CheckerP8Test, Listing2UnlockAfterPut) {
  const auto reports = ScanText(
      "static int usb_console_setup(struct console *co)\n"
      "{\n"
      "  struct usb_serial *serial = usb_serial_get_by_index(co->index);\n"
      "  configure(serial);\n"
      "  usb_serial_put(serial);\n"
      "  mutex_unlock(&serial->disc_mutex);\n"  // *BUG*: UAD through unlock
      "  return 0;\n"
      "}\n");
  const BugReport* r = FindPattern(reports, 8);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->impact, Impact::kUaf);
  EXPECT_EQ(r->api, "usb_serial_put");
}

TEST(CheckerP8Test, Listing6MemberUseAfterSockPut) {
  const auto reports = ScanText(
      "void ping_unhash(struct sock *sk)\n"
      "{\n"
      "  sock_put(sk);\n"
      "  isk->inet_num = 0;\n"
      "  sock_prot_inuse_add(sock_net(sk), sk->sk_prot, -1);\n"  // *BUG*: UAD
      "}\n");
  const BugReport* r = FindPattern(reports, 8);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->api, "sock_put");
  EXPECT_EQ(r->object, "sk");
}

TEST(CheckerP8Test, UnlockBeforePutIsClean) {
  const auto reports = ScanText(
      "static int usb_console_setup(struct console *co)\n"
      "{\n"
      "  struct usb_serial *serial = usb_serial_get_by_index(co->index);\n"
      "  configure(serial);\n"
      "  mutex_unlock(&serial->disc_mutex);\n"
      "  usb_serial_put(serial);\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(CountPattern(reports, 8), 0);
}

TEST(CheckerP8Test, ReacquiredBetweenIsClean) {
  const auto reports = ScanText(
      "void shuffle(struct sock *sk)\n"
      "{\n"
      "  sock_put(sk);\n"
      "  sock_hold(sk);\n"
      "  touch(sk->sk_prot);\n"
      "}\n");
  EXPECT_EQ(CountPattern(reports, 8), 0);
}

// ---------------------------------------------------------------- P9

TEST(CheckerP9Test, EscapeWithoutIncreaseThenDrop) {
  const auto reports = ScanText(
      "static int cache_node(struct ctx *ctx)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/soc\");\n"
      "  if (!np)\n"
      "    return -ENODEV;\n"
      "  ctx->cached = np;\n"  // *BUG*: escapes without an increase...
      "  init_from(np);\n"
      "  of_node_put(np);\n"   // ...then the only reference is dropped
      "  return 0;\n"
      "}\n");
  const BugReport* r = FindPattern(reports, 9);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->impact, Impact::kUaf);
  EXPECT_EQ(r->object, "ctx->cached");
}

TEST(CheckerP9Test, IncreaseAroundEscapeIsClean) {
  const auto reports = ScanText(
      "static int cache_node(struct ctx *ctx)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/soc\");\n"
      "  if (!np)\n"
      "    return -ENODEV;\n"
      "  ctx->cached = np;\n"
      "  of_node_get(np);\n"  // correct idiom: increase around the escape
      "  init_from(np);\n"
      "  of_node_put(np);\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(CountPattern(reports, 9), 0);
}

TEST(CheckerP9Test, EscapeWithoutLaterDropIsOwnershipMove) {
  const auto reports = ScanText(
      "static int cache_node(struct ctx *ctx)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/soc\");\n"
      "  if (!np)\n"
      "    return -ENODEV;\n"
      "  ctx->cached = np;\n"  // reference moves into ctx: fine
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(CountPattern(reports, 9), 0);
}

// ------------------------------------------------------------ engine

TEST(EngineTest, CleanDriverProducesNoReports) {
  const auto reports = ScanText(
      "static int tidy_probe(struct platform_device *pdev)\n"
      "{\n"
      "  struct device_node *np = of_find_compatible_node(NULL, NULL, \"acme,tidy\");\n"
      "  int ret;\n"
      "  if (!np)\n"
      "    return -ENODEV;\n"
      "  ret = enable_clocks(np);\n"
      "  if (ret < 0)\n"
      "    goto out_put;\n"
      "  configure(np);\n"
      "out_put:\n"
      "  of_node_put(np);\n"
      "  return ret;\n"
      "}\n");
  EXPECT_TRUE(reports.empty()) << reports.size() << " unexpected reports, first: "
                               << (reports.empty() ? "" : reports[0].message);
}

TEST(EngineTest, DeduplicationKeepsMostSpecificPattern) {
  // pm_runtime_get_sync unpaired error path could match P1; it must not
  // *also* surface as P5 for the same site.
  const auto reports = ScanText(
      "static int dup_remove(struct platform_device *pdev)\n"
      "{\n"
      "  int ret = pm_runtime_get_sync(pdev->dev);\n"
      "  if (ret < 0)\n"
      "    return ret;\n"
      "  pm_runtime_put(pdev->dev);\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(CountPattern(reports, 1), 1);
  EXPECT_EQ(CountPattern(reports, 5), 0);
}

TEST(EngineTest, StatsPopulated) {
  CheckerEngine engine;
  const ScanResult result = engine.ScanFileText(
      "drivers/x/y.c", "void f(void) { }\nvoid g(void) { }\n");
  EXPECT_EQ(result.stats.files, 1u);
  EXPECT_EQ(result.stats.functions, 2u);
  EXPECT_GT(result.stats.discovered_apis, 0u);
}

TEST(EngineTest, DisabledPatternDoesNotFire) {
  ScanOptions options;
  options.enabled_patterns = {1, 2, 4, 5, 6, 7, 8, 9};  // P3 off
  CheckerEngine engine(KnowledgeBase::BuiltIn(), options);
  const auto result = engine.ScanFileText(
      "drivers/t/t.c",
      "static int p(struct platform_device *pdev)\n"
      "{\n"
      "  struct device_node *dn;\n"
      "  for_each_matching_node(dn, ids) {\n"
      "    if (match(dn))\n"
      "      break;\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(CountPattern(result.reports, 3), 0);
}

TEST(TemplatesTest, AntiPatternTemplatesRender) {
  for (int p = 1; p <= 9; ++p) {
    EXPECT_NE(AntiPatternTemplate(p), "?");
    EXPECT_NE(AntiPatternName(p), "Unknown");
  }
  EXPECT_EQ(AntiPatternTemplate(1), "F_start -> S_G_E -> B_error -> F_end");
  EXPECT_EQ(AntiPatternTemplate(8), "F_start -> S_P(p0) -> S_D(p0) -> F_end");
}

TEST(TemplatesTest, RenderTemplateSteps) {
  const std::string out = RenderTemplate({
      {"F_start", "", ""},
      {"S", "G", "bus_find_device"},
      {"B_error", "", ""},
      {"F_end", "", ""},
  });
  EXPECT_EQ(out, "F_start -> S_G(bus_find_device) -> B_error -> F_end");
}

TEST(ReportTest, DeduplicateKeepsLowestPattern) {
  BugReport a;
  a.anti_pattern = 5;
  a.file = "f.c";
  a.function = "fn";
  a.line = 10;
  a.object = "np";
  BugReport b = a;
  b.anti_pattern = 1;
  auto out = DeduplicateReports({a, b});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].anti_pattern, 1);
}

TEST(ReportTest, ImpactNames) {
  EXPECT_EQ(ImpactName(Impact::kLeak), "Leak");
  EXPECT_EQ(ImpactName(Impact::kUaf), "UAF");
  EXPECT_EQ(ImpactName(Impact::kNpd), "NPD");
}

// ------------------------------------------------------- P10-P12 extensions

// The new families are opt-in: the default pattern set stays 1..9, so these
// tests build an engine with all twelve enabled (plus any dialects).
std::vector<BugReport> ScanAllFamilies(std::string text,
                                       std::vector<std::string> dialects = {}) {
  ScanOptions options;
  options.enabled_patterns = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  options.dialects = std::move(dialects);
  CheckerEngine engine(KnowledgeBase::BuiltIn(), options);
  return engine.ScanFileText("drivers/test/t.c", std::move(text)).reports;
}

TEST(CheckerP10Test, RawIncrementOnRefcountFieldIsFlagged) {
  const auto reports = ScanAllFamilies(
      "struct conn { refcount_t usage; int id; };\n"
      "static void conn_hold(struct conn *ct)\n"
      "{\n"
      "  ct->usage++;\n"  // *BUG*: bypasses refcount_inc saturation
      "}\n");
  ASSERT_EQ(CountPattern(reports, 10), 1);
  const BugReport* r = FindPattern(reports, 10);
  EXPECT_EQ(r->impact, Impact::kUaf);
  EXPECT_EQ(r->line, 4u);
}

TEST(CheckerP10Test, RawDecrementAndCompoundOpsAreFlagged) {
  const auto reports = ScanAllFamilies(
      "struct conn { refcount_t usage; };\n"
      "static void conn_drop(struct conn *ct)\n"
      "{\n"
      "  ct->usage--;\n"       // *BUG*
      "}\n"
      "static void conn_absorb(struct conn *ct, int extra)\n"
      "{\n"
      "  ct->usage += extra;\n"  // *BUG*
      "}\n");
  EXPECT_EQ(CountPattern(reports, 10), 2);
}

TEST(CheckerP10Test, PlainIntegerCounterFieldIsClean) {
  // The ISSUE's false-positive pin: raw ++ on an ordinary counter field
  // whose type is not a refcount type must never fire.
  const auto reports = ScanAllFamilies(
      "struct stats { unsigned long hits; unsigned long misses; int depth; };\n"
      "static void stats_bump(struct stats *st)\n"
      "{\n"
      "  st->hits++;\n"
      "  st->misses += 2;\n"
      "  st->depth--;\n"
      "}\n");
  EXPECT_EQ(CountPattern(reports, 10), 0);
  EXPECT_EQ(CountPattern(reports, 12), 0);
}

TEST(CheckerP10Test, CheckedApiOnRefcountFieldIsClean) {
  const auto reports = ScanAllFamilies(
      "struct conn { refcount_t usage; };\n"
      "static void conn_get(struct conn *ct)\n"
      "{\n"
      "  refcount_inc(&ct->usage);\n"
      "}\n");
  EXPECT_EQ(CountPattern(reports, 10), 0);
}

TEST(CheckerP10Test, DisabledByDefaultPatternSet) {
  const auto reports = ScanText(
      "struct conn { refcount_t usage; };\n"
      "static void conn_hold(struct conn *ct)\n"
      "{\n"
      "  ct->usage++;\n"
      "}\n");
  EXPECT_EQ(CountPattern(reports, 10), 0);
}

TEST(CheckerP11Test, IgnoredDecAndTestResultIsFlagged) {
  const auto reports = ScanAllFamilies(
      "struct obj { refcount_t usage; char *name; };\n"
      "static void obj_put(struct obj *obj)\n"
      "{\n"
      "  refcount_dec_and_test(&obj->usage);\n"  // *BUG*: result ignored
      "}\n");
  ASSERT_EQ(CountPattern(reports, 11), 1);
  EXPECT_EQ(FindPattern(reports, 11)->impact, Impact::kLeak);
}

TEST(CheckerP11Test, UseAfterTrueBranchFreeIsFlagged) {
  const auto reports = ScanAllFamilies(
      "struct obj { refcount_t usage; int flags; };\n"
      "static void obj_release(struct obj *obj)\n"
      "{\n"
      "  if (refcount_dec_and_test(&obj->usage))\n"
      "    kfree(obj);\n"
      "  obj->flags = 0;\n"  // *BUG*: UAF when the free branch was taken
      "}\n");
  ASSERT_EQ(CountPattern(reports, 11), 1);
  EXPECT_EQ(FindPattern(reports, 11)->impact, Impact::kUaf);
}

TEST(CheckerP11Test, DoubleFreeAfterTrueBranchIsFlagged) {
  const auto reports = ScanAllFamilies(
      "struct obj { refcount_t usage; };\n"
      "static void obj_destroy(struct obj *obj)\n"
      "{\n"
      "  if (refcount_dec_and_test(&obj->usage))\n"
      "    kfree(obj);\n"
      "  kfree(obj);\n"  // *BUG*: double free when the branch was taken
      "}\n");
  ASSERT_EQ(CountPattern(reports, 11), 1);
  EXPECT_EQ(FindPattern(reports, 11)->impact, Impact::kUaf);
}

TEST(CheckerP11Test, CorrectDecAndTestSingleFreeIsClean) {
  // The ISSUE's second false-positive pin: the canonical correct shape —
  // test the result, free exactly once (including member frees inside the
  // destructor branch), touch nothing afterwards.
  const auto reports = ScanAllFamilies(
      "struct obj { refcount_t usage; char *name; };\n"
      "static void obj_put_ok(struct obj *obj)\n"
      "{\n"
      "  if (refcount_dec_and_test(&obj->usage)) {\n"
      "    kfree(obj->name);\n"
      "    kfree(obj);\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(CountPattern(reports, 11), 0);
}

TEST(CheckerP11Test, ResultAssignedToVariableCountsAsTested) {
  const auto reports = ScanAllFamilies(
      "struct obj { refcount_t usage; };\n"
      "static void obj_put_ok(struct obj *obj)\n"
      "{\n"
      "  int last = refcount_dec_and_test(&obj->usage);\n"
      "  if (last)\n"
      "    kfree(obj);\n"
      "}\n");
  EXPECT_EQ(CountPattern(reports, 11), 0);
}

TEST(CheckerP12Test, ResetToZeroIsFlagged) {
  const auto reports = ScanAllFamilies(
      "struct conn { refcount_t usage; };\n"
      "static void conn_recycle(struct conn *ct)\n"
      "{\n"
      "  ct->usage = 0;\n"  // *BUG*: orphans outstanding references
      "}\n");
  ASSERT_EQ(CountPattern(reports, 12), 1);
  EXPECT_EQ(FindPattern(reports, 12)->impact, Impact::kUaf);
}

TEST(CheckerP12Test, NonZeroInitIsClean) {
  // `obj->refs = 1` in a constructor is the accepted init idiom.
  const auto reports = ScanAllFamilies(
      "struct conn { refcount_t usage; };\n"
      "static void conn_init(struct conn *ct)\n"
      "{\n"
      "  ct->usage = 1;\n"
      "}\n");
  EXPECT_EQ(CountPattern(reports, 12), 0);
}

TEST(DialectTest, UacpiBugsOnlySurfaceUnderTheDialect) {
  const char* text =
      "struct uacpi_namespace_node { struct uacpi_shareable shareable; int depth; };\n"
      "static void uacpi_node_bump(struct uacpi_namespace_node *node)\n"
      "{\n"
      "  node->shareable.reference_count++;\n"  // P10 under --dialect uacpi
      "}\n";
  EXPECT_TRUE(ScanAllFamilies(text).empty());
  const auto reports = ScanAllFamilies(text, {"uacpi"});
  EXPECT_EQ(CountPattern(reports, 10), 1);
}

TEST(DialectTest, GlibDecAndTestMisuseSurfacesUnderTheDialect) {
  const char* text =
      "struct Viewer { int ref_count; char *title; };\n"
      "static void viewer_unref(struct Viewer *self)\n"
      "{\n"
      "  g_atomic_int_dec_and_test(&self->ref_count);\n"  // P11: result ignored
      "}\n";
  EXPECT_TRUE(ScanAllFamilies(text).empty());
  const auto reports = ScanAllFamilies(text, {"glib"});
  EXPECT_EQ(CountPattern(reports, 11), 1);
}

}  // namespace
}  // namespace refscan
