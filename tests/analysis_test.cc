// Tests for the public acquisition-analysis API and its option-keyed cache.

#include <gtest/gtest.h>

#include "src/ast/parser.h"
#include "src/checkers/analysis.h"
#include "src/checkers/engine.h"

namespace refscan {
namespace {

// Builds a UnitContext for one file (kept alive by the caller).
struct Built {
  SourceFile file;
  UnitContext uc;
};

std::unique_ptr<Built> BuildOne(std::string text, const KnowledgeBase& kb) {
  auto built = std::make_unique<Built>(Built{SourceFile("t.c", std::move(text)), {}});
  built->uc = BuildUnitContext(built->file, ParseFile(built->file), kb);
  return built;
}

constexpr const char* kCode =
    "static int f(struct platform_device *pdev)\n"
    "{\n"
    "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
    "  if (!np)\n"
    "    return -ENODEV;\n"
    "  if (prepare(np) < 0)\n"
    "    return -EIO;\n"
    "  of_node_put(np);\n"
    "  return 0;\n"
    "}\n";

TEST(AnalysisTest, SummarisesAcquisitionSites) {
  static const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const auto built = BuildOne(kCode, kb);
  ASSERT_EQ(built->uc.functions.size(), 1u);
  const FunctionContext& fc = built->uc.functions.front();

  const auto& analysis = AnalyzeAcquisitions(fc, ScanOptions{});
  ASSERT_EQ(analysis.size(), 1u);
  const AcqSite& site = analysis.begin()->second;
  EXPECT_EQ(site.object, "np");
  EXPECT_EQ(site.api->name, "of_find_node_by_path");
  EXPECT_EQ(site.line, 3u);
  EXPECT_TRUE(site.paired_somewhere);       // the good path puts
  EXPECT_TRUE(site.unpaired_error_path);    // the -EIO path leaks
  EXPECT_EQ(site.error_exit_line, 7u);
  EXPECT_FALSE(site.freed_direct);
}

TEST(AnalysisTest, CacheReusedForSameOptions) {
  static const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const auto built = BuildOne(kCode, kb);
  const FunctionContext& fc = built->uc.functions.front();
  const ScanOptions options;
  const auto& first = AnalyzeAcquisitions(fc, options);
  const auto& second = AnalyzeAcquisitions(fc, options);
  EXPECT_EQ(&first, &second);  // same shared cache generation
}

TEST(AnalysisTest, CacheInvalidatedWhenOptionsChange) {
  static const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const auto built = BuildOne(
      "static struct device_node *g(void)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
      "  return np;\n"  // a transfer — only modelled when the option is on
      "}\n",
      kb);
  const FunctionContext& fc = built->uc.functions.front();

  ScanOptions with_transfer;
  const auto& first = AnalyzeAcquisitions(fc, with_transfer);
  const AcqSite& modelled = first.begin()->second;
  EXPECT_TRUE(modelled.transferred);
  EXPECT_FALSE(modelled.unpaired_path);

  ScanOptions without_transfer;
  without_transfer.model_ownership_transfer = false;
  const auto& second = AnalyzeAcquisitions(fc, without_transfer);
  const AcqSite& naive = second.begin()->second;
  EXPECT_FALSE(naive.transferred);
  EXPECT_TRUE(naive.unpaired_path);

  // The first generation stays valid after the swap: superseded
  // generations are chained on the context, not freed.
  EXPECT_TRUE(modelled.transferred);
  EXPECT_NE(&first, &second);
}

}  // namespace
}  // namespace refscan
