// Cross-module integration tests: the full suggest→apply→re-scan loop, the
// corpus↔engine↔table aggregation consistency used by the Table 4/5
// benches, and a history↔stats↔report pipeline smoke test.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/checkers/engine.h"
#include "src/checkers/fixes.h"
#include "src/corpus/generator.h"
#include "src/histmine/gitlog.h"
#include "src/histmine/miner.h"
#include "src/report/table.h"
#include "src/stats/stats.h"

namespace refscan {
namespace {

// ------------------------------------------------ suggest → apply → rescan

// For every fixable pattern, the suggested patch must eliminate the report
// without introducing a new one.
class FixLoopTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FixLoopTest, AppliedFixSilencesTheChecker) {
  const std::string code = GetParam();
  SourceTree tree;
  tree.Add("drivers/t/t.c", code);
  CheckerEngine engine;
  const ScanResult before = engine.Scan(tree);
  ASSERT_EQ(before.reports.size(), 1u) << "test input must contain exactly one bug";

  const BugReport& report = before.reports[0];
  const SourceFile* file = tree.Find(report.file);
  ASSERT_NE(file, nullptr);
  const FixSuggestion fix = SuggestFix(report, *file);
  ASSERT_TRUE(fix.available) << "P" << report.anti_pattern;

  const std::string patched = ApplyUnifiedDiff(*file, fix.diff);
  ASSERT_NE(patched, file->text()) << "diff did not apply:\n" << fix.diff;

  CheckerEngine engine2;
  const ScanResult after = engine2.ScanFileText("drivers/t/t.c", patched);
  EXPECT_TRUE(after.reports.empty())
      << "fix for P" << report.anti_pattern << " left a report: "
      << (after.reports.empty() ? "" : after.reports[0].message) << "\npatched code:\n"
      << patched;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, FixLoopTest,
    ::testing::Values(
        // P1: return-error
        "static int p1(struct platform_device *pdev)\n"
        "{\n"
        "  int ret = pm_runtime_get_sync(pdev->dev);\n"
        "  if (ret < 0)\n"
        "    return ret;\n"
        "  pm_runtime_put(pdev->dev);\n"
        "  return 0;\n"
        "}\n",
        // P2: return-NULL
        "static int p2(void)\n"
        "{\n"
        "  struct mdesc_handle *hp = mdesc_grab();\n"
        "  use(hp->root);\n"
        "  mdesc_release(hp);\n"
        "  return 0;\n"
        "}\n",
        // P3: smartloop break
        "static int p3(struct platform_device *pdev)\n"
        "{\n"
        "  struct device_node *dn;\n"
        "  for_each_matching_node(dn, ids) {\n"
        "    if (match(dn))\n"
        "      break;\n"
        "  }\n"
        "  return 0;\n"
        "}\n",
        // P4: hidden find, never released
        "static int p4(void)\n"
        "{\n"
        "  struct device_node *np = of_find_compatible_node(NULL, NULL, \"x\");\n"
        "  if (!np)\n"
        "    return -ENODEV;\n"
        "  use(np);\n"
        "  return 0;\n"
        "}\n",
        // P5: error path misses the put
        "static int p5(struct platform_device *pdev)\n"
        "{\n"
        "  struct device_node *np = of_parse_phandle(pdev->dev.of_node, \"x\", 0);\n"
        "  int ret;\n"
        "  if (!np)\n"
        "    return -ENODEV;\n"
        "  ret = prepare(np);\n"
        "  if (ret < 0)\n"
        "    return ret;\n"
        "  commit(np);\n"
        "  of_node_put(np);\n"
        "  return 0;\n"
        "}\n",
        // P7: direct free
        "static void p7(void)\n"
        "{\n"
        "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
        "  if (!np)\n"
        "    return;\n"
        "  kfree(np);\n"
        "}\n",
        // P8: use after decrease
        "void p8(struct sock *sk)\n"
        "{\n"
        "  sock_put(sk);\n"
        "  account(sk->sk_prot, -1);\n"
        "}\n",
        // P9: escape without increase
        "static int p9(struct ctx *ctx)\n"
        "{\n"
        "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
        "  if (!np)\n"
        "    return -ENODEV;\n"
        "  ctx->node = np;\n"
        "  touch(np);\n"
        "  of_node_put(np);\n"
        "  return 0;\n"
        "}\n"));

// --------------------------------------------- corpus → engine → tabling

TEST(PipelineTest, Table4AggregationConsistency) {
  // The per-subsystem aggregation used by the Table 4 bench must account
  // for every report exactly once and reconcile with ground truth.
  const Corpus corpus = GenerateKernelCorpus();
  CheckerEngine engine;
  const ScanResult result = engine.Scan(corpus.tree);

  std::map<std::string, int> per_subsystem;
  int matched = 0;
  int fp_shapes = 0;
  for (const BugReport& r : result.reports) {
    per_subsystem[SplitKernelPath(r.file).subsystem]++;
    if (corpus.FindBug(r.file, r.function) != nullptr) {
      ++matched;
    } else if (corpus.IsPlantedFp(r.file, r.function)) {
      ++fp_shapes;
    }
  }
  EXPECT_EQ(matched + fp_shapes, static_cast<int>(result.reports.size()));
  EXPECT_EQ(matched, 351);
  EXPECT_EQ(fp_shapes, 5);

  int sum = 0;
  for (const auto& [subsystem, count] : per_subsystem) {
    sum += count;
  }
  EXPECT_EQ(sum, static_cast<int>(result.reports.size()));
}

TEST(PipelineTest, ScanIsDeterministic) {
  const Corpus corpus = GenerateKernelCorpus();
  CheckerEngine a;
  CheckerEngine b;
  const ScanResult ra = a.Scan(corpus.tree);
  const ScanResult rb = b.Scan(corpus.tree);
  ASSERT_EQ(ra.reports.size(), rb.reports.size());
  for (size_t i = 0; i < ra.reports.size(); ++i) {
    EXPECT_EQ(ra.reports[i].Key(), rb.reports[i].Key());
    EXPECT_EQ(ra.reports[i].anti_pattern, rb.reports[i].anti_pattern);
  }
}

// ------------------------------------- history → gitlog → miner → stats

TEST(PipelineTest, SerializedHistoryYieldsIdenticalFindings) {
  HistoryOptions options;
  options.noise_commits = 2000;
  const History original = GenerateHistory(options);
  const History parsed = ParseGitLog(SerializeGitLog(original));
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();

  const Taxonomy a = TaxonomyBreakdown(MineRefcountBugs(original, kb).dataset);
  const Taxonomy b = TaxonomyBreakdown(MineRefcountBugs(parsed, kb).dataset);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.leak, b.leak);
  EXPECT_EQ(a.uad, b.uad);

  const LifetimeStats la = LifetimeAnalysis(MineRefcountBugs(original, kb).dataset);
  const LifetimeStats lb = LifetimeAnalysis(MineRefcountBugs(parsed, kb).dataset);
  EXPECT_EQ(la.with_fixes_tag, lb.with_fixes_tag);
  EXPECT_EQ(la.over_one_year, lb.over_one_year);
  EXPECT_EQ(la.over_ten_years, lb.over_ten_years);
  EXPECT_EQ(la.ancient_to_modern, lb.ancient_to_modern);
}

// ------------------------------------------------- report rendering

TEST(PipelineTest, TableRenderingOfScanOutput) {
  // The report module must digest real scan output without surprises
  // (long messages, empty cells).
  CheckerEngine engine;
  const ScanResult result = engine.ScanFileText(
      "drivers/t/t.c",
      "static int p(struct platform_device *pdev)\n"
      "{\n"
      "  int ret = pm_runtime_get_sync(pdev->dev);\n"
      "  if (ret < 0)\n"
      "    return ret;\n"
      "  pm_runtime_put(pdev->dev);\n"
      "  return 0;\n"
      "}\n");
  Table table("reports");
  table.Header({"File", "Line", "P", "Message"});
  for (const BugReport& r : result.reports) {
    table.Row({r.file, std::to_string(r.line), std::to_string(r.anti_pattern), r.message});
  }
  const std::string out = table.Render();
  EXPECT_NE(out.find("drivers/t/t.c"), std::string::npos);
  EXPECT_NE(out.find("pm_runtime_get_sync"), std::string::npos);
}

// ------------------- function quarantine ↔ deletion (DESIGN.md §5.15) ---

// A sibling function with exactly one planted P1 bug; the quarantined
// function sits LAST in the file so deleting it shifts no sibling lines.
constexpr const char* kLeakySibling =
    "static int p1_leak(struct platform_device *pdev)\n"
    "{\n"
    "  int ret = pm_runtime_get_sync(pdev->dev);\n"
    "  if (ret < 0)\n"
    "    return ret;\n"
    "  pm_runtime_put(pdev->dev);\n"
    "  return 0;\n"
    "}\n";

constexpr const char* kHopelessFunction =
    "int hopeless(void)\n"
    "{\n"
    "  @@ 1$ !! 2?? ;\n"
    "  @@ 3$ !! 4?? ;\n"
    "  @@ 5$ !! 6?? ;\n"
    "  @@ 7$ !! 8?? ;\n"
    "}\n";

TEST(QuarantineIntegrationTest, SiblingReportsMatchDeletedFunctionByteForByte) {
  SourceTree with_bad;
  with_bad.Add("drivers/q/q.c", std::string(kLeakySibling) + kHopelessFunction);
  SourceTree without_bad;
  without_bad.Add("drivers/q/q.c", kLeakySibling);

  CheckerEngine e1;
  CheckerEngine e2;
  const ScanResult a = e1.Scan(with_bad);
  const ScanResult b = e2.Scan(without_bad);

  // The quarantine contract: reports over the siblings are byte-identical
  // to scanning the tree with the hopeless function deleted.
  EXPECT_EQ(ReportsToJson(a.reports), ReportsToJson(b.reports));
  EXPECT_FALSE(a.reports.empty());

  ASSERT_EQ(a.degraded_functions.size(), 1u);
  EXPECT_EQ(a.degraded_functions[0].file, "drivers/q/q.c");
  EXPECT_EQ(a.degraded_functions[0].function, "hopeless");
  EXPECT_EQ(a.degraded_functions[0].line, 9u);
  EXPECT_EQ(a.stats.functions_degraded, 1u);
  EXPECT_EQ(ScanExitCodeFor(a), kExitDegraded);

  EXPECT_TRUE(b.degraded_functions.empty());
  EXPECT_EQ(b.stats.functions_degraded, 0u);
  EXPECT_EQ(ScanExitCodeFor(b), kExitReports);
}

TEST(QuarantineIntegrationTest, DegradedFunctionsSurviveJsonAndJobsSweep) {
  SourceTree tree;
  tree.Add("drivers/q/q.c", std::string(kLeakySibling) + kHopelessFunction);

  std::string baseline;
  for (const size_t jobs : {size_t{1}, size_t{4}}) {
    ScanOptions options;
    options.jobs = jobs;
    CheckerEngine engine(KnowledgeBase::BuiltIn(), options);
    const std::string json = ScanResultToJson(engine.Scan(tree), /*include_stats=*/true);
    EXPECT_NE(json.find("\"degraded_functions\""), std::string::npos);
    EXPECT_NE(json.find("hopeless"), std::string::npos);
    if (baseline.empty()) {
      baseline = json;
    } else {
      EXPECT_EQ(json, baseline) << "jobs=" << jobs;
    }
  }
}

// ------------------- streaming unit lifecycle (DESIGN.md §5.15) ----------

TEST(StreamingIntegrationTest, StreamingScanIsByteIdenticalToBuffered) {
  // The kernelish extension carries the shapes streaming must survive:
  // spliced identifiers, GNU extensions, and quarantined functions.
  CorpusOptions copt;
  copt.kernelish_modules = 4;
  const Corpus corpus = GenerateKernelCorpus(copt);
  SourceTree tree;
  for (const auto& [path, file] : corpus.tree.files()) {
    if (path.rfind("drivers/kernelish/", 0) == 0) {
      tree.Add(path, std::string(file.text()));
    }
  }
  ASSERT_GT(tree.size(), 0u);

  ScanOptions buffered;
  buffered.jobs = 2;
  ScanOptions streaming = buffered;
  streaming.streaming = true;

  CheckerEngine e1(KnowledgeBase::BuiltIn(), buffered);
  CheckerEngine e2(KnowledgeBase::BuiltIn(), streaming);
  const ScanResult a = e1.Scan(tree);
  const ScanResult b = e2.Scan(tree);
  EXPECT_EQ(ScanResultToJson(a, /*include_stats=*/true),
            ScanResultToJson(b, /*include_stats=*/true));
  EXPECT_EQ(ScanExitCodeFor(a), ScanExitCodeFor(b));
  EXPECT_GT(a.degraded_functions.size(), 0u);
}

}  // namespace
}  // namespace refscan
