// Unit tests for the C tokenizer.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/lexer/lexer.h"
#include "src/support/source.h"

namespace refscan {
namespace {

std::vector<Token> Lex(std::string text) {
  static std::vector<SourceFile> keep_alive;  // tokens view into file text
  keep_alive.emplace_back("t.c", std::move(text));
  return Tokenize(keep_alive.back());
}

TEST(LexerTest, BasicTokens) {
  const auto toks = Lex("int x = 42;");
  ASSERT_EQ(toks.size(), 6u);  // int x = 42 ; EOF
  EXPECT_EQ(toks[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(toks[1].text, "x");
  EXPECT_EQ(toks[2].text, "=");
  EXPECT_EQ(toks[3].kind, TokenKind::kNumber);
  EXPECT_EQ(toks[3].text, "42");
  EXPECT_EQ(toks[4].text, ";");
  EXPECT_EQ(toks[5].kind, TokenKind::kEof);
}

TEST(LexerTest, LineNumbersAreAccurate) {
  const auto toks = Lex("a\nb\n\nc\n");
  EXPECT_EQ(toks[0].line, 1u);
  EXPECT_EQ(toks[1].line, 2u);
  EXPECT_EQ(toks[2].line, 4u);
}

TEST(LexerTest, LineCommentsSkipped) {
  const auto toks = Lex("a // comment with words\nb");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[1].line, 2u);
}

TEST(LexerTest, BlockCommentsSkippedAcrossLines) {
  const auto toks = Lex("a /* multi\nline\ncomment */ b");
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[1].line, 3u);
}

TEST(LexerTest, UnterminatedBlockCommentConsumesRest) {
  const auto toks = Lex("a /* never closed");
  ASSERT_EQ(toks.size(), 2u);  // a, EOF
  EXPECT_EQ(toks[0].text, "a");
}

TEST(LexerTest, StringsWithEscapes) {
  const auto toks = Lex(R"(x = "str \"quoted\" end";)");
  EXPECT_EQ(toks[2].kind, TokenKind::kString);
  EXPECT_EQ(toks[2].text, R"("str \"quoted\" end")");
}

TEST(LexerTest, CharLiterals) {
  const auto toks = Lex("c = '\\n';");
  EXPECT_EQ(toks[2].kind, TokenKind::kChar);
}

TEST(LexerTest, PreprocDirectiveIsOneToken) {
  const auto toks = Lex("#include <linux/of.h>\nint x;");
  EXPECT_EQ(toks[0].kind, TokenKind::kPreproc);
  EXPECT_EQ(toks[0].text, "#include <linux/of.h>");
  EXPECT_EQ(toks[1].text, "int");
}

TEST(LexerTest, PreprocContinuationLines) {
  const auto toks = Lex("#define for_each_x(dn) \\\n  for (dn = first(); dn; dn = next(dn))\nint y;");
  EXPECT_EQ(toks[0].kind, TokenKind::kPreproc);
  EXPECT_NE(toks[0].text.find("next(dn)"), std::string::npos);
  EXPECT_EQ(toks[1].text, "int");
  EXPECT_EQ(toks[1].line, 3u);
}

TEST(LexerTest, HashInsideLineIsNotPreproc) {
  const auto toks = Lex("a # b");
  EXPECT_EQ(toks[1].kind, TokenKind::kPunct);
  EXPECT_EQ(toks[1].text, "#");
}

TEST(LexerTest, MultiCharPunctuators) {
  const auto toks = Lex("a->b <<= c == d && e;");
  EXPECT_EQ(toks[1].text, "->");
  EXPECT_EQ(toks[3].text, "<<=");
  EXPECT_EQ(toks[5].text, "==");
  EXPECT_EQ(toks[7].text, "&&");
}

TEST(LexerTest, HexAndSuffixedNumbers) {
  const auto toks = Lex("0xFFUL + 1e-3 + .5f");
  EXPECT_EQ(toks[0].kind, TokenKind::kNumber);
  EXPECT_EQ(toks[0].text, "0xFFUL");
  EXPECT_EQ(toks[2].text, "1e-3");
  EXPECT_EQ(toks[4].text, ".5f");
}

TEST(LexerTest, KeywordsVsIdentifiers) {
  EXPECT_TRUE(IsCKeyword("return"));
  EXPECT_TRUE(IsCKeyword("struct"));
  EXPECT_FALSE(IsCKeyword("kref_get"));
  const auto toks = Lex("return kref_get;");
  EXPECT_EQ(toks[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(toks[1].kind, TokenKind::kIdentifier);
}

TEST(LexerTest, EmptyInputYieldsEof) {
  const auto toks = Lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::kEof);
}

TEST(LexerTest, StrayBytesBecomePunct) {
  const auto toks = Lex("a @ b $ c");
  EXPECT_EQ(toks[1].text, "@");
  EXPECT_EQ(toks[3].text, "$");
}

// ---- kernel-C hardening: splices, CRLF, directive edge cases (§5.15) ----

TEST(LexerTest, DirectiveAfterMultiLineBlockCommentIsRecognized) {
  // Regression: the lexer used to leave at_line_start stale after a block
  // comment that swallowed a newline, so a '#' opening the next physical
  // line lexed as stray punctuation and the whole directive leaked into
  // the token stream as garbage.
  const auto toks = Lex("int x; /* doc\n */\n#define FOO 1\nint y;");
  ASSERT_GE(toks.size(), 7u);
  EXPECT_EQ(toks[3].kind, TokenKind::kPreproc);
  EXPECT_EQ(toks[3].text, "#define FOO 1");
  EXPECT_EQ(toks[3].line, 3u);
  EXPECT_EQ(toks[4].text, "int");
  EXPECT_EQ(toks[4].line, 4u);
}

TEST(LexerTest, HashAfterSameLineBlockCommentIsNotADirective) {
  // The flip side: a block comment that stays on one line must NOT make
  // the next '#' directive-eligible.
  const auto toks = Lex("a /* c */ # b");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[1].kind, TokenKind::kPunct);
  EXPECT_EQ(toks[1].text, "#");
}

TEST(LexerTest, DirectiveCrlfContinuationAndCrlfEnding) {
  // CRLF sources: `\`+CRLF continues the directive, and the final CRLF must
  // not leave a stray '\r' inside the token.
  const auto toks = Lex("#define A (1 | \\\r\n 2)\r\nint x;");
  ASSERT_GE(toks.size(), 4u);
  EXPECT_EQ(toks[0].kind, TokenKind::kPreproc);
  EXPECT_NE(toks[0].text.find("2)"), std::string::npos);
  EXPECT_NE(toks[0].text.back(), '\r');
  EXPECT_EQ(toks[1].text, "int");
  EXPECT_EQ(toks[1].line, 3u);
}

TEST(LexerTest, DirectiveContinuationWithTrailingWhitespaceAfterBackslash) {
  // `\` + trailing spaces/tabs + newline still continues (GCC accepts this
  // with a warning; kernel trees carry it).
  const auto toks = Lex("#define B (1 | \\ \t\n 2)\nint y;");
  ASSERT_GE(toks.size(), 4u);
  EXPECT_EQ(toks[0].kind, TokenKind::kPreproc);
  EXPECT_NE(toks[0].text.find("2)"), std::string::npos);
  EXPECT_EQ(toks[1].text, "int");
  EXPECT_EQ(toks[1].line, 3u);
}

TEST(LexerTest, SplicedIdentifierNormalizesWithStorage) {
  SourceFile file("t.c", "int of_node\\\n_put(struct device_node *np);\n");
  SpliceStorage storage;
  const auto toks = Tokenize(file, &storage);
  ASSERT_GE(toks.size(), 4u);
  EXPECT_EQ(toks[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(toks[1].text, "of_node_put");
  EXPECT_EQ(toks[1].line, 1u);
  // Line accounting resumes after the splice: the '(' is on line 2.
  EXPECT_EQ(toks[2].text, "(");
  EXPECT_EQ(toks[2].line, 2u);
}

TEST(LexerTest, SplicedKeywordIsStillAKeyword) {
  SourceFile file("t.c", "sta\\\ntic int x;\n");
  SpliceStorage storage;
  const auto toks = Tokenize(file, &storage);
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(toks[0].text, "static");
}

TEST(LexerTest, SplicedIdentifierWithoutStorageKeepsRawSpan) {
  // With no SpliceStorage every token must still view into the file buffer,
  // so the raw (splice bytes included) span is kept.
  const auto toks = Lex("int a\\\nb = 1;");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(toks[1].text, "a\\\nb");
}

TEST(LexerTest, LineCommentBackslashSpliceContinuesComment) {
  // GCC semantics: a `//` comment ending in a backslash splice eats the
  // next physical line too.
  const auto toks = Lex("a // eats the next line \\\nstill_comment();\nb");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[1].line, 3u);
}

TEST(LexerTest, StringLiteralContinuesThroughSplice) {
  const auto toks = Lex("const char *s = \"ab\\\ncd\";");
  const Token* str = nullptr;
  for (const Token& t : toks) {
    if (t.kind == TokenKind::kString) {
      str = &t;
    }
  }
  ASSERT_NE(str, nullptr);
  // The literal spans the splice instead of ending (unterminated) at the
  // newline; the raw span keeps the splice bytes.
  EXPECT_NE(str->text.find("cd\""), std::string::npos);
}

TEST(LexerTest, BareSpliceBeforeHashKeepsDirectiveEligibility) {
  // A splice joins two physical lines into one logical line without
  // disturbing at_line_start: a line-leading splice keeps the '#' eligible…
  const auto toks = Lex("\\\n#define C 3\n");
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokenKind::kPreproc);
  EXPECT_EQ(toks[0].text, "#define C 3");
  EXPECT_EQ(toks[0].line, 2u);
}

TEST(LexerTest, SpliceJoinsLogicalLineSoMidLineHashStaysPunct) {
  // …and a splice after real tokens keeps the '#' mid-logical-line.
  const auto toks = Lex("int x = 1 \\\n# 2;\n");
  ASSERT_GE(toks.size(), 5u);
  EXPECT_EQ(toks[4].kind, TokenKind::kPunct);
  EXPECT_EQ(toks[4].text, "#");
}

TEST(TokenCursorTest, PeekNextEat) {
  const auto toks = Lex("a b c");
  TokenCursor cur(toks);
  EXPECT_EQ(cur.Peek().text, "a");
  EXPECT_EQ(cur.Peek(1).text, "b");
  EXPECT_TRUE(cur.Eat("a"));
  EXPECT_FALSE(cur.Eat("x"));
  EXPECT_EQ(cur.Next().text, "b");
  EXPECT_EQ(cur.Next().text, "c");
  EXPECT_TRUE(cur.AtEnd());
  // Next() at EOF is safe and stays at EOF.
  EXPECT_EQ(cur.Next().kind, TokenKind::kEof);
  EXPECT_EQ(cur.Peek().kind, TokenKind::kEof);
}

TEST(TokenCursorTest, PeekBeyondEndReturnsEof) {
  const auto toks = Lex("a");
  TokenCursor cur(toks);
  EXPECT_EQ(cur.Peek(100).kind, TokenKind::kEof);
}

// Property sweep: tokenizing any prefix of a real-looking source never
// produces tokens that extend past the buffer, and lines are monotone.
class LexerPrefixTest : public ::testing::TestWithParam<size_t> {};

TEST_P(LexerPrefixTest, TokensStayInBoundsAndOrdered) {
  const std::string source =
      "#define for_each_child_of_node(p, c) \\\n"
      "  for (c = of_get_next_child(p, NULL); c; c = of_get_next_child(p, c))\n"
      "static int foo_probe(struct platform_device *pdev)\n"
      "{\n"
      "  struct device_node *np = pdev->dev.of_node; /* get node */\n"
      "  if (!np) return -EINVAL;\n"
      "  // walk children\n"
      "  for_each_child_of_node(np, child) { use(child); }\n"
      "  return 0;\n"
      "}\n";
  const size_t len = std::min(GetParam(), source.size());
  SourceFile file("p.c", source.substr(0, len));
  const auto toks = Tokenize(file);
  ASSERT_FALSE(toks.empty());
  EXPECT_EQ(toks.back().kind, TokenKind::kEof);
  uint32_t last_line = 0;
  for (const Token& t : toks) {
    EXPECT_GE(t.line, last_line);
    last_line = t.line;
    if (t.kind != TokenKind::kEof) {
      // Token text must be a view into the file buffer.
      const char* begin = file.text().data();
      const char* end = begin + file.text().size();
      EXPECT_GE(t.text.data(), begin);
      EXPECT_LE(t.text.data() + t.text.size(), end);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Prefixes, LexerPrefixTest,
                         ::testing::Values(0, 1, 5, 17, 42, 77, 120, 200, 320, 10000));

}  // namespace
}  // namespace refscan
