// Edge-case coverage for the anti-pattern checkers: kernel unwind-label
// chains, multiple tracked objects, nested and continued smartloops, lock
// interactions, out-parameter escapes, switch dispatch, and path-cap
// behaviour on pathological inputs.

#include <gtest/gtest.h>

#include <string>

#include "src/checkers/engine.h"

namespace refscan {
namespace {

std::vector<BugReport> ScanText(std::string text) {
  CheckerEngine engine;
  return engine.ScanFileText("drivers/t/t.c", std::move(text)).reports;
}

int CountPattern(const std::vector<BugReport>& reports, int pattern) {
  int n = 0;
  for (const BugReport& r : reports) {
    n += r.anti_pattern == pattern ? 1 : 0;
  }
  return n;
}

// ------------------------------------------------ kernel unwind-label chains

TEST(GotoChainTest, CorrectStagedUnwindIsClean) {
  // The canonical kernel shape: later failures jump to labels that undo
  // progressively less. No leak anywhere.
  const auto reports = ScanText(
      "static int staged_probe(struct platform_device *pdev)\n"
      "{\n"
      "  struct device_node *np;\n"
      "  int ret;\n"
      "\n"
      "  ret = alloc_resources(pdev);\n"
      "  if (ret < 0)\n"
      "    return ret;\n"
      "  np = of_find_compatible_node(NULL, NULL, \"acme,dev\");\n"
      "  if (!np) {\n"
      "    ret = -ENODEV;\n"
      "    goto err_free;\n"
      "  }\n"
      "  ret = map_registers(pdev, np);\n"
      "  if (ret < 0)\n"
      "    goto err_put;\n"
      "  ret = request_irqs(pdev);\n"
      "  if (ret < 0)\n"
      "    goto err_unmap;\n"
      "  of_node_put(np);\n"
      "  return 0;\n"
      "err_unmap:\n"
      "  unmap_registers(pdev);\n"
      "err_put:\n"
      "  of_node_put(np);\n"
      "err_free:\n"
      "  free_resources(pdev);\n"
      "  return ret;\n"
      "}\n");
  EXPECT_TRUE(reports.empty()) << (reports.empty() ? "" : reports[0].message);
}

TEST(GotoChainTest, JumpToWrongLabelLeaks) {
  // Jumping past the put label leaks the node: P5 (paired elsewhere,
  // missing on this error path).
  const auto reports = ScanText(
      "static int staged_probe(struct platform_device *pdev)\n"
      "{\n"
      "  struct device_node *np;\n"
      "  int ret;\n"
      "\n"
      "  np = of_find_compatible_node(NULL, NULL, \"acme,dev\");\n"
      "  if (!np)\n"
      "    return -ENODEV;\n"
      "  ret = map_registers(pdev, np);\n"
      "  if (ret < 0)\n"
      "    goto err_free;\n"  // *BUG*: should be err_put
      "  of_node_put(np);\n"
      "  return 0;\n"
      "err_put:\n"
      "  of_node_put(np);\n"
      "err_free:\n"
      "  free_resources(pdev);\n"
      "  return ret;\n"
      "}\n");
  EXPECT_GE(CountPattern(reports, 5), 1);
}

// ------------------------------------------------------- multiple objects

TEST(MultiObjectTest, TwoNodesOneLeaks) {
  const auto reports = ScanText(
      "static int pair(void)\n"
      "{\n"
      "  struct device_node *a = of_find_node_by_path(\"/a\");\n"
      "  struct device_node *b = of_find_node_by_path(\"/b\");\n"
      "  if (!a || !b)\n"
      "    return -ENODEV;\n"
      "  wire(a, b);\n"
      "  of_node_put(a);\n"
      "  return 0;\n"  // *BUG*: b leaks
      "}\n");
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].object, "b");
}

TEST(MultiObjectTest, PutOfOneDoesNotSatisfyTheOther) {
  const auto reports = ScanText(
      "static int pair(void)\n"
      "{\n"
      "  struct device_node *a = of_find_node_by_path(\"/a\");\n"
      "  struct device_node *b = of_find_node_by_path(\"/b\");\n"
      "  use2(a, b);\n"
      "  of_node_put(a);\n"
      "  of_node_put(a);\n"  // double put of a, none of b
      "  return 0;\n"
      "}\n");
  bool b_reported = false;
  for (const BugReport& r : reports) {
    b_reported |= r.object == "b";
  }
  EXPECT_TRUE(b_reported);
}

// ------------------------------------------------------------- smartloops

TEST(SmartLoopEdgeTest, ContinueDoesNotLeak) {
  // `continue` hands control back to the macro, which puts the previous
  // iterator itself — not an early exit.
  const auto reports = ScanText(
      "static int walk(struct device_node *parent)\n"
      "{\n"
      "  struct device_node *child;\n"
      "  for_each_child_of_node(parent, child) {\n"
      "    if (!interesting(child))\n"
      "      continue;\n"
      "    handle(child);\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(CountPattern(reports, 3), 0);
}

TEST(SmartLoopEdgeTest, NestedLoopsInnerBreakLeaksInner) {
  const auto reports = ScanText(
      "static int nested(struct device_node *parent)\n"
      "{\n"
      "  struct device_node *child;\n"
      "  struct device_node *gc;\n"
      "  for_each_child_of_node(parent, child) {\n"
      "    for_each_child_of_node(child, gc) {\n"
      "      if (match(gc))\n"
      "        break;\n"  // *BUG*: gc leaks (child is fine: outer loop continues)
      "    }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  ASSERT_GE(CountPattern(reports, 3), 1);
  bool inner = false;
  for (const BugReport& r : reports) {
    inner |= r.anti_pattern == 3 && r.object == "gc";
  }
  EXPECT_TRUE(inner);
}

TEST(SmartLoopEdgeTest, GotoNonErrorLabelInsideLoopIsNotP3) {
  // A goto to a non-error label (e.g. a retry) is not treated as an exit.
  const auto reports = ScanText(
      "static int walk(struct device_node *parent)\n"
      "{\n"
      "  struct device_node *child;\n"
      "retry:\n"
      "  for_each_child_of_node(parent, child) {\n"
      "    if (transient(child))\n"
      "      goto retry;\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(CountPattern(reports, 3), 0);
}

// ----------------------------------------------------------------- locks

TEST(LockInteractionTest, PutInsideCriticalSectionThenUnlockIsP8) {
  const auto reports = ScanText(
      "static void drop_locked(struct usb_serial *serial)\n"
      "{\n"
      "  mutex_lock(&serial->disc_mutex);\n"
      "  finish(serial);\n"
      "  usb_serial_put(serial);\n"
      "  mutex_unlock(&serial->disc_mutex);\n"  // *BUG*: Listing 2 shape
      "}\n");
  EXPECT_EQ(CountPattern(reports, 8), 1);
}

TEST(LockInteractionTest, UnlockOfUnrelatedLockIsClean) {
  const auto reports = ScanText(
      "static void drop_other(struct usb_serial *serial, struct bus *bus)\n"
      "{\n"
      "  mutex_lock(&bus->lock);\n"
      "  usb_serial_put(serial);\n"
      "  mutex_unlock(&bus->lock);\n"  // different object: fine
      "}\n");
  EXPECT_EQ(CountPattern(reports, 8), 0);
}

// --------------------------------------------------------------- escapes

TEST(EscapeEdgeTest, OutParameterStoreThenDropIsP9) {
  const auto reports = ScanText(
      "static int lookup_into(struct device_node **out)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
      "  if (!np)\n"
      "    return -ENODEV;\n"
      "  *out = np;\n"  // escapes through the out-parameter...
      "  validate(np);\n"
      "  of_node_put(np);\n"  // ...then the only reference is dropped
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(CountPattern(reports, 9), 1);
}

TEST(EscapeEdgeTest, LocalStructFieldStoreIsNotAnEscape) {
  const auto reports = ScanText(
      "static int local_cache(void)\n"
      "{\n"
      "  struct walk_state st;\n"
      "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
      "  if (!np)\n"
      "    return -ENODEV;\n"
      "  st.node = np;\n"  // local struct: no escape
      "  run(&st);\n"
      "  of_node_put(np);\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(CountPattern(reports, 9), 0);
}

// ---------------------------------------------------------------- switch

TEST(SwitchTest, LeakOnOneCaseOnly) {
  const auto reports = ScanText(
      "static int dispatch(int kind)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
      "  if (!np)\n"
      "    return -ENODEV;\n"
      "  switch (kind) {\n"
      "  case 1:\n"
      "    handle1(np);\n"
      "    of_node_put(np);\n"
      "    return 0;\n"
      "  default:\n"
      "    return -EINVAL;\n"  // *BUG*: leaks np
      "  }\n"
      "}\n");
  EXPECT_GE(CountPattern(reports, 5), 1);
}

// --------------------------------------------------------- path explosion

TEST(PathCapTest, ManyBranchesStillTerminatesAndDetects) {
  // 16 independent branches would be 2^16 paths; the engine's path cap
  // bounds the work while the straight-line leak is still on early paths.
  std::string code =
      "static int wide(void)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
      "  if (!np)\n"
      "    return -ENODEV;\n";
  for (int i = 0; i < 16; ++i) {
    code += "  if (cond" + std::to_string(i) + "()) side" + std::to_string(i) + "();\n";
  }
  code += "  return 0;\n}\n";  // *BUG*: np never put
  const auto reports = ScanText(code);
  EXPECT_GE(CountPattern(reports, 4), 1);
}

TEST(PathCapTest, CustomPathBudgetRespected) {
  ScanOptions options;
  options.max_paths_per_function = 4;
  CheckerEngine engine(KnowledgeBase::BuiltIn(), options);
  std::string code =
      "static int wide(void)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
      "  if (!np)\n"
      "    return -ENODEV;\n"
      "  use(np);\n"
      "  return 0;\n"
      "}\n";
  const auto result = engine.ScanFileText("drivers/t/t.c", code);
  EXPECT_GE(CountPattern(result.reports, 4), 1);  // detected within 4 paths
}

// -------------------------------------------------------------- do-while

TEST(DoWhileTest, LeakInsideDoWhileBody) {
  const auto reports = ScanText(
      "static int spin(void)\n"
      "{\n"
      "  do {\n"
      "    struct device_node *np = of_find_node_by_path(\"/x\");\n"
      "    if (!np)\n"
      "      return -ENODEV;\n"
      "    poke(np);\n"
      "  } while (again());\n"  // *BUG*: np leaks every iteration
      "  return 0;\n"
      "}\n");
  EXPECT_GE(CountPattern(reports, 4), 1);
}

// ------------------------------------------------------- ternary condition

TEST(TernaryTest, AcquisitionInTernaryStillTracked) {
  const auto reports = ScanText(
      "static int pick(int flag)\n"
      "{\n"
      "  struct device_node *np;\n"
      "  np = flag ? of_find_node_by_path(\"/a\") : of_find_node_by_path(\"/b\");\n"
      "  if (!np)\n"
      "    return -ENODEV;\n"
      "  use(np);\n"
      "  of_node_put(np);\n"
      "  return 0;\n"
      "}\n");
  // Both acquisitions are released through the same put; no reports.
  EXPECT_TRUE(reports.empty()) << (reports.empty() ? "" : reports[0].message);
}

}  // namespace
}  // namespace refscan
