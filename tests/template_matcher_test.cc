// Tests for the semantic-template matching DSL.

#include <gtest/gtest.h>

#include <string>

#include "src/checkers/template_matcher.h"

namespace refscan {
namespace {

std::vector<BugReport> RunTemplate(const std::string& tmpl_text, std::string code) {
  const auto tmpl = ParseTemplate(tmpl_text);
  EXPECT_TRUE(tmpl.has_value()) << tmpl_text;
  if (!tmpl.has_value()) {
    return {};
  }
  SourceTree tree;
  tree.Add("drivers/t/t.c", std::move(code));
  return RunTemplateChecker(*tmpl, tree);
}

// -------------------------------------------------------------- parsing

TEST(TemplateParseTest, ParsesCanonicalTemplates) {
  for (const char* text : {
           "F_start -> S_G_E -> B_error -> F_end",
           "F_start -> S_P(p0) -> S_D(p0) -> F_end",
           "F_start -> M_SL -> S_ret -> F_end",
           "F_start -> S_G -> S_free -> F_end",
           "F_start -> S_A_GO(p0) -> S_P(p0) -> F_end",
           "S_G(of_node_get) -> !S_P -> F_end",
       }) {
    EXPECT_TRUE(ParseTemplate(text).has_value()) << text;
  }
}

TEST(TemplateParseTest, StepDetails) {
  const auto tmpl = ParseTemplate("F_start -> !S_P(p0) -> S_G_N(p0) -> F_end");
  ASSERT_TRUE(tmpl.has_value());
  ASSERT_EQ(tmpl->steps.size(), 4u);
  EXPECT_EQ(tmpl->steps[0].what, MatchStep::What::kFunctionStart);
  EXPECT_TRUE(tmpl->steps[1].negated);
  EXPECT_EQ(tmpl->steps[1].what, MatchStep::What::kDecrease);
  EXPECT_TRUE(tmpl->steps[1].wants_p0);
  EXPECT_TRUE(tmpl->steps[2].require_returns_null);
}

TEST(TemplateParseTest, ApiFilterVsP0) {
  const auto tmpl = ParseTemplate("S_G(kref_get) -> S_P(p0)");
  ASSERT_TRUE(tmpl.has_value());
  EXPECT_EQ(tmpl->steps[0].api_filter, "kref_get");
  EXPECT_FALSE(tmpl->steps[0].wants_p0);
  EXPECT_TRUE(tmpl->steps[1].wants_p0);
}

TEST(TemplateParseTest, RejectsGarbage) {
  EXPECT_FALSE(ParseTemplate("").has_value());
  EXPECT_FALSE(ParseTemplate("S_X -> F_end").has_value());
  EXPECT_FALSE(ParseTemplate("S_G( -> F_end").has_value());
  EXPECT_FALSE(ParseTemplate("wibble").has_value());
}

// ------------------------------------------------------------- matching

constexpr const char* kUadCode =
    "void ping_unhash(struct sock *sk)\n"
    "{\n"
    "  sock_put(sk);\n"
    "  touch(sk->sk_prot);\n"
    "}\n";

TEST(TemplateMatchTest, Listing2TemplateMatchesUad) {
  const auto reports = RunTemplate("F_start -> S_P(p0) -> S_D(p0) -> F_end", kUadCode);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].function, "ping_unhash");
  EXPECT_EQ(reports[0].object, "sk");
  EXPECT_EQ(reports[0].line, 3u);
  EXPECT_EQ(reports[0].exit_line, 4u);
}

TEST(TemplateMatchTest, P0UnificationRejectsDifferentObjects) {
  const auto reports = RunTemplate("F_start -> S_P(p0) -> S_D(p0) -> F_end",
                           "void ok(struct sock *sk, struct dev *d)\n"
                           "{\n"
                           "  sock_put(sk);\n"
                           "  touch(d->stats);\n"  // different object: no match
                           "}\n");
  EXPECT_TRUE(reports.empty());
}

TEST(TemplateMatchTest, NegationForbidsInterveningEvent) {
  // "increase with no decrease before function end" — the essence of a
  // leak checker in one line.
  const char* tmpl = "F_start -> S_G(p0) -> !S_P(p0) -> F_end";
  const auto leaky = RunTemplate(tmpl,
                         "void leak(struct device_node *np)\n"
                         "{\n"
                         "  of_node_get(np);\n"
                         "}\n");
  EXPECT_EQ(leaky.size(), 1u);

  const auto clean = RunTemplate(tmpl,
                         "void balanced(struct device_node *np)\n"
                         "{\n"
                         "  of_node_get(np);\n"
                         "  of_node_put(np);\n"
                         "}\n");
  EXPECT_TRUE(clean.empty());
}

TEST(TemplateMatchTest, ErrorRegionStep) {
  const char* tmpl = "F_start -> S_G_E(p0) -> !S_P(p0) -> B_error -> F_end";
  const auto reports = RunTemplate(tmpl,
                           "static int r(struct platform_device *pdev)\n"
                           "{\n"
                           "  int ret = pm_runtime_get_sync(pdev->dev);\n"
                           "  if (ret < 0)\n"
                           "    return ret;\n"
                           "  pm_runtime_put(pdev->dev);\n"
                           "  return 0;\n"
                           "}\n");
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].api, "pm_runtime_get_sync");
}

TEST(TemplateMatchTest, ErrorRegionAbsentMeansNoMatch) {
  const char* tmpl = "F_start -> S_G_E -> B_error -> F_end";
  const auto reports = RunTemplate(tmpl,
                           "static void r(struct platform_device *pdev)\n"
                           "{\n"
                           "  pm_runtime_get_sync(pdev->dev);\n"
                           "  pm_runtime_put(pdev->dev);\n"
                           "}\n");
  EXPECT_TRUE(reports.empty());
}

TEST(TemplateMatchTest, SmartLoopStep) {
  const auto reports = RunTemplate("F_start -> M_SL -> S_ret -> F_end",
                           "static int w(struct device_node *parent)\n"
                           "{\n"
                           "  struct device_node *child;\n"
                           "  for_each_child_of_node(parent, child) {\n"
                           "    if (bad(child))\n"
                           "      return -EINVAL;\n"
                           "  }\n"
                           "  return 0;\n"
                           "}\n");
  EXPECT_EQ(reports.size(), 1u);
}

TEST(TemplateMatchTest, ApiFilterRestrictsMatches) {
  const char* code =
      "void two(struct device_node *np, struct sock *sk)\n"
      "{\n"
      "  of_node_get(np);\n"
      "  sock_hold(sk);\n"
      "}\n";
  EXPECT_EQ(RunTemplate("S_G(sock_hold) -> F_end", code).size(), 1u);
  EXPECT_EQ(RunTemplate("S_G(kref_get) -> F_end", code).size(), 0u);
}

TEST(TemplateMatchTest, FreeStep) {
  const auto reports = RunTemplate("F_start -> S_G(p0) -> S_free(p0) -> F_end",
                           "static void t(void)\n"
                           "{\n"
                           "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
                           "  kfree(np);\n"
                           "}\n");
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].object, "np");
}

TEST(TemplateMatchTest, EscapeAssignStep) {
  const auto reports = RunTemplate("F_start -> S_G(p0) -> S_A_GO(p0) -> S_P(p0) -> F_end",
                           "static int c(struct ctx *ctx)\n"
                           "{\n"
                           "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
                           "  ctx->node = np;\n"
                           "  of_node_put(np);\n"
                           "  return 0;\n"
                           "}\n");
  EXPECT_EQ(reports.size(), 1u);
}

TEST(TemplateMatchTest, LockUnlockSteps) {
  const auto reports = RunTemplate("S_L -> S_P(p0) -> S_U -> F_end",
                           "static void d(struct usb_serial *serial)\n"
                           "{\n"
                           "  mutex_lock(&serial->disc_mutex);\n"
                           "  usb_serial_put(serial);\n"
                           "  mutex_unlock(&serial->disc_mutex);\n"
                           "}\n");
  EXPECT_EQ(reports.size(), 1u);
}

TEST(TemplateMatchTest, ReportCarriesTemplateSource) {
  const auto reports = RunTemplate("F_start -> S_P(p0) -> S_D(p0) -> F_end", kUadCode);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].template_path, "F_start -> S_P(p0) -> S_D(p0) -> F_end");
  EXPECT_EQ(reports[0].anti_pattern, 0);
}

}  // namespace
}  // namespace refscan
