// Tests for the prior-work baseline detectors and their qualitative
// comparison against the anti-pattern checkers (the paper's §8 claims).

#include <gtest/gtest.h>

#include "src/baselines/baselines.h"
#include "src/checkers/engine.h"
#include "src/corpus/generator.h"
#include "src/support/strings.h"

namespace refscan {
namespace {

SourceTree OneFileTree(std::string text) {
  SourceTree tree;
  tree.Add("drivers/t/t.c", std::move(text));
  return tree;
}

TEST(PairedConsistencyTest, FlagsUnpairedIncrement) {
  const auto result = RunBaselines(OneFileTree(
      "void f(struct device_node *np)\n"
      "{\n"
      "  of_node_get(np);\n"
      "}\n"),
      KnowledgeBase::BuiltIn());
  ASSERT_EQ(result.paired_consistency.size(), 1u);
  EXPECT_EQ(result.paired_consistency[0].function, "f");
  EXPECT_EQ(result.paired_consistency[0].object, "np");
}

TEST(PairedConsistencyTest, BalancedIsClean) {
  const auto result = RunBaselines(OneFileTree(
      "void f(struct device_node *np)\n"
      "{\n"
      "  of_node_get(np);\n"
      "  use(np);\n"
      "  of_node_put(np);\n"
      "}\n"),
      KnowledgeBase::BuiltIn());
  EXPECT_TRUE(result.paired_consistency.empty());
}

TEST(PairedConsistencyTest, FalsePositiveOnOwnershipTransfer) {
  // The known weakness (§8): returning the acquired object is correct code,
  // but the consistency rule flags it.
  const auto result = RunBaselines(OneFileTree(
      "struct device_node *lookup(void)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/soc\");\n"
      "  return np;\n"
      "}\n"),
      KnowledgeBase::BuiltIn());
  EXPECT_EQ(result.paired_consistency.size(), 1u);
}

TEST(EscapeInvariantTest, FlagsEscapeWithoutIncrement) {
  const auto result = RunBaselines(OneFileTree(
      "int f(struct ctx *ctx)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/soc\");\n"
      "  ctx->node = np;\n"
      "  of_node_put(np);\n"
      "  return 0;\n"
      "}\n"),
      KnowledgeBase::BuiltIn());
  ASSERT_GE(result.escape_invariant.size(), 1u);
  EXPECT_EQ(result.escape_invariant[0].object, "np");
}

TEST(EscapeInvariantTest, BalancedEscapeIsClean) {
  const auto result = RunBaselines(OneFileTree(
      "int f(struct ctx *ctx)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/soc\");\n"
      "  ctx->node = np;\n"
      "  return 0;\n"  // one inc, one escape: invariant holds
      "}\n"),
      KnowledgeBase::BuiltIn());
  EXPECT_TRUE(result.escape_invariant.empty());
}

TEST(CrossCheckTest, FlagsMinorityBehaviour) {
  // Three sites release the node, one does not: the odd one out is flagged.
  std::string text;
  for (int i = 0; i < 3; ++i) {
    text += StrFormat(
        "void good%d(void)\n"
        "{\n"
        "  struct device_node *np = of_find_node_by_path(\"/a%d\");\n"
        "  use(np);\n"
        "  of_node_put(np);\n"
        "}\n",
        i, i);
  }
  text +=
      "void bad(void)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/b\");\n"
      "  use(np);\n"
      "}\n";
  const auto result = RunBaselines(OneFileTree(std::move(text)), KnowledgeBase::BuiltIn());
  ASSERT_EQ(result.cross_check.size(), 1u);
  EXPECT_EQ(result.cross_check[0].function, "bad");
}

TEST(CrossCheckTest, TooFewSitesStaysQuiet) {
  const auto result = RunBaselines(OneFileTree(
      "void only(void)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/b\");\n"
      "  use(np);\n"
      "}\n"),
      KnowledgeBase::BuiltIn());
  EXPECT_TRUE(result.cross_check.empty());
}

// The headline §8 comparison: on the full corpus the invariant-style
// baseline has a far worse false-positive rate than the anti-pattern
// checkers (the paper cites ~60% FPs for LinKRID-style checking).
TEST(BaselineComparisonTest, InvariantBaselineHasHighFalsePositiveRate) {
  const Corpus corpus = GenerateKernelCorpus();
  const BaselineResult baselines = RunBaselines(corpus.tree, KnowledgeBase::BuiltIn());

  auto fp_rate = [&corpus](const std::vector<BaselineReport>& reports) {
    if (reports.empty()) {
      return 0.0;
    }
    int fps = 0;
    for (const BaselineReport& r : reports) {
      if (corpus.FindBug(r.file, r.function) == nullptr &&
          !corpus.IsPlantedFp(r.file, r.function)) {
        ++fps;
      }
    }
    return static_cast<double>(fps) / reports.size();
  };

  CheckerEngine engine;
  const ScanResult ours = engine.Scan(corpus.tree);
  int our_fps = 0;
  for (const BugReport& r : ours.reports) {
    if (corpus.FindBug(r.file, r.function) == nullptr && !corpus.IsPlantedFp(r.file, r.function)) {
      ++our_fps;
    }
  }
  const double our_rate = ours.reports.empty() ? 0.0 : static_cast<double>(our_fps) /
                                                           static_cast<double>(ours.reports.size());

  EXPECT_GT(fp_rate(baselines.paired_consistency), our_rate);
  EXPECT_GT(fp_rate(baselines.escape_invariant), our_rate);
  // Shape claim: invariant-style checking produces a substantial FP rate.
  EXPECT_GT(fp_rate(baselines.escape_invariant), 0.2);
}

}  // namespace
}  // namespace refscan
