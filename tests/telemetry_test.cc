// Telemetry tests (DESIGN.md §5.10): the metrics registry, the Prometheus
// text exposition, the Chrome trace export, and the determinism contract —
// event (name, arg) multisets and non-sched counters identical at every
// `jobs` value. Also locks the ScanStats field-table shape (stats JSON
// completeness), the disjoint exit-code mapping, and the retried-vs-
// degraded accounting consistency.

#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "src/checkers/engine.h"
#include "src/support/faultinject.h"
#include "src/support/fs.h"
#include "src/support/telemetry.h"

namespace refscan {
namespace {

namespace stdfs = std::filesystem;

// ---- a minimal JSON validator -------------------------------------------
//
// Enough of RFC 8259 to prove an export is well-formed (objects, arrays,
// strings with escapes, numbers, literals); deliberately not a full reader.

struct JsonCursor {
  const std::string& text;
  size_t pos = 0;

  void SkipWs() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
};

bool ParseJsonValue(JsonCursor& c);

bool ParseJsonString(JsonCursor& c) {
  if (!c.Eat('"')) {
    return false;
  }
  while (c.pos < c.text.size()) {
    const char ch = c.text[c.pos++];
    if (ch == '"') {
      return true;
    }
    if (ch == '\\') {
      if (c.pos >= c.text.size()) {
        return false;
      }
      const char esc = c.text[c.pos++];
      if (esc == 'u') {
        for (int i = 0; i < 4; ++i) {
          if (c.pos >= c.text.size() ||
              !std::isxdigit(static_cast<unsigned char>(c.text[c.pos++]))) {
            return false;
          }
        }
      } else if (std::string_view("\"\\/bfnrt").find(esc) == std::string_view::npos) {
        return false;
      }
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      return false;  // raw control character inside a string
    }
  }
  return false;  // unterminated
}

bool ParseJsonNumber(JsonCursor& c) {
  const size_t start = c.pos;
  if (c.pos < c.text.size() && c.text[c.pos] == '-') {
    ++c.pos;
  }
  while (c.pos < c.text.size() &&
         (std::isdigit(static_cast<unsigned char>(c.text[c.pos])) || c.text[c.pos] == '.' ||
          c.text[c.pos] == 'e' || c.text[c.pos] == 'E' || c.text[c.pos] == '+' ||
          c.text[c.pos] == '-')) {
    ++c.pos;
  }
  return c.pos > start;
}

bool ParseJsonValue(JsonCursor& c) {
  c.SkipWs();
  if (c.pos >= c.text.size()) {
    return false;
  }
  const char ch = c.text[c.pos];
  if (ch == '{') {
    ++c.pos;
    if (c.Eat('}')) {
      return true;
    }
    do {
      c.SkipWs();
      if (!ParseJsonString(c) || !c.Eat(':') || !ParseJsonValue(c)) {
        return false;
      }
    } while (c.Eat(','));
    return c.Eat('}');
  }
  if (ch == '[') {
    ++c.pos;
    if (c.Eat(']')) {
      return true;
    }
    do {
      if (!ParseJsonValue(c)) {
        return false;
      }
    } while (c.Eat(','));
    return c.Eat(']');
  }
  if (ch == '"') {
    return ParseJsonString(c);
  }
  for (const std::string_view lit : {"true", "false", "null"}) {
    if (c.text.compare(c.pos, lit.size(), lit) == 0) {
      c.pos += lit.size();
      return true;
    }
  }
  return ParseJsonNumber(c);
}

bool IsValidJson(const std::string& text) {
  JsonCursor c{text};
  if (!ParseJsonValue(c)) {
    return false;
  }
  c.SkipWs();
  return c.pos == text.size();
}

// ---- shared scan fixtures ------------------------------------------------

std::string LeakyFile(const std::string& fn) {
  return "static int " + fn +
         "_probe(struct device_node *np)\n"
         "{\n"
         "  struct device_node *child = of_get_parent(np);\n"
         "  return 0;\n"
         "}\n";
}

SourceTree SmallTree() {
  SourceTree tree;
  tree.Add("drivers/a/alpha.c", LeakyFile("alpha"));
  tree.Add("drivers/b/beta.c", LeakyFile("beta"));
  tree.Add("drivers/c/gamma.c", LeakyFile("gamma"));
  return tree;
}

ScanResult ScanTree(const SourceTree& tree, ScanOptions options) {
  CheckerEngine engine(KnowledgeBase::BuiltIn(), std::move(options));
  return engine.Scan(tree);
}

// Drops the nondeterministic lines from a Prometheus exposition: anything
// under sched./governor. and every timing series (histograms export as
// *_seconds*). This is the comparison rule from the determinism contract.
std::string StableMetricLines(const std::string& exposition) {
  std::string out;
  size_t pos = 0;
  while (pos < exposition.size()) {
    const size_t eol = exposition.find('\n', pos);
    const std::string_view line(exposition.data() + pos,
                                (eol == std::string::npos ? exposition.size() : eol) - pos);
    pos = eol == std::string::npos ? exposition.size() : eol + 1;
    if (line.find("refscan_sched_") != std::string_view::npos ||
        line.find("refscan_governor_") != std::string_view::npos ||
        line.find("_seconds") != std::string_view::npos) {
      continue;
    }
    out.append(line);
    out.push_back('\n');
  }
  return out;
}

// ---- metrics registry ----------------------------------------------------

TEST(MetricsRegistryTest, CountersGaugesAndLookups) {
  MetricsRegistry reg;
  reg.Counter("a.count").Add(3);
  reg.Counter("a.count").Add(2);
  reg.Gauge("a.depth").Max(7);
  reg.Gauge("a.depth").Max(4);  // lower: ignored
  EXPECT_EQ(reg.CounterValue("a.count"), 5u);
  EXPECT_EQ(reg.GaugeValue("a.depth"), 7);
  EXPECT_EQ(reg.CounterValue("never.touched"), 0u);  // absent-safe
  EXPECT_EQ(reg.GaugeValue("never.touched"), 0);
}

TEST(MetricsRegistryTest, HandleStaysValidAcrossInserts) {
  MetricsRegistry reg;
  MetricCounter& c = reg.Counter("first");
  for (int i = 0; i < 100; ++i) {
    reg.Counter("other." + std::to_string(i));
  }
  c.Add(1);  // node-based storage: the early handle must not have moved
  EXPECT_EQ(reg.CounterValue("first"), 1u);
}

TEST(MetricsRegistryTest, MergeAddsCountersMaxesGaugesAndMergesHistograms) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.Counter("n").Add(2);
  b.Counter("n").Add(3);
  b.Counter("only_b").Add(1);
  a.Gauge("g").Max(10);
  b.Gauge("g").Max(4);
  a.Histogram("h").Record(2048);
  b.Histogram("h").Record(4096);
  a.MergeFrom(b);
  EXPECT_EQ(a.CounterValue("n"), 5u);
  EXPECT_EQ(a.CounterValue("only_b"), 1u);
  EXPECT_EQ(a.GaugeValue("g"), 10);
  EXPECT_EQ(a.Histogram("h").count(), 2u);
  EXPECT_EQ(a.Histogram("h").sum_ns(), 2048u + 4096u);
}

TEST(MetricsRegistryTest, HistogramBucketsAreCumulativeLog2) {
  MetricHistogram h;
  h.Record(1);        // below the first bound (1µs): bucket 0
  h.Record(1 << 20);  // ~1ms
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(MetricHistogram::BucketBoundNs(0), 1024u);
  EXPECT_GE(h.bucket(0), 1u);
}

TEST(MetricsRegistryTest, PrometheusExpositionShape) {
  MetricsRegistry reg;
  reg.Counter("scan.files").Add(4);
  reg.Gauge("sched.queue_depth_max").Max(3);
  reg.Histogram("span.stage.parse").Record(5000);
  const std::string text = reg.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE refscan_scan_files counter"), std::string::npos);
  EXPECT_NE(text.find("refscan_scan_files 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE refscan_sched_queue_depth_max gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE refscan_span_stage_parse_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("refscan_span_stage_parse_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("refscan_span_stage_parse_seconds_count 1"), std::string::npos);
  EXPECT_NE(text.find("refscan_span_stage_parse_seconds_sum"), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusNameMangling) {
  EXPECT_EQ(PrometheusMetricName("scan.files"), "refscan_scan_files");
  EXPECT_EQ(PrometheusMetricName("fault.fired.fs.read"), "refscan_fault_fired_fs_read");
  EXPECT_EQ(PrometheusMetricName("a-b c"), "refscan_a_b_c");
}

// ---- spans and arming ----------------------------------------------------

TEST(TelemetrySpanTest, DisarmedSpansRecordNothing) {
  ASSERT_EQ(CurrentTelemetry(), nullptr);  // nothing armed by other tests
  {
    TelemetrySpan span("stage.parse");
    TelemetrySpan file_span("file.parse", "a.c");
  }
  Telemetry session;
  EXPECT_EQ(session.event_count(), 0u);
}

TEST(TelemetrySpanTest, ArmedSpansLandInTheSessionSortedByNameAndArg) {
  Telemetry session;
  {
    ScopedTelemetry arm(session);
    TelemetrySpan outer("stage.parse");
    { TelemetrySpan b("file.parse", "b.c"); }
    { TelemetrySpan a("file.parse", "a.c"); }
  }
  ASSERT_EQ(session.event_count(), 3u);
  const std::vector<TraceEvent> events = session.SortedEvents();
  EXPECT_STREQ(events[0].name, "file.parse");
  EXPECT_EQ(events[0].arg, "a.c");
  EXPECT_STREQ(events[1].name, "file.parse");
  EXPECT_EQ(events[1].arg, "b.c");
  EXPECT_STREQ(events[2].name, "stage.parse");
  // The session's span histograms saw both names.
  EXPECT_EQ(session.metrics().Histogram("span.file.parse").count(), 2u);
  EXPECT_EQ(session.metrics().Histogram("span.stage.parse").count(), 1u);
}

TEST(TelemetrySpanTest, ScopedArmRestoresThePreviousSession) {
  Telemetry outer_session;
  {
    ScopedTelemetry outer(outer_session);
    {
      Telemetry inner_session;
      ScopedTelemetry inner(inner_session);
      EXPECT_EQ(CurrentTelemetry(), &inner_session);
    }
    EXPECT_EQ(CurrentTelemetry(), &outer_session);
  }
  EXPECT_EQ(CurrentTelemetry(), nullptr);
}

TEST(TelemetrySpanTest, ChromeTraceExportIsValidJson) {
  Telemetry session;
  {
    ScopedTelemetry arm(session);
    TelemetrySpan span("file.parse", "dir/we\"ird\\name\n.c");  // escapes
    TelemetrySpan plain("stage.parse");
  }
  const std::string json = session.TraceToChromeJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

// ---- the scan pipeline under telemetry ----------------------------------

TEST(ScanTelemetryTest, TraceCoversEveryStageAndEveryFile) {
  Telemetry session;
  ScanOptions options;
  options.jobs = 2;
  options.interprocedural = true;  // cover stage.summarize too
  {
    ScopedTelemetry arm(session);
    const ScanResult result = ScanTree(SmallTree(), options);
    EXPECT_FALSE(result.aborted);
  }
  std::map<std::string, std::vector<std::string>> by_name;
  for (const TraceEvent& e : session.SortedEvents()) {
    by_name[e.name].push_back(e.arg);
  }
  for (const char* stage : {"stage.parse", "stage.discover", "stage.summarize", "stage.check",
                            "stage.merge"}) {
    EXPECT_EQ(by_name[stage].size(), 1u) << stage;
  }
  const std::vector<std::string> files = {"drivers/a/alpha.c", "drivers/b/beta.c",
                                          "drivers/c/gamma.c"};
  EXPECT_EQ(by_name["file.parse"], files);
  EXPECT_EQ(by_name["file.check"], files);
  EXPECT_TRUE(IsValidJson(session.TraceToChromeJson()));
}

TEST(ScanTelemetryTest, DiskLoadEmitsLoadSpans) {
  const stdfs::path root = stdfs::temp_directory_path() / "refscan_telemetry_fs_test";
  stdfs::remove_all(root);
  stdfs::create_directories(root);
  std::ofstream(root / "one.c") << "int one;\n";
  std::ofstream(root / "two.c") << "int two;\n";

  Telemetry session;
  {
    ScopedTelemetry arm(session);
    const SourceTree tree = LoadSourceTreeFromDisk(root.string());
    EXPECT_EQ(tree.size(), 2u);
  }
  stdfs::remove_all(root);

  size_t stage_load = 0;
  size_t file_load = 0;
  for (const TraceEvent& e : session.SortedEvents()) {
    stage_load += std::string_view(e.name) == "stage.load" ? 1 : 0;
    file_load += std::string_view(e.name) == "file.load" ? 1 : 0;
  }
  EXPECT_EQ(stage_load, 1u);
  EXPECT_EQ(file_load, 2u);
  EXPECT_EQ(session.metrics().CounterValue("load.files"), 2u);
}

// The tentpole contract: events (names and args) and every non-sched
// counter are identical at --jobs 1 and --jobs 4; only timings may differ.
TEST(ScanTelemetryTest, EventsAndStableMetricsAreIdenticalAcrossJobs) {
  auto run = [](size_t jobs) {
    Telemetry session;
    ScanOptions options;
    options.jobs = jobs;
    {
      ScopedTelemetry arm(session);
      const ScanResult result = ScanTree(SmallTree(), options);
      EXPECT_FALSE(result.aborted);
    }
    std::vector<std::pair<std::string, std::string>> events;
    for (const TraceEvent& e : session.SortedEvents()) {
      events.emplace_back(e.name, e.arg);
    }
    return std::make_pair(std::move(events), StableMetricLines(session.MetricsToPrometheusText()));
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  EXPECT_EQ(serial.first, parallel.first);    // (name, arg) multiset
  EXPECT_EQ(serial.second, parallel.second);  // stable Prometheus lines
  EXPECT_FALSE(serial.first.empty());
  EXPECT_NE(serial.second.find("refscan_scan_files 3"), std::string::npos);
}

TEST(ScanTelemetryTest, ScanReportsAreByteIdenticalWithTelemetryOnAndOff) {
  ScanOptions options;
  options.jobs = 2;
  const ScanResult off = ScanTree(SmallTree(), options);
  Telemetry session;
  ScanResult on;
  {
    ScopedTelemetry arm(session);
    on = ScanTree(SmallTree(), options);
  }
  EXPECT_EQ(ScanResultToJson(off, /*include_stats=*/true),
            ScanResultToJson(on, /*include_stats=*/true));
  EXPECT_GT(session.event_count(), 0u);
}

TEST(ScanTelemetryTest, ScanStatsLandInTheArmedSessionRegistry) {
  Telemetry session;
  ScanOptions options;
  options.jobs = 1;
  ScanResult result;
  {
    ScopedTelemetry arm(session);
    result = ScanTree(SmallTree(), options);
  }
  // The façade and the registry must agree on every field in the table.
  for (const ScanStatsField& f : ScanStatsFields()) {
    EXPECT_EQ(session.metrics().CounterValue(f.metric), result.stats.*f.member) << f.metric;
  }
  EXPECT_EQ(session.metrics().CounterValue("scan.files"), 3u);
  EXPECT_EQ(session.metrics().CounterValue("scan.reports"), result.reports.size());
}

// ---- stats JSON completeness (bugfix regression) -------------------------

TEST(ScanStatsJsonTest, FieldTableCoversTheWholeStruct) {
  // Shape lock: ScanStats is exactly the fields the table lists — adding a
  // member without extending ScanStatsFields() (and thus the JSON, the
  // --stats text and the metrics) trips this.
  EXPECT_EQ(ScanStatsFields().size() * sizeof(size_t), sizeof(ScanStats));
  std::set<std::string> keys;
  std::set<std::string> metrics;
  const auto& fields = ScanStatsFields();
  for (const ScanStatsField& f : fields) {
    keys.insert(f.json_key);
    metrics.insert(f.metric);
  }
  EXPECT_EQ(keys.size(), fields.size());     // no duplicate keys
  EXPECT_EQ(metrics.size(), fields.size());  // no duplicate metrics
  for (size_t i = 0; i < fields.size(); ++i) {  // no member bound twice
    for (size_t j = i + 1; j < fields.size(); ++j) {
      EXPECT_NE(fields[i].member, fields[j].member) << fields[i].json_key;
    }
  }
}

TEST(ScanStatsJsonTest, JsonEmitsEveryField) {
  // Give every field a distinct value through the table itself, then check
  // each key/value pair round-trips into the JSON (the seed bug dropped
  // discovered_apis, discovered_smart_loops, refcounted_structs and
  // summarized_functions).
  ScanResult result;
  size_t v = 10;
  for (const ScanStatsField& f : ScanStatsFields()) {
    result.stats.*f.member = v++;
  }
  const std::string json = ScanResultToJson(result, /*include_stats=*/true);
  EXPECT_TRUE(IsValidJson(json)) << json;
  v = 10;
  for (const ScanStatsField& f : ScanStatsFields()) {
    const std::string needle = "\"" + std::string(f.json_key) + "\": " + std::to_string(v++);
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  for (const char* key :
       {"discovered_apis", "discovered_smart_loops", "refcounted_structs",
        "summarized_functions"}) {
    EXPECT_NE(json.find("\"" + std::string(key) + "\":"), std::string::npos) << key;
  }
}

TEST(ScanStatsJsonTest, RealScanEmitsDiscoveryCounts) {
  ScanOptions options;
  options.jobs = 1;
  const ScanResult result = ScanTree(SmallTree(), options);
  EXPECT_GT(result.stats.discovered_apis, 0u);
  const std::string json = ScanResultToJson(result, /*include_stats=*/true);
  EXPECT_NE(json.find("\"discovered_apis\": " + std::to_string(result.stats.discovered_apis)),
            std::string::npos);
}

// ---- exit codes (bugfix regression) --------------------------------------

TEST(ScanExitCodeTest, CodesAreDisjointAndOrdered) {
  ScanResult clean;
  EXPECT_EQ(ScanExitCodeFor(clean), kExitClean);

  ScanResult with_reports;
  with_reports.reports.emplace_back();
  EXPECT_EQ(ScanExitCodeFor(with_reports), kExitReports);

  ScanResult degraded = std::move(with_reports);
  degraded.failures.emplace_back();  // degraded takes precedence over reports
  EXPECT_EQ(ScanExitCodeFor(degraded), kExitDegraded);

  ScanResult aborted = std::move(degraded);
  aborted.aborted = true;  // hard failure beats everything
  EXPECT_EQ(ScanExitCodeFor(aborted), kExitHardFailure);

  // One report can no longer alias the hard-failure code, nor two reports
  // the degraded one (the seed bug: exit = min(#reports, 125)).
  ScanResult one;
  one.reports.emplace_back();
  ScanResult two;
  two.reports.emplace_back();
  two.reports.emplace_back();
  EXPECT_EQ(ScanExitCodeFor(one), ScanExitCodeFor(two));
  EXPECT_NE(ScanExitCodeFor(one), kExitHardFailure);
  EXPECT_NE(ScanExitCodeFor(two), kExitDegraded);

  const std::set<int> codes = {kExitClean, kExitHardFailure, kExitDegraded, kExitReports,
                               kExitUsage};
  EXPECT_EQ(codes.size(), 5u);  // pairwise distinct
}

// ---- retried-vs-degraded consistency (bugfix regression) -----------------

TEST(RetryAccountingTest, RetriedThenSucceededIsCountedButNotDegraded) {
  ScanOptions options;
  options.jobs = 2;
  options.fault_spec = "parser.parse:once:io";  // every parse retried once, then fine
  const ScanResult result = ScanTree(SmallTree(), options);
  EXPECT_FALSE(result.aborted);
  EXPECT_TRUE(result.failures.empty());  // retried != degraded
  EXPECT_EQ(result.stats.files_retried, 3u);
  EXPECT_EQ(result.stats.files_quarantined, 0u);
  EXPECT_EQ(ScanExitCodeFor(result), kExitReports);  // healthy scan, reports found

  // The three views agree: text counters, JSON stats, JSON degraded array.
  const std::string json = ScanResultToJson(result, /*include_stats=*/true);
  EXPECT_NE(json.find("\"retried\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"quarantined\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"degraded\": []"), std::string::npos);
}

}  // namespace
}  // namespace refscan
