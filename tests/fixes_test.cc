// Tests for patch-suggestion generation (the paper's §6.4 patch workflow).

#include <gtest/gtest.h>

#include <string>

#include "src/checkers/engine.h"
#include "src/checkers/fixes.h"

namespace refscan {
namespace {

struct Scanned {
  SourceTree tree;
  std::vector<BugReport> reports;
};

Scanned Scan(std::string text) {
  Scanned out;
  out.tree.Add("drivers/t/t.c", std::move(text));
  CheckerEngine engine;
  out.reports = engine.Scan(out.tree).reports;
  return out;
}

FixSuggestion FixFor(const Scanned& scanned, int pattern) {
  for (const BugReport& r : scanned.reports) {
    if (r.anti_pattern == pattern) {
      return SuggestFix(r, *scanned.tree.Find(r.file));
    }
  }
  ADD_FAILURE() << "no report with pattern P" << pattern;
  return {};
}

TEST(PairedDecrementTest, KnownPairs) {
  EXPECT_EQ(PairedDecrementFor("pm_runtime_get_sync"), "pm_runtime_put_noidle");
  EXPECT_EQ(PairedDecrementFor("of_find_compatible_node"), "of_node_put");
  EXPECT_EQ(PairedDecrementFor("of_get_parent"), "of_node_put");
  EXPECT_EQ(PairedDecrementFor("for_each_matching_node"), "of_node_put");
  EXPECT_EQ(PairedDecrementFor("bus_find_device"), "put_device");
  EXPECT_EQ(PairedDecrementFor("kobject_init_and_add"), "kobject_put");
  EXPECT_EQ(PairedDecrementFor("mdesc_grab"), "mdesc_release");
  EXPECT_EQ(PairedDecrementFor("usb_serial_get"), "usb_serial_put");
  EXPECT_EQ(PairedDecrementFor("sock_hold"), "sock_put");
  EXPECT_EQ(PairedDecrementFor("dev_hold"), "dev_put");
}

TEST(FixTest, P1InsertsPutBeforeErrorReturn) {
  const Scanned scanned = Scan(
      "static int remove(struct platform_device *pdev)\n"
      "{\n"
      "  int ret = pm_runtime_get_sync(pdev->dev);\n"
      "  if (ret < 0)\n"
      "    return ret;\n"
      "  pm_runtime_put(pdev->dev);\n"
      "  return 0;\n"
      "}\n");
  const FixSuggestion fix = FixFor(scanned, 1);
  ASSERT_TRUE(fix.available);
  EXPECT_NE(fix.diff.find("+    pm_runtime_put_noidle(pdev->dev);"), std::string::npos)
      << fix.diff;
  EXPECT_NE(fix.diff.find("--- a/drivers/t/t.c"), std::string::npos);
  EXPECT_NE(fix.diff.find("@@"), std::string::npos);
}

TEST(FixTest, P2InsertsNullCheck) {
  const Scanned scanned = Scan(
      "static int init(void)\n"
      "{\n"
      "  struct mdesc_handle *hp = mdesc_grab();\n"
      "  use(hp->root);\n"
      "  return 0;\n"
      "}\n");
  const FixSuggestion fix = FixFor(scanned, 2);
  ASSERT_TRUE(fix.available);
  EXPECT_NE(fix.diff.find("+  if (!hp)"), std::string::npos) << fix.diff;
  EXPECT_NE(fix.diff.find("return -ENODEV;"), std::string::npos);
}

TEST(FixTest, P3InsertsPutBeforeBreak) {
  const Scanned scanned = Scan(
      "static int probe(struct platform_device *pdev)\n"
      "{\n"
      "  struct device_node *dn;\n"
      "  for_each_matching_node(dn, ids) {\n"
      "    if (match(dn))\n"
      "      break;\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  const FixSuggestion fix = FixFor(scanned, 3);
  ASSERT_TRUE(fix.available);
  EXPECT_NE(fix.diff.find("of_node_put(dn);"), std::string::npos) << fix.diff;
  // The insertion must come before the break line in the hunk.
  EXPECT_LT(fix.diff.find("of_node_put(dn);"), fix.diff.find("break;"));
}

TEST(FixTest, P4LeakInsertsPutBeforeReturn) {
  const Scanned scanned = Scan(
      "static int setup(void)\n"
      "{\n"
      "  struct device_node *np = of_find_compatible_node(NULL, NULL, \"x\");\n"
      "  if (!np)\n"
      "    return -ENODEV;\n"
      "  use(np);\n"
      "  return 0;\n"
      "}\n");
  const FixSuggestion fix = FixFor(scanned, 4);
  ASSERT_TRUE(fix.available);
  EXPECT_NE(fix.diff.find("of_node_put(np);"), std::string::npos) << fix.diff;
}

TEST(FixTest, P4MissingIncreaseInsertsGet) {
  const Scanned scanned = Scan(
      "static struct device_node *next(struct device_node *from)\n"
      "{\n"
      "  struct device_node *np = of_find_matching_node(from, ids);\n"
      "  return np;\n"
      "}\n");
  const FixSuggestion fix = FixFor(scanned, 4);
  ASSERT_TRUE(fix.available);
  EXPECT_NE(fix.diff.find("+  of_node_get(from);"), std::string::npos) << fix.diff;
}

TEST(FixTest, P7ReplacesKfree) {
  const Scanned scanned = Scan(
      "static void teardown(void)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
      "  if (!np)\n"
      "    return;\n"
      "  kfree(np);\n"
      "}\n");
  const FixSuggestion fix = FixFor(scanned, 7);
  ASSERT_TRUE(fix.available);
  EXPECT_NE(fix.diff.find("-  kfree(np);"), std::string::npos) << fix.diff;
  EXPECT_NE(fix.diff.find("+  of_node_put(np);"), std::string::npos);
}

TEST(FixTest, P8MovesPutAfterLastUse) {
  const Scanned scanned = Scan(
      "void unhash(struct sock *sk)\n"
      "{\n"
      "  sock_put(sk);\n"
      "  account(sk->sk_prot, -1);\n"
      "}\n");
  const FixSuggestion fix = FixFor(scanned, 8);
  ASSERT_TRUE(fix.available);
  EXPECT_NE(fix.diff.find("-  sock_put(sk);"), std::string::npos) << fix.diff;
  // Re-inserted after the use line.
  EXPECT_LT(fix.diff.find("account(sk->sk_prot"), fix.diff.find("+  sock_put(sk);"));
}

TEST(FixTest, P9InsertsGetAtEscape) {
  const Scanned scanned = Scan(
      "static int cache(struct ctx *ctx)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
      "  if (!np)\n"
      "    return -ENODEV;\n"
      "  ctx->node = np;\n"
      "  touch(np);\n"
      "  of_node_put(np);\n"
      "  return 0;\n"
      "}\n");
  const FixSuggestion fix = FixFor(scanned, 9);
  ASSERT_TRUE(fix.available);
  EXPECT_NE(fix.diff.find("+  of_node_get(np);"), std::string::npos) << fix.diff;
}

TEST(FixTest, P6HasNoMechanicalFix) {
  const Scanned scanned = Scan(
      "static int foo_probe(struct platform_device *pdev)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
      "  if (!np)\n"
      "    return -ENODEV;\n"
      "  pdev->priv = np;\n"
      "  return 0;\n"
      "}\n"
      "static int foo_remove(struct platform_device *pdev)\n"
      "{\n"
      "  return 0;\n"
      "}\n"
      "static struct platform_driver d = { .probe = foo_probe, .remove = foo_remove };\n");
  const FixSuggestion fix = FixFor(scanned, 6);
  EXPECT_FALSE(fix.available);
  EXPECT_FALSE(fix.summary.empty());
}

// Property sweep: every fix suggested for the paper-listing bugs renders a
// structurally valid unified hunk.
TEST(FixTest, DiffsAreWellFormed) {
  const Scanned scanned = Scan(
      "static int remove(struct platform_device *pdev)\n"
      "{\n"
      "  int ret = pm_runtime_get_sync(pdev->dev);\n"
      "  if (ret < 0)\n"
      "    return ret;\n"
      "  pm_runtime_put(pdev->dev);\n"
      "  return 0;\n"
      "}\n"
      "static void teardown(void)\n"
      "{\n"
      "  struct device_node *np = of_find_node_by_path(\"/x\");\n"
      "  if (!np)\n"
      "    return;\n"
      "  kfree(np);\n"
      "}\n");
  for (const BugReport& r : scanned.reports) {
    const FixSuggestion fix = SuggestFix(r, *scanned.tree.Find(r.file));
    if (!fix.available) {
      continue;
    }
    EXPECT_TRUE(fix.diff.starts_with("--- a/")) << fix.diff;
    EXPECT_NE(fix.diff.find("+++ b/"), std::string::npos);
    EXPECT_NE(fix.diff.find("@@ -"), std::string::npos);
    // Exactly one added or changed line minimum.
    EXPECT_NE(fix.diff.find("\n+"), std::string::npos);
  }
}

}  // namespace
}  // namespace refscan
