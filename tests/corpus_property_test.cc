// Property sweep over corpus seeds: for ANY generation seed, the scan
// invariants must hold — every planted bug detected, nothing spurious
// beyond the planted FP shapes, impacts consistent. This is the strongest
// guard against generator/checker co-drift.

#include <gtest/gtest.h>

#include <set>

#include "src/checkers/engine.h"
#include "src/corpus/generator.h"

namespace refscan {
namespace {

class CorpusSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorpusSeedTest, ScanInvariantsHoldForAnySeed) {
  CorpusOptions options;
  options.seed = GetParam();
  const Corpus corpus = GenerateKernelCorpus(options);
  ASSERT_EQ(corpus.ground_truth.size(), 351u);

  CheckerEngine engine;
  const ScanResult result = engine.Scan(corpus.tree);

  std::set<std::pair<std::string, std::string>> reported;
  int spurious = 0;
  for (const BugReport& r : result.reports) {
    reported.emplace(r.file, r.function);
    if (corpus.FindBug(r.file, r.function) == nullptr &&
        !corpus.IsPlantedFp(r.file, r.function)) {
      ++spurious;
      if (spurious <= 3) {
        ADD_FAILURE() << "seed " << options.seed << " spurious: " << r.file << " "
                      << r.function << " P" << r.anti_pattern << " " << r.message;
      }
    }
  }
  EXPECT_EQ(spurious, 0);

  int missed = 0;
  for (const PlantedBug& bug : corpus.ground_truth) {
    if (!reported.contains({bug.file, bug.function})) {
      ++missed;
      if (missed <= 3) {
        ADD_FAILURE() << "seed " << options.seed << " missed: " << bug.file << " "
                      << bug.function << " P" << bug.anti_pattern << " api=" << bug.api;
      }
    }
  }
  EXPECT_EQ(missed, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusSeedTest,
                         ::testing::Values(1, 7, 42, 1234, 99991, 20230701, 0xdeadbeef,
                                           0xfeedface));

}  // namespace
}  // namespace refscan
