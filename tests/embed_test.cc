// Tests for the word2vec CBOW implementation and the training-text builder.

#include <gtest/gtest.h>

#include <cmath>

#include "src/embed/corpus_text.h"
#include "src/embed/word2vec.h"
#include "src/histmine/history.h"

namespace refscan {
namespace {

// Tiny synthetic corpus with a crisp co-occurrence structure: {cat, dog}
// share contexts; {bolt, nut} share different contexts.
std::vector<std::vector<std::string>> ToyCorpus() {
  std::vector<std::vector<std::string>> sentences;
  for (int i = 0; i < 300; ++i) {
    sentences.push_back({"the", "cat", "chased", "the", "mouse", "fast"});
    sentences.push_back({"the", "dog", "chased", "the", "mouse", "fast"});
    sentences.push_back({"tighten", "the", "bolt", "with", "a", "wrench"});
    sentences.push_back({"tighten", "the", "nut", "with", "a", "wrench"});
  }
  return sentences;
}

TEST(Word2VecTest, LearnsCoOccurrenceStructure) {
  Word2Vec model;
  EmbedOptions options;
  options.epochs = 3;
  model.Train(ToyCorpus(), options);
  EXPECT_TRUE(model.Contains("cat"));
  EXPECT_TRUE(model.Contains("bolt"));
  const double same_context = model.Similarity("cat", "dog");
  const double cross_context = model.Similarity("cat", "bolt");
  EXPECT_GT(same_context, cross_context);
  EXPECT_GT(model.Similarity("bolt", "nut"), model.Similarity("bolt", "mouse"));
}

TEST(Word2VecTest, SimilarityProperties) {
  Word2Vec model;
  model.Train(ToyCorpus());
  // Symmetry, self-similarity, range.
  EXPECT_DOUBLE_EQ(model.Similarity("cat", "dog"), model.Similarity("dog", "cat"));
  EXPECT_NEAR(model.Similarity("cat", "cat"), 1.0, 1e-9);
  for (const char* a : {"cat", "dog", "bolt", "nut", "mouse"}) {
    for (const char* b : {"cat", "dog", "bolt", "nut", "mouse"}) {
      const double s = model.Similarity(a, b);
      EXPECT_GE(s, -1.0 - 1e-9);
      EXPECT_LE(s, 1.0 + 1e-9);
    }
  }
}

TEST(Word2VecTest, OovYieldsZero) {
  Word2Vec model;
  model.Train(ToyCorpus());
  EXPECT_FALSE(model.Contains("zebra"));
  EXPECT_DOUBLE_EQ(model.Similarity("zebra", "cat"), 0.0);
  EXPECT_TRUE(model.Vector("zebra").empty());
  EXPECT_TRUE(model.MostSimilar("zebra").empty());
}

TEST(Word2VecTest, MinCountDropsRareWords) {
  auto sentences = ToyCorpus();
  sentences.push_back({"hapax", "legomenon"});
  Word2Vec model;
  EmbedOptions options;
  options.min_count = 2;
  options.epochs = 1;
  model.Train(sentences, options);
  EXPECT_FALSE(model.Contains("hapax"));
}

TEST(Word2VecTest, DeterministicTraining) {
  Word2Vec a;
  Word2Vec b;
  a.Train(ToyCorpus());
  b.Train(ToyCorpus());
  EXPECT_DOUBLE_EQ(a.Similarity("cat", "dog"), b.Similarity("cat", "dog"));
  EXPECT_EQ(a.Vector("cat"), b.Vector("cat"));
}

TEST(Word2VecTest, MostSimilarRanksNeighbourFirst) {
  Word2Vec model;
  model.Train(ToyCorpus());
  const auto neighbours = model.MostSimilar("cat", 3);
  ASSERT_FALSE(neighbours.empty());
  // "dog" should be the closest non-identical word.
  EXPECT_EQ(neighbours[0].first, "dog");
}

TEST(Word2VecTest, EmptyCorpusIsSafe) {
  Word2Vec model;
  model.Train({});
  EXPECT_EQ(model.vocab_size(), 0u);
  EXPECT_DOUBLE_EQ(model.Similarity("a", "b"), 0.0);
}

TEST(TokenizeForEmbeddingTest, SplitsAndNormalises) {
  const auto tokens = TokenizeForEmbedding("for_each_child_of_node(np, child)");
  const std::vector<std::string> expected = {"foreach", "child", "of", "node", "np", "child"};
  EXPECT_EQ(tokens, expected);
  const auto api = TokenizeForEmbedding("of_node_get");
  const std::vector<std::string> expected_api = {"of", "node", "get"};
  EXPECT_EQ(api, expected_api);
}

TEST(CommitSentencesTest, CoversTable3Vocabulary) {
  HistoryOptions options;
  options.noise_commits = 3000;
  const History history = GenerateHistory(options);
  const auto sentences = BuildCommitSentences(history);
  EXPECT_GT(sentences.size(), 1000u);

  std::map<std::string, int> counts;
  for (const auto& sentence : sentences) {
    for (const std::string& word : sentence) {
      ++counts[word];
    }
  }
  // Every Table 3 row/column keyword must appear in the training text.
  for (const char* word : {"refcount", "increase", "get", "hold", "grab", "retain", "decrease",
                           "put", "unhold", "drop", "release", "foreach", "find", "parse",
                           "open", "probe", "register"}) {
    EXPECT_GE(counts[word], 2) << word;
  }
}

TEST(CommitSentencesTest, Table3ShapeHolds) {
  // Train on the synthetic history and verify the headline shape of
  // Table 3: "find" is far more similar to "get"/"put" than "foreach" is to
  // "refcount", because find-like APIs co-occur with get/put tokens.
  HistoryOptions options;
  options.noise_commits = 4000;
  const History history = GenerateHistory(options);
  Word2Vec model;
  EmbedOptions embed;
  embed.epochs = 4;
  model.Train(BuildCommitSentences(history), embed);

  ASSERT_TRUE(model.Contains("find"));
  ASSERT_TRUE(model.Contains("get"));
  ASSERT_TRUE(model.Contains("put"));
  ASSERT_TRUE(model.Contains("foreach"));
  ASSERT_TRUE(model.Contains("refcount"));

  const double find_get = model.Similarity("find", "get");
  const double foreach_refcount = model.Similarity("foreach", "refcount");
  EXPECT_GT(find_get, foreach_refcount);
  // "unhold" barely occurs: its similarity to anything should be small.
  if (model.Contains("unhold")) {
    EXPECT_LT(std::abs(model.Similarity("unhold", "find")), 0.9);
  }
}

TEST(SourceSentencesTest, ParagraphGranularity) {
  SourceTree tree;
  tree.Add("a.c", "of_node_get(np);\nof_node_put(np);\n\nsecond_block(x);\n");
  std::vector<std::vector<std::string>> sentences;
  AppendSourceSentences(tree, sentences);
  ASSERT_EQ(sentences.size(), 2u);  // blank line splits the paragraphs
  const std::vector<std::string> expected = {"of", "node", "get", "np",
                                             "of", "node", "put", "np"};
  EXPECT_EQ(sentences[0], expected);
  const std::vector<std::string> expected2 = {"second", "block", "x"};
  EXPECT_EQ(sentences[1], expected2);
}

}  // namespace
}  // namespace refscan
