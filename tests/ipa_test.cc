// Interprocedural summary tests: call-graph construction, bottom-up
// summary classification, KB injection, the recursive-SCC extra iteration,
// and the end-to-end corpus acceptance for wrapper-chain bugs.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/ast/parser.h"
#include "src/checkers/engine.h"
#include "src/corpus/generator.h"
#include "src/ipa/summary.h"
#include "src/support/threadpool.h"

namespace refscan {
namespace {

// Owns the files and parsed units for a set of in-memory sources.
struct Parsed {
  std::vector<SourceFile> files;
  std::vector<TranslationUnit> units;
  std::vector<const TranslationUnit*> ptrs;
};

Parsed ParseAll(std::vector<std::pair<std::string, std::string>> sources) {
  Parsed parsed;
  for (auto& [path, text] : sources) {
    parsed.files.emplace_back(path, std::move(text));
  }
  for (const SourceFile& file : parsed.files) {
    parsed.units.push_back(ParseFile(file));
  }
  for (const TranslationUnit& unit : parsed.units) {
    parsed.ptrs.push_back(&unit);
  }
  return parsed;
}

SummaryResult Summarize(const Parsed& parsed, KnowledgeBase& kb, size_t jobs = 1) {
  ThreadPool pool(jobs);
  return ComputeSummaries(parsed.ptrs, kb, SummaryOptions{}, pool);
}

const FunctionSummary* FindSummary(const SummaryResult& result, std::string_view name) {
  for (const FunctionSummary& s : result.summaries) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

// ------------------------------------------------------------- call graph

TEST(CallGraphTest, DirectEdgesAndLevels) {
  const Parsed parsed = ParseAll({{"a.c",
                                   "static void leaf(int x) { }\n"
                                   "static void mid(int x) { leaf(x); }\n"
                                   "static void top(int x) { mid(x); leaf(x); }\n"}});
  const CallGraph g = BuildCallGraph(parsed.ptrs);
  ASSERT_EQ(g.nodes.size(), 3u);
  EXPECT_EQ(g.direct_edges, 3u);
  EXPECT_EQ(g.indirect_edges, 0u);

  const int leaf = g.Find("leaf");
  const int mid = g.Find("mid");
  const int top = g.Find("top");
  ASSERT_GE(leaf, 0);
  ASSERT_GE(mid, 0);
  ASSERT_GE(top, 0);
  EXPECT_EQ(g.nodes[leaf].level, 0);
  EXPECT_EQ(g.nodes[mid].level, 1);
  EXPECT_EQ(g.nodes[top].level, 2);
  EXPECT_EQ(g.nodes[top].callees.size(), 2u);
  EXPECT_EQ(g.Find("missing"), -1);
}

TEST(CallGraphTest, OpsStructFunctionPointerEdges) {
  const Parsed parsed = ParseAll(
      {{"a.c",
        "static int dev_probe(struct platform_device *pdev) { return 0; }\n"
        "static int dev_remove(struct platform_device *pdev) { return 0; }\n"
        "static struct platform_driver dev_driver = {\n"
        "\t.probe = dev_probe,\n"
        "\t.remove = dev_remove,\n"
        "};\n"
        "static int launch(struct platform_driver *drv, struct platform_device *pdev)\n"
        "{\n"
        "\treturn drv->probe(pdev);\n"
        "}\n"}});
  const CallGraph g = BuildCallGraph(parsed.ptrs);
  ASSERT_EQ(g.nodes.size(), 3u);
  EXPECT_EQ(g.indirect_edges, 1u);
  const int launch = g.Find("launch");
  const int probe = g.Find("dev_probe");
  ASSERT_GE(launch, 0);
  ASSERT_GE(probe, 0);
  const auto& callees = g.nodes[launch].callees;
  EXPECT_TRUE(std::find(callees.begin(), callees.end(), probe) != callees.end());
  EXPECT_GT(g.nodes[launch].level, g.nodes[probe].level);
}

TEST(CallGraphTest, MutualRecursionFormsOneScc) {
  const Parsed parsed = ParseAll({{"a.c",
                                   "static int ping(int n);\n"
                                   "static int pong(int n) { return ping(n - 1); }\n"
                                   "static int ping(int n) { return pong(n - 1); }\n"}});
  const CallGraph g = BuildCallGraph(parsed.ptrs);
  ASSERT_EQ(g.nodes.size(), 2u);
  ASSERT_EQ(g.sccs.size(), 1u);
  EXPECT_EQ(g.sccs[0].size(), 2u);
  EXPECT_EQ(g.nodes[0].scc, g.nodes[1].scc);
}

TEST(CallGraphTest, FirstDefinitionWins) {
  const Parsed parsed = ParseAll({{"a.c", "static int helper(void) { return 1; }\n"},
                                  {"b.c", "static int helper(void) { return 2; }\n"}});
  const CallGraph g = BuildCallGraph(parsed.ptrs);
  ASSERT_EQ(g.nodes.size(), 1u);
  EXPECT_EQ(g.nodes[0].unit->path, "a.c");
}

// ------------------------------------------------------- summary lattice

TEST(SummaryTest, DecreaseWrapperChainRegisters) {
  const Parsed parsed = ParseAll({{"a.c",
                                   "static void drop2(struct device_node *np)\n"
                                   "{\n"
                                   "\tof_node_put(np);\n"
                                   "}\n"
                                   "static void drop1(struct device_node *np)\n"
                                   "{\n"
                                   "\tdrop2(np);\n"
                                   "}\n"}});
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const SummaryResult result = Summarize(parsed, kb);
  EXPECT_EQ(result.registered_apis, 2u);
  const RefApiInfo* outer = kb.FindApi("drop1");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->direction, RefDirection::kDecrease);
  EXPECT_EQ(outer->object_param, 0);
  EXPECT_TRUE(outer->discovered);
}

TEST(SummaryTest, DecAndTestWrapperInheritsTestsZero) {
  // `return refcount_dec_and_test(...)` relays the zero-test to the
  // caller, so the wrapper registers with dec_and_test semantics and P11
  // can fire through it.
  const Parsed parsed = ParseAll({{"a.c",
                                   "static int my_obj_put(struct obj *o)\n"
                                   "{\n"
                                   "\treturn refcount_dec_and_test(&o->refs);\n"
                                   "}\n"}});
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const SummaryResult result = Summarize(parsed, kb);
  const FunctionSummary* s = FindSummary(result, "my_obj_put");
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->tests_zero);
  const RefApiInfo* api = kb.FindApi("my_obj_put");
  ASSERT_NE(api, nullptr);
  EXPECT_EQ(api->direction, RefDirection::kDecrease);
  EXPECT_TRUE(api->tests_zero);
}

TEST(SummaryTest, PlainDecreaseWrapperDoesNotTestZero) {
  const Parsed parsed = ParseAll({{"a.c",
                                   "static void my_obj_drop(struct obj *o)\n"
                                   "{\n"
                                   "\tkref_put(&o->ref, obj_release);\n"
                                   "}\n"}});
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const SummaryResult result = Summarize(parsed, kb);
  const FunctionSummary* s = FindSummary(result, "my_obj_drop");
  ASSERT_NE(s, nullptr);
  EXPECT_FALSE(s->tests_zero);
  const RefApiInfo* api = kb.FindApi("my_obj_drop");
  ASSERT_NE(api, nullptr);
  EXPECT_FALSE(api->tests_zero);
}

TEST(SummaryTest, FindWrapperChainRegistersHiddenIncrease) {
  const Parsed parsed = ParseAll({{"a.c",
                                   "static struct device_node *scan2(void)\n"
                                   "{\n"
                                   "\tstruct device_node *np = of_find_node_by_path(\"/x\");\n"
                                   "\n"
                                   "\treturn np;\n"
                                   "}\n"
                                   "static struct device_node *scan1(void)\n"
                                   "{\n"
                                   "\tstruct device_node *np = scan2();\n"
                                   "\n"
                                   "\treturn np;\n"
                                   "}\n"}});
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const SummaryResult result = Summarize(parsed, kb);
  const RefApiInfo* outer = kb.FindApi("scan1");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->direction, RefDirection::kIncrease);
  EXPECT_TRUE(outer->returns_object);
  EXPECT_TRUE(outer->hidden);  // "scan" is not a refcounting word
  const FunctionSummary* s = FindSummary(result, "scan1");
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->returns_acquired);
}

TEST(SummaryTest, ErrorIncrementPropagatesThroughWrappers) {
  // The 𝒢_E deviation: pm_runtime_get_sync() leaves the usage count raised
  // even when it fails. A wrapper forwarding the return value inherits the
  // deviation — the textual discovery pass cannot see this (the wrapper
  // never returns a literal error code).
  const Parsed parsed = ParseAll({{"a.c",
                                   "static int w2(struct device *dev)\n"
                                   "{\n"
                                   "\treturn pm_runtime_get_sync(dev);\n"
                                   "}\n"
                                   "static int w1(struct device *dev)\n"
                                   "{\n"
                                   "\treturn w2(dev);\n"
                                   "}\n"}});
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  Summarize(parsed, kb);
  const RefApiInfo* outer = kb.FindApi("w1");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->direction, RefDirection::kIncrease);
  EXPECT_EQ(outer->object_param, 0);
  EXPECT_TRUE(outer->returns_error);
}

TEST(SummaryTest, ExplicitNullReturnSetsMayReturnNull) {
  const Parsed parsed = ParseAll({{"a.c",
                                   "static struct device_node *maybe(void)\n"
                                   "{\n"
                                   "\tstruct device_node *np = of_find_node_by_path(\"/x\");\n"
                                   "\n"
                                   "\tif (!np)\n"
                                   "\t\treturn NULL;\n"
                                   "\treturn np;\n"
                                   "}\n"}});
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  Summarize(parsed, kb);
  const RefApiInfo* api = kb.FindApi("maybe");
  ASSERT_NE(api, nullptr);
  EXPECT_TRUE(api->may_return_null);
}

TEST(SummaryTest, ParamDerefAndSinkFactsRegister) {
  const Parsed parsed = ParseAll(
      {{"a.c",
        "static void touch(struct sock *sk)\n"
        "{\n"
        "\tsock_prot_inuse_add(sock_net(sk), sk->sk_prot, -1);\n"
        "}\n"
        "static void stash(struct ctx *c, struct device_node *np)\n"
        "{\n"
        "\tc->node = np;\n"
        "}\n"}});
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const SummaryResult result = Summarize(parsed, kb);
  EXPECT_EQ(result.registered_apis, 0u);
  const std::vector<int>* derefs = kb.FindParamDerefs("touch");
  ASSERT_NE(derefs, nullptr);
  EXPECT_EQ(*derefs, std::vector<int>{0});
  EXPECT_EQ(kb.FindOwnershipSink("stash"), 1);
}

TEST(SummaryTest, BuiltInEntriesAreNeverModified) {
  // A local function shadowing a catalogue API name must not overwrite the
  // catalogue entry, whatever its body does.
  const Parsed parsed = ParseAll({{"a.c",
                                   "static void of_node_put(struct device_node *np)\n"
                                   "{\n"
                                   "\tof_node_get(np);\n"
                                   "}\n"}});
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const SummaryResult result = Summarize(parsed, kb);
  EXPECT_EQ(result.registered_apis, 0u);
  EXPECT_EQ(result.upgraded_apis, 0u);
  const RefApiInfo* api = kb.FindApi("of_node_put");
  ASSERT_NE(api, nullptr);
  EXPECT_EQ(api->direction, RefDirection::kDecrease);
  EXPECT_FALSE(api->discovered);
}

TEST(SummaryTest, RecursiveSccSecondIterationReachesFixpoint) {
  // fput and gput form a cycle. In the first iteration both are summarised
  // against a KB that knows neither, so only fput (whose own body holds the
  // put) registers; the second iteration re-summarises the SCC against the
  // updated KB and registers gput too.
  const Parsed parsed = ParseAll({{"a.c",
                                   "static void gput(struct device_node *np);\n"
                                   "static void fput(struct device_node *np)\n"
                                   "{\n"
                                   "\tof_node_put(np);\n"
                                   "\tgput(np);\n"
                                   "}\n"
                                   "static void gput(struct device_node *np)\n"
                                   "{\n"
                                   "\tfput(np);\n"
                                   "}\n"}});
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const SummaryResult result = Summarize(parsed, kb);
  ASSERT_EQ(result.graph.sccs.size(), 1u);
  EXPECT_EQ(result.graph.sccs[0].size(), 2u);
  const RefApiInfo* outer = kb.FindApi("gput");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->direction, RefDirection::kDecrease);
  EXPECT_EQ(outer->object_param, 0);
}

TEST(SummaryTest, InconsistentDeltasAreNotTrusted) {
  // A conditional put nets -1 on one path and 0 on another: no consistent
  // delta, so nothing may be registered.
  const Parsed parsed = ParseAll({{"a.c",
                                   "static void maybe_put(struct device_node *np, int c)\n"
                                   "{\n"
                                   "\tif (c)\n"
                                   "\t\tof_node_put(np);\n"
                                   "}\n"}});
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  const SummaryResult result = Summarize(parsed, kb);
  EXPECT_EQ(result.registered_apis, 0u);
  EXPECT_EQ(kb.FindApi("maybe_put"), nullptr);
}

TEST(SummaryTest, DumpsAreDeterministicAcrossJobs) {
  const Corpus& corpus = GenerateKernelCorpus();
  std::vector<std::pair<std::string, std::string>> sources;
  for (const auto& [path, file] : corpus.tree.files()) {
    sources.emplace_back(path, std::string(file.text()));
  }
  const Parsed parsed = ParseAll(std::move(sources));
  KnowledgeBase kb1 = KnowledgeBase::BuiltIn();
  KnowledgeBase kb4 = KnowledgeBase::BuiltIn();
  const SummaryResult serial = Summarize(parsed, kb1, 1);
  const SummaryResult wide = Summarize(parsed, kb4, 4);
  EXPECT_EQ(SummariesToJson(serial), SummariesToJson(wide));
  EXPECT_EQ(SummariesToText(serial), SummariesToText(wide));
}

// -------------------------------------------------- corpus acceptance

ScanResult ScanCorpus(const SourceTree& tree, bool interprocedural, size_t jobs = 1) {
  ScanOptions options;
  options.jobs = jobs;
  options.interprocedural = interprocedural;
  CheckerEngine engine(KnowledgeBase::BuiltIn(), options);
  return engine.Scan(tree);
}

const Corpus& WrapperCorpus() {
  static const Corpus* corpus = [] {
    CorpusOptions options;
    options.wrapper_chain_depths = {2, 3};
    return new Corpus(GenerateKernelCorpus(options));
  }();
  return *corpus;
}

TEST(IpaCorpusTest, SeedCorpusReportsUnchangedBySummaries) {
  // On the base corpus every refcounting helper is already classified by
  // two-round discovery, so turning summaries on must not move a single
  // report — the stage only adds facts the checkers would otherwise miss.
  const Corpus& corpus = GenerateKernelCorpus();
  const ScanResult off = ScanCorpus(corpus.tree, false);
  const ScanResult on = ScanCorpus(corpus.tree, true);
  EXPECT_GT(on.stats.summarized_functions, 0u);
  EXPECT_EQ(off.stats.summarized_functions, 0u);
  EXPECT_EQ(ReportsToJson(off.reports), ReportsToJson(on.reports));
}

TEST(IpaCorpusTest, WrapperChainBugsDetectedWithSummaries) {
  const Corpus& corpus = WrapperCorpus();
  const ScanResult result = ScanCorpus(corpus.tree, true);

  size_t wrapper_bugs = 0;
  size_t detected = 0;
  for (const PlantedBug& bug : corpus.ground_truth) {
    if (bug.wrapper_depth < 2) {
      continue;
    }
    ++wrapper_bugs;
    for (const BugReport& r : result.reports) {
      if (r.file == bug.file && r.function == bug.function &&
          r.anti_pattern == bug.anti_pattern) {
        ++detected;
        break;
      }
    }
  }
  // 54 modules x 2 depths x {P1, P4, P5, P8, P9}.
  EXPECT_GT(wrapper_bugs, 0u);
  EXPECT_GE(detected * 100, wrapper_bugs * 90) << detected << "/" << wrapper_bugs;
}

TEST(IpaCorpusTest, NoNewFalsePositivesOnWrapperCorpus) {
  // Every report must map to planted ground truth or a planted known-FP
  // shape (the lpfc Listing-5 regression) — the wrapper helpers themselves
  // and the clean functions must stay silent with summaries enabled.
  const Corpus& corpus = WrapperCorpus();
  const ScanResult result = ScanCorpus(corpus.tree, true);
  for (const BugReport& r : result.reports) {
    const bool planted =
        corpus.FindBug(r.file, r.function) != nullptr || corpus.IsPlantedFp(r.file, r.function);
    EXPECT_TRUE(planted) << r.file << ":" << r.line << " " << r.function << " P"
                         << r.anti_pattern << " " << r.message;
    if (!planted) {
      break;
    }
  }
}

TEST(IpaCorpusTest, DeepChainsNeedSummariesAndG_EIsSummaryOnly) {
  const Corpus& corpus = WrapperCorpus();
  const ScanResult off = ScanCorpus(corpus.tree, false);

  auto detected = [&off](const PlantedBug& bug) {
    for (const BugReport& r : off.reports) {
      if (r.file == bug.file && r.function == bug.function &&
          r.anti_pattern == bug.anti_pattern) {
        return true;
      }
    }
    return false;
  };
  for (const PlantedBug& bug : corpus.ground_truth) {
    // P1 needs the 𝒢_E flag and P8 the helper-deref fact: both are summary
    // facts, invisible to textual discovery at every depth. Depth-3 chains
    // outrun the two discovery rounds for every pattern.
    if (bug.wrapper_depth >= 3 || (bug.wrapper_depth >= 2 && (bug.anti_pattern == 1 ||
                                                              bug.anti_pattern == 8))) {
      EXPECT_FALSE(detected(bug)) << bug.file << " " << bug.function;
    }
  }
}

TEST(IpaCorpusTest, InterproceduralScanDeterministicAcrossJobs) {
  const Corpus& corpus = WrapperCorpus();
  const ScanResult serial = ScanCorpus(corpus.tree, true, 1);
  const ScanResult wide = ScanCorpus(corpus.tree, true, 4);
  EXPECT_EQ(serial.stats.summarized_functions, wide.stats.summarized_functions);
  EXPECT_EQ(serial.stats.discovered_apis, wide.stats.discovered_apis);
  EXPECT_EQ(ReportsToJson(serial.reports), ReportsToJson(wide.reports));
}

}  // namespace
}  // namespace refscan
