#include "src/histmine/gitlog.h"

#include <cctype>
#include <set>

#include "src/support/strings.h"

namespace refscan {

namespace {

// Block layout:
//   commit <id>
//   Release: <name>
//   File: <path>
//   Subject: <one line>
//   Diff: [+|-|~]<api>[!] ...          (+add -delete ~move; '!' = cross-function pairing)
//   <blank>
//   <body lines, four-space indented>
//   <blank>

char OpChar(DiffOp op) {
  switch (op) {
    case DiffOp::kAdd:
      return '+';
    case DiffOp::kDelete:
      return '-';
    case DiffOp::kMove:
      return '~';
  }
  return '?';
}

int ReleaseIndexByName(std::string_view name) {
  const auto& timeline = ReleaseTimeline();
  for (size_t i = 0; i < timeline.size(); ++i) {
    if (timeline[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace

std::string SerializeGitLog(const History& history) {
  std::string out;
  out.reserve(history.commits.size() * 200);

  std::set<std::string> emitted;
  for (const Commit& commit : history.commits) {
    emitted.insert(commit.id);
    out += StrFormat("commit %s\n", commit.id.c_str());
    out += StrFormat("Release: %s\n",
                     ReleaseTimeline()[static_cast<size_t>(commit.release)].name.c_str());
    out += StrFormat("File: %s\n", commit.file.c_str());
    out += StrFormat("Subject: %s\n", commit.subject.c_str());
    out += "Diff:";
    for (const DiffEntry& entry : commit.diff) {
      out += StrFormat(" %c%s%s", OpChar(entry.op), entry.api.c_str(),
                       entry.same_function ? "" : "!");
    }
    out += "\n\n";
    for (std::string_view line : Split(commit.body, '\n')) {
      out += StrFormat("    %s\n", std::string(line).c_str());
    }
    out += "\n";
  }

  // Stub entries for referenced-but-absent commits (bug introducers), so a
  // re-parsed history can still resolve Fixes: targets to releases.
  for (const auto& [id, release] : history.commit_release) {
    if (emitted.contains(id)) {
      continue;
    }
    out += StrFormat("commit %s\n", id.c_str());
    out += StrFormat("Release: %s\n",
                     ReleaseTimeline()[static_cast<size_t>(release)].name.c_str());
    out += "File: -\nSubject: (earlier change)\nDiff:\n\n\n";
  }
  return out;
}

History ParseGitLog(std::string_view text) {
  History history;
  Commit current;
  bool in_commit = false;
  bool is_stub = false;
  std::string body;

  auto flush = [&]() {
    if (!in_commit) {
      return;
    }
    while (!body.empty() && body.back() == '\n') {
      body.pop_back();
    }
    current.body = body;
    // Recover the Fixes: tag from the body.
    const size_t pos = current.body.find("Fixes: ");
    if (pos != std::string::npos) {
      const size_t start = pos + 7;
      size_t end = start;
      while (end < current.body.size() &&
             std::isxdigit(static_cast<unsigned char>(current.body[end])) != 0) {
        ++end;
      }
      current.fixes_tag = current.body.substr(start, end - start);
    }
    history.commit_release[current.id] = current.release;
    if (!is_stub) {
      history.commits.push_back(std::move(current));
    }
    current = Commit();
    body.clear();
    in_commit = false;
    is_stub = false;
  };

  for (std::string_view raw_line : Split(text, '\n')) {
    if (raw_line.starts_with("commit ")) {
      flush();
      in_commit = true;
      current.id = std::string(Trim(raw_line.substr(7)));
      continue;
    }
    if (!in_commit) {
      continue;
    }
    if (raw_line.starts_with("Release: ")) {
      const int index = ReleaseIndexByName(Trim(raw_line.substr(9)));
      if (index >= 0) {
        current.release = index;
        current.year = ReleaseTimeline()[static_cast<size_t>(index)].year;
      }
      continue;
    }
    if (raw_line.starts_with("File: ")) {
      const std::string_view path = Trim(raw_line.substr(6));
      is_stub = path == "-";
      current.file = std::string(path);
      continue;
    }
    if (raw_line.starts_with("Subject: ")) {
      current.subject = std::string(raw_line.substr(9));
      continue;
    }
    if (raw_line.starts_with("Diff:")) {
      for (std::string_view token : SplitWhitespace(raw_line.substr(5))) {
        if (token.empty()) {
          continue;
        }
        DiffEntry entry;
        switch (token.front()) {
          case '+':
            entry.op = DiffOp::kAdd;
            break;
          case '-':
            entry.op = DiffOp::kDelete;
            break;
          case '~':
            entry.op = DiffOp::kMove;
            break;
          default:
            continue;
        }
        token.remove_prefix(1);
        if (token.ends_with("!")) {
          entry.same_function = false;
          token.remove_suffix(1);
        }
        entry.api = std::string(token);
        current.diff.push_back(std::move(entry));
      }
      continue;
    }
    if (raw_line.starts_with("    ")) {
      body += std::string(raw_line.substr(4));
      body += "\n";
      continue;
    }
    // Blank separators are ignored.
  }
  flush();
  return history;
}

}  // namespace refscan
