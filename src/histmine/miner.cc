#include "src/histmine/miner.h"

#include <algorithm>
#include <set>

#include "src/support/source.h"
#include "src/support/strings.h"
#include "src/support/threadpool.h"

namespace refscan {

bool Level1KeywordMatch(std::string_view api_name) {
  for (const std::string& word : IncreaseKeywords()) {
    if (ContainsIdentifierWord(api_name, word)) {
      return true;
    }
  }
  for (const std::string& word : DecreaseKeywords()) {
    if (ContainsIdentifierWord(api_name, word)) {
      return true;
    }
  }
  return false;
}

namespace {

// The refcounting APIs a commit's diff touches, split by direction.
struct DiffApis {
  std::vector<const DiffEntry*> inc;
  std::vector<const DiffEntry*> dec;
};

DiffApis RefcountApisInDiff(const Commit& commit, const KnowledgeBase& kb) {
  DiffApis apis;
  for (const DiffEntry& entry : commit.diff) {
    const RefApiInfo* api = kb.FindApi(entry.api);
    if (api == nullptr) {
      continue;
    }
    if (api->direction == RefDirection::kIncrease) {
      apis.inc.push_back(&entry);
    } else {
      apis.dec.push_back(&entry);
    }
  }
  return apis;
}

bool MessageContains(const Commit& commit, std::string_view needle) {
  const std::string lower_subject = ToLower(commit.subject);
  const std::string lower_body = ToLower(commit.body);
  return lower_subject.find(needle) != std::string::npos ||
         lower_body.find(needle) != std::string::npos;
}

}  // namespace

MinedBug ClassifyBugCommit(const Commit& commit, const History& history,
                           const KnowledgeBase& kb) {
  MinedBug bug;
  bug.commit = &commit;
  bug.subsystem = SplitKernelPath(commit.file).subsystem;
  bug.fixed_release = commit.release;

  if (!commit.fixes_tag.empty()) {
    auto it = history.commit_release.find(commit.fixes_tag);
    if (it != history.commit_release.end()) {
      bug.introduced_release = it->second;
    }
  }

  // Security impact from the patch description keywords (§4.1).
  const bool mentions_uaf = MessageContains(commit, "use-after-free") ||
                            MessageContains(commit, "uaf") ||
                            MessageContains(commit, "premature free");
  const bool mentions_leak = MessageContains(commit, "leak");
  bug.is_leak = mentions_leak || !mentions_uaf;

  // Taxonomy from the diff shape (§4.1's classification).
  const DiffApis apis = RefcountApisInDiff(commit, kb);
  const bool adds_dec = !apis.dec.empty() &&
                        std::any_of(apis.dec.begin(), apis.dec.end(),
                                    [](const DiffEntry* e) { return e->op == DiffOp::kAdd; });
  const bool adds_inc = !apis.inc.empty() &&
                        std::any_of(apis.inc.begin(), apis.inc.end(),
                                    [](const DiffEntry* e) { return e->op == DiffOp::kAdd; });
  const bool moves_dec = std::any_of(apis.dec.begin(), apis.dec.end(),
                                     [](const DiffEntry* e) { return e->op == DiffOp::kMove; });
  const bool moves_inc = std::any_of(apis.inc.begin(), apis.inc.end(),
                                     [](const DiffEntry* e) { return e->op == DiffOp::kMove; });

  if (adds_dec && adds_inc) {
    bug.kind = HistBugKind::kUafOther;
  } else if (moves_dec) {
    bug.kind = HistBugKind::kMisplacedDec;
    bug.is_uad = MessageContains(commit, "after dropping the reference");
  } else if (moves_inc) {
    bug.kind = HistBugKind::kMisplacedInc;
  } else if (adds_dec) {
    if (MessageContains(commit, "kfree")) {
      bug.kind = HistBugKind::kLeakOther;  // direct-free style fix
    } else {
      const bool same_function = apis.dec.front()->same_function;
      bug.kind = same_function ? HistBugKind::kMissingDecIntra : HistBugKind::kMissingDecInter;
    }
  } else if (adds_inc) {
    const bool same_function = apis.inc.front()->same_function;
    bug.kind = same_function ? HistBugKind::kMissingIncIntra : HistBugKind::kMissingIncInter;
  } else {
    // Deleted-only refcounting APIs: treat as "others" by impact.
    bug.kind = bug.is_leak ? HistBugKind::kLeakOther : HistBugKind::kUafOther;
  }
  return bug;
}

MiningResult MineRefcountBugs(const History& history, const KnowledgeBase& kb, size_t jobs) {
  MiningResult result;
  result.total_commits = history.commits.size();

  ThreadPool pool(jobs);

  // Level 1: keyword filter over diff API names. The per-commit verdicts
  // are computed in parallel and collected serially in commit order, so the
  // candidate list is identical at any thread count.
  const std::vector<char> level1_hits =
      ParallelMap(pool, history.commits.size(), [&](size_t i) -> char {
        for (const DiffEntry& entry : history.commits[i].diff) {
          if (Level1KeywordMatch(entry.api)) {
            return 1;
          }
        }
        return 0;
      });
  for (size_t i = 0; i < history.commits.size(); ++i) {
    if (level1_hits[i] != 0) {
      result.level1_candidates.push_back(&history.commits[i]);
    }
  }

  // Level 2: the touched API must be a confirmed refcounting API. The KB is
  // read-only here, so concurrent FindApi lookups are safe.
  const std::vector<char> level2_hits =
      ParallelMap(pool, result.level1_candidates.size(), [&](size_t i) -> char {
        for (const DiffEntry& entry : result.level1_candidates[i]->diff) {
          if (kb.FindApi(entry.api) != nullptr) {
            return 1;
          }
        }
        return 0;
      });
  for (size_t i = 0; i < result.level1_candidates.size(); ++i) {
    if (level2_hits[i] != 0) {
      result.level2_candidates.push_back(result.level1_candidates[i]);
    }
  }

  // FP removal: a candidate named by another commit's Fixes: tag was itself
  // a wrong fix — drop it.
  std::set<std::string> fixes_targets;
  for (const Commit& commit : history.commits) {
    if (!commit.fixes_tag.empty()) {
      fixes_targets.insert(commit.fixes_tag);
    }
  }
  std::vector<const Commit*> surviving;
  for (const Commit* commit : result.level2_candidates) {
    if (fixes_targets.contains(commit->id)) {
      result.removed_as_wrong_fix.push_back(commit);
      continue;
    }
    surviving.push_back(commit);
  }

  // Classification is pure per commit; fan it out and keep commit order.
  result.dataset = ParallelMap(pool, surviving.size(), [&](size_t i) {
    return ClassifyBugCommit(*surviving[i], history, kb);
  });
  return result;
}

}  // namespace refscan
