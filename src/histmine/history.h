// Kernel commit-history model and synthesiser.
//
// Substitutes for the ~1M-commit Linux git history the paper mined (§3.1).
// The generator synthesises a commit stream over the real release timeline
// (v2.6.12/2005 → v6.1/2022) containing:
//
//   * 1,033 refcounting bug-fix commits whose attributes (bug kind,
//     security impact, subsystem, fixed release, Fixes-tag lifetime) are
//     drawn to match the paper's reported marginals — Table 2, Figures 1-3,
//     Findings 1-5;
//   * 780 keyword decoys: commits whose diffs touch get/put-named APIs that
//     are *not* refcounting APIs (they pass the level-1 keyword filter and
//     are rejected by the level-2 implementation check);
//   * 12 wrong-fix commits, each later reverted by a commit carrying a
//     `Fixes:` tag naming it (the commit-dcb4b8ad case, removed by the
//     miner's FP filter) — 1,033 + 780 + 12 = 1,825 level-1 candidates;
//   * plain noise commits with no refcounting keywords at all.
//
// The miner (miner.h) then *recovers* the dataset exactly the way the paper
// describes; nothing downstream reads the ground truth except the tests.

#ifndef REFSCAN_HISTMINE_HISTORY_H_
#define REFSCAN_HISTMINE_HISTORY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace refscan {

// One kernel release in the timeline (major series boundaries matter for
// Figure 3's cross-release spans).
struct KernelRelease {
  std::string name;  // "v2.6.12", "v4.9", ...
  int year = 0;
  int major = 0;  // 2 (v2.6.x), 3, 4, 5, 6
  int minor = 0;
};

// The release timeline 2005..2022 (91 mainline releases; the paper's "753
// versions" count includes stable point releases of these mainlines).
const std::vector<KernelRelease>& ReleaseTimeline();

// Fractional release date (year + in-year fraction); lifetime arithmetic
// uses differences of these.
double ReleaseTime(const KernelRelease& release);

// Number of versions the dataset covers including stable point releases.
int TotalVersionCount();

// Index of the first release of a major series (-1 if absent).
int FirstReleaseOfMajor(int major);

enum class DiffOp : uint8_t { kAdd, kDelete, kMove };

struct DiffEntry {
  DiffOp op = DiffOp::kAdd;
  std::string api;           // API name touched by the patch
  bool same_function = true; // pairing added in the same function as its peer
};

struct Commit {
  std::string id;  // 12 hex chars
  int release = 0; // index into ReleaseTimeline()
  int year = 0;
  std::string file;     // "drivers/usb/serial/console.c"
  std::string subject;  // first line
  std::string body;     // free text (keywords mined from subject+body)
  std::vector<DiffEntry> diff;
  std::string fixes_tag;  // target commit id, or ""
};

// Ground-truth bug kinds, matching Table 2's taxonomy.
enum class HistBugKind : uint8_t {
  kMissingDecIntra,  // 1.1 intra-unpaired (57.1%)
  kMissingDecInter,  // 1.2 inter-unpaired (10.1%)
  kLeakOther,        // 2. others (4.5%)
  kMisplacedDec,     // 3.1 misplacing-decreasing (11.5%, UAD subset 9.1%)
  kMisplacedInc,     // 3.2 misplacing-increasing (2.4%)
  kMissingIncIntra,  // 4(5).1 missing-increasing intra (5.1%)
  kMissingIncInter,  // 4(5).2 missing-increasing inter (2.1%)
  kUafOther,         // 5. others (7.2% - missing-inc share)
};

struct HistBug {
  HistBugKind kind = HistBugKind::kMissingDecIntra;
  bool is_uad = false;     // use-after-decrease subset of kMisplacedDec
  bool is_leak = true;     // security impact (vs UAF)
  std::string subsystem;
  std::string fix_commit;  // id of the fixing commit
  int fixed_release = 0;
  int introduced_release = -1;  // -1: no Fixes tag (466 of 1,033)
};

struct HistoryOptions {
  uint64_t seed = 20051117;
  // Plain-noise commits in addition to the calibrated population. The real
  // history has ~1M commits; the default keeps test runtime sane while the
  // benches can raise it.
  int noise_commits = 20000;
};

struct History {
  std::vector<Commit> commits;            // shuffled chronological stream
  std::vector<HistBug> ground_truth;      // the 1,033 planted bugs
  std::map<std::string, int> commit_release;  // every id (incl. bug-introducing ones)

  const Commit* FindCommit(std::string_view id) const;
};

History GenerateHistory(const HistoryOptions& options = {});

// Fixed-year counts used to calibrate Figure 1 (sums to 1,033).
const std::map<int, int>& Figure1GrowthTargets();

// Subsystem bug-count targets used for Figure 2's left chart (sums to 1,033)
// and approximate subsystem sizes in KLOC for the density chart (right).
struct SubsystemTarget {
  std::string name;
  int bugs = 0;
  double kloc = 0;
};
const std::vector<SubsystemTarget>& Figure2SubsystemTargets();

}  // namespace refscan

#endif  // REFSCAN_HISTMINE_HISTORY_H_
