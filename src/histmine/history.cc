#include <cstdio>
#include <cstdlib>
#include "src/histmine/history.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "src/support/prng.h"
#include "src/support/strings.h"

namespace refscan {

double ReleaseTime(const KernelRelease& r) {
  // Spread each year's releases evenly across the year, in timeline order.
  static const std::map<std::pair<int, int>, double> kTimes = [] {
    std::map<std::pair<int, int>, double> times;
    std::map<int, int> per_year;
    for (const KernelRelease& rel : ReleaseTimeline()) {
      ++per_year[rel.year];
    }
    std::map<int, int> seen;
    for (const KernelRelease& rel : ReleaseTimeline()) {
      times[{rel.major, rel.minor}] = rel.year + (seen[rel.year]++ + 0.5) / per_year[rel.year];
    }
    return times;
  }();
  const auto it = kTimes.find({r.major, r.minor});
  return it != kTimes.end() ? it->second : static_cast<double>(r.year);
}

namespace {

std::vector<KernelRelease> BuildTimeline() {
  std::vector<KernelRelease> t;
  auto add = [&t](int major, int minor, int year) {
    std::string name = major == 2 ? StrFormat("v2.6.%d", minor) : StrFormat("v%d.%d", major, minor);
    t.push_back(KernelRelease{std::move(name), year, major, minor});
  };
  // v2.6.12 (2005) .. v2.6.39 (2011)
  const int v26_years[] = {2005, 2005, 2005, 2006, 2006, 2006, 2006, 2006, 2007, 2007,
                           2007, 2007, 2008, 2008, 2008, 2008, 2008, 2009, 2009, 2009,
                           2009, 2010, 2010, 2010, 2010, 2011, 2011, 2011};
  for (int i = 0; i < 28; ++i) {
    add(2, 12 + i, v26_years[i]);
  }
  // v3.0 (2011) .. v3.19 (2015)
  const int v3_years[] = {2011, 2011, 2012, 2012, 2012, 2012, 2012, 2012, 2013, 2013,
                          2013, 2013, 2013, 2014, 2014, 2014, 2014, 2014, 2014, 2015};
  for (int i = 0; i < 20; ++i) {
    add(3, i, v3_years[i]);
  }
  // v4.0 (2015) .. v4.20 (2018)
  const int v4_years[] = {2015, 2015, 2015, 2015, 2016, 2016, 2016, 2016, 2016, 2016, 2017,
                          2017, 2017, 2017, 2017, 2018, 2018, 2018, 2018, 2018, 2018};
  for (int i = 0; i < 21; ++i) {
    add(4, i, v4_years[i]);
  }
  // v5.0 (2019) .. v5.19 (2022)
  const int v5_years[] = {2019, 2019, 2019, 2019, 2019, 2020, 2020, 2020, 2020, 2020,
                          2020, 2021, 2021, 2021, 2021, 2021, 2022, 2022, 2022, 2022};
  for (int i = 0; i < 20; ++i) {
    add(5, i, v5_years[i]);
  }
  add(6, 0, 2022);
  add(6, 1, 2022);
  return t;
}

}  // namespace

const std::vector<KernelRelease>& ReleaseTimeline() {
  static const std::vector<KernelRelease> kTimeline = BuildTimeline();
  return kTimeline;
}

int TotalVersionCount() {
  // 91 mainline releases plus their stable point releases — the paper's
  // "753 versions of Linux kernels released from 2005 to 2022".
  return 753;
}

int FirstReleaseOfMajor(int major) {
  const auto& timeline = ReleaseTimeline();
  for (size_t i = 0; i < timeline.size(); ++i) {
    if (timeline[i].major == major) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

const std::map<int, int>& Figure1GrowthTargets() {
  static const std::map<int, int> kTargets = {
      {2005, 6},   {2006, 8},   {2007, 10},  {2008, 12},  {2009, 15},  {2010, 18},
      {2011, 22},  {2012, 26},  {2013, 30},  {2014, 35},  {2015, 40},  {2016, 48},
      {2017, 55},  {2018, 65},  {2019, 85},  {2020, 140}, {2021, 190}, {2022, 228},
  };
  return kTargets;
}

const std::vector<SubsystemTarget>& Figure2SubsystemTargets() {
  // Bug counts calibrated to Finding 3 (drivers 56.9%; drivers+net+fs
  // 82.4%); KLOC figures approximate a v5.x-era tree so that "block" has
  // the highest density, as the paper reports.
  static const std::vector<SubsystemTarget> kTargets = {
      {"drivers", 588, 12000}, {"net", 152, 950},   {"fs", 111, 1250}, {"sound", 54, 900},
      {"arch", 40, 2900},      {"kernel", 25, 300}, {"block", 18, 65}, {"mm", 15, 140},
      {"crypto", 12, 110},     {"security", 8, 85}, {"virt", 4, 25},   {"include", 4, 950},
      {"init", 2, 8},
  };
  return kTargets;
}

namespace {

// Module/file pools per subsystem for plausible paths.
const std::map<std::string, std::vector<const char*>>& ModulePools() {
  static const std::map<std::string, std::vector<const char*>> kPools = {
      {"drivers", {"usb", "net", "gpu", "scsi", "media", "clk", "tty", "iio", "mmc", "soc",
                   "pci", "spi", "i2c", "hwmon", "input", "thermal", "phy", "regulator"}},
      {"net", {"ipv4", "ipv6", "core", "sched", "mac80211", "bluetooth", "wireless", "sctp",
               "tipc", "batman-adv", "appletalk"}},
      {"fs", {"ext4", "btrfs", "nfs", "cifs", "f2fs", "xfs", "jffs2", "ocfs2", "proc"}},
      {"sound", {"soc", "pci", "usb", "core", "firewire"}},
      {"arch", {"arm", "arm64", "powerpc", "mips", "x86", "sparc", "riscv"}},
      {"kernel", {"sched", "irq", "time", "trace", "events", "bpf"}},
      {"block", {"partitions", "blk-mq", "bfq", "genhd"}},
      {"mm", {"slab", "memcg", "hugetlb", "shmem"}},
      {"crypto", {"asymmetric_keys", "async_tx", "engine"}},
      {"security", {"selinux", "keys", "tomoyo", "integrity"}},
      {"virt", {"kvm", "lib"}},
      {"include", {"linux", "net", "sound"}},
      {"init", {"main", "initramfs"}},
  };
  return kPools;
}

constexpr const char* kFileWords[] = {"core", "main", "dev", "hub", "port", "queue", "node",
                                      "table", "ring", "chan", "link", "ctrl"};

constexpr const char* kFnWords[] = {"probe", "init", "open", "bind", "attach", "setup",
                                    "parse", "scan", "register", "start", "lookup", "create"};

// Refcounting API pairs for bug-fix diffs (all present in the built-in KB,
// so the level-2 implementation check accepts them).
struct ApiPair {
  const char* inc;
  const char* dec;
};
constexpr ApiPair kApiPairs[] = {
    {"of_node_get", "of_node_put"},   {"kobject_get", "kobject_put"},
    {"get_device", "put_device"},     {"sock_hold", "sock_put"},
    {"dev_hold", "dev_put"},          {"kref_get", "kref_put"},
    {"usb_serial_get", "usb_serial_put"},
    {"pm_runtime_get_sync", "pm_runtime_put"},
    {"fwnode_handle_get", "fwnode_handle_put"},
};

// Keyword-bearing API names that are NOT refcounting APIs: the level-1
// keyword filter matches them, the level-2 implementation check rejects
// them (the paper's 792 filtered-out candidates).
constexpr const char* kDecoyApis[] = {
    "regmap_get_format",    "clk_get_rate_hw",     "irq_get_trigger_type",
    "dma_release_channel",  "gpio_get_direction",  "led_put_pattern",
    "snd_ctl_hold_cards",   "mtd_release_master",  "pci_get_cap_offset",
    "rtc_get_alarm_mode",   "hid_grab_report",     "tty_put_char_slow",
    "mux_take_control",     "edac_release_layers", "phy_get_stats_page",
    "watchdog_put_timeout", "nvme_get_log_page",   "scsi_release_tags",
};

constexpr const char* kNoiseSubjects[] = {
    "clean up whitespace and comments",
    "convert to devm allocation helpers",
    "update maintainers entry",
    "simplify error message formatting",
    "add device tree binding documentation",
    "switch to new gpio descriptor interface",
    "remove dead code after refactor",
    "improve probe deferral logging",
    "constify ops tables",
    "use BIT macro for register fields",
    "fix spelling mistakes in comments",
    "add missing include guards",
    "refactor interrupt handling path",
    "support new hardware revision",
    "tune default watermark values",
    "document unhold semantics for the legacy buffer api",
    "retain firmware blob across suspend cycles",
    "parse optional properties during probe",
    "iterate cpus with for_each_possible_cpu when rebuilding masks",
    "use for_each_set_bit to walk the irq status word",
    "switch to for_each_online_cpu in the hotplug path",
    "simplify the list walk with for_each_entry over pending work",
};

class HistoryBuilder {
 public:
  explicit HistoryBuilder(const HistoryOptions& options)
      : options_(options), rng_(options.seed) {}

  History Build() {
    PlanBugs();
    EmitBugCommits();
    EmitDecoys();
    EmitWrongFixPairs();
    EmitNoise();
    FinalizeOrder();
    return std::move(history_);
  }

 private:
  // ------------------------------------------------------------ utilities

  std::string FreshId() {
    std::string id;
    id.reserve(12);
    for (int i = 0; i < 12; ++i) {
      id.push_back("0123456789abcdef"[rng_.Below(16)]);
    }
    if (!used_ids_.insert(id).second) {
      return FreshId();
    }
    return id;
  }

  template <typename T, size_t N>
  const T& Pick(const T (&pool)[N]) {
    return pool[rng_.Below(N)];
  }

  std::string RandomPath(const std::string& subsystem) {
    const auto& pool = ModulePools().at(subsystem);
    const char* module = pool[rng_.Below(pool.size())];
    return StrFormat("%s/%s/%s.c", subsystem.c_str(), module, Pick(kFileWords));
  }

  // A release index whose year matches, constrained to major series if
  // `major` > 0 (-1: any).
  int ReleaseForYear(int year, int major = -1) {
    const auto& timeline = ReleaseTimeline();
    std::vector<int> matches;
    for (size_t i = 0; i < timeline.size(); ++i) {
      if (timeline[i].year == year && (major <= 0 || timeline[i].major == major)) {
        matches.push_back(static_cast<int>(i));
      }
    }
    if (matches.empty()) {
      // Nearest release of that year regardless of major.
      for (size_t i = 0; i < timeline.size(); ++i) {
        if (timeline[i].year == year) {
          matches.push_back(static_cast<int>(i));
        }
      }
    }
    return matches[rng_.Below(matches.size())];
  }

  // A release of `major` whose fractional time lies in [tlo, thi].
  int ReleaseWithTimeIn(int major, double tlo, double thi) {
    const auto& timeline = ReleaseTimeline();
    std::vector<int> matches;
    for (size_t i = 0; i < timeline.size(); ++i) {
      const double t = ReleaseTime(timeline[i]);
      if (timeline[i].major == major && t >= tlo && t <= thi) {
        matches.push_back(static_cast<int>(i));
      }
    }
    if (matches.empty()) {
      fprintf(stderr, "ReleaseWithTimeIn(%d, %f, %f) empty\n", major, tlo, thi);
      abort();
    }
    return matches[rng_.Below(matches.size())];
  }

  // Any release of a major series whose year is within [lo, hi].
  int ReleaseInMajor(int major, int year_lo, int year_hi) {
    const auto& timeline = ReleaseTimeline();
    std::vector<int> matches;
    for (size_t i = 0; i < timeline.size(); ++i) {
      if (timeline[i].major == major && timeline[i].year >= year_lo &&
          timeline[i].year <= year_hi) {
        matches.push_back(static_cast<int>(i));
      }
    }
    assert(!matches.empty());
    return matches[rng_.Below(matches.size())];
  }

  // --------------------------------------------------------- bug planning

  struct BugPlan {
    HistBugKind kind;
    bool is_uad = false;
    bool is_leak = true;
    std::string subsystem;
    int fixed_release = 0;
    int introduced_release = -1;  // -1: untagged
  };

  void PlanBugs() {
    // Kind population — Table 2 counts over 1,033.
    struct KindCount {
      HistBugKind kind;
      int count;
      bool leak;
    };
    const KindCount kKinds[] = {
        {HistBugKind::kMissingDecIntra, 590, true}, {HistBugKind::kMissingDecInter, 104, true},
        {HistBugKind::kLeakOther, 47, true},        {HistBugKind::kMisplacedDec, 119, false},
        {HistBugKind::kMisplacedInc, 25, false},    {HistBugKind::kMissingIncIntra, 53, false},
        {HistBugKind::kMissingIncInter, 21, false}, {HistBugKind::kUafOther, 74, false},
    };
    for (const KindCount& kc : kKinds) {
      for (int i = 0; i < kc.count; ++i) {
        BugPlan plan;
        plan.kind = kc.kind;
        plan.is_leak = kc.leak;
        plans_.push_back(plan);
      }
    }
    // 94 of the 119 misplaced-decrease bugs are UAD (Finding 2).
    int uad = 94;
    for (BugPlan& plan : plans_) {
      if (plan.kind == HistBugKind::kMisplacedDec && uad > 0) {
        plan.is_uad = true;
        --uad;
      }
    }
    Shuffle(plans_);

    // Subsystems — Figure 2 counts.
    std::vector<std::string> subsystems;
    for (const SubsystemTarget& target : Figure2SubsystemTargets()) {
      for (int i = 0; i < target.bugs; ++i) {
        subsystems.push_back(target.name);
      }
    }
    Shuffle(subsystems);
    for (size_t i = 0; i < plans_.size(); ++i) {
      plans_[i].subsystem = subsystems[i];
    }

    AssignLifetimes();
  }

  void AssignLifetimes() {
    // Fixed-year pool, ascending (Figure 1 targets).
    std::vector<int> years;
    for (const auto& [year, count] : Figure1GrowthTargets()) {
      for (int i = 0; i < count; ++i) {
        years.push_back(year);
      }
    }
    std::sort(years.begin(), years.end());

    // Partition indices: leak-kind vs UAF-kind bugs (group A needs 7 UAF).
    std::vector<size_t> order(plans_.size());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    Shuffle(order);

    std::vector<size_t> group_a;  // 23 ancient: v2.6 -> v5.x/v6.x
    std::vector<size_t> group_b;  // 80: v3.x -> v5.x
    std::vector<size_t> group_c;  // 135: v4.x -> v5.x
    std::vector<size_t> group_d;  // 189: within v5.x
    std::vector<size_t> group_e;  // 140: tagged, fixed in the v4.x era
    std::vector<size_t> untagged;

    // Group A first: exactly 7 UAF + 16 leak members (Finding 4's "7 UAF
    // among the long-lived bugs").
    int a_uaf = 7;
    int a_leak = 16;
    std::vector<size_t> rest;
    for (size_t index : order) {
      const bool leak = plans_[index].is_leak;
      if (!leak && a_uaf > 0) {
        group_a.push_back(index);
        --a_uaf;
      } else if (leak && a_leak > 0) {
        group_a.push_back(index);
        --a_leak;
      } else {
        rest.push_back(index);
      }
    }
    // Remaining quota groups in order.
    size_t cursor = 0;
    auto take = [&](std::vector<size_t>& group, size_t n) {
      while (group.size() < n && cursor < rest.size()) {
        group.push_back(rest[cursor++]);
      }
    };
    take(group_b, 80);
    take(group_c, 135);
    take(group_d, 189);
    take(group_e, 140);
    while (cursor < rest.size()) {
      untagged.push_back(rest[cursor++]);
    }

    // Year pools: ascending years; untagged take the earliest, group E the
    // v4-era years, groups A-D the v5/v6-era years (Fixes tags are a modern
    // convention, which also matches the real history).
    std::vector<int> years_2019plus;
    std::vector<int> years_2015_2018;
    std::vector<int> years_early;
    for (int year : years) {
      if (year >= 2019) {
        years_2019plus.push_back(year);
      } else if (year >= 2015) {
        years_2015_2018.push_back(year);
      } else {
        years_early.push_back(year);
      }
    }
    Shuffle(years_2019plus);
    Shuffle(years_2015_2018);

    auto pop = [](std::vector<int>& pool) {
      const int year = pool.back();
      pool.pop_back();
      return year;
    };

    // Group A: v2.6 intro, >= 2019 fix; the first 19 get lifetime > 10y.
    // Put the 7 UAF members first so all of them land in the >10y subset
    // (Finding 4: 19 bugs over ten years "including 7 UAF").
    std::stable_partition(group_a.begin(), group_a.end(),
                          [this](size_t index) { return !plans_[index].is_leak; });
    for (size_t i = 0; i < group_a.size(); ++i) {
      BugPlan& plan = plans_[group_a[i]];
      const int fix_year = pop(years_2019plus);
      plan.fixed_release = ReleaseForYear(fix_year);
      if (i < 19) {
        // intro year <= fix - 11 (v2.6.12..v2.6.27 are 2005-2008).
        plan.introduced_release = ReleaseInMajor(2, 2005, std::min(2008, fix_year - 11));
      } else {
        plan.introduced_release = ReleaseInMajor(2, 2011, 2011);  // 8-10y, not > 10
        if (fix_year > 2020) {
          // Keep the lifetime at or below ten years.
          plan.fixed_release = ReleaseForYear(2019 + static_cast<int>(i) % 2);
        }
      }
    }
    // Group B: v3.x -> v5.x, lifetime in (1, 10].
    for (size_t index : group_b) {
      BugPlan& plan = plans_[index];
      const int fix_year = pop(years_2019plus);
      plan.fixed_release = ReleaseForYear(fix_year, 5);
      plan.introduced_release = ReleaseInMajor(3, std::max(2011, fix_year - 9), 2015);
    }
    // Group C: v4.x -> v5.x (always > 1 year in practice).
    for (size_t index : group_c) {
      BugPlan& plan = plans_[index];
      const int fix_year = pop(years_2019plus);
      plan.fixed_release = ReleaseForYear(fix_year, 5);
      plan.introduced_release = ReleaseInMajor(4, 2015, std::min(2018, fix_year - 2));
    }
    // Group D: within v5.x; 51 long (>1y), the rest short.
    int d_long_left = 51;
    for (size_t i = 0; i < group_d.size(); ++i) {
      BugPlan& plan = plans_[group_d[i]];
      const int fix_year = pop(years_2019plus);
      plan.fixed_release = ReleaseForYear(fix_year, fix_year >= 2022 && rng_.Chance(0.2) ? 6 : 5);
      const double fix_time = ReleaseTime(ReleaseTimeline()[plan.fixed_release]);
      const double v5_first = ReleaseTime(ReleaseTimeline()[FirstReleaseOfMajor(5)]);
      if (d_long_left > 0 && fix_time - 1.05 >= v5_first) {
        --d_long_left;
        plan.introduced_release = ReleaseWithTimeIn(5, v5_first, fix_time - 1.05);
      } else {
        plan.introduced_release =
            ReleaseWithTimeIn(5, std::max(v5_first, fix_time - 0.9), fix_time);
        if (plan.introduced_release > plan.fixed_release) {
          plan.introduced_release = plan.fixed_release;
        }
      }
    }
    // Group E: tagged, fixed in the v4 era, introduced in v3 (> 1 year).
    for (size_t index : group_e) {
      BugPlan& plan = plans_[index];
      const int fix_year = pop(years_2015_2018);
      plan.fixed_release = ReleaseForYear(fix_year, 4);
      plan.introduced_release = ReleaseInMajor(3, std::max(2011, fix_year - 9), fix_year - 2);
    }
    // Untagged: earliest years plus whatever is left.
    std::vector<int> leftover = years_early;
    leftover.insert(leftover.end(), years_2015_2018.begin(), years_2015_2018.end());
    leftover.insert(leftover.end(), years_2019plus.begin(), years_2019plus.end());
    Shuffle(leftover);
    size_t y = 0;
    for (size_t index : untagged) {
      BugPlan& plan = plans_[index];
      plan.fixed_release = ReleaseForYear(leftover[y++]);
      plan.introduced_release = -1;
    }
  }

  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[rng_.Below(i)]);
    }
  }

  // --------------------------------------------------------- commit text

  void EmitBugCommits() {
    for (const BugPlan& plan : plans_) {
      Commit commit;
      commit.id = FreshId();
      commit.release = plan.fixed_release;
      commit.year = ReleaseTimeline()[plan.fixed_release].year;
      commit.file = RandomPath(plan.subsystem);
      const ApiPair& pair = Pick(kApiPairs);
      const std::string fn = StrFormat("%s_%s", Pick(kFileWords), Pick(kFnWords));

      switch (plan.kind) {
        case HistBugKind::kMissingDecIntra: {
          commit.subject = StrFormat("%s: fix reference count leak in %s",
                                     plan.subsystem.c_str(), fn.c_str());
          // Body phrasings cover the vocabulary the similarity study
          // (Table 3) measures: find-like APIs, smartloop walks, and the
          // grab/drop/retain/decrease verb family.
          switch (rng_.Below(4)) {
            case 0:
              commit.body = StrFormat(
                  "Add the missing %s() before returning from the error path.", pair.dec);
              break;
            case 1:
              commit.body = StrFormat(
                  "The helper of_find_compatible_node() does a get on the returned node; "
                  "decrease the refcount with %s() on the error path.",
                  pair.dec);
              break;
            case 2:
              commit.body = StrFormat(
                  "When we break out of the for_each_child_of_node() walk, drop the "
                  "reference with %s().",
                  pair.dec);
              break;
            default:
              commit.body = StrFormat(
                  "Grab and release must stay balanced: call %s() before the early return.",
                  pair.dec);
              break;
          }
          commit.diff.push_back({DiffOp::kAdd, pair.dec, true});
          break;
        }
        case HistBugKind::kMissingDecInter:
          commit.subject =
              StrFormat("%s: fix memory leak on %s teardown", plan.subsystem.c_str(), fn.c_str());
          commit.body = StrFormat(
              "The reference taken in %s() is never dropped; call %s() from the release hook.",
              fn.c_str(), pair.dec);
          commit.diff.push_back({DiffOp::kAdd, pair.dec, false});
          break;
        case HistBugKind::kLeakOther:
          commit.subject =
              StrFormat("%s: fix memory leak in %s", plan.subsystem.c_str(), fn.c_str());
          commit.body = StrFormat(
              "Use %s() instead of kfree so the attached resources are released as well.",
              pair.dec);
          commit.diff.push_back({DiffOp::kAdd, pair.dec, true});
          break;
        case HistBugKind::kMisplacedDec:
          commit.subject =
              StrFormat("%s: fix use-after-free in %s", plan.subsystem.c_str(), fn.c_str());
          commit.body =
              plan.is_uad
                  ? StrFormat("The object is still accessed after dropping the reference; move "
                              "%s() after the last use.",
                              pair.dec)
                  : StrFormat("Move %s() out of the locked section to the correct place.",
                              pair.dec);
          commit.diff.push_back({DiffOp::kMove, pair.dec, true});
          break;
        case HistBugKind::kMisplacedInc:
          commit.subject =
              StrFormat("%s: fix use-after-free in %s", plan.subsystem.c_str(), fn.c_str());
          commit.body = StrFormat("Take the reference with %s() before publishing the pointer.",
                                  pair.inc);
          commit.diff.push_back({DiffOp::kMove, pair.inc, true});
          break;
        case HistBugKind::kMissingIncIntra:
          commit.subject =
              StrFormat("%s: fix use-after-free in %s", plan.subsystem.c_str(), fn.c_str());
          commit.body =
              rng_.Chance(0.5)
                  ? StrFormat("Add the missing %s() for the stored reference.", pair.inc)
                  : StrFormat("Increase the refcount by calling %s() so the open path can "
                              "retain the object.",
                              pair.inc);
          commit.diff.push_back({DiffOp::kAdd, pair.inc, true});
          break;
        case HistBugKind::kMissingIncInter:
          commit.subject =
              StrFormat("%s: fix uaf in %s path", plan.subsystem.c_str(), fn.c_str());
          commit.body = StrFormat("%s() must take a reference with %s() for its peer to drop.",
                                  fn.c_str(), pair.inc);
          commit.diff.push_back({DiffOp::kAdd, pair.inc, false});
          break;
        case HistBugKind::kUafOther:
          commit.subject =
              StrFormat("%s: fix use-after-free in %s", plan.subsystem.c_str(), fn.c_str());
          commit.body = "Rework the reference handling across the retry loop.";
          commit.diff.push_back({DiffOp::kAdd, pair.inc, true});
          commit.diff.push_back({DiffOp::kAdd, pair.dec, true});
          break;
      }

      HistBug bug;
      bug.kind = plan.kind;
      bug.is_uad = plan.is_uad;
      bug.is_leak = plan.is_leak;
      bug.subsystem = plan.subsystem;
      bug.fix_commit = commit.id;
      bug.fixed_release = plan.fixed_release;
      bug.introduced_release = plan.introduced_release;

      if (plan.introduced_release >= 0) {
        // Synthesise the bug-introducing commit id and record its release.
        const std::string intro_id = FreshId();
        history_.commit_release[intro_id] = plan.introduced_release;
        commit.fixes_tag = intro_id;
        commit.body += StrFormat("\n\nFixes: %s (\"%s\")", intro_id.c_str(),
                                 commit.subject.c_str());
      }

      history_.commit_release[commit.id] = commit.release;
      history_.ground_truth.push_back(std::move(bug));
      history_.commits.push_back(std::move(commit));
    }
  }

  void EmitDecoys() {
    // 780 keyword-bearing non-refcounting commits (level-1 passes, level-2
    // rejects): 1,825 candidates - 1,033 bugs - 12 wrong fixes.
    for (int i = 0; i < 780; ++i) {
      Commit commit;
      commit.id = FreshId();
      commit.release = static_cast<int>(rng_.Below(ReleaseTimeline().size()));
      commit.year = ReleaseTimeline()[commit.release].year;
      const SubsystemTarget& target =
          Figure2SubsystemTargets()[rng_.Below(Figure2SubsystemTargets().size())];
      commit.file = RandomPath(target.name);
      commit.subject = StrFormat("%s: %s", target.name.c_str(), Pick(kNoiseSubjects));
      commit.body = "No functional change intended.";
      const DiffOp ops[] = {DiffOp::kAdd, DiffOp::kDelete, DiffOp::kMove};
      commit.diff.push_back({ops[rng_.Below(3)], Pick(kDecoyApis), true});
      history_.commit_release[commit.id] = commit.release;
      history_.commits.push_back(std::move(commit));
    }
  }

  void EmitWrongFixPairs() {
    // 12 wrong "fixes" (they pass both filter levels) each later corrected
    // by a commit whose Fixes: tag names them — the dcb4b8ad/0a96fa64 case.
    for (int i = 0; i < 12; ++i) {
      const ApiPair& pair = Pick(kApiPairs);
      const std::string fn = StrFormat("%s_%s", Pick(kFileWords), Pick(kFnWords));

      Commit wrong;
      wrong.id = FreshId();
      wrong.release = ReleaseInMajor(5, 2019, 2021);
      wrong.year = ReleaseTimeline()[wrong.release].year;
      wrong.file = RandomPath("drivers");
      wrong.subject = StrFormat("drivers: fix memory leak in %s", fn.c_str());
      wrong.body = StrFormat("Add a \"missing\" %s() on the error path.", pair.dec);
      wrong.diff.push_back({DiffOp::kAdd, pair.dec, true});
      history_.commit_release[wrong.id] = wrong.release;

      Commit revert;
      revert.id = FreshId();
      revert.release = std::min<int>(wrong.release + 1 + static_cast<int>(rng_.Below(4)),
                                     static_cast<int>(ReleaseTimeline().size()) - 1);
      revert.year = ReleaseTimeline()[revert.release].year;
      revert.file = wrong.file;
      revert.subject = StrFormat("drivers: fix improper handling of refcount in %s", fn.c_str());
      revert.body = StrFormat(
          "The previous patch added an extra decrement causing a premature free.\n\n"
          "Fixes: %s (\"%s\")",
          wrong.id.c_str(), wrong.subject.c_str());
      // The corrective patch restructures the function; its diff summary
      // carries no refcounting API so it is not itself a candidate.
      revert.diff.push_back({DiffOp::kMove, fn.c_str(), true});
      revert.fixes_tag = wrong.id;
      history_.commit_release[revert.id] = revert.release;

      history_.commits.push_back(std::move(wrong));
      history_.commits.push_back(std::move(revert));
    }
  }

  void EmitNoise() {
    for (int i = 0; i < options_.noise_commits; ++i) {
      Commit commit;
      commit.id = FreshId();
      commit.release = static_cast<int>(rng_.Below(ReleaseTimeline().size()));
      commit.year = ReleaseTimeline()[commit.release].year;
      const SubsystemTarget& target =
          Figure2SubsystemTargets()[rng_.Below(Figure2SubsystemTargets().size())];
      commit.file = RandomPath(target.name);
      commit.subject = StrFormat("%s: %s", target.name.c_str(), Pick(kNoiseSubjects));
      commit.body = "Signed-off-by: A Developer <dev@example.org>";
      history_.commit_release[commit.id] = commit.release;
      history_.commits.push_back(std::move(commit));
    }
  }

  void FinalizeOrder() {
    // Chronological order with a stable deterministic tiebreak.
    std::stable_sort(history_.commits.begin(), history_.commits.end(),
                     [](const Commit& a, const Commit& b) { return a.release < b.release; });
  }

  HistoryOptions options_;
  Xoshiro256pp rng_;
  History history_;
  std::vector<BugPlan> plans_;
  std::set<std::string> used_ids_;
};

}  // namespace

const Commit* History::FindCommit(std::string_view id) const {
  for (const Commit& commit : commits) {
    if (commit.id == id) {
      return &commit;
    }
  }
  return nullptr;
}

History GenerateHistory(const HistoryOptions& options) {
  return HistoryBuilder(options).Build();
}

}  // namespace refscan
