// Text serialization of commit histories ("refscan log format").
//
// A git-log-like plain-text format so histories can be stored, inspected
// and re-mined without the generator: one block per commit with the fields
// the miner needs (id, release, file, subject, body incl. Fixes: tags, and
// a one-line diff summary of the APIs the patch adds/deletes/moves).
// Round-trips losslessly with GenerateHistory()'s output; a real git log
// can be converted into this format with a trivial script.

#ifndef REFSCAN_HISTMINE_GITLOG_H_
#define REFSCAN_HISTMINE_GITLOG_H_

#include <string>

#include "src/histmine/history.h"

namespace refscan {

// Serializes all commits (plus stub entries for bug-introducing commits
// referenced only by Fixes: tags, so release lookup survives the round
// trip).
std::string SerializeGitLog(const History& history);

// Parses the format back into a History. Ground truth is not part of the
// format (it does not exist for real logs), so `ground_truth` is empty.
// Unparseable blocks are skipped.
History ParseGitLog(std::string_view text);

}  // namespace refscan

#endif  // REFSCAN_HISTMINE_GITLOG_H_
