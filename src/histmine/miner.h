// Refcounting-bug dataset miner (§3.1's two-level filtering method).
//
//   Level 1 — keyword filter: keep commits whose diffs add/delete/move APIs
//     whose names contain refcounting keywords ("get", "take", "hold",
//     "grab" / "put", "drop", "unhold", "release", ...).
//   Level 2 — implementation check: keep only commits touching APIs the
//     knowledge base confirms are refcounting APIs (the paper inspected the
//     API implementations; our KB plays that role).
//   FP removal — drop any candidate whose commit id appears as the `Fixes:`
//     target of another commit (the wrong-fix/revert case, §3.1).
//
// The surviving commits are then classified into the Table 2 taxonomy from
// their diffs and messages (standing in for the paper's manual analysis of
// patch descriptions), yielding the dataset the statistics module consumes.

#ifndef REFSCAN_HISTMINE_MINER_H_
#define REFSCAN_HISTMINE_MINER_H_

#include <vector>

#include "src/histmine/history.h"
#include "src/kb/kb.h"

namespace refscan {

// One classified dataset entry (a mined refcounting bug).
struct MinedBug {
  const Commit* commit = nullptr;
  HistBugKind kind = HistBugKind::kMissingDecIntra;
  bool is_uad = false;
  bool is_leak = true;
  std::string subsystem;
  int fixed_release = 0;
  int introduced_release = -1;  // -1 when the commit has no Fixes: tag
};

struct MiningResult {
  size_t total_commits = 0;
  std::vector<const Commit*> level1_candidates;
  std::vector<const Commit*> level2_candidates;
  std::vector<const Commit*> removed_as_wrong_fix;
  std::vector<MinedBug> dataset;  // final classified bugs
};

// True if `api_name` contains a refcounting keyword as an identifier word.
bool Level1KeywordMatch(std::string_view api_name);

// Runs the full pipeline over `history`. `jobs` fans the per-commit work
// (level-1 keyword matching, taxonomy classification) out over a thread
// pool — 0 = one per hardware thread; results are identical at every
// thread count because per-commit verdicts merge back in commit order.
MiningResult MineRefcountBugs(const History& history, const KnowledgeBase& kb, size_t jobs = 1);

// Classifies one confirmed bug-fix commit into the Table 2 taxonomy.
MinedBug ClassifyBugCommit(const Commit& commit, const History& history,
                           const KnowledgeBase& kb);

}  // namespace refscan

#endif  // REFSCAN_HISTMINE_MINER_H_
