// Anti-pattern checker engine (§6.1 "Bug Detection").
//
// Pipeline per scan, three stages:
//   1. parse every file of the SourceTree            (parallel over files)
//   2. KB discovery over all units (structure parser
//      + API/macro classification, two rounds)       (serial merge barrier)
//   3. build CFG+CPG per function and run the
//      enabled anti-pattern checkers (P1..P9)        (parallel over files)
// Stage 2 stays serial because discovery mutates the knowledge base and is
// order-sensitive (wrappers classify off APIs found in the first round);
// after it the KB is read-only and shared by every stage-3 worker. Reports
// are deduplicated one-per-site with the most specific pattern, and are
// byte-identical at every `ScanOptions::jobs` value.

#ifndef REFSCAN_CHECKERS_ENGINE_H_
#define REFSCAN_CHECKERS_ENGINE_H_

#include <deque>
#include <memory>
#include <set>
#include <vector>

#include "src/ast/ast.h"
#include "src/cfg/cfg.h"
#include "src/checkers/analysis.h"
#include "src/checkers/report.h"
#include "src/cpg/cpg.h"
#include "src/kb/kb.h"
#include "src/support/source.h"

namespace refscan {

class ObjectStore;  // src/cache/store.h

struct ScanOptions {
  size_t max_paths_per_function = 512;
  int nesting_threshold = 3;     // struct-parser nesting depth (§6.1)
  bool discover_from_source = true;
  // The paper's nine families are on by default; P10-P12 (DESIGN.md §5.12)
  // are opt-in via `--patterns`, which keeps base-corpus reports
  // byte-identical to the pre-P10 scanner unless asked for.
  std::set<int> enabled_patterns = {1, 2, 3, 4, 5, 6, 7, 8, 9};

  // Userspace dialect catalogues folded into the KB before any discovery or
  // checking (`--dialect NAME`, repeatable; see KnownDialects / DESIGN.md
  // §5.12). Unknown names are rejected by the CLI; the engine constructor
  // ignores them (the fingerprint still records the request).
  std::vector<std::string> dialects;

  // Worker threads for the parallel scan stages (parse, context build +
  // checking). 0 = one per hardware thread; 1 = fully serial. Reports are
  // identical at every thread count (see engine.cc).
  size_t jobs = 1;

  // Persistent incremental scan cache directory (src/cache, DESIGN.md
  // §5.8); empty = no caching. On a rescan, files whose content and options
  // are unchanged replay their cached discovery facts (skipping the parse),
  // and — when the post-discovery KB fingerprint also matches — splice
  // their cached report shards (skipping CFG/CPG construction and checking
  // entirely). Reports are byte-identical to a cold scan at every `jobs`
  // value; the cache can only cost time, never change output.
  std::string cache_dir;

  // Unix-socket path of a `refscan cached` shared artifact server
  // (src/cache/store.h). When set it takes precedence over cache_dir: cache
  // gets/puts go over the socket, so N scanning processes (or machines
  // sharing the socket via a forwarder) split one warm store. Location, not
  // content — excluded from the options fingerprint, and an unreachable
  // server degrades every call to a miss.
  std::string cache_server;

  // In-process artifact store injection: when set it wins over cache_server
  // and cache_dir. The resident scan service (`refscan serve`) points every
  // request at one shared MemoryStore so KB snapshots, facts and report
  // shards stay hot across requests. Like the other cache knobs this is a
  // location, not content — excluded from the options fingerprint, and it
  // never travels on any wire (shard workers and serve requests get their
  // store from their own side of the socket).
  std::shared_ptr<ObjectStore> object_store;

  // Precision knobs (the design-choice ablation toggles these):
  // treat NULL-checked failure branches as acquisition-failed paths.
  bool prune_null_branches = true;
  // treat returns / escaping stores / ownership-sink calls as transfers.
  bool model_ownership_transfer = true;
  // stage 2.5: compute interprocedural ref-delta summaries bottom-up over
  // the call graph and fold them into the KB before checking, so the
  // checkers fire through wrapper chains (src/ipa). Off by default — the
  // intraprocedural pipeline is the paper's baseline.
  bool interprocedural = false;

  // ---- fault isolation & resource governors (DESIGN.md §5.9) ----

  // Fault-injection spec (see support/faultinject.h), armed for the
  // duration of Scan() and restored afterwards; empty = whatever is armed
  // process-wide (e.g. via REFSCAN_FAULTS). A malformed spec aborts the
  // scan with a diagnostic rather than silently running un-faulted.
  std::string fault_spec;

  // Per-file wall-clock budget covering parse and context-build + checking
  // separately (cooperative: polled in the parser/CFG/checker loops, no
  // thread is killed). 0 = no deadline. Overruns quarantine the file with
  // FailureKind::kResourceLimit.
  uint32_t file_timeout_ms = 0;

  // Per-file input-size / AST caps; 0 = uncapped. Oversized inputs are
  // quarantined (kResourceLimit) instead of parsed. `max_ast_depth` > 0
  // replaces the parser's silent flatten-at-200 with a hard cap.
  size_t max_file_bytes = 0;
  size_t max_ast_nodes = 0;
  int max_ast_depth = 0;

  // Scan-wide circuit breaker: abort (ScanResult::aborted) when more than
  // this fraction of files fail. 0 = disabled (the default — a degraded
  // scan normally completes and reports the healthy remainder).
  double max_failure_ratio = 0.0;

  // Streaming unit lifecycle for multi-MLOC trees (DESIGN.md §5.15): stage
  // 1 drops each file's AST right after extracting its discovery facts, and
  // stage 3 re-parses each file just-in-time, so at most `jobs` units are
  // alive at once and peak RSS is bounded by the largest file instead of
  // the whole tree. Costs a second parse per cold file; output is
  // byte-identical, so it is excluded from the options fingerprint (cached
  // artifacts are shared with non-streaming scans). Ignored (units kept)
  // when `interprocedural` is set — stage 2.5 needs every AST at once.
  bool streaming = false;
};

// Where in the pipeline a quarantined file failed.
enum class FailureStage : uint8_t { kLoad, kParse, kCheck, kSummarize };
std::string_view FailureStageName(FailureStage stage);

// Failure taxonomy (DESIGN.md §5.9): I/O, parse, resource cap, cache,
// anything else.
enum class FailureKind : uint8_t { kIo, kParse, kResourceLimit, kCache, kInternal };
std::string_view FailureKindName(FailureKind kind);

// One quarantined file: the scan completed without it, its entry appears in
// the `## Degraded files` report section and the --json `degraded` array.
struct FileFailure {
  std::string path;
  FailureStage stage = FailureStage::kParse;
  FailureKind kind = FailureKind::kInternal;
  std::string what;
  int retries = 0;  // transient-I/O re-attempts consumed before giving up
};

// Parses a `--patterns` list ("1,4,8") into `out`. Returns false (leaving
// `out` untouched) on empty lists, non-numeric entries, or ids outside 1..12.
bool ParsePatternList(std::string_view text, std::set<int>& out);

// Digest of every ScanOptions field that can change a file's cache
// artifacts. `jobs` is excluded (reports are identical at every thread
// count) and so is `interprocedural` (it only changes the KB, which the
// report key already fingerprints), so parses cached by a plain scan are
// reused by an `--ipa` scan and vice versa. The deterministic governor caps
// (max_file_bytes, max_ast_nodes, max_ast_depth) are included — they change
// what a parse produces. fault_spec, file_timeout_ms and max_failure_ratio
// are excluded: a file that faults or times out stores no artifacts, so
// nothing wall-clock- or injection-dependent can ever be replayed.
uint64_t ScanOptionsFingerprint(const ScanOptions& options);

// One semantic event along an enumerated path. `path_pos` is the index of
// `node` within its own path (see PathTraceSet for the storage layout).
struct PathTraceItem {
  const SemEvent* ev;
  int node;
  uint32_t path_pos;
};

// Flat SoA storage of every enumerated CFG path and its semantic trace
// (DESIGN.md §5.11). Path p's node ids live in
// path_nodes[path_offsets[p] .. path_offsets[p+1]) and its trace items in
// items[item_offsets[p] .. item_offsets[p+1]). Built once per function and
// option key, then shared: the acquisition analysis and checkers
// P2/P3/P4/P8/P9 used to re-enumerate the CFG's paths independently (~6
// enumerations per function); now enumeration happens once and every
// checker walks contiguous arrays.
struct PathTraceSet {
  uint64_t key = 0;  // the ScanOptions fields the enumeration depends on
  std::vector<int> path_nodes;
  std::vector<uint32_t> path_offsets;  // paths()+1 entries
  std::vector<PathTraceItem> items;
  std::vector<uint32_t> item_offsets;  // paths()+1 entries
  // Chains the generation this one superseded (see FunctionContext): old
  // generations stay alive for the context's lifetime so checkers can hold
  // plain references across a racing rebuild.
  std::shared_ptr<const PathTraceSet> prev;
  size_t paths() const { return path_offsets.empty() ? 0 : path_offsets.size() - 1; }
};

// Everything the checkers need about one function.
struct FunctionContext {
  const TranslationUnit* unit = nullptr;
  const FunctionDef* fn = nullptr;
  std::unique_ptr<Cfg> cfg;
  std::unique_ptr<Cpg> cpg;

  // Lazily-computed acquisition analysis (see analysis.h); checkers share
  // one computation per function instead of re-enumerating paths. The
  // cached key and analysis travel in one immutable struct behind a single
  // atomically-swapped pointer, so a reader can never pair a fresh key with
  // a stale analysis (or vice versa) when checkers race on the same
  // function. Superseded generations are chained via `prev`, never freed
  // before the context dies.
  //
  // The `*_fast` raw pointers duplicate the newest generation for the hit
  // path: they are read/written through std::atomic_ref, so a cache hit is
  // one lock-free acquire load instead of a locked shared_ptr atomic_load
  // (libstdc++ takes a spinlock pool mutex for those, and checkers hit the
  // cache several times per function).
  mutable std::shared_ptr<const AcquisitionCache> acquisition_cache;
  mutable const AcquisitionCache* acquisition_fast = nullptr;

  // Lazily-built flattened paths+traces, same generation-swap discipline as
  // acquisition_cache.
  mutable std::shared_ptr<const PathTraceSet> trace_cache;
  mutable const PathTraceSet* trace_fast = nullptr;
};

// One parsed translation unit plus its function contexts.
struct UnitContext {
  const SourceFile* file = nullptr;
  TranslationUnit unit;
  std::deque<FunctionContext> functions;
};

struct ScanStats {
  size_t files = 0;
  size_t functions = 0;
  size_t discovered_apis = 0;
  size_t discovered_smart_loops = 0;
  size_t refcounted_structs = 0;
  size_t summarized_functions = 0;  // stage 2.5 (0 when interprocedural off)

  // Fault-isolation accounting: files quarantined (they appear in
  // ScanResult::failures) and files that needed a transient-I/O retry
  // (whether or not the retry then succeeded).
  size_t files_quarantined = 0;
  size_t files_retried = 0;

  // Function-granular parse casualties (DESIGN.md §5.15): bodies the parser
  // quarantined while the rest of their file kept scanning. Excluded from
  // `functions`; each appears in ScanResult::degraded_functions.
  size_t functions_degraded = 0;

  // Incremental-cache accounting (all 0 when ScanOptions::cache_dir is
  // empty). A fully warm rescan of an unchanged tree has
  // cache_hits == cache_parse_skips == files and cache_misses == 0.
  size_t cache_hits = 0;         // files whose stage-3 shard was spliced from cache
  size_t cache_misses = 0;       // files checked cold while the cache was enabled
  size_t cache_parse_skips = 0;  // files never parsed this scan (facts/unit/reports cached)
  size_t cache_corrupt = 0;      // objects that existed but failed validation (→ miss)
  size_t kb_snapshot_hits = 0;   // 1 when the tree-level KB snapshot replaced discovery
};

// One ScanStats field: binds the struct member to its `--json` stats key
// and its `scan.*` counter name in the telemetry registry. ScanResultToJson,
// the CLI's --stats text section and the engine's metrics materialisation
// all iterate this table, so the three views cannot drift; the shape is
// locked by tests/telemetry_test.cc.
struct ScanStatsField {
  const char* json_key;
  const char* metric;  // counter name in the scan-local metrics registry
  size_t ScanStats::* member;
};

// Every ScanStats field, in declaration (and JSON emission) order.
const std::vector<ScanStatsField>& ScanStatsFields();

// One function body the parser quarantined (DESIGN.md §5.15): its file kept
// scanning, its siblings' reports are byte-identical to scanning the file
// with this function deleted, and the scan exits kExitDegraded.
struct DegradedFunctionReport {
  std::string file;
  std::string function;
  uint32_t line = 0;
  std::string what;
};

struct ScanResult {
  std::vector<BugReport> reports;
  ScanStats stats;

  // Quarantined files in tree (path) order, then any whole-tree stage
  // failures (e.g. a degraded summary stage, path "<tree>"). A scan of N
  // files with k failures still yields reports for the other N−k that are
  // byte-identical to scanning the healthy subset alone (for stage-1
  // quarantines, which are excluded from KB discovery; asserted by
  // tests/faultinject_test.cc).
  std::vector<FileFailure> failures;

  // Quarantined function bodies in (file, source line) order — the
  // function-granular analogue of `failures`. Non-empty ⇒ kExitDegraded.
  std::vector<DegradedFunctionReport> degraded_functions;

  // Circuit breaker (ScanOptions::max_failure_ratio) or a malformed
  // fault_spec: the scan gave up; `reports` must not be trusted.
  bool aborted = false;
  std::string abort_reason;
};

// Disjoint CLI exit codes (DESIGN.md §5.9). Every outcome gets its own
// code — a healthy scan with reports can never be mistaken for a degraded
// or failed one. Precedence: hard failure > degraded > reports > clean.
// kExitUsage is BSD sysexits EX_USAGE, for malformed invocations.
enum ScanExitCode : int {
  kExitClean = 0,        // scan completed, no reports, nothing degraded
  kExitHardFailure = 1,  // aborted: breaker trip, bad spec, unusable input
  kExitDegraded = 2,     // completed with quarantined files or functions
  kExitReports = 10,     // completed healthy, found >= 1 report
  kExitUsage = 64,       // bad flags / arguments (EX_USAGE)
};

// Maps a ScanResult to its exit code (the CLI's single source of truth).
int ScanExitCodeFor(const ScanResult& result);

// JSON object for the CLI: {"reports": [...], "degraded": [...]} plus
// "aborted" when set and "stats" when requested. Deterministic field order;
// the reports array is exactly ReportsToJson, so healthy-subset byte
// comparisons keep working.
std::string ScanResultToJson(const ScanResult& result, bool include_stats = false);

class CheckerEngine {
 public:
  explicit CheckerEngine(KnowledgeBase kb = KnowledgeBase::BuiltIn(), ScanOptions options = {});

  // Scans a whole tree (two passes: discovery, then checking).
  ScanResult Scan(const SourceTree& tree);

  // Scans a single in-memory file (tests / quickstart example).
  ScanResult ScanFileText(std::string path, std::string text);

  const KnowledgeBase& kb() const { return kb_; }

 private:
  KnowledgeBase kb_;
  ScanOptions options_;
};

// Individual checkers, exposed for unit tests and the ablation bench. Each
// appends raw (not yet deduplicated) reports.
void CheckReturnError(const UnitContext& uc, const FunctionContext& fc, const KnowledgeBase& kb,
                      const ScanOptions& options, std::vector<BugReport>& out);  // P1
void CheckReturnNull(const UnitContext& uc, const FunctionContext& fc, const KnowledgeBase& kb,
                     const ScanOptions& options, std::vector<BugReport>& out);  // P2
void CheckSmartLoopBreak(const UnitContext& uc, const FunctionContext& fc,
                         const KnowledgeBase& kb, const ScanOptions& options,
                         std::vector<BugReport>& out);  // P3
void CheckHiddenApi(const UnitContext& uc, const FunctionContext& fc, const KnowledgeBase& kb,
                    const ScanOptions& options, std::vector<BugReport>& out);  // P4
void CheckErrorHandle(const UnitContext& uc, const FunctionContext& fc, const KnowledgeBase& kb,
                      const ScanOptions& options, std::vector<BugReport>& out);  // P5
void CheckInterUnpaired(const UnitContext& uc, const KnowledgeBase& kb,
                        const ScanOptions& options,
                        std::vector<BugReport>& out);  // P6 (whole-unit)
void CheckDirectFree(const UnitContext& uc, const FunctionContext& fc, const KnowledgeBase& kb,
                     const ScanOptions& options, std::vector<BugReport>& out);  // P7
void CheckUseAfterDecrease(const UnitContext& uc, const FunctionContext& fc,
                           const KnowledgeBase& kb, const ScanOptions& options,
                           std::vector<BugReport>& out);  // P8
void CheckReferenceEscape(const UnitContext& uc, const FunctionContext& fc,
                          const KnowledgeBase& kb, const ScanOptions& options,
                          std::vector<BugReport>& out);  // P9
void CheckRawManipulation(const UnitContext& uc, const FunctionContext& fc,
                          const KnowledgeBase& kb, const ScanOptions& options,
                          std::vector<BugReport>& out);  // P10
void CheckTestAndFree(const UnitContext& uc, const FunctionContext& fc,
                      const KnowledgeBase& kb, const ScanOptions& options,
                      std::vector<BugReport>& out);  // P11
void CheckRefcountReset(const UnitContext& uc, const FunctionContext& fc,
                        const KnowledgeBase& kb, const ScanOptions& options,
                        std::vector<BugReport>& out);  // P12

// Builds the per-unit context (parse already done by caller).
UnitContext BuildUnitContext(const SourceFile& file, TranslationUnit unit,
                             const KnowledgeBase& kb);

// Refcounting API family used for inter-unpaired matching (P6): increase and
// decrease APIs pair only within a family ("of-node", "device", "pm", ...).
std::string ApiFamily(std::string_view api_name);

}  // namespace refscan

#endif  // REFSCAN_CHECKERS_ENGINE_H_
