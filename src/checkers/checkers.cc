// The twelve anti-pattern checkers (paper §5 / §6.1, plus the P10–P12
// extensions: raw refcount manipulation, test-and-free misuse, and refcount
// resets — see DESIGN.md §5.12).
//
// All checkers work on "traces": the ordered semantic events along one
// enumerated CFG path. P1/P4/P5/P7 share an acquisition analysis that
// aggregates, per acquisition site (inc event), what happened to the object
// across every enumerated path; the other checkers do focused per-path
// matching. See engine.h for the public entry points.
//
// Paths are enumerated once per function into a flat PathTraceSet
// (DESIGN.md §5.11) cached on the FunctionContext; every checker and the
// acquisition analysis walk that shared storage. Object identity checks
// (ObjectsMatch / RootsMatch) compare interned Symbols — integer compares,
// with spelling roots memoized by RootSymbol.

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <span>

#include "src/checkers/engine.h"
#include "src/checkers/templates.h"
#include "src/support/strings.h"

namespace refscan {

namespace {

using TraceItem = PathTraceItem;

// Builds (or returns the cached) flattened paths+traces for `fc`. The hit
// path is one lock-free acquire load of the raw generation pointer; the
// shared_ptr chain on the context only exists to own the generations.
const PathTraceSet& GetTraces(const FunctionContext& fc, const ScanOptions& options) {
  const uint64_t key = static_cast<uint64_t>(options.max_paths_per_function);
  const PathTraceSet* fast =
      std::atomic_ref<const PathTraceSet*>(fc.trace_fast).load(std::memory_order_acquire);
  if (fast != nullptr && fast->key == key) {
    return *fast;
  }
  auto fresh = std::make_shared<PathTraceSet>();
  fresh->key = key;
  fresh->path_offsets.push_back(0);
  fresh->item_offsets.push_back(0);
  fc.cfg->EnumeratePaths(
      [&](const std::vector<int>& path) {
        for (size_t p = 0; p < path.size(); ++p) {
          fresh->path_nodes.push_back(path[p]);
          for (const SemEvent& ev : fc.cpg->events(path[p])) {
            fresh->items.push_back(TraceItem{&ev, path[p], static_cast<uint32_t>(p)});
          }
        }
        fresh->path_offsets.push_back(static_cast<uint32_t>(fresh->path_nodes.size()));
        fresh->item_offsets.push_back(static_cast<uint32_t>(fresh->items.size()));
      },
      options.max_paths_per_function);
  fresh->prev = std::atomic_load_explicit(&fc.trace_cache, std::memory_order_acquire);
  std::atomic_store_explicit(&fc.trace_cache,
                             std::shared_ptr<const PathTraceSet>(fresh),
                             std::memory_order_release);
  std::atomic_ref<const PathTraceSet*>(fc.trace_fast)
      .store(fresh.get(), std::memory_order_release);
  return *fresh;
}

// Invokes `fn` once per enumerated path with (path-node-ids, trace).
template <typename Fn>
void ForEachTrace(const FunctionContext& fc, const ScanOptions& options, const Fn& fn) {
  const PathTraceSet& traces = GetTraces(fc, options);
  for (size_t p = 0; p < traces.paths(); ++p) {
    fn(std::span<const int>(traces.path_nodes.data() + traces.path_offsets[p],
                            traces.path_offsets[p + 1] - traces.path_offsets[p]),
       std::span<const TraceItem>(traces.items.data() + traces.item_offsets[p],
                                  traces.item_offsets[p + 1] - traces.item_offsets[p]));
  }
}

// True if, at a NULL-check of the tracked object (trace[j]), this path takes
// the branch on which the object is NULL — acquisition effectively failed,
// so the path holds no reference to release.
bool PathTakesNullBranch(const FunctionContext& fc, std::span<const int> path,
                         const TraceItem& item) {
  const CfgNode& cond = fc.cfg->node(item.node);
  if (item.path_pos + 1 >= path.size() || cond.succs.empty()) {
    return false;
  }
  const int next = path[item.path_pos + 1];
  if (item.ev->checks_null_true_branch) {
    // `if (!p)` / `p == NULL`: the true (first-linked) branch is the NULL side.
    return cond.succs.size() > 1 ? next == cond.succs[0] : false;
  }
  // `if (p)` / `p != NULL`: the fall-through / else side is the NULL side.
  return cond.succs.size() > 1 && next == cond.succs[1];
}

// Object identity matching. Exact spellings always match; a bare root
// matches any spelling rooted in it ("serial" vs "serial->kref"), which is
// how the paper's checkers treat an object and its embedded refcounter.
// Three integer compares in the common case; roots are memoized per Symbol.
bool ObjectsMatch(Symbol a, Symbol b) {
  if (a.empty() || b.empty()) {
    return false;
  }
  if (a == b) {
    return true;
  }
  const Symbol ra = RootSymbol(a);
  const Symbol rb = RootSymbol(b);
  return ra == rb && !ra.empty() && (a == ra || b == rb);
}

bool RootsMatch(Symbol a, Symbol b) {
  const Symbol ra = RootSymbol(a);
  return !ra.empty() && ra == RootSymbol(b);
}

bool NodeIsErrorReturn(const Cfg& cfg, int node) {
  const CfgNode& n = cfg.node(node);
  return n.stmt != nullptr && ReturnsErrorCode(*n.stmt);
}

// ----------------------------------------------------------------------
// Acquisition analysis shared by P1 / P4 / P5 / P7 (public in analysis.h).

using AcqMap = AcquisitionAnalysis;

std::string AcqKey(const SemEvent& ev) {
  return StrFormat("%u:%s:%s", ev.line, ev.object.c_str(),
                   ev.api != nullptr ? ev.api->name.c_str() : "");
}

AcqMap ComputeAcquisitions(const FunctionContext& fc, const ScanOptions& options) {
  AcqMap sites;
  ForEachTrace(fc, options, [&](std::span<const int> path, std::span<const TraceItem> trace) {
    for (size_t i = 0; i < trace.size(); ++i) {
      const SemEvent& acq = *trace[i].ev;
      if (acq.op != SemOp::kIncrease || acq.object.empty() || acq.api == nullptr) {
        continue;
      }
      AcqSite& site = sites[AcqKey(acq)];
      site.api = acq.api;
      site.line = acq.line;
      site.object = acq.object.str();

      // An acquired *result* landing directly in escaping storage
      // (`f->np = of_get_parent(...)`) is owned by that storage, not this
      // function. Only applies to returns-object APIs: for parameter-based
      // APIs (pm_runtime_get_sync(pdev->dev)) the object spelling is the
      // argument, not where the reference is stored.
      bool direct_store = false;
      if (options.model_ownership_transfer && acq.api->returns_object &&
          acq.api->object_param < 0) {
        const Symbol root = RootSymbol(acq.object);
        if (acq.object != root &&
            (fc.cpg->params().contains(root) || !fc.cpg->locals().contains(root))) {
          direct_store = true;
          site.transferred = true;
        }
      }

      bool paired = false;
      bool transferred = false;
      bool null_branch = false;
      bool freed = false;
      bool error_after = false;
      uint32_t exit_line = 0;
      for (size_t j = i + 1; j < trace.size(); ++j) {
        const SemEvent& ev = *trace[j].ev;
        if (fc.cfg->node(trace[j].node).is_error_context) {
          error_after = true;
        }
        if (options.prune_null_branches && ev.op == SemOp::kNullCheck &&
            ObjectsMatch(ev.object, acq.object) && PathTakesNullBranch(fc, path, trace[j])) {
          null_branch = true;  // acquisition failed on this path
          break;
        }
        if (ev.op == SemOp::kDecrease && ObjectsMatch(ev.object, acq.object)) {
          paired = true;
          break;
        }
        if (ev.op == SemOp::kFree && ObjectsMatch(ev.object, acq.object)) {
          site.freed_direct = true;
          site.free_line = ev.line;
          freed = true;
          break;
        }
        if (options.model_ownership_transfer && ev.op == SemOp::kReturn &&
            ObjectsMatch(ev.object, acq.object)) {
          transferred = true;
          break;
        }
        // `return to_foo(obj)` hands obj to the caller through a conversion
        // wrapper — but only functions returning a pointer can do that;
        // `return use(obj)` in an int function is just a use.
        if (options.model_ownership_transfer && ev.op == SemOp::kReturn &&
            ObjectsMatch(ev.aux, acq.object) &&
            fc.fn->return_type.view().find('*') != std::string_view::npos) {
          transferred = true;
          break;
        }
        if (options.model_ownership_transfer && ev.op == SemOp::kAssign && ev.escapes &&
            ObjectsMatch(ev.aux, acq.object)) {
          transferred = true;  // stored into longer-lived state
          // Keep scanning: P9 looks at the escape/dec interaction separately.
        }
        if (ev.op == SemOp::kAssign && !ev.escapes && trace[j].node != trace[i].node &&
            ev.object == acq.object && ev.aux != acq.object) {
          site.reassigned_while_held = true;
        }
        if (ev.op == SemOp::kReturn) {
          if (NodeIsErrorReturn(*fc.cfg, trace[j].node)) {
            error_after = true;
          }
          exit_line = ev.line;
          break;
        }
      }
      site.paired_somewhere |= paired;
      site.transferred |= transferred;
      if (!paired && !transferred && !null_branch && !freed && !direct_store) {
        site.unpaired_path = true;
        if (error_after && !site.unpaired_error_path) {
          site.error_exit_line = exit_line;
        }
        site.unpaired_error_path |= error_after;
      }
    }
  });
  return sites;
}

}  // namespace

const AcquisitionAnalysis& AnalyzeAcquisitions(const FunctionContext& fc,
                                               const ScanOptions& options) {
  // The cache is valid only for one option configuration; engines construct
  // fresh contexts per scan, so a mismatch only occurs when a caller mixes
  // configurations on one context — recompute in that case. Key and
  // analysis live in one immutable generation swapped atomically, so racing
  // readers with different options never observe a torn key/analysis pair;
  // the worst case is a redundant recompute, never a wrong result. The hit
  // path is one lock-free acquire load (see FunctionContext); superseded
  // generations chain via `prev`, so returned references outlive any swap.
  const uint64_t key = (options.prune_null_branches ? 1u : 0u) |
                       (options.model_ownership_transfer ? 2u : 0u) |
                       (static_cast<uint64_t>(options.max_paths_per_function) << 2);
  const AcquisitionCache* fast =
      std::atomic_ref<const AcquisitionCache*>(fc.acquisition_fast)
          .load(std::memory_order_acquire);
  if (fast != nullptr && fast->key == key) {
    return fast->analysis;
  }
  auto fresh = std::make_shared<AcquisitionCache>();
  fresh->key = key;
  fresh->analysis = ComputeAcquisitions(fc, options);
  fresh->prev = std::atomic_load_explicit(&fc.acquisition_cache, std::memory_order_acquire);
  std::atomic_store_explicit(&fc.acquisition_cache,
                             std::shared_ptr<const AcquisitionCache>(fresh),
                             std::memory_order_release);
  std::atomic_ref<const AcquisitionCache*>(fc.acquisition_fast)
      .store(fresh.get(), std::memory_order_release);
  return fresh->analysis;
}

namespace {

BugReport BaseReport(const UnitContext& uc, const FunctionContext& fc, int pattern,
                     Impact impact, uint32_t line) {
  BugReport r;
  r.anti_pattern = pattern;
  r.impact = impact;
  r.file = uc.unit.path;
  r.function = fc.fn->name.str();
  r.line = line;
  r.template_path = AntiPatternTemplate(pattern);
  return r;
}

}  // namespace

// ------------------------------------------------------------------ P1

void CheckReturnError(const UnitContext& uc, const FunctionContext& fc, const KnowledgeBase& kb,
                      const ScanOptions& options, std::vector<BugReport>& out) {
  const auto& analysis = AnalyzeAcquisitions(fc, options);
  for (const auto& [key, site] : analysis) {
    if (site.api->returns_error && site.unpaired_error_path) {
      BugReport r = BaseReport(uc, fc, 1, Impact::kLeak, site.line);
      r.exit_line = site.error_exit_line;
      r.api = site.api->name;
      r.object = site.object;
      r.message = StrFormat("%s() increments even on failure; error path misses the decrement",
                            site.api->name.c_str());
      out.push_back(std::move(r));
    }
  }
}

// ------------------------------------------------------------------ P2

void CheckReturnNull(const UnitContext& uc, const FunctionContext& fc, const KnowledgeBase& kb,
                     const ScanOptions& options, std::vector<BugReport>& out) {
  std::set<std::string> seen;
  ForEachTrace(fc, options, [&](std::span<const int> path, std::span<const TraceItem> trace) {
    for (size_t i = 0; i < trace.size(); ++i) {
      const SemEvent& acq = *trace[i].ev;
      if (acq.op != SemOp::kIncrease || acq.api == nullptr || !acq.api->may_return_null ||
          acq.object.empty()) {
        continue;
      }
      for (size_t j = i + 1; j < trace.size(); ++j) {
        const SemEvent& ev = *trace[j].ev;
        if (ev.op == SemOp::kNullCheck && ObjectsMatch(ev.object, acq.object)) {
          break;  // guarded on this path
        }
        if (ev.op == SemOp::kAssign && ev.object == acq.object &&
            trace[j].node != trace[i].node) {
          break;  // reassigned (same-node assign is the binding itself)
        }
        if (ev.op == SemOp::kDeref && ObjectsMatch(ev.object, acq.object)) {
          const std::string dedup = StrFormat("%u:%u", acq.line, ev.line);
          if (seen.insert(dedup).second) {
            BugReport r = BaseReport(uc, fc, 2, Impact::kNpd, acq.line);
            r.api = acq.api->name;
            r.object = acq.object.str();
            r.message = StrFormat("%s() may return NULL; '%s' dereferenced at line %u without a check",
                                  acq.api->name.c_str(), acq.object.c_str(), ev.line);
            out.push_back(std::move(r));
          }
          break;
        }
      }
    }
  });
}

// ------------------------------------------------------------------ P3

void CheckSmartLoopBreak(const UnitContext& uc, const FunctionContext& fc,
                         const KnowledgeBase& kb, const ScanOptions& options,
                         std::vector<BugReport>& out) {
  std::set<uint32_t> seen;
  ForEachTrace(fc, options, [&](std::span<const int> path, std::span<const TraceItem> trace) {
    for (size_t p = 0; p < path.size(); ++p) {
      const CfgNode& node = fc.cfg->node(path[p]);
      if (node.macro_loop < 0 || node.stmt == nullptr) {
        continue;
      }
      const bool exits_early = node.stmt->kind == Stmt::Kind::kBreak ||
                               node.stmt->kind == Stmt::Kind::kReturn ||
                               (node.stmt->kind == Stmt::Kind::kGoto &&
                                IsErrorLabel(node.stmt->name.view()));
      if (!exits_early) {
        continue;
      }
      // Identify the enclosing smartloop's iterator object.
      const SemEvent* head_ev = nullptr;
      for (const SemEvent& ev : fc.cpg->events(node.macro_loop)) {
        if (ev.op == SemOp::kLoopHead && ev.loop != nullptr) {
          head_ev = &ev;
        }
      }
      if (head_ev == nullptr || head_ev->object.empty()) {
        continue;  // unknown macro loop (e.g. list_for_each_entry): no refcounting
      }
      // Find the most recent traversal of the loop head before this exit and
      // look for a decrement of the iterator in between.
      size_t head_pos = 0;
      bool found_head = false;
      for (size_t q = p; q-- > 0;) {
        if (path[q] == node.macro_loop) {
          head_pos = q;
          found_head = true;
          break;
        }
      }
      if (!found_head) {
        continue;
      }
      bool released = false;
      for (size_t q = head_pos; q <= p; ++q) {
        for (const SemEvent& ev : fc.cpg->events(path[q])) {
          if (ev.op == SemOp::kDecrease && ObjectsMatch(ev.object, head_ev->object)) {
            released = true;
          }
        }
      }
      if (!released && seen.insert(node.line).second) {
        BugReport r = BaseReport(uc, fc, 3, Impact::kLeak, node.line);
        r.api = head_ev->loop->name;
        r.object = head_ev->object.str();
        r.message = StrFormat(
            "early exit from %s at line %u leaks the iterator '%s' (put the node before leaving)",
            head_ev->loop->name.c_str(), node.line, head_ev->object.c_str());
        out.push_back(std::move(r));
      }
    }
  });
}

// ------------------------------------------------------------------ P4

void CheckHiddenApi(const UnitContext& uc, const FunctionContext& fc, const KnowledgeBase& kb,
                    const ScanOptions& options, std::vector<BugReport>& out) {
  // Missing decrease: the developer never pairs the hidden acquisition on
  // any path (§5.2.2 "in any potential execution path").
  const auto& analysis = AnalyzeAcquisitions(fc, options);
  for (const auto& [key, site] : analysis) {
    if (site.api->hidden && !site.paired_somewhere && !site.transferred && site.unpaired_path &&
        !site.freed_direct) {
      BugReport r = BaseReport(uc, fc, 4, Impact::kLeak, site.line);
      r.api = site.api->name;
      r.object = site.object;
      r.message = StrFormat("%s() hides a refcount increase on '%s'; no path releases it",
                            site.api->name.c_str(), site.object.c_str());
      out.push_back(std::move(r));
    }
  }

  // Missing increase: a hidden-decrease API consumes a reference the caller
  // does not own (of_find_*(from) decrements `from`; a borrowed parameter
  // needs an of_node_get first). §5.2.2, 16 new bugs in the paper.
  std::set<std::string> seen;
  ForEachTrace(fc, options, [&](std::span<const int> path, std::span<const TraceItem> trace) {
    for (size_t i = 0; i < trace.size(); ++i) {
      const SemEvent& dec = *trace[i].ev;
      if (dec.op != SemOp::kDecrease || dec.api == nullptr ||
          dec.api->direction != RefDirection::kIncrease || dec.object.empty()) {
        continue;  // only implicit consumption by find-like APIs
      }
      const Symbol root = RootSymbol(dec.object);
      if (!fc.cpg->params().contains(root)) {
        continue;  // consuming a locally-acquired reference is the normal idiom
      }
      bool acquired_before = false;
      for (size_t j = 0; j < i; ++j) {
        const SemEvent& ev = *trace[j].ev;
        if (ev.op == SemOp::kIncrease && ObjectsMatch(ev.object, dec.object)) {
          acquired_before = true;
        }
      }
      if (!acquired_before) {
        const std::string dedup = StrFormat("mi:%u:%s", dec.line, dec.object.c_str());
        if (seen.insert(dedup).second) {
          BugReport r = BaseReport(uc, fc, 4, Impact::kUaf, dec.line);
          r.api = dec.api->name;
          r.object = dec.object.str();
          r.message = StrFormat(
              "%s() consumes a reference on borrowed parameter '%s'; missing increase before the call",
              dec.api->name.c_str(), dec.object.c_str());
          out.push_back(std::move(r));
        }
      }
    }
  });
}

// ------------------------------------------------------------------ P5

void CheckErrorHandle(const UnitContext& uc, const FunctionContext& fc, const KnowledgeBase& kb,
                      const ScanOptions& options, std::vector<BugReport>& out) {
  const auto& analysis = AnalyzeAcquisitions(fc, options);
  for (const auto& [key, site] : analysis) {
    if (site.api->returns_error) {
      continue;  // P1's territory
    }
    if ((site.paired_somewhere || site.transferred) && site.unpaired_error_path) {
      BugReport r = BaseReport(uc, fc, 5, Impact::kLeak, site.line);
      r.exit_line = site.error_exit_line;
      r.api = site.api->name;
      r.object = site.object;
      r.message = StrFormat(
          "'%s' from %s() is released on the normal path but not in the error-handling path",
          site.object.c_str(), site.api->name.c_str());
      out.push_back(std::move(r));
    }
    // The Listing-5 shape: the held pointer is overwritten before any
    // release — the reference is orphaned. (This is also where the paper's
    // checkers produced their 5 false positives.)
    if (!site.paired_somewhere && !site.transferred && site.reassigned_while_held &&
        site.unpaired_path) {
      BugReport r = BaseReport(uc, fc, 5, Impact::kLeak, site.line);
      r.api = site.api->name;
      r.object = site.object;
      r.message = StrFormat("'%s' is overwritten while a reference from %s() is still held",
                            site.object.c_str(), site.api->name.c_str());
      out.push_back(std::move(r));
    }
  }
}

// ------------------------------------------------------------------ P6

std::string ApiFamily(std::string_view api_name) {
  const std::string name(api_name);
  auto contains = [&](std::string_view w) { return name.find(w) != std::string::npos; };
  if (contains("of_node") || (name.starts_with("of_") && contains("node")) ||
      name.starts_with("of_get") || name.starts_with("of_find") || name.starts_with("of_parse") ||
      name.starts_with("of_graph")) {
    return "of-node";
  }
  if (contains("fwnode")) {
    return "fwnode";
  }
  if (contains("pm_runtime")) {
    return "pm-runtime";
  }
  if (contains("kobject")) {
    return "kobject";
  }
  if (name == "get_device" || name == "put_device" || contains("find_device") ||
      name == "device_initialize") {
    return "device";
  }
  if (name == "dev_hold" || name == "dev_put" || contains("ip_dev")) {
    return "netdev";
  }
  if (contains("sock")) {
    return "sock";
  }
  if (contains("kref")) {
    return "kref";
  }
  if (contains("refcount")) {
    return "refcount";
  }
  // Default: the API name with refcounting keywords stripped, so
  // usb_serial_get / usb_serial_put share a family.
  std::vector<std::string> words;
  for (const std::string& w : IdentifierWords(name)) {
    bool keyword = false;
    for (const auto& list : {IncreaseKeywords(), DecreaseKeywords()}) {
      for (const std::string& k : list) {
        keyword |= (w == k);
      }
    }
    if (!keyword) {
      words.push_back(w);
    }
  }
  return Join(words, "-");
}

namespace {

// Collects decrease families present anywhere in a function (no paths).
std::set<std::string> DecreaseFamilies(const FunctionContext& fc) {
  std::set<std::string> families;
  for (size_t i = 0; i < fc.cpg->size(); ++i) {
    for (const SemEvent& ev : fc.cpg->events(static_cast<int>(i))) {
      if (ev.op == SemOp::kDecrease && ev.api != nullptr &&
          ev.api->direction == RefDirection::kDecrease) {
        families.insert(ApiFamily(ev.api->name));
      }
    }
  }
  return families;
}

const FunctionContext* FindContext(const UnitContext& uc, std::string_view name) {
  for (const FunctionContext& fc : uc.functions) {
    if (fc.fn->name == name) {
      return &fc;
    }
  }
  return nullptr;
}

}  // namespace

void CheckInterUnpaired(const UnitContext& uc, const KnowledgeBase& kb,
                        const ScanOptions& options, std::vector<BugReport>& out) {
  // Pair discovery 1: ops-struct designated initializers (§5.3.2).
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const GlobalVar& g : uc.unit.globals) {
    for (const auto& [acq_field, rel_field] : PairedOpsFields()) {
      std::string acq_fn;
      std::string rel_fn;
      for (const DesignatedInit& init : g.inits) {
        if (init.field == acq_field) {
          acq_fn = init.value.str();
        }
        if (init.field == rel_field) {
          rel_fn = init.value.str();
        }
      }
      if (!acq_fn.empty() && !rel_fn.empty()) {
        pairs.emplace_back(acq_fn, rel_fn);
      }
    }
  }
  // Pair discovery 2: name-paired functions (foo_register/foo_unregister).
  for (const FunctionDef& fn : uc.unit.functions) {
    const auto words = IdentifierWords(fn.name.view());
    for (size_t w = 0; w < words.size(); ++w) {
      const std::string release = PairedReleaseWord(words[w]);
      if (release.empty()) {
        continue;
      }
      std::vector<std::string> renamed = words;
      renamed[w] = release;
      const std::string candidate = Join(renamed, "_");
      if (uc.unit.FindFunction(candidate) != nullptr && candidate != fn.name) {
        pairs.emplace_back(fn.name.str(), candidate);
      }
    }
  }

  std::set<std::string> seen;
  for (const auto& [acq_name, rel_name] : pairs) {
    const FunctionContext* acq = FindContext(uc, acq_name);
    const FunctionContext* rel = FindContext(uc, rel_name);
    if (acq == nullptr || rel == nullptr) {
      continue;
    }
    const std::set<std::string> released = DecreaseFamilies(*rel);
    const auto& analysis = AnalyzeAcquisitions(*acq, options);
    for (const auto& [key, site] : analysis) {
      if (site.paired_somewhere || site.freed_direct) {
        continue;  // locally balanced (or a P7 case)
      }
      const std::string family = ApiFamily(site.api->name);
      if (released.contains(family)) {
        continue;
      }
      const std::string dedup = StrFormat("%s:%u", acq_name.c_str(), site.line);
      if (!seen.insert(dedup).second) {
        continue;
      }
      BugReport r;
      r.anti_pattern = 6;
      r.impact = Impact::kLeak;
      r.file = uc.unit.path;
      r.function = acq_name;
      r.line = site.line;
      r.api = site.api->name;
      r.object = site.object;
      r.template_path = AntiPatternTemplate(6);
      r.message = StrFormat("%s() acquires via %s() but paired %s() never releases the %s family",
                            acq_name.c_str(), site.api->name.c_str(), rel_name.c_str(),
                            family.c_str());
      out.push_back(std::move(r));
    }
  }
}

// ------------------------------------------------------------------ P7

void CheckDirectFree(const UnitContext& uc, const FunctionContext& fc, const KnowledgeBase& kb,
                     const ScanOptions& options, std::vector<BugReport>& out) {
  const auto& analysis = AnalyzeAcquisitions(fc, options);
  for (const auto& [key, site] : analysis) {
    if (site.freed_direct) {
      BugReport r = BaseReport(uc, fc, 7, Impact::kLeak, site.free_line);
      r.api = site.api->name;
      r.object = site.object;
      r.message = StrFormat(
          "'%s' (refcounted via %s()) is kfree'd directly at line %u; the release callback never runs",
          site.object.c_str(), site.api->name.c_str(), site.free_line);
      out.push_back(std::move(r));
    }
  }
}

// ------------------------------------------------------------------ P8

void CheckUseAfterDecrease(const UnitContext& uc, const FunctionContext& fc,
                           const KnowledgeBase& kb, const ScanOptions& options,
                           std::vector<BugReport>& out) {
  std::set<std::string> seen;
  ForEachTrace(fc, options, [&](std::span<const int> path, std::span<const TraceItem> trace) {
    for (size_t i = 0; i < trace.size(); ++i) {
      const SemEvent& dec = *trace[i].ev;
      if (dec.op != SemOp::kDecrease || dec.object.empty() || dec.api == nullptr ||
          dec.api->direction != RefDirection::kDecrease) {
        continue;
      }
      if (dec.api->tests_zero) {
        continue;  // dec_and_test semantics are P11's territory: whether the
                   // object died depends on the tested result, which this
                   // checker does not model
      }
      const Symbol root = RootSymbol(dec.object);
      if (root.empty()) {
        continue;
      }
      for (size_t j = i + 1; j < trace.size(); ++j) {
        const SemEvent& ev = *trace[j].ev;
        if ((ev.op == SemOp::kIncrease || ev.op == SemOp::kAssign) &&
            RootsMatch(ev.object, dec.object)) {
          break;  // re-acquired or re-initialised
        }
        const bool uses = (ev.op == SemOp::kDeref || ev.op == SemOp::kUnlock ||
                           ev.op == SemOp::kLock) &&
                          RootsMatch(ev.object, dec.object);
        if (uses) {
          const std::string dedup = StrFormat("%u:%u:%s", dec.line, ev.line, root.c_str());
          if (seen.insert(dedup).second) {
            BugReport r = BaseReport(uc, fc, 8, Impact::kUaf, dec.line);
            r.api = dec.api->name;
            r.object = dec.object.str();
            r.message = StrFormat(
                "'%s' is used at line %u after %s() at line %u may have freed it (UAD)",
                root.c_str(), ev.line, dec.api->name.c_str(), dec.line);
            out.push_back(std::move(r));
          }
          break;
        }
      }
    }
  });
}

// ------------------------------------------------------------------ P9

void CheckReferenceEscape(const UnitContext& uc, const FunctionContext& fc,
                          const KnowledgeBase& kb, const ScanOptions& options,
                          std::vector<BugReport>& out) {
  std::set<std::string> seen;
  ForEachTrace(fc, options, [&](std::span<const int> path, std::span<const TraceItem> trace) {
    for (size_t i = 0; i < trace.size(); ++i) {
      const SemEvent& esc = *trace[i].ev;
      if (esc.op != SemOp::kAssign || !esc.escapes || esc.aux.empty()) {
        continue;
      }
      // The escaping value must be a reference we acquired on this path.
      bool acquired = false;
      for (size_t j = 0; j < i; ++j) {
        const SemEvent& ev = *trace[j].ev;
        if (ev.op == SemOp::kIncrease && ObjectsMatch(ev.object, esc.aux)) {
          acquired = true;
        }
        if (ev.op == SemOp::kDecrease && ObjectsMatch(ev.object, esc.aux)) {
          acquired = false;
        }
      }
      if (!acquired) {
        continue;
      }
      // An increase adjacent to the escape point is the correct idiom.
      bool adjacent_increase = false;
      for (size_t j = i + 1; j < trace.size() && j <= i + 2; ++j) {
        if (trace[j].ev->op == SemOp::kIncrease && ObjectsMatch(trace[j].ev->object, esc.aux)) {
          adjacent_increase = true;
        }
      }
      if (adjacent_increase) {
        continue;
      }
      // The stored alias becomes dangling when the function's own reference
      // is dropped later on the same path.
      bool dropped_later = false;
      for (size_t j = i + 1; j < trace.size(); ++j) {
        const SemEvent& ev = *trace[j].ev;
        if (ev.op == SemOp::kDecrease && ObjectsMatch(ev.object, esc.aux)) {
          dropped_later = true;
          break;
        }
        if (ev.op == SemOp::kIncrease && ObjectsMatch(ev.object, esc.aux)) {
          break;
        }
      }
      if (!dropped_later) {
        continue;
      }
      const std::string dedup = StrFormat("%u:%s", esc.line, esc.object.c_str());
      if (seen.insert(dedup).second) {
        BugReport r = BaseReport(uc, fc, 9, Impact::kUaf, esc.line);
        r.object = esc.object.str();
        r.api = esc.aux.str();
        r.message = StrFormat(
            "reference '%s' escapes into '%s' at line %u without an increase, then is dropped",
            esc.aux.c_str(), esc.object.c_str(), esc.line);
        out.push_back(std::move(r));
      }
    }
  });
}

// ------------------------------------------------------------------ P10

void CheckRawManipulation(const UnitContext& uc, const FunctionContext& fc,
                          const KnowledgeBase& kb, const ScanOptions& options,
                          std::vector<BugReport>& out) {
  // No path sensitivity needed: any ++/--/+=/-= on a field the KB knows to
  // be a refcounter bypasses the checked API on every path — refcount_t
  // saturation (and uACPI's BUGGED_REFCOUNT pinning) only protects counters
  // that go through the accessor functions.
  std::set<std::string> seen;
  for (size_t n = 0; n < fc.cpg->size(); ++n) {
    for (const SemEvent& ev : fc.cpg->events(static_cast<int>(n))) {
      if ((ev.op != SemOp::kRawInc && ev.op != SemOp::kRawDec) || ev.object.empty()) {
        continue;
      }
      const std::string dedup = StrFormat("%u:%s", ev.line, ev.object.c_str());
      if (!seen.insert(dedup).second) {
        continue;
      }
      BugReport r = BaseReport(uc, fc, 10, Impact::kUaf, ev.line);
      r.object = ev.object.str();
      r.message = StrFormat(
          "raw %s of refcount field '%s' bypasses the checked API; saturation and "
          "overflow protection are lost",
          ev.op == SemOp::kRawInc ? "increment" : "decrement", ev.object.c_str());
      out.push_back(std::move(r));
    }
  }
}

// ------------------------------------------------------------------ P11

void CheckTestAndFree(const UnitContext& uc, const FunctionContext& fc, const KnowledgeBase& kb,
                      const ScanOptions& options, std::vector<BugReport>& out) {
  std::set<std::string> seen;
  ForEachTrace(fc, options, [&](std::span<const int> path, std::span<const TraceItem> trace) {
    for (size_t i = 0; i < trace.size(); ++i) {
      const SemEvent& dec = *trace[i].ev;
      if (dec.op != SemOp::kDecrease || dec.api == nullptr || !dec.api->tests_zero ||
          dec.object.empty()) {
        continue;
      }
      const Symbol root = RootSymbol(dec.object);
      if (root.empty()) {
        continue;
      }
      if (!dec.result_tested) {
        // Ignored result: the one signal that the last reference dropped is
        // discarded, so no path runs the free — the object leaks forever.
        const std::string dedup = StrFormat("ig:%u:%s", dec.line, root.c_str());
        if (seen.insert(dedup).second) {
          BugReport r = BaseReport(uc, fc, 11, Impact::kLeak, dec.line);
          r.api = dec.api->name;
          r.object = dec.object.str();
          r.message = StrFormat(
              "%s() result ignored at line %u: when the last reference drops, nothing frees '%s'",
              dec.api->name.c_str(), dec.line, root.c_str());
          out.push_back(std::move(r));
        }
        continue;
      }
      // Result tested: find the free the true branch runs. Only a free of
      // the object itself counts (exact root match) — `kfree(o->name)`
      // inside a destructor is releasing a member, not the object.
      size_t free_pos = 0;
      bool freed = false;
      for (size_t j = i + 1; j < trace.size(); ++j) {
        const SemEvent& ev = *trace[j].ev;
        if ((ev.op == SemOp::kIncrease || ev.op == SemOp::kAssign) &&
            RootsMatch(ev.object, dec.object)) {
          break;  // re-acquired or re-bound before any free
        }
        if (ev.op == SemOp::kFree && ev.object == root) {
          free_pos = j;
          freed = true;
          break;
        }
      }
      if (!freed) {
        continue;
      }
      // Anything touching the object after that free on the same path is a
      // use-after-free (or a double free).
      for (size_t j = free_pos + 1; j < trace.size(); ++j) {
        const SemEvent& ev = *trace[j].ev;
        if (ev.op == SemOp::kAssign && RootsMatch(ev.object, dec.object)) {
          break;  // re-bound to a fresh object
        }
        const bool refree = ev.op == SemOp::kFree && ev.object == root;
        const bool uses = (ev.op == SemOp::kDeref || ev.op == SemOp::kLock ||
                           ev.op == SemOp::kUnlock) &&
                          RootsMatch(ev.object, dec.object);
        if (refree || uses) {
          const std::string dedup = StrFormat("tf:%u:%u:%s", dec.line, ev.line, root.c_str());
          if (seen.insert(dedup).second) {
            BugReport r = BaseReport(uc, fc, 11, Impact::kUaf, dec.line);
            r.api = dec.api->name;
            r.object = dec.object.str();
            r.message = StrFormat(
                "'%s' is %s at line %u after the %s() true branch already freed it at line %u",
                root.c_str(), refree ? "freed again" : "used", ev.line, dec.api->name.c_str(),
                trace[free_pos].ev->line);
            out.push_back(std::move(r));
          }
          break;
        }
      }
    }
  });
}

// ------------------------------------------------------------------ P12

void CheckRefcountReset(const UnitContext& uc, const FunctionContext& fc,
                        const KnowledgeBase& kb, const ScanOptions& options,
                        std::vector<BugReport>& out) {
  // A literal-zero store into a live refcount field erases every reference
  // the counter was tracking (and un-sticks a saturated refcount_t, undoing
  // the overflow defence). `obj->refs = 1` is the accepted construction
  // idiom and is left alone (raw_set_nonzero).
  std::set<std::string> seen;
  for (size_t n = 0; n < fc.cpg->size(); ++n) {
    for (const SemEvent& ev : fc.cpg->events(static_cast<int>(n))) {
      if (ev.op != SemOp::kRawSet || ev.raw_set_nonzero || ev.object.empty()) {
        continue;
      }
      const std::string dedup = StrFormat("%u:%s", ev.line, ev.object.c_str());
      if (!seen.insert(dedup).second) {
        continue;
      }
      BugReport r = BaseReport(uc, fc, 12, Impact::kUaf, ev.line);
      r.object = ev.object.str();
      r.message = StrFormat(
          "refcount field '%s' is reset to 0 at line %u; outstanding references are orphaned "
          "and the next put underflows",
          ev.object.c_str(), ev.line);
      out.push_back(std::move(r));
    }
  }
}

}  // namespace refscan
