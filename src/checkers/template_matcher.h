// Semantic-template matching DSL.
//
// The paper expresses every anti-pattern as a path template over semantic
// operators (§3.2, Table 1). This module makes that formalism executable:
// a template string is parsed into a step sequence and matched against the
// enumerated execution paths of a function, so new checkers can be written
// as one-line templates instead of C++.
//
// Grammar (ASCII rendering of the paper's notation):
//
//   template := step (" -> " step)*
//   step     := "F_start" | "F_end"                  function entry / exit
//             | "S_G" ["(" api ")"]                  increase; api filter optional
//             | "S_G_E" | "S_G_N" | "S_G_H"          deviant/hidden increases
//             | "S_P" ["(" obj ")"]                  decrease
//             | "S_D" ["(" obj ")"]                  dereference
//             | "S_A"                                assignment (escaping if "S_A_GO")
//             | "S_L" | "S_U"                        lock / unlock
//             | "S_free"                             kfree-style deallocation
//             | "S_ret"                              any return
//             | "B_error"                            an error-context region is entered
//             | "M_SL"                               a smartloop head
//             | "!S_P" ["(" obj ")"]                 negation: no decrease between the
//                                                    surrounding steps (also !S_G, !S_D)
//
//   The pseudo-argument "p0" unifies objects: every step carrying "(p0)"
//   must bind to the same symbolic object, e.g. the paper's Listing 2
//   template  "F_start -> S_P(p0) -> S_D(p0) -> F_end".
//
// A template matches a function if *some* enumerated path contains the step
// sequence in order (with arbitrary events in between, except across
// negated steps, which forbid their event between their neighbours).

#ifndef REFSCAN_CHECKERS_TEMPLATE_MATCHER_H_
#define REFSCAN_CHECKERS_TEMPLATE_MATCHER_H_

#include <optional>
#include <string>
#include <vector>

#include "src/checkers/engine.h"

namespace refscan {

// One parsed template step.
struct MatchStep {
  enum class What : uint8_t {
    kFunctionStart,
    kFunctionEnd,
    kIncrease,
    kDecrease,
    kDeref,
    kAssign,
    kEscapeAssign,
    kLock,
    kUnlock,
    kFree,
    kReturn,
    kErrorRegion,
    kSmartLoop,
  };
  What what = What::kFunctionStart;
  bool negated = false;    // "!S_P": the event must NOT occur between neighbours
  bool wants_p0 = false;   // "(p0)": unify with the template's bound object
  std::string api_filter;  // "(name)" with a non-p0 identifier: API name filter
  // Deviation filters for kIncrease.
  bool require_returns_error = false;  // S_G_E
  bool require_returns_null = false;   // S_G_N
  bool require_hidden = false;         // S_G_H
};

struct SemanticTemplate {
  std::string source;            // the original template text
  std::vector<MatchStep> steps;  // parsed steps
};

// Parses a template string; std::nullopt on syntax errors.
std::optional<SemanticTemplate> ParseTemplate(std::string_view text);

struct TemplateMatch {
  uint32_t line = 0;        // line of the first bound concrete event
  uint32_t last_line = 0;   // line of the last bound concrete event
  std::string object;       // the p0 binding, if any
  std::string api;          // API of the first refcounting event bound
};

// Matches the template against every enumerated path of `fc`; at most one
// match per distinct (line, object) binding is returned.
std::vector<TemplateMatch> MatchTemplate(const SemanticTemplate& tmpl, const FunctionContext& fc,
                                         const ScanOptions& options);

// Convenience: runs a template over a whole tree and produces BugReports
// (anti_pattern = 0, template_path = the template source).
std::vector<BugReport> RunTemplateChecker(const SemanticTemplate& tmpl, const SourceTree& tree,
                                          KnowledgeBase kb = KnowledgeBase::BuiltIn(),
                                          const ScanOptions& options = {});

}  // namespace refscan

#endif  // REFSCAN_CHECKERS_TEMPLATE_MATCHER_H_
