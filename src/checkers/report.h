// Bug reports produced by the anti-pattern checkers.

#ifndef REFSCAN_CHECKERS_REPORT_H_
#define REFSCAN_CHECKERS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace refscan {

// Security impact classes the paper tracks (Table 4).
enum class Impact : uint8_t {
  kLeak,  // memory leak (missing decrease)
  kUaf,   // use-after-free (UAD, escape, missing increase)
  kNpd,   // NULL-pointer dereference (return-NULL deviants)
};

std::string_view ImpactName(Impact impact);

struct BugReport {
  int anti_pattern = 0;  // 1..12 (paper's P1..P9 plus the P10..P12 extensions)
  Impact impact = Impact::kLeak;

  std::string file;
  std::string function;
  uint32_t line = 0;       // the acquire / decrease / escape site
  uint32_t exit_line = 0;  // the leaking exit / offending use, when known (0 otherwise)

  std::string api;     // the bug-caused API (Table 5 column 3)
  std::string object;  // symbolic object involved

  std::string template_path;  // rendered semantic template (Table 1 style)
  std::string message;        // one-line human explanation

  // Stable ordering / dedup key.
  std::string Key() const;
  bool operator<(const BugReport& other) const { return Key() < other.Key(); }
};

// Drops duplicates (same file/function/object/line across patterns keeps the
// lowest-numbered anti-pattern, matching how the paper counts one bug per
// site) and sorts by location.
std::vector<BugReport> DeduplicateReports(std::vector<BugReport> reports);

// Serializes reports as a JSON array (machine-readable CLI / CI output).
std::string ReportsToJson(const std::vector<BugReport>& reports);

// Appends `text` to `out` as a quoted, escaped JSON string (shared by the
// report and scan-result serializers).
void AppendJsonString(std::string& out, std::string_view text);

}  // namespace refscan

#endif  // REFSCAN_CHECKERS_REPORT_H_
