#include "src/checkers/templates.h"

namespace refscan {

std::string RenderStep(const TemplateStep& step) {
  std::string out = step.context;
  if (!step.op.empty()) {
    out.push_back('_');
    out.append(step.op);
  }
  if (!step.detail.empty()) {
    out.push_back('(');
    out.append(step.detail);
    out.push_back(')');
  }
  return out;
}

std::string RenderTemplate(const std::vector<TemplateStep>& steps) {
  std::string out;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i != 0) {
      out.append(" -> ");
    }
    out.append(RenderStep(steps[i]));
  }
  return out;
}

std::string AntiPatternTemplate(int anti_pattern) {
  switch (anti_pattern) {
    case 1:  // §5.1.3
      return "F_start -> S_G_E -> B_error -> F_end";
    case 2:
      return "F_start -> S_G_N -> S_D_N -> F_end";
    case 3:  // §5.2.3
      return "F_start -> M_SL -> S_break -> F_end";
    case 4:
      return "F_start -> S_G_H|P_H -> F_end";
    case 5:  // §5.3.4
      return "F_start -> S_G -> S_P|B_error -> F_end";
    case 6:
      return "F^T_start -> S_G -> F^T_end /\\ F^B_start -> F^B_end";
    case 7:
      return "F_start -> S_G -> S_free -> F_end";
    case 8:  // §5.4.3
      return "F_start -> S_P(p0) -> S_D(p0) -> F_end";
    case 9:
      return "F_start -> S_A_G|O -> F_end";
    case 10:  // DESIGN.md §5.12: raw ++/-- on a refcount field
      return "F_start -> S_RAW(p0) -> F_end";
    case 11:  // dec_and_test result ignored, or true-branch free then use
      return "F_start -> S_PT(p0) -> [S_free(p0) -> S_D(p0)] -> F_end";
    case 12:  // literal-zero store into a live refcount field
      return "F_start -> S_A_0(p0) -> F_end";
    default:
      return "?";
  }
}

std::string_view AntiPatternName(int anti_pattern) {
  switch (anti_pattern) {
    case 1:
      return "Return-Error";
    case 2:
      return "Return-NULL";
    case 3:
      return "SmartLoop-Break";
    case 4:
      return "Hidden-Refcounting";
    case 5:
      return "Error-Handle";
    case 6:
      return "Inter-Unpaired";
    case 7:
      return "Direct-Free";
    case 8:
      return "Use-After-Decrease";
    case 9:
      return "Reference-Escape";
    case 10:
      return "Raw-Manipulation";
    case 11:
      return "Test-And-Free";
    case 12:
      return "Refcount-Reset";
    default:
      return "Unknown";
  }
}

}  // namespace refscan
