#include "src/checkers/report.h"

#include <algorithm>
#include <map>

#include "src/support/strings.h"

namespace refscan {

std::string_view ImpactName(Impact impact) {
  switch (impact) {
    case Impact::kLeak:
      return "Leak";
    case Impact::kUaf:
      return "UAF";
    case Impact::kNpd:
      return "NPD";
  }
  return "?";
}

std::string BugReport::Key() const {
  return StrFormat("%s:%s:%u:%s", file.c_str(), function.c_str(), line, object.c_str());
}

std::vector<BugReport> DeduplicateReports(std::vector<BugReport> reports) {
  // Same site (file/function/line/object): keep the lowest-numbered pattern
  // (P1 is more specific than P5, etc.).
  std::map<std::string, BugReport> by_site;
  for (BugReport& r : reports) {
    const std::string key = r.Key();
    auto it = by_site.find(key);
    if (it == by_site.end()) {
      by_site.emplace(key, std::move(r));
    } else if (r.anti_pattern < it->second.anti_pattern) {
      it->second = std::move(r);
    }
  }
  std::vector<BugReport> out;
  out.reserve(by_site.size());
  for (auto& [key, r] : by_site) {
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(),
            [](const BugReport& a, const BugReport& b) {
              if (a.file != b.file) {
                return a.file < b.file;
              }
              if (a.line != b.line) {
                return a.line < b.line;
              }
              return a.object < b.object;
            });
  return out;
}

void AppendJsonString(std::string& out, std::string_view text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string ReportsToJson(const std::vector<BugReport>& reports) {
  std::string out = "[\n";
  for (size_t i = 0; i < reports.size(); ++i) {
    const BugReport& r = reports[i];
    out += "  {";
    out += "\"anti_pattern\": " + std::to_string(r.anti_pattern) + ", ";
    out += "\"impact\": ";
    AppendJsonString(out, ImpactName(r.impact));
    out += ", \"file\": ";
    AppendJsonString(out, r.file);
    out += StrFormat(", \"line\": %u", r.line);
    if (r.exit_line > 0) {
      out += StrFormat(", \"exit_line\": %u", r.exit_line);
    }
    out += ", \"function\": ";
    AppendJsonString(out, r.function);
    out += ", \"api\": ";
    AppendJsonString(out, r.api);
    out += ", \"object\": ";
    AppendJsonString(out, r.object);
    out += ", \"template\": ";
    AppendJsonString(out, r.template_path);
    out += ", \"message\": ";
    AppendJsonString(out, r.message);
    out += "}";
    if (i + 1 < reports.size()) {
      out += ",";
    }
    out += "\n";
  }
  out += "]\n";
  return out;
}

}  // namespace refscan
