// Semantic-template rendering (§3.2).
//
// The paper describes bugs with operator/context symbols: 𝒢/𝒫 refcount ops,
// 𝒜 assignment, 𝒟 dereference, ℒ/𝒰 lock/unlock; contexts 𝒮 statement,
// ℬ basic block, ℱ function, ℳ macro; path arrows →. We render them in
// ASCII ("F_start -> S_G -> B_error -> F_end") so reports and the Table 1
// bench are plain-text diffable.

#ifndef REFSCAN_CHECKERS_TEMPLATES_H_
#define REFSCAN_CHECKERS_TEMPLATES_H_

#include <string>
#include <vector>

namespace refscan {

// One element of a semantic template path, e.g. "S_G(pm_runtime_get_sync)".
struct TemplateStep {
  std::string context;  // "F_start", "S", "B_error", "M_SL", "F_end", ...
  std::string op;       // "G", "P", "U.D", "G_E", ... (empty for pure contexts)
  std::string detail;   // API name or object, rendered in parentheses
};

std::string RenderStep(const TemplateStep& step);
std::string RenderTemplate(const std::vector<TemplateStep>& steps);

// The canonical anti-pattern templates (P1..P9) exactly as §5 states them.
std::string AntiPatternTemplate(int anti_pattern);

// Short human name for each anti-pattern ("Return-Error", "SmartLoop-Break", ...).
std::string_view AntiPatternName(int anti_pattern);

}  // namespace refscan

#endif  // REFSCAN_CHECKERS_TEMPLATES_H_
