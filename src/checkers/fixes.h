// Patch suggestion generation.
//
// The paper's authors sent a patch for every one of the 351 new bugs
// (§6.4). This module generates those patch hunks mechanically from a
// BugReport plus the source: where to insert the missing decrement, which
// call to reorder for a UAD, where to add the increase for an escape, etc.
// Output is a unified-diff-style hunk against the scanned file.

#ifndef REFSCAN_CHECKERS_FIXES_H_
#define REFSCAN_CHECKERS_FIXES_H_

#include <string>

#include "src/checkers/report.h"
#include "src/support/source.h"

namespace refscan {

struct FixSuggestion {
  bool available = false;   // some patterns need human judgement (P6 peers)
  std::string summary;      // one-line patch subject, kernel style
  std::string explanation;  // commit-body style rationale
  std::string diff;         // unified-diff hunk ("--- a/... +++ b/..." + @@)
};

// Suggests a patch for `report` given the file it was found in. Returns
// available=false when no mechanical fix is safe (the caller should write
// the patch by hand, as for inter-procedural P6 bugs).
FixSuggestion SuggestFix(const BugReport& report, const SourceFile& file);

// The decrement API paired with an acquiring API ("of_node_put" for any
// of_* acquirer, "pm_runtime_put_noidle" for pm_runtime_get_sync, ...);
// empty when unknown.
std::string PairedDecrementFor(std::string_view api_name);

// Applies a unified-diff hunk produced by SuggestFix back onto the file's
// text, returning the patched content. Returns the original text unchanged
// if the hunk does not apply cleanly (context mismatch). This closes the
// loop: suggest → apply → re-scan → report gone.
std::string ApplyUnifiedDiff(const SourceFile& file, const std::string& diff);

}  // namespace refscan

#endif  // REFSCAN_CHECKERS_FIXES_H_
