#include "src/checkers/scan_stages.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "src/cache/store.h"
#include "src/support/faultinject.h"
#include "src/support/governor.h"
#include "src/support/strings.h"
#include "src/support/telemetry.h"

namespace refscan {

namespace {

// Runs every enabled checker over one file's contexts, appending raw
// reports to the shard. The caller owns the shard exclusively; the KB is
// immutable and read concurrently.
FileShard CheckOneFile(const SourceFile& file, TranslationUnit unit, const KnowledgeBase& kb,
                       const ScanOptions& options) {
  FileShard shard;
  // Quarantined function bodies ride along with the shard (and, via
  // StoreReports, with the cache entry): parsing is deterministic, so the
  // list is identical whichever process or scan produced the unit.
  shard.degraded = std::move(unit.degraded);
  const UnitContext uc = BuildUnitContext(file, std::move(unit), kb);
  shard.functions = uc.functions.size();

  const auto& enabled = options.enabled_patterns;
  for (const FunctionContext& fc : uc.functions) {
    CheckDeadline("checker");
    if (enabled.contains(1)) {
      CheckReturnError(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(2)) {
      CheckReturnNull(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(3)) {
      CheckSmartLoopBreak(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(4)) {
      CheckHiddenApi(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(5)) {
      CheckErrorHandle(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(7)) {
      CheckDirectFree(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(8)) {
      CheckUseAfterDecrease(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(9)) {
      CheckReferenceEscape(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(10)) {
      CheckRawManipulation(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(11)) {
      CheckTestAndFree(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(12)) {
      CheckRefcountReset(uc, fc, kb, options, shard.raw);
    }
  }
  if (enabled.contains(6)) {
    CheckInterUnpaired(uc, kb, options, shard.raw);
  }
  return shard;
}

// Maps an injected fault to the failure taxonomy by its site prefix.
FailureKind ClassifyFault(const FaultInjected& e) {
  if (e.transient_io()) {
    return FailureKind::kIo;
  }
  const std::string& site = e.site();
  if (site.rfind("fs.", 0) == 0) {
    return FailureKind::kIo;
  }
  if (site.rfind("cache.", 0) == 0) {
    return FailureKind::kCache;
  }
  if (site.rfind("parser.", 0) == 0) {
    return FailureKind::kParse;
  }
  return FailureKind::kInternal;
}

// Runs one file's pipeline stage inside its sandbox: a fresh ScopedDeadline
// per attempt, one bounded-backoff retry for transient I/O failures (only
// while `retry_allowed` — the stage-3 body clears it once it has consumed
// the cached TranslationUnit), and exception → FileFailure classification.
// Returns false when the file is quarantined (`failure` is filled in); the
// caller must then discard the file's partial state.
template <typename Fn>
bool GuardFileStage(std::string_view path, FailureStage stage, uint32_t timeout_ms,
                    const bool& retry_allowed, Fn&& body, std::optional<FileFailure>& failure,
                    bool& retried) {
  FileFailure f;
  f.path = std::string(path);
  f.stage = stage;
  for (int attempt = 0;; ++attempt) {
    try {
      ScopedDeadline deadline(timeout_ms);
      body();
      return true;
    } catch (const FaultInjected& e) {
      if (e.transient_io() && retry_allowed && attempt == 0) {
        retried = true;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      f.kind = ClassifyFault(e);
      f.what = e.what();
    } catch (const ResourceLimitError& e) {
      f.kind = FailureKind::kResourceLimit;
      f.what = e.what();
    } catch (const std::exception& e) {
      f.kind = FailureKind::kInternal;
      f.what = e.what();
    } catch (...) {
      f.kind = FailureKind::kInternal;
      f.what = "unknown exception";
    }
    f.retries = retried ? 1 : 0;
    failure = std::move(f);
    return false;
  }
}

}  // namespace

std::shared_ptr<ObjectStore> MakeScanStore(const ScanOptions& options) {
  if (options.object_store != nullptr) {
    return options.object_store;  // resident injection wins over any location
  }
  if (!options.cache_server.empty()) {
    return std::make_shared<RemoteStore>(options.cache_server);
  }
  if (options.cache_dir.empty()) {
    return nullptr;
  }
  auto local = std::make_shared<LocalStore>(options.cache_dir);
  if (!local->ok()) {
    return nullptr;  // degrade to a disabled cache rather than failing the scan
  }
  return local;
}

void WriteScanOptionsWire(ByteWriter& w, const ScanOptions& o) {
  w.U64(o.max_paths_per_function);
  w.I32(o.nesting_threshold);
  w.Bool(o.discover_from_source);
  w.U32(static_cast<uint32_t>(o.enabled_patterns.size()));
  for (const int p : o.enabled_patterns) {
    w.I32(p);
  }
  w.U32(static_cast<uint32_t>(o.dialects.size()));
  for (const std::string& d : o.dialects) {
    w.Str(d);
  }
  w.U64(o.jobs);
  w.Str(o.cache_dir);
  w.Str(o.cache_server);
  w.Bool(o.prune_null_branches);
  w.Bool(o.model_ownership_transfer);
  w.Bool(o.interprocedural);
  w.Str(o.fault_spec);
  w.U32(o.file_timeout_ms);
  w.U64(o.max_file_bytes);
  w.U64(o.max_ast_nodes);
  w.I32(o.max_ast_depth);
  uint64_t ratio_bits = 0;
  static_assert(sizeof(ratio_bits) == sizeof(o.max_failure_ratio));
  std::memcpy(&ratio_bits, &o.max_failure_ratio, sizeof(ratio_bits));
  w.U64(ratio_bits);
  w.Bool(o.streaming);
}

bool ReadScanOptionsWire(ByteReader& r, ScanOptions& o) {
  o.max_paths_per_function = static_cast<size_t>(r.U64());
  o.nesting_threshold = r.I32();
  o.discover_from_source = r.Bool();
  o.enabled_patterns.clear();
  const uint32_t npatterns = r.Count();
  for (uint32_t i = 0; r.ok() && i < npatterns; ++i) {
    o.enabled_patterns.insert(r.I32());
  }
  o.dialects.clear();
  const uint32_t ndialects = r.Count();
  for (uint32_t i = 0; r.ok() && i < ndialects; ++i) {
    o.dialects.push_back(r.Str());
  }
  o.jobs = static_cast<size_t>(r.U64());
  o.cache_dir = r.Str();
  o.cache_server = r.Str();
  o.prune_null_branches = r.Bool();
  o.model_ownership_transfer = r.Bool();
  o.interprocedural = r.Bool();
  o.fault_spec = r.Str();
  o.file_timeout_ms = r.U32();
  o.max_file_bytes = static_cast<size_t>(r.U64());
  o.max_ast_nodes = static_cast<size_t>(r.U64());
  o.max_ast_depth = r.I32();
  const uint64_t ratio_bits = r.U64();
  std::memcpy(&o.max_failure_ratio, &ratio_bits, sizeof(ratio_bits));
  o.streaming = r.Bool();
  return r.ok();
}

ScanStageContext MakeScanStageContext(const ScanOptions& options, ScanCache& cache) {
  ScanStageContext ctx;
  ctx.options = &options;
  ctx.cache = &cache;
  ctx.use_cache = cache.enabled();
  ctx.options_fp = ctx.use_cache ? ScanOptionsFingerprint(options) : 0;
  ctx.want_facts = options.discover_from_source;
  // Streaming never survives interprocedural mode: stage 2.5 needs every
  // AST resident at once, which is exactly what streaming forbids.
  ctx.stream_units = options.streaming && !options.interprocedural;
  ctx.need_units = (!ctx.use_cache || options.interprocedural) && !ctx.stream_units;
  // Parser caps from the governor options. max_ast_depth replaces the
  // silent flatten-at-200 with a hard (quarantining) cap.
  if (options.max_ast_depth > 0) {
    ctx.popts.max_depth = options.max_ast_depth;
    ctx.popts.depth_fatal = true;
  }
  ctx.popts.max_nodes = options.max_ast_nodes;
  return ctx;
}

FileScanState RunParseStage(const SourceFile& f, const ScanStageContext& ctx) {
  const ScanOptions& options = *ctx.options;
  ScanCache& cache = *ctx.cache;
  FileScanState st;
  // One event per file whatever happens inside (cache replay, parse,
  // retries): the guard's attempt loop runs within this span.
  TelemetrySpan file_span("file.parse", f.path());
  const bool stage_retry_ok = true;  // stage 1 work is idempotent, retry freely
  const bool ok = GuardFileStage(
      f.path(), FailureStage::kParse, options.file_timeout_ms, stage_retry_ok,
      [&] {
        st.key = CacheKey{};
        st.facts = DiscoveryFacts{};
        st.unit.reset();
        st.parsed = false;
        if (options.max_file_bytes > 0 && f.text().size() > options.max_file_bytes) {
          throw ResourceLimitError(
              StrFormat("input size %zu exceeds cap %zu", f.text().size(), options.max_file_bytes));
        }
        if (ctx.use_cache) {
          st.key = MakeFileKey(f.path(), f.text(), ctx.options_fp);
          if (!ctx.need_units) {
            if (!ctx.want_facts) {
              return;  // discovery off: nothing is needed before stage 3
            }
            if (std::optional<DiscoveryFacts> facts = cache.LoadFacts(st.key)) {
              st.facts = std::move(*facts);
              return;
            }
          } else if (std::optional<TranslationUnit> unit = cache.LoadUnit(st.key)) {
            st.unit = std::move(*unit);
            if (ctx.want_facts) {
              st.facts = ExtractDiscoveryFacts(*st.unit);
            }
            return;
          }
        }
        st.unit = ParseFile(f, ctx.popts);
        st.parsed = true;
        if (ctx.want_facts) {
          st.facts = ExtractDiscoveryFacts(*st.unit);
        }
        if (ctx.use_cache) {
          cache.StoreUnit(st.key, *st.unit, f.path());
          if (ctx.want_facts) {
            cache.StoreFacts(st.key, st.facts, f.path());
          }
        }
        if (ctx.stream_units) {
          // Streaming lifecycle: the facts are extracted (and the cache
          // fed), so the AST has served stage 1's purpose. Drop it here —
          // stage 3 re-parses just-in-time — and whole-tree peak RSS stays
          // bounded by `jobs` concurrent units instead of the tree size.
          st.unit.reset();
        }
      },
      st.failure, st.retried);
  if (!ok) {
    // Discard partial state so the KB replay and stage 3 see a file that
    // simply is not there — this is what makes the healthy-subset
    // byte-identity guarantee hold.
    st.facts = DiscoveryFacts{};
    st.unit.reset();
    st.parsed = false;
  }
  return st;
}

FileShard RunCheckStage(const SourceFile& file, FileScanState& st, const KnowledgeBase& kb,
                        uint64_t kb_fp, const ScanStageContext& ctx) {
  const ScanOptions& options = *ctx.options;
  ScanCache& cache = *ctx.cache;
  FileShard shard;
  if (st.failure) {
    return shard;  // quarantined in stage 1: empty shard, nothing to check
  }
  // One event per non-quarantined file, covering splice and cold check
  // alike (the nested cache.load span distinguishes them in a trace).
  TelemetrySpan file_span("file.check", file.path());
  // Retrying is only safe until the body moves the cached TranslationUnit
  // into CheckOneFile — after that a retry would re-check a moved-from
  // unit and silently produce wrong output, so the body revokes it.
  bool retry_ok = true;
  const bool ok = GuardFileStage(
      file.path(), FailureStage::kCheck, options.file_timeout_ms, retry_ok,
      [&] {
        shard = FileShard{};
        if (ctx.use_cache) {
          if (std::optional<CachedFileReports> cached = cache.LoadReports(st.key, kb_fp)) {
            st.report_hit = true;
            shard.raw = std::move(cached->reports);
            shard.functions = static_cast<size_t>(cached->functions);
            shard.degraded = std::move(cached->degraded);
            return;
          }
        }
        MaybeFault("checker.run", file.path());
        TranslationUnit unit;
        if (st.unit.has_value()) {
          retry_ok = false;
          unit = std::move(*st.unit);
          st.unit.reset();
        } else {
          // Facts were cached but this file's reports were invalidated
          // (another file changed the KB): re-parse just this file,
          // in-memory.
          unit = ParseFile(file, ctx.popts);
          st.parsed = true;
        }
        shard = CheckOneFile(file, std::move(unit), kb, options);
        if (ctx.use_cache) {
          CachedFileReports entry;
          entry.reports = shard.raw;
          entry.functions = shard.functions;
          entry.degraded = shard.degraded;
          cache.StoreReports(st.key, kb_fp, entry, file.path());
        }
      },
      st.failure, st.retried);
  if (!ok) {
    shard = FileShard{};  // discard any partial shard
  }
  return shard;
}

}  // namespace refscan
