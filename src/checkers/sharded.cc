#include "src/checkers/sharded.h"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <optional>

#include "src/cache/cache.h"
#include "src/cache/serial.h"
#include "src/checkers/scan_stages.h"
#include "src/support/faultinject.h"
#include "src/support/ipc.h"
#include "src/support/strings.h"
#include "src/support/telemetry.h"
#include "src/support/threadpool.h"

namespace refscan {

namespace {

// Worker protocol frame types (sharded.h documents the exchange).
constexpr uint8_t kHello = 1;
constexpr uint8_t kJob = 2;
constexpr uint8_t kFacts = 3;
constexpr uint8_t kKb = 4;
constexpr uint8_t kResults = 5;

// How long the coordinator waits for each worker to connect. Generous:
// worker startup is exec + connect, not a scan.
constexpr int kAcceptTimeoutMs = 30000;

// Per-file failure + retried flag, shared by the kFacts and kResults
// payloads. The path never travels: the coordinator knows which global
// index each entry is, and fills paths from its own file list.
void WriteFileMeta(ByteWriter& w, const std::optional<FileFailure>& failure, bool retried) {
  w.Bool(failure.has_value());
  if (failure) {
    w.U8(static_cast<uint8_t>(failure->stage));
    w.U8(static_cast<uint8_t>(failure->kind));
    w.Str(failure->what);
    w.I32(failure->retries);
  }
  w.Bool(retried);
}

void ReadFileMeta(ByteReader& r, std::optional<FileFailure>& failure, bool& retried) {
  failure.reset();
  if (r.Bool()) {
    FileFailure f;
    f.stage = static_cast<FailureStage>(r.U8());
    f.kind = static_cast<FailureKind>(r.U8());
    f.what = r.Str();
    f.retries = r.I32();
    failure = std::move(f);
  }
  retried = r.Bool();
}

// ---- coordinator-side worker bookkeeping ------------------------------

struct WorkerHandle {
  pid_t pid = -1;
  OwnedFd conn;
  bool dead = false;
  std::string why;  // first transport/protocol error, quoted in quarantine
};

void MarkDead(WorkerHandle& w, std::string why) {
  if (!w.dead) {
    w.dead = true;
    w.why = std::move(why);
  }
  w.conn.Reset();
}

// Closes every connection (workers parked on RecvFrame see a clean EOF and
// exit 0) and reaps every child. Destructor-driven so no return path leaks
// zombies or the socket file.
struct FleetGuard {
  std::vector<WorkerHandle>* workers = nullptr;
  std::string socket_path;
  ~FleetGuard() {
    if (workers != nullptr) {
      for (WorkerHandle& w : *workers) {
        w.conn.Reset();
      }
      for (WorkerHandle& w : *workers) {
        if (w.pid > 0) {
          int status = 0;
          ::waitpid(w.pid, &status, 0);
        }
      }
    }
    if (!socket_path.empty()) {
      ::unlink(socket_path.c_str());
    }
  }
};

bool SpawnWorker(const std::string& worker_cmd, const std::string& socket_path, size_t id,
                 pid_t& pid) {
  const std::string id_str = std::to_string(id);
  pid = ::fork();
  if (pid < 0) {
    return false;
  }
  if (pid == 0) {
    ::execl(worker_cmd.c_str(), worker_cmd.c_str(), "worker", "--socket", socket_path.c_str(),
            "--id", id_str.c_str(), static_cast<char*>(nullptr));
    _exit(127);  // exec failed; the coordinator sees a dead worker
  }
  return true;
}

// The whole-tree scan the coordinator falls back to when sharding cannot
// run (empty tree, socket failure) and when a worker dies (rescue of the
// surviving subset). Engine construction mirrors the CLI's.
ScanResult InProcessScan(const SourceTree& tree, const ScanOptions& options) {
  CheckerEngine engine(KnowledgeBase::BuiltIn(), options);
  return engine.Scan(tree);
}

// A dead worker costs its shard, not the scan: discard every worker result,
// rescan the surviving files in-process — which makes "the degraded scan's
// reports are byte-identical to scanning the surviving subset" true by
// construction — and quarantine the dead shards' files.
ScanResult RescueScan(const std::vector<const SourceFile*>& files,
                      const std::vector<std::vector<size_t>>& shards,
                      const std::vector<WorkerHandle>& workers, const ScanOptions& options) {
  std::vector<const char*> dead_why(files.size(), nullptr);
  std::vector<size_t> dead_worker(files.size(), 0);
  SourceTree subset;
  for (size_t i = 0; i < workers.size(); ++i) {
    if (!workers[i].dead) {
      continue;
    }
    for (const size_t idx : shards[i]) {
      dead_why[idx] = workers[i].why.c_str();
      dead_worker[idx] = i;
    }
  }
  size_t dead_count = 0;
  for (size_t i = 0; i < files.size(); ++i) {
    if (dead_why[i] == nullptr) {
      subset.Add(files[i]->path(), std::string(files[i]->text()));
    } else {
      ++dead_count;
    }
  }

  ScanResult result = InProcessScan(subset, options);

  // Splice the dead files into the quarantine list, keeping the §5.9
  // contract: file failures in tree (path) order. The engine's are already
  // sorted and all paths are distinct, so a plain sort restores the order.
  for (size_t i = 0; i < files.size(); ++i) {
    if (dead_why[i] == nullptr) {
      continue;
    }
    FileFailure f;
    f.path = files[i]->path();
    f.stage = FailureStage::kCheck;
    f.kind = FailureKind::kInternal;
    f.what = StrFormat("shard worker %zu died: %s", dead_worker[i], dead_why[i]);
    result.failures.push_back(std::move(f));
  }
  std::sort(result.failures.begin(), result.failures.end(),
            [](const FileFailure& a, const FileFailure& b) { return a.path < b.path; });
  result.stats.files += dead_count;
  result.stats.files_quarantined += dead_count;
  return result;
}

// Per-file state the coordinator accumulates from the kFacts / kResults
// frames, indexed by global file order — the same order the engine's
// `states` vector uses, so the discovery replay and the merge are
// order-identical by construction.
struct CoordFileState {
  DiscoveryFacts facts;
  std::optional<FileFailure> failure;
  bool retried = false;
  bool report_hit = false;
  bool parsed = false;
};

}  // namespace

std::vector<std::vector<size_t>> ShardFiles(const std::vector<const SourceFile*>& files,
                                            size_t shards) {
  const size_t n = std::max<size_t>(1, std::min(shards, std::max<size_t>(files.size(), 1)));
  // Largest first (path breaks size ties), each onto the currently lightest
  // shard (index breaks load ties): classic LPT, fully deterministic.
  std::vector<size_t> order(files.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const size_t sa = files[a]->text().size();
    const size_t sb = files[b]->text().size();
    if (sa != sb) {
      return sa > sb;
    }
    return files[a]->path() < files[b]->path();
  });
  std::vector<std::vector<size_t>> out(n);
  std::vector<uint64_t> load(n, 0);
  for (const size_t idx : order) {
    size_t lightest = 0;
    for (size_t s = 1; s < n; ++s) {
      if (load[s] < load[lightest]) {
        lightest = s;
      }
    }
    out[lightest].push_back(idx);
    load[lightest] += files[idx]->text().size();
  }
  for (std::vector<size_t>& shard : out) {
    std::sort(shard.begin(), shard.end());
  }
  return out;
}

ScanResult ShardedScan(const SourceTree& tree, const ScanOptions& options,
                       const ShardedScanConfig& config) {
  ScanResult result;

  // Same contract as the engine: a malformed fault spec aborts loudly. The
  // plan also arms here so coordinator-side sites (the KB snapshot's
  // cache.load/cache.store) fire exactly as they would in-process; workers
  // arm their own copy from the spec the kJob frame carries.
  std::optional<ScopedFaultArm> fault_arm;
  if (!options.fault_spec.empty()) {
    FaultPlan plan;
    std::string spec_error;
    if (!ParseFaultSpec(options.fault_spec, plan, &spec_error)) {
      result.aborted = true;
      result.abort_reason = "invalid fault spec: " + spec_error;
      return result;
    }
    fault_arm.emplace(std::move(plan));
  }

  std::vector<const SourceFile*> files;
  files.reserve(tree.size());
  for (const auto& [path, file] : tree.files()) {
    files.push_back(&file);
  }
  if (files.empty() || config.workers == 0 || config.worker_cmd.empty()) {
    return InProcessScan(tree, options);
  }

  const std::string socket_dir = config.socket_dir.empty() ? "/tmp" : config.socket_dir;
  const std::string socket_path =
      StrFormat("%s/refscan-shard-%d.sock", socket_dir.c_str(), static_cast<int>(::getpid()));
  std::string ipc_error;
  OwnedFd listener = UnixListen(socket_path, &ipc_error);
  if (!listener.valid()) {
    // Sharding is an execution strategy, not a result: infra trouble falls
    // back to the in-process pipeline rather than failing the scan.
    std::fprintf(stderr, "refscan: sharded scan unavailable (%s); running in-process\n",
                 ipc_error.c_str());
    return InProcessScan(tree, options);
  }

  const std::vector<std::vector<size_t>> shards = ShardFiles(files, config.workers);
  const size_t nworkers = shards.size();
  std::vector<WorkerHandle> workers(nworkers);
  FleetGuard guard{&workers, socket_path};

  for (size_t i = 0; i < nworkers; ++i) {
    if (!SpawnWorker(config.worker_cmd, socket_path, i, workers[i].pid)) {
      MarkDead(workers[i], StrFormat("fork failed: %s", std::strerror(errno)));
    }
  }

  // Accept until every spawned worker has said kHello (they connect in any
  // order; the hello id routes each connection to its shard).
  size_t expected = 0;
  for (const WorkerHandle& w : workers) {
    expected += w.dead ? 0 : 1;
  }
  for (size_t accepted = 0; accepted < expected; ++accepted) {
    OwnedFd conn = UnixAccept(listener.get(), kAcceptTimeoutMs, &ipc_error);
    if (!conn.valid()) {
      break;  // timeout/error: the workers that never arrived read as dead
    }
    uint8_t type = 0;
    std::string payload;
    if (RecvFrame(conn.get(), type, payload, &ipc_error) != RecvOutcome::kFrame ||
        type != kHello) {
      continue;  // not a worker of ours; drop the connection
    }
    ByteReader r(payload);
    const uint32_t id = r.U32();
    if (!r.ok() || id >= nworkers || workers[id].conn.valid() || workers[id].dead) {
      continue;
    }
    workers[id].conn = std::move(conn);
  }
  for (size_t i = 0; i < nworkers; ++i) {
    if (!workers[i].dead && !workers[i].conn.valid()) {
      MarkDead(workers[i], "never connected");
    }
  }

  // kJob: options + the shard's files, in global order within the shard.
  for (size_t i = 0; i < nworkers; ++i) {
    if (workers[i].dead) {
      continue;
    }
    ByteWriter w;
    WriteScanOptionsWire(w, options);
    w.U32(static_cast<uint32_t>(shards[i].size()));
    for (const size_t idx : shards[i]) {
      w.Str(files[idx]->path());
      w.Str(files[idx]->text());
    }
    if (!SendFrame(workers[i].conn.get(), kJob, w.bytes(), &ipc_error)) {
      MarkDead(workers[i], "send job: " + ipc_error);
    }
  }

  // Phase 1 of the KB exchange: collect per-file facts (stage-1 output)
  // from every worker. Span-named like the engine's stage so traces line up
  // across --workers values.
  std::vector<CoordFileState> states(files.size());
  {
    TelemetrySpan stage_span("stage.parse");
    for (size_t i = 0; i < nworkers; ++i) {
      if (workers[i].dead) {
        continue;
      }
      uint8_t type = 0;
      std::string payload;
      if (RecvFrame(workers[i].conn.get(), type, payload, &ipc_error) != RecvOutcome::kFrame ||
          type != kFacts) {
        MarkDead(workers[i], type == kFacts ? "recv facts: " + ipc_error : "crashed in parse stage");
        continue;
      }
      ByteReader r(payload);
      const uint32_t count = r.Count();
      if (count != shards[i].size()) {
        MarkDead(workers[i], "facts frame: wrong file count");
        continue;
      }
      bool ok = true;
      for (size_t j = 0; j < shards[i].size() && ok; ++j) {
        CoordFileState& st = states[shards[i][j]];
        ReadFileMeta(r, st.failure, st.retried);
        if (st.failure) {
          st.failure->path = files[shards[i][j]]->path();
        }
        const std::string facts_bytes = r.Str();
        if (!r.ok()) {
          ok = false;
          break;
        }
        if (!facts_bytes.empty()) {
          std::optional<DiscoveryFacts> facts = DeserializeFacts(facts_bytes);
          if (!facts) {
            ok = false;
            break;
          }
          st.facts = std::move(*facts);
        }
      }
      if (!ok || !r.ok()) {
        MarkDead(workers[i], "facts frame: malformed payload");
      }
    }
  }
  for (const WorkerHandle& w : workers) {
    if (w.dead) {
      return RescueScan(files, shards, workers, options);
    }
  }

  // From here on the coordinator mirrors the engine's serial spine —
  // breaker, discovery replay, KB freeze — over the collected facts.
  const auto breaker_trips = [&](size_t failed) {
    return options.max_failure_ratio > 0 && !files.empty() &&
           static_cast<double>(failed) / static_cast<double>(files.size()) >
               options.max_failure_ratio;
  };
  const auto count_failed = [&] {
    size_t failed = 0;
    for (const CoordFileState& st : states) {
      failed += st.failure.has_value() ? 1 : 0;
    }
    return failed;
  };
  const auto collect_failures = [&] {
    for (CoordFileState& st : states) {
      if (st.retried) {
        ++result.stats.files_retried;
      }
      if (st.failure) {
        ++result.stats.files_quarantined;
        result.failures.push_back(std::move(*st.failure));
      }
    }
  };
  // Mirror of the engine's finalize: the stats table (plus the two
  // registry-only report counters) folds into the armed telemetry session,
  // so --metrics-out reads the same at every --workers value.
  size_t raw_report_count = 0;
  const auto publish_metrics = [&] {
    if (Telemetry* t = CurrentTelemetry()) {
      MetricsRegistry reg;
      for (const ScanStatsField& f : ScanStatsFields()) {
        reg.Counter(f.metric).Add(result.stats.*f.member);
      }
      reg.Counter("scan.raw_reports").Add(raw_report_count);
      reg.Counter("scan.reports").Add(result.reports.size());
      t->metrics().MergeFrom(reg);
    }
  };

  if (const size_t failed = count_failed(); breaker_trips(failed)) {
    result.aborted = true;
    result.abort_reason =
        StrFormat("%zu of %zu files failed in the parse stage (max_failure_ratio %.2f)", failed,
                  files.size(), options.max_failure_ratio);
    result.stats.files = files.size();
    collect_failures();
    publish_metrics();
    return result;
  }

  // Stage 2 runs here, in one process, in global file order: discovery is
  // the order-sensitive serial barrier, which is exactly why it never
  // moved into the workers. The KB snapshot cache works unchanged.
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  for (const std::string& dialect : options.dialects) {
    ApplyDialect(kb, dialect);
  }
  ScanCache cache(MakeScanStore(options));
  const ScanStageContext ctx = MakeScanStageContext(options, cache);
  if (ctx.want_facts) {
    TelemetrySpan stage_span("stage.discover");
    bool kb_from_snapshot = false;
    CacheKey kb_key;
    if (ctx.use_cache) {
      std::vector<const DiscoveryFacts*> all_facts;
      all_facts.reserve(states.size());
      for (const CoordFileState& st : states) {
        if (st.failure) {
          continue;
        }
        all_facts.push_back(&st.facts);
      }
      kb_key = MakeKbSnapshotKey(FingerprintKnowledgeBase(kb), options.nesting_threshold,
                                 all_facts, ctx.options_fp);
      if (std::optional<KnowledgeBase> snapshot = cache.LoadKb(kb_key)) {
        kb = std::move(*snapshot);
        kb_from_snapshot = true;
        result.stats.kb_snapshot_hits = 1;
      }
    }
    if (!kb_from_snapshot) {
      for (int round = 0; round < 2; ++round) {
        for (const CoordFileState& st : states) {
          if (st.failure) {
            continue;
          }
          kb.DiscoverFromFacts(st.facts, options.nesting_threshold);
        }
      }
      if (ctx.use_cache) {
        cache.StoreKb(kb_key, kb, "<tree>");
      }
    }
  }
  result.stats.discovered_apis = kb.apis().size();
  result.stats.discovered_smart_loops = kb.smart_loops().size();
  result.stats.refcounted_structs = kb.refcounted_structs().size();

  // Phase 2 of the exchange: broadcast the frozen KB, then collect each
  // worker's stage-3 results. kResults carries the file's FINAL state —
  // a stage-3 quarantine overwrites what kFacts reported.
  const std::string kb_bytes = SerializeKb(kb);
  for (size_t i = 0; i < nworkers; ++i) {
    if (!workers[i].dead && !SendFrame(workers[i].conn.get(), kKb, kb_bytes, &ipc_error)) {
      MarkDead(workers[i], "send kb: " + ipc_error);
    }
  }

  std::vector<FileShard> shard_results(files.size());
  uint64_t worker_corrupt = 0;
  {
    TelemetrySpan stage_span("stage.check");
    for (size_t i = 0; i < nworkers; ++i) {
      if (workers[i].dead) {
        continue;
      }
      uint8_t type = 0;
      std::string payload;
      if (RecvFrame(workers[i].conn.get(), type, payload, &ipc_error) != RecvOutcome::kFrame ||
          type != kResults) {
        MarkDead(workers[i], "crashed in check stage");
        continue;
      }
      ByteReader r(payload);
      const uint32_t count = r.Count();
      if (count != shards[i].size()) {
        MarkDead(workers[i], "results frame: wrong file count");
        continue;
      }
      bool ok = true;
      for (size_t j = 0; j < shards[i].size() && ok; ++j) {
        CoordFileState& st = states[shards[i][j]];
        ReadFileMeta(r, st.failure, st.retried);
        if (st.failure) {
          st.failure->path = files[shards[i][j]]->path();
        }
        st.report_hit = r.Bool();
        st.parsed = r.Bool();
        const std::string reports_bytes = r.Str();
        if (!r.ok()) {
          ok = false;
          break;
        }
        if (!reports_bytes.empty()) {
          std::optional<CachedFileReports> reports = DeserializeReports(reports_bytes);
          if (!reports) {
            ok = false;
            break;
          }
          shard_results[shards[i][j]].raw = std::move(reports->reports);
          shard_results[shards[i][j]].functions = static_cast<size_t>(reports->functions);
          shard_results[shards[i][j]].degraded = std::move(reports->degraded);
        }
      }
      worker_corrupt += r.U64();
      if (!ok || !r.ok()) {
        MarkDead(workers[i], "results frame: malformed payload");
      }
    }
  }
  for (const WorkerHandle& w : workers) {
    if (w.dead) {
      return RescueScan(files, shards, workers, options);
    }
  }

  if (const size_t failed = count_failed(); breaker_trips(failed)) {
    result.aborted = true;
    result.abort_reason = StrFormat("%zu of %zu files failed (max_failure_ratio %.2f)", failed,
                                    files.size(), options.max_failure_ratio);
    result.stats.files = files.size();
    collect_failures();
    publish_metrics();
    return result;
  }

  if (ctx.use_cache) {
    for (const CoordFileState& st : states) {
      if (st.failure) {
        continue;  // quarantined files are neither hits nor misses
      }
      ++(st.report_hit ? result.stats.cache_hits : result.stats.cache_misses);
      if (!st.parsed) {
        ++result.stats.cache_parse_skips;
      }
    }
    // Workers count their facts/unit/report loads; the coordinator's own
    // cache only ever loads the KB snapshot. The sum is what one process
    // doing all of it would have counted.
    result.stats.cache_corrupt =
        static_cast<size_t>(worker_corrupt) + static_cast<size_t>(cache.corrupt_loads());
  }

  // The merge is the engine's, verbatim: file order, first-seen-wins dedup,
  // suppression comments against the full tree.
  TelemetrySpan merge_span("stage.merge");
  std::vector<BugReport> raw;
  result.stats.files = files.size();
  for (size_t i = 0; i < shard_results.size(); ++i) {
    FileShard& shard = shard_results[i];
    result.stats.functions += shard.functions;
    raw.insert(raw.end(), std::make_move_iterator(shard.raw.begin()),
               std::make_move_iterator(shard.raw.end()));
    result.stats.functions_degraded += shard.degraded.size();
    for (DegradedFunction& d : shard.degraded) {
      result.degraded_functions.push_back(
          DegradedFunctionReport{files[i]->path(), std::move(d.name), d.line, std::move(d.what)});
    }
  }
  raw_report_count = raw.size();
  result.reports = DeduplicateReports(std::move(raw));
  collect_failures();
  std::erase_if(result.reports, [&tree](const BugReport& r) {
    const SourceFile* file = tree.Find(r.file);
    if (file == nullptr) {
      return false;
    }
    std::vector<uint32_t> probe_lines = {r.line};
    if (r.line > 1) {
      probe_lines.push_back(r.line - 1);
    }
    for (uint32_t line : probe_lines) {
      if (file->Line(line).find("refscan: ignore") != std::string_view::npos ||
          file->Line(line).find("refscan:ignore") != std::string_view::npos) {
        return true;
      }
    }
    return false;
  });
  publish_metrics();
  return result;
}

int RunShardWorker(const std::string& socket_path, int worker_id) {
  std::string error;
  OwnedFd conn = UnixConnect(socket_path, &error);
  if (!conn.valid()) {
    std::fprintf(stderr, "refscan worker %d: %s\n", worker_id, error.c_str());
    return 1;
  }
  {
    ByteWriter hello;
    hello.U32(static_cast<uint32_t>(worker_id));
    if (!SendFrame(conn.get(), kHello, hello.bytes(), &error)) {
      std::fprintf(stderr, "refscan worker %d: %s\n", worker_id, error.c_str());
      return 1;
    }
  }

  uint8_t type = 0;
  std::string payload;
  switch (RecvFrame(conn.get(), type, payload, &error)) {
    case RecvOutcome::kFrame:
      break;
    case RecvOutcome::kClosed:
      return 0;  // coordinator gave up before assigning work — clean exit
    case RecvOutcome::kError:
      std::fprintf(stderr, "refscan worker %d: %s\n", worker_id, error.c_str());
      return 1;
  }
  if (type != kJob) {
    std::fprintf(stderr, "refscan worker %d: unexpected frame %u\n", worker_id, type);
    return 1;
  }
  ScanOptions options;
  SourceTree tree;
  {
    ByteReader r(payload);
    if (!ReadScanOptionsWire(r, options)) {
      std::fprintf(stderr, "refscan worker %d: malformed job options\n", worker_id);
      return 1;
    }
    const uint32_t nfiles = r.Count();
    for (uint32_t i = 0; r.ok() && i < nfiles; ++i) {
      std::string path = r.Str();
      std::string text = r.Str();
      tree.Add(std::move(path), std::move(text));
    }
    if (!r.ok()) {
      std::fprintf(stderr, "refscan worker %d: malformed job payload\n", worker_id);
      return 1;
    }
  }

  // Arm the coordinator's fault plan so worker-side sites (parser.*,
  // cache.*, checker.run, and the worker.facts / worker.results crash
  // points) fire in this process too. An injected worker.* fault throws out
  // of here to the CLI's fatal handler — indistinguishable from a crash,
  // which is the point.
  std::optional<ScopedFaultArm> fault_arm;
  if (!options.fault_spec.empty()) {
    FaultPlan plan;
    std::string spec_error;
    if (!ParseFaultSpec(options.fault_spec, plan, &spec_error)) {
      std::fprintf(stderr, "refscan worker %d: invalid fault spec: %s\n", worker_id,
                   spec_error.c_str());
      return 1;
    }
    fault_arm.emplace(std::move(plan));
  }

  std::vector<const SourceFile*> files;
  files.reserve(tree.size());
  for (const auto& [path, file] : tree.files()) {
    files.push_back(&file);
  }

  ThreadPool pool(options.jobs);
  ScanCache cache(MakeScanStore(options));
  const ScanStageContext ctx = MakeScanStageContext(options, cache);
  const std::string id_str = std::to_string(worker_id);

  // Stage 1 over the shard: the exact same per-file body the in-process
  // engine runs (scan_stages.cc).
  std::vector<FileScanState> states =
      ParallelMap(pool, files.size(), [&](size_t i) { return RunParseStage(*files[i], ctx); });
  MaybeFault("worker.facts", id_str);
  {
    ByteWriter w;
    w.U32(static_cast<uint32_t>(states.size()));
    for (const FileScanState& st : states) {
      WriteFileMeta(w, st.failure, st.retried);
      w.Str(st.failure || !ctx.want_facts ? std::string() : SerializeFacts(st.facts));
    }
    if (!SendFrame(conn.get(), kFacts, w.bytes(), &error)) {
      std::fprintf(stderr, "refscan worker %d: %s\n", worker_id, error.c_str());
      return 1;
    }
  }

  switch (RecvFrame(conn.get(), type, payload, &error)) {
    case RecvOutcome::kFrame:
      break;
    case RecvOutcome::kClosed:
      return 0;  // coordinator aborted (breaker / sibling crash) — clean exit
    case RecvOutcome::kError:
      std::fprintf(stderr, "refscan worker %d: %s\n", worker_id, error.c_str());
      return 1;
  }
  if (type != kKb) {
    std::fprintf(stderr, "refscan worker %d: unexpected frame %u\n", worker_id, type);
    return 1;
  }
  std::optional<KnowledgeBase> kb = DeserializeKb(payload);
  if (!kb) {
    std::fprintf(stderr, "refscan worker %d: malformed kb frame\n", worker_id);
    return 1;
  }
  const uint64_t kb_fp = ctx.use_cache ? FingerprintKnowledgeBase(*kb) : 0;

  // Stage 3 over the shard, against the coordinator's frozen KB.
  const KnowledgeBase& kb_ref = *kb;
  std::vector<FileShard> shards = ParallelMap(pool, files.size(), [&](size_t i) {
    return RunCheckStage(*files[i], states[i], kb_ref, kb_fp, ctx);
  });
  MaybeFault("worker.results", id_str);
  {
    ByteWriter w;
    w.U32(static_cast<uint32_t>(states.size()));
    for (size_t i = 0; i < states.size(); ++i) {
      const FileScanState& st = states[i];
      WriteFileMeta(w, st.failure, st.retried);
      w.Bool(st.report_hit);
      w.Bool(st.parsed);
      std::string reports_bytes;
      if (!st.failure) {
        CachedFileReports entry;
        entry.reports = std::move(shards[i].raw);
        entry.functions = shards[i].functions;
        entry.degraded = std::move(shards[i].degraded);
        reports_bytes = SerializeReports(entry);
      }
      w.Str(reports_bytes);
    }
    w.U64(static_cast<uint64_t>(cache.corrupt_loads()));
    if (!SendFrame(conn.get(), kResults, w.bytes(), &error)) {
      std::fprintf(stderr, "refscan worker %d: %s\n", worker_id, error.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace refscan
