#include "src/checkers/template_matcher.h"

#include <functional>
#include <set>

#include "src/ast/parser.h"
#include "src/cpg/cpg.h"
#include "src/support/strings.h"
#include "src/support/threadpool.h"

namespace refscan {

namespace {

struct PathEvent {
  const SemEvent* ev;
  int node;
  size_t path_pos;
};

bool RootsEqual(Symbol a, Symbol b) {
  const Symbol ra = RootSymbol(a);
  return !ra.empty() && ra == RootSymbol(b);
}

// True when `ev` satisfies the (non-negated content of) step `st` under the
// current p0 binding; binds p0 through `p0` when the step introduces it.
bool EventMatches(const MatchStep& st, const SemEvent& ev, Symbol& p0) {
  switch (st.what) {
    case MatchStep::What::kIncrease: {
      if (ev.op != SemOp::kIncrease || ev.api == nullptr) {
        return false;
      }
      if (st.require_returns_error && !ev.api->returns_error) {
        return false;
      }
      if (st.require_returns_null && !ev.api->may_return_null) {
        return false;
      }
      if (st.require_hidden && !ev.api->hidden) {
        return false;
      }
      if (!st.api_filter.empty() && ev.api->name != st.api_filter) {
        return false;
      }
      break;
    }
    case MatchStep::What::kDecrease:
      if (ev.op != SemOp::kDecrease) {
        return false;
      }
      if (!st.api_filter.empty() && (ev.api == nullptr || ev.api->name != st.api_filter)) {
        return false;
      }
      break;
    case MatchStep::What::kDeref:
      if (ev.op != SemOp::kDeref) {
        return false;
      }
      break;
    case MatchStep::What::kAssign:
      if (ev.op != SemOp::kAssign) {
        return false;
      }
      break;
    case MatchStep::What::kEscapeAssign:
      if (ev.op != SemOp::kAssign || !ev.escapes) {
        return false;
      }
      break;
    case MatchStep::What::kLock:
      if (ev.op != SemOp::kLock) {
        return false;
      }
      break;
    case MatchStep::What::kUnlock:
      if (ev.op != SemOp::kUnlock) {
        return false;
      }
      break;
    case MatchStep::What::kFree:
      if (ev.op != SemOp::kFree) {
        return false;
      }
      break;
    case MatchStep::What::kReturn:
      if (ev.op != SemOp::kReturn) {
        return false;
      }
      break;
    case MatchStep::What::kSmartLoop:
      if (ev.op != SemOp::kLoopHead || ev.loop == nullptr) {
        return false;
      }
      break;
    case MatchStep::What::kFunctionStart:
    case MatchStep::What::kFunctionEnd:
    case MatchStep::What::kErrorRegion:
      return false;  // handled structurally, not per-event
  }
  if (st.wants_p0) {
    // Escaping assignments bind/compare via their source object (aux).
    const Symbol object =
        st.what == MatchStep::What::kEscapeAssign && !ev.aux.empty() ? ev.aux : ev.object;
    if (object.empty()) {
      return false;
    }
    if (p0.empty()) {
      p0 = object;
    } else if (!RootsEqual(p0, object)) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::optional<SemanticTemplate> ParseTemplate(std::string_view text) {
  SemanticTemplate tmpl;
  tmpl.source = std::string(Trim(text));

  for (std::string_view raw : Split(text, '>')) {
    // Steps are separated by "->"; after splitting on '>' each fragment
    // ends with the '-' of its separator.
    std::string_view token = Trim(raw);
    if (token.ends_with("-")) {
      token.remove_suffix(1);
      token = Trim(token);
    }
    if (token.empty()) {
      return std::nullopt;
    }

    MatchStep step;
    if (token.front() == '!') {
      step.negated = true;
      token.remove_prefix(1);
      token = Trim(token);
    }

    // Optional "(arg)".
    std::string arg;
    const size_t paren = token.find('(');
    if (paren != std::string_view::npos) {
      const size_t close = token.find(')', paren);
      if (close == std::string_view::npos) {
        return std::nullopt;
      }
      arg = std::string(Trim(token.substr(paren + 1, close - paren - 1)));
      token = Trim(token.substr(0, paren));
    }

    if (token == "F_start") {
      step.what = MatchStep::What::kFunctionStart;
    } else if (token == "F_end") {
      step.what = MatchStep::What::kFunctionEnd;
    } else if (token == "B_error") {
      step.what = MatchStep::What::kErrorRegion;
    } else if (token == "M_SL") {
      step.what = MatchStep::What::kSmartLoop;
    } else if (token == "S_G") {
      step.what = MatchStep::What::kIncrease;
    } else if (token == "S_G_E") {
      step.what = MatchStep::What::kIncrease;
      step.require_returns_error = true;
    } else if (token == "S_G_N") {
      step.what = MatchStep::What::kIncrease;
      step.require_returns_null = true;
    } else if (token == "S_G_H") {
      step.what = MatchStep::What::kIncrease;
      step.require_hidden = true;
    } else if (token == "S_P") {
      step.what = MatchStep::What::kDecrease;
    } else if (token == "S_D") {
      step.what = MatchStep::What::kDeref;
    } else if (token == "S_A") {
      step.what = MatchStep::What::kAssign;
    } else if (token == "S_A_GO") {
      step.what = MatchStep::What::kEscapeAssign;
    } else if (token == "S_L") {
      step.what = MatchStep::What::kLock;
    } else if (token == "S_U") {
      step.what = MatchStep::What::kUnlock;
    } else if (token == "S_free") {
      step.what = MatchStep::What::kFree;
    } else if (token == "S_ret") {
      step.what = MatchStep::What::kReturn;
    } else {
      return std::nullopt;
    }

    if (!arg.empty()) {
      if (arg == "p0") {
        step.wants_p0 = true;
      } else {
        step.api_filter = arg;
      }
    }
    tmpl.steps.push_back(std::move(step));
  }

  if (tmpl.steps.empty()) {
    return std::nullopt;
  }
  return tmpl;
}

std::vector<TemplateMatch> MatchTemplate(const SemanticTemplate& tmpl, const FunctionContext& fc,
                                         const ScanOptions& options) {
  std::vector<TemplateMatch> matches;
  std::set<std::string> seen;

  fc.cfg->EnumeratePaths(
      [&](const std::vector<int>& path) {
        // Flatten the path's events.
        std::vector<PathEvent> trace;
        for (size_t p = 0; p < path.size(); ++p) {
          for (const SemEvent& ev : fc.cpg->events(path[p])) {
            trace.push_back(PathEvent{&ev, path[p], p});
          }
        }

        // Negated steps attach as interval constraints before the next
        // positive step.
        struct Positive {
          const MatchStep* step;
          std::vector<const MatchStep*> forbidden_before;
        };
        std::vector<Positive> positives;
        std::vector<const MatchStep*> pending_neg;
        for (const MatchStep& step : tmpl.steps) {
          if (step.negated) {
            pending_neg.push_back(&step);
            continue;
          }
          positives.push_back(Positive{&step, pending_neg});
          pending_neg.clear();
        }
        if (!pending_neg.empty()) {
          // Trailing negations constrain the interval up to path end; model
          // them as constraints on a synthetic F_end if one is absent.
          positives.push_back(Positive{nullptr, pending_neg});
        }

        // Backtracking match over trace indices.
        std::function<bool(size_t, size_t, Symbol, TemplateMatch&)> match =
            [&](size_t step_idx, size_t trace_idx, Symbol p0, TemplateMatch& out) -> bool {
          auto interval_clean = [&](size_t from, size_t to, Symbol& bound) {
            for (const MatchStep* neg : positives[step_idx].forbidden_before) {
              for (size_t k = from; k < to && k < trace.size(); ++k) {
                Symbol probe = bound;
                MatchStep positive_view = *neg;
                positive_view.negated = false;
                if (EventMatches(positive_view, *trace[k].ev, probe) &&
                    (!neg->wants_p0 || bound.empty() || RootsEqual(probe, bound))) {
                  return false;
                }
              }
            }
            return true;
          };

          if (step_idx == positives.size()) {
            return true;
          }
          const MatchStep* step = positives[step_idx].step;

          if (step == nullptr || step->what == MatchStep::What::kFunctionEnd) {
            // Constraints run to the end of the path.
            if (!interval_clean(trace_idx, trace.size(), p0)) {
              return false;
            }
            out.object = p0.str();
            return match(step_idx + 1, trace.size(), p0, out);
          }

          if (step->what == MatchStep::What::kFunctionStart) {
            if (!interval_clean(0, trace_idx, p0)) {
              return false;
            }
            return match(step_idx + 1, trace_idx, p0, out);
          }

          if (step->what == MatchStep::What::kErrorRegion) {
            // First node at/after the current position inside error context.
            const size_t from_pos = trace_idx < trace.size() ? trace[trace_idx].path_pos : 0;
            for (size_t p = from_pos; p < path.size(); ++p) {
              if (!fc.cfg->node(path[p]).is_error_context &&
                  !(fc.cfg->node(path[p]).stmt != nullptr &&
                    ReturnsErrorCode(*fc.cfg->node(path[p]).stmt))) {
                continue;
              }
              // Advance the trace cursor to the first event at/after p.
              size_t next_idx = trace_idx;
              while (next_idx < trace.size() && trace[next_idx].path_pos < p) {
                ++next_idx;
              }
              if (!interval_clean(trace_idx, next_idx, p0)) {
                return false;
              }
              if (match(step_idx + 1, next_idx, p0, out)) {
                return true;
              }
              break;  // only the first error region entry is meaningful
            }
            return false;
          }

          // Ordinary event step: try every candidate position.
          for (size_t k = trace_idx; k < trace.size(); ++k) {
            Symbol bound = p0;
            if (!EventMatches(*step, *trace[k].ev, bound)) {
              continue;
            }
            if (!interval_clean(trace_idx, k, p0)) {
              // A forbidden event occurred before this candidate; later
              // candidates only widen the interval, so stop.
              return false;
            }
            TemplateMatch attempt = out;
            if (attempt.line == 0) {
              attempt.line = trace[k].ev->line;
              if (trace[k].ev->api != nullptr) {
                attempt.api = trace[k].ev->api->name;
              }
            }
            attempt.last_line = trace[k].ev->line;
            attempt.object = bound.str();
            if (match(step_idx + 1, k + 1, bound, attempt)) {
              out = attempt;
              return true;
            }
          }
          return false;
        };

        TemplateMatch out;
        if (match(0, 0, Symbol(), out)) {
          const std::string key = StrFormat("%u:%s", out.line, out.object.c_str());
          if (seen.insert(key).second) {
            matches.push_back(out);
          }
        }
      },
      options.max_paths_per_function);

  return matches;
}

std::vector<BugReport> RunTemplateChecker(const SemanticTemplate& tmpl, const SourceTree& tree,
                                          KnowledgeBase kb, const ScanOptions& options) {
  // Same three-stage shape as CheckerEngine::Scan: parallel parse, serial
  // discovery barrier, parallel per-file matching with shards merged in
  // file order for deterministic output.
  std::vector<const SourceFile*> files;
  files.reserve(tree.size());
  for (const auto& [path, file] : tree.files()) {
    files.push_back(&file);
  }

  ThreadPool pool(options.jobs);
  std::vector<TranslationUnit> units =
      ParallelMap(pool, files.size(), [&](size_t i) { return ParseFile(*files[i]); });
  if (options.discover_from_source) {
    for (int round = 0; round < 2; ++round) {
      for (const TranslationUnit& unit : units) {
        kb.DiscoverFromUnit(unit, options.nesting_threshold);
      }
    }
  }

  const KnowledgeBase& frozen_kb = kb;
  std::vector<std::vector<BugReport>> shards =
      ParallelMap(pool, files.size(), [&](size_t i) {
        std::vector<BugReport> shard;
        const UnitContext uc = BuildUnitContext(*files[i], std::move(units[i]), frozen_kb);
        for (const FunctionContext& fc : uc.functions) {
          for (const TemplateMatch& m : MatchTemplate(tmpl, fc, options)) {
            BugReport r;
            r.anti_pattern = 0;  // custom template
            r.impact = Impact::kLeak;
            r.file = uc.unit.path;
            r.function = fc.fn->name.str();
            r.line = m.line;
            r.exit_line = m.last_line;
            r.object = m.object;
            r.api = m.api;
            r.template_path = tmpl.source;
            r.message = StrFormat("custom template matched: %s", tmpl.source.c_str());
            shard.push_back(std::move(r));
          }
        }
        return shard;
      });

  std::vector<BugReport> reports;
  for (std::vector<BugReport>& shard : shards) {
    reports.insert(reports.end(), std::make_move_iterator(shard.begin()),
                   std::make_move_iterator(shard.end()));
  }
  return DeduplicateReports(std::move(reports));
}

}  // namespace refscan
