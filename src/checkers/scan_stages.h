// Per-file pipeline stage bodies, shared verbatim by the in-process engine
// (CheckerEngine::Scan) and the shard worker (src/checkers/sharded).
//
// The sharded scan's hard requirement is byte-identical output to a
// single-process scan at any --jobs × --workers combination. Rather than
// reimplementing the stage-1 (parse / cache replay) and stage-3 (check /
// report splice) bodies in the worker and proving them equivalent, both
// callers invoke the exact same functions: a file's FileScanState and
// FileShard cannot depend on which process computed them, because only one
// implementation exists. The engine keeps the parts that are inherently
// whole-tree — the KB-discovery barrier, the circuit breaker, the
// file-ordered merge — and the sharded coordinator replays those same steps
// over worker-supplied per-file facts.
//
// Each stage body runs inside the DESIGN.md §5.9 sandbox: a fresh deadline
// per attempt, one transient-I/O retry while idempotent, and exception →
// FileFailure quarantine that resets the file's partial state.

#ifndef REFSCAN_CHECKERS_SCAN_STAGES_H_
#define REFSCAN_CHECKERS_SCAN_STAGES_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/ast/parser.h"
#include "src/cache/cache.h"
#include "src/cache/serial.h"
#include "src/checkers/engine.h"

namespace refscan {

// Stage-3 output for one file: the raw (pre-dedup) report shard in checker
// emission order, the file's function count, and any function bodies the
// parser quarantined (DESIGN.md §5.15), in source order.
struct FileShard {
  std::vector<BugReport> raw;
  size_t functions = 0;
  std::vector<DegradedFunction> degraded;
};

// Everything one file accumulates on its way through the pipeline.
struct FileScanState {
  CacheKey key;
  DiscoveryFacts facts;
  std::optional<TranslationUnit> unit;
  bool parsed = false;      // ParseFile ran for this file during this scan
  bool report_hit = false;  // stage-3 shard spliced from the cache
  bool retried = false;     // a transient-I/O retry was consumed (any stage)
  std::optional<FileFailure> failure;  // set = quarantined, skip later stages
};

// Builds the object store the options ask for: the injected object_store
// when set (the resident server's shared MemoryStore), else a RemoteStore
// client when cache_server is set (takes precedence over cache_dir), a
// LocalStore for cache_dir, null (disabled cache) otherwise. A local
// directory that cannot be created degrades to null, matching ScanCache's
// historical behaviour.
std::shared_ptr<ObjectStore> MakeScanStore(const ScanOptions& options);

// ---- ScanOptions on the wire (ByteWriter/ByteReader format) -----------
//
// Shared by the shard-worker kJob frame (src/checkers/sharded) and the
// serve kScanReq frame (src/serve/protocol): a remote process must behave
// exactly like the in-process stages would under the same options, so every
// value field travels — including the governor caps and the fault spec; the
// double rides as its bit pattern (memcpy, not a cast: the value must
// survive exactly). `object_store` is deliberately NOT on the wire: it is a
// live pointer into the sending process, and each side of a socket supplies
// its own store.
void WriteScanOptionsWire(ByteWriter& w, const ScanOptions& options);
bool ReadScanOptionsWire(ByteReader& r, ScanOptions& options);

// Derived per-scan constants shared by every file's stage bodies.
struct ScanStageContext {
  const ScanOptions* options = nullptr;
  ScanCache* cache = nullptr;
  bool use_cache = false;
  uint64_t options_fp = 0;
  bool want_facts = false;  // discovery enabled: stage 1 must yield facts
  // Whether stage 1 must materialise a TranslationUnit for every file. With
  // no cache, stage 3 consumes the units; in interprocedural mode, stage
  // 2.5 walks them. With the cache and neither, a file whose facts (and
  // later, reports) hit can go through the whole scan without ever being
  // parsed — the incremental fast path.
  bool need_units = false;
  // Streaming unit lifecycle (ScanOptions::streaming, DESIGN.md §5.15):
  // stage 1 still parses where it must (facts, cache fill) but drops the
  // unit before returning, and stage 3 re-parses just-in-time, so at most
  // `jobs` ASTs coexist. Forced off by interprocedural mode (stage 2.5
  // walks every unit at once).
  bool stream_units = false;
  ParseOptions popts;
};
ScanStageContext MakeScanStageContext(const ScanOptions& options, ScanCache& cache);

// Stage 1 for one file: obtain its discovery facts — and unit where needed.
// Cache hits replay the stored facts/unit instead of parsing; misses parse,
// extract, and populate the cache for the next scan. A quarantined file
// comes back with `failure` set and all partial state discarded, so the KB
// replay and stage 3 see a file that simply is not there.
FileScanState RunParseStage(const SourceFile& file, const ScanStageContext& ctx);

// Stage 3 for one file: splice the cached report shard when the KB
// fingerprint proves it valid, otherwise build contexts and run the enabled
// checkers. A file quarantined earlier returns an empty shard untouched;
// a stage-3 quarantine sets `st.failure` and returns an empty shard.
FileShard RunCheckStage(const SourceFile& file, FileScanState& st, const KnowledgeBase& kb,
                        uint64_t kb_fp, const ScanStageContext& ctx);

}  // namespace refscan

#endif  // REFSCAN_CHECKERS_SCAN_STAGES_H_
