// Acquisition analysis — the path-sensitive object-lifetime summary that
// checkers P1/P4/P5/P7 (and the P6 peer matching) share.
//
// For every refcount-acquisition site (an 𝒢 event with a known object and
// API) the analysis aggregates, across every enumerated CFG path, what
// became of the reference: released, transferred to the caller, stored into
// longer-lived state, kfree'd, overwritten, or leaked (on a normal or an
// error path). The engine computes this once per function and caches it on
// the FunctionContext; it is also a useful public surface for building new
// checkers.

#ifndef REFSCAN_CHECKERS_ANALYSIS_H_
#define REFSCAN_CHECKERS_ANALYSIS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/kb/kb.h"

namespace refscan {

struct FunctionContext;
struct ScanOptions;

struct AcqSite {
  const RefApiInfo* api = nullptr;
  uint32_t line = 0;
  std::string object;

  bool paired_somewhere = false;     // a path releases the object
  bool transferred = false;          // returned / stored escaping (ownership moved)
  bool unpaired_path = false;        // a path exits holding the reference
  bool unpaired_error_path = false;  // ...and that path is an error path
  uint32_t error_exit_line = 0;      // the leaking error return, when known
  bool freed_direct = false;         // kfree'd while the reference was held
  uint32_t free_line = 0;
  bool reassigned_while_held = false;  // pointer overwritten before release
};

// Keyed by "line:object:api" so one site aggregates across paths.
using AcquisitionAnalysis = std::map<std::string, AcqSite>;

// One immutable cache generation: the option key and the analysis built
// under it, published together behind a single atomic pointer swap on the
// FunctionContext. Readers either see a whole generation or none. `prev`
// chains superseded generations so references handed out from older
// generations stay valid for the lifetime of the FunctionContext (option
// keys change at most a handful of times per context, so the chain stays
// tiny).
struct AcquisitionCache {
  uint64_t key = 0;
  AcquisitionAnalysis analysis;
  std::shared_ptr<const AcquisitionCache> prev;
};

// Computes (or returns the cached) analysis for `fc`. The returned
// reference stays valid for the lifetime of `fc`, even if a racing caller
// with different options swaps in a newer generation (superseded
// generations are retained on the context).
const AcquisitionAnalysis& AnalyzeAcquisitions(const FunctionContext& fc,
                                               const ScanOptions& options);

}  // namespace refscan

#endif  // REFSCAN_CHECKERS_ANALYSIS_H_
