#include "src/checkers/fixes.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <vector>

#include "src/checkers/engine.h"
#include "src/support/strings.h"

namespace refscan {

std::string PairedDecrementFor(std::string_view api_name) {
  const std::string name(api_name);
  if (name == "pm_runtime_get_sync") {
    return "pm_runtime_put_noidle";  // the canonical fix for the 𝒢_E case
  }
  if (name == "kobject_init_and_add" || name.find("kobject") != std::string::npos) {
    return "kobject_put";
  }
  if (name.starts_with("of_") || name.find("for_each") != std::string::npos) {
    return "of_node_put";
  }
  if (name.find("fwnode") != std::string::npos) {
    return "fwnode_handle_put";
  }
  if (name == "get_device" || name.find("find_device") != std::string::npos ||
      name == "device_initialize") {
    return "put_device";
  }
  if (name == "dev_hold" || name == "ip_dev_find") {
    return "dev_put";
  }
  if (name.find("sock") != std::string::npos) {
    return "sock_put";
  }
  if (name.find("kref") != std::string::npos) {
    return "kref_put";
  }
  if (name == "mdesc_grab") {
    return "mdesc_release";
  }
  if (EndsWithWord(name, "get")) {
    std::string put = name;
    put.replace(put.rfind("get"), 3, "put");
    return put;
  }
  return {};
}

namespace {

// Leading whitespace of a line.
std::string IndentOf(std::string_view line) {
  size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) {
    ++i;
  }
  return std::string(line.substr(0, i));
}

// One edit against the original file.
struct Edit {
  enum class Kind { kInsertAfter, kInsertBefore, kReplace, kDelete };
  Kind kind = Kind::kInsertAfter;
  uint32_t line = 0;       // 1-based anchor in the original file
  std::string text;        // new line content (without newline)
};

// Renders one or more edits as a unified-diff hunk with up to two lines of
// context around the edited region.
std::string RenderDiff(const SourceFile& file, std::vector<Edit> edits) {
  if (edits.empty()) {
    return {};
  }
  std::sort(edits.begin(), edits.end(), [](const Edit& a, const Edit& b) { return a.line < b.line; });
  const uint32_t first = edits.front().line > 2 ? edits.front().line - 2 : 1;
  const uint32_t last = std::min<uint32_t>(edits.back().line + 2, file.line_count());

  std::vector<std::string> old_side;
  std::vector<std::string> new_side;
  std::string body;
  uint32_t old_count = 0;
  uint32_t new_count = 0;

  for (uint32_t ln = first; ln <= last; ++ln) {
    const std::string line(file.Line(ln));
    // All edits anchored here, in submission order: inserts-before, then
    // the original line (possibly replaced/deleted), then inserts-after.
    bool replaced = false;
    bool deleted = false;
    std::string replacement;
    for (const Edit& e : edits) {
      if (e.line == ln && e.kind == Edit::Kind::kInsertBefore) {
        body += "+" + e.text + "\n";
        ++new_count;
      }
      if (e.line == ln && e.kind == Edit::Kind::kReplace) {
        replaced = true;
        replacement = e.text;
      }
      if (e.line == ln && e.kind == Edit::Kind::kDelete) {
        deleted = true;
      }
    }
    if (deleted) {
      body += "-" + line + "\n";
      ++old_count;
    } else if (replaced) {
      body += "-" + line + "\n";
      body += "+" + replacement + "\n";
      ++old_count;
      ++new_count;
    } else {
      body += " " + line + "\n";
      ++old_count;
      ++new_count;
    }
    for (const Edit& e : edits) {
      if (e.line == ln && e.kind == Edit::Kind::kInsertAfter) {
        body += "+" + e.text + "\n";
        ++new_count;
      }
    }
  }

  std::string out = StrFormat("--- a/%s\n+++ b/%s\n", file.path().c_str(), file.path().c_str());
  out += StrFormat("@@ -%u,%u +%u,%u @@\n", first, old_count, first, new_count);
  out += body;
  return out;
}

// First line at or after `from` whose trimmed text starts with `prefix`
// (bounded search); 0 when absent.
uint32_t FindLineStarting(const SourceFile& file, uint32_t from, std::string_view prefix,
                          uint32_t limit = 12) {
  for (uint32_t ln = from; ln <= file.line_count() && ln < from + limit; ++ln) {
    if (Trim(file.Line(ln)).starts_with(prefix)) {
      return ln;
    }
  }
  return 0;
}

// First line at or after `from` containing `needle`; 0 when absent.
uint32_t FindLineContaining(const SourceFile& file, uint32_t from, std::string_view needle,
                            uint32_t limit = 12) {
  for (uint32_t ln = from; ln <= file.line_count() && ln < from + limit; ++ln) {
    if (file.Line(ln).find(needle) != std::string_view::npos) {
      return ln;
    }
  }
  return 0;
}

// Edits that insert `statement` before the return at `ret_line`, adding
// braces when the return is the single-statement body of a braceless `if`
// (inserting between `if (...)` and its statement would otherwise change
// the control flow — a patch any kernel reviewer would bounce).
std::vector<Edit> InsertBeforeReturn(const SourceFile& file, uint32_t ret_line,
                                     const std::string& statement) {
  std::vector<Edit> edits;
  const std::string_view above = ret_line > 1 ? file.Line(ret_line - 1) : std::string_view();
  const std::string_view above_trimmed = Trim(above);
  const bool braceless_if = above_trimmed.starts_with("if ") && !above_trimmed.ends_with("{");
  if (braceless_if) {
    edits.push_back({Edit::Kind::kReplace, ret_line - 1, std::string(above) + " {"});
    edits.push_back({Edit::Kind::kInsertBefore, ret_line, statement});
    edits.push_back({Edit::Kind::kInsertAfter, ret_line, IndentOf(above) + "}"});
  } else {
    edits.push_back({Edit::Kind::kInsertBefore, ret_line, statement});
  }
  return edits;
}

std::string ObjectRootOf(const BugReport& report) {
  std::string root;
  for (char c : report.object) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_') {
      root.push_back(c);
    } else {
      break;
    }
  }
  return root;
}

}  // namespace

FixSuggestion SuggestFix(const BugReport& report, const SourceFile& file) {
  FixSuggestion fix;
  const std::string dec = PairedDecrementFor(report.api);
  const std::string object = ObjectRootOf(report);

  switch (report.anti_pattern) {
    case 1:
    case 5: {
      // Insert the paired decrement before the error-path return. The
      // checker records the offending exit when it knows it.
      uint32_t ret_line = 0;
      if (report.exit_line > 0 &&
          Trim(file.Line(report.exit_line)).starts_with("return")) {
        ret_line = report.exit_line;
      } else {
        ret_line = FindLineStarting(file, report.line + 1, "return");
      }
      if (ret_line == 0 || dec.empty()) {
        return fix;
      }
      const std::string indent = IndentOf(file.Line(ret_line));
      fix.available = true;
      fix.summary = StrFormat("fix reference leak in %s()", report.function.c_str());
      fix.explanation =
          StrFormat("%s() leaves a reference held even on the failing path; add the missing "
                    "%s() before bailing out.",
                    report.api.c_str(), dec.c_str());
      fix.diff = RenderDiff(
          file, InsertBeforeReturn(file, ret_line,
                                   StrFormat("%s%s(%s);", indent.c_str(), dec.c_str(),
                                             report.object.c_str())));
      return fix;
    }

    case 2: {
      // Guard the possibly-NULL result before the first dereference.
      const std::string indent = IndentOf(file.Line(report.line));
      fix.available = true;
      fix.summary = StrFormat("fix NULL dereference in %s()", report.function.c_str());
      fix.explanation = StrFormat("%s() may return NULL; check '%s' before using it.",
                                  report.api.c_str(), object.c_str());
      fix.diff = RenderDiff(
          file, {{Edit::Kind::kInsertAfter, report.line,
                  StrFormat("%sif (!%s)", indent.c_str(), object.c_str())},
                 {Edit::Kind::kInsertAfter, report.line,
                  StrFormat("%s\treturn -ENODEV;", indent.c_str())}});
      return fix;
    }

    case 3: {
      // Release the iterator before leaving the smartloop early.
      if (dec.empty()) {
        return fix;
      }
      const std::string indent = IndentOf(file.Line(report.line));
      fix.available = true;
      fix.summary = StrFormat("fix refcount leak when breaking out of %s", report.api.c_str());
      fix.explanation = StrFormat(
          "each %s iteration holds a reference on '%s'; put it before the early exit.",
          report.api.c_str(), object.c_str());
      fix.diff = RenderDiff(
          file, InsertBeforeReturn(file, report.line,
                                   StrFormat("%s%s(%s);", indent.c_str(), dec.c_str(),
                                             object.c_str())));
      return fix;
    }

    case 4: {
      if (report.impact == Impact::kUaf) {
        // Missing increase before a consuming call.
        const std::string indent = IndentOf(file.Line(report.line));
        fix.available = true;
        fix.summary = StrFormat("fix premature put of '%s' in %s()", object.c_str(),
                                report.function.c_str());
        fix.explanation = StrFormat(
            "%s() consumes a reference on '%s' which the caller does not own; take one first.",
            report.api.c_str(), object.c_str());
        fix.diff = RenderDiff(file, {{Edit::Kind::kInsertBefore, report.line,
                                      StrFormat("%sof_node_get(%s);", indent.c_str(),
                                                object.c_str())}});
        return fix;
      }
      // Missing decrease: insert before the function's last return (the
      // early NULL-check returns hold no reference), or before the closing
      // brace of a return-less void function.
      if (dec.empty()) {
        return fix;
      }
      uint32_t ret_line = 0;
      uint32_t close_line = 0;
      for (uint32_t ln = report.line + 1; ln <= file.line_count(); ++ln) {
        const std::string_view trimmed = Trim(file.Line(ln));
        if (trimmed.starts_with("return")) {
          ret_line = ln;
        }
        if (trimmed == "}" && IndentOf(file.Line(ln)).empty()) {
          close_line = ln;
          break;  // end of function
        }
      }
      if (ret_line == 0) {
        if (close_line == 0) {
          return fix;
        }
        const std::string body_indent = "\t";
        fix.available = true;
        fix.summary = StrFormat("fix refcount leak in %s()", report.function.c_str());
        fix.explanation =
            StrFormat("the node from %s() is never released; add %s() when done with it.",
                      report.api.c_str(), dec.c_str());
        fix.diff = RenderDiff(file, {{Edit::Kind::kInsertBefore, close_line,
                                      StrFormat("%s%s(%s);", body_indent.c_str(), dec.c_str(),
                                                report.object.c_str())}});
        return fix;
      }
      const std::string indent = IndentOf(file.Line(ret_line));
      fix.available = true;
      fix.summary = StrFormat("fix refcount leak in %s()", report.function.c_str());
      fix.explanation =
          StrFormat("the node from %s() is never released; add %s() when done with it.",
                    report.api.c_str(), dec.c_str());
      fix.diff = RenderDiff(
          file, InsertBeforeReturn(file, ret_line,
                                   StrFormat("%s%s(%s);", indent.c_str(), dec.c_str(),
                                             report.object.c_str())));
      return fix;
    }

    case 7: {
      // Replace the kfree with the proper release API.
      if (dec.empty()) {
        return fix;
      }
      const std::string line(file.Line(report.line));
      const std::string indent = IndentOf(line);
      fix.available = true;
      fix.summary = StrFormat("use %s() instead of kfree in %s()", dec.c_str(),
                              report.function.c_str());
      fix.explanation =
          "freeing a refcounted object directly skips its release callback and leaks the "
          "resources attached to it.";
      fix.diff = RenderDiff(file, {{Edit::Kind::kReplace, report.line,
                                    StrFormat("%s%s(%s);", indent.c_str(), dec.c_str(),
                                              object.c_str())}});
      return fix;
    }

    case 8: {
      // Move the decrement after the last use of the object.
      const uint32_t use_line = FindLineContaining(file, report.line + 1, object);
      if (use_line == 0) {
        return fix;
      }
      const std::string dec_line(file.Line(report.line));
      fix.available = true;
      fix.summary = StrFormat("fix use-after-free in %s()", report.function.c_str());
      fix.explanation = StrFormat(
          "'%s' is still used after %s() may have freed it; drop the reference last.",
          object.c_str(), report.api.c_str());
      fix.diff = RenderDiff(file, {{Edit::Kind::kDelete, report.line, ""},
                                   {Edit::Kind::kInsertAfter, use_line, dec_line}});
      return fix;
    }

    case 9: {
      // Take a reference around the escape point.
      const std::string indent = IndentOf(file.Line(report.line));
      fix.available = true;
      fix.summary = StrFormat("fix escaped reference in %s()", report.function.c_str());
      fix.explanation = StrFormat(
          "'%s' escapes into longer-lived storage without its own reference; take one at the "
          "escape point.",
          report.api.c_str());
      fix.diff = RenderDiff(file, {{Edit::Kind::kInsertAfter, report.line,
                                    StrFormat("%sof_node_get(%s);", indent.c_str(),
                                              report.api.c_str())}});
      return fix;
    }

    case 6:
    default:
      // Inter-procedural: the release belongs in the peer function; writing
      // that patch needs human placement judgement.
      fix.available = false;
      fix.summary = StrFormat("add the missing release for %s() to the paired teardown function",
                              report.api.c_str());
      fix.explanation = report.message;
      return fix;
  }
}

std::string ApplyUnifiedDiff(const SourceFile& file, const std::string& diff) {
  // Parse the (single) hunk header.
  const size_t at = diff.find("@@ -");
  if (at == std::string::npos) {
    return std::string(file.text());
  }
  uint32_t old_start = 0;
  uint32_t old_count = 0;
  if (std::sscanf(diff.c_str() + at, "@@ -%u,%u", &old_start, &old_count) != 2) {
    return std::string(file.text());
  }
  const size_t body_start = diff.find('\n', at);
  if (body_start == std::string::npos) {
    return std::string(file.text());
  }

  // Rebuild: lines before the hunk, the hunk's +/context lines, lines after.
  std::string out;
  for (uint32_t ln = 1; ln < old_start; ++ln) {
    out.append(file.Line(ln));
    out.push_back('\n');
  }
  uint32_t consumed = 0;  // original lines covered by the hunk
  for (std::string_view line : Split(std::string_view(diff).substr(body_start + 1), '\n')) {
    if (line.empty()) {
      continue;
    }
    const char tag = line.front();
    const std::string_view content = line.substr(1);
    if (tag == ' ') {
      // Context must match the original; bail out to "no change" otherwise.
      if (file.Line(old_start + consumed) != content) {
        return std::string(file.text());
      }
      out.append(content);
      out.push_back('\n');
      ++consumed;
    } else if (tag == '-') {
      if (file.Line(old_start + consumed) != content) {
        return std::string(file.text());
      }
      ++consumed;  // dropped
    } else if (tag == '+') {
      out.append(content);
      out.push_back('\n');
    } else {
      break;  // end of hunk body
    }
    if (consumed >= old_count && tag != '+') {
      // Keep reading '+' lines that may follow the last original line.
    }
  }
  for (uint32_t ln = old_start + old_count; ln <= file.line_count(); ++ln) {
    out.append(file.Line(ln));
    out.push_back('\n');
  }
  return out;
}

}  // namespace refscan
