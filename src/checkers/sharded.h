// Sharded multi-process scanning (DESIGN.md §5.13, ROADMAP item 4).
//
// `refscan scan --workers N` splits the tree's file list into N
// content-balanced shards and runs the parallel pipeline stages in N
// `refscan worker` subprocesses, keeping the order-sensitive parts — KB
// discovery, the circuit breaker, the file-ordered merge — in the
// coordinator. The protocol over a Unix-domain socket (support/ipc.h), five
// frame types in lockstep per worker:
//
//   worker → coordinator   kHello    worker id
//   coordinator → worker   kJob      ScanOptions + the shard's (path, text)
//   worker → coordinator   kFacts    per-file DiscoveryFacts / failures
//   coordinator → worker   kKb       the post-discovery KB snapshot
//   worker → coordinator   kResults  per-file report shards + cache flags
//
// The kFacts/kKb round trip is the two-phase KB exchange: workers parse
// their shards (stage 1, sharing the per-file bodies in scan_stages.cc with
// the in-process engine), the coordinator replays DiscoverFromFacts over
// every healthy file in global tree order — exactly the serial barrier the
// engine runs — and broadcasts the resulting KB, which the workers use for
// stage 3. Output is byte-identical to `--workers 0` because every
// divergence point is pinned: same stage bodies, same discovery order, same
// KB bytes (SerializeKb round-trips everything the KB fingerprint
// observes), same file-ordered merge and dedup on the coordinator.
//
// Failure semantics: a worker that dies mid-protocol (crash, kill, protocol
// error) costs its shard, not the scan. The coordinator discards all worker
// results, rescans the surviving files in-process — making "the degraded
// scan's reports match scanning the surviving subset" true by construction
// — and quarantines the dead shard's files into the §5.9 degraded section.

#ifndef REFSCAN_CHECKERS_SHARDED_H_
#define REFSCAN_CHECKERS_SHARDED_H_

#include <string>
#include <vector>

#include "src/checkers/engine.h"
#include "src/support/source.h"

namespace refscan {

// Deterministic content-balanced sharding: greedy longest-processing-time
// assignment of files (largest first, path as tie-break) to the currently
// lightest shard, measured in content bytes. Returns `shards` index lists
// into `files`, each sorted ascending so every worker sees its files in
// global tree order. Pure function of (sizes, paths, shards) — the same
// tree always shards the same way.
std::vector<std::vector<size_t>> ShardFiles(const std::vector<const SourceFile*>& files,
                                            size_t shards);

struct ShardedScanConfig {
  size_t workers = 0;
  // Binary to exec for workers (argv: worker --socket PATH --id N).
  // The CLI passes /proc/self/exe; tests pass their built refscan path.
  std::string worker_cmd;
  // Directory for the coordination socket; empty = /tmp. Paths must fit
  // sockaddr_un (~107 bytes).
  std::string socket_dir;
};

// Coordinator entry point: scans `tree` across config.workers subprocesses.
// Drop-in replacement for CheckerEngine(...).Scan(tree) — reports, stats,
// failures and abort behaviour match it byte for byte (asserted by
// tests/sharded_test.cc). Incompatible with options.interprocedural (a
// whole-tree stage); callers handle that by falling back to in-process.
ScanResult ShardedScan(const SourceTree& tree, const ScanOptions& options,
                       const ShardedScanConfig& config);

// Worker entry point (`refscan worker --socket PATH --id N`): connects,
// runs stages 1 and 3 over the shard it is sent, exits 0 on a completed or
// cleanly-abandoned (coordinator closed) exchange. Throws propagate to the
// CLI's fatal handler — an injected worker.facts/worker.results fault kills
// the worker exactly like a real crash.
int RunShardWorker(const std::string& socket_path, int worker_id);

}  // namespace refscan

#endif  // REFSCAN_CHECKERS_SHARDED_H_
