#include "src/checkers/engine.h"

#include <charconv>
#include <chrono>
#include <optional>
#include <thread>

#include "src/ast/parser.h"
#include "src/cache/cache.h"
#include "src/cache/serial.h"
#include "src/ipa/summary.h"
#include "src/support/faultinject.h"
#include "src/support/governor.h"
#include "src/support/strings.h"
#include "src/support/telemetry.h"
#include "src/support/threadpool.h"

namespace refscan {

std::string_view FailureStageName(FailureStage stage) {
  switch (stage) {
    case FailureStage::kLoad:
      return "load";
    case FailureStage::kParse:
      return "parse";
    case FailureStage::kCheck:
      return "check";
    case FailureStage::kSummarize:
      return "summarize";
  }
  return "unknown";
}

std::string_view FailureKindName(FailureKind kind) {
  switch (kind) {
    case FailureKind::kIo:
      return "io";
    case FailureKind::kParse:
      return "parse";
    case FailureKind::kResourceLimit:
      return "resource-limit";
    case FailureKind::kCache:
      return "cache";
    case FailureKind::kInternal:
      return "internal";
  }
  return "unknown";
}

UnitContext BuildUnitContext(const SourceFile& file, TranslationUnit unit,
                             const KnowledgeBase& kb) {
  UnitContext uc;
  uc.file = &file;
  uc.unit = std::move(unit);
  for (const FunctionDef& fn : uc.unit.functions) {
    FunctionContext fc;
    fc.unit = &uc.unit;
    fc.fn = &fn;
    fc.cfg = std::make_unique<Cfg>(BuildCfg(fn));
    fc.cpg = std::make_unique<Cpg>(BuildCpg(*fc.cfg, kb));
    uc.functions.push_back(std::move(fc));
  }
  return uc;
}

CheckerEngine::CheckerEngine(KnowledgeBase kb, ScanOptions options)
    : kb_(std::move(kb)), options_(std::move(options)) {
  // Dialect catalogues merge into the seed KB before any discovery runs, so
  // discovered wrappers classify against them exactly like builtin APIs.
  // Unknown names were rejected at the CLI; here they are simply inert.
  for (const std::string& dialect : options_.dialects) {
    ApplyDialect(kb_, dialect);
  }
}

namespace {

// Stage-3 work for one file: build the contexts and run every enabled
// checker, appending raw reports to this file's shard. Each worker owns its
// shard exclusively, and reads the (now immutable) KB concurrently.
struct FileShard {
  std::vector<BugReport> raw;
  size_t functions = 0;
};

FileShard CheckOneFile(const SourceFile& file, TranslationUnit unit, const KnowledgeBase& kb,
                       const ScanOptions& options) {
  FileShard shard;
  const UnitContext uc = BuildUnitContext(file, std::move(unit), kb);
  shard.functions = uc.functions.size();

  const auto& enabled = options.enabled_patterns;
  for (const FunctionContext& fc : uc.functions) {
    CheckDeadline("checker");
    if (enabled.contains(1)) {
      CheckReturnError(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(2)) {
      CheckReturnNull(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(3)) {
      CheckSmartLoopBreak(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(4)) {
      CheckHiddenApi(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(5)) {
      CheckErrorHandle(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(7)) {
      CheckDirectFree(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(8)) {
      CheckUseAfterDecrease(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(9)) {
      CheckReferenceEscape(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(10)) {
      CheckRawManipulation(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(11)) {
      CheckTestAndFree(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(12)) {
      CheckRefcountReset(uc, fc, kb, options, shard.raw);
    }
  }
  if (enabled.contains(6)) {
    CheckInterUnpaired(uc, kb, options, shard.raw);
  }
  return shard;
}

// Maps an injected fault to the failure taxonomy by its site prefix.
FailureKind ClassifyFault(const FaultInjected& e) {
  if (e.transient_io()) {
    return FailureKind::kIo;
  }
  const std::string& site = e.site();
  if (site.rfind("fs.", 0) == 0) {
    return FailureKind::kIo;
  }
  if (site.rfind("cache.", 0) == 0) {
    return FailureKind::kCache;
  }
  if (site.rfind("parser.", 0) == 0) {
    return FailureKind::kParse;
  }
  return FailureKind::kInternal;
}

// Runs one file's pipeline stage inside its sandbox: a fresh ScopedDeadline
// per attempt, one bounded-backoff retry for transient I/O failures (only
// while `retry_allowed` — the stage-3 body clears it once it has consumed
// the cached TranslationUnit), and exception → FileFailure classification.
// Returns false when the file is quarantined (`failure` is filled in); the
// caller must then discard the file's partial state.
template <typename Fn>
bool GuardFileStage(std::string_view path, FailureStage stage, uint32_t timeout_ms,
                    const bool& retry_allowed, Fn&& body, std::optional<FileFailure>& failure,
                    bool& retried) {
  FileFailure f;
  f.path = std::string(path);
  f.stage = stage;
  for (int attempt = 0;; ++attempt) {
    try {
      ScopedDeadline deadline(timeout_ms);
      body();
      return true;
    } catch (const FaultInjected& e) {
      if (e.transient_io() && retry_allowed && attempt == 0) {
        retried = true;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      f.kind = ClassifyFault(e);
      f.what = e.what();
    } catch (const ResourceLimitError& e) {
      f.kind = FailureKind::kResourceLimit;
      f.what = e.what();
    } catch (const std::exception& e) {
      f.kind = FailureKind::kInternal;
      f.what = e.what();
    } catch (...) {
      f.kind = FailureKind::kInternal;
      f.what = "unknown exception";
    }
    f.retries = retried ? 1 : 0;
    failure = std::move(f);
    return false;
  }
}

// Pre-resolved counter handles for one scan. The engine counts in here (one
// relaxed atomic add per event, no name lookups on the hot path) and
// materialises the stable ScanStats façade from the registry at the end via
// ScanStatsFields(); an armed telemetry session then absorbs the whole
// registry, so --metrics-out carries the scan counters alongside the
// support-layer ones (load.*, sched.*, fault.*, governor.*).
struct ScanMetrics {
  MetricsRegistry reg;
  MetricCounter& files = reg.Counter("scan.files");
  MetricCounter& functions = reg.Counter("scan.functions");
  MetricCounter& discovered_apis = reg.Counter("scan.discovered_apis");
  MetricCounter& discovered_smart_loops = reg.Counter("scan.discovered_smart_loops");
  MetricCounter& refcounted_structs = reg.Counter("scan.refcounted_structs");
  MetricCounter& summarized_functions = reg.Counter("scan.summarized_functions");
  MetricCounter& files_quarantined = reg.Counter("scan.files_quarantined");
  MetricCounter& files_retried = reg.Counter("scan.files_retried");
  MetricCounter& cache_hits = reg.Counter("scan.cache_hits");
  MetricCounter& cache_misses = reg.Counter("scan.cache_misses");
  MetricCounter& cache_parse_skips = reg.Counter("scan.cache_parse_skips");
  MetricCounter& cache_corrupt = reg.Counter("scan.cache_corrupt");
  MetricCounter& raw_reports = reg.Counter("scan.raw_reports");
  MetricCounter& reports = reg.Counter("scan.reports");
};

}  // namespace

ScanResult CheckerEngine::Scan(const SourceTree& tree) {
  ScanResult result;

  // Scoped fault arming from the options: library callers and tests get a
  // hermetic plan that restores whatever was armed before. A malformed spec
  // aborts loudly — silently scanning un-faulted would make a fault-matrix
  // CI job pass vacuously.
  std::optional<ScopedFaultArm> fault_arm;
  if (!options_.fault_spec.empty()) {
    FaultPlan plan;
    std::string spec_error;
    if (!ParseFaultSpec(options_.fault_spec, plan, &spec_error)) {
      result.aborted = true;
      result.abort_reason = "invalid fault spec: " + spec_error;
      return result;
    }
    fault_arm.emplace(std::move(plan));
  }

  ScanMetrics m;
  // Every return path below materialises result.stats from the registry
  // (the ScanStatsFields table binds each counter to its member) and folds
  // the scan's counters into the armed session, if any.
  const auto finalize_stats = [&] {
    for (const ScanStatsField& f : ScanStatsFields()) {
      result.stats.*f.member = static_cast<size_t>(m.reg.CounterValue(f.metric));
    }
    if (Telemetry* t = CurrentTelemetry()) {
      t->metrics().MergeFrom(m.reg);
    }
  };

  // Files in path order: index i is the fan-out key for both parallel
  // stages, so merge order never depends on thread scheduling.
  std::vector<const SourceFile*> files;
  files.reserve(tree.size());
  for (const auto& [path, file] : tree.files()) {
    files.push_back(&file);
  }

  ThreadPool pool(options_.jobs);

  ScanCache cache(options_.cache_dir);
  const bool use_cache = cache.enabled();
  const uint64_t options_fp = use_cache ? ScanOptionsFingerprint(options_) : 0;
  const bool want_facts = options_.discover_from_source;
  // Whether stage 1 must materialise a TranslationUnit for every file. With
  // no cache, stage 3 consumes the units; in interprocedural mode, stage
  // 2.5 walks them. With the cache and neither, a file whose facts (and
  // later, reports) hit can go through the whole scan without ever being
  // parsed — the incremental fast path.
  const bool need_units = !use_cache || options_.interprocedural;

  struct FileState {
    CacheKey key;
    DiscoveryFacts facts;
    std::optional<TranslationUnit> unit;
    bool parsed = false;      // ParseFile ran for this file during this scan
    bool report_hit = false;  // stage-3 shard spliced from the cache
    bool retried = false;     // a transient-I/O retry was consumed (any stage)
    std::optional<FileFailure> failure;  // set = quarantined, skip later stages
  };

  // Parser caps from the governor options. max_ast_depth replaces the
  // silent flatten-at-200 with a hard (quarantining) cap.
  ParseOptions popts;
  if (options_.max_ast_depth > 0) {
    popts.max_depth = options_.max_ast_depth;
    popts.depth_fatal = true;
  }
  popts.max_nodes = options_.max_ast_nodes;
  const bool stage_retry_ok = true;  // stage 1 work is idempotent, retry freely

  // Stage 1: obtain per-file discovery facts — and units where needed —
  // (parallel; each file is independent). Cache hits replay the stored
  // facts/unit instead of parsing; misses parse, extract, and populate the
  // cache for the next scan. Facts extraction is a pure projection of the
  // unit, so every path below yields identical facts for identical content.
  // Every file runs inside its sandbox: a throw from the size cap, the
  // parser (deadline / AST caps / injected fault) or the cache quarantines
  // that one file and resets its partial state; the rest of the scan never
  // sees it again. A quarantined file stores no cache artifacts, so nothing
  // injection- or wall-clock-dependent can ever be replayed.
  std::vector<FileState> states;
  {
    TelemetrySpan stage_span("stage.parse");
    states = ParallelMap(pool, files.size(), [&](size_t i) {
    FileState st;
    const SourceFile& f = *files[i];
    // One event per file whatever happens inside (cache replay, parse,
    // retries): the guard's attempt loop runs within this span.
    TelemetrySpan file_span("file.parse", f.path());
    const bool ok = GuardFileStage(
        f.path(), FailureStage::kParse, options_.file_timeout_ms, stage_retry_ok,
        [&] {
          st.key = CacheKey{};
          st.facts = DiscoveryFacts{};
          st.unit.reset();
          st.parsed = false;
          if (options_.max_file_bytes > 0 && f.text().size() > options_.max_file_bytes) {
            throw ResourceLimitError(StrFormat("input size %zu exceeds cap %zu", f.text().size(),
                                               options_.max_file_bytes));
          }
          if (use_cache) {
            st.key = MakeFileKey(f.path(), f.text(), options_fp);
            if (!need_units) {
              if (!want_facts) {
                return;  // discovery off: nothing is needed before stage 3
              }
              if (std::optional<DiscoveryFacts> facts = cache.LoadFacts(st.key)) {
                st.facts = std::move(*facts);
                return;
              }
            } else if (std::optional<TranslationUnit> unit = cache.LoadUnit(st.key)) {
              st.unit = std::move(*unit);
              if (want_facts) {
                st.facts = ExtractDiscoveryFacts(*st.unit);
              }
              return;
            }
          }
          st.unit = ParseFile(f, popts);
          st.parsed = true;
          if (want_facts) {
            st.facts = ExtractDiscoveryFacts(*st.unit);
          }
          if (use_cache) {
            cache.StoreUnit(st.key, *st.unit, f.path());
            if (want_facts) {
              cache.StoreFacts(st.key, st.facts, f.path());
            }
          }
        },
        st.failure, st.retried);
    if (!ok) {
      // Discard partial state so the KB replay and stage 3 see a file that
      // simply is not there — this is what makes the healthy-subset
      // byte-identity guarantee hold.
      st.facts = DiscoveryFacts{};
      st.unit.reset();
      st.parsed = false;
    }
    return st;
    });
  }

  // Scan-wide circuit breaker (off by default): a mostly-broken tree —
  // wrong directory, filesystem fault, bad deploy — should abort loudly
  // instead of "completing" with a handful of reports from the wreckage.
  const auto breaker_trips = [&](size_t failed) {
    return options_.max_failure_ratio > 0 && !files.empty() &&
           static_cast<double>(failed) / static_cast<double>(files.size()) >
               options_.max_failure_ratio;
  };
  const auto count_failed = [&] {
    size_t failed = 0;
    for (const FileState& st : states) {
      failed += st.failure.has_value() ? 1 : 0;
    }
    return failed;
  };
  const auto collect_failures = [&] {
    for (FileState& st : states) {
      if (st.retried) {
        m.files_retried.Add(1);
      }
      if (st.failure) {
        m.files_quarantined.Add(1);
        result.failures.push_back(std::move(*st.failure));
      }
    }
  };

  if (const size_t failed = count_failed(); breaker_trips(failed)) {
    result.aborted = true;
    result.abort_reason =
        StrFormat("%zu of %zu files failed in the parse stage (max_failure_ratio %.2f)", failed,
                  files.size(), options_.max_failure_ratio);
    m.files.Add(files.size());
    collect_failures();
    finalize_stats();
    return result;
  }

  // Stage 2: feed the KB (structure parser, API and smartloop discovery).
  // Discovery must see all units before checking so that cross-file APIs (a
  // helper defined in one file, used in another) classify correctly — the
  // paper runs its lexer parsers over the whole kernel first. This is the
  // serial merge barrier: discovery mutates the KB and the second round
  // depends on what the first one found, so parallelising it would change
  // results. It is also cheap next to parsing and checking. Replaying the
  // pre-extracted facts in file order is exactly DiscoverFromUnit in file
  // order (see kb.h), whether the facts came from a parse or the cache.
  if (want_facts) {
    TelemetrySpan stage_span("stage.discover");
    // With the cache on, try the tree-level KB snapshot first. Discovery
    // is purely additive — every Discover* pass only inserts, and every
    // insert is determined by (current KB, facts sequence) — so the
    // post-discovery KB is a pure function of the pre-discovery KB and the
    // ordered facts, which is exactly what the snapshot key hashes. A hit
    // replaces both replay rounds, which otherwise dominate a warm rescan
    // (re-classifying every discovered API from scratch each run).
    // Quarantined files are excluded from both the replay and the snapshot
    // key: the KB — and therefore every healthy file's report shard — is
    // exactly what a scan of the healthy subset alone would build.
    bool kb_from_snapshot = false;
    CacheKey kb_key;
    if (use_cache) {
      std::vector<const DiscoveryFacts*> all_facts;
      all_facts.reserve(states.size());
      for (const FileState& st : states) {
        if (st.failure) {
          continue;
        }
        all_facts.push_back(&st.facts);
      }
      kb_key = MakeKbSnapshotKey(FingerprintKnowledgeBase(kb_), options_.nesting_threshold,
                                 all_facts, options_fp);
      if (std::optional<KnowledgeBase> snapshot = cache.LoadKb(kb_key)) {
        kb_ = std::move(*snapshot);
        kb_from_snapshot = true;
      }
    }
    if (!kb_from_snapshot) {
      // Two discovery rounds: the first classifies directly-visible APIs,
      // the second lets wrappers of discovered APIs classify too.
      for (int round = 0; round < 2; ++round) {
        for (const FileState& st : states) {
          if (st.failure) {
            continue;
          }
          kb_.DiscoverFromFacts(st.facts, options_.nesting_threshold);
        }
      }
      if (use_cache) {
        cache.StoreKb(kb_key, kb_, "<tree>");
      }
    }
  }
  // Stage 2.5: interprocedural ref-delta summaries (src/ipa). Bottom-up
  // over the call-graph SCCs, parallel within a level; registration into
  // the still-mutable KB is serial in call-graph node order, so the KB the
  // checkers read is identical at every `jobs` value. After this the KB
  // freezes, exactly as without summaries. Summaries are always recomputed
  // (they are whole-tree), but the units they walk come from cached parses
  // on a warm rescan.
  std::vector<FileFailure> tree_failures;
  if (options_.interprocedural) {
    // A summary-stage failure degrades the whole scan (path "<tree>") but
    // does not abort it: the checkers still run with the intraprocedural KB,
    // exactly as if --ipa had been off. The fault hook fires before
    // ComputeSummaries so an injected failure can never leave the KB with a
    // partial set of registered summaries.
    TelemetrySpan stage_span("stage.summarize");
    try {
      MaybeFault("ipa.summarize", "<tree>");
      std::vector<const TranslationUnit*> unit_ptrs;
      unit_ptrs.reserve(states.size());
      for (const FileState& st : states) {
        if (st.failure) {
          continue;
        }
        unit_ptrs.push_back(&*st.unit);
      }
      SummaryOptions sopts;
      sopts.max_paths_per_function = options_.max_paths_per_function;
      const SummaryResult summaries = ComputeSummaries(unit_ptrs, kb_, sopts, pool);
      m.summarized_functions.Add(summaries.summaries.size());
    } catch (const std::exception& e) {
      FileFailure f;
      f.path = "<tree>";
      f.stage = FailureStage::kSummarize;
      f.kind = FailureKind::kInternal;
      f.what = e.what();
      tree_failures.push_back(std::move(f));
    }
  }

  m.discovered_apis.Add(kb_.apis().size());
  m.discovered_smart_loops.Add(kb_.smart_loops().size());
  m.refcounted_structs.Add(kb_.refcounted_structs().size());

  // The KB is frozen from here on. A file's stage-3 shard is a pure
  // function of (file content, KB, options): fingerprint the KB and the
  // cache can prove a stored shard is still valid. Any content change that
  // altered discovery shifts this fingerprint and invalidates every stored
  // shard at once — the conservative, correct reaction.
  const uint64_t kb_fp = use_cache ? FingerprintKnowledgeBase(kb_) : 0;

  // Stage 3: build contexts and run the enabled checkers (parallel — the
  // KB is read-only from here on; KnowledgeBase lookups are const and safe
  // for concurrent readers). Each file gets its own shard; cached shards
  // splice in without parsing or checking.
  const KnowledgeBase& kb = kb_;
  std::vector<FileShard> shards;
  {
    TelemetrySpan stage_span("stage.check");
    shards = ParallelMap(pool, files.size(), [&](size_t i) {
    FileState& st = states[i];
    FileShard shard;
    if (st.failure) {
      return shard;  // quarantined in stage 1: empty shard, nothing to check
    }
    // One event per non-quarantined file, covering splice and cold check
    // alike (the nested cache.load span distinguishes them in a trace).
    TelemetrySpan file_span("file.check", files[i]->path());
    // Retrying is only safe until the body moves the cached TranslationUnit
    // into CheckOneFile — after that a retry would re-check a moved-from
    // unit and silently produce wrong output, so the body revokes it.
    bool retry_ok = true;
    const bool ok = GuardFileStage(
        files[i]->path(), FailureStage::kCheck, options_.file_timeout_ms, retry_ok,
        [&] {
          shard = FileShard{};
          if (use_cache) {
            if (std::optional<CachedFileReports> cached = cache.LoadReports(st.key, kb_fp)) {
              st.report_hit = true;
              shard.raw = std::move(cached->reports);
              shard.functions = static_cast<size_t>(cached->functions);
              return;
            }
          }
          MaybeFault("checker.run", files[i]->path());
          TranslationUnit unit;
          if (st.unit.has_value()) {
            retry_ok = false;
            unit = std::move(*st.unit);
            st.unit.reset();
          } else {
            // Facts were cached but this file's reports were invalidated
            // (another file changed the KB): re-parse just this file,
            // in-memory.
            unit = ParseFile(*files[i], popts);
            st.parsed = true;
          }
          shard = CheckOneFile(*files[i], std::move(unit), kb, options_);
          if (use_cache) {
            CachedFileReports entry;
            entry.reports = shard.raw;
            entry.functions = shard.functions;
            cache.StoreReports(st.key, kb_fp, entry, files[i]->path());
          }
        },
        st.failure, st.retried);
    if (!ok) {
      shard = FileShard{};  // discard any partial shard
    }
    return shard;
    });
  }

  if (const size_t failed = count_failed(); breaker_trips(failed)) {
    result.aborted = true;
    result.abort_reason = StrFormat("%zu of %zu files failed (max_failure_ratio %.2f)", failed,
                                    files.size(), options_.max_failure_ratio);
    m.files.Add(files.size());
    collect_failures();
    finalize_stats();
    return result;
  }

  if (use_cache) {
    for (const FileState& st : states) {
      if (st.failure) {
        continue;  // quarantined files are neither hits nor misses
      }
      (st.report_hit ? m.cache_hits : m.cache_misses).Add(1);
      if (!st.parsed) {
        m.cache_parse_skips.Add(1);
      }
    }
    m.cache_corrupt.Add(static_cast<uint64_t>(cache.corrupt_loads()));
  }

  // Merge the shards in file order: the concatenation equals what the old
  // single-threaded loop produced, so DeduplicateReports (whose tie-breaks
  // are first-seen-wins) yields byte-identical output at any thread count.
  TelemetrySpan merge_span("stage.merge");
  std::vector<BugReport> raw;
  m.files.Add(files.size());
  for (FileShard& shard : shards) {
    m.functions.Add(shard.functions);
    raw.insert(raw.end(), std::make_move_iterator(shard.raw.begin()),
               std::make_move_iterator(shard.raw.end()));
  }
  m.raw_reports.Add(raw.size());

  result.reports = DeduplicateReports(std::move(raw));

  // Quarantined files in tree (path) order — states already are — then any
  // whole-tree stage failures.
  collect_failures();
  for (FileFailure& f : tree_failures) {
    m.files_quarantined.Add(1);
    result.failures.push_back(std::move(f));
  }

  // Suppression comments: a `refscan: ignore` marker on the reported line
  // (or the line above it) silences the report — the escape hatch for
  // intentional patterns the checkers cannot see are safe (the paper's
  // maintainer-disputed UAD cases, for example).
  std::erase_if(result.reports, [&tree](const BugReport& r) {
    const SourceFile* file = tree.Find(r.file);
    if (file == nullptr) {
      return false;
    }
    std::vector<uint32_t> probe_lines = {r.line};
    if (r.line > 1) {
      probe_lines.push_back(r.line - 1);  // only when distinct: line 1 has no line above
    }
    for (uint32_t line : probe_lines) {
      if (file->Line(line).find("refscan: ignore") != std::string_view::npos ||
          file->Line(line).find("refscan:ignore") != std::string_view::npos) {
        return true;
      }
    }
    return false;
  });
  m.reports.Add(result.reports.size());
  finalize_stats();
  return result;
}

ScanResult CheckerEngine::ScanFileText(std::string path, std::string text) {
  SourceTree tree;
  tree.Add(std::move(path), std::move(text));
  return Scan(tree);
}

uint64_t ScanOptionsFingerprint(const ScanOptions& options) {
  ByteWriter w;
  w.U64(options.max_paths_per_function);
  w.I32(options.nesting_threshold);
  w.Bool(options.discover_from_source);
  w.U32(static_cast<uint32_t>(options.enabled_patterns.size()));
  for (const int p : options.enabled_patterns) {
    w.I32(p);
  }
  w.Bool(options.prune_null_branches);
  w.Bool(options.model_ownership_transfer);
  // Deterministic governor caps: they change what a parse produces.
  // fault_spec / file_timeout_ms / max_failure_ratio deliberately excluded —
  // a file that faults or times out stores no artifacts.
  w.U64(options.max_file_bytes);
  w.U64(options.max_ast_nodes);
  w.I32(options.max_ast_depth);
  // Dialects seed the KB before discovery, so two scans with different
  // dialect sets must never share cached facts, units, or report shards.
  w.U32(static_cast<uint32_t>(options.dialects.size()));
  for (const std::string& dialect : options.dialects) {
    w.Str(dialect);
  }
  return HashBytes(w.bytes());
}

const std::vector<ScanStatsField>& ScanStatsFields() {
  // JSON keys keep their historical names ("quarantined", "retried"); the
  // metric names carry the struct's fuller spelling under the scan. prefix.
  static const auto* fields = new std::vector<ScanStatsField>{
      {"files", "scan.files", &ScanStats::files},
      {"functions", "scan.functions", &ScanStats::functions},
      {"discovered_apis", "scan.discovered_apis", &ScanStats::discovered_apis},
      {"discovered_smart_loops", "scan.discovered_smart_loops",
       &ScanStats::discovered_smart_loops},
      {"refcounted_structs", "scan.refcounted_structs", &ScanStats::refcounted_structs},
      {"summarized_functions", "scan.summarized_functions", &ScanStats::summarized_functions},
      {"quarantined", "scan.files_quarantined", &ScanStats::files_quarantined},
      {"retried", "scan.files_retried", &ScanStats::files_retried},
      {"cache_hits", "scan.cache_hits", &ScanStats::cache_hits},
      {"cache_misses", "scan.cache_misses", &ScanStats::cache_misses},
      {"cache_parse_skips", "scan.cache_parse_skips", &ScanStats::cache_parse_skips},
      {"cache_corrupt", "scan.cache_corrupt", &ScanStats::cache_corrupt},
  };
  return *fields;
}

int ScanExitCodeFor(const ScanResult& result) {
  if (result.aborted) {
    return kExitHardFailure;
  }
  if (!result.failures.empty()) {
    return kExitDegraded;
  }
  return result.reports.empty() ? kExitClean : kExitReports;
}

std::string ScanResultToJson(const ScanResult& result, bool include_stats) {
  std::string out = "{\n\"reports\": ";
  std::string reports = ReportsToJson(result.reports);
  if (!reports.empty() && reports.back() == '\n') {
    reports.pop_back();
  }
  out += reports;
  out += ",\n\"degraded\": [";
  for (size_t i = 0; i < result.failures.size(); ++i) {
    const FileFailure& f = result.failures[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"path\": ";
    AppendJsonString(out, f.path);
    out += ", \"stage\": ";
    AppendJsonString(out, FailureStageName(f.stage));
    out += ", \"kind\": ";
    AppendJsonString(out, FailureKindName(f.kind));
    out += ", \"what\": ";
    AppendJsonString(out, f.what);
    out += StrFormat(", \"retries\": %d}", f.retries);
  }
  if (!result.failures.empty()) {
    out += "\n";
  }
  out += "]";
  if (result.aborted) {
    out += ",\n\"aborted\": true,\n\"abort_reason\": ";
    AppendJsonString(out, result.abort_reason);
  }
  if (include_stats) {
    // Driven by the field table so every ScanStats member appears — adding
    // a field to the struct without listing it here is impossible.
    out += ",\n\"stats\": {";
    const std::vector<ScanStatsField>& fields = ScanStatsFields();
    for (size_t i = 0; i < fields.size(); ++i) {
      out += StrFormat("%s\"%s\": %zu", i == 0 ? "" : ", ", fields[i].json_key,
                       result.stats.*fields[i].member);
    }
    out += "}";
  }
  out += "\n}\n";
  return out;
}

bool ParsePatternList(std::string_view text, std::set<int>& out) {
  std::set<int> parsed;
  while (!text.empty()) {
    const size_t comma = text.find(',');
    const std::string_view item = text.substr(0, comma);
    int value = 0;
    const auto [ptr, ec] = std::from_chars(item.data(), item.data() + item.size(), value);
    if (ec != std::errc() || ptr != item.data() + item.size() || value < 1 || value > 12) {
      return false;
    }
    parsed.insert(value);
    if (comma == std::string_view::npos) {
      break;
    }
    text.remove_prefix(comma + 1);
  }
  if (parsed.empty()) {
    return false;
  }
  out = std::move(parsed);
  return true;
}

}  // namespace refscan
