#include "src/checkers/engine.h"

#include "src/ast/parser.h"

namespace refscan {

UnitContext BuildUnitContext(const SourceFile& file, TranslationUnit unit,
                             const KnowledgeBase& kb) {
  UnitContext uc;
  uc.file = &file;
  uc.unit = std::move(unit);
  for (const FunctionDef& fn : uc.unit.functions) {
    FunctionContext fc;
    fc.unit = &uc.unit;
    fc.fn = &fn;
    fc.cfg = std::make_unique<Cfg>(BuildCfg(fn));
    fc.cpg = std::make_unique<Cpg>(BuildCpg(*fc.cfg, kb));
    uc.functions.push_back(std::move(fc));
  }
  return uc;
}

CheckerEngine::CheckerEngine(KnowledgeBase kb, ScanOptions options)
    : kb_(std::move(kb)), options_(std::move(options)) {}

ScanResult CheckerEngine::Scan(const SourceTree& tree) {
  ScanResult result;

  // Pass 1: parse everything and feed the KB (structure parser, API and
  // smartloop discovery). Discovery must see all units before checking so
  // that cross-file APIs (a helper defined in one file, used in another)
  // classify correctly — the paper runs its lexer parsers over the whole
  // kernel first.
  std::vector<TranslationUnit> units;
  units.reserve(tree.size());
  for (const auto& [path, file] : tree.files()) {
    units.push_back(ParseFile(file));
  }
  if (options_.discover_from_source) {
    // Two discovery rounds: the first classifies directly-visible APIs, the
    // second lets wrappers of discovered APIs classify too.
    for (int round = 0; round < 2; ++round) {
      for (const TranslationUnit& unit : units) {
        kb_.DiscoverFromUnit(unit, options_.nesting_threshold);
      }
    }
  }
  result.stats.discovered_apis = kb_.apis().size();
  result.stats.discovered_smart_loops = kb_.smart_loops().size();
  result.stats.refcounted_structs = kb_.refcounted_structs().size();

  // Pass 2: build contexts and run the enabled checkers.
  std::vector<BugReport> raw;
  size_t unit_index = 0;
  for (const auto& [path, file] : tree.files()) {
    UnitContext uc = BuildUnitContext(file, std::move(units[unit_index++]), kb_);
    ++result.stats.files;
    result.stats.functions += uc.functions.size();

    const auto& enabled = options_.enabled_patterns;
    for (const FunctionContext& fc : uc.functions) {
      if (enabled.contains(1)) {
        CheckReturnError(uc, fc, kb_, options_, raw);
      }
      if (enabled.contains(2)) {
        CheckReturnNull(uc, fc, kb_, options_, raw);
      }
      if (enabled.contains(3)) {
        CheckSmartLoopBreak(uc, fc, kb_, options_, raw);
      }
      if (enabled.contains(4)) {
        CheckHiddenApi(uc, fc, kb_, options_, raw);
      }
      if (enabled.contains(5)) {
        CheckErrorHandle(uc, fc, kb_, options_, raw);
      }
      if (enabled.contains(7)) {
        CheckDirectFree(uc, fc, kb_, options_, raw);
      }
      if (enabled.contains(8)) {
        CheckUseAfterDecrease(uc, fc, kb_, options_, raw);
      }
      if (enabled.contains(9)) {
        CheckReferenceEscape(uc, fc, kb_, options_, raw);
      }
    }
    if (enabled.contains(6)) {
      CheckInterUnpaired(uc, kb_, options_, raw);
    }
  }

  result.reports = DeduplicateReports(std::move(raw));

  // Suppression comments: a `refscan: ignore` marker on the reported line
  // (or the line above it) silences the report — the escape hatch for
  // intentional patterns the checkers cannot see are safe (the paper's
  // maintainer-disputed UAD cases, for example).
  std::erase_if(result.reports, [&tree](const BugReport& r) {
    const SourceFile* file = tree.Find(r.file);
    if (file == nullptr) {
      return false;
    }
    for (uint32_t line : {r.line, r.line > 1 ? r.line - 1 : r.line}) {
      if (file->Line(line).find("refscan: ignore") != std::string_view::npos ||
          file->Line(line).find("refscan:ignore") != std::string_view::npos) {
        return true;
      }
    }
    return false;
  });
  return result;
}

ScanResult CheckerEngine::ScanFileText(std::string path, std::string text) {
  SourceTree tree;
  tree.Add(std::move(path), std::move(text));
  return Scan(tree);
}

}  // namespace refscan
