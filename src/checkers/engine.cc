#include "src/checkers/engine.h"

#include <charconv>

#include "src/ast/parser.h"
#include "src/ipa/summary.h"
#include "src/support/threadpool.h"

namespace refscan {

UnitContext BuildUnitContext(const SourceFile& file, TranslationUnit unit,
                             const KnowledgeBase& kb) {
  UnitContext uc;
  uc.file = &file;
  uc.unit = std::move(unit);
  for (const FunctionDef& fn : uc.unit.functions) {
    FunctionContext fc;
    fc.unit = &uc.unit;
    fc.fn = &fn;
    fc.cfg = std::make_unique<Cfg>(BuildCfg(fn));
    fc.cpg = std::make_unique<Cpg>(BuildCpg(*fc.cfg, kb));
    uc.functions.push_back(std::move(fc));
  }
  return uc;
}

CheckerEngine::CheckerEngine(KnowledgeBase kb, ScanOptions options)
    : kb_(std::move(kb)), options_(std::move(options)) {}

namespace {

// Stage-3 work for one file: build the contexts and run every enabled
// checker, appending raw reports to this file's shard. Each worker owns its
// shard exclusively, and reads the (now immutable) KB concurrently.
struct FileShard {
  std::vector<BugReport> raw;
  size_t functions = 0;
};

FileShard CheckOneFile(const SourceFile& file, TranslationUnit unit, const KnowledgeBase& kb,
                       const ScanOptions& options) {
  FileShard shard;
  const UnitContext uc = BuildUnitContext(file, std::move(unit), kb);
  shard.functions = uc.functions.size();

  const auto& enabled = options.enabled_patterns;
  for (const FunctionContext& fc : uc.functions) {
    if (enabled.contains(1)) {
      CheckReturnError(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(2)) {
      CheckReturnNull(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(3)) {
      CheckSmartLoopBreak(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(4)) {
      CheckHiddenApi(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(5)) {
      CheckErrorHandle(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(7)) {
      CheckDirectFree(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(8)) {
      CheckUseAfterDecrease(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(9)) {
      CheckReferenceEscape(uc, fc, kb, options, shard.raw);
    }
  }
  if (enabled.contains(6)) {
    CheckInterUnpaired(uc, kb, options, shard.raw);
  }
  return shard;
}

}  // namespace

ScanResult CheckerEngine::Scan(const SourceTree& tree) {
  ScanResult result;

  // Files in path order: index i is the fan-out key for both parallel
  // stages, so merge order never depends on thread scheduling.
  std::vector<const SourceFile*> files;
  files.reserve(tree.size());
  for (const auto& [path, file] : tree.files()) {
    files.push_back(&file);
  }

  ThreadPool pool(options_.jobs);

  // Stage 1: parse everything (parallel — each file parses independently).
  std::vector<TranslationUnit> units =
      ParallelMap(pool, files.size(), [&](size_t i) { return ParseFile(*files[i]); });

  // Stage 2: feed the KB (structure parser, API and smartloop discovery).
  // Discovery must see all units before checking so that cross-file APIs (a
  // helper defined in one file, used in another) classify correctly — the
  // paper runs its lexer parsers over the whole kernel first. This is the
  // serial merge barrier: discovery mutates the KB and the second round
  // depends on what the first one found, so parallelising it would change
  // results. It is also cheap next to parsing and checking.
  if (options_.discover_from_source) {
    // Two discovery rounds: the first classifies directly-visible APIs, the
    // second lets wrappers of discovered APIs classify too.
    for (int round = 0; round < 2; ++round) {
      for (const TranslationUnit& unit : units) {
        kb_.DiscoverFromUnit(unit, options_.nesting_threshold);
      }
    }
  }
  // Stage 2.5: interprocedural ref-delta summaries (src/ipa). Bottom-up
  // over the call-graph SCCs, parallel within a level; registration into
  // the still-mutable KB is serial in call-graph node order, so the KB the
  // checkers read is identical at every `jobs` value. After this the KB
  // freezes, exactly as without summaries.
  if (options_.interprocedural) {
    std::vector<const TranslationUnit*> unit_ptrs;
    unit_ptrs.reserve(units.size());
    for (const TranslationUnit& unit : units) {
      unit_ptrs.push_back(&unit);
    }
    SummaryOptions sopts;
    sopts.max_paths_per_function = options_.max_paths_per_function;
    const SummaryResult summaries = ComputeSummaries(unit_ptrs, kb_, sopts, pool);
    result.stats.summarized_functions = summaries.summaries.size();
  }

  result.stats.discovered_apis = kb_.apis().size();
  result.stats.discovered_smart_loops = kb_.smart_loops().size();
  result.stats.refcounted_structs = kb_.refcounted_structs().size();

  // Stage 3: build contexts and run the enabled checkers (parallel — the
  // KB is read-only from here on; KnowledgeBase lookups are const and safe
  // for concurrent readers). Each file gets its own shard.
  const KnowledgeBase& kb = kb_;
  std::vector<FileShard> shards = ParallelMap(pool, files.size(), [&](size_t i) {
    return CheckOneFile(*files[i], std::move(units[i]), kb, options_);
  });

  // Merge the shards in file order: the concatenation equals what the old
  // single-threaded loop produced, so DeduplicateReports (whose tie-breaks
  // are first-seen-wins) yields byte-identical output at any thread count.
  std::vector<BugReport> raw;
  result.stats.files = files.size();
  for (FileShard& shard : shards) {
    result.stats.functions += shard.functions;
    raw.insert(raw.end(), std::make_move_iterator(shard.raw.begin()),
               std::make_move_iterator(shard.raw.end()));
  }

  result.reports = DeduplicateReports(std::move(raw));

  // Suppression comments: a `refscan: ignore` marker on the reported line
  // (or the line above it) silences the report — the escape hatch for
  // intentional patterns the checkers cannot see are safe (the paper's
  // maintainer-disputed UAD cases, for example).
  std::erase_if(result.reports, [&tree](const BugReport& r) {
    const SourceFile* file = tree.Find(r.file);
    if (file == nullptr) {
      return false;
    }
    std::vector<uint32_t> probe_lines = {r.line};
    if (r.line > 1) {
      probe_lines.push_back(r.line - 1);  // only when distinct: line 1 has no line above
    }
    for (uint32_t line : probe_lines) {
      if (file->Line(line).find("refscan: ignore") != std::string_view::npos ||
          file->Line(line).find("refscan:ignore") != std::string_view::npos) {
        return true;
      }
    }
    return false;
  });
  return result;
}

ScanResult CheckerEngine::ScanFileText(std::string path, std::string text) {
  SourceTree tree;
  tree.Add(std::move(path), std::move(text));
  return Scan(tree);
}

bool ParsePatternList(std::string_view text, std::set<int>& out) {
  std::set<int> parsed;
  while (!text.empty()) {
    const size_t comma = text.find(',');
    const std::string_view item = text.substr(0, comma);
    int value = 0;
    const auto [ptr, ec] = std::from_chars(item.data(), item.data() + item.size(), value);
    if (ec != std::errc() || ptr != item.data() + item.size() || value < 1 || value > 9) {
      return false;
    }
    parsed.insert(value);
    if (comma == std::string_view::npos) {
      break;
    }
    text.remove_prefix(comma + 1);
  }
  if (parsed.empty()) {
    return false;
  }
  out = std::move(parsed);
  return true;
}

}  // namespace refscan
