#include "src/checkers/engine.h"

#include <charconv>
#include <chrono>
#include <optional>
#include <thread>

#include "src/ast/parser.h"
#include "src/cache/cache.h"
#include "src/cache/serial.h"
#include "src/checkers/scan_stages.h"
#include "src/ipa/summary.h"
#include "src/support/faultinject.h"
#include "src/support/governor.h"
#include "src/support/strings.h"
#include "src/support/telemetry.h"
#include "src/support/threadpool.h"

namespace refscan {

std::string_view FailureStageName(FailureStage stage) {
  switch (stage) {
    case FailureStage::kLoad:
      return "load";
    case FailureStage::kParse:
      return "parse";
    case FailureStage::kCheck:
      return "check";
    case FailureStage::kSummarize:
      return "summarize";
  }
  return "unknown";
}

std::string_view FailureKindName(FailureKind kind) {
  switch (kind) {
    case FailureKind::kIo:
      return "io";
    case FailureKind::kParse:
      return "parse";
    case FailureKind::kResourceLimit:
      return "resource-limit";
    case FailureKind::kCache:
      return "cache";
    case FailureKind::kInternal:
      return "internal";
  }
  return "unknown";
}

UnitContext BuildUnitContext(const SourceFile& file, TranslationUnit unit,
                             const KnowledgeBase& kb) {
  UnitContext uc;
  uc.file = &file;
  uc.unit = std::move(unit);
  for (const FunctionDef& fn : uc.unit.functions) {
    FunctionContext fc;
    fc.unit = &uc.unit;
    fc.fn = &fn;
    fc.cfg = std::make_unique<Cfg>(BuildCfg(fn));
    fc.cpg = std::make_unique<Cpg>(BuildCpg(*fc.cfg, kb));
    uc.functions.push_back(std::move(fc));
  }
  return uc;
}

CheckerEngine::CheckerEngine(KnowledgeBase kb, ScanOptions options)
    : kb_(std::move(kb)), options_(std::move(options)) {
  // Dialect catalogues merge into the seed KB before any discovery runs, so
  // discovered wrappers classify against them exactly like builtin APIs.
  // Unknown names were rejected at the CLI; here they are simply inert.
  for (const std::string& dialect : options_.dialects) {
    ApplyDialect(kb_, dialect);
  }
}

namespace {

// Pre-resolved counter handles for one scan. The engine counts in here (one
// relaxed atomic add per event, no name lookups on the hot path) and
// materialises the stable ScanStats façade from the registry at the end via
// ScanStatsFields(); an armed telemetry session then absorbs the whole
// registry, so --metrics-out carries the scan counters alongside the
// support-layer ones (load.*, sched.*, fault.*, governor.*).
struct ScanMetrics {
  MetricsRegistry reg;
  MetricCounter& files = reg.Counter("scan.files");
  MetricCounter& functions = reg.Counter("scan.functions");
  MetricCounter& discovered_apis = reg.Counter("scan.discovered_apis");
  MetricCounter& discovered_smart_loops = reg.Counter("scan.discovered_smart_loops");
  MetricCounter& refcounted_structs = reg.Counter("scan.refcounted_structs");
  MetricCounter& summarized_functions = reg.Counter("scan.summarized_functions");
  MetricCounter& files_quarantined = reg.Counter("scan.files_quarantined");
  MetricCounter& files_retried = reg.Counter("scan.files_retried");
  MetricCounter& functions_degraded = reg.Counter("scan.functions_degraded");
  MetricCounter& cache_hits = reg.Counter("scan.cache_hits");
  MetricCounter& cache_misses = reg.Counter("scan.cache_misses");
  MetricCounter& cache_parse_skips = reg.Counter("scan.cache_parse_skips");
  MetricCounter& cache_corrupt = reg.Counter("scan.cache_corrupt");
  MetricCounter& kb_snapshot_hits = reg.Counter("scan.kb_snapshot_hits");
  MetricCounter& raw_reports = reg.Counter("scan.raw_reports");
  MetricCounter& reports = reg.Counter("scan.reports");
};

}  // namespace

ScanResult CheckerEngine::Scan(const SourceTree& tree) {
  ScanResult result;

  // Scoped fault arming from the options: library callers and tests get a
  // hermetic plan that restores whatever was armed before. A malformed spec
  // aborts loudly — silently scanning un-faulted would make a fault-matrix
  // CI job pass vacuously.
  std::optional<ScopedFaultArm> fault_arm;
  if (!options_.fault_spec.empty()) {
    FaultPlan plan;
    std::string spec_error;
    if (!ParseFaultSpec(options_.fault_spec, plan, &spec_error)) {
      result.aborted = true;
      result.abort_reason = "invalid fault spec: " + spec_error;
      return result;
    }
    fault_arm.emplace(std::move(plan));
  }

  ScanMetrics m;
  // Every return path below materialises result.stats from the registry
  // (the ScanStatsFields table binds each counter to its member) and folds
  // the scan's counters into the armed session, if any.
  const auto finalize_stats = [&] {
    for (const ScanStatsField& f : ScanStatsFields()) {
      result.stats.*f.member = static_cast<size_t>(m.reg.CounterValue(f.metric));
    }
    if (Telemetry* t = CurrentTelemetry()) {
      t->metrics().MergeFrom(m.reg);
    }
  };

  // Files in path order: index i is the fan-out key for both parallel
  // stages, so merge order never depends on thread scheduling.
  std::vector<const SourceFile*> files;
  files.reserve(tree.size());
  for (const auto& [path, file] : tree.files()) {
    files.push_back(&file);
  }

  ThreadPool pool(options_.jobs);

  ScanCache cache(MakeScanStore(options_));
  const ScanStageContext ctx = MakeScanStageContext(options_, cache);
  const bool use_cache = ctx.use_cache;
  const bool want_facts = ctx.want_facts;

  // Stage 1: obtain per-file discovery facts — and units where needed —
  // (parallel; each file is independent). The per-file body lives in
  // scan_stages.cc, shared verbatim with the shard worker. Every file runs
  // inside its sandbox: a throw from the size cap, the parser (deadline /
  // AST caps / injected fault) or the cache quarantines that one file and
  // resets its partial state; the rest of the scan never sees it again. A
  // quarantined file stores no cache artifacts, so nothing injection- or
  // wall-clock-dependent can ever be replayed.
  std::vector<FileScanState> states;
  {
    TelemetrySpan stage_span("stage.parse");
    states = ParallelMap(pool, files.size(), [&](size_t i) { return RunParseStage(*files[i], ctx); });
  }

  // Scan-wide circuit breaker (off by default): a mostly-broken tree —
  // wrong directory, filesystem fault, bad deploy — should abort loudly
  // instead of "completing" with a handful of reports from the wreckage.
  const auto breaker_trips = [&](size_t failed) {
    return options_.max_failure_ratio > 0 && !files.empty() &&
           static_cast<double>(failed) / static_cast<double>(files.size()) >
               options_.max_failure_ratio;
  };
  const auto count_failed = [&] {
    size_t failed = 0;
    for (const FileScanState& st : states) {
      failed += st.failure.has_value() ? 1 : 0;
    }
    return failed;
  };
  const auto collect_failures = [&] {
    for (FileScanState& st : states) {
      if (st.retried) {
        m.files_retried.Add(1);
      }
      if (st.failure) {
        m.files_quarantined.Add(1);
        result.failures.push_back(std::move(*st.failure));
      }
    }
  };

  if (const size_t failed = count_failed(); breaker_trips(failed)) {
    result.aborted = true;
    result.abort_reason =
        StrFormat("%zu of %zu files failed in the parse stage (max_failure_ratio %.2f)", failed,
                  files.size(), options_.max_failure_ratio);
    m.files.Add(files.size());
    collect_failures();
    finalize_stats();
    return result;
  }

  // Stage 2: feed the KB (structure parser, API and smartloop discovery).
  // Discovery must see all units before checking so that cross-file APIs (a
  // helper defined in one file, used in another) classify correctly — the
  // paper runs its lexer parsers over the whole kernel first. This is the
  // serial merge barrier: discovery mutates the KB and the second round
  // depends on what the first one found, so parallelising it would change
  // results. It is also cheap next to parsing and checking. Replaying the
  // pre-extracted facts in file order is exactly DiscoverFromUnit in file
  // order (see kb.h), whether the facts came from a parse or the cache.
  if (want_facts) {
    TelemetrySpan stage_span("stage.discover");
    // With the cache on, try the tree-level KB snapshot first. Discovery
    // is purely additive — every Discover* pass only inserts, and every
    // insert is determined by (current KB, facts sequence) — so the
    // post-discovery KB is a pure function of the pre-discovery KB and the
    // ordered facts, which is exactly what the snapshot key hashes. A hit
    // replaces both replay rounds, which otherwise dominate a warm rescan
    // (re-classifying every discovered API from scratch each run).
    // Quarantined files are excluded from both the replay and the snapshot
    // key: the KB — and therefore every healthy file's report shard — is
    // exactly what a scan of the healthy subset alone would build.
    bool kb_from_snapshot = false;
    CacheKey kb_key;
    if (use_cache) {
      std::vector<const DiscoveryFacts*> all_facts;
      all_facts.reserve(states.size());
      for (const FileScanState& st : states) {
        if (st.failure) {
          continue;
        }
        all_facts.push_back(&st.facts);
      }
      kb_key = MakeKbSnapshotKey(FingerprintKnowledgeBase(kb_), options_.nesting_threshold,
                                 all_facts, ctx.options_fp);
      if (std::optional<KnowledgeBase> snapshot = cache.LoadKb(kb_key)) {
        kb_ = std::move(*snapshot);
        kb_from_snapshot = true;
        m.kb_snapshot_hits.Add(1);
      }
    }
    if (!kb_from_snapshot) {
      // Two discovery rounds: the first classifies directly-visible APIs,
      // the second lets wrappers of discovered APIs classify too.
      for (int round = 0; round < 2; ++round) {
        for (const FileScanState& st : states) {
          if (st.failure) {
            continue;
          }
          kb_.DiscoverFromFacts(st.facts, options_.nesting_threshold);
        }
      }
      if (use_cache) {
        cache.StoreKb(kb_key, kb_, "<tree>");
      }
    }
  }
  // Stage 2.5: interprocedural ref-delta summaries (src/ipa). Bottom-up
  // over the call-graph SCCs, parallel within a level; registration into
  // the still-mutable KB is serial in call-graph node order, so the KB the
  // checkers read is identical at every `jobs` value. After this the KB
  // freezes, exactly as without summaries. Summaries are always recomputed
  // (they are whole-tree), but the units they walk come from cached parses
  // on a warm rescan.
  std::vector<FileFailure> tree_failures;
  if (options_.interprocedural) {
    // A summary-stage failure degrades the whole scan (path "<tree>") but
    // does not abort it: the checkers still run with the intraprocedural KB,
    // exactly as if --ipa had been off. The fault hook fires before
    // ComputeSummaries so an injected failure can never leave the KB with a
    // partial set of registered summaries.
    TelemetrySpan stage_span("stage.summarize");
    try {
      MaybeFault("ipa.summarize", "<tree>");
      std::vector<const TranslationUnit*> unit_ptrs;
      unit_ptrs.reserve(states.size());
      for (const FileScanState& st : states) {
        if (st.failure) {
          continue;
        }
        unit_ptrs.push_back(&*st.unit);
      }
      SummaryOptions sopts;
      sopts.max_paths_per_function = options_.max_paths_per_function;
      const SummaryResult summaries = ComputeSummaries(unit_ptrs, kb_, sopts, pool);
      m.summarized_functions.Add(summaries.summaries.size());
    } catch (const std::exception& e) {
      FileFailure f;
      f.path = "<tree>";
      f.stage = FailureStage::kSummarize;
      f.kind = FailureKind::kInternal;
      f.what = e.what();
      tree_failures.push_back(std::move(f));
    }
  }

  m.discovered_apis.Add(kb_.apis().size());
  m.discovered_smart_loops.Add(kb_.smart_loops().size());
  m.refcounted_structs.Add(kb_.refcounted_structs().size());

  // The KB is frozen from here on. A file's stage-3 shard is a pure
  // function of (file content, KB, options): fingerprint the KB and the
  // cache can prove a stored shard is still valid. Any content change that
  // altered discovery shifts this fingerprint and invalidates every stored
  // shard at once — the conservative, correct reaction.
  const uint64_t kb_fp = use_cache ? FingerprintKnowledgeBase(kb_) : 0;

  // Stage 3: build contexts and run the enabled checkers (parallel — the
  // KB is read-only from here on; KnowledgeBase lookups are const and safe
  // for concurrent readers). Each file gets its own shard; cached shards
  // splice in without parsing or checking.
  const KnowledgeBase& kb = kb_;
  std::vector<FileShard> shards;
  {
    TelemetrySpan stage_span("stage.check");
    shards = ParallelMap(pool, files.size(), [&](size_t i) {
      return RunCheckStage(*files[i], states[i], kb, kb_fp, ctx);
    });
  }

  if (const size_t failed = count_failed(); breaker_trips(failed)) {
    result.aborted = true;
    result.abort_reason = StrFormat("%zu of %zu files failed (max_failure_ratio %.2f)", failed,
                                    files.size(), options_.max_failure_ratio);
    m.files.Add(files.size());
    collect_failures();
    finalize_stats();
    return result;
  }

  if (use_cache) {
    for (const FileScanState& st : states) {
      if (st.failure) {
        continue;  // quarantined files are neither hits nor misses
      }
      (st.report_hit ? m.cache_hits : m.cache_misses).Add(1);
      if (!st.parsed) {
        m.cache_parse_skips.Add(1);
      }
    }
    m.cache_corrupt.Add(static_cast<uint64_t>(cache.corrupt_loads()));
  }

  // Merge the shards in file order: the concatenation equals what the old
  // single-threaded loop produced, so DeduplicateReports (whose tie-breaks
  // are first-seen-wins) yields byte-identical output at any thread count.
  TelemetrySpan merge_span("stage.merge");
  std::vector<BugReport> raw;
  m.files.Add(files.size());
  for (size_t i = 0; i < shards.size(); ++i) {
    FileShard& shard = shards[i];
    m.functions.Add(shard.functions);
    raw.insert(raw.end(), std::make_move_iterator(shard.raw.begin()),
               std::make_move_iterator(shard.raw.end()));
    // Function-granular parse casualties, already in source order within the
    // shard; shards are walked in file order, so the merged list is
    // (file, line)-ordered and byte-identical at every jobs/workers value.
    m.functions_degraded.Add(shard.degraded.size());
    for (DegradedFunction& d : shard.degraded) {
      result.degraded_functions.push_back(
          DegradedFunctionReport{files[i]->path(), std::move(d.name), d.line, std::move(d.what)});
    }
  }
  m.raw_reports.Add(raw.size());

  result.reports = DeduplicateReports(std::move(raw));

  // Quarantined files in tree (path) order — states already are — then any
  // whole-tree stage failures.
  collect_failures();
  for (FileFailure& f : tree_failures) {
    m.files_quarantined.Add(1);
    result.failures.push_back(std::move(f));
  }

  // Suppression comments: a `refscan: ignore` marker on the reported line
  // (or the line above it) silences the report — the escape hatch for
  // intentional patterns the checkers cannot see are safe (the paper's
  // maintainer-disputed UAD cases, for example).
  std::erase_if(result.reports, [&tree](const BugReport& r) {
    const SourceFile* file = tree.Find(r.file);
    if (file == nullptr) {
      return false;
    }
    std::vector<uint32_t> probe_lines = {r.line};
    if (r.line > 1) {
      probe_lines.push_back(r.line - 1);  // only when distinct: line 1 has no line above
    }
    for (uint32_t line : probe_lines) {
      if (file->Line(line).find("refscan: ignore") != std::string_view::npos ||
          file->Line(line).find("refscan:ignore") != std::string_view::npos) {
        return true;
      }
    }
    return false;
  });
  m.reports.Add(result.reports.size());
  finalize_stats();
  return result;
}

ScanResult CheckerEngine::ScanFileText(std::string path, std::string text) {
  SourceTree tree;
  tree.Add(std::move(path), std::move(text));
  return Scan(tree);
}

uint64_t ScanOptionsFingerprint(const ScanOptions& options) {
  ByteWriter w;
  w.U64(options.max_paths_per_function);
  w.I32(options.nesting_threshold);
  w.Bool(options.discover_from_source);
  w.U32(static_cast<uint32_t>(options.enabled_patterns.size()));
  for (const int p : options.enabled_patterns) {
    w.I32(p);
  }
  w.Bool(options.prune_null_branches);
  w.Bool(options.model_ownership_transfer);
  // Deterministic governor caps: they change what a parse produces.
  // fault_spec / file_timeout_ms / max_failure_ratio deliberately excluded —
  // a file that faults or times out stores no artifacts.
  w.U64(options.max_file_bytes);
  w.U64(options.max_ast_nodes);
  w.I32(options.max_ast_depth);
  // Dialects seed the KB before discovery, so two scans with different
  // dialect sets must never share cached facts, units, or report shards.
  w.U32(static_cast<uint32_t>(options.dialects.size()));
  for (const std::string& dialect : options.dialects) {
    w.Str(dialect);
  }
  // `streaming` is deliberately excluded, like `jobs`: it changes the unit
  // lifecycle, never any artifact, so streaming and resident scans share
  // one warm cache.
  return HashBytes(w.bytes());
}

const std::vector<ScanStatsField>& ScanStatsFields() {
  // JSON keys keep their historical names ("quarantined", "retried"); the
  // metric names carry the struct's fuller spelling under the scan. prefix.
  static const auto* fields = new std::vector<ScanStatsField>{
      {"files", "scan.files", &ScanStats::files},
      {"functions", "scan.functions", &ScanStats::functions},
      {"discovered_apis", "scan.discovered_apis", &ScanStats::discovered_apis},
      {"discovered_smart_loops", "scan.discovered_smart_loops",
       &ScanStats::discovered_smart_loops},
      {"refcounted_structs", "scan.refcounted_structs", &ScanStats::refcounted_structs},
      {"summarized_functions", "scan.summarized_functions", &ScanStats::summarized_functions},
      {"quarantined", "scan.files_quarantined", &ScanStats::files_quarantined},
      {"retried", "scan.files_retried", &ScanStats::files_retried},
      {"functions_degraded", "scan.functions_degraded", &ScanStats::functions_degraded},
      {"cache_hits", "scan.cache_hits", &ScanStats::cache_hits},
      {"cache_misses", "scan.cache_misses", &ScanStats::cache_misses},
      {"cache_parse_skips", "scan.cache_parse_skips", &ScanStats::cache_parse_skips},
      {"cache_corrupt", "scan.cache_corrupt", &ScanStats::cache_corrupt},
      {"kb_snapshot_hits", "scan.kb_snapshot_hits", &ScanStats::kb_snapshot_hits},
  };
  return *fields;
}

int ScanExitCodeFor(const ScanResult& result) {
  if (result.aborted) {
    return kExitHardFailure;
  }
  if (!result.failures.empty() || !result.degraded_functions.empty()) {
    return kExitDegraded;
  }
  return result.reports.empty() ? kExitClean : kExitReports;
}

std::string ScanResultToJson(const ScanResult& result, bool include_stats) {
  std::string out = "{\n\"reports\": ";
  std::string reports = ReportsToJson(result.reports);
  if (!reports.empty() && reports.back() == '\n') {
    reports.pop_back();
  }
  out += reports;
  out += ",\n\"degraded\": [";
  for (size_t i = 0; i < result.failures.size(); ++i) {
    const FileFailure& f = result.failures[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"path\": ";
    AppendJsonString(out, f.path);
    out += ", \"stage\": ";
    AppendJsonString(out, FailureStageName(f.stage));
    out += ", \"kind\": ";
    AppendJsonString(out, FailureKindName(f.kind));
    out += ", \"what\": ";
    AppendJsonString(out, f.what);
    out += StrFormat(", \"retries\": %d}", f.retries);
  }
  if (!result.failures.empty()) {
    out += "\n";
  }
  out += "]";
  out += ",\n\"degraded_functions\": [";
  for (size_t i = 0; i < result.degraded_functions.size(); ++i) {
    const DegradedFunctionReport& d = result.degraded_functions[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"file\": ";
    AppendJsonString(out, d.file);
    out += ", \"function\": ";
    AppendJsonString(out, d.function);
    out += StrFormat(", \"line\": %u, \"what\": ", d.line);
    AppendJsonString(out, d.what);
    out += "}";
  }
  if (!result.degraded_functions.empty()) {
    out += "\n";
  }
  out += "]";
  if (result.aborted) {
    out += ",\n\"aborted\": true,\n\"abort_reason\": ";
    AppendJsonString(out, result.abort_reason);
  }
  if (include_stats) {
    // Driven by the field table so every ScanStats member appears — adding
    // a field to the struct without listing it here is impossible.
    out += ",\n\"stats\": {";
    const std::vector<ScanStatsField>& fields = ScanStatsFields();
    for (size_t i = 0; i < fields.size(); ++i) {
      out += StrFormat("%s\"%s\": %zu", i == 0 ? "" : ", ", fields[i].json_key,
                       result.stats.*fields[i].member);
    }
    out += "}";
  }
  out += "\n}\n";
  return out;
}

bool ParsePatternList(std::string_view text, std::set<int>& out) {
  std::set<int> parsed;
  while (!text.empty()) {
    const size_t comma = text.find(',');
    const std::string_view item = text.substr(0, comma);
    int value = 0;
    const auto [ptr, ec] = std::from_chars(item.data(), item.data() + item.size(), value);
    if (ec != std::errc() || ptr != item.data() + item.size() || value < 1 || value > 12) {
      return false;
    }
    parsed.insert(value);
    if (comma == std::string_view::npos) {
      break;
    }
    text.remove_prefix(comma + 1);
  }
  if (parsed.empty()) {
    return false;
  }
  out = std::move(parsed);
  return true;
}

}  // namespace refscan
