#include "src/checkers/engine.h"

#include <charconv>
#include <optional>

#include "src/ast/parser.h"
#include "src/cache/cache.h"
#include "src/cache/serial.h"
#include "src/ipa/summary.h"
#include "src/support/threadpool.h"

namespace refscan {

UnitContext BuildUnitContext(const SourceFile& file, TranslationUnit unit,
                             const KnowledgeBase& kb) {
  UnitContext uc;
  uc.file = &file;
  uc.unit = std::move(unit);
  for (const FunctionDef& fn : uc.unit.functions) {
    FunctionContext fc;
    fc.unit = &uc.unit;
    fc.fn = &fn;
    fc.cfg = std::make_unique<Cfg>(BuildCfg(fn));
    fc.cpg = std::make_unique<Cpg>(BuildCpg(*fc.cfg, kb));
    uc.functions.push_back(std::move(fc));
  }
  return uc;
}

CheckerEngine::CheckerEngine(KnowledgeBase kb, ScanOptions options)
    : kb_(std::move(kb)), options_(std::move(options)) {}

namespace {

// Stage-3 work for one file: build the contexts and run every enabled
// checker, appending raw reports to this file's shard. Each worker owns its
// shard exclusively, and reads the (now immutable) KB concurrently.
struct FileShard {
  std::vector<BugReport> raw;
  size_t functions = 0;
};

FileShard CheckOneFile(const SourceFile& file, TranslationUnit unit, const KnowledgeBase& kb,
                       const ScanOptions& options) {
  FileShard shard;
  const UnitContext uc = BuildUnitContext(file, std::move(unit), kb);
  shard.functions = uc.functions.size();

  const auto& enabled = options.enabled_patterns;
  for (const FunctionContext& fc : uc.functions) {
    if (enabled.contains(1)) {
      CheckReturnError(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(2)) {
      CheckReturnNull(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(3)) {
      CheckSmartLoopBreak(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(4)) {
      CheckHiddenApi(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(5)) {
      CheckErrorHandle(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(7)) {
      CheckDirectFree(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(8)) {
      CheckUseAfterDecrease(uc, fc, kb, options, shard.raw);
    }
    if (enabled.contains(9)) {
      CheckReferenceEscape(uc, fc, kb, options, shard.raw);
    }
  }
  if (enabled.contains(6)) {
    CheckInterUnpaired(uc, kb, options, shard.raw);
  }
  return shard;
}

}  // namespace

ScanResult CheckerEngine::Scan(const SourceTree& tree) {
  ScanResult result;

  // Files in path order: index i is the fan-out key for both parallel
  // stages, so merge order never depends on thread scheduling.
  std::vector<const SourceFile*> files;
  files.reserve(tree.size());
  for (const auto& [path, file] : tree.files()) {
    files.push_back(&file);
  }

  ThreadPool pool(options_.jobs);

  ScanCache cache(options_.cache_dir);
  const bool use_cache = cache.enabled();
  const uint64_t options_fp = use_cache ? ScanOptionsFingerprint(options_) : 0;
  const bool want_facts = options_.discover_from_source;
  // Whether stage 1 must materialise a TranslationUnit for every file. With
  // no cache, stage 3 consumes the units; in interprocedural mode, stage
  // 2.5 walks them. With the cache and neither, a file whose facts (and
  // later, reports) hit can go through the whole scan without ever being
  // parsed — the incremental fast path.
  const bool need_units = !use_cache || options_.interprocedural;

  struct FileState {
    CacheKey key;
    DiscoveryFacts facts;
    std::optional<TranslationUnit> unit;
    bool parsed = false;      // ParseFile ran for this file during this scan
    bool report_hit = false;  // stage-3 shard spliced from the cache
  };

  // Stage 1: obtain per-file discovery facts — and units where needed —
  // (parallel; each file is independent). Cache hits replay the stored
  // facts/unit instead of parsing; misses parse, extract, and populate the
  // cache for the next scan. Facts extraction is a pure projection of the
  // unit, so every path below yields identical facts for identical content.
  std::vector<FileState> states = ParallelMap(pool, files.size(), [&](size_t i) {
    FileState st;
    const SourceFile& f = *files[i];
    if (use_cache) {
      st.key = MakeFileKey(f.path(), f.text(), options_fp);
      if (!need_units) {
        if (!want_facts) {
          return st;  // discovery off: nothing is needed before stage 3
        }
        if (std::optional<DiscoveryFacts> facts = cache.LoadFacts(st.key)) {
          st.facts = std::move(*facts);
          return st;
        }
      } else if (std::optional<TranslationUnit> unit = cache.LoadUnit(st.key)) {
        st.unit = std::move(*unit);
        if (want_facts) {
          st.facts = ExtractDiscoveryFacts(*st.unit);
        }
        return st;
      }
    }
    st.unit = ParseFile(f);
    st.parsed = true;
    if (want_facts) {
      st.facts = ExtractDiscoveryFacts(*st.unit);
    }
    if (use_cache) {
      cache.StoreUnit(st.key, *st.unit, f.path());
      if (want_facts) {
        cache.StoreFacts(st.key, st.facts, f.path());
      }
    }
    return st;
  });

  // Stage 2: feed the KB (structure parser, API and smartloop discovery).
  // Discovery must see all units before checking so that cross-file APIs (a
  // helper defined in one file, used in another) classify correctly — the
  // paper runs its lexer parsers over the whole kernel first. This is the
  // serial merge barrier: discovery mutates the KB and the second round
  // depends on what the first one found, so parallelising it would change
  // results. It is also cheap next to parsing and checking. Replaying the
  // pre-extracted facts in file order is exactly DiscoverFromUnit in file
  // order (see kb.h), whether the facts came from a parse or the cache.
  if (want_facts) {
    // With the cache on, try the tree-level KB snapshot first. Discovery
    // is purely additive — every Discover* pass only inserts, and every
    // insert is determined by (current KB, facts sequence) — so the
    // post-discovery KB is a pure function of the pre-discovery KB and the
    // ordered facts, which is exactly what the snapshot key hashes. A hit
    // replaces both replay rounds, which otherwise dominate a warm rescan
    // (re-classifying every discovered API from scratch each run).
    bool kb_from_snapshot = false;
    CacheKey kb_key;
    if (use_cache) {
      std::vector<const DiscoveryFacts*> all_facts;
      all_facts.reserve(states.size());
      for (const FileState& st : states) {
        all_facts.push_back(&st.facts);
      }
      kb_key = MakeKbSnapshotKey(FingerprintKnowledgeBase(kb_), options_.nesting_threshold,
                                 all_facts, options_fp);
      if (std::optional<KnowledgeBase> snapshot = cache.LoadKb(kb_key)) {
        kb_ = std::move(*snapshot);
        kb_from_snapshot = true;
      }
    }
    if (!kb_from_snapshot) {
      // Two discovery rounds: the first classifies directly-visible APIs,
      // the second lets wrappers of discovered APIs classify too.
      for (int round = 0; round < 2; ++round) {
        for (const FileState& st : states) {
          kb_.DiscoverFromFacts(st.facts, options_.nesting_threshold);
        }
      }
      if (use_cache) {
        cache.StoreKb(kb_key, kb_, "<tree>");
      }
    }
  }
  // Stage 2.5: interprocedural ref-delta summaries (src/ipa). Bottom-up
  // over the call-graph SCCs, parallel within a level; registration into
  // the still-mutable KB is serial in call-graph node order, so the KB the
  // checkers read is identical at every `jobs` value. After this the KB
  // freezes, exactly as without summaries. Summaries are always recomputed
  // (they are whole-tree), but the units they walk come from cached parses
  // on a warm rescan.
  if (options_.interprocedural) {
    std::vector<const TranslationUnit*> unit_ptrs;
    unit_ptrs.reserve(states.size());
    for (const FileState& st : states) {
      unit_ptrs.push_back(&*st.unit);
    }
    SummaryOptions sopts;
    sopts.max_paths_per_function = options_.max_paths_per_function;
    const SummaryResult summaries = ComputeSummaries(unit_ptrs, kb_, sopts, pool);
    result.stats.summarized_functions = summaries.summaries.size();
  }

  result.stats.discovered_apis = kb_.apis().size();
  result.stats.discovered_smart_loops = kb_.smart_loops().size();
  result.stats.refcounted_structs = kb_.refcounted_structs().size();

  // The KB is frozen from here on. A file's stage-3 shard is a pure
  // function of (file content, KB, options): fingerprint the KB and the
  // cache can prove a stored shard is still valid. Any content change that
  // altered discovery shifts this fingerprint and invalidates every stored
  // shard at once — the conservative, correct reaction.
  const uint64_t kb_fp = use_cache ? FingerprintKnowledgeBase(kb_) : 0;

  // Stage 3: build contexts and run the enabled checkers (parallel — the
  // KB is read-only from here on; KnowledgeBase lookups are const and safe
  // for concurrent readers). Each file gets its own shard; cached shards
  // splice in without parsing or checking.
  const KnowledgeBase& kb = kb_;
  std::vector<FileShard> shards = ParallelMap(pool, files.size(), [&](size_t i) {
    FileState& st = states[i];
    if (use_cache) {
      if (std::optional<CachedFileReports> cached = cache.LoadReports(st.key, kb_fp)) {
        st.report_hit = true;
        FileShard shard;
        shard.raw = std::move(cached->reports);
        shard.functions = static_cast<size_t>(cached->functions);
        return shard;
      }
    }
    TranslationUnit unit;
    if (st.unit.has_value()) {
      unit = std::move(*st.unit);
    } else {
      // Facts were cached but this file's reports were invalidated (another
      // file changed the KB): re-parse just this file, in-memory.
      unit = ParseFile(*files[i]);
      st.parsed = true;
    }
    FileShard shard = CheckOneFile(*files[i], std::move(unit), kb, options_);
    if (use_cache) {
      CachedFileReports entry;
      entry.reports = shard.raw;
      entry.functions = shard.functions;
      cache.StoreReports(st.key, kb_fp, entry, files[i]->path());
    }
    return shard;
  });

  if (use_cache) {
    for (const FileState& st : states) {
      ++(st.report_hit ? result.stats.cache_hits : result.stats.cache_misses);
      if (!st.parsed) {
        ++result.stats.cache_parse_skips;
      }
    }
  }

  // Merge the shards in file order: the concatenation equals what the old
  // single-threaded loop produced, so DeduplicateReports (whose tie-breaks
  // are first-seen-wins) yields byte-identical output at any thread count.
  std::vector<BugReport> raw;
  result.stats.files = files.size();
  for (FileShard& shard : shards) {
    result.stats.functions += shard.functions;
    raw.insert(raw.end(), std::make_move_iterator(shard.raw.begin()),
               std::make_move_iterator(shard.raw.end()));
  }

  result.reports = DeduplicateReports(std::move(raw));

  // Suppression comments: a `refscan: ignore` marker on the reported line
  // (or the line above it) silences the report — the escape hatch for
  // intentional patterns the checkers cannot see are safe (the paper's
  // maintainer-disputed UAD cases, for example).
  std::erase_if(result.reports, [&tree](const BugReport& r) {
    const SourceFile* file = tree.Find(r.file);
    if (file == nullptr) {
      return false;
    }
    std::vector<uint32_t> probe_lines = {r.line};
    if (r.line > 1) {
      probe_lines.push_back(r.line - 1);  // only when distinct: line 1 has no line above
    }
    for (uint32_t line : probe_lines) {
      if (file->Line(line).find("refscan: ignore") != std::string_view::npos ||
          file->Line(line).find("refscan:ignore") != std::string_view::npos) {
        return true;
      }
    }
    return false;
  });
  return result;
}

ScanResult CheckerEngine::ScanFileText(std::string path, std::string text) {
  SourceTree tree;
  tree.Add(std::move(path), std::move(text));
  return Scan(tree);
}

uint64_t ScanOptionsFingerprint(const ScanOptions& options) {
  ByteWriter w;
  w.U64(options.max_paths_per_function);
  w.I32(options.nesting_threshold);
  w.Bool(options.discover_from_source);
  w.U32(static_cast<uint32_t>(options.enabled_patterns.size()));
  for (const int p : options.enabled_patterns) {
    w.I32(p);
  }
  w.Bool(options.prune_null_branches);
  w.Bool(options.model_ownership_transfer);
  return HashBytes(w.bytes());
}

bool ParsePatternList(std::string_view text, std::set<int>& out) {
  std::set<int> parsed;
  while (!text.empty()) {
    const size_t comma = text.find(',');
    const std::string_view item = text.substr(0, comma);
    int value = 0;
    const auto [ptr, ec] = std::from_chars(item.data(), item.data() + item.size(), value);
    if (ec != std::errc() || ptr != item.data() + item.size() || value < 1 || value > 9) {
      return false;
    }
    parsed.insert(value);
    if (comma == std::string_view::npos) {
      break;
    }
    text.remove_prefix(comma + 1);
  }
  if (parsed.empty()) {
    return false;
  }
  out = std::move(parsed);
  return true;
}

}  // namespace refscan
