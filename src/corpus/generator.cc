#include "src/corpus/generator.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "src/support/prng.h"
#include "src/support/strings.h"

namespace refscan {

namespace {

// ------------------------------------------------------------- name pools

constexpr const char* kDeviceWords[] = {
    "aon",  "crc",  "pmc",  "dmac", "emac",  "codec", "panel", "tsens", "sata", "qspi",
    "mbox", "gpc",  "scu",  "smmu", "pwm",   "cpg",   "dsi",   "hdmi",  "lvds", "pcie",
    "sram", "otp",  "fuse", "wdt",  "rng",   "adc",   "dac",   "canfd", "spdif", "ssi",
    "vpu",  "mipi", "csi",  "isp",  "venc",  "vdec",  "ddrc",  "noc",   "lpc",  "ec",
};

constexpr const char* kActionWords[] = {
    "setup",  "init",   "attach", "parse", "scan",  "configure", "prepare",
    "bind",   "load",   "enable", "start", "map",   "select",    "detect",
};

constexpr const char* kPropWords[] = {
    "clock-frequency", "reg-width",  "interrupt-cells", "dma-channels",
    "bus-width",       "max-speed",  "phy-mode",        "num-lanes",
};

constexpr const char* kVendorWords[] = {
    "acme", "vertex", "nimbus", "orion", "zephyr", "corvid", "basalt", "helix",
};

// Smartloop invocation shapes: how each macro spells its arguments, given an
// iterator variable (it) and an auxiliary variable/constant (aux).
struct LoopShape {
  const char* name;
  const char* decl_aux;  // extra declaration line, or nullptr
  // returns invocation text
  std::string (*invoke)(const std::string& it, const std::string& aux);
};

std::string LoopIterFirst(const std::string& it, const std::string& aux) {
  return StrFormat("(%s, %s)", it.c_str(), aux.c_str());
}
std::string LoopIterSecond(const std::string& it, const std::string& aux) {
  return StrFormat("(%s, %s)", aux.c_str(), it.c_str());
}

const LoopShape kLoopShapes[] = {
    {"for_each_matching_node", nullptr, LoopIterFirst},
    {"for_each_child_of_node", "parent", LoopIterSecond},
    {"for_each_available_child_of_node", "parent", LoopIterSecond},
    {"for_each_node_by_name", nullptr, LoopIterFirst},
    {"for_each_node_by_type", nullptr, LoopIterFirst},
    {"for_each_compatible_node", nullptr, LoopIterFirst},
    {"device_for_each_child_node", "dev", LoopIterSecond},
    {"fwnode_for_each_child_node", "fwnode", LoopIterSecond},
    {"fwnode_for_each_parent_node", nullptr, LoopIterFirst},
    {"for_each_cpu_node", nullptr, LoopIterFirst},
};

const LoopShape* FindLoopShape(std::string_view name) {
  for (const LoopShape& shape : kLoopShapes) {
    if (name == shape.name) {
      return &shape;
    }
  }
  return nullptr;
}

// Find-like APIs usable for "acquire a node" templates, and whether their
// first argument is a consumed `from` pointer.
struct FindShape {
  const char* name;
  bool takes_from;      // first arg is a device_node* the API consumes
  const char* arg_fmt;  // remaining-args format; %s = a compat/name string
};

const FindShape kFindShapes[] = {
    {"of_find_compatible_node", true, "NULL, \"%s\""},
    {"of_find_matching_node", true, "%s_ids"},
    {"of_find_node_by_name", true, "\"%s\""},
    {"of_find_node_by_type", true, "\"%s\""},
    {"of_find_node_by_path", false, "\"/soc/%s\""},
    {"of_find_node_by_phandle", false, "%s_phandle"},
    {"of_parse_phandle", false, "@np, \"%s\", 0"},
    {"of_get_parent", false, "@np"},  // special: single node argument
    {"of_get_child_by_name", false, "@np, \"%s\""},
    {"of_graph_get_port_by_id", false, "@np, 1"},
    {"of_graph_get_port_parent", false, "@np"},
    {"of_get_node", false, "\"%s\""},
    {"ip_dev_find", false, "net, %s_addr"},
};

const FindShape* FindFindShape(std::string_view name) {
  for (const FindShape& shape : kFindShapes) {
    if (name == shape.name) {
      return &shape;
    }
  }
  return nullptr;
}

// --------------------------------------------------------------- generator

class ModuleGenerator {
 public:
  ModuleGenerator(const ModulePlan& plan, const CorpusOptions& options, Corpus& corpus)
      : plan_(plan),
        options_(options),
        corpus_(corpus),
        rng_(Xoshiro256pp(options.seed)
                 .Fork(HashString(plan.subsystem.data(), plan.subsystem.size()) ^
                       HashString(plan.module.data(), plan.module.size()))) {}

  void Generate() {
    EmitSupportFile();

    // Interleave bugs with clean functions across files of ~6 bug functions.
    std::vector<int> bug_kinds;
    for (const auto& [pattern, count] : plan_.pattern_counts) {
      for (int i = 0; i < count; ++i) {
        bug_kinds.push_back(pattern);
      }
    }
    // Deterministic shuffle so patterns spread over files.
    for (size_t i = bug_kinds.size(); i > 1; --i) {
      std::swap(bug_kinds[i - 1], bug_kinds[rng_.Below(i)]);
    }

    int fps_left = options_.plant_false_positives ? plan_.false_positives : 0;
    // Clean code outnumbers buggy code (as in a real tree): this is what
    // keeps the checkers' precision honest and gives cross-checking-style
    // baselines a meaningful majority to vote with.
    const int clean_total =
        std::max<int>(options_.min_clean_functions, 2 * static_cast<int>(bug_kinds.size()));
    int clean_left = clean_total;

    OpenFile();
    size_t bugs_in_file = 0;
    for (size_t i = 0; i < bug_kinds.size(); ++i) {
      EmitBug(bug_kinds[i]);
      ++bugs_in_file;
      // Sprinkle clean functions between bugs.
      if (clean_left > 0 && rng_.Chance(0.5)) {
        EmitCleanFunction();
        --clean_left;
      }
      if (fps_left > 0 && rng_.Chance(0.3)) {
        EmitFalsePositive();
        --fps_left;
      }
      if (bugs_in_file >= 6 && i + 1 < bug_kinds.size()) {
        FlushFile();
        OpenFile();
        bugs_in_file = 0;
      }
    }
    while (clean_left-- > 0) {
      EmitCleanFunction();
    }
    while (fps_left-- > 0) {
      EmitFalsePositive();
    }
    FlushFile();

    for (const int depth : options_.wrapper_chain_depths) {
      if (depth >= 2 && !IsHeaderModule()) {
        EmitWrapperChainFile(depth);
      }
    }

    AssignResponses();
  }

 private:
  bool IsHeaderModule() const { return plan_.subsystem == "include"; }

  // ----------------------------------------------------------- name utils

  std::string Pick(const char* const* pool, size_t n) {
    return pool[rng_.Below(n)];
  }
  std::string DeviceWord() { return Pick(kDeviceWords, std::size(kDeviceWords)); }
  std::string ActionWord() { return Pick(kActionWords, std::size(kActionWords)); }
  std::string PropWord() { return Pick(kPropWords, std::size(kPropWords)); }
  std::string VendorWord() { return Pick(kVendorWords, std::size(kVendorWords)); }

  std::string CompatString() { return VendorWord() + "," + DeviceWord(); }

  // Unique function name like "aon_pmc_setup".
  std::string FreshName(std::string_view stem) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      std::string name = StrFormat("%s_%s_%s", DeviceWord().c_str(), std::string(stem).c_str(),
                                   ActionWord().c_str());
      if (used_names_.insert(name).second) {
        return name;
      }
    }
    std::string name = StrFormat("%s_fn%zu", plan_.module.c_str(), used_names_.size());
    used_names_.insert(name);
    return name;
  }

  // ------------------------------------------------------------ API picks

  // First API in the plan's pool matching `pred`, else `fallback`.
  template <typename Pred>
  std::string PickApi(Pred pred, const char* fallback) {
    std::vector<std::string> candidates;
    for (const std::string& api : plan_.apis) {
      if (pred(api)) {
        candidates.push_back(api);
      }
    }
    if (candidates.empty()) {
      return fallback;
    }
    return candidates[rng_.Below(candidates.size())];
  }

  std::string PickFindApi() {
    return PickApi([](const std::string& a) { return FindFindShape(a) != nullptr; },
                   "of_find_compatible_node");
  }

  std::string PickConsumingFindApi() {
    return PickApi(
        [](const std::string& a) {
          const FindShape* shape = FindFindShape(a);
          return shape != nullptr && shape->takes_from;
        },
        "of_find_matching_node");
  }

  std::string PickSmartLoop() {
    return PickApi([](const std::string& a) { return FindLoopShape(a) != nullptr; },
                   "for_each_child_of_node");
  }

  std::string PickDecApi() {
    return PickApi(
        [](const std::string& a) {
          return a == "sock_put" || a == "usb_serial_put" || a == "nvmet_fc_tgt_q_put" ||
                 a == "kobject_put";
        },
        "kobject_put");
  }

  // ------------------------------------------------------------- file I/O

  void OpenFile() {
    const char* stems[] = {"core", "setup", "main", "dev", "plat", "common", "board", "bus"};
    std::string stem = stems[file_count_ % std::size(stems)];
    if (file_count_ >= static_cast<int>(std::size(stems))) {
      stem += StrFormat("%d", file_count_);
    }
    ++file_count_;
    const char* ext = IsHeaderModule() ? "h" : "c";
    path_ = StrFormat("%s/%s/%s-%s.%s", plan_.subsystem.c_str(), plan_.module.c_str(),
                      DeviceWord().c_str(), stem.c_str(), ext);
    buffer_ = StrFormat(
        "// SPDX-License-Identifier: GPL-2.0\n"
        "// %s %s support (generated corpus)\n"
        "#include <linux/kernel.h>\n"
        "#include <linux/of.h>\n"
        "#include <linux/platform_device.h>\n\n",
        plan_.module.c_str(), plan_.subsystem.c_str());
  }

  void FlushFile() {
    if (!buffer_.empty()) {
      corpus_.tree.Add(path_, buffer_);
      buffer_.clear();
    }
  }

  void Append(const std::string& text) { buffer_ += text; }

  void RegisterBug(const std::string& fn, int pattern, Impact impact, const std::string& api) {
    PlantedBug bug;
    bug.file = path_;
    bug.function = fn;
    bug.anti_pattern = pattern == kMissingIncrease ? 4 : pattern;
    bug.impact = impact;
    bug.api = api;
    corpus_.ground_truth.push_back(std::move(bug));
    module_bug_indices_.push_back(corpus_.ground_truth.size() - 1);
  }

  const char* FnQualifier() const { return IsHeaderModule() ? "static inline" : "static"; }

  // -------------------------------------------------- acquire-line helper

  // Emits `np = <api>(...)` right-hand side for a find-like API. If the
  // shape needs a source node (`@np` marker), `src` supplies it.
  std::string AcquireExpr(const std::string& api, const std::string& src) {
    const FindShape* shape = FindFindShape(api);
    std::string args;
    if (shape == nullptr) {
      args = StrFormat("\"%s\"", CompatString().c_str());
    } else if (shape->takes_from) {
      args = StrFormat("NULL, %s", StrFormat(shape->arg_fmt, DeviceWord().c_str()).c_str());
    } else {
      std::string fmt = shape->arg_fmt;
      if (fmt.find("@np") != std::string::npos) {
        fmt.replace(fmt.find("@np"), 3, src);
        if (fmt.find("%s") != std::string::npos) {
          args = StrFormat(fmt.c_str(), DeviceWord().c_str());
        } else {
          args = fmt;
        }
      } else {
        args = StrFormat(fmt.c_str(), DeviceWord().c_str());
      }
    }
    return StrFormat("%s(%s)", api.c_str(), args.c_str());
  }

  // --------------------------------------------------------- bug emitters

  void EmitBug(int pattern) {
    switch (pattern) {
      case 1:
        EmitBugP1();
        return;
      case 2:
        EmitBugP2();
        return;
      case 3:
        EmitBugP3();
        return;
      case 4:
        EmitBugP4();
        return;
      case kMissingIncrease:
        EmitBugMissingIncrease();
        return;
      case 5:
        EmitBugP5();
        return;
      case 6:
        EmitBugP6();
        return;
      case 7:
        EmitBugP7();
        return;
      case 8:
        EmitBugP8();
        return;
      case 9:
        EmitBugP9();
        return;
      default:
        return;
    }
  }

  void EmitBugP1() {
    const std::string fn = FreshName("pm");
    Append(StrFormat(
        "%s int %s(struct platform_device *pdev)\n"
        "{\n"
        "\tstruct %s_priv *priv = platform_get_drvdata(pdev);\n"
        "\tint ret;\n"
        "\n"
        "\tret = pm_runtime_get_sync(priv->dev);\n"
        "\tif (ret < 0)\n"
        "\t\treturn ret;\n"  // planted P1: usage count already raised
        "\t%s_commit(priv);\n"
        "\tpm_runtime_put(priv->dev);\n"
        "\treturn 0;\n"
        "}\n\n",
        FnQualifier(), fn.c_str(), plan_.module.c_str(), DeviceWord().c_str()));
    RegisterBug(fn, 1, Impact::kLeak, "pm_runtime_get_sync");
  }

  void EmitBugP2() {
    const std::string fn = FreshName("mdesc");
    Append(StrFormat(
        "%s int %s(void)\n"
        "{\n"
        "\tstruct mdesc_handle *hp = mdesc_grab();\n"
        "\tconst char *name = md_get_property(hp->root, \"%s\");\n"  // planted P2
        "\t%s_record(name);\n"
        "\tmdesc_release(hp);\n"
        "\treturn 0;\n"
        "}\n\n",
        FnQualifier(), fn.c_str(), PropWord().c_str(), DeviceWord().c_str()));
    RegisterBug(fn, 2, Impact::kNpd, "mdesc_grab");
  }

  void EmitBugP3() {
    const std::string loop = PickSmartLoop();
    const LoopShape* shape = FindLoopShape(loop);
    const std::string fn = FreshName("walk");
    const std::string it = "np";
    std::string aux;
    std::string aux_decl;
    if (shape->decl_aux != nullptr) {
      aux = shape->decl_aux;
      if (aux == "parent") {
        aux_decl = "\tstruct device_node *parent = pdev->dev.of_node;\n";
      } else if (aux == "dev") {
        aux_decl = "\tstruct device *dev = &pdev->dev;\n";
      } else {
        aux_decl = "\tstruct fwnode_handle *fwnode = dev_fwnode(&pdev->dev);\n";
      }
    } else {
      aux = StrFormat("%s_ids", DeviceWord().c_str());
      if (loop == "for_each_node_by_name" || loop == "for_each_node_by_type" ||
          loop == "for_each_compatible_node") {
        aux = StrFormat("\"%s\"", DeviceWord().c_str());
      }
    }
    // Three early-exit variants, like the real reports: break, return, goto.
    const int variant = static_cast<int>(rng_.Below(3));
    std::string exit_stmt;
    std::string tail = "\treturn 0;\n";
    if (variant == 0) {
      exit_stmt = "\t\t\tbreak;";
    } else if (variant == 1) {
      exit_stmt = "\t\t\treturn -ENODEV;";
    } else {
      exit_stmt = "\t\t\tgoto err_stop;";
      tail = "\treturn 0;\nerr_stop:\n\t" + plan_.module + "_halt(pdev);\n\treturn -EIO;\n";
    }
    Append(StrFormat(
        "%s int %s(struct platform_device *pdev)\n"
        "{\n"
        "\tstruct device_node *%s;\n"
        "%s"
        "\n"
        "\t%s%s {\n"
        "\t\tif (of_device_is_compatible(%s, \"%s\"))\n"
        "%s\n"  // planted P3: iterator reference leaks at the early exit
        "\t}\n"
        "%s"
        "}\n\n",
        FnQualifier(), fn.c_str(), it.c_str(), aux_decl.c_str(), loop.c_str(),
        shape->invoke(it, aux).c_str(), it.c_str(), CompatString().c_str(), exit_stmt.c_str(),
        tail.c_str()));
    RegisterBug(fn, 3, Impact::kLeak, loop);
  }

  void EmitBugP4() {
    const std::string api = PickFindApi();
    const std::string fn = FreshName("lookup");
    const bool in_probe_style = rng_.Chance(0.5);
    const std::string src = "pdev->dev.of_node";
    if (in_probe_style) {
      Append(StrFormat(
          "%s int %s(struct platform_device *pdev)\n"
          "{\n"
          "\tstruct device_node *np;\n"
          "\tu32 val;\n"
          "\n"
          "\tnp = %s;\n"
          "\tif (!np)\n"
          "\t\treturn -ENODEV;\n"
          "\tof_property_read_u32(np, \"%s\", &val);\n"
          "\t%s_apply(pdev, val);\n"
          "\treturn 0;\n"  // planted P4: missing of_node_put(np)
          "}\n\n",
          FnQualifier(), fn.c_str(), AcquireExpr(api, src).c_str(), PropWord().c_str(),
          DeviceWord().c_str()));
    } else {
      Append(StrFormat(
          "%s void %s(void)\n"
          "{\n"
          "\tstruct device_node *np = %s;\n"
          "\n"
          "\tif (np)\n"
          "\t\t%s_configure(np);\n"
          "}\n\n",  // planted P4: missing of_node_put(np) in the if-body
          FnQualifier(), fn.c_str(), AcquireExpr(api, "of_root").c_str(), DeviceWord().c_str()));
    }
    RegisterBug(fn, 4, Impact::kLeak, api);
  }

  void EmitBugMissingIncrease() {
    const std::string api = PickConsumingFindApi();
    const FindShape* shape = FindFindShape(api);
    const std::string fn = FreshName("next");
    std::string rest = StrFormat(shape->arg_fmt, DeviceWord().c_str());
    Append(StrFormat(
        "%s struct device_node *%s(struct device_node *from)\n"
        "{\n"
        "\tstruct device_node *np;\n"
        "\n"
        "\tnp = %s(from, %s);\n"  // planted P4 (missing increase): consumes `from`
        "\treturn np;\n"
        "}\n\n",
        FnQualifier(), fn.c_str(), api.c_str(), rest.c_str()));
    RegisterBug(fn, kMissingIncrease, Impact::kUaf, api);
  }

  void EmitBugP5() {
    const std::string api = PickFindApi();
    const std::string fn = FreshName("enable");
    Append(StrFormat(
        "%s int %s(struct platform_device *pdev)\n"
        "{\n"
        "\tstruct device_node *np = %s;\n"
        "\tint ret;\n"
        "\n"
        "\tif (!np)\n"
        "\t\treturn -ENODEV;\n"
        "\tret = %s_prepare(np);\n"
        "\tif (ret < 0)\n"
        "\t\treturn ret;\n"  // planted P5: error path misses of_node_put
        "\t%s_commit(np);\n"
        "\tof_node_put(np);\n"
        "\treturn 0;\n"
        "}\n\n",
        FnQualifier(), fn.c_str(), AcquireExpr(api, "pdev->dev.of_node").c_str(),
        DeviceWord().c_str(), DeviceWord().c_str()));
    RegisterBug(fn, 5, Impact::kLeak, api);
  }

  void EmitBugP6() {
    const std::string api = PickFindApi();
    const std::string dev = DeviceWord() + "_" + ActionWord();
    const std::string probe_fn = dev + "_probe";
    const std::string remove_fn = dev + "_remove";
    used_names_.insert(probe_fn);
    used_names_.insert(remove_fn);
    Append(StrFormat(
        "%s int %s(struct platform_device *pdev)\n"
        "{\n"
        "\tstruct device_node *np = %s;\n"
        "\n"
        "\tif (!np)\n"
        "\t\treturn -ENODEV;\n"
        "\tpdev->priv = np;\n"
        "\treturn 0;\n"
        "}\n\n"
        "%s int %s(struct platform_device *pdev)\n"
        "{\n"
        "\t%s_quiesce(pdev);\n"
        "\treturn 0;\n"  // planted P6: remove never puts the node from probe
        "}\n\n"
        "static struct platform_driver %s_driver = {\n"
        "\t.probe = %s,\n"
        "\t.remove = %s,\n"
        "\t.driver = { .name = \"%s\" },\n"
        "};\n\n",
        FnQualifier(), probe_fn.c_str(), AcquireExpr(api, "pdev->dev.of_node").c_str(),
        FnQualifier(), remove_fn.c_str(), DeviceWord().c_str(), dev.c_str(), probe_fn.c_str(),
        remove_fn.c_str(), dev.c_str()));
    RegisterBug(probe_fn, 6, Impact::kLeak, api);
  }

  void EmitBugP7() {
    const std::string api = PickFindApi();
    const std::string fn = FreshName("teardown");
    Append(StrFormat(
        "%s void %s(void)\n"
        "{\n"
        "\tstruct device_node *np = %s;\n"
        "\n"
        "\tif (!np)\n"
        "\t\treturn;\n"
        "\t%s_flush(np);\n"
        "\tkfree(np);\n"  // planted P7: direct free bypasses the release hook
        "}\n\n",
        FnQualifier(), fn.c_str(), AcquireExpr(api, "of_root").c_str(), DeviceWord().c_str()));
    RegisterBug(fn, 7, Impact::kLeak, api);
  }

  void EmitBugP8() {
    const std::string api = PickDecApi();
    const std::string fn = FreshName("unhash");
    if (api == "sock_put") {
      Append(StrFormat(
          "%s void %s(struct sock *sk)\n"
          "{\n"
          "\tsock_put(sk);\n"
          "\tsock_prot_inuse_add(sock_net(sk), sk->sk_prot, -1);\n"  // planted P8
          "}\n\n",
          FnQualifier(), fn.c_str()));
    } else if (api == "usb_serial_put") {
      Append(StrFormat(
          "%s int %s(struct usb_serial *serial)\n"
          "{\n"
          "\t%s_quiesce(serial);\n"
          "\tusb_serial_put(serial);\n"
          "\tmutex_unlock(&serial->disc_mutex);\n"  // planted P8
          "\treturn 0;\n"
          "}\n\n",
          FnQualifier(), fn.c_str(), DeviceWord().c_str()));
    } else if (api == "nvmet_fc_tgt_q_put") {
      Append(StrFormat(
          "%s void %s(struct nvmet_fc_tgt_queue *queue)\n"
          "{\n"
          "\tnvmet_fc_tgt_q_put(queue);\n"
          "\t%s_log(queue->qid);\n"  // planted P8
          "}\n\n",
          FnQualifier(), fn.c_str(), DeviceWord().c_str()));
    } else {
      Append(StrFormat(
          "%s void %s(struct %s_state *st)\n"
          "{\n"
          "\tkobject_put(&st->kobj);\n"
          "\tst->flags = 0;\n"  // planted P8
          "}\n\n",
          FnQualifier(), fn.c_str(), plan_.module.c_str()));
    }
    RegisterBug(fn, 8, Impact::kUaf, api);
  }

  void EmitBugP9() {
    const std::string fn = FreshName("cache");
    Append(StrFormat(
        "%s int %s(struct %s_ctx *ctx)\n"
        "{\n"
        "\tstruct device_node *np = of_find_node_by_path(\"/soc/%s\");\n"
        "\n"
        "\tif (!np)\n"
        "\t\treturn -ENODEV;\n"
        "\tctx->node = np;\n"  // planted P9: escapes without of_node_get
        "\t%s_sync(np);\n"
        "\tof_node_put(np);\n"
        "\treturn 0;\n"
        "}\n\n",
        FnQualifier(), fn.c_str(), plan_.module.c_str(), DeviceWord().c_str(),
        DeviceWord().c_str()));
    RegisterBug(fn, 9, Impact::kUaf, "of_find_node_by_path");
  }

  // The lpfc Listing-5 shape: flagged by the checkers, proved safe by the
  // maintainers. Counted as a false positive in Table 4.
  void EmitFalsePositive() {
    const std::string fn = FreshName("event");
    Append(StrFormat(
        "%s int %s(struct bsg_job *job)\n"
        "{\n"
        "\tstruct lpfc_bsg_event *evt;\n"
        "\n"
        "\tlist_for_each_entry(evt, &waiters, node) {\n"
        "\t\tif (evt->reg_id == job->reg_id)\n"
        "\t\t\tlpfc_bsg_event_ref(evt);\n"
        "\t}\n"
        "\tif (list_entry_is_head(evt, &waiters)) {\n"
        "\t\tevt = %s_event_new(job->reg_id);\n"
        "\t}\n"
        "\treturn %s_submit(evt);\n"
        "}\n\n",
        FnQualifier(), fn.c_str(), plan_.module.c_str(), DeviceWord().c_str()));
    corpus_.planted_fps.push_back(PlantedFalsePositive{path_, fn});
  }

  // ------------------------------------------------- wrapper-chain variants
  //
  // One extra file per requested depth: P1/P4/P5/P8/P9 anti-patterns whose
  // acquire/release APIs sit under `depth` layers of trivial helpers.
  // Helpers are emitted outermost-first, so one discovery round only
  // classifies the innermost helper and the two-round pass stops at depth
  // 2 — depth 3 needs the interprocedural summary stage. The P1 𝒢_E flag
  // and the P8 helper-deref fact are summary-only at every depth: neither
  // is visible to the textual classifier.

  // Identifier prefix unique across the whole tree (helper names are global
  // in the KB even though the functions are static).
  std::string ChainBase(int depth) const {
    std::string base = plan_.subsystem + "_" + plan_.module;
    for (char& c : base) {
      if (!std::isalnum(static_cast<unsigned char>(c))) {
        c = '_';
      }
    }
    return base + StrFormat("_d%d", depth);
  }

  void RegisterWrapperBug(const std::string& fn, int pattern, Impact impact,
                          const std::string& api, int depth) {
    RegisterBug(fn, pattern, impact, api);
    corpus_.ground_truth.back().wrapper_depth = depth;
  }

  // Helpers `<base>_<stem>1 .. <stem><depth>`, outermost first; helper i
  // forwards its parameter to helper i+1 and the innermost runs `leaf`.
  void EmitForwardChain(const std::string& base, const char* stem, int depth,
                        const char* return_type, const char* param, const char* arg,
                        const std::string& leaf) {
    for (int i = 1; i <= depth; ++i) {
      const std::string name = StrFormat("%s_%s%d", base.c_str(), stem, i);
      used_names_.insert(name);
      const std::string inner =
          i == depth ? leaf : StrFormat("%s_%s%d(%s)", base.c_str(), stem, i + 1, arg);
      if (return_type != nullptr) {
        Append(StrFormat("%s %s %s(%s)\n{\n\treturn %s;\n}\n\n", FnQualifier(), return_type,
                         name.c_str(), param, inner.c_str()));
      } else {
        Append(StrFormat("%s void %s(%s)\n{\n\t%s;\n}\n\n", FnQualifier(), name.c_str(), param,
                         inner.c_str()));
      }
    }
  }

  // Find-style helpers: each stores the inner result in a local and returns
  // it (the shape the textual wrapper classifier recognises).
  void EmitFindChain(const std::string& base, int depth, const std::string& leaf) {
    for (int i = 1; i <= depth; ++i) {
      const std::string name = StrFormat("%s_scan%d", base.c_str(), i);
      used_names_.insert(name);
      const std::string inner =
          i == depth ? leaf : StrFormat("%s_scan%d()", base.c_str(), i + 1);
      Append(StrFormat(
          "%s struct device_node *%s(void)\n"
          "{\n"
          "\tstruct device_node *np = %s;\n"
          "\n"
          "\treturn np;\n"
          "}\n\n",
          FnQualifier(), name.c_str(), inner.c_str()));
    }
  }

  void EmitWrapperChainFile(int depth) {
    const std::string base = ChainBase(depth);
    OpenFile();

    // P1: the increment-on-error deviation buried under int wrappers. The
    // wrapper names contain "get" (as real pm wrappers do), so they are not
    // "hidden" APIs; what discovery cannot see is that the increment
    // survives the error return — that flag only propagates through the
    // summary stage's path classification.
    EmitForwardChain(base, "get_sync", depth, "int", "struct device *dev", "dev",
                     "pm_runtime_get_sync(dev)");
    {
      const std::string fn = base + "_pm_attach";
      used_names_.insert(fn);
      Append(StrFormat(
          "%s int %s(struct platform_device *pdev)\n"
          "{\n"
          "\tstruct %s_priv *priv = platform_get_drvdata(pdev);\n"
          "\tint ret;\n"
          "\n"
          "\tret = %s_get_sync1(priv->dev);\n"
          "\tif (ret < 0)\n"
          "\t\treturn ret;\n"  // planted P1: usage count raised through the chain
          "\t%s_commit(priv);\n"
          "\tpm_runtime_put(priv->dev);\n"
          "\treturn 0;\n"
          "}\n\n",
          FnQualifier(), fn.c_str(), plan_.module.c_str(), base.c_str(), DeviceWord().c_str()));
      RegisterWrapperBug(fn, 1, Impact::kLeak, base + "_get_sync1", depth);
    }

    // P4: missing put on a node acquired through find wrappers.
    EmitFindChain(base, depth, AcquireExpr("of_find_node_by_path", "of_root"));
    {
      const std::string fn = base + "_lookup";
      used_names_.insert(fn);
      Append(StrFormat(
          "%s int %s(struct platform_device *pdev)\n"
          "{\n"
          "\tstruct device_node *np;\n"
          "\tu32 val;\n"
          "\n"
          "\tnp = %s_scan1();\n"
          "\tif (!np)\n"
          "\t\treturn -ENODEV;\n"
          "\tof_property_read_u32(np, \"%s\", &val);\n"
          "\t%s_apply(pdev, val);\n"
          "\treturn 0;\n"  // planted P4: missing put of the chained find result
          "}\n\n",
          FnQualifier(), fn.c_str(), base.c_str(), PropWord().c_str(), DeviceWord().c_str()));
      RegisterWrapperBug(fn, 4, Impact::kLeak, base + "_scan1", depth);
    }

    // P5: the normal path releases through the drop chain, the error path
    // forgets to.
    EmitForwardChain(base, "drop", depth, nullptr, "struct device_node *np", "np",
                     "of_node_put(np)");
    {
      const std::string fn = base + "_enable";
      used_names_.insert(fn);
      Append(StrFormat(
          "%s int %s(struct platform_device *pdev)\n"
          "{\n"
          "\tstruct device_node *np = %s_scan1();\n"
          "\tint ret;\n"
          "\n"
          "\tif (!np)\n"
          "\t\treturn -ENODEV;\n"
          "\tret = %s_prepare(np);\n"
          "\tif (ret < 0)\n"
          "\t\treturn ret;\n"  // planted P5: error path misses the chained put
          "\t%s_commit(np);\n"
          "\t%s_drop1(np);\n"
          "\treturn 0;\n"
          "}\n\n",
          FnQualifier(), fn.c_str(), base.c_str(), DeviceWord().c_str(), DeviceWord().c_str(),
          base.c_str()));
      RegisterWrapperBug(fn, 5, Impact::kLeak, base + "_scan1", depth);
    }

    // P8: the put is chained AND the use hides inside a helper that merely
    // dereferences its parameter — only the summary stage's param-deref
    // facts make the use visible at the call site.
    EmitForwardChain(base, "rel", depth, nullptr, "struct sock *sk", "sk", "sock_put(sk)");
    {
      const std::string touch = base + "_touch";
      const std::string fn = base + "_unhash";
      used_names_.insert(touch);
      used_names_.insert(fn);
      Append(StrFormat(
          "%s void %s(struct sock *sk)\n"
          "{\n"
          "\tsock_prot_inuse_add(sock_net(sk), sk->sk_prot, -1);\n"
          "}\n\n"
          "%s void %s(struct sock *sk)\n"
          "{\n"
          "\t%s_rel1(sk);\n"
          "\t%s(sk);\n"  // planted P8: helper derefs sk after the chained put
          "}\n\n",
          FnQualifier(), touch.c_str(), FnQualifier(), fn.c_str(), base.c_str(),
          touch.c_str()));
      RegisterWrapperBug(fn, 8, Impact::kUaf, base + "_rel1", depth);
    }

    // P9: escape without a get, acquire and release both chained.
    {
      const std::string fn = base + "_cache";
      used_names_.insert(fn);
      Append(StrFormat(
          "%s int %s(struct %s_ctx *ctx)\n"
          "{\n"
          "\tstruct device_node *np = %s_scan1();\n"
          "\n"
          "\tif (!np)\n"
          "\t\treturn -ENODEV;\n"
          "\tctx->node = np;\n"  // planted P9: escapes without of_node_get
          "\t%s_sync(np);\n"
          "\t%s_drop1(np);\n"
          "\treturn 0;\n"
          "}\n\n",
          FnQualifier(), fn.c_str(), plan_.module.c_str(), base.c_str(), DeviceWord().c_str(),
          base.c_str()));
      RegisterWrapperBug(fn, 9, Impact::kUaf, base + "_scan1", depth);
    }

    FlushFile();
  }

  // -------------------------------------------------------- clean emitters

  void EmitCleanFunction() {
    switch (clean_variant_++ % 8) {
      case 0:
        EmitCleanFindPut();
        return;
      case 1:
        EmitCleanLoopPutBeforeBreak();
        return;
      case 2:
        EmitCleanGuardedGrab();
        return;
      case 3:
        EmitCleanPmPaired();
        return;
      case 4:
        EmitCleanPlainLogic();
        return;
      case 5:
        EmitCleanEscapeWithGet();
        return;
      case 6:
        EmitCleanProbeRemovePair();
        return;
      case 7:
        EmitCleanDevmManaged();
        return;
    }
  }

  void EmitCleanDevmManaged() {
    const std::string fn = FreshName("devm");
    Append(StrFormat(
        "%s int %s(struct platform_device *pdev)\n"
        "{\n"
        "\tstruct device_node *np = of_find_node_by_path(\"/soc/%s\");\n"
        "\n"
        "\tif (!np)\n"
        "\t\treturn -ENODEV;\n"
        "\treturn devm_add_action_or_reset(&pdev->dev, %s_put_node, np);\n"
        "}\n\n",
        FnQualifier(), fn.c_str(), DeviceWord().c_str(), plan_.module.c_str()));
  }

  void EmitCleanFindPut() {
    const std::string fn = FreshName("read");
    Append(StrFormat(
        "%s int %s(struct platform_device *pdev)\n"
        "{\n"
        "\tstruct device_node *np = %s;\n"
        "\tint ret;\n"
        "\n"
        "\tif (!np)\n"
        "\t\treturn -ENODEV;\n"
        "\tret = %s_prepare(np);\n"
        "\tif (ret < 0)\n"
        "\t\tgoto out_put;\n"
        "\t%s_commit(np);\n"
        "out_put:\n"
        "\tof_node_put(np);\n"
        "\treturn ret;\n"
        "}\n\n",
        FnQualifier(), fn.c_str(),
        AcquireExpr("of_find_compatible_node", "pdev->dev.of_node").c_str(),
        DeviceWord().c_str(), DeviceWord().c_str()));
  }

  void EmitCleanLoopPutBeforeBreak() {
    const std::string fn = FreshName("find");
    Append(StrFormat(
        "%s int %s(struct device_node *parent)\n"
        "{\n"
        "\tstruct device_node *child;\n"
        "\n"
        "\tfor_each_child_of_node(parent, child) {\n"
        "\t\tif (of_device_is_compatible(child, \"%s\")) {\n"
        "\t\t\tof_node_put(child);\n"
        "\t\t\tbreak;\n"
        "\t\t}\n"
        "\t}\n"
        "\treturn 0;\n"
        "}\n\n",
        FnQualifier(), fn.c_str(), CompatString().c_str()));
  }

  void EmitCleanGuardedGrab() {
    const std::string fn = FreshName("probe_md");
    Append(StrFormat(
        "%s int %s(void)\n"
        "{\n"
        "\tstruct mdesc_handle *hp = mdesc_grab();\n"
        "\n"
        "\tif (!hp)\n"
        "\t\treturn -ENODEV;\n"
        "\t%s_record(md_get_property(hp->root, \"%s\"));\n"
        "\tmdesc_release(hp);\n"
        "\treturn 0;\n"
        "}\n\n",
        FnQualifier(), fn.c_str(), DeviceWord().c_str(), PropWord().c_str()));
  }

  void EmitCleanPmPaired() {
    const std::string fn = FreshName("resume");
    Append(StrFormat(
        "%s int %s(struct platform_device *pdev)\n"
        "{\n"
        "\tint ret = pm_runtime_get_sync(pdev->dev);\n"
        "\n"
        "\tif (ret < 0) {\n"
        "\t\tpm_runtime_put_noidle(pdev->dev);\n"
        "\t\treturn ret;\n"
        "\t}\n"
        "\t%s_kick(pdev);\n"
        "\tpm_runtime_put(pdev->dev);\n"
        "\treturn 0;\n"
        "}\n\n",
        FnQualifier(), fn.c_str(), DeviceWord().c_str()));
  }

  void EmitCleanPlainLogic() {
    const std::string fn = FreshName("calc");
    Append(StrFormat(
        "%s u32 %s(u32 rate, u32 div)\n"
        "{\n"
        "\tu32 out = rate;\n"
        "\n"
        "\tif (div > 1)\n"
        "\t\tout = rate / div;\n"
        "\tif (out > %llu)\n"
        "\t\tout = %llu;\n"
        "\treturn out;\n"
        "}\n\n",
        FnQualifier(), fn.c_str(), static_cast<unsigned long long>(1000 + rng_.Below(100000)),
        static_cast<unsigned long long>(2000 + rng_.Below(200000))));
  }

  void EmitCleanEscapeWithGet() {
    const std::string fn = FreshName("adopt");
    Append(StrFormat(
        "%s int %s(struct %s_ctx *ctx)\n"
        "{\n"
        "\tstruct device_node *np = of_find_node_by_path(\"/soc/%s\");\n"
        "\n"
        "\tif (!np)\n"
        "\t\treturn -ENODEV;\n"
        "\tctx->node = np;\n"
        "\tof_node_get(np);\n"
        "\t%s_sync(np);\n"
        "\tof_node_put(np);\n"
        "\treturn 0;\n"
        "}\n\n",
        FnQualifier(), fn.c_str(), plan_.module.c_str(), DeviceWord().c_str(),
        DeviceWord().c_str()));
  }

  void EmitCleanProbeRemovePair() {
    const std::string dev = DeviceWord() + "_" + ActionWord();
    const std::string probe_fn = dev + "_probe";
    const std::string remove_fn = dev + "_remove";
    if (!used_names_.insert(probe_fn).second) {
      EmitCleanPlainLogic();
      return;
    }
    used_names_.insert(remove_fn);
    Append(StrFormat(
        "%s int %s(struct platform_device *pdev)\n"
        "{\n"
        "\tstruct device_node *np = of_find_node_by_path(\"/soc/%s\");\n"
        "\n"
        "\tif (!np)\n"
        "\t\treturn -ENODEV;\n"
        "\tpdev->priv = np;\n"
        "\treturn 0;\n"
        "}\n\n"
        "%s int %s(struct platform_device *pdev)\n"
        "{\n"
        "\tof_node_put(pdev->priv);\n"
        "\treturn 0;\n"
        "}\n\n"
        "static struct platform_driver %s_driver = {\n"
        "\t.probe = %s,\n"
        "\t.remove = %s,\n"
        "};\n\n",
        FnQualifier(), probe_fn.c_str(), DeviceWord().c_str(), FnQualifier(), remove_fn.c_str(),
        dev.c_str(), probe_fn.c_str(), remove_fn.c_str()));
  }

  // Support file: refcounted struct + wrapper APIs + balanced usage, to
  // exercise KB discovery the way real kernel modules do.
  void EmitSupportFile() {
    if (IsHeaderModule()) {
      return;
    }
    const std::string mod = plan_.module;
    path_ = StrFormat("%s/%s/%s-base.c", plan_.subsystem.c_str(), mod.c_str(), mod.c_str());
    buffer_ = StrFormat(
        "// SPDX-License-Identifier: GPL-2.0\n"
        "// %s base objects (generated corpus)\n"
        "#include <linux/kernel.h>\n"
        "#include <linux/of.h>\n"
        "\n"
        "struct %s_device {\n"
        "\tstruct device dev;\n"
        "\tstruct kref refcnt;\n"
        "\tint id;\n"
        "};\n"
        "\n"
        "static void %s_device_release(struct kref *ref)\n"
        "{\n"
        "\tkfree(container_of(ref, struct %s_device, refcnt));\n"
        "}\n"
        "\n"
        "static struct %s_device *%s_device_get(struct %s_device *mdev)\n"
        "{\n"
        "\tif (mdev)\n"
        "\t\tkref_get(&mdev->refcnt);\n"
        "\treturn mdev;\n"
        "}\n"
        "\n"
        "static void %s_device_put(struct %s_device *mdev)\n"
        "{\n"
        "\tif (mdev)\n"
        "\t\tkref_put(&mdev->refcnt, %s_device_release);\n"
        "}\n"
        "\n"
        "static int %s_device_rename(struct %s_device *mdev, const char *name)\n"
        "{\n"
        "\tstruct %s_device *held = %s_device_get(mdev);\n"
        "\tint ret;\n"
        "\n"
        "\tif (!held)\n"
        "\t\treturn -ENODEV;\n"
        "\tret = %s_apply_name(held, name);\n"
        "\t%s_device_put(held);\n"
        "\treturn ret;\n"
        "}\n\n",
        mod.c_str(), mod.c_str(), mod.c_str(), mod.c_str(), mod.c_str(), mod.c_str(),
        mod.c_str(), mod.c_str(), mod.c_str(), mod.c_str(), mod.c_str(), mod.c_str(),
        mod.c_str(), mod.c_str(), mod.c_str(), mod.c_str());
    FlushFile();
  }

  // ------------------------------------------------------------ responses

  void AssignResponses() {
    // Patch rejects go to UAD bugs first (the paper's three rejects were all
    // disputed UAD reports), then the first `confirmed` remaining bugs are
    // confirmed, the rest get no response.
    int rejects = plan_.patch_rejected;
    for (size_t index : module_bug_indices_) {
      PlantedBug& bug = corpus_.ground_truth[index];
      if (rejects > 0 && bug.anti_pattern == 8) {
        bug.response = MaintainerResponse::kPatchRejected;
        --rejects;
      }
    }
    int confirm = plan_.no_response ? 0 : plan_.confirmed;
    for (size_t index : module_bug_indices_) {
      PlantedBug& bug = corpus_.ground_truth[index];
      if (bug.response == MaintainerResponse::kPatchRejected) {
        continue;
      }
      if (confirm > 0) {
        bug.response = MaintainerResponse::kConfirmed;
        --confirm;
      } else {
        bug.response = MaintainerResponse::kNoResponse;
      }
    }
  }

  const ModulePlan& plan_;
  const CorpusOptions& options_;
  Corpus& corpus_;
  Xoshiro256pp rng_;
  std::set<std::string> used_names_;
  std::vector<size_t> module_bug_indices_;
  std::string path_;
  std::string buffer_;
  int file_count_ = 0;
  int clean_variant_ = 0;
};

}  // namespace

const PlantedBug* Corpus::FindBug(std::string_view file, std::string_view function) const {
  for (const PlantedBug& bug : ground_truth) {
    if (bug.file == file && bug.function == function) {
      return &bug;
    }
  }
  return nullptr;
}

bool Corpus::IsPlantedFp(std::string_view file, std::string_view function) const {
  for (const PlantedFalsePositive& fp : planted_fps) {
    if (fp.file == file && fp.function == function) {
      return true;
    }
  }
  return false;
}

namespace {

// The device-tree core (the paper's Listing 4 shows exactly this code):
// find-like APIs that internally of_node_get() the returned node and
// of_node_put() the `from` cursor, plus the smartloop macro definitions.
// Including it makes KB discovery and the similarity study see the same
// text the paper's tooling saw in drivers/of/ and include/linux/of.h.
void EmitOfCore(Corpus& corpus) {
  corpus.tree.Add("include/linux/of-iterators.h",
                  "// SPDX-License-Identifier: GPL-2.0\n"
                  "#define for_each_matching_node(dn, matches) \\\n"
                  "\tfor (dn = of_find_matching_node(NULL, matches); dn; \\\n"
                  "\t     dn = of_find_matching_node(dn, matches))\n"
                  "#define for_each_child_of_node(parent, child) \\\n"
                  "\tfor (child = of_get_next_child(parent, NULL); child != NULL; \\\n"
                  "\t     child = of_get_next_child(parent, child))\n");
  corpus.tree.Add(
      "drivers/of/base-core.c",
      "// SPDX-License-Identifier: GPL-2.0\n"
      "// Device-tree node lookup core (generated corpus)\n"
      "#include <linux/of.h>\n"
      "\n"
      "struct device_node *of_find_matching_node_impl(struct device_node *from,\n"
      "\t\t\t\t\t       const struct of_device_id *matches)\n"
      "{\n"
      "\tstruct device_node *np;\n"
      "\n"
      "\tfor_each_of_allnodes_from(from, np) {\n"
      "\t\tif (of_match_node(matches, np) && of_node_get(np))\n"
      "\t\t\tbreak;\n"
      "\t}\n"
      "\tof_node_put(from);\n"
      "\treturn np;\n"
      "}\n"
      "\n"
      "struct device_node *of_get_next_child_impl(const struct device_node *node,\n"
      "\t\t\t\t\t   struct device_node *prev)\n"
      "{\n"
      "\tstruct device_node *next = prev ? prev->sibling : node->child;\n"
      "\n"
      "\tif (next)\n"
      "\t\tof_node_get(next);\n"
      "\tof_node_put(prev);\n"
      "\treturn next;\n"
      "}\n");
}

// ----------------------------------------------------- P10-P12 modules
//
// Fixed deterministic text (no RNG): planted bugs for the post-paper
// families next to their fixed counterparts, so recall AND precision are
// both measurable per family. Appended after the Table 5 plan, so the base
// corpus bytes never move.

void RegisterNewFamilyBug(Corpus& corpus, const char* file, const char* function, int pattern,
                          Impact impact, const char* api) {
  PlantedBug bug;
  bug.file = file;
  bug.function = function;
  bug.anti_pattern = pattern;
  bug.impact = impact;
  bug.api = api;
  corpus.ground_truth.push_back(std::move(bug));
}

void EmitNewFamilyModules(Corpus& corpus) {
  // Kernel idiom, P10 + P12: a refcount_t field manipulated directly. The
  // `usage` field registers as a refcount field through struct discovery;
  // the plain-int stats fields must never register (the P10 zero-FP pin).
  const char* raw_path = "drivers/nfam/nfam-raw.c";
  corpus.tree.Add(
      raw_path,
      "// SPDX-License-Identifier: GPL-2.0\n"
      "// raw refcount manipulation corpus (P10/P12)\n"
      "#include <linux/kernel.h>\n"
      "#include <linux/refcount.h>\n"
      "\n"
      "struct nfam_conn {\n"
      "\trefcount_t usage;\n"
      "\tint id;\n"
      "};\n"
      "\n"
      "struct nfam_stats {\n"
      "\tunsigned long hits;\n"
      "\tunsigned long misses;\n"
      "};\n"
      "\n"
      "static void nfam_conn_hold(struct nfam_conn *ct)\n"
      "{\n"
      "\tct->usage++;\n"  // planted P10: bypasses refcount_inc saturation
      "}\n"
      "\n"
      "static void nfam_conn_drop(struct nfam_conn *ct)\n"
      "{\n"
      "\tct->usage--;\n"  // planted P10: bypasses refcount_dec underflow check
      "}\n"
      "\n"
      "static void nfam_conn_absorb(struct nfam_conn *ct, int extra)\n"
      "{\n"
      "\tct->usage += extra;\n"  // planted P10: compound raw manipulation
      "}\n"
      "\n"
      "static void nfam_conn_recycle(struct nfam_conn *ct)\n"
      "{\n"
      "\tct->usage = 0;\n"  // planted P12: orphans every outstanding reference
      "}\n"
      "\n"
      "static void nfam_conn_init(struct nfam_conn *ct)\n"
      "{\n"
      "\tct->usage = 1;\n"
      "\tct->id = 0;\n"
      "}\n"
      "\n"
      "static void nfam_conn_get(struct nfam_conn *ct)\n"
      "{\n"
      "\trefcount_inc(&ct->usage);\n"
      "}\n"
      "\n"
      "static void nfam_stats_bump(struct nfam_stats *st)\n"
      "{\n"
      "\tst->hits++;\n"
      "\tst->misses--;\n"
      "}\n");
  RegisterNewFamilyBug(corpus, raw_path, "nfam_conn_hold", 10, Impact::kUaf, "");
  RegisterNewFamilyBug(corpus, raw_path, "nfam_conn_drop", 10, Impact::kUaf, "");
  RegisterNewFamilyBug(corpus, raw_path, "nfam_conn_absorb", 10, Impact::kUaf, "");
  RegisterNewFamilyBug(corpus, raw_path, "nfam_conn_recycle", 12, Impact::kUaf, "");

  // Kernel idiom, P11: dec_and_test misuse next to the correct shapes
  // (single free on the true branch; member frees inside a destructor).
  const char* taf_path = "drivers/nfam/nfam-taf.c";
  corpus.tree.Add(
      taf_path,
      "// SPDX-License-Identifier: GPL-2.0\n"
      "// test-and-free corpus (P11)\n"
      "#include <linux/kernel.h>\n"
      "#include <linux/refcount.h>\n"
      "\n"
      "struct nfam_obj {\n"
      "\trefcount_t usage;\n"
      "\tchar *name;\n"
      "\tint flags;\n"
      "};\n"
      "\n"
      "static void nfam_obj_put(struct nfam_obj *obj)\n"
      "{\n"
      "\trefcount_dec_and_test(&obj->usage);\n"  // planted P11: result ignored
      "}\n"
      "\n"
      "static void nfam_obj_release(struct nfam_obj *obj)\n"
      "{\n"
      "\tif (refcount_dec_and_test(&obj->usage))\n"
      "\t\tkfree(obj);\n"
      "\tobj->flags = 0;\n"  // planted P11: use after the free branch
      "}\n"
      "\n"
      "static void nfam_obj_destroy(struct nfam_obj *obj)\n"
      "{\n"
      "\tif (refcount_dec_and_test(&obj->usage))\n"
      "\t\tkfree(obj);\n"
      "\tkfree(obj);\n"  // planted P11: double free on the true branch
      "}\n"
      "\n"
      "static void nfam_obj_put_ok(struct nfam_obj *obj)\n"
      "{\n"
      "\tif (refcount_dec_and_test(&obj->usage))\n"
      "\t\tkfree(obj);\n"
      "}\n"
      "\n"
      "static void nfam_obj_release_ok(struct nfam_obj *obj)\n"
      "{\n"
      "\tif (refcount_dec_and_test(&obj->usage)) {\n"
      "\t\tkfree(obj->name);\n"
      "\t\tkfree(obj);\n"
      "\t}\n"
      "}\n");
  RegisterNewFamilyBug(corpus, taf_path, "nfam_obj_put", 11, Impact::kLeak,
                       "refcount_dec_and_test");
  RegisterNewFamilyBug(corpus, taf_path, "nfam_obj_release", 11, Impact::kUaf,
                       "refcount_dec_and_test");
  RegisterNewFamilyBug(corpus, taf_path, "nfam_obj_destroy", 11, Impact::kUaf,
                       "refcount_dec_and_test");

  // uACPI dialect module: the reference_count field and the shareable
  // ref/unref APIs come from the `uacpi` dialect catalogue, so these bugs
  // only surface when the scan runs with --dialect uacpi.
  const char* uacpi_path = "userspace/uacpi/shareable-user.c";
  corpus.tree.Add(
      uacpi_path,
      "// uACPI shareable-object corpus (userspace dialect)\n"
      "#include <uacpi/internal/shareable.h>\n"
      "\n"
      "struct uacpi_namespace_node {\n"
      "\tstruct uacpi_shareable shareable;\n"
      "\tu32 name;\n"
      "};\n"
      "\n"
      "static void uacpi_node_bump(struct uacpi_namespace_node *node)\n"
      "{\n"
      "\tnode->shareable.reference_count++;\n"  // planted P10: bypasses BUGGED_REFCOUNT pin
      "}\n"
      "\n"
      "static void uacpi_node_forget(struct uacpi_namespace_node *node)\n"
      "{\n"
      "\tnode->shareable.reference_count = 0;\n"  // planted P12
      "}\n"
      "\n"
      "static void uacpi_node_unref_leaky(struct uacpi_namespace_node *node)\n"
      "{\n"
      "\tuacpi_shareable_unref(node);\n"  // planted P11: last-reference signal dropped
      "}\n"
      "\n"
      "static void uacpi_node_unref_ok(struct uacpi_namespace_node *node)\n"
      "{\n"
      "\tif (uacpi_shareable_unref(node) == 1)\n"
      "\t\tuacpi_kernel_free(node);\n"
      "}\n"
      "\n"
      "static void uacpi_node_init_ok(struct uacpi_namespace_node *node)\n"
      "{\n"
      "\tuacpi_shareable_init(node);\n"
      "}\n");
  RegisterNewFamilyBug(corpus, uacpi_path, "uacpi_node_bump", 10, Impact::kUaf, "");
  RegisterNewFamilyBug(corpus, uacpi_path, "uacpi_node_forget", 12, Impact::kUaf, "");
  RegisterNewFamilyBug(corpus, uacpi_path, "uacpi_node_unref_leaky", 11, Impact::kLeak,
                       "uacpi_shareable_unref");

  // GLib dialect module: ref_count and the g_object_* / g_atomic_int_*
  // APIs come from the `glib` dialect catalogue.
  const char* glib_path = "userspace/glib/viewer.c";
  corpus.tree.Add(
      glib_path,
      "// GLib object-user corpus (userspace dialect)\n"
      "#include <glib-object.h>\n"
      "\n"
      "struct viewer {\n"
      "\tGObject parent;\n"
      "\tguint ref_count;\n"
      "\tint generation;\n"
      "};\n"
      "\n"
      "static void viewer_bump(struct viewer *self)\n"
      "{\n"
      "\tself->ref_count++;\n"  // planted P10: bypasses g_object_ref
      "}\n"
      "\n"
      "static void viewer_unref_leaky(struct viewer *self)\n"
      "{\n"
      "\tg_atomic_int_dec_and_test(&self->ref_count);\n"  // planted P11: ignored
      "}\n"
      "\n"
      "static void viewer_unref_then_touch(struct viewer *self)\n"
      "{\n"
      "\tif (g_atomic_int_dec_and_test(&self->ref_count))\n"
      "\t\tg_free(self);\n"
      "\tself->generation = 0;\n"  // planted P11: use after the free branch
      "}\n"
      "\n"
      "static void viewer_unref_ok(struct viewer *self)\n"
      "{\n"
      "\tif (g_atomic_int_dec_and_test(&self->ref_count))\n"
      "\t\tg_free(self);\n"
      "}\n"
      "\n"
      "static void viewer_hold_ok(struct viewer *self)\n"
      "{\n"
      "\tg_object_ref(self);\n"
      "}\n");
  RegisterNewFamilyBug(corpus, glib_path, "viewer_bump", 10, Impact::kUaf, "");
  RegisterNewFamilyBug(corpus, glib_path, "viewer_unref_leaky", 11, Impact::kLeak,
                       "g_atomic_int_dec_and_test");
  RegisterNewFamilyBug(corpus, glib_path, "viewer_unref_then_touch", 11, Impact::kUaf,
                       "g_atomic_int_dec_and_test");
}

// ----------------------------------------------------- kernelish modules
//
// Generated kernel-realism modules (DESIGN.md §5.15): the GNU-extension and
// preprocessor shapes real kernel C is full of — __attribute__, inline asm,
// statement expressions, typeof, CRLF and backslash-continued directives,
// line-spliced identifiers and comments — plus, in every other module, one
// deliberately unparseable function whose body exceeds the parser's
// per-function error budget, exercising function-granular quarantine.
// Every byte is a pure function of (seed, module index), so the bench tree
// and the CI smoke tree reproduce bit-for-bit.

void EmitKernelishModule(Corpus& corpus, const CorpusOptions& options, size_t index) {
  Xoshiro256pp rng =
      Xoshiro256pp(options.seed)
          .Fork(HashString("kernelish", 9) ^ (index * 0x9e3779b97f4a7c15ULL + 1));
  const std::string mod = StrFormat("kmod%04zu", index);
  std::string upper = mod;
  for (char& c : upper) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  const char* u = upper.c_str();
  const char* m = mod.c_str();

  std::string out;
  out += "// SPDX-License-Identifier: GPL-2.0\n";
  out += StrFormat("// %s: generated kernel-realism module\n", m);
  out += "#include <linux/kernel.h>\n#include <linux/of.h>\n\n";
  // CRLF-continued directive, then a `\`-plus-trailing-spaces continuation.
  out += StrFormat("#define %s_MASK (0x1 | \\\r\n\t\t0x2 | \\\r\n\t\t0x4)\n", u);
  out += StrFormat("#define %s_FLAGS (%s_MASK | \\  \n\t\t0x8)\n", u, u);
  // A declaration whose line ends in a multi-line block comment, directly
  // followed by a directive (the at_line_start regression shape).
  out += StrFormat("int %s_seq; /*\n * generation counter for %s\n */\n", m, m);
  out += StrFormat("#define %s_MAGIC 0x%04x\n\n", u,
                   static_cast<unsigned>(rng.Below(0xffff)));
  out += StrFormat("struct __attribute__((aligned(8))) %s_dev {\n"
                   "\tint state;\n\tint gen;\n\tlong budget;\n};\n\n",
                   m);
  out += StrFormat("static void %s_log(struct device_node *np)\n{\n\t(void)np;\n}\n\n", m);

  const int funcs = 100;
  for (int i = 0; i < funcs; ++i) {
    const int k = static_cast<int>(rng.Below(1000));
    switch (i % 5) {
      case 0:  // attribute + statement expression
        out += StrFormat(
            "static int __attribute__((cold)) %s_probe_%d(struct %s_dev *kd)\n"
            "{\n"
            "\tint ret = ({ int __v = kd->state + %d; __v & 0xff; });\n"
            "\tif (ret < 0)\n"
            "\t\treturn ret;\n"
            "\tkd->state = ret;\n"
            "\treturn 0;\n"
            "}\n\n",
            m, i, m, k);
        break;
      case 1:  // inline asm, both spellings
        out += StrFormat(
            "static void %s_flush_%d(struct %s_dev *kd)\n"
            "{\n"
            "\t__asm__ volatile(\"\" ::: \"memory\");\n"
            "\tkd->gen += %d;\n"
            "\tasm volatile(\"nop\");\n"
            "}\n\n",
            m, i, m, k % 7 + 1);
        break;
      case 2:  // typeof in declarations
        out += StrFormat(
            "static long %s_scale_%d(long base)\n"
            "{\n"
            "\ttypeof(base) step = base / %d;\n"
            "\t__typeof__(step) sum = step + %d;\n"
            "\treturn sum;\n"
            "}\n\n",
            m, i, k % 5 + 2, k);
        break;
      case 3:  // balanced device-node refcounting (clean by construction)
        out += StrFormat(
            "static int %s_bind_%d(struct device_node *parent)\n"
            "{\n"
            "\tstruct device_node *np = of_get_child_by_name(parent, \"port%d\");\n"
            "\tif (!np)\n"
            "\t\treturn -ENODEV;\n"
            "\t%s_log(np);\n"
            "\tof_node_put(np);\n"
            "\treturn 0;\n"
            "}\n\n",
            m, i, k % 4, m);
        break;
      default:  // spliced identifier + spliced // comment
        out += StrFormat(
            "static int %s_spli\\\nced_%d(int v)\n"
            "{\n"
            "\t// scaled by %d, continued \\\n"
            "\t   onto this line (still the comment)\n"
            "\treturn v * %d;\n"
            "}\n\n",
            m, i, k, k % 9 + 2);
        break;
    }
  }

  // Every other module carries one function whose body defeats the parser
  // outright: ten garbage statements blow the per-function error budget, so
  // the function quarantines while every sibling above still scans.
  if (index % 2 == 0) {
    out += StrFormat("static int %s_unparseable(struct %s_dev *kd)\n{\n\tint ok = kd->state;\n",
                     m, m);
    for (int g = 0; g < 10; ++g) {
      out += StrFormat("\t@@ %d$ !! %d?? ;\n", g, static_cast<int>(rng.Below(100)));
    }
    out += "\treturn ok;\n}\n";
  }

  corpus.tree.Add(StrFormat("drivers/kernelish/%s.c", m), std::move(out));
}

}  // namespace

Corpus GenerateKernelCorpus(const CorpusOptions& options, const std::vector<ModulePlan>& plan) {
  Corpus corpus;
  EmitOfCore(corpus);
  for (const ModulePlan& module_plan : plan) {
    ModuleGenerator(module_plan, options, corpus).Generate();
  }
  if (options.new_family_modules) {
    EmitNewFamilyModules(corpus);
  }
  for (int i = 0; i < options.kernelish_modules; ++i) {
    EmitKernelishModule(corpus, options, static_cast<size_t>(i));
  }
  return corpus;
}

}  // namespace refscan
