// Synthetic kernel-source generator.
//
// Produces the SourceTree the checker benches scan, substituting for real
// Linux kernel releases (DESIGN.md §4). Driver-flavoured C functions are
// generated per module according to the Table 5 plan: each planted bug is
// one function exhibiting exactly one anti-pattern instance, surrounded by
// clean functions (balanced refcounting, guarded derefs, correctly-exiting
// smartloops) that keep the checkers' precision honest, plus per-module
// support code (refcounted structs, wrapper APIs, custom smartloop macros)
// that exercises KB discovery. Known-false-positive shapes (the lpfc
// Listing-5 case) are planted per Table 4's FP column.
//
// A seeded maintainer-response model assigns confirmed / no-response /
// patch-rejected to every planted bug per the plan, reproducing the paper's
// patch-committing outcome (240 CFM / 111 NR / 3 PR).

#ifndef REFSCAN_CORPUS_GENERATOR_H_
#define REFSCAN_CORPUS_GENERATOR_H_

#include <string>
#include <vector>

#include "src/checkers/report.h"
#include "src/corpus/plan.h"
#include "src/support/source.h"

namespace refscan {

enum class MaintainerResponse : uint8_t {
  kConfirmed,     // patch applied to mainline
  kNoResponse,    // no reply
  kPatchRejected, // developers disputed the bug (UAD cases)
};

struct PlantedBug {
  std::string file;
  std::string function;
  int anti_pattern = 0;  // 1..12 (missing-increase recorded as 4)
  Impact impact = Impact::kLeak;
  std::string api;
  MaintainerResponse response = MaintainerResponse::kNoResponse;
  // 0 = the anti-pattern is directly visible in the function; N >= 2 = the
  // acquire/release APIs are buried under a chain of N wrapper helpers, so
  // detection needs discovery (depth 2) or interprocedural summaries
  // (depth 3+, and P1/P8 at any depth).
  int wrapper_depth = 0;
};

struct PlantedFalsePositive {
  std::string file;
  std::string function;
};

struct CorpusOptions {
  uint64_t seed = 20230701;
  // Clean (bug-free) functions per module, in addition to the per-module
  // support file. More clean code = harder precision test + larger KLOC.
  int min_clean_functions = 4;
  bool plant_false_positives = true;
  // For each listed depth (>= 2), every module grows one extra file with
  // wrapper-chain variants of P1/P4/P5/P8/P9: the refcounting APIs are
  // wrapped under `depth` layers of helper functions (emitted outermost
  // first, which defeats the two-round discovery pass at depth 3). Empty by
  // default so the base corpus — and every Table 4/5 bench count — stays
  // byte-identical.
  std::vector<int> wrapper_chain_depths;
  // Appends the P10-P12 new-family modules (DESIGN.md §5.12): kernel-idiom
  // raw manipulation / test-and-free / refcount-reset bugs with fixed
  // counterparts, plus uacpi and glib dialect modules whose bugs only
  // surface under the matching --dialect. Off by default so the base corpus
  // — and every Table 4/5 bench count — stays byte-identical.
  bool new_family_modules = false;
  // Appends N generated kernel-realism modules (drivers/kernelish/): the
  // GNU-extension and preprocessor shapes real kernel C is full of —
  // __attribute__, inline asm, statement expressions, typeof, CRLF and
  // backslash-continued directives, line-spliced identifiers — plus, in
  // every other module, one deliberately unparseable function that
  // exercises function-granular error recovery (DESIGN.md §5.15). Every
  // byte is a pure function of (seed, module index). 0 (the default) keeps
  // the base corpus byte-identical.
  int kernelish_modules = 0;
};

struct Corpus {
  SourceTree tree;
  std::vector<PlantedBug> ground_truth;
  std::vector<PlantedFalsePositive> planted_fps;

  // Lookups key on (file, function): generated function names are unique
  // within a module but may repeat across modules.
  const PlantedBug* FindBug(std::string_view file, std::string_view function) const;
  bool IsPlantedFp(std::string_view file, std::string_view function) const;
};

// Generates the corpus for `plan` (defaults to the full Table 5 plan).
Corpus GenerateKernelCorpus(const CorpusOptions& options = {},
                            const std::vector<ModulePlan>& plan = Table5Plan());

}  // namespace refscan

#endif  // REFSCAN_CORPUS_GENERATOR_H_
