// Corpus generation plan.
//
// The plan transcribes the paper's Table 5 (per-module new-bug breakdown):
// which subsystems/modules carry how many instances of each anti-pattern,
// which APIs cause them, and how maintainers responded (confirmed /
// no-response / patch-rejected). The generator (generator.h) turns this
// plan into a synthetic kernel source tree with those bugs planted, which
// substitutes for scanning real kernel releases (see DESIGN.md §4).

#ifndef REFSCAN_CORPUS_PLAN_H_
#define REFSCAN_CORPUS_PLAN_H_

#include <map>
#include <string>
#include <vector>

namespace refscan {

// Internal pattern ids: 1..9 are the paper's P1..P9 and 10..12 are the
// post-paper families (P10 raw manipulation, P11 test-and-free, P12
// refcount reset — DESIGN.md §5.12). kMissingIncrease is the
// missing-increase flavour of P4 (consumed `from` parameter), which the
// checkers report as P4 with UAF impact (§5.2.2, 16 new bugs); it lives
// above 100 so it can never collide with a real checker id.
inline constexpr int kMissingIncrease = 104;

struct ModulePlan {
  std::string subsystem;  // "arch", "drivers", ...
  std::string module;     // "arm", "clk", ...
  std::map<int, int> pattern_counts;  // pattern id -> planted bug count
  std::vector<std::string> apis;      // preferred bug-caused APIs (Table 5 col 3)
  int confirmed = 0;       // bugs confirmed by "maintainers" (0 = none)
  int patch_rejected = 0;  // bugs whose patch was rejected
  bool no_response = false;  // true: every patch got no response (Table 5 "NR")
  int false_positives = 0;   // planted known-FP shapes (Table 4 "#FP")

  int TotalBugs() const;
};

// The full Table 5 plan (54 modules; totals match Table 4: 351 bugs, 240
// confirmed, 3 patch-rejects, 5 false positives).
const std::vector<ModulePlan>& Table5Plan();

// Aggregates for sanity checks / benches.
struct PlanTotals {
  int bugs = 0;
  int confirmed = 0;
  int patch_rejected = 0;
  int false_positives = 0;
  std::map<int, int> per_pattern;          // P1..P9 (kMissingIncrease folded into P4)
  std::map<std::string, int> per_subsystem;
};
PlanTotals ComputePlanTotals(const std::vector<ModulePlan>& plan);

}  // namespace refscan

#endif  // REFSCAN_CORPUS_PLAN_H_
