#include "src/corpus/plan.h"

namespace refscan {

int ModulePlan::TotalBugs() const {
  int n = 0;
  for (const auto& [pattern, count] : pattern_counts) {
    n += count;
  }
  return n;
}

const std::vector<ModulePlan>& Table5Plan() {
  // Transcribed from the paper's Table 5. P4 counts are split between the
  // missing-decrease flavour (id 4) and the missing-increase flavour
  // (kMissingIncrease) so that the 16 missing-increase bugs of §5.2.2 are
  // distributed over the modules with the largest P4 populations.
  static const std::vector<ModulePlan> kPlan = {
      // ---- arch (156 bugs, 91 confirmed, 1 FP)
      {"arch", "arm", {{4, 39}, {kMissingIncrease, 3}, {6, 2}, {7, 2}, {9, 4}},
       {"of_find_compatible_node", "of_find_matching_node"}, 18, 0, false, 0},
      {"arch", "microblaze", {{4, 1}}, {"of_find_matching_node"}, 0, 0, true, 0},
      {"arch", "mips", {{4, 15}, {kMissingIncrease, 2}},
       {"of_find_compatible_node", "of_find_matching_node"}, 16, 0, false, 0},
      {"arch", "powerpc", {{3, 8}, {4, 44}, {kMissingIncrease, 4}, {5, 1}, {6, 2}, {8, 1}, {9, 5}},
       {"of_find_compatible_node", "of_find_node_by_path"}, 55, 0, false, 0},
      {"arch", "sh", {{4, 1}}, {"of_find_compatible_node"}, 0, 0, true, 0},
      {"arch", "sparc", {{2, 3}, {3, 4}, {4, 8}, {kMissingIncrease, 1}, {7, 1}, {9, 1}},
       {"of_find_node_by_name", "for_each_node_by_name"}, 0, 0, true, 1},
      {"arch", "x86", {{4, 2}}, {"of_find_compatible_node", "of_find_matching_node"}, 0, 0, true,
       0},
      {"arch", "xtensa", {{4, 2}}, {"of_find_compatible_node"}, 2, 0, false, 0},

      // ---- drivers (182 bugs, 137 confirmed, 4 FPs)
      {"drivers", "block", {{2, 1}}, {"mdesc_grab"}, 1, 0, false, 0},
      {"drivers", "bus", {{3, 1}, {4, 7}}, {"of_find_matching_node", "of_find_node_by_path"}, 4,
       0, false, 0},
      {"drivers", "clk", {{4, 35}, {kMissingIncrease, 2}},
       {"of_get_node", "of_find_matching_node"}, 36, 0, false, 0},
      {"drivers", "clocksource", {{4, 1}}, {"of_find_compatible_node"}, 0, 0, true, 0},
      {"drivers", "cpufreq", {{4, 4}}, {"of_find_node_by_name", "of_find_matching_node"}, 4, 0,
       false, 0},
      {"drivers", "crypto", {{4, 4}}, {"of_find_compatible_node"}, 4, 0, false, 0},
      {"drivers", "dma", {{3, 1}, {5, 1}}, {"of_parse_phandle", "for_each_child_of_node"}, 1, 0,
       false, 0},
      {"drivers", "edac", {{4, 1}}, {"of_find_compatible_node"}, 0, 0, true, 0},
      {"drivers", "firmware", {{4, 1}}, {"of_find_compatible_node"}, 0, 0, true, 0},
      {"drivers", "gpio", {{4, 2}, {6, 1}, {9, 1}}, {"of_get_parent", "of_node_get"}, 2, 0, false,
       0},
      {"drivers", "gpu", {{3, 3}, {4, 5}, {5, 3}, {6, 2}, {8, 2}, {9, 2}},
       {"of_graph_get_port_by_id", "of_get_node"}, 12, 1, false, 1},
      {"drivers", "hwmon", {{4, 2}}, {"of_find_compatible_node"}, 2, 0, false, 0},
      {"drivers", "i2c", {{3, 2}}, {"device_for_each_child_node", "for_each_child_of_node"}, 1, 0,
       false, 0},
      {"drivers", "iio", {{3, 1}, {4, 1}}, {"device_for_each_child_node", "of_find_node_by_name"},
       1, 0, false, 0},
      {"drivers", "input", {{4, 2}}, {"of_find_node_by_path"}, 2, 0, false, 0},
      {"drivers", "iommu", {{3, 1}}, {"for_each_child_of_node"}, 1, 0, false, 0},
      {"drivers", "irqchip", {{4, 3}}, {"of_find_matching_node", "of_find_node_by_phandle"}, 0, 0,
       true, 0},
      {"drivers", "leds", {{3, 1}}, {"fwnode_for_each_child_node"}, 1, 0, false, 0},
      {"drivers", "macintosh", {{4, 2}, {6, 1}}, {"of_find_compatible_node", "of_node_get"}, 3, 0,
       false, 0},
      {"drivers", "media", {{3, 2}}, {"for_each_compatible_node", "for_each_child_of_node"}, 1, 0,
       false, 0},
      {"drivers", "memory", {{3, 4}, {4, 2}}, {"of_find_node_by_name", "for_each_child_of_node"},
       3, 0, false, 0},
      {"drivers", "mfd", {{1, 1}}, {"pm_runtime_get_sync"}, 1, 0, false, 0},
      {"drivers", "mmc", {{3, 3}, {4, 1}}, {"for_each_child_of_node", "of_find_compatible_node"},
       4, 0, false, 0},
      {"drivers", "net", {{2, 2}, {3, 5}, {4, 10}, {kMissingIncrease, 2}},
       {"for_each_child_of_node", "of_find_compatible_node"}, 16, 0, false, 1},
      {"drivers", "nvme", {{8, 1}}, {"nvmet_fc_tgt_q_put"}, 0, 1, false, 0},
      {"drivers", "of", {{4, 1}}, {"of_parse_phandle"}, 1, 0, false, 0},
      {"drivers", "opp", {{9, 2}}, {"of_node_get"}, 2, 0, false, 0},
      {"drivers", "pci", {{4, 2}, {5, 1}}, {"of_parse_phandle", "of_find_matching_node"}, 1, 0,
       false, 0},
      {"drivers", "perf", {{3, 1}}, {"for_each_cpu_node"}, 1, 0, false, 0},
      {"drivers", "phy", {{3, 1}, {4, 2}}, {"for_each_child_of_node", "of_parse_phandle"}, 1, 0,
       false, 0},
      {"drivers", "pinctrl", {{4, 1}}, {"of_find_node_by_phandle"}, 0, 0, true, 0},
      {"drivers", "platform", {{3, 3}},
       {"device_for_each_child_node", "fwnode_for_each_child_node"}, 2, 0, false, 0},
      {"drivers", "powerpc", {{4, 1}}, {"of_find_compatible_node"}, 1, 0, false, 0},
      {"drivers", "regulator", {{4, 2}}, {"of_find_node_by_name", "of_get_child_by_name"}, 2, 0,
       false, 0},
      {"drivers", "sbus", {{4, 2}}, {"of_find_node_by_path"}, 0, 0, true, 0},
      {"drivers", "soc", {{3, 3}, {4, 7}, {5, 1}, {6, 1}, {9, 1}},
       {"of_find_compatible_node", "of_get_parent"}, 11, 0, false, 1},
      {"drivers", "thermal", {{6, 1}, {9, 1}}, {"of_node_get"}, 2, 0, false, 0},
      {"drivers", "tty", {{2, 1}, {4, 2}, {6, 1}}, {"mdesc_grab", "of_find_node_by_type"}, 3, 0,
       false, 0},
      {"drivers", "ufs", {{4, 1}}, {"of_parse_phandle"}, 1, 0, false, 0},
      {"drivers", "usb", {{4, 5}, {kMissingIncrease, 1}, {8, 1}},
       {"of_find_node_by_name", "usb_serial_put"}, 7, 0, false, 1},
      {"drivers", "video", {{4, 3}}, {"of_find_compatible_node", "of_parse_phandle"}, 2, 0, false,
       0},
      {"drivers", "w1", {{4, 3}, {5, 1}}, {"of_find_matching_node"}, 0, 0, true, 0},

      // ---- include (2 bugs, 2 confirmed)
      {"include", "linux", {{4, 2}}, {"of_find_compatible_node"}, 2, 0, false, 0},

      // ---- net (2 bugs, 1 confirmed, 1 patch-reject)
      {"net", "appletalk", {{4, 1}}, {"dev_hold"}, 1, 0, false, 0},
      {"net", "ipv4", {{8, 1}}, {"sock_put"}, 0, 1, false, 0},

      // ---- sound (9 bugs, 9 confirmed)
      {"sound", "soc", {{4, 7}, {kMissingIncrease, 1}, {5, 1}},
       {"of_find_compatible_node", "of_graph_get_port_parent"}, 9, 0, false, 0},
  };
  return kPlan;
}

PlanTotals ComputePlanTotals(const std::vector<ModulePlan>& plan) {
  PlanTotals totals;
  for (const ModulePlan& m : plan) {
    const int bugs = m.TotalBugs();
    totals.bugs += bugs;
    totals.confirmed += m.confirmed;
    totals.patch_rejected += m.patch_rejected;
    totals.false_positives += m.false_positives;
    totals.per_subsystem[m.subsystem] += bugs;
    for (const auto& [pattern, count] : m.pattern_counts) {
      totals.per_pattern[pattern == kMissingIncrease ? 4 : pattern] += count;
    }
  }
  return totals;
}

}  // namespace refscan
