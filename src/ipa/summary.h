// Interprocedural ref-delta summaries (stage 2.5 of the scan pipeline).
//
// For every function in the call graph we compute a summary of its net
// refcount effect: per parameter the 𝒢/𝒫 delta split by path class (normal
// vs error return), whether the returned pointer carries an acquired
// reference, whether the increment survives error returns (the 𝒢_E shape),
// which parameters the body dereferences or stores into longer-lived state,
// and the net effect on escaped globals. Summaries are computed bottom-up
// over the SCC condensation of the call graph — callees first — so a
// wrapper's summary is built with its helpers' summaries already folded
// into the knowledge base. Recursive SCCs get one extra compute+register
// iteration, which reaches the fixpoint for the monotone flag lattice
// (returns_error / may_return_null / consumed_param only ever turn on).
//
// Injection happens through the knowledge base, not the checkers: a helper
// with a consistent net effect registers as a discovered RefApiInfo (so its
// call sites grow synthetic 𝒢/𝒫 events when the CPG is built), a helper
// that dereferences a parameter registers a param-deref fact (synthetic 𝒟),
// and a helper that stores a parameter into longer-lived state registers an
// ownership sink (synthetic escaping 𝒜). The intraprocedural checkers then
// fire through wrapper chains without any checker changes.

#ifndef REFSCAN_IPA_SUMMARY_H_
#define REFSCAN_IPA_SUMMARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ipa/callgraph.h"
#include "src/kb/kb.h"
#include "src/support/threadpool.h"

namespace refscan {

// Net 𝒢/𝒫 effect on one parameter, split by path class. A class is
// "consistent" when every enumerated path of that class agrees on the
// delta; only consistent deltas are trusted for KB injection.
struct ParamSummary {
  std::string name;
  int normal_delta = 0;
  bool normal_consistent = true;
  bool saw_normal = false;  // at least one normal-class path exists
  int error_delta = 0;
  bool error_consistent = true;
  bool saw_error = false;
  bool derefed = false;         // body dereferences the parameter
  bool deref_after_put = false; // ...while the net delta was negative
  bool escapes = false;         // stored into longer-lived state
};

struct FunctionSummary {
  std::string name;
  std::string file;
  uint32_t line = 0;
  std::vector<ParamSummary> params;

  bool returns_pointer = false;
  bool returns_acquired = false;  // a path returns an object holding +1
  bool may_return_null = false;
  bool error_increment = false;   // 𝒢_E: +1 survives an error-class path
  int consumed_param = -1;        // param netted -1 while returning acquired
  bool tests_zero = false;        // returns the raw result of a tests_zero
                                  // decrease API (dec_and_test wrapper)
  int global_delta = 0;           // net delta on escaped globals (normal paths)
  bool truncated = false;         // path enumeration hit the cap
  bool registered = false;        // injected a new or upgraded KB fact
};

struct SummaryOptions {
  size_t max_paths_per_function = 512;
};

struct SummaryResult {
  CallGraph graph;
  std::vector<FunctionSummary> summaries;  // call-graph node order
  size_t registered_apis = 0;              // new RefApiInfo entries
  size_t upgraded_apis = 0;                // flag upgrades on discovered entries
  size_t registered_derefs = 0;            // param-deref facts
  size_t registered_sinks = 0;             // ownership sinks
};

// Computes summaries bottom-up over `units` and injects the derived facts
// into `kb`. Parallel within an SCC level via `pool`; registration happens
// serially in node order between levels, so the resulting KB — and with it
// every downstream report — is byte-identical at any pool width. Built-in
// KB entries are never modified; discovery-registered entries only gain
// flags the textual pass cannot infer.
SummaryResult ComputeSummaries(const std::vector<const TranslationUnit*>& units,
                               KnowledgeBase& kb, const SummaryOptions& options,
                               ThreadPool& pool);

// Renderings for the `refscan summaries` subcommand. Deterministic: both
// follow call-graph node order.
std::string SummariesToJson(const SummaryResult& result);
std::string SummariesToText(const SummaryResult& result);

}  // namespace refscan

#endif  // REFSCAN_IPA_SUMMARY_H_
