// Whole-tree call graph for the interprocedural summary stage (§5.4 / stage
// 2.5 of the scan pipeline).
//
// Nodes are function definitions. When a name repeats across units the first
// definition wins — units arrive in path-sorted order, so the choice is
// deterministic. Edges are direct calls by callee name plus indirect calls
// through ops-struct function pointers: a designated initializer
// `.probe = foo_probe` publishes `foo_probe` under the field name "probe",
// and a call through any member named `probe` edges to every published
// function. This reuses the same initializer data the P6 checker pairs
// probe/remove callbacks with.
//
// Tarjan's algorithm (iterative, so deep wrapper chains cannot overflow the
// stack) condenses the graph into strongly connected components, and each
// SCC gets a bottom-up level: level 0 SCCs call nothing in the graph, and a
// caller's SCC always sits strictly above every callee's. Two SCCs on the
// same level therefore never depend on each other, which is what lets the
// summary stage compute one level at a time in parallel.

#ifndef REFSCAN_IPA_CALLGRAPH_H_
#define REFSCAN_IPA_CALLGRAPH_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/ast/ast.h"

namespace refscan {

struct CallGraphNode {
  std::string name;
  const FunctionDef* fn = nullptr;
  const TranslationUnit* unit = nullptr;
  std::vector<int> callees;  // deduplicated, ascending node index
  int scc = -1;              // SCC id; callees' SCCs are numbered lower
  int level = 0;             // bottom-up SCC level: 0 = calls nothing here
};

struct CallGraph {
  std::vector<CallGraphNode> nodes;               // unit/definition order
  std::map<std::string, int, std::less<>> index;  // name -> node id
  std::vector<std::vector<int>> sccs;             // SCC id -> members (ascending)
  int levels = 0;                                 // max level + 1; 0 when empty
  size_t direct_edges = 0;
  size_t indirect_edges = 0;  // through ops-struct function pointers

  // Node id for `name`, or -1.
  int Find(std::string_view name) const;
};

// Builds the call graph over every function defined in `units`. The units
// (and their ASTs) must outlive the graph.
CallGraph BuildCallGraph(const std::vector<const TranslationUnit*>& units);

}  // namespace refscan

#endif  // REFSCAN_IPA_CALLGRAPH_H_
