#include "src/ipa/callgraph.h"

#include <algorithm>
#include <set>

namespace refscan {

int CallGraph::Find(std::string_view name) const {
  const auto it = index.find(name);
  return it == index.end() ? -1 : it->second;
}

namespace {

// Iterative Tarjan SCC. Deterministic: roots are tried in node order and
// callee lists are sorted, so SCC ids depend only on the graph. Components
// pop in reverse topological order — every SCC a member calls into is
// already numbered when its own SCC forms, which makes the bottom-up level
// a single pass.
void CondenseSccs(CallGraph& g) {
  const int n = static_cast<int>(g.nodes.size());
  std::vector<int> disc(static_cast<size_t>(n), -1);
  std::vector<int> low(static_cast<size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<size_t>(n), false);
  std::vector<int> stack;
  int next_disc = 0;

  struct Frame {
    int v = 0;
    size_t child = 0;
  };
  std::vector<Frame> frames;

  for (int root = 0; root < n; ++root) {
    if (disc[static_cast<size_t>(root)] >= 0) {
      continue;
    }
    frames.push_back({root, 0});
    while (!frames.empty()) {
      Frame& top = frames.back();
      const size_t v = static_cast<size_t>(top.v);
      if (top.child == 0) {
        disc[v] = low[v] = next_disc++;
        stack.push_back(top.v);
        on_stack[v] = true;
      }
      if (top.child < g.nodes[v].callees.size()) {
        const int w = g.nodes[v].callees[top.child++];
        const size_t wi = static_cast<size_t>(w);
        if (disc[wi] < 0) {
          frames.push_back({w, 0});
        } else if (on_stack[wi]) {
          low[v] = std::min(low[v], disc[wi]);
        }
        continue;
      }
      // All children done: close the SCC if v is its root, then propagate
      // lowlink to the parent frame.
      if (low[v] == disc[v]) {
        const int scc_id = static_cast<int>(g.sccs.size());
        std::vector<int> members;
        while (true) {
          const int w = stack.back();
          stack.pop_back();
          on_stack[static_cast<size_t>(w)] = false;
          g.nodes[static_cast<size_t>(w)].scc = scc_id;
          members.push_back(w);
          if (w == top.v) {
            break;
          }
        }
        std::sort(members.begin(), members.end());
        // Level: one above the highest callee SCC (cross edges only).
        int level = 0;
        for (const int m : members) {
          for (const int callee : g.nodes[static_cast<size_t>(m)].callees) {
            const CallGraphNode& target = g.nodes[static_cast<size_t>(callee)];
            if (target.scc != scc_id) {
              level = std::max(level, target.level + 1);
            }
          }
        }
        for (const int m : members) {
          g.nodes[static_cast<size_t>(m)].level = level;
        }
        g.levels = std::max(g.levels, level + 1);
        g.sccs.push_back(std::move(members));
      }
      const int finished = top.v;
      frames.pop_back();
      if (!frames.empty()) {
        const size_t parent = static_cast<size_t>(frames.back().v);
        low[parent] = std::min(low[parent], low[static_cast<size_t>(finished)]);
      }
    }
  }
}

}  // namespace

CallGraph BuildCallGraph(const std::vector<const TranslationUnit*>& units) {
  CallGraph g;

  // Nodes: every defined function, first definition of a name wins.
  for (const TranslationUnit* unit : units) {
    for (const FunctionDef& fn : unit->functions) {
      if (fn.body == nullptr || g.index.contains(fn.name.view())) {
        continue;
      }
      CallGraphNode node;
      node.name = fn.name.str();
      node.fn = &fn;
      node.unit = unit;
      g.index.emplace(fn.name.str(), static_cast<int>(g.nodes.size()));
      g.nodes.push_back(std::move(node));
    }
  }

  // Function-pointer publication: `.probe = foo_probe` in any global's
  // designated initializer makes "probe" resolve to foo_probe.
  std::map<std::string, std::set<int>, std::less<>> by_field;
  for (const TranslationUnit* unit : units) {
    for (const GlobalVar& global : unit->globals) {
      for (const DesignatedInit& init : global.inits) {
        const int target = g.Find(init.value.view());
        if (target >= 0) {
          by_field[init.field.str()].insert(target);
        }
      }
    }
  }

  // Edges.
  for (CallGraphNode& node : g.nodes) {
    std::set<int> direct;
    std::set<int> indirect;
    ForEachExpr(*node.fn->body, [&](const Expr& e) {
      if (e.kind != Expr::Kind::kCall || e.args.empty() || e.args[0] == nullptr) {
        return;
      }
      const Symbol callee = e.CalleeName();
      if (!callee.empty()) {
        if (const int target = g.Find(callee.view()); target >= 0) {
          direct.insert(target);
        }
        return;
      }
      // Call through a member: `ops->probe(dev)` fans out to every function
      // published under the field name.
      if (e.args[0]->kind == Expr::Kind::kMember) {
        if (const auto it = by_field.find(e.args[0]->value.view()); it != by_field.end()) {
          indirect.insert(it->second.begin(), it->second.end());
        }
      }
    });
    g.direct_edges += direct.size();
    for (const int target : indirect) {
      if (!direct.contains(target)) {
        ++g.indirect_edges;
      }
    }
    direct.insert(indirect.begin(), indirect.end());
    node.callees.assign(direct.begin(), direct.end());
  }

  CondenseSccs(g);
  return g;
}

}  // namespace refscan
