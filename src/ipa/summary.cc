#include "src/ipa/summary.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/cfg/cfg.h"
#include "src/cpg/cpg.h"
#include "src/support/strings.h"

namespace refscan {

namespace {

// Per-path classification and net effect, folded into the summary by
// MergePath. A path is error-class when it exits through an error context,
// returns an error code, or returns the raw result of a returns-error API —
// the last rule is what propagates 𝒢_E through `return helper();` chains,
// which the textual discovery pass (literal `return -EINVAL` forms only)
// can never see.
struct PathEffect {
  // Roots are memoized RootSymbols; std::map<Symbol, ...> orders by text, so
  // iteration (the global-delta fold) stays interleaving-independent.
  std::map<Symbol, int> delta;                      // root -> net 𝒢-𝒫
  std::map<Symbol, const RefApiInfo*> acquired_by;  // root -> last 𝒢 API
  bool is_error = false;
  bool returns_acquired = false;
  const RefApiInfo* return_api = nullptr;  // API whose reference is returned
  int global_delta = 0;
};

void MergeClass(int delta, bool& saw, int& value, bool& consistent) {
  if (!saw) {
    saw = true;
    value = delta;
  } else if (value != delta) {
    consistent = false;
  }
}

void MergePath(const PathEffect& path, const std::vector<Symbol>& param_syms,
               FunctionSummary& s) {
  for (size_t i = 0; i < s.params.size(); ++i) {
    ParamSummary& ps = s.params[i];
    const auto it = path.delta.find(param_syms[i]);
    const int d = it == path.delta.end() ? 0 : it->second;
    if (path.is_error) {
      MergeClass(d, ps.saw_error, ps.error_delta, ps.error_consistent);
      if (ps.error_consistent && ps.error_delta >= 1) {
        s.error_increment = true;
      }
    } else {
      MergeClass(d, ps.saw_normal, ps.normal_delta, ps.normal_consistent);
    }
  }
  if (path.returns_acquired) {
    s.returns_acquired = true;
    if (path.return_api != nullptr && path.return_api->may_return_null) {
      s.may_return_null = true;
    }
    // A find-like wrapper: returns an acquired object while netting one of
    // its parameters down (of_find_*(from) consuming the cursor).
    if (s.consumed_param < 0) {
      for (size_t i = 0; i < s.params.size(); ++i) {
        const auto it = path.delta.find(param_syms[i]);
        if (it != path.delta.end() && it->second <= -1) {
          s.consumed_param = static_cast<int>(i);
          break;
        }
      }
    }
  }
  if (!path.is_error && path.global_delta != 0 && s.global_delta == 0) {
    s.global_delta = path.global_delta;
  }
}

FunctionSummary SummarizeFunction(const CallGraphNode& node, const KnowledgeBase& kb,
                                  size_t max_paths) {
  const FunctionDef& fn = *node.fn;
  FunctionSummary s;
  s.name = node.name;
  s.file = node.unit->path;
  s.line = fn.line;
  s.returns_pointer = fn.return_type.view().find('*') != std::string_view::npos;
  std::vector<Symbol> param_syms;
  param_syms.reserve(fn.params.size());
  for (const Param& p : fn.params) {
    ParamSummary ps;
    ps.name = p.name.str();
    s.params.push_back(std::move(ps));
    param_syms.push_back(p.name);
  }
  if (fn.body == nullptr) {
    return s;
  }

  // Explicit `return NULL` anywhere makes the returned pointer nullable
  // regardless of which path class it sits on.
  ForEachStmt(*fn.body, [&s](const Stmt& st) {
    if (st.kind == Stmt::Kind::kReturn && st.expr != nullptr &&
        st.expr->kind == Expr::Kind::kIdent && st.expr->value == "NULL") {
      s.may_return_null = true;
    }
  });

  const Cfg cfg = BuildCfg(fn);
  const Cpg cpg = BuildCpg(cfg, kb);
  SymbolSet param_roots;
  for (const Symbol p : param_syms) {
    if (!p.empty()) {
      param_roots.insert(p);
    }
  }

  const bool complete = cfg.EnumeratePaths(
      [&](const std::vector<int>& path_nodes) {
        PathEffect path;
        const CfgNode* last_return = nullptr;
        Symbol returned_object;
        for (const int n : path_nodes) {
          const CfgNode& cn = cfg.node(n);
          if (cn.stmt != nullptr && cn.stmt->kind == Stmt::Kind::kReturn) {
            last_return = &cn;
          }
          for (const SemEvent& ev : cpg.events(n)) {
            const Symbol root = RootSymbol(ev.object);
            switch (ev.op) {
              case SemOp::kIncrease:
                if (!root.empty()) {
                  ++path.delta[root];
                  path.acquired_by[root] = ev.api;
                }
                break;
              case SemOp::kDecrease:
                if (!root.empty()) {
                  --path.delta[root];
                }
                break;
              case SemOp::kDeref:
                if (param_roots.contains(root)) {
                  for (size_t p = 0; p < s.params.size(); ++p) {
                    if (param_syms[p] == root) {
                      s.params[p].derefed = true;
                      const auto it = path.delta.find(root);
                      if (it != path.delta.end() && it->second < 0) {
                        s.params[p].deref_after_put = true;
                      }
                    }
                  }
                }
                break;
              case SemOp::kAssign:
                if (ev.escapes) {
                  const Symbol src = RootSymbol(ev.aux);
                  for (size_t p = 0; p < s.params.size(); ++p) {
                    if (!src.empty() && param_syms[p] == src) {
                      s.params[p].escapes = true;
                    }
                  }
                }
                break;
              case SemOp::kReturn:
                returned_object = ev.object;
                break;
              default:
                break;
            }
          }
        }

        // Path class.
        if (last_return != nullptr) {
          path.is_error = last_return->is_error_context ||
                          (last_return->stmt != nullptr && ReturnsErrorCode(*last_return->stmt));
          if (!path.is_error && last_return->expr != nullptr &&
              last_return->expr->kind == Expr::Kind::kCall) {
            const RefApiInfo* callee = kb.FindApi(last_return->expr->CalleeName());
            if (callee != nullptr && callee->returns_error) {
              path.is_error = true;
            }
          }
        }

        // Returned reference: a named object holding +1, or the raw result
        // of a returns-object increase API (`return of_find_...();`).
        const Symbol ret_root = RootSymbol(returned_object);
        if (!ret_root.empty()) {
          const auto it = path.delta.find(ret_root);
          if (it != path.delta.end() && it->second > 0) {
            path.returns_acquired = true;
            const auto api = path.acquired_by.find(ret_root);
            path.return_api = api == path.acquired_by.end() ? nullptr : api->second;
          }
        } else if (last_return != nullptr && last_return->expr != nullptr &&
                   last_return->expr->kind == Expr::Kind::kCall) {
          const RefApiInfo* callee = kb.FindApi(last_return->expr->CalleeName());
          if (callee != nullptr && callee->direction == RefDirection::kIncrease &&
              callee->returns_object) {
            path.returns_acquired = true;
            path.return_api = callee;
          }
          // `return refcount_dec_and_test(...);` — the wrapper relays the
          // zero-test to its caller, so it inherits dec_and_test semantics.
          if (callee != nullptr && callee->direction == RefDirection::kDecrease &&
              callee->tests_zero) {
            s.tests_zero = true;
          }
        }

        // Escaped-global effect: deltas on roots that are neither
        // parameters nor locals.
        for (const auto& [root, d] : path.delta) {
          if (!param_roots.contains(root) && !cpg.locals().contains(root)) {
            path.global_delta += d;
          }
        }

        MergePath(path, param_syms, s);
      },
      max_paths);
  s.truncated = !complete;
  return s;
}

// The delta a caller can rely on: normal-class paths when any exist (an
// error-class cleanup difference is a deviation flag, not a different
// direction), else error-class paths (`return get_helper();` has no
// normal-class path at all).
int PrimaryDelta(const ParamSummary& ps, bool& consistent) {
  if (ps.saw_normal) {
    consistent = ps.normal_consistent;
    return ps.normal_delta;
  }
  if (ps.saw_error) {
    consistent = ps.error_consistent;
    return ps.error_delta;
  }
  consistent = false;
  return 0;
}

// Folds one summary into the KB. `own` tracks names this summary stage
// registered itself, which may be overwritten on the second iteration over
// a recursive SCC; built-in entries are untouched and discovery-registered
// entries only gain deviation flags the textual pass cannot infer.
void InjectSummary(FunctionSummary& s, KnowledgeBase& kb, std::set<std::string>& own,
                   SummaryResult& out) {
  if (s.truncated) {
    return;  // partial path coverage: do not trust the deltas
  }

  // Candidate API shape.
  const bool returns_acquired_object = s.returns_pointer && s.returns_acquired;
  int inc_param = -1;
  int dec_param = -1;
  for (size_t i = 0; i < s.params.size(); ++i) {
    bool consistent = false;
    const int d = PrimaryDelta(s.params[i], consistent);
    if (!consistent) {
      continue;
    }
    if (d >= 1 && inc_param < 0) {
      inc_param = static_cast<int>(i);
    }
    if (d <= -1 && dec_param < 0) {
      dec_param = static_cast<int>(i);
    }
  }

  RefApiInfo* existing = kb.FindApiMutable(s.name);
  if (existing != nullptr && !own.contains(s.name)) {
    if (!existing->discovered || existing->direction != RefDirection::kIncrease) {
      return;
    }
    // Refinement: fields mutate in place (entry addresses are stable), and
    // every flag only ever turns on, so the SCC fixpoint is monotone.
    bool changed = false;
    if (!existing->returns_object && s.error_increment && !existing->returns_error) {
      existing->returns_error = true;
      changed = true;
    }
    if (existing->returns_object && s.may_return_null && !existing->may_return_null) {
      existing->may_return_null = true;
      changed = true;
    }
    if (existing->consumed_param < 0 && s.consumed_param >= 0) {
      existing->consumed_param = s.consumed_param;
      changed = true;
    }
    if (changed) {
      s.registered = true;
      ++out.upgraded_apis;
    }
    return;
  }

  if (returns_acquired_object || inc_param >= 0 || dec_param >= 0) {
    RefApiInfo info;
    info.name = s.name;
    if (returns_acquired_object || inc_param >= 0) {
      info.direction = RefDirection::kIncrease;
      info.returns_object = returns_acquired_object;
      info.object_param = returns_acquired_object ? -1 : inc_param;
      info.may_return_null = returns_acquired_object && s.may_return_null;
      info.returns_error = !returns_acquired_object && s.error_increment;
      info.consumed_param = s.consumed_param;
    } else {
      info.direction = RefDirection::kDecrease;
      info.object_param = dec_param;
      info.tests_zero = s.tests_zero;
    }
    info.hidden = !NameSoundsLikeRefcounting(info.name);
    info.category = info.hidden ? ApiCategory::kEmbedded : ApiCategory::kSpecific;
    info.discovered = true;
    kb.AddApi(std::move(info));
    if (own.insert(s.name).second) {
      ++out.registered_apis;
    }
    s.registered = true;
    return;
  }

  // Not a refcounting API: publish deref and escape facts for plain
  // helpers so call sites grow synthetic 𝒟 / escaping 𝒜 events.
  std::vector<int> derefs;
  int sink_param = -1;
  for (size_t i = 0; i < s.params.size(); ++i) {
    if (s.params[i].derefed) {
      derefs.push_back(static_cast<int>(i));
    }
    if (s.params[i].escapes && sink_param < 0) {
      sink_param = static_cast<int>(i);
    }
  }
  if (!derefs.empty() && kb.FindParamDerefs(s.name) == nullptr) {
    kb.AddParamDerefs(s.name, std::move(derefs));
    s.registered = true;
    ++out.registered_derefs;
  }
  if (sink_param >= 0 && kb.FindOwnershipSink(s.name) < 0) {
    kb.AddOwnershipSink(s.name, sink_param);
    s.registered = true;
    ++out.registered_sinks;
  }
}

}  // namespace

SummaryResult ComputeSummaries(const std::vector<const TranslationUnit*>& units,
                               KnowledgeBase& kb, const SummaryOptions& options,
                               ThreadPool& pool) {
  SummaryResult out;
  out.graph = BuildCallGraph(units);
  const CallGraph& g = out.graph;
  out.summaries.resize(g.nodes.size());

  // SCCs grouped by bottom-up level; levels run callees-first so a
  // wrapper's helpers are already folded into the KB when it is summarised.
  std::vector<std::vector<int>> sccs_by_level(static_cast<size_t>(g.levels));
  for (size_t scc = 0; scc < g.sccs.size(); ++scc) {
    const int level = g.nodes[static_cast<size_t>(g.sccs[scc][0])].level;
    sccs_by_level[static_cast<size_t>(level)].push_back(static_cast<int>(scc));
  }

  std::set<std::string> own;
  for (std::vector<int>& level_sccs : sccs_by_level) {
    std::vector<int> work;
    bool has_cycle = false;
    for (const int scc : level_sccs) {
      const std::vector<int>& members = g.sccs[static_cast<size_t>(scc)];
      has_cycle |= members.size() > 1;
      for (const int n : members) {
        const CallGraphNode& cn = g.nodes[static_cast<size_t>(n)];
        has_cycle |= std::binary_search(cn.callees.begin(), cn.callees.end(), n);
        work.push_back(n);
      }
    }
    std::sort(work.begin(), work.end());

    // Nodes on one level never call each other, so their summaries only
    // read the (frozen) KB and can run in parallel; registration stays
    // serial in node order, which keeps the KB — and every report built
    // from it — deterministic. Recursive SCCs get one extra iteration: the
    // second pass sees the first pass's own registrations and settles the
    // monotone deviation flags.
    const int iterations = has_cycle ? 2 : 1;
    for (int iteration = 0; iteration < iterations; ++iteration) {
      std::vector<FunctionSummary> computed =
          ParallelMap(pool, work.size(), [&](size_t i) {
            return SummarizeFunction(g.nodes[static_cast<size_t>(work[i])], kb,
                                     options.max_paths_per_function);
          });
      for (size_t i = 0; i < work.size(); ++i) {
        FunctionSummary& s = out.summaries[static_cast<size_t>(work[i])];
        s = std::move(computed[i]);
        InjectSummary(s, kb, own, out);
      }
    }
  }
  return out;
}

namespace {

void AppendJsonString(std::string& out, std::string_view text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

bool SummaryIsInteresting(const FunctionSummary& s) {
  if (s.registered || s.returns_acquired || s.error_increment || s.may_return_null ||
      s.consumed_param >= 0 || s.global_delta != 0 || s.truncated) {
    return true;
  }
  for (const ParamSummary& ps : s.params) {
    if (ps.normal_delta != 0 || ps.error_delta != 0 || ps.derefed || ps.escapes) {
      return true;
    }
  }
  return false;
}

std::string DeltaText(const ParamSummary& ps) {
  std::string out;
  if (ps.saw_normal) {
    out += StrFormat("normal%s%+d", ps.normal_consistent ? "=" : "~", ps.normal_delta);
  }
  if (ps.saw_error) {
    if (!out.empty()) {
      out += " ";
    }
    out += StrFormat("error%s%+d", ps.error_consistent ? "=" : "~", ps.error_delta);
  }
  if (out.empty()) {
    out = "no paths";
  }
  return out;
}

}  // namespace

std::string SummariesToJson(const SummaryResult& result) {
  const CallGraph& g = result.graph;
  std::string out = "{\n";
  out += StrFormat(
      "  \"callgraph\": {\"functions\": %zu, \"direct_edges\": %zu, "
      "\"indirect_edges\": %zu, \"sccs\": %zu, \"levels\": %d, \"nodes\": [\n",
      g.nodes.size(), g.direct_edges, g.indirect_edges, g.sccs.size(), g.levels);
  for (size_t i = 0; i < g.nodes.size(); ++i) {
    const CallGraphNode& node = g.nodes[i];
    out += "    {\"name\": ";
    AppendJsonString(out, node.name);
    out += ", \"file\": ";
    AppendJsonString(out, node.unit->path);
    out += StrFormat(", \"line\": %u, \"scc\": %d, \"level\": %d, \"callees\": [",
                     node.fn->line, node.scc, node.level);
    for (size_t c = 0; c < node.callees.size(); ++c) {
      if (c > 0) {
        out += ", ";
      }
      AppendJsonString(out, g.nodes[static_cast<size_t>(node.callees[c])].name);
    }
    out += "]}";
    out += i + 1 < g.nodes.size() ? ",\n" : "\n";
  }
  out += "  ]},\n  \"summaries\": [\n";
  for (size_t i = 0; i < result.summaries.size(); ++i) {
    const FunctionSummary& s = result.summaries[i];
    out += "    {\"name\": ";
    AppendJsonString(out, s.name);
    out += ", \"file\": ";
    AppendJsonString(out, s.file);
    out += StrFormat(", \"line\": %u, \"params\": [", s.line);
    for (size_t p = 0; p < s.params.size(); ++p) {
      const ParamSummary& ps = s.params[p];
      if (p > 0) {
        out += ", ";
      }
      out += "{\"name\": ";
      AppendJsonString(out, ps.name);
      out += StrFormat(
          ", \"normal_delta\": %d, \"normal_consistent\": %s, \"error_delta\": %d, "
          "\"error_consistent\": %s, \"derefed\": %s, \"deref_after_put\": %s, "
          "\"escapes\": %s}",
          ps.saw_normal ? ps.normal_delta : 0, ps.normal_consistent ? "true" : "false",
          ps.saw_error ? ps.error_delta : 0, ps.error_consistent ? "true" : "false",
          ps.derefed ? "true" : "false", ps.deref_after_put ? "true" : "false",
          ps.escapes ? "true" : "false");
    }
    out += StrFormat(
        "], \"returns_acquired\": %s, \"may_return_null\": %s, \"error_increment\": %s, "
        "\"consumed_param\": %d, \"global_delta\": %d, \"truncated\": %s, "
        "\"registered\": %s}",
        s.returns_acquired ? "true" : "false", s.may_return_null ? "true" : "false",
        s.error_increment ? "true" : "false", s.consumed_param, s.global_delta,
        s.truncated ? "true" : "false", s.registered ? "true" : "false");
    out += i + 1 < result.summaries.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string SummariesToText(const SummaryResult& result) {
  const CallGraph& g = result.graph;
  std::string out = StrFormat(
      "call graph: %zu functions, %zu direct + %zu fn-pointer edges, %zu SCCs over %d "
      "levels\n"
      "injected: %zu new APIs, %zu flag upgrades, %zu deref facts, %zu ownership sinks\n\n",
      g.nodes.size(), g.direct_edges, g.indirect_edges, g.sccs.size(), g.levels,
      result.registered_apis, result.upgraded_apis, result.registered_derefs,
      result.registered_sinks);
  size_t interesting = 0;
  for (const FunctionSummary& s : result.summaries) {
    if (!SummaryIsInteresting(s)) {
      continue;
    }
    ++interesting;
    out += StrFormat("%s:%u: %s()%s%s\n", s.file.c_str(), s.line, s.name.c_str(),
                     s.registered ? " [injected]" : "", s.truncated ? " [truncated]" : "");
    for (const ParamSummary& ps : s.params) {
      if (!ps.saw_normal && !ps.saw_error && !ps.derefed && !ps.escapes) {
        continue;
      }
      out += StrFormat("    param %s: %s%s%s%s\n", ps.name.c_str(), DeltaText(ps).c_str(),
                       ps.derefed ? ", derefs" : "",
                       ps.deref_after_put ? " (after put!)" : "",
                       ps.escapes ? ", escapes" : "");
    }
    std::string facts;
    if (s.returns_acquired) {
      facts += s.may_return_null ? "returns acquired (may be NULL)" : "returns acquired";
    }
    if (s.error_increment) {
      facts += facts.empty() ? "" : "; ";
      facts += "increment survives error paths (G_E)";
    }
    if (s.consumed_param >= 0) {
      facts += facts.empty() ? "" : "; ";
      facts += StrFormat("consumes param %d", s.consumed_param);
    }
    if (s.global_delta != 0) {
      facts += facts.empty() ? "" : "; ";
      facts += StrFormat("global delta %+d", s.global_delta);
    }
    if (!facts.empty()) {
      out += "    " + facts + "\n";
    }
  }
  out += StrFormat("\n%zu of %zu functions carry a non-trivial summary.\n", interesting,
                   result.summaries.size());
  return out;
}

}  // namespace refscan
