#include "src/serve/protocol.h"

#include "src/cache/cache.h"
#include "src/cache/serial.h"
#include "src/checkers/scan_stages.h"

namespace refscan {

std::string EncodeScanRequest(const SourceTree& tree, const ScanOptions& options) {
  ByteWriter w;
  WriteScanOptionsWire(w, options);
  w.U32(static_cast<uint32_t>(tree.size()));
  for (const auto& [path, file] : tree.files()) {
    w.Str(path);
    w.Str(file.text());
  }
  return w.TakeBytes();
}

bool DecodeScanRequest(std::string_view payload, SourceTree& tree, ScanOptions& options) {
  ByteReader r(payload);
  if (!ReadScanOptionsWire(r, options)) {
    return false;
  }
  const uint32_t nfiles = r.Count();
  for (uint32_t i = 0; r.ok() && i < nfiles; ++i) {
    std::string path = r.Str();
    std::string text = r.Str();
    if (r.ok()) {
      tree.Add(std::move(path), std::move(text));
    }
  }
  return r.ok() && r.AtEnd();
}

std::string EncodeScanResult(const ScanResult& result) {
  ByteWriter w;
  CachedFileReports reports;
  reports.reports = result.reports;
  w.Str(SerializeReports(reports));
  const auto& fields = ScanStatsFields();
  w.U32(static_cast<uint32_t>(fields.size()));
  for (const ScanStatsField& f : fields) {
    w.U64(result.stats.*f.member);
  }
  w.U32(static_cast<uint32_t>(result.failures.size()));
  for (const FileFailure& f : result.failures) {
    w.Str(f.path);
    w.U8(static_cast<uint8_t>(f.stage));
    w.U8(static_cast<uint8_t>(f.kind));
    w.Str(f.what);
    w.I32(f.retries);
  }
  w.U32(static_cast<uint32_t>(result.degraded_functions.size()));
  for (const DegradedFunctionReport& d : result.degraded_functions) {
    w.Str(d.file);
    w.Str(d.function);
    w.U32(d.line);
    w.Str(d.what);
  }
  w.Bool(result.aborted);
  w.Str(result.abort_reason);
  return w.TakeBytes();
}

bool DecodeScanResult(std::string_view payload, ScanResult& result) {
  ByteReader r(payload);
  const std::string report_bytes = r.Str();
  if (!r.ok()) {
    return false;
  }
  std::optional<CachedFileReports> reports = DeserializeReports(report_bytes);
  if (!reports) {
    return false;
  }
  result.reports = std::move(reports->reports);
  const auto& fields = ScanStatsFields();
  if (r.U32() != fields.size()) {
    return false;  // stats-table skew: refuse rather than misattribute
  }
  for (const ScanStatsField& f : fields) {
    result.stats.*f.member = static_cast<size_t>(r.U64());
  }
  const uint32_t nfailures = r.Count();
  result.failures.clear();
  for (uint32_t i = 0; r.ok() && i < nfailures; ++i) {
    FileFailure f;
    f.path = r.Str();
    f.stage = static_cast<FailureStage>(r.U8());
    f.kind = static_cast<FailureKind>(r.U8());
    f.what = r.Str();
    f.retries = r.I32();
    result.failures.push_back(std::move(f));
  }
  const uint32_t ndegraded = r.Count();
  result.degraded_functions.clear();
  for (uint32_t i = 0; r.ok() && i < ndegraded; ++i) {
    DegradedFunctionReport d;
    d.file = r.Str();
    d.function = r.Str();
    d.line = r.U32();
    d.what = r.Str();
    result.degraded_functions.push_back(std::move(d));
  }
  result.aborted = r.Bool();
  result.abort_reason = r.Str();
  return r.ok() && r.AtEnd();
}

}  // namespace refscan
