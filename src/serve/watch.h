// Watch mode for the resident service: `refscan serve SOCKET --watch TREE`.
//
// A polling rescan loop over one on-disk tree, sharing the server's
// resident MemoryStore — so each generation's rescan is an incremental
// warm scan (unchanged files replay cached facts and report shards), and
// what gets printed is the *delta*: reports that appeared since the last
// generation and reports that disappeared. BugReport::Key() — the report
// dedup/ordering key — is the delta identity, so a report counts as "the
// same" across generations exactly when the dedup pass would have merged
// them within one scan.

#ifndef REFSCAN_SERVE_WATCH_H_
#define REFSCAN_SERVE_WATCH_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/checkers/engine.h"

namespace refscan {

class ObjectStore;

// Reports that appeared / disappeared between two scans, each sorted by
// report order (Key()).
struct ReportDelta {
  std::vector<BugReport> fresh;
  std::vector<BugReport> fixed;
};

ReportDelta ComputeReportDelta(const std::vector<BugReport>& before,
                               const std::vector<BugReport>& after);

// One generation's delta block, deterministic:
//   generation 3: 12 report(s), +2 fresh, -1 fixed
//   + P4 drivers/net/foo.c:120 [bar_get] message
//   - P1 drivers/net/foo.c:88 [baz_probe] message
std::string FormatWatchDelta(uint64_t generation, const ReportDelta& delta, size_t total);

struct WatchConfig {
  std::string tree_dir;
  uint32_t poll_ms = 500;
};

// Polls `tree_dir` until `stop` flips: reload, fingerprint, and — on any
// content change (and on the first pass) — rescan against `store` and print
// the delta to `out`. Returns the number of generations scanned.
uint64_t RunWatchLoop(const WatchConfig& watch, ScanOptions options,
                      std::shared_ptr<ObjectStore> store, const std::atomic<bool>& stop,
                      std::FILE* out);

}  // namespace refscan

#endif  // REFSCAN_SERVE_WATCH_H_
