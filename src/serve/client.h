// Client side of the resident scan service: `refscan scan --remote SOCKET`.
//
// The client still loads the tree from disk itself (so fs.read faults and
// load failures behave exactly as a local scan), ships it with the full
// options image, and reconstructs the ScanResult from the reply. Transport
// failure is never an error the user sees twice: the client retries with
// the same bounded jittered backoff the cache client uses, and only after
// the budget is exhausted does it return nullopt — the CLI then falls back
// to a local in-process scan, whose stdout is byte-identical by
// construction. A *reachable* server that fails the request (kServeErr:
// injected fault, deadline, drain) is different: that becomes a degraded
// result (exit 2), because silently re-running a request the server
// rejected would mask the failure the operator asked to see.

#ifndef REFSCAN_SERVE_CLIENT_H_
#define REFSCAN_SERVE_CLIENT_H_

#include <optional>
#include <string>
#include <string_view>

#include "src/checkers/engine.h"
#include "src/support/ipc.h"
#include "src/support/source.h"

namespace refscan {

// Runs one scan against the server. nullopt = unreachable after the whole
// backoff budget (caller falls back to a local scan; `note`, when non-null,
// says why). kServeBusy replies consume retry attempts with backoff.
std::optional<ScanResult> RemoteScan(const SourceTree& tree, const ScanOptions& options,
                                     const std::string& socket_path,
                                     const BackoffPolicy& backoff = {},
                                     std::string* note = nullptr);

// One text-reply request (kServeHealthReq / kServeStatsReq). False when the
// server is unreachable or replies with anything but kServeText.
bool RemoteRequestText(const std::string& socket_path, uint8_t type, std::string_view payload,
                       std::string& reply, std::string* error = nullptr);

}  // namespace refscan

#endif  // REFSCAN_SERVE_CLIENT_H_
