#include "src/serve/serve.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "src/ast/parser.h"
#include "src/ipa/summary.h"
#include "src/serve/protocol.h"
#include "src/support/faultinject.h"
#include "src/support/strings.h"
#include "src/support/threadpool.h"

namespace refscan {

namespace {

// How often the accept loop re-checks stopping_ and the watchdog re-checks
// deadlines. Bounds shutdown latency, not request latency.
constexpr int kAcceptPollMs = 200;
constexpr int kWatchdogPollMs = 25;

std::string_view RequestName(uint8_t type) {
  switch (type) {
    case kServeScanReq:
      return "scan";
    case kServeStatsReq:
      return "stats";
    case kServeSummariesReq:
      return "summaries";
    case kServeHealthReq:
      return "health";
    default:
      return "unknown";
  }
}

}  // namespace

ScanServer::ScanServer(ServeConfig config)
    : config_(std::move(config)), store_(std::make_shared<MemoryStore>()) {
  config_.sessions = std::max<size_t>(config_.sessions, 1);
}

ScanServer::~ScanServer() { Stop(); }

bool ScanServer::Start(std::string* error) {
  listen_fd_ = UnixListen(config_.socket_path, error);
  if (!listen_fd_.valid()) {
    return false;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  watchdog_thread_ = std::thread([this] { WatchdogLoop(); });
  return true;
}

void ScanServer::Stop() {
  if (stopped_.exchange(true)) {
    return;
  }
  stopping_.store(true, std::memory_order_relaxed);
  aborting_.store(true, std::memory_order_relaxed);
  session_cv_.notify_all();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  listen_fd_.Reset();
  ::unlink(config_.socket_path.c_str());
  conns_.ShutdownAll(SHUT_RDWR);
  conns_.JoinAll();
  watchdog_stop_.store(true, std::memory_order_relaxed);
  if (watchdog_thread_.joinable()) {
    watchdog_thread_.join();
  }
}

bool ScanServer::Drain() {
  if (stopped_.exchange(true)) {
    return true;
  }
  stopping_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  listen_fd_.Reset();
  ::unlink(config_.socket_path.c_str());
  // SHUT_RD wakes every idle reader while leaving writes open: requests
  // already received keep draining through the session semaphore and flush
  // their replies. Only past the budget do we cut writes too — and release
  // any session waiter, or JoinAll would park behind it forever.
  conns_.ShutdownAll(SHUT_RD);
  const bool clean = conns_.WaitIdle(config_.drain_timeout_ms);
  if (!clean) {
    aborting_.store(true, std::memory_order_relaxed);
    session_cv_.notify_all();
    conns_.ShutdownAll(SHUT_RDWR);
  }
  conns_.JoinAll();
  watchdog_stop_.store(true, std::memory_order_relaxed);
  if (watchdog_thread_.joinable()) {
    watchdog_thread_.join();
  }
  return clean;
}

ScanServer::Counters ScanServer::counters() const {
  Counters c;
  c.requests = requests_.load(std::memory_order_relaxed);
  c.scans = scans_.load(std::memory_order_relaxed);
  c.shed = shed_.load(std::memory_order_relaxed);
  c.faulted = faulted_.load(std::memory_order_relaxed);
  c.timed_out = timed_out_.load(std::memory_order_relaxed);
  return c;
}

ScanStats ScanServer::last_scan_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return last_stats_;
}

void ScanServer::AcceptLoop() {
  uint64_t accepted = 0;
  while (!stopping_.load(std::memory_order_relaxed)) {
    OwnedFd conn = UnixAccept(listen_fd_.get(), kAcceptPollMs);
    if (!conn.valid()) {
      continue;  // timeout or transient error; re-check stopping_
    }
    ++accepted;
    try {
      MaybeFault("serve.accept", std::to_string(accepted));
    } catch (const FaultInjected&) {
      continue;  // injected accept failure: drop the connection on the floor
    }
    if (conns_.live_connections() >= config_.sessions + config_.max_pending) {
      // Admission queue full: shed with an explicit busy reply so the
      // client backs off instead of parking in our accept backlog. Count
      // before sending — a client that has the busy reply in hand must
      // already see it in the counters.
      shed_.fetch_add(1, std::memory_order_relaxed);
      SendFrame(conn.get(), kServeBusy, "server busy");
      continue;
    }
    conns_.Add(conn.get());
    conns_.Launch([this, c = std::move(conn)]() mutable { ServeConn(std::move(c)); });
  }
}

void ScanServer::WatchdogLoop() {
  while (!watchdog_stop_.load(std::memory_order_relaxed)) {
    const auto now = std::chrono::steady_clock::now();
    std::vector<std::shared_ptr<ReplyState>> overdue;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      for (const Pending& p : pending_) {
        if (now >= p.deadline) {
          overdue.push_back(p.reply);
        }
      }
    }
    for (const std::shared_ptr<ReplyState>& rs : overdue) {
      std::lock_guard<std::mutex> lock(rs->mu);
      if (rs->replied) {
        continue;
      }
      rs->replied = true;
      // Count before sending: a client holding the deadline reply must
      // already see it in the counters.
      timed_out_.fetch_add(1, std::memory_order_relaxed);
      SendFrame(rs->fd, kServeErr, "request deadline exceeded");
      // Sever the connection: the hung session thread's eventual result is
      // discarded, and the client is not left waiting on a dead session.
      ::shutdown(rs->fd, SHUT_RDWR);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(kWatchdogPollMs));
  }
}

bool ScanServer::AcquireSession() {
  std::unique_lock<std::mutex> lock(session_mu_);
  session_cv_.wait(lock, [this] {
    return active_sessions_ < config_.sessions || aborting_.load(std::memory_order_relaxed);
  });
  if (aborting_.load(std::memory_order_relaxed)) {
    return false;
  }
  ++active_sessions_;
  return true;
}

void ScanServer::ReleaseSession() {
  {
    std::lock_guard<std::mutex> lock(session_mu_);
    --active_sessions_;
  }
  session_cv_.notify_one();
}

void ScanServer::Reply(ReplyState& rs, uint8_t type, const std::string& payload) {
  std::lock_guard<std::mutex> lock(rs.mu);
  if (rs.replied) {
    return;  // the watchdog answered (and severed) this one already
  }
  rs.replied = true;
  SendFrame(rs.fd, type, payload);
}

void ScanServer::ServeConn(OwnedFd conn) {
  uint8_t type = 0;
  std::string payload;
  while (RecvFrame(conn.get(), type, payload) == RecvOutcome::kFrame) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    auto rs = std::make_shared<ReplyState>();
    rs->fd = conn.get();
    if (config_.request_timeout_ms > 0) {
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending_.push_back(Pending{
          rs, std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(config_.request_timeout_ms)});
    }
    if (!AcquireSession()) {
      Reply(*rs, kServeErr, "server draining");
    } else {
      uint8_t reply_type = kServeText;
      std::string reply;
      try {
        MaybeFault("serve.request", std::string(RequestName(type)));
        switch (type) {
          case kServeScanReq:
            reply = HandleScan(payload, reply_type);
            break;
          case kServeStatsReq:
            reply = HandleStats();
            break;
          case kServeSummariesReq:
            reply = HandleSummaries(payload, reply_type);
            break;
          case kServeHealthReq:
            reply = "ok";
            break;
          default:
            reply_type = kServeErr;
            reply = StrFormat("unknown request type %u", type);
            break;
        }
      } catch (const std::exception& e) {
        // Request isolation: whatever escaped the scan sandbox fails THIS
        // request; the store, the connection, and every other session are
        // untouched.
        faulted_.fetch_add(1, std::memory_order_relaxed);
        reply_type = kServeErr;
        reply = e.what();
      } catch (...) {
        faulted_.fetch_add(1, std::memory_order_relaxed);
        reply_type = kServeErr;
        reply = "unknown exception";
      }
      Reply(*rs, reply_type, reply);
      ReleaseSession();
    }
    if (config_.request_timeout_ms > 0) {
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                    [&](const Pending& p) { return p.reply == rs; }),
                     pending_.end());
    }
  }
  conns_.Remove(conn.get());
}

std::string ScanServer::HandleScan(std::string_view payload, uint8_t& type) {
  SourceTree tree;
  ScanOptions options;
  if (!DecodeScanRequest(payload, tree, options)) {
    type = kServeErr;
    return "malformed scan request";
  }
  // Sanitize: requests scan against the resident store, never a path or
  // socket of the client's choosing, and a client fault spec must not arm
  // sites in the server process beyond its own request... which is exactly
  // what ScanOptions::fault_spec would do (ScopedFaultArm is process-global
  // for the scan's duration). Strip it: fault injection into the server is
  // the server operator's knob (REFSCAN_FAULTS / serve.* sites).
  options.object_store = store_;
  options.cache_dir.clear();
  options.cache_server.clear();
  options.fault_spec.clear();
  if (config_.request_timeout_ms > 0) {
    options.file_timeout_ms = options.file_timeout_ms == 0
                                  ? config_.request_timeout_ms
                                  : std::min(options.file_timeout_ms, config_.request_timeout_ms);
  }
  CheckerEngine engine(KnowledgeBase::BuiltIn(), options);
  const ScanResult result = engine.Scan(tree);
  scans_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    last_stats_ = result.stats;
  }
  type = kServeScanResp;
  return EncodeScanResult(result);
}

std::string ScanServer::HandleStats() const {
  const Counters c = counters();
  const ScanStats stats = last_scan_stats();
  std::string out = "{";
  out += StrFormat("\"requests\":%llu,\"scans\":%llu,\"shed\":%llu,\"faulted\":%llu,",
                   static_cast<unsigned long long>(c.requests),
                   static_cast<unsigned long long>(c.scans),
                   static_cast<unsigned long long>(c.shed),
                   static_cast<unsigned long long>(c.faulted));
  out += StrFormat("\"timed_out\":%llu,\"store_objects\":%zu,\"store_bytes\":%llu,",
                   static_cast<unsigned long long>(c.timed_out), store_->objects(),
                   static_cast<unsigned long long>(store_->bytes()));
  out += "\"last_scan\":{";
  bool first = true;
  for (const ScanStatsField& f : ScanStatsFields()) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += StrFormat("\"%s\":%zu", f.json_key, stats.*f.member);
  }
  out += "}}\n";
  return out;
}

std::string ScanServer::HandleSummaries(std::string_view payload, uint8_t& type) {
  SourceTree tree;
  ScanOptions options;
  if (!DecodeScanRequest(payload, tree, options)) {
    type = kServeErr;
    return "malformed summaries request";
  }
  // Same front half as `refscan summaries`: parse, two discovery rounds,
  // then the bottom-up summary computation, rendered as JSON.
  std::vector<const SourceFile*> files;
  for (const auto& [path, file] : tree.files()) {
    files.push_back(&file);
  }
  ThreadPool pool(options.jobs);
  const std::vector<TranslationUnit> units =
      ParallelMap(pool, files.size(), [&](size_t i) { return ParseFile(*files[i]); });
  KnowledgeBase kb = KnowledgeBase::BuiltIn();
  for (int round = 0; round < 2; ++round) {
    for (const TranslationUnit& unit : units) {
      kb.DiscoverFromUnit(unit);
    }
  }
  std::vector<const TranslationUnit*> unit_ptrs;
  unit_ptrs.reserve(units.size());
  for (const TranslationUnit& unit : units) {
    unit_ptrs.push_back(&unit);
  }
  const SummaryResult result = ComputeSummaries(unit_ptrs, kb, SummaryOptions{}, pool);
  type = kServeText;
  return SummariesToJson(result);
}

}  // namespace refscan
