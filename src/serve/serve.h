// `refscan serve` — the crash-tolerant resident scan service (DESIGN.md
// §5.14).
//
// A long-lived daemon that keeps the expensive per-tree state hot in one
// process — the content-addressed artifact store (KB snapshots, discovery
// facts, report shards in a MemoryStore) — and answers scan requests over
// the shared Unix-socket framing. The robustness envelope:
//
//   isolation     every request runs under the §5.9 per-file sandbox
//                 (deadlines, governors, quarantine) plus a per-request
//                 catch-all: a request that throws gets a kServeErr reply
//                 and the connection lives on; the resident store and every
//                 other request are untouched. Client-supplied fault specs
//                 and cache locations are stripped server-side — a tenant
//                 cannot arm faults in, or point I/O out of, the server.
//   deadlines     ServeConfig::request_timeout_ms folds into each request's
//                 per-file deadline (cooperative), and a watchdog thread
//                 backstops hung requests: past the deadline it sends
//                 kServeErr, marks the request answered, and severs the
//                 connection — the stuck session thread's eventual result
//                 is discarded (no thread is killed).
//   backpressure  at most `sessions` requests execute concurrently;
//                 `max_pending` more connections may wait. Beyond that the
//                 accept loop sheds with an immediate kServeBusy so clients
//                 back off instead of queueing unboundedly.
//   drain         Drain() stops accepting, lets in-flight requests finish
//                 and flush their replies (SHUT_RD leaves the write side
//                 open), and escalates to a hard close after
//                 drain_timeout_ms. The CLI runs it on SIGTERM/SIGINT.
//
// Fault-injection sites: `serve.accept` (accept loop, subject = decimal
// accept counter) drops the incoming connection; `serve.request` (dispatch,
// subject = request name) fails that one request with kServeErr.

#ifndef REFSCAN_SERVE_SERVE_H_
#define REFSCAN_SERVE_SERVE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/cache/store.h"
#include "src/checkers/engine.h"
#include "src/support/ipc.h"
#include "src/support/server.h"

namespace refscan {

struct ServeConfig {
  std::string socket_path;
  size_t sessions = 2;             // concurrently executing requests
  size_t max_pending = 8;          // connections admitted beyond the sessions
  uint32_t request_timeout_ms = 0;  // 0 = no per-request deadline
  uint32_t drain_timeout_ms = 5000;
};

class ScanServer {
 public:
  explicit ScanServer(ServeConfig config);
  ~ScanServer();

  bool Start(std::string* error = nullptr);

  // Hard stop: sever every connection, join every thread. In-flight
  // requests lose their reply; use Drain for the graceful path.
  void Stop();

  // Graceful shutdown: stop accepting, let in-flight requests complete and
  // flush, escalate to a hard close after drain_timeout_ms. Returns true
  // when every session finished inside the budget. Idempotent with Stop.
  bool Drain();

  // The resident artifact store every request scans against. Exposed so the
  // watch loop and benchmarks share the same warm cache.
  const std::shared_ptr<MemoryStore>& store() const { return store_; }

  struct Counters {
    uint64_t requests = 0;   // frames dispatched (any type)
    uint64_t scans = 0;      // kServeScanReq completed (degraded or not)
    uint64_t shed = 0;       // connections turned away with kServeBusy
    uint64_t faulted = 0;    // requests answered kServeErr from the sandbox
    uint64_t timed_out = 0;  // requests the watchdog gave up on
  };
  Counters counters() const;

  // Stats of the most recent completed scan request (for the stats reply).
  ScanStats last_scan_stats() const;

 private:
  // One per in-flight request: the reply slot the session thread and the
  // watchdog race for. Whoever flips `replied` under the mutex sends the
  // one reply frame; the loser discards.
  struct ReplyState {
    std::mutex mu;
    bool replied = false;
    int fd = -1;
  };
  struct Pending {
    std::shared_ptr<ReplyState> reply;
    std::chrono::steady_clock::time_point deadline;
  };

  void AcceptLoop();
  void WatchdogLoop();
  void ServeConn(OwnedFd conn);
  bool AcquireSession();
  void ReleaseSession();
  void Reply(ReplyState& rs, uint8_t type, const std::string& payload);

  std::string HandleScan(std::string_view payload, uint8_t& type);
  std::string HandleStats() const;
  std::string HandleSummaries(std::string_view payload, uint8_t& type);

  ServeConfig config_;
  std::shared_ptr<MemoryStore> store_;
  OwnedFd listen_fd_;
  std::thread accept_thread_;
  std::thread watchdog_thread_;
  ConnectionRegistry conns_;
  std::atomic<bool> stopping_{false};       // accept loop exits
  std::atomic<bool> watchdog_stop_{false};  // watchdog loop exits
  std::atomic<bool> aborting_{false};       // session waiters bail out
  std::atomic<bool> stopped_{false};        // Stop/Drain already ran

  std::mutex session_mu_;
  std::condition_variable session_cv_;
  size_t active_sessions_ = 0;

  std::mutex pending_mu_;
  std::vector<Pending> pending_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> scans_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> faulted_{0};
  std::atomic<uint64_t> timed_out_{0};

  mutable std::mutex stats_mu_;
  ScanStats last_stats_;
};

}  // namespace refscan

#endif  // REFSCAN_SERVE_SERVE_H_
