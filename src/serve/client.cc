#include "src/serve/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/serve/protocol.h"

namespace refscan {

std::optional<ScanResult> RemoteScan(const SourceTree& tree, const ScanOptions& options,
                                     const std::string& socket_path,
                                     const BackoffPolicy& backoff, std::string* note) {
  const std::string request = EncodeScanRequest(tree, options);
  const int attempts = std::max(backoff.attempts, 1);
  std::string last_error = "connect failed";
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(BackoffDelayMs(backoff, attempt - 1)));
    }
    std::string error;
    OwnedFd fd = UnixConnect(socket_path, &error);
    if (!fd.valid()) {
      last_error = error;
      continue;
    }
    if (!SendFrame(fd.get(), kServeScanReq, request, &error)) {
      last_error = error;
      continue;
    }
    uint8_t type = 0;
    std::string payload;
    if (RecvFrame(fd.get(), type, payload, &error) != RecvOutcome::kFrame) {
      last_error = error.empty() ? "server closed the connection" : error;
      continue;
    }
    if (type == kServeBusy) {
      last_error = "server busy";
      continue;  // shed: back off and retry like any transient
    }
    if (type == kServeErr) {
      // The server answered and refused: surface it as a degraded scan,
      // not a silent local re-run.
      ScanResult result;
      FileFailure f;
      f.path = "<tree>";
      f.stage = FailureStage::kCheck;
      f.kind = FailureKind::kInternal;
      f.what = "remote scan failed: " + payload;
      result.failures.push_back(std::move(f));
      return result;
    }
    if (type == kServeScanResp) {
      ScanResult result;
      if (DecodeScanResult(payload, result)) {
        return result;
      }
      last_error = "malformed scan reply";
      continue;
    }
    last_error = "unexpected reply type";
  }
  if (note != nullptr) {
    *note = last_error;
  }
  return std::nullopt;
}

bool RemoteRequestText(const std::string& socket_path, uint8_t type, std::string_view payload,
                       std::string& reply, std::string* error) {
  OwnedFd fd = UnixConnect(socket_path, error);
  if (!fd.valid()) {
    return false;
  }
  if (!SendFrame(fd.get(), type, payload, error)) {
    return false;
  }
  uint8_t reply_type = 0;
  if (RecvFrame(fd.get(), reply_type, reply, error) != RecvOutcome::kFrame) {
    return false;
  }
  if (reply_type != kServeText) {
    if (error != nullptr) {
      *error = reply;
    }
    return false;
  }
  return true;
}

}  // namespace refscan
