#include "src/serve/watch.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>

#include "src/cache/serial.h"
#include "src/support/fs.h"
#include "src/support/strings.h"

namespace refscan {

namespace {

// Order-sensitive digest of the tree's paths and contents; files() iterates
// in path order, so equal trees hash equal and any content or membership
// change flips the value.
uint64_t TreeFingerprint(const SourceTree& tree) {
  uint64_t h = 0;
  for (const auto& [path, file] : tree.files()) {
    h = HashMix(h, HashBytes(path));
    h = HashMix(h, HashBytes(file.text()));
  }
  return HashMix(h, tree.size());
}

void AppendReportLine(std::string& out, char sign, const BugReport& r) {
  out += StrFormat("%c P%d %s:%u [%s] %s\n", sign, r.anti_pattern, r.file.c_str(), r.line,
                   r.function.c_str(), r.message.c_str());
}

}  // namespace

ReportDelta ComputeReportDelta(const std::vector<BugReport>& before,
                               const std::vector<BugReport>& after) {
  std::set<std::string> before_keys;
  for (const BugReport& r : before) {
    before_keys.insert(r.Key());
  }
  std::set<std::string> after_keys;
  for (const BugReport& r : after) {
    after_keys.insert(r.Key());
  }
  ReportDelta delta;
  for (const BugReport& r : after) {
    if (!before_keys.contains(r.Key())) {
      delta.fresh.push_back(r);
    }
  }
  for (const BugReport& r : before) {
    if (!after_keys.contains(r.Key())) {
      delta.fixed.push_back(r);
    }
  }
  std::sort(delta.fresh.begin(), delta.fresh.end());
  std::sort(delta.fixed.begin(), delta.fixed.end());
  return delta;
}

std::string FormatWatchDelta(uint64_t generation, const ReportDelta& delta, size_t total) {
  std::string out = StrFormat("generation %llu: %zu report(s), +%zu fresh, -%zu fixed\n",
                              static_cast<unsigned long long>(generation), total,
                              delta.fresh.size(), delta.fixed.size());
  for (const BugReport& r : delta.fresh) {
    AppendReportLine(out, '+', r);
  }
  for (const BugReport& r : delta.fixed) {
    AppendReportLine(out, '-', r);
  }
  return out;
}

uint64_t RunWatchLoop(const WatchConfig& watch, ScanOptions options,
                      std::shared_ptr<ObjectStore> store, const std::atomic<bool>& stop,
                      std::FILE* out) {
  options.object_store = std::move(store);
  options.cache_dir.clear();
  options.cache_server.clear();
  uint64_t generation = 0;
  uint64_t last_fp = 0;
  std::vector<BugReport> last_reports;
  const uint32_t poll_ms = std::max<uint32_t>(watch.poll_ms, 10);
  while (!stop.load(std::memory_order_relaxed)) {
    LoadOptions load_options;
    load_options.jobs = options.jobs;
    const SourceTree tree = LoadSourceTreeFromDisk(watch.tree_dir, load_options);
    const uint64_t fp = TreeFingerprint(tree);
    if (generation == 0 || fp != last_fp) {
      last_fp = fp;
      CheckerEngine engine(KnowledgeBase::BuiltIn(), options);
      ScanResult result = engine.Scan(tree);
      const ReportDelta delta = ComputeReportDelta(last_reports, result.reports);
      ++generation;
      std::fputs(FormatWatchDelta(generation, delta, result.reports.size()).c_str(), out);
      std::fflush(out);
      last_reports = std::move(result.reports);
    }
    // Sleep in short slices so a stop request is honored promptly.
    for (uint32_t slept = 0; slept < poll_ms && !stop.load(std::memory_order_relaxed);
         slept += 20) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  return generation;
}

}  // namespace refscan
