// Wire protocol for `refscan serve`, the resident scan service.
//
// One request/response pair per frame exchange over the shared Unix-socket
// framing (support/ipc.h). A connection is a session: the client may send
// any number of requests back to back; each gets exactly one reply frame.
// Frame types:
//
//   kServeScanReq      → kServeScanResp | kServeBusy | kServeErr
//   kServeStatsReq     → kServeText (JSON object of server counters)
//   kServeSummariesReq → kServeText (SummariesToJson) | kServeErr
//   kServeHealthReq    → kServeText ("ok")
//
// kServeBusy is the backpressure shed: the admission queue is full and the
// client should back off and retry. kServeErr carries a one-line reason;
// the client surfaces it as a degraded scan (exit 2), never as silence.
//
// The scan request carries the full ScanOptions wire image (the same
// encoding the shard-worker kJob frame uses — scan_stages.h) plus every
// file, so the server needs no filesystem access and the client's loaded
// tree is scanned bit-for-bit. The reply carries reports via the cache's
// report serializer — the one report encoding in the codebase — plus the
// stats table, the quarantine list, and the abort state, enough to
// reconstruct a ScanResult that is indistinguishable from a local scan.

#ifndef REFSCAN_SERVE_PROTOCOL_H_
#define REFSCAN_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/checkers/engine.h"
#include "src/support/source.h"

namespace refscan {

constexpr uint8_t kServeScanReq = 1;
constexpr uint8_t kServeStatsReq = 2;
constexpr uint8_t kServeSummariesReq = 3;
constexpr uint8_t kServeHealthReq = 4;
constexpr uint8_t kServeScanResp = 5;
constexpr uint8_t kServeText = 6;
constexpr uint8_t kServeBusy = 7;
constexpr uint8_t kServeErr = 8;

// Scan / summaries request payload: options image + file count + files.
std::string EncodeScanRequest(const SourceTree& tree, const ScanOptions& options);
bool DecodeScanRequest(std::string_view payload, SourceTree& tree, ScanOptions& options);

// Scan reply payload: reports, stats (ScanStatsFields order, count-checked
// on decode so a version-skewed peer fails loudly instead of misreading),
// failures, abort state.
std::string EncodeScanResult(const ScanResult& result);
bool DecodeScanResult(std::string_view payload, ScanResult& result);

}  // namespace refscan

#endif  // REFSCAN_SERVE_PROTOCOL_H_
