// Training-text extraction for the similarity study (Table 3).
//
// The paper trains word2vec "with more than one million of the historical
// commit logs, including the code and comment text". We mirror that: one
// sentence per commit (subject + body + diff API names) plus, optionally,
// one sentence per source line of a kernel tree. API identifiers are split
// on '_' so that "of_node_get" contributes {of, node, get}; the common
// kernel spelling "for_each" is normalised to the single token "foreach"
// (the keyword the paper's Table 3 uses).

#ifndef REFSCAN_EMBED_CORPUS_TEXT_H_
#define REFSCAN_EMBED_CORPUS_TEXT_H_

#include <string>
#include <vector>

#include "src/histmine/history.h"
#include "src/support/source.h"

namespace refscan {

// Tokenizes free text / code into embedding words (lower-case, '_'-split,
// "for each" collapsed to "foreach").
std::vector<std::string> TokenizeForEmbedding(std::string_view text);

// One sentence per commit.
std::vector<std::vector<std::string>> BuildCommitSentences(const History& history);

// Appends one sentence per non-trivial source line.
void AppendSourceSentences(const SourceTree& tree,
                           std::vector<std::vector<std::string>>& sentences);

}  // namespace refscan

#endif  // REFSCAN_EMBED_CORPUS_TEXT_H_
