// word2vec (CBOW with negative sampling), from scratch.
//
// The paper trains gensim's CBOW model on >1M commit logs (code and comment
// text) and reports cosine similarities between refcounting keywords and
// bug-caused API-name keywords (Table 3). This is a compact, deterministic,
// single-threaded reimplementation: context vectors are averaged, the
// centre word is predicted against `negatives` noise samples drawn from the
// unigram^0.75 distribution, SGD with linear learning-rate decay.

#ifndef REFSCAN_EMBED_WORD2VEC_H_
#define REFSCAN_EMBED_WORD2VEC_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace refscan {

struct EmbedOptions {
  int dim = 48;
  int window = 6;
  int negatives = 5;
  int epochs = 6;
  double learning_rate = 0.05;
  int min_count = 2;  // drop words rarer than this
  uint64_t seed = 1301;
};

class Word2Vec {
 public:
  // Trains on tokenized sentences (already lower-cased words).
  void Train(const std::vector<std::vector<std::string>>& sentences,
             const EmbedOptions& options = {});

  bool Contains(std::string_view word) const;
  size_t vocab_size() const { return vocab_.size(); }

  // Cosine similarity in [-1, 1]; 0.0 when either word is out-of-vocabulary.
  double Similarity(std::string_view a, std::string_view b) const;

  // The k nearest in-vocabulary words by cosine similarity.
  std::vector<std::pair<std::string, double>> MostSimilar(std::string_view word,
                                                          size_t k = 10) const;

  // Raw (input) embedding; empty if OOV.
  std::vector<float> Vector(std::string_view word) const;

 private:
  int IndexOf(std::string_view word) const;

  std::map<std::string, int, std::less<>> vocab_;
  std::vector<std::string> words_;
  std::vector<float> input_;   // vocab x dim (word vectors)
  std::vector<float> output_;  // vocab x dim (context/negative weights)
  int dim_ = 0;
};

}  // namespace refscan

#endif  // REFSCAN_EMBED_WORD2VEC_H_
