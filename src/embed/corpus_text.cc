#include "src/embed/corpus_text.h"

#include "src/support/strings.h"

namespace refscan {

std::vector<std::string> TokenizeForEmbedding(std::string_view text) {
  std::vector<std::string> raw = IdentifierWords(text);
  std::vector<std::string> out;
  out.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == "for" && i + 1 < raw.size() && raw[i + 1] == "each") {
      out.push_back("foreach");
      ++i;
      continue;
    }
    out.push_back(std::move(raw[i]));
  }
  return out;
}

std::vector<std::vector<std::string>> BuildCommitSentences(const History& history) {
  std::vector<std::vector<std::string>> sentences;
  sentences.reserve(history.commits.size());
  for (const Commit& commit : history.commits) {
    std::vector<std::string> sentence = TokenizeForEmbedding(commit.subject);
    for (const std::string& word : TokenizeForEmbedding(commit.body)) {
      sentence.push_back(word);
    }
    for (const DiffEntry& entry : commit.diff) {
      for (const std::string& word : TokenizeForEmbedding(entry.api)) {
        sentence.push_back(word);
      }
    }
    if (sentence.size() >= 2) {
      sentences.push_back(std::move(sentence));
    }
  }
  return sentences;
}

void AppendSourceSentences(const SourceTree& tree,
                           std::vector<std::vector<std::string>>& sentences) {
  // Paragraph granularity (blank-line separated), so the identifiers of a
  // whole function body share one context window — this is what ties
  // find-like API names to the get/put calls around them.
  for (const auto& [path, file] : tree.files()) {
    std::vector<std::string> sentence;
    auto flush = [&sentences, &sentence]() {
      if (sentence.size() >= 2) {
        sentences.push_back(sentence);
      }
      sentence.clear();
    };
    for (uint32_t line = 1; line <= file.line_count(); ++line) {
      const std::vector<std::string> words = TokenizeForEmbedding(file.Line(line));
      if (words.empty()) {
        flush();
        continue;
      }
      sentence.insert(sentence.end(), words.begin(), words.end());
    }
    flush();
  }
}

}  // namespace refscan
