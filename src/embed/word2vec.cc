#include "src/embed/word2vec.h"

#include <algorithm>
#include <cmath>

#include "src/support/prng.h"

namespace refscan {

namespace {

double Sigmoid(double x) {
  if (x > 8.0) {
    return 1.0;
  }
  if (x < -8.0) {
    return 0.0;
  }
  return 1.0 / (1.0 + std::exp(-x));
}

}  // namespace

void Word2Vec::Train(const std::vector<std::vector<std::string>>& sentences,
                     const EmbedOptions& options) {
  dim_ = options.dim;
  vocab_.clear();
  words_.clear();

  // ---- Vocabulary with frequency cutoff.
  std::map<std::string, int, std::less<>> counts;
  for (const auto& sentence : sentences) {
    for (const std::string& word : sentence) {
      ++counts[word];
    }
  }
  for (const auto& [word, count] : counts) {
    if (count >= options.min_count) {
      vocab_.emplace(word, static_cast<int>(words_.size()));
      words_.push_back(word);
    }
  }
  const size_t v = words_.size();
  if (v == 0) {
    return;
  }

  // ---- Negative-sampling table (unigram^0.75).
  std::vector<int> neg_table;
  {
    double total = 0;
    std::vector<double> weights(v);
    for (size_t i = 0; i < v; ++i) {
      weights[i] = std::pow(static_cast<double>(counts.at(words_[i])), 0.75);
      total += weights[i];
    }
    const size_t table_size = std::max<size_t>(v * 16, 4096);
    neg_table.reserve(table_size);
    size_t i = 0;
    double cumulative = weights[0] / total;
    for (size_t t = 0; t < table_size; ++t) {
      const double frac = (t + 0.5) / table_size;
      while (frac > cumulative && i + 1 < v) {
        ++i;
        cumulative += weights[i] / total;
      }
      neg_table.push_back(static_cast<int>(i));
    }
  }

  // ---- Parameter init.
  Xoshiro256pp rng(options.seed);
  input_.assign(v * static_cast<size_t>(dim_), 0.0f);
  output_.assign(v * static_cast<size_t>(dim_), 0.0f);
  for (float& w : input_) {
    w = static_cast<float>((rng.NextDouble() - 0.5) / dim_);
  }

  // ---- Sentences as index sequences (OOV dropped).
  std::vector<std::vector<int>> encoded;
  size_t total_tokens = 0;
  for (const auto& sentence : sentences) {
    std::vector<int> ids;
    ids.reserve(sentence.size());
    for (const std::string& word : sentence) {
      const int id = IndexOf(word);
      if (id >= 0) {
        ids.push_back(id);
      }
    }
    if (ids.size() >= 2) {
      total_tokens += ids.size();
      encoded.push_back(std::move(ids));
    }
  }
  if (encoded.empty()) {
    return;
  }

  // ---- CBOW + negative sampling SGD.
  std::vector<float> context(static_cast<size_t>(dim_));
  std::vector<float> grad(static_cast<size_t>(dim_));
  const double steps_total = static_cast<double>(options.epochs) * total_tokens;
  double steps_done = 0;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    for (const auto& sentence : encoded) {
      const int n = static_cast<int>(sentence.size());
      for (int center = 0; center < n; ++center) {
        const double lr = options.learning_rate *
                          std::max(0.05, 1.0 - steps_done / (steps_total + 1));
        ++steps_done;

        const int span = 1 + static_cast<int>(rng.Below(static_cast<uint64_t>(options.window)));
        std::fill(context.begin(), context.end(), 0.0f);
        int context_words = 0;
        for (int offset = -span; offset <= span; ++offset) {
          const int pos = center + offset;
          if (offset == 0 || pos < 0 || pos >= n) {
            continue;
          }
          const float* wv = &input_[static_cast<size_t>(sentence[static_cast<size_t>(pos)]) *
                                    static_cast<size_t>(dim_)];
          for (int d = 0; d < dim_; ++d) {
            context[static_cast<size_t>(d)] += wv[d];
          }
          ++context_words;
        }
        if (context_words == 0) {
          continue;
        }
        for (int d = 0; d < dim_; ++d) {
          context[static_cast<size_t>(d)] /= static_cast<float>(context_words);
        }

        std::fill(grad.begin(), grad.end(), 0.0f);
        const int target = sentence[static_cast<size_t>(center)];
        for (int k = 0; k <= options.negatives; ++k) {
          int sample = target;
          double label = 1.0;
          if (k > 0) {
            sample = neg_table[rng.Below(neg_table.size())];
            if (sample == target) {
              continue;
            }
            label = 0.0;
          }
          float* ov = &output_[static_cast<size_t>(sample) * static_cast<size_t>(dim_)];
          double dot = 0;
          for (int d = 0; d < dim_; ++d) {
            dot += context[static_cast<size_t>(d)] * ov[d];
          }
          const double g = (label - Sigmoid(dot)) * lr;
          for (int d = 0; d < dim_; ++d) {
            grad[static_cast<size_t>(d)] += static_cast<float>(g) * ov[d];
            ov[d] += static_cast<float>(g) * context[static_cast<size_t>(d)];
          }
        }
        // Distribute the context gradient back to each context word.
        for (int offset = -span; offset <= span; ++offset) {
          const int pos = center + offset;
          if (offset == 0 || pos < 0 || pos >= n) {
            continue;
          }
          float* wv = &input_[static_cast<size_t>(sentence[static_cast<size_t>(pos)]) *
                              static_cast<size_t>(dim_)];
          for (int d = 0; d < dim_; ++d) {
            wv[d] += grad[static_cast<size_t>(d)] / static_cast<float>(context_words);
          }
        }
      }
    }
  }
}

int Word2Vec::IndexOf(std::string_view word) const {
  auto it = vocab_.find(word);
  return it == vocab_.end() ? -1 : it->second;
}

bool Word2Vec::Contains(std::string_view word) const {
  return IndexOf(word) >= 0;
}

std::vector<float> Word2Vec::Vector(std::string_view word) const {
  const int id = IndexOf(word);
  if (id < 0 || dim_ == 0) {
    return {};
  }
  const float* begin = &input_[static_cast<size_t>(id) * static_cast<size_t>(dim_)];
  return std::vector<float>(begin, begin + dim_);
}

double Word2Vec::Similarity(std::string_view a, std::string_view b) const {
  const int ia = IndexOf(a);
  const int ib = IndexOf(b);
  if (ia < 0 || ib < 0) {
    return 0.0;
  }
  const float* va = &input_[static_cast<size_t>(ia) * static_cast<size_t>(dim_)];
  const float* vb = &input_[static_cast<size_t>(ib) * static_cast<size_t>(dim_)];
  double dot = 0;
  double na = 0;
  double nb = 0;
  for (int d = 0; d < dim_; ++d) {
    dot += static_cast<double>(va[d]) * vb[d];
    na += static_cast<double>(va[d]) * va[d];
    nb += static_cast<double>(vb[d]) * vb[d];
  }
  if (na <= 0 || nb <= 0) {
    return 0.0;
  }
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

std::vector<std::pair<std::string, double>> Word2Vec::MostSimilar(std::string_view word,
                                                                  size_t k) const {
  std::vector<std::pair<std::string, double>> out;
  if (!Contains(word)) {
    return out;
  }
  for (const std::string& candidate : words_) {
    if (candidate != word) {
      out.emplace_back(candidate, Similarity(word, candidate));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (out.size() > k) {
    out.resize(k);
  }
  return out;
}

}  // namespace refscan
