#include "src/cpg/dump.h"

#include "src/lexer/lexer.h"
#include "src/support/strings.h"

namespace refscan {

namespace {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "ident";
    case TokenKind::kKeyword:
      return "keyword";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kString:
      return "string";
    case TokenKind::kChar:
      return "char";
    case TokenKind::kPunct:
      return "punct";
    case TokenKind::kPreproc:
      return "preproc";
    case TokenKind::kEof:
      return "eof";
  }
  return "?";
}

std::string_view StmtKindName(Stmt::Kind kind) {
  switch (kind) {
    case Stmt::Kind::kExpr:
      return "expr";
    case Stmt::Kind::kDecl:
      return "decl";
    case Stmt::Kind::kCompound:
      return "compound";
    case Stmt::Kind::kIf:
      return "if";
    case Stmt::Kind::kWhile:
      return "while";
    case Stmt::Kind::kDoWhile:
      return "do-while";
    case Stmt::Kind::kFor:
      return "for";
    case Stmt::Kind::kMacroLoop:
      return "macro-loop";
    case Stmt::Kind::kSwitch:
      return "switch";
    case Stmt::Kind::kCase:
      return "case";
    case Stmt::Kind::kDefault:
      return "default";
    case Stmt::Kind::kLabel:
      return "label";
    case Stmt::Kind::kGoto:
      return "goto";
    case Stmt::Kind::kReturn:
      return "return";
    case Stmt::Kind::kBreak:
      return "break";
    case Stmt::Kind::kContinue:
      return "continue";
    case Stmt::Kind::kEmpty:
      return "empty";
    case Stmt::Kind::kError:
      return "error";
  }
  return "?";
}

void DumpStmt(const Stmt& stmt, int depth, std::string& out) {
  out += StrFormat("%*s%s @%u", depth * 2, "", std::string(StmtKindName(stmt.kind)).c_str(),
                   stmt.line);
  if (!stmt.name.empty()) {
    out += StrFormat(" name=%s", stmt.name.c_str());
  }
  if (!stmt.type.empty()) {
    out += StrFormat(" type='%s'", stmt.type.c_str());
  }
  if (stmt.expr != nullptr) {
    out += StrFormat(" expr=`%s`", stmt.expr->ToString().c_str());
  }
  if (stmt.init != nullptr) {
    out += StrFormat(" init=`%s`", stmt.init->ToString().c_str());
  }
  if (stmt.incr != nullptr) {
    out += StrFormat(" incr=`%s`", stmt.incr->ToString().c_str());
  }
  out += "\n";
  for (const Stmt* child : {stmt.body, stmt.else_body}) {
    if (child != nullptr) {
      DumpStmt(*child, depth + 1, out);
    }
  }
  for (const StmtPtr& child : stmt.stmts) {
    if (child != nullptr) {
      DumpStmt(*child, depth + 1, out);
    }
  }
}

}  // namespace

std::string_view SemOpName(SemOp op) {
  switch (op) {
    case SemOp::kIncrease:
      return "INC";
    case SemOp::kDecrease:
      return "DEC";
    case SemOp::kAssign:
      return "ASSIGN";
    case SemOp::kDeref:
      return "DEREF";
    case SemOp::kLock:
      return "LOCK";
    case SemOp::kUnlock:
      return "UNLOCK";
    case SemOp::kFree:
      return "FREE";
    case SemOp::kNullCheck:
      return "NULLCHK";
    case SemOp::kReturn:
      return "RET";
    case SemOp::kLoopHead:
      return "LOOP";
  }
  return "?";
}

std::string DumpTokens(const SourceFile& file) {
  std::string out;
  for (const Token& token : Tokenize(file)) {
    out += StrFormat("%4u %-8s %s\n", token.line,
                     std::string(TokenKindName(token.kind)).c_str(),
                     std::string(token.text.substr(0, 60)).c_str());
  }
  return out;
}

std::string DumpAst(const TranslationUnit& unit) {
  std::string out = StrFormat("translation unit: %s\n", unit.path.c_str());
  for (const MacroDef& macro : unit.macros) {
    out += StrFormat("macro %s(%zu params) @%u\n", macro.name.c_str(), macro.params.size(),
                     macro.line);
  }
  for (const StructDef& def : unit.structs) {
    out += StrFormat("struct %s @%u (%zu fields)\n", def.name.c_str(), def.line,
                     def.fields.size());
    for (const StructField& field : def.fields) {
      out += StrFormat("  field %s : %s\n", field.name.c_str(), field.type.c_str());
    }
  }
  for (const GlobalVar& g : unit.globals) {
    out += StrFormat("global %s : %s @%u\n", g.name.c_str(), g.type.c_str(), g.line);
    for (const DesignatedInit& init : g.inits) {
      out += StrFormat("  .%s = %s\n", init.field.c_str(), init.value.c_str());
    }
  }
  for (const FunctionDef& fn : unit.functions) {
    out += StrFormat("function %s%s : %s @%u (%zu params)\n", fn.is_static ? "static " : "",
                     fn.name.c_str(), fn.return_type.c_str(), fn.line, fn.params.size());
    if (fn.body != nullptr) {
      DumpStmt(*fn.body, 1, out);
    }
  }
  return out;
}

std::string DumpCfg(const Cfg& cfg) {
  std::string out =
      StrFormat("cfg for %s: %zu nodes, entry=%d exit=%d\n",
                cfg.function() != nullptr ? cfg.function()->name.c_str() : "?", cfg.size(),
                cfg.entry(), cfg.exit());
  for (size_t i = 0; i < cfg.size(); ++i) {
    const CfgNode& node = cfg.node(static_cast<int>(i));
    const char* kind = "stmt";
    switch (node.kind) {
      case CfgNode::Kind::kEntry:
        kind = "entry";
        break;
      case CfgNode::Kind::kExit:
        kind = "exit";
        break;
      case CfgNode::Kind::kCondition:
        kind = "cond";
        break;
      case CfgNode::Kind::kLoopHead:
        kind = "loop";
        break;
      case CfgNode::Kind::kStatement:
        break;
    }
    out += StrFormat("  [%zu] %-5s @%-4u ->", i, kind, node.line);
    for (int succ : node.succs) {
      out += StrFormat(" %d", succ);
    }
    if (node.is_error_context) {
      out += "  (error-context)";
    }
    if (node.macro_loop >= 0) {
      out += StrFormat("  (in macro-loop %d)", node.macro_loop);
    }
    if (node.expr != nullptr) {
      out += StrFormat("  `%s`", node.expr->ToString().substr(0, 48).c_str());
    }
    out += "\n";
  }
  return out;
}

std::string DumpCpg(const Cpg& cpg) {
  std::string out;
  for (size_t i = 0; i < cpg.size(); ++i) {
    const auto& events = cpg.events(static_cast<int>(i));
    if (events.empty()) {
      continue;
    }
    out += StrFormat("node %zu:\n", i);
    for (const SemEvent& ev : events) {
      out += StrFormat("  @%-4u %-7s obj='%s'", ev.line,
                       std::string(SemOpName(ev.op)).c_str(), ev.object.c_str());
      if (!ev.aux.empty()) {
        out += StrFormat(" aux='%s'", ev.aux.c_str());
      }
      if (ev.api != nullptr) {
        out += StrFormat(" api=%s", ev.api->name.c_str());
      }
      if (ev.loop != nullptr) {
        out += StrFormat(" loop=%s", ev.loop->name.c_str());
      }
      if (ev.escapes) {
        out += " escapes";
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace refscan
