#include "src/cpg/cpg.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <mutex>

namespace refscan {

namespace {

const Expr* StripTransparent(const Expr* e) {
  while (e != nullptr) {
    if (e->kind == Expr::Kind::kCast && !e->args.empty()) {
      e = e->args[0];
      continue;
    }
    if (e->kind == Expr::Kind::kUnary && e->value == "&" && !e->args.empty()) {
      e = e->args[0];
      continue;
    }
    break;
  }
  return e;
}

// Appends `e`'s spelling to `out`; false when the expression has no stable
// identity (then `out` is garbage and the caller discards it).
bool AppendSpelling(const Expr* e, std::string& out) {
  e = StripTransparent(e);
  if (e == nullptr) {
    return false;
  }
  switch (e->kind) {
    case Expr::Kind::kIdent:
      if (e->value == "NULL") {
        return false;
      }
      out.append(e->value.view());
      return true;
    case Expr::Kind::kMember: {
      if (e->args.empty() || e->args[0] == nullptr ||
          !AppendSpelling(e->args[0], out)) {
        return false;
      }
      out.append(e->arrow ? "->" : ".");
      out.append(e->value.view());
      return true;
    }
    case Expr::Kind::kUnary:
      if (e->value == "*" && !e->args.empty() && e->args[0] != nullptr) {
        out.push_back('*');
        return AppendSpelling(e->args[0], out);
      }
      return false;
    case Expr::Kind::kIndex: {
      if (e->args.empty() || e->args[0] == nullptr ||
          !AppendSpelling(e->args[0], out)) {
        return false;
      }
      out.append("[]");
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

Symbol ObjectSpelling(const Expr& expr) {
  const Expr* e = StripTransparent(&expr);
  if (e == nullptr) {
    return Symbol();
  }
  if (e->kind == Expr::Kind::kIdent) {
    // Fast path: the identifier is already interned in the AST.
    return e->value == "NULL" ? Symbol() : e->value;
  }
  thread_local std::string scratch;
  scratch.clear();
  if (!AppendSpelling(e, scratch) || scratch.empty()) {
    return Symbol();
  }
  return Intern(scratch);
}

Symbol ObjectRoot(const Expr& expr) {
  const Expr* e = StripTransparent(&expr);
  while (e != nullptr &&
         (e->kind == Expr::Kind::kMember || e->kind == Expr::Kind::kIndex ||
          (e->kind == Expr::Kind::kUnary && e->value == "*"))) {
    e = e->args.empty() ? nullptr : StripTransparent(e->args[0]);
  }
  if (e != nullptr && e->kind == Expr::Kind::kIdent && e->value != "NULL") {
    return e->value;
  }
  return Symbol();
}

std::string ObjectRootOfSpelling(std::string_view spelling) {
  size_t i = 0;
  while (i < spelling.size() && spelling[i] == '*') {
    ++i;
  }
  size_t end = i;
  while (end < spelling.size() &&
         (std::isalnum(static_cast<unsigned char>(spelling[end])) != 0 || spelling[end] == '_')) {
    ++end;
  }
  return std::string(spelling.substr(i, end - i));
}

namespace {

// spelling-Symbol id -> root-Symbol id + 1 (0 = not yet computed). Same
// two-level page layout as the interner; pages are allocated on demand and
// entries are idempotent (every writer computes the same root), so plain
// relaxed atomics suffice.
constexpr uint32_t kRootPageBits = 12;
constexpr uint32_t kRootPageSize = 1u << kRootPageBits;
constexpr uint32_t kRootMaxPages = 4096;

struct RootPage {
  std::atomic<uint32_t> roots[kRootPageSize] = {};
};

std::atomic<RootPage*> g_root_pages[kRootMaxPages] = {};
std::mutex g_root_page_mu;

}  // namespace

Symbol RootSymbol(Symbol spelling) {
  const uint32_t id = spelling.id();
  const uint32_t page_index = id >> kRootPageBits;
  RootPage* page = g_root_pages[page_index].load(std::memory_order_acquire);
  if (page == nullptr) {
    std::lock_guard<std::mutex> lock(g_root_page_mu);
    page = g_root_pages[page_index].load(std::memory_order_relaxed);
    if (page == nullptr) {
      page = new RootPage();
      g_root_pages[page_index].store(page, std::memory_order_release);
    }
  }
  std::atomic<uint32_t>& slot = page->roots[id & (kRootPageSize - 1)];
  const uint32_t cached = slot.load(std::memory_order_relaxed);
  if (cached != 0) {
    return Symbol(cached - 1);
  }
  const std::string_view text = spelling.view();
  size_t i = 0;
  while (i < text.size() && text[i] == '*') {
    ++i;
  }
  size_t end = i;
  while (end < text.size() &&
         (std::isalnum(static_cast<unsigned char>(text[end])) != 0 || text[end] == '_')) {
    ++end;
  }
  const Symbol root = Intern(text.substr(i, end - i));
  slot.store(root.id() + 1, std::memory_order_relaxed);
  return root;
}

namespace {

// Walks expressions of one CFG node and emits SemEvents in evaluation order.
class EventExtractor {
 public:
  EventExtractor(const KnowledgeBase& kb, const SymbolSet& params,
                 const SymbolSet& locals, std::vector<SemEvent>& out)
      : kb_(kb), params_(params), locals_(locals), out_(out) {}

  // address_taken: the immediately-enclosing operator is '&', so a member
  // access does not read memory.
  void Visit(const Expr& e, uint32_t line, bool address_taken = false) {
    switch (e.kind) {
      case Expr::Kind::kAssign:
        VisitAssign(e, line);
        return;
      case Expr::Kind::kCall:
        VisitCall(e, line);
        return;
      case Expr::Kind::kMember: {
        if (e.arrow && !address_taken && !e.args.empty() && e.args[0] != nullptr) {
          Emit(SemOp::kDeref, ObjectSpelling(*e.args[0]), line);
        }
        if (!e.args.empty() && e.args[0] != nullptr) {
          // The base of `a->b->c` is itself a deref of `a`.
          Visit(*e.args[0], line, /*address_taken=*/false);
        }
        return;
      }
      case Expr::Kind::kUnary: {
        if (e.args.empty() || e.args[0] == nullptr) {
          return;
        }
        if (e.value == "*" && !address_taken) {
          Emit(SemOp::kDeref, ObjectSpelling(*e.args[0]), line);
        }
        // Raw ++/-- on a known refcount field bypasses the checked
        // saturating APIs (P10): `obj->refcnt++` where `refcnt` was declared
        // refcount_t / kref / typed-atomic.
        if ((e.value == "++" || e.value == "--") &&
            e.args[0]->kind == Expr::Kind::kMember &&
            kb_.IsRefcountField(e.args[0]->value)) {
          const Symbol obj = ObjectSpelling(*e.args[0]);
          if (!obj.empty()) {
            Emit(e.value == "++" ? SemOp::kRawInc : SemOp::kRawDec, obj, line);
          }
        }
        const bool inner_addr = e.value == "&";
        Visit(*e.args[0], line, inner_addr);
        return;
      }
      case Expr::Kind::kIndex: {
        if (!e.args.empty() && e.args[0] != nullptr) {
          if (!address_taken) {
            Emit(SemOp::kDeref, ObjectSpelling(*e.args[0]), line);
          }
          Visit(*e.args[0], line);
        }
        if (e.args.size() > 1 && e.args[1] != nullptr) {
          Visit(*e.args[1], line);
        }
        return;
      }
      default:
        for (const ExprPtr child : e.args) {
          if (child != nullptr) {
            Visit(*child, line);
          }
        }
        return;
    }
  }

  // Extracts NULL-check events from a branch condition (in addition to the
  // regular Visit events, which the caller also runs).
  void VisitCondition(const Expr& e, uint32_t line) {
    switch (e.kind) {
      case Expr::Kind::kUnary:
        if (e.value == "!" && !e.args.empty() && e.args[0] != nullptr) {
          const Symbol obj = ObjectSpelling(*e.args[0]);
          if (!obj.empty()) {
            EmitNullCheck(obj, line, /*true_is_null=*/true);
          }
        }
        return;
      case Expr::Kind::kIdent: {
        if (e.value != "NULL") {
          EmitNullCheck(e.value, line, /*true_is_null=*/false);
        }
        return;
      }
      case Expr::Kind::kMember: {
        const Symbol obj = ObjectSpelling(e);
        if (!obj.empty()) {
          EmitNullCheck(obj, line, /*true_is_null=*/false);
        }
        return;
      }
      case Expr::Kind::kBinary: {
        if (e.args.size() < 2 || e.args[0] == nullptr || e.args[1] == nullptr) {
          return;
        }
        const bool rhs_null = (e.args[1]->kind == Expr::Kind::kIdent &&
                               e.args[1]->value == "NULL") ||
                              (e.args[1]->kind == Expr::Kind::kLiteral && e.args[1]->value == "0");
        if ((e.value == "==" || e.value == "!=") && rhs_null) {
          const Symbol obj = ObjectSpelling(*e.args[0]);
          if (!obj.empty()) {
            EmitNullCheck(obj, line, /*true_is_null=*/e.value == "==");
          }
          return;
        }
        if (e.value == "&&" || e.value == "||") {
          VisitCondition(*e.args[0], line);
          VisitCondition(*e.args[1], line);
        }
        return;
      }
      case Expr::Kind::kAssign:
        // `if ((np = of_find_node(...)))` — the assigned object is checked.
        if (!e.args.empty() && e.args[0] != nullptr) {
          const Symbol obj = ObjectSpelling(*e.args[0]);
          if (!obj.empty()) {
            EmitNullCheck(obj, line, /*true_is_null=*/false);
          }
        }
        return;
      case Expr::Kind::kCall: {
        // `if (IS_ERR(np))` guards ERR_PTR-returning acquirers the same way
        // a NULL check guards NULL-returning ones.
        const Symbol callee = e.CalleeName();
        if ((callee == "IS_ERR" || callee == "IS_ERR_OR_NULL") && e.args.size() > 1 &&
            e.args[1] != nullptr) {
          const Symbol obj = ObjectSpelling(*e.args[1]);
          if (!obj.empty()) {
            EmitNullCheck(obj, line, /*true_is_null=*/true);
          }
        }
        if ((callee == "unlikely" || callee == "likely") && e.args.size() > 1 &&
            e.args[1] != nullptr) {
          VisitCondition(*e.args[1], line);
        }
        return;
      }
      default:
        return;
    }
  }

 private:
  void Emit(SemOp op, Symbol object, uint32_t line) {
    if (op == SemOp::kDeref && object.empty()) {
      return;
    }
    SemEvent ev;
    ev.op = op;
    ev.object = object;
    ev.line = line;
    out_.push_back(ev);
  }

  void EmitNullCheck(Symbol object, uint32_t line, bool true_is_null) {
    SemEvent ev;
    ev.op = SemOp::kNullCheck;
    ev.object = object;
    ev.line = line;
    ev.checks_null_true_branch = true_is_null;
    out_.push_back(ev);
  }

  void VisitAssign(const Expr& e, uint32_t line) {
    if (e.args.size() < 2 || e.args[0] == nullptr || e.args[1] == nullptr) {
      return;
    }
    const Expr& lhs = *e.args[0];
    const Expr& rhs = *e.args[1];

    // Writing through a pointer lhs dereferences its base.
    if (lhs.kind == Expr::Kind::kMember && lhs.arrow && !lhs.args.empty() &&
        lhs.args[0] != nullptr) {
      Emit(SemOp::kDeref, ObjectSpelling(*lhs.args[0]), line);
    }
    if (lhs.kind == Expr::Kind::kUnary && lhs.value == "*" && !lhs.args.empty() &&
        lhs.args[0] != nullptr) {
      Emit(SemOp::kDeref, ObjectSpelling(*lhs.args[0]), line);
    }

    // rhs first (evaluation order does not matter for matching).
    Visit(rhs, line);

    // Compound/plain stores to a known refcount field (P10/P12): `+=`/`-=`
    // are raw manipulation like ++/--; `= <literal>` is a reset (kRawSet,
    // with the `= 1` init idiom recorded as nonzero so P12 can allow it).
    if (lhs.kind == Expr::Kind::kMember && kb_.IsRefcountField(lhs.value)) {
      const Symbol field_obj = ObjectSpelling(lhs);
      if (!field_obj.empty()) {
        if (e.value == "+=") {
          Emit(SemOp::kRawInc, field_obj, line);
        } else if (e.value == "-=") {
          Emit(SemOp::kRawDec, field_obj, line);
        } else if (e.value == "=" && rhs.kind == Expr::Kind::kLiteral) {
          SemEvent raw;
          raw.op = SemOp::kRawSet;
          raw.object = field_obj;
          raw.line = line;
          raw.raw_set_nonzero = rhs.value != "0";
          out_.push_back(raw);
        }
      }
    }

    const Symbol lhs_obj = ObjectSpelling(lhs);
    SemEvent ev;
    ev.op = SemOp::kAssign;
    ev.object = lhs_obj;
    ev.aux = ObjectSpelling(rhs);
    if (const Expr* rhs_call = StripTransparent(&rhs);
        rhs_call != nullptr && rhs_call->kind == Expr::Kind::kCall) {
      // Assignment from a call: the call's own events (e.g. 𝒢 of the
      // returned object) were emitted by Visit(rhs) with the lhs unknown;
      // PatchCallResult below rewrites them. Record the call for that.
      pending_call_result_ = lhs_obj;
    }
    ev.line = line;
    ev.escapes = EscapesScope(lhs);
    out_.push_back(ev);
    PatchCallResult();
  }

  // An lhs escapes the function when it is a global identifier (not a local
  // or parameter) or a store through a parameter (out-param / longer-lived
  // object field).
  bool EscapesScope(const Expr& lhs) const {
    const Symbol root = ObjectRoot(lhs);
    if (root.empty()) {
      return false;
    }
    const bool is_param = params_.contains(root);
    const bool is_local = locals_.contains(root);
    if (lhs.kind == Expr::Kind::kIdent) {
      return !is_param && !is_local;  // plain write to a global
    }
    // Member/deref store: escapes when rooted in a parameter or a global.
    if (is_param) {
      return true;
    }
    return !is_local;
  }

  void VisitCall(const Expr& e, uint32_t line) {
    const Symbol callee = e.CalleeName();
    const RefApiInfo* api = kb_.FindApi(callee);

    // Visit arguments first (derefs inside argument expressions).
    for (size_t i = 1; i < e.args.size(); ++i) {
      if (e.args[i] != nullptr) {
        Visit(*e.args[i], line, /*address_taken=*/false);
      }
    }

    auto arg_object = [&](int index) -> Symbol {
      const size_t slot = static_cast<size_t>(index) + 1;
      if (index < 0 || slot >= e.args.size() || e.args[slot] == nullptr) {
        return Symbol();
      }
      return ObjectSpelling(*e.args[slot]);
    };

    if (api != nullptr) {
      if (api->consumed_param >= 0) {
        const Symbol victim = arg_object(api->consumed_param);
        if (!victim.empty()) {
          SemEvent ev;
          ev.op = SemOp::kDecrease;
          ev.object = victim;
          ev.api = api;
          ev.line = line;
          out_.push_back(ev);
        }
      }
      SemEvent ev;
      ev.op = api->direction == RefDirection::kIncrease ? SemOp::kIncrease : SemOp::kDecrease;
      ev.api = api;
      ev.line = line;
      if (api->returns_object && api->object_param < 0) {
        // Object is the return value; the enclosing assignment (if any)
        // patches in the lhs spelling.
        ev.object = Symbol();
        out_.push_back(ev);
        unpatched_result_ = static_cast<int>(out_.size()) - 1;
      } else {
        ev.object = arg_object(api->object_param);
        out_.push_back(ev);
      }
      return;
    }

    // Summarised helpers known to dereference some of their parameters get
    // synthetic 𝒟 events at the call site, so use-after-decrease shapes
    // hidden inside helpers stay visible to the checkers.
    if (const std::vector<int>* derefs = kb_.FindParamDerefs(callee); derefs != nullptr) {
      for (const int param : *derefs) {
        Emit(SemOp::kDeref, arg_object(param), line);
      }
    }

    if (kb_.IsFreeApi(callee)) {
      Emit(SemOp::kFree, arg_object(0), line);
      return;
    }
    // Ownership sinks: the callee stores this argument into longer-lived
    // state, so the caller's reference escapes through the call.
    if (const int sink_param = kb_.FindOwnershipSink(callee); sink_param >= 0) {
      const Symbol victim = arg_object(sink_param);
      if (!victim.empty()) {
        thread_local std::string scratch;
        scratch.assign(callee.view());
        scratch.append("()");
        SemEvent ev;
        ev.op = SemOp::kAssign;
        ev.object = Intern(scratch);
        ev.aux = victim;
        ev.line = line;
        ev.escapes = true;
        out_.push_back(ev);
      }
    }
    if (KnowledgeBase::IsLockFunction(callee)) {
      Emit(SemOp::kLock, arg_object(0), line);
      return;
    }
    if (KnowledgeBase::IsUnlockFunction(callee)) {
      Emit(SemOp::kUnlock, arg_object(0), line);
      return;
    }
  }

  void PatchCallResult() {
    if (unpatched_result_ >= 0 && !pending_call_result_.empty()) {
      out_[static_cast<size_t>(unpatched_result_)].object = pending_call_result_;
    }
    unpatched_result_ = -1;
    pending_call_result_ = Symbol();
  }

  const KnowledgeBase& kb_;
  const SymbolSet& params_;
  const SymbolSet& locals_;
  std::vector<SemEvent>& out_;
  int unpatched_result_ = -1;
  Symbol pending_call_result_;
};

}  // namespace

Cpg BuildCpg(const Cfg& cfg, const KnowledgeBase& kb) {
  Cpg cpg;
  cpg.cfg_ = &cfg;
  cpg.kb_ = &kb;
  cpg.event_offsets_.reserve(cfg.size() + 1);
  cpg.event_offsets_.push_back(0);

  const FunctionDef* fn = cfg.function();
  for (const Param& p : fn->params) {
    if (!p.name.empty()) {
      cpg.params_.insert(p.name);
    }
  }
  if (fn->body != nullptr) {
    ForEachStmt(*fn->body, [&cpg](const Stmt& s) {
      if (s.kind == Stmt::Kind::kDecl && !s.name.empty()) {
        cpg.locals_.insert(s.name);
      }
    });
  }

  // Nodes are processed in index order, appending to the flat array; the
  // offset for node i is sealed when the loop advances (see the `seal`
  // labels below — every `continue` path records the end offset).
  std::vector<SemEvent>& events = cpg.events_;
  const auto seal = [&cpg] {
    cpg.event_offsets_.push_back(static_cast<uint32_t>(cpg.events_.size()));
  };
  // P11: a tests_zero decrease (refcount_dec_and_test & co) whose boolean
  // result feeds this node's condition / initializer / assignment / return is
  // "tested" — the caller observed the 1 -> 0 transition. The call's events
  // are necessarily in the node's own slice, so marking the slice suffices.
  const auto mark_tested = [&events](size_t from) {
    for (size_t k = from; k < events.size(); ++k) {
      SemEvent& ev = events[k];
      if (ev.op == SemOp::kDecrease && ev.api != nullptr && ev.api->tests_zero) {
        ev.result_tested = true;
      }
    }
  };
  for (size_t i = 0; i < cfg.size(); ++i) {
    const CfgNode& node = cfg.node(static_cast<int>(i));
    const size_t node_start = events.size();
    EventExtractor extractor(kb, cpg.params_, cpg.locals_, events);

    if (node.kind == CfgNode::Kind::kLoopHead && node.expr != nullptr &&
        node.expr->kind == Expr::Kind::kCall) {
      SemEvent ev;
      ev.op = SemOp::kLoopHead;
      ev.line = node.line;
      ev.loop = kb.FindSmartLoop(node.expr->CalleeName());
      if (ev.loop != nullptr) {
        const size_t slot = static_cast<size_t>(ev.loop->iterator_arg) + 1;
        if (slot < node.expr->args.size() && node.expr->args[slot] != nullptr) {
          ev.object = ObjectSpelling(*node.expr->args[slot]);
        }
      }
      events.push_back(ev);
      // Also extract ordinary events from the head's other arguments
      // (e.g. a consumed `from` pointer is not modelled for macros).
      seal();
      continue;
    }

    // kDecl initializer: synthesise the assignment into the declared name.
    if (node.stmt != nullptr && node.stmt->kind == Stmt::Kind::kDecl) {
      if (node.expr != nullptr) {
        // `type name = init;` has assignment semantics: visit the
        // initializer, patch any returns-object refcount event with the
        // declared name, then record the 𝒜 event.
        extractor.Visit(*node.expr, node.line);
        // Patch a pending returns-object event (find-like initializer);
        // only this node's slice of the flat array is a candidate.
        for (size_t k = events.size(); k > node_start; --k) {
          SemEvent& cand = events[k - 1];
          if ((cand.op == SemOp::kIncrease || cand.op == SemOp::kDecrease) &&
              cand.object.empty() && cand.api != nullptr && cand.api->returns_object &&
              cand.api->object_param < 0) {
            cand.object = node.stmt->name;
            break;
          }
        }
        SemEvent ev;
        ev.op = SemOp::kAssign;
        ev.object = node.stmt->name;
        ev.aux = ObjectSpelling(*node.expr);
        ev.line = node.line;
        ev.escapes = false;  // declarations never escape
        events.push_back(ev);
        mark_tested(node_start);  // `bool dead = refcount_dec_and_test(...)`
      }
      seal();
      continue;
    }

    if (node.kind == CfgNode::Kind::kCondition && node.expr != nullptr) {
      extractor.Visit(*node.expr, node.line);
      extractor.VisitCondition(*node.expr, node.line);
      mark_tested(node_start);  // `if (refcount_dec_and_test(...))`
      seal();
      continue;
    }

    if (node.stmt != nullptr && node.stmt->kind == Stmt::Kind::kReturn) {
      if (node.expr != nullptr) {
        extractor.Visit(*node.expr, node.line);
      }
      SemEvent ev;
      ev.op = SemOp::kReturn;
      ev.line = node.line;
      if (node.expr != nullptr) {
        ev.object = ObjectSpelling(*node.expr);
        // `return to_foo(obj)` / `return container_of(obj, ...)` transfers
        // obj's ownership through the wrapper; record the argument so the
        // acquisition analysis can see the hand-off.
        if (ev.object.empty() && node.expr->kind == Expr::Kind::kCall &&
            node.expr->CalleeName() != "ERR_PTR" && node.expr->CalleeName() != "ERR_CAST") {
          for (size_t a = 1; a < node.expr->args.size(); ++a) {
            if (node.expr->args[a] != nullptr) {
              const Symbol spelling = ObjectSpelling(*node.expr->args[a]);
              if (!spelling.empty()) {
                ev.aux = spelling;
                break;
              }
            }
          }
        }
      }
      events.push_back(ev);
      mark_tested(node_start);  // `return refcount_dec_and_test(...)`
      seal();
      continue;
    }

    if (node.expr != nullptr) {
      extractor.Visit(*node.expr, node.line);
      if (node.expr->kind == Expr::Kind::kAssign) {
        mark_tested(node_start);  // `dead = refcount_dec_and_test(...)`
      }
    }
    seal();
  }
  return cpg;
}

std::vector<const SemEvent*> Cpg::EventsAlong(const std::vector<int>& path) const {
  std::vector<const SemEvent*> out;
  for (int node : path) {
    for (const SemEvent& ev : events(node)) {
      out.push_back(&ev);
    }
  }
  return out;
}

}  // namespace refscan
