// Code Property Graph: CFG nodes annotated with semantic operator events.
//
// This is refscan's equivalent of the paper's JOERN-based CPG (§6.1): for
// every CFG node we derive the ordered list of semantic events the paper's
// templates speak about — 𝒢 (increase), 𝒫 (decrease), 𝒜 (assignment),
// 𝒟 (dereference), ℒ/𝒰 (lock/unlock), free(), NULL-checks, returns and
// smartloop heads — each bound to a *symbolic object* (the normalised
// pointer spelling, e.g. "np" or "crc->dev"). The anti-pattern checkers
// (src/checkers) match template paths over these event sequences.

#ifndef REFSCAN_CPG_CPG_H_
#define REFSCAN_CPG_CPG_H_

#include <set>
#include <string>
#include <vector>

#include "src/ast/ast.h"
#include "src/cfg/cfg.h"
#include "src/kb/kb.h"

namespace refscan {

enum class SemOp : uint8_t {
  kIncrease,   // 𝒢: refcount acquired on `object`
  kDecrease,   // 𝒫: refcount released on `object`
  kAssign,     // 𝒜: `object` (lhs) assigned from `aux` (rhs object, may be "")
  kDeref,      // 𝒟: memory access through `object`
  kLock,       // ℒ
  kUnlock,     // 𝒰
  kFree,       // direct kfree-style deallocation of `object`
  kNullCheck,  // `object` tested against NULL (either polarity)
  kReturn,     // function return; `object` = returned identifier if any
  kLoopHead,   // smartloop head; `object` = iterator variable
};

struct SemEvent {
  SemOp op = SemOp::kDeref;
  std::string object;  // normalised spelling; may be empty when unknown
  std::string aux;     // kAssign: rhs object spelling
  uint32_t line = 0;

  const RefApiInfo* api = nullptr;        // kIncrease/kDecrease via an API
  const SmartLoopInfo* loop = nullptr;    // kLoopHead (null for unknown loops)
  bool escapes = false;                   // kAssign into a global / out-param
  bool checks_null_true_branch = false;   // kNullCheck: true branch is the NULL side
};

// Per-function CPG. Parallel arrays with the Cfg it annotates; the Cfg, the
// KB and the AST must outlive the Cpg.
class Cpg {
 public:
  const Cfg& cfg() const { return *cfg_; }
  const KnowledgeBase& kb() const { return *kb_; }
  const std::vector<SemEvent>& events(int node) const {
    return node_events_[static_cast<size_t>(node)];
  }
  size_t size() const { return node_events_.size(); }

  // Names of this function's parameters / local declarations (escape logic).
  const std::set<std::string>& params() const { return params_; }
  const std::set<std::string>& locals() const { return locals_; }

  // Flattened event stream along a CFG path (convenience for checkers).
  std::vector<const SemEvent*> EventsAlong(const std::vector<int>& path) const;

 private:
  friend Cpg BuildCpg(const Cfg& cfg, const KnowledgeBase& kb);
  const Cfg* cfg_ = nullptr;
  const KnowledgeBase* kb_ = nullptr;
  std::vector<std::vector<SemEvent>> node_events_;
  std::set<std::string> params_;
  std::set<std::string> locals_;
};

Cpg BuildCpg(const Cfg& cfg, const KnowledgeBase& kb);

// Normalises an expression to its symbolic object spelling: strips casts and
// address-of, renders identifiers and member chains; returns "" for
// anything without a stable identity (calls, arithmetic, literals).
std::string ObjectSpelling(const Expr& expr);

// Root identifier of a member chain ("crc" for "crc->dev.node"), or the
// identifier itself; "" when not rooted in an identifier.
std::string ObjectRoot(const Expr& expr);
std::string ObjectRootOfSpelling(std::string_view spelling);

}  // namespace refscan

#endif  // REFSCAN_CPG_CPG_H_
