// Code Property Graph: CFG nodes annotated with semantic operator events.
//
// This is refscan's equivalent of the paper's JOERN-based CPG (§6.1): for
// every CFG node we derive the ordered list of semantic events the paper's
// templates speak about — 𝒢 (increase), 𝒫 (decrease), 𝒜 (assignment),
// 𝒟 (dereference), ℒ/𝒰 (lock/unlock), free(), NULL-checks, returns and
// smartloop heads — each bound to a *symbolic object* (the normalised
// pointer spelling, e.g. "np" or "crc->dev"). The anti-pattern checkers
// (src/checkers) match template paths over these event sequences.
//
// Object spellings are interned Symbols (DESIGN.md §5.11): event comparison
// in the checkers is a 32-bit integer compare, and the root of a spelling
// ("crc" for "crc->dev.node") is memoized per distinct Symbol so template
// matching never re-parses spelling text on the hot path.

#ifndef REFSCAN_CPG_CPG_H_
#define REFSCAN_CPG_CPG_H_

#include <span>
#include <string>
#include <vector>

#include "src/ast/ast.h"
#include "src/cfg/cfg.h"
#include "src/kb/kb.h"
#include "src/support/interner.h"

namespace refscan {

enum class SemOp : uint8_t {
  kIncrease,   // 𝒢: refcount acquired on `object`
  kDecrease,   // 𝒫: refcount released on `object`
  kAssign,     // 𝒜: `object` (lhs) assigned from `aux` (rhs object, may be "")
  kDeref,      // 𝒟: memory access through `object`
  kLock,       // ℒ
  kUnlock,     // 𝒰
  kFree,       // direct kfree-style deallocation of `object`
  kNullCheck,  // `object` tested against NULL (either polarity)
  kReturn,     // function return; `object` = returned identifier if any
  kLoopHead,   // smartloop head; `object` = iterator variable
  kRawInc,     // P10: ++/+= on a known refcount field, bypassing checked APIs
  kRawDec,     // P10: --/-= on a known refcount field
  kRawSet,     // P12: direct store to a known refcount field (obj->refs = N)
};

struct SemEvent {
  SemOp op = SemOp::kDeref;
  Symbol object;  // normalised spelling; empty Symbol when unknown
  Symbol aux;     // kAssign: rhs object spelling
  uint32_t line = 0;

  const RefApiInfo* api = nullptr;        // kIncrease/kDecrease via an API
  const SmartLoopInfo* loop = nullptr;    // kLoopHead (null for unknown loops)
  bool escapes = false;                   // kAssign into a global / out-param
  bool checks_null_true_branch = false;   // kNullCheck: true branch is the NULL side
  bool result_tested = false;  // kDecrease via a tests_zero API whose return
                               // value feeds a condition/assignment/return
  bool raw_set_nonzero = false;  // kRawSet: rhs is a nonzero literal (init idiom)
};

// Per-function CPG. Parallel arrays with the Cfg it annotates; the Cfg, the
// KB and the AST must outlive the Cpg. Events live in one flat array
// (DESIGN.md §5.11) — node n's slice is events_[event_offsets_[n] ..
// event_offsets_[n+1]) — so building a CPG costs two allocations instead of
// one vector per CFG node, and a path walk reads contiguous memory.
// SemEvent addresses are stable once BuildCpg returns (checkers cache
// `const SemEvent*` in their trace sets).
class Cpg {
 public:
  const Cfg& cfg() const { return *cfg_; }
  const KnowledgeBase& kb() const { return *kb_; }
  std::span<const SemEvent> events(int node) const {
    const size_t n = static_cast<size_t>(node);
    return std::span<const SemEvent>(events_.data() + event_offsets_[n],
                                     event_offsets_[n + 1] - event_offsets_[n]);
  }
  size_t size() const { return event_offsets_.empty() ? 0 : event_offsets_.size() - 1; }

  // Names of this function's parameters / local declarations (escape logic).
  // Membership-only sets — see SymbolSet's determinism note.
  const SymbolSet& params() const { return params_; }
  const SymbolSet& locals() const { return locals_; }

  // Flattened event stream along a CFG path (convenience for checkers).
  std::vector<const SemEvent*> EventsAlong(const std::vector<int>& path) const;

 private:
  friend Cpg BuildCpg(const Cfg& cfg, const KnowledgeBase& kb);
  const Cfg* cfg_ = nullptr;
  const KnowledgeBase* kb_ = nullptr;
  std::vector<SemEvent> events_;
  std::vector<uint32_t> event_offsets_;  // size()+1 entries
  SymbolSet params_;
  SymbolSet locals_;
};

Cpg BuildCpg(const Cfg& cfg, const KnowledgeBase& kb);

// Normalises an expression to its symbolic object spelling: strips casts and
// address-of, renders identifiers and member chains; returns the empty
// Symbol for anything without a stable identity (calls, arithmetic,
// literals). Single identifiers hit a fast path (the AST value is already
// the Symbol); composite spellings intern once per distinct text.
Symbol ObjectSpelling(const Expr& expr);

// Root identifier of a member chain ("crc" for "crc->dev.node"), or the
// identifier itself; the empty Symbol when not rooted in an identifier.
Symbol ObjectRoot(const Expr& expr);
std::string ObjectRootOfSpelling(std::string_view spelling);

// Root of an interned spelling, memoized per Symbol id in a global
// lock-free page table: after first touch, RootsMatch-style checks cost two
// loads and an integer compare. RootSymbol(s) == Intern(ObjectRootOfSpelling(s.view())).
Symbol RootSymbol(Symbol spelling);

}  // namespace refscan

#endif  // REFSCAN_CPG_CPG_H_
