// Human-readable dumps of the front-end stages (the JOERN-workbench role):
// token streams, AST shapes, CFG structure and CPG semantic events. Used by
// `refscan dump` and invaluable when writing custom semantic templates.

#ifndef REFSCAN_CPG_DUMP_H_
#define REFSCAN_CPG_DUMP_H_

#include <string>

#include "src/ast/ast.h"
#include "src/support/source.h"
#include "src/cfg/cfg.h"
#include "src/cpg/cpg.h"

namespace refscan {

// One line per token: "line kind text".
std::string DumpTokens(const SourceFile& file);

// Indented AST of a translation unit (functions, statements, expressions).
std::string DumpAst(const TranslationUnit& unit);

// One line per CFG node: index, kind, line, successor list, flags
// (error-context, macro-loop membership).
std::string DumpCfg(const Cfg& cfg);

// One line per semantic event, grouped by CFG node.
std::string DumpCpg(const Cpg& cpg);

// Short name of a semantic operator ("INC", "DEC", "DEREF", ...).
std::string_view SemOpName(SemOp op);

}  // namespace refscan

#endif  // REFSCAN_CPG_DUMP_H_
