// Tolerant C tokenizer (the paper's PLY lexer-parsing layer).
//
// Produces a flat token vector over one source file. Comments are skipped
// (line-accurately), preprocessor directives are captured as single tokens
// spanning continuation lines (the KB's smartloop-macro discovery consumes
// these), and everything else becomes identifier / keyword / number /
// string / char-literal / punctuation tokens. Tokens are string_views into
// the SourceFile buffer, so the file must outlive the tokens.
//
// The lexer never fails: unknown bytes become single-character punctuation
// tokens, matching the paper's need to digest all kernel code without the
// full set of compilation flags ("Why not LLVM", §6.1).

#ifndef REFSCAN_LEXER_LEXER_H_
#define REFSCAN_LEXER_LEXER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/source.h"

namespace refscan {

enum class TokenKind : uint8_t {
  kIdentifier,
  kKeyword,
  kNumber,
  kString,
  kChar,
  kPunct,
  kPreproc,  // whole directive including continuation lines, e.g. "#define foo(x) ..."
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string_view text;
  uint32_t line = 0;  // 1-based line of the token's first character

  bool Is(TokenKind k) const { return kind == k; }
  bool Is(std::string_view s) const { return text == s; }
  bool IsIdent(std::string_view s) const { return kind == TokenKind::kIdentifier && text == s; }
};

// Side storage for identifier spellings that span a backslash-newline line
// splice: the normalized (splice-free) text cannot be a view into the file
// buffer, so it lives here instead. A deque keeps element addresses stable
// as it grows, which is what lets tokens hold string_views into it. Must
// outlive the returned tokens, like the SourceFile itself.
using SpliceStorage = std::deque<std::string>;

// Tokenizes `file`; the trailing token is always kEof. Line splices
// (`\`+optional trailing whitespace+newline, GCC translation phase 2) are
// honoured everywhere: between tokens, inside `//` comments, directives,
// string/char literals, and identifiers. Spliced identifiers are normalized
// into `storage` when provided; with a null `storage` their raw in-buffer
// span (splice bytes included) is kept, so every token still points into
// the file buffer.
std::vector<Token> Tokenize(const SourceFile& file, SpliceStorage* storage = nullptr);

// True for C keywords (C11 plus common kernel storage specifiers).
bool IsCKeyword(std::string_view word);

// Cursor over a token vector with lookahead; shared by the AST parser and
// the KB's macro scanner.
class TokenCursor {
 public:
  explicit TokenCursor(const std::vector<Token>& tokens) : tokens_(&tokens) {}

  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_->size() ? (*tokens_)[i] : tokens_->back();
  }
  const Token& Next() {
    const Token& t = Peek();
    if (pos_ + 1 < tokens_->size()) {
      ++pos_;
    } else {
      pos_ = tokens_->size() - 1;
    }
    return t;
  }
  bool AtEnd() const { return Peek().kind == TokenKind::kEof; }

  // Consumes the next token if it matches `text`.
  bool Eat(std::string_view text) {
    if (Peek().text == text && Peek().kind != TokenKind::kEof) {
      Next();
      return true;
    }
    return false;
  }

  size_t position() const { return pos_; }
  void set_position(size_t pos) { pos_ = pos < tokens_->size() ? pos : tokens_->size() - 1; }

 private:
  const std::vector<Token>* tokens_;
  size_t pos_ = 0;
};

}  // namespace refscan

#endif  // REFSCAN_LEXER_LEXER_H_
