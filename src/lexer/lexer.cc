#include "src/lexer/lexer.h"

#include <array>
#include <string_view>

namespace refscan {

namespace {

// Table-driven character classes: one L1-resident lookup per character
// instead of a libc call (std::isalnum goes through the locale machinery,
// which shows up directly in tokenizer throughput).
enum CharClass : uint8_t {
  kCcIdentStart = 1 << 0,  // [A-Za-z_]
  kCcIdentChar = 1 << 1,   // [A-Za-z0-9_]
  kCcDigit = 1 << 2,       // [0-9]
  kCcSpace = 1 << 3,       // space, \t, \v, \f, \r (not \n: handled separately)
};

constexpr std::array<uint8_t, 256> BuildCharClasses() {
  std::array<uint8_t, 256> t{};
  for (int c = 'a'; c <= 'z'; ++c) {
    t[c] = kCcIdentStart | kCcIdentChar;
  }
  for (int c = 'A'; c <= 'Z'; ++c) {
    t[c] = kCcIdentStart | kCcIdentChar;
  }
  t['_'] = kCcIdentStart | kCcIdentChar;
  for (int c = '0'; c <= '9'; ++c) {
    t[c] = kCcIdentChar | kCcDigit;
  }
  t[' '] = kCcSpace;
  t['\t'] = kCcSpace;
  t['\v'] = kCcSpace;
  t['\f'] = kCcSpace;
  t['\r'] = kCcSpace;
  return t;
}

constexpr std::array<uint8_t, 256> kCharClass = BuildCharClasses();

inline bool IsIdentStart(char c) {
  return (kCharClass[static_cast<unsigned char>(c)] & kCcIdentStart) != 0;
}

inline bool IsIdentChar(char c) {
  return (kCharClass[static_cast<unsigned char>(c)] & kCcIdentChar) != 0;
}

inline bool IsDigit(char c) {
  return (kCharClass[static_cast<unsigned char>(c)] & kCcDigit) != 0;
}

// Multi-character punctuators, dispatched on the leading character so each
// punct costs at most a couple of comparisons.
size_t PunctLength(std::string_view rest) {
  const char c = rest[0];
  const char d = rest.size() > 1 ? rest[1] : '\0';
  const char e = rest.size() > 2 ? rest[2] : '\0';
  switch (c) {
    case '<':
      if (d == '<') {
        return e == '=' ? 3 : 2;  // <<= <<
      }
      return d == '=' ? 2 : 1;  // <= <
    case '>':
      if (d == '>') {
        return e == '=' ? 3 : 2;  // >>= >>
      }
      return d == '=' ? 2 : 1;  // >= >
    case '.':
      return (d == '.' && e == '.') ? 3 : 1;  // ... .
    case '-':
      return (d == '>' || d == '-' || d == '=') ? 2 : 1;  // -> -- -=
    case '+':
      return (d == '+' || d == '=') ? 2 : 1;  // ++ +=
    case '&':
      return (d == '&' || d == '=') ? 2 : 1;  // && &=
    case '|':
      return (d == '|' || d == '=') ? 2 : 1;  // || |=
    case '=':
    case '!':
    case '*':
    case '/':
    case '%':
    case '^':
      return d == '=' ? 2 : 1;  // == != *= /= %= ^=
    case '#':
      return d == '#' ? 2 : 1;  // ##
    default:
      return 1;
  }
}

// Keyword test dispatched on (length, first char): identifiers dominate the
// token stream and most fail on the length switch alone, so the common case
// costs no string comparison at all.
bool IsKeywordSlow(std::string_view w) {
  switch (w.size()) {
    case 2:
      return w == "if" || w == "do";
    case 3:
      return w == "int" || w == "for" || w == "asm";
    case 4:
      switch (w[0]) {
        case 'a': return w == "auto";
        case 'c': return w == "case" || w == "char";
        case 'e': return w == "else" || w == "enum";
        case 'g': return w == "goto";
        case 'l': return w == "long";
        case 'v': return w == "void";
        default: return false;
      }
    case 5:
      switch (w[0]) {
        case 'b': return w == "break";
        case 'c': return w == "const";
        case 'f': return w == "float";
        case 's': return w == "short";
        case 'u': return w == "union";
        case 'w': return w == "while";
        case '_': return w == "_Bool";
        default: return false;
      }
    case 6:
      switch (w[0]) {
        case 'd': return w == "double";
        case 'e': return w == "extern";
        case 'i': return w == "inline";
        case 'r': return w == "return";
        case 's': return w == "signed" || w == "sizeof" || w == "static" || w == "struct" ||
                         w == "switch";
        case 't': return w == "typeof";
        default: return false;
      }
    case 7:
      switch (w[0]) {
        case 'd': return w == "default";
        case 't': return w == "typedef";
        case '_': return w == "_Atomic";
        default: return false;
      }
    case 8:
      switch (w[0]) {
        case 'c': return w == "continue";
        case 'r': return w == "register" || w == "restrict";
        case 'u': return w == "unsigned";
        case 'v': return w == "volatile";
        case '_': return w == "__asm__" || w == "__inline";
        default: return false;
      }
    case 10:
      return w == "__typeof__";
    default:
      return false;
  }
}

// Length of a translation-phase-2 line splice at `i`: a backslash, optional
// trailing whitespace (kernel trees carry both CRLF line endings and
// `\`+spaces — GCC accepts both, the latter with a warning), then a newline.
// Returns 0 if `i` does not start a splice. The returned span contains
// exactly one '\n'.
size_t SpliceLen(std::string_view text, size_t i) {
  if (i >= text.size() || text[i] != '\\') {
    return 0;
  }
  size_t j = i + 1;
  while (j < text.size() && (text[j] == ' ' || text[j] == '\t' || text[j] == '\r')) {
    ++j;
  }
  return (j < text.size() && text[j] == '\n') ? j + 1 - i : 0;
}

}  // namespace

bool IsCKeyword(std::string_view word) { return IsKeywordSlow(word); }

std::vector<Token> Tokenize(const SourceFile& file, SpliceStorage* storage) {
  std::vector<Token> tokens;
  const std::string_view text = file.text();
  size_t i = 0;
  const size_t n = text.size();
  // Identifiers + puncts typically land one token per ~5 bytes of kernel C.
  tokens.reserve(n / 5 + 8);
  bool at_line_start = true;  // only a line-leading '#' starts a directive
  uint32_t line = 1;          // tracked incrementally; no per-token search

  auto make = [&](TokenKind kind, size_t start, size_t end) {
    tokens.push_back(Token{kind, text.substr(start, end - start), line});
  };
  // Counts the newlines inside [start, i) after emitting a multi-line token
  // (comment, directive, string), so `line` stays in sync.
  auto advance_lines = [&](size_t start) {
    for (size_t k = start; k < i; ++k) {
      line += text[k] == '\n' ? 1 : 0;
    }
  };

  while (i < n) {
    const char c = text[i];

    if (c == '\n') {
      at_line_start = true;
      ++line;
      ++i;
      continue;
    }
    if ((kCharClass[static_cast<unsigned char>(c)] & kCcSpace) != 0) {
      ++i;
      continue;
    }

    // Bare line splice between tokens: skip it without disturbing
    // at_line_start — the splice joins two physical lines into one logical
    // line, so a '#' after it is still directive-eligible iff it was before.
    if (c == '\\') {
      const size_t sp = SpliceLen(text, i);
      if (sp != 0) {
        i += sp;
        ++line;
        continue;
      }
    }

    // Identifier / keyword (most common token class — tested first).
    // Splices inside the identifier are honoured (`EXPORT_SYM\`+newline+
    // `BOL_GPL` is one name); the normalized spelling lives in `storage`
    // when the caller provides one, else the raw in-buffer span (with the
    // splice bytes) is kept so tokens still point into the file.
    if (IsIdentStart(c)) {
      const size_t start = i;
      uint32_t splices = 0;
      while (i < n) {
        if (IsIdentChar(text[i])) {
          ++i;
          continue;
        }
        size_t j = i;
        uint32_t run = 0;
        for (size_t sp; (sp = SpliceLen(text, j)) != 0; j += sp) {
          ++run;
        }
        if (run != 0 && j < n && IsIdentChar(text[j])) {
          i = j;
          splices += run;
          continue;
        }
        break;
      }
      if (splices == 0) {
        const std::string_view word = text.substr(start, i - start);
        make(IsKeywordSlow(word) ? TokenKind::kKeyword : TokenKind::kIdentifier, start, i);
      } else if (storage != nullptr) {
        std::string norm;
        norm.reserve(i - start);
        for (size_t k = start; k < i;) {
          const size_t sp = text[k] == '\\' ? SpliceLen(text, k) : 0;
          if (sp != 0) {
            k += sp;
          } else {
            norm.push_back(text[k++]);
          }
        }
        storage->push_back(std::move(norm));
        const std::string& word = storage->back();
        tokens.push_back(Token{IsKeywordSlow(word) ? TokenKind::kKeyword : TokenKind::kIdentifier,
                               std::string_view(word), line});
      } else {
        make(TokenKind::kIdentifier, start, i);
      }
      line += splices;
      at_line_start = false;
      continue;
    }

    // Comments. A `//` comment ending in a backslash splice continues onto
    // the next physical line (GCC semantics — kernel code relies on it).
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') {
        const size_t sp = text[i] == '\\' ? SpliceLen(text, i) : 0;
        if (sp != 0) {
          i += sp;
          ++line;
        } else {
          ++i;
        }
      }
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const size_t start = i;
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      const uint32_t line_before = line;
      advance_lines(start);
      if (line != line_before) {
        // The comment swallowed at least one newline, so whatever follows
        // sits at the start of a fresh physical line: a '#' there must
        // still open a directive.
        at_line_start = true;
      }
      continue;
    }

    // Preprocessor directive: from a line-leading '#' to the first newline
    // not reached through a backslash continuation (`\`+newline, including
    // the CRLF and `\`+trailing-whitespace forms kernel sources carry).
    if (c == '#' && at_line_start) {
      const size_t start = i;
      while (i < n) {
        if (text[i] == '\\') {
          const size_t sp = SpliceLen(text, i);
          i += sp != 0 ? sp : 1;
          continue;
        }
        if (text[i] == '\n') {
          break;
        }
        ++i;
      }
      size_t end = i;
      while (end > start && text[end - 1] == '\r') {
        --end;  // don't let a CRLF ending leave a stray '\r' in the token
      }
      make(TokenKind::kPreproc, start, end);
      advance_lines(start);
      continue;
    }
    at_line_start = false;

    // String literal (escapes honoured; unterminated strings end at newline,
    // except through a line splice, which continues the literal).
    if (c == '"') {
      const size_t start = i++;
      while (i < n && text[i] != '"' && text[i] != '\n') {
        if (text[i] == '\\') {
          const size_t sp = SpliceLen(text, i);
          i += sp != 0 ? sp : (i + 1 < n ? 2 : 1);
        } else {
          ++i;
        }
      }
      if (i < n && text[i] == '"') {
        ++i;
      }
      make(TokenKind::kString, start, i);
      advance_lines(start);
      continue;
    }

    // Character literal.
    if (c == '\'') {
      const size_t start = i++;
      while (i < n && text[i] != '\'' && text[i] != '\n') {
        if (text[i] == '\\') {
          const size_t sp = SpliceLen(text, i);
          i += sp != 0 ? sp : (i + 1 < n ? 2 : 1);
        } else {
          ++i;
        }
      }
      if (i < n && text[i] == '\'') {
        ++i;
      }
      make(TokenKind::kChar, start, i);
      advance_lines(start);  // escaped newlines can appear inside the literal
      continue;
    }

    // Number: ints, hex, floats, suffixes — consumed loosely as one blob.
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(text[i + 1]))) {
      const size_t start = i;
      ++i;
      while (i < n) {
        const char d = text[i];
        if (IsIdentChar(d) || d == '.') {
          ++i;
        } else if ((d == '+' || d == '-') && (text[i - 1] == 'e' || text[i - 1] == 'E' ||
                                              text[i - 1] == 'p' || text[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      make(TokenKind::kNumber, start, i);
      continue;
    }

    // Punctuation (or any stray byte).
    const size_t len = PunctLength(text.substr(i));
    make(TokenKind::kPunct, i, i + len);
    i += len;
  }

  tokens.push_back(Token{TokenKind::kEof, std::string_view(), line});
  return tokens;
}

}  // namespace refscan
