#include "src/lexer/lexer.h"

#include <cctype>
#include <string_view>
#include <unordered_set>

namespace refscan {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Multi-character punctuators, longest-match-first per leading character.
// Only operators that matter for parsing are listed; anything else falls
// back to a single-character token.
std::string_view MatchPunct(std::string_view rest) {
  static constexpr std::string_view kThree[] = {"<<=", ">>=", "..."};
  static constexpr std::string_view kTwo[] = {"->", "++", "--", "<<", ">>", "<=", ">=", "==",
                                              "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
                                              "&=", "^=", "|=", "##"};
  for (std::string_view p : kThree) {
    if (rest.starts_with(p)) {
      return p;
    }
  }
  for (std::string_view p : kTwo) {
    if (rest.starts_with(p)) {
      return p;
    }
  }
  return rest.substr(0, 1);
}

}  // namespace

bool IsCKeyword(std::string_view word) {
  static const std::unordered_set<std::string_view> kKeywords = {
      "auto",     "break",    "case",     "char",   "const",    "continue", "default",
      "do",       "double",   "else",     "enum",   "extern",   "float",    "for",
      "goto",     "if",       "inline",   "int",    "long",     "register", "restrict",
      "return",   "short",    "signed",   "sizeof", "static",   "struct",   "switch",
      "typedef",  "union",    "unsigned", "void",   "volatile", "while",    "_Bool",
      "_Atomic",  "__inline", "__asm__",  "asm",    "typeof",   "__typeof__",
  };
  return kKeywords.contains(word);
}

std::vector<Token> Tokenize(const SourceFile& file) {
  std::vector<Token> tokens;
  const std::string_view text = file.text();
  size_t i = 0;
  const size_t n = text.size();
  bool at_line_start = true;  // only a line-leading '#' starts a directive

  auto make = [&](TokenKind kind, size_t start, size_t end) {
    tokens.push_back(Token{kind, text.substr(start, end - start), file.LineAt(start)});
  };

  while (i < n) {
    const char c = text[i];

    if (c == '\n') {
      at_line_start = true;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }

    // Comments.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') {
        ++i;
      }
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }

    // Preprocessor directive: from a line-leading '#' to the first newline
    // not preceded by a backslash continuation.
    if (c == '#' && at_line_start) {
      const size_t start = i;
      while (i < n) {
        if (text[i] == '\n') {
          if (i > start && text[i - 1] == '\\') {
            ++i;
            continue;
          }
          break;
        }
        ++i;
      }
      make(TokenKind::kPreproc, start, i);
      continue;
    }
    at_line_start = false;

    // String literal (escapes honoured; unterminated strings end at newline).
    if (c == '"') {
      const size_t start = i++;
      while (i < n && text[i] != '"' && text[i] != '\n') {
        i += (text[i] == '\\' && i + 1 < n) ? 2 : 1;
      }
      if (i < n && text[i] == '"') {
        ++i;
      }
      make(TokenKind::kString, start, i);
      continue;
    }

    // Character literal.
    if (c == '\'') {
      const size_t start = i++;
      while (i < n && text[i] != '\'' && text[i] != '\n') {
        i += (text[i] == '\\' && i + 1 < n) ? 2 : 1;
      }
      if (i < n && text[i] == '\'') {
        ++i;
      }
      make(TokenKind::kChar, start, i);
      continue;
    }

    // Number: ints, hex, floats, suffixes — consumed loosely as one blob.
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(text[i + 1])) != 0)) {
      const size_t start = i;
      ++i;
      while (i < n) {
        const char d = text[i];
        if (IsIdentChar(d) || d == '.') {
          ++i;
        } else if ((d == '+' || d == '-') && (text[i - 1] == 'e' || text[i - 1] == 'E' ||
                                              text[i - 1] == 'p' || text[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      make(TokenKind::kNumber, start, i);
      continue;
    }

    // Identifier / keyword.
    if (IsIdentStart(c)) {
      const size_t start = i;
      while (i < n && IsIdentChar(text[i])) {
        ++i;
      }
      const std::string_view word = text.substr(start, i - start);
      make(IsCKeyword(word) ? TokenKind::kKeyword : TokenKind::kIdentifier, start, i);
      continue;
    }

    // Punctuation (or any stray byte).
    const std::string_view p = MatchPunct(text.substr(i));
    make(TokenKind::kPunct, i, i + p.size());
    i += p.size();
  }

  tokens.push_back(Token{TokenKind::kEof, std::string_view(), file.LineAt(n)});
  return tokens;
}

}  // namespace refscan
