// ASCII table renderer.
//
// Every bench binary prints its paper-table reproduction through this
// renderer so that `bench_output.txt` is diffable run-to-run. Cells are
// strings; columns auto-size; alignment is per-column.

#ifndef REFSCAN_REPORT_TABLE_H_
#define REFSCAN_REPORT_TABLE_H_

#include <string>
#include <vector>

namespace refscan {

enum class Align { kLeft, kRight };

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  // Sets the header row and per-column alignment (alignments may be shorter
  // than the header; missing entries default to left).
  Table& Header(std::vector<std::string> cells, std::vector<Align> aligns = {});

  // Appends one data row. Rows shorter than the header are padded with "".
  Table& Row(std::vector<std::string> cells);

  // Appends a horizontal separator between row groups.
  Table& Separator();

  // Renders the table, including the title line.
  std::string Render() const;

 private:
  struct RowEntry {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<RowEntry> rows_;
};

// Renders a horizontal ASCII bar chart: one row per (label, value), bars
// scaled to `width` characters, with the numeric value appended.
std::string BarChart(const std::string& title,
                     const std::vector<std::pair<std::string, double>>& data, int width = 50);

// Renders a simple line/series chart on a character grid for (x, y) points
// with integer x buckets — used for the Figure 1 growth trend.
std::string SeriesChart(const std::string& title, const std::vector<std::pair<int, double>>& data,
                        int height = 12);

// Formats a double as a percentage with one decimal ("71.7%").
std::string Pct(double fraction);

}  // namespace refscan

#endif  // REFSCAN_REPORT_TABLE_H_
