#include "src/report/table.h"

#include <algorithm>
#include <cmath>

#include "src/support/strings.h"

namespace refscan {

Table& Table::Header(std::vector<std::string> cells, std::vector<Align> aligns) {
  header_ = std::move(cells);
  aligns_ = std::move(aligns);
  aligns_.resize(header_.size(), Align::kLeft);
  return *this;
}

Table& Table::Row(std::vector<std::string> cells) {
  cells.resize(std::max(cells.size(), header_.size()));
  rows_.push_back(RowEntry{false, std::move(cells)});
  return *this;
}

Table& Table::Separator() {
  rows_.push_back(RowEntry{true, {}});
  return *this;
}

std::string Table::Render() const {
  const size_t ncols = header_.size();
  std::vector<size_t> widths(ncols, 0);
  for (size_t c = 0; c < ncols; ++c) {
    widths[c] = header_[c].size();
  }
  for (const RowEntry& row : rows_) {
    if (row.separator) {
      continue;
    }
    for (size_t c = 0; c < ncols && c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto rule = [&]() {
    std::string line = "+";
    for (size_t c = 0; c < ncols; ++c) {
      line.append(widths[c] + 2, '-');
      line.push_back('+');
    }
    line.push_back('\n');
    return line;
  };

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      const size_t pad = widths[c] - cell.size();
      line.push_back(' ');
      if (aligns_[c] == Align::kRight) {
        line.append(pad, ' ');
        line.append(cell);
      } else {
        line.append(cell);
        line.append(pad, ' ');
      }
      line.append(" |");
    }
    line.push_back('\n');
    return line;
  };

  std::string out;
  if (!title_.empty()) {
    out.append(title_).append("\n");
  }
  out.append(rule());
  out.append(render_row(header_));
  out.append(rule());
  for (const RowEntry& row : rows_) {
    out.append(row.separator ? rule() : render_row(row.cells));
  }
  out.append(rule());
  return out;
}

std::string BarChart(const std::string& title,
                     const std::vector<std::pair<std::string, double>>& data, int width) {
  double max_value = 0;
  size_t label_width = 0;
  for (const auto& [label, value] : data) {
    max_value = std::max(max_value, value);
    label_width = std::max(label_width, label.size());
  }
  std::string out;
  if (!title.empty()) {
    out.append(title).append("\n");
  }
  for (const auto& [label, value] : data) {
    const int bar =
        max_value > 0 ? static_cast<int>(std::lround(value / max_value * width)) : 0;
    out.append(StrFormat("  %-*s |%s %.6g\n", static_cast<int>(label_width), label.c_str(),
                         std::string(static_cast<size_t>(bar), '#').c_str(), value));
  }
  return out;
}

std::string SeriesChart(const std::string& title, const std::vector<std::pair<int, double>>& data,
                        int height) {
  std::string out;
  if (!title.empty()) {
    out.append(title).append("\n");
  }
  if (data.empty() || height < 2) {
    return out;
  }
  double max_value = 0;
  for (const auto& [x, y] : data) {
    max_value = std::max(max_value, y);
  }
  if (max_value <= 0) {
    max_value = 1;
  }
  const size_t ncols = data.size();
  std::vector<std::string> grid(static_cast<size_t>(height), std::string(ncols, ' '));
  for (size_t c = 0; c < ncols; ++c) {
    int level = static_cast<int>(std::lround(data[c].second / max_value * (height - 1)));
    level = std::clamp(level, 0, height - 1);
    for (int r = 0; r <= level; ++r) {
      grid[static_cast<size_t>(height - 1 - r)][c] = (r == level) ? '*' : '|';
    }
  }
  for (int r = 0; r < height; ++r) {
    const double axis = max_value * (height - 1 - r) / (height - 1);
    out.append(StrFormat("  %8.1f |%s\n", axis, grid[static_cast<size_t>(r)].c_str()));
  }
  out.append(StrFormat("  %8s +%s\n", "", std::string(ncols, '-').c_str()));
  // X-axis labels: first, middle, last.
  out.append(StrFormat("  %8s  first=%d mid=%d last=%d\n", "", data.front().first,
                       data[ncols / 2].first, data.back().first));
  return out;
}

std::string Pct(double fraction) {
  return StrFormat("%.1f%%", fraction * 100.0);
}

}  // namespace refscan
