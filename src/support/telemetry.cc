#include "src/support/telemetry.h"

#include <algorithm>
#include <tuple>

#include "src/support/strings.h"

namespace refscan {

namespace telemetry_detail {
std::atomic<Telemetry*> g_session{nullptr};
}  // namespace telemetry_detail

// ---------------------------------------------------------------- metrics

void MetricHistogram::Record(uint64_t ns) {
  size_t i = 0;
  while (i < kBuckets && ns > BucketBoundNs(i)) {
    ++i;
  }
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
}

MetricCounter& MetricsRegistry::Counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<MetricCounter>()).first;
  }
  return *it->second;
}

MetricGauge& MetricsRegistry::Gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<MetricGauge>()).first;
  }
  return *it->second;
}

MetricHistogram& MetricsRegistry::Histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<MetricHistogram>()).first;
  }
  return *it->second;
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

int64_t MetricsRegistry::GaugeValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  // Snapshot `other` under its own lock, then fold into this one. Two locks
  // are never held at once, so merge directions cannot deadlock.
  const auto counters = other.CounterSnapshot();
  const auto gauges = other.GaugeSnapshot();
  struct HistSnapshot {
    std::string name;
    uint64_t buckets[MetricHistogram::kBuckets + 1];
    uint64_t count;
    uint64_t sum_ns;
  };
  std::vector<HistSnapshot> hists;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    for (const auto& [name, h] : other.histograms_) {
      HistSnapshot s;
      s.name = name;
      for (size_t i = 0; i <= MetricHistogram::kBuckets; ++i) {
        s.buckets[i] = h->bucket(i);
      }
      s.count = h->count();
      s.sum_ns = h->sum_ns();
      hists.push_back(std::move(s));
    }
  }
  for (const auto& [name, value] : counters) {
    Counter(name).Add(value);
  }
  for (const auto& [name, value] : gauges) {
    Gauge(name).Max(value);
  }
  for (const HistSnapshot& s : hists) {
    MetricHistogram& h = Histogram(s.name);
    for (size_t i = 0; i <= MetricHistogram::kBuckets; ++i) {
      h.buckets_[i].fetch_add(s.buckets[i], std::memory_order_relaxed);
    }
    h.count_.fetch_add(s.count, std::memory_order_relaxed);
    h.sum_ns_.fetch_add(s.sum_ns, std::memory_order_relaxed);
  }
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.emplace_back(name, c->value());
  }
  return out;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::GaugeSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.emplace_back(name, g->value());
  }
  return out;
}

std::string PrometheusMetricName(std::string_view name) {
  std::string out = "refscan_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::string out;
  for (const auto& [name, value] : CounterSnapshot()) {
    const std::string pname = PrometheusMetricName(name);
    out += StrFormat("# TYPE %s counter\n%s %llu\n", pname.c_str(), pname.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : GaugeSnapshot()) {
    const std::string pname = PrometheusMetricName(name);
    out += StrFormat("# TYPE %s gauge\n%s %lld\n", pname.c_str(), pname.c_str(),
                     static_cast<long long>(value));
  }
  // Histograms snapshot under the lock, format outside it.
  struct HistLine {
    std::string name;
    uint64_t buckets[MetricHistogram::kBuckets + 1];
    uint64_t count;
    uint64_t sum_ns;
  };
  std::vector<HistLine> hists;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, h] : histograms_) {
      HistLine line;
      line.name = name;
      for (size_t i = 0; i <= MetricHistogram::kBuckets; ++i) {
        line.buckets[i] = h->bucket(i);
      }
      line.count = h->count();
      line.sum_ns = h->sum_ns();
      hists.push_back(std::move(line));
    }
  }
  for (const HistLine& h : hists) {
    const std::string pname = PrometheusMetricName(h.name) + "_seconds";
    out += StrFormat("# TYPE %s histogram\n", pname.c_str());
    uint64_t cumulative = 0;
    for (size_t i = 0; i < MetricHistogram::kBuckets; ++i) {
      cumulative += h.buckets[i];
      out += StrFormat("%s_bucket{le=\"%.9g\"} %llu\n", pname.c_str(),
                       static_cast<double>(MetricHistogram::BucketBoundNs(i)) * 1e-9,
                       static_cast<unsigned long long>(cumulative));
    }
    cumulative += h.buckets[MetricHistogram::kBuckets];
    out += StrFormat("%s_bucket{le=\"+Inf\"} %llu\n", pname.c_str(),
                     static_cast<unsigned long long>(cumulative));
    out += StrFormat("%s_sum %.9g\n", pname.c_str(), static_cast<double>(h.sum_ns) * 1e-9);
    out += StrFormat("%s_count %llu\n", pname.c_str(),
                     static_cast<unsigned long long>(h.count));
  }
  return out;
}

// ---------------------------------------------------------------- tracing

namespace {

uint64_t NextSessionGeneration() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

// Per-thread buffer cache, keyed by the session generation so a new session
// (even one reusing a freed session's address) never sees a stale pointer.
struct ThreadBufferCache {
  uint64_t generation = 0;
  void* buffer = nullptr;
};
thread_local ThreadBufferCache t_buffer_cache;

}  // namespace

Telemetry::Telemetry()
    : generation_(NextSessionGeneration()), epoch_(std::chrono::steady_clock::now()) {}

uint64_t Telemetry::NowNs() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - epoch_)
                                   .count());
}

Telemetry::ThreadBuffer& Telemetry::BufferForThisThread() {
  if (t_buffer_cache.generation != generation_) {
    std::lock_guard<std::mutex> lock(buffers_mutex_);
    buffers_.emplace_back();
    buffers_.back().tid = static_cast<uint32_t>(buffers_.size());
    t_buffer_cache = {generation_, &buffers_.back()};
  }
  return *static_cast<ThreadBuffer*>(t_buffer_cache.buffer);
}

void Telemetry::RecordSpan(const char* name, std::string_view arg, uint64_t start_ns,
                           uint64_t dur_ns) {
  ThreadBuffer& buffer = BufferForThisThread();
  TraceEvent event;
  event.name = name;
  event.arg = std::string(arg);
  event.start_ns = start_ns;
  event.dur_ns = dur_ns;
  event.tid = buffer.tid;
  buffer.events.push_back(std::move(event));
  metrics_.Histogram(std::string("span.") + name).Record(dur_ns);
}

std::vector<TraceEvent> Telemetry::SortedEvents() const {
  std::vector<TraceEvent> all;
  {
    std::lock_guard<std::mutex> lock(buffers_mutex_);
    for (const ThreadBuffer& buffer : buffers_) {
      all.insert(all.end(), buffer.events.begin(), buffer.events.end());
    }
  }
  std::sort(all.begin(), all.end(), [](const TraceEvent& a, const TraceEvent& b) {
    const int name_cmp = std::string_view(a.name).compare(b.name);
    if (name_cmp != 0) {
      return name_cmp < 0;
    }
    return std::tie(a.arg, a.start_ns, a.dur_ns) < std::tie(b.arg, b.start_ns, b.dur_ns);
  });
  return all;
}

size_t Telemetry::event_count() const {
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  size_t n = 0;
  for (const ThreadBuffer& buffer : buffers_) {
    n += buffer.events.size();
  }
  return n;
}

namespace {

// Minimal JSON string escaping (span args are file paths; names are
// literals, but escape both anyway).
void AppendEscaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::string Telemetry::TraceToChromeJson() const {
  const std::vector<TraceEvent> events = SortedEvents();
  std::string out = "{\"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"name\": ";
    AppendEscaped(out, e.name);
    out += ", \"cat\": \"refscan\", \"ph\": \"X\", \"pid\": 1";
    out += StrFormat(", \"tid\": %u, \"ts\": %.3f, \"dur\": %.3f", e.tid,
                     static_cast<double>(e.start_ns) / 1000.0,
                     static_cast<double>(e.dur_ns) / 1000.0);
    if (!e.arg.empty()) {
      out += ", \"args\": {\"file\": ";
      AppendEscaped(out, e.arg);
      out += "}";
    }
    out += "}";
  }
  if (!events.empty()) {
    out += "\n";
  }
  out += "], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

// ---------------------------------------------------------------- arming

ScopedTelemetry::ScopedTelemetry(Telemetry& session)
    : previous_(telemetry_detail::g_session.exchange(&session, std::memory_order_relaxed)) {}

ScopedTelemetry::~ScopedTelemetry() {
  telemetry_detail::g_session.store(previous_, std::memory_order_relaxed);
}

}  // namespace refscan
