#include "src/support/source.h"

#include <algorithm>

#include "src/support/strings.h"

namespace refscan {

std::string SourceLocation::ToString() const {
  return StrFormat("%s:%u", file.c_str(), line);
}

SourceFile::SourceFile(std::string path, std::string text)
    : path_(std::move(path)), text_(std::move(text)) {
  IndexLines();
}

SourceFile::SourceFile(std::string path, std::shared_ptr<const char[]> mapping, size_t size)
    : path_(std::move(path)), mapping_(std::move(mapping)), mapped_size_(size) {
  IndexLines();
}

void SourceFile::IndexLines() {
  const std::string_view t = text();
  line_starts_.push_back(0);
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i] == '\n' && i + 1 < t.size()) {
      line_starts_.push_back(static_cast<uint32_t>(i + 1));
    }
  }
}

uint32_t SourceFile::LineAt(size_t offset) const {
  if (line_starts_.empty()) {
    return 1;
  }
  auto it = std::upper_bound(line_starts_.begin(), line_starts_.end(),
                             static_cast<uint32_t>(std::min(offset, text().size())));
  return static_cast<uint32_t>(it - line_starts_.begin());
}

uint32_t SourceFile::line_count() const {
  return static_cast<uint32_t>(line_starts_.size());
}

std::string_view SourceFile::Line(uint32_t line) const {
  if (line == 0 || line > line_starts_.size()) {
    return {};
  }
  const std::string_view t = text();
  const size_t start = line_starts_[line - 1];
  const size_t end = (line < line_starts_.size()) ? line_starts_[line] : t.size();
  std::string_view out(t.data() + start, end - start);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.remove_suffix(1);
  }
  return out;
}

void SourceTree::Add(std::string path, std::string text) {
  std::string key = path;
  SourceFile file(std::move(path), std::move(text));
  files_.insert_or_assign(std::move(key), std::move(file));
}

void SourceTree::Add(SourceFile file) {
  std::string key = file.path();
  files_.insert_or_assign(std::move(key), std::move(file));
}

const SourceFile* SourceTree::Find(std::string_view path) const {
  auto it = files_.find(std::string(path));
  return it == files_.end() ? nullptr : &it->second;
}

uint64_t SourceTree::LinesUnder(std::string_view prefix) const {
  uint64_t total = 0;
  for (const auto& [path, file] : files_) {
    if (std::string_view(path).starts_with(prefix)) {
      total += file.line_count();
    }
  }
  return total;
}

PathParts SplitKernelPath(std::string_view path) {
  PathParts parts;
  const auto segments = Split(path, '/');
  if (!segments.empty()) {
    parts.subsystem = std::string(segments[0]);
  }
  if (segments.size() > 2) {
    parts.module = std::string(segments[1]);
  }
  return parts;
}

}  // namespace refscan
