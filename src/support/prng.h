// Deterministic pseudo-random number generation for refscan.
//
// Every stochastic component in the project (corpus generation, history
// synthesis, embedding initialization, sampling) draws from these generators
// so that a fixed seed reproduces every table and figure bit-for-bit.
//
// Two generators are provided:
//   * SplitMix64 — used to expand a single 64-bit seed into independent
//     streams (also used standalone for cheap hashing-style mixing).
//   * Xoshiro256pp — the main workhorse generator (xoshiro256++ by Blackman
//     and Vigna), seeded via SplitMix64 per the authors' recommendation.

#ifndef REFSCAN_SUPPORT_PRNG_H_
#define REFSCAN_SUPPORT_PRNG_H_

#include <cstdint>
#include <limits>

namespace refscan {

// SplitMix64: tiny, fast, passes BigCrush; ideal as a seed expander.
class SplitMix64 {
 public:
  using result_type = uint64_t;

  explicit constexpr SplitMix64(uint64_t seed) : state_(seed) {}

  constexpr uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr uint64_t operator()() { return Next(); }

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return std::numeric_limits<uint64_t>::max(); }

 private:
  uint64_t state_;
};

// xoshiro256++ 1.0. All-purpose generator with 256 bits of state.
class Xoshiro256pp {
 public:
  using result_type = uint64_t;

  explicit constexpr Xoshiro256pp(uint64_t seed) : state_{} { Reseed(seed); }

  constexpr void Reseed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.Next();
    }
  }

  constexpr uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  constexpr uint64_t operator()() { return Next(); }

  // Uniform integer in [0, bound). bound == 0 returns 0.
  // Lemire's multiply-shift rejection method, debiased.
  constexpr uint64_t Below(uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  constexpr int64_t Range(int64_t lo, int64_t hi) {
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Below(span));
  }

  // Uniform double in [0, 1).
  constexpr double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with success probability p (clamped to [0,1]).
  constexpr bool Chance(double p) {
    if (p <= 0.0) {
      return false;
    }
    if (p >= 1.0) {
      return true;
    }
    return NextDouble() < p;
  }

  // Derive an independent child stream; mixing in `salt` lets callers create
  // per-item streams that are stable regardless of draw order elsewhere.
  constexpr Xoshiro256pp Fork(uint64_t salt) const {
    SplitMix64 sm(state_[0] ^ (state_[3] + 0x632be59bd9b4e019ULL * (salt + 1)));
    return Xoshiro256pp(sm.Next());
  }

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return std::numeric_limits<uint64_t>::max(); }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

// Stable 64-bit hash of a byte string (FNV-1a). Used to derive deterministic
// per-name randomness (e.g. per-module corpus streams keyed by module name).
constexpr uint64_t HashString(const char* data, size_t size) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace refscan

#endif  // REFSCAN_SUPPORT_PRNG_H_
