#include "src/support/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace refscan {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsWordChar(char c) {
  // A "word" inside an identifier: alphanumeric run; '_' is a separator.
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::vector<std::string_view> Split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> SplitWhitespace(std::string_view text) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) == 0) {
      ++i;
    }
    if (i > start) {
      out.push_back(text.substr(start, i - start));
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() && std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::vector<std::string> IdentifierWords(std::string_view text) {
  std::vector<std::string> words;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !IsWordChar(text[i])) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() && IsWordChar(text[i])) {
      ++i;
    }
    if (i > start) {
      words.push_back(ToLower(text.substr(start, i - start)));
    }
  }
  return words;
}

bool ContainsIdentifierWord(std::string_view text, std::string_view word) {
  // Allocation-free equivalent of searching ToLower(word) in
  // IdentifierWords(text) — this predicate runs for every candidate name
  // during KB discovery, so the per-call string/vector churn matters.
  auto lower = [](char c) {
    return (c >= 'A' && c <= 'Z') ? static_cast<char>(c + ('a' - 'A')) : c;
  };
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !IsWordChar(text[i])) {
      ++i;
    }
    const size_t start = i;
    while (i < text.size() && IsWordChar(text[i])) {
      ++i;
    }
    if (i - start == word.size()) {
      bool eq = true;
      for (size_t k = 0; k < word.size() && eq; ++k) {
        eq = lower(text[start + k]) == lower(word[k]);
      }
      if (eq) {
        return true;
      }
    }
  }
  return false;
}

bool EndsWithWord(std::string_view name, std::string_view suffix) {
  if (name.size() < suffix.size() || !name.ends_with(suffix)) {
    return false;
  }
  if (name.size() == suffix.size()) {
    return true;
  }
  const char before = name[name.size() - suffix.size() - 1];
  return before == '_' || !IsWordChar(before);
}

bool StartsWithWord(std::string_view name, std::string_view prefix) {
  if (!name.starts_with(prefix)) {
    return false;
  }
  if (name.size() == prefix.size()) {
    return true;
  }
  const char after = name[prefix.size()];
  return after == '_' || !IsIdentChar(after);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace refscan
