#include "src/support/threadpool.h"

#include <algorithm>

#include "src/support/telemetry.h"

namespace refscan {

size_t ThreadPool::ResolveJobs(size_t jobs) {
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }
  return jobs;
}

ThreadPool::ThreadPool(size_t parallelism) : parallelism_(ResolveJobs(parallelism)) {
  const size_t background = parallelism_ - 1;
  workers_.reserve(background);
  for (size_t i = 0; i < background; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(background);
  for (size_t i = 0; i < background; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  WaitIdle();
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  const size_t target = submit_cursor_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  inflight_.fetch_add(1, std::memory_order_relaxed);
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->queue.push_back(std::move(task));
    depth = workers_[target]->queue.size();
  }
  // Scheduling telemetry (sched.* = nondeterministic by contract): task
  // volume and the deepest queue ever observed at submit time.
  if (Telemetry* t = CurrentTelemetry()) {
    t->metrics().Counter("sched.tasks_submitted").Add(1);
    t->metrics().Gauge("sched.queue_depth_max").Max(static_cast<int64_t>(depth));
  }
  // `ready_` is the wait predicate: bumping it under the wake mutex means a
  // worker that scanned the queues empty a moment ago cannot slip into
  // wait() and miss this task.
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    ++ready_;
  }
  wake_cv_.notify_one();
}

std::function<void()> ThreadPool::NextTask(size_t self) {
  const size_t n = workers_.size();
  for (size_t k = 0; k < n; ++k) {
    Worker& victim = *workers_[(self + k) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (victim.queue.empty()) {
      continue;
    }
    std::function<void()> task;
    if (k == 0) {
      // Own queue: LIFO keeps the most recently pushed (cache-hot) task.
      task = std::move(victim.queue.back());
      victim.queue.pop_back();
    } else {
      // Steal: FIFO takes the oldest task, the one its owner is furthest
      // from reaching.
      task = std::move(victim.queue.front());
      victim.queue.pop_front();
      TelemetryCount("sched.steals");
    }
    {
      // victim.mutex -> wake_mutex_ is the one allowed nesting order.
      std::lock_guard<std::mutex> wake_lock(wake_mutex_);
      --ready_;
    }
    return task;
  }
  return {};
}

void ThreadPool::WorkerLoop(size_t self) {
  for (;;) {
    std::function<void()> task = NextTask(self);
    if (task == nullptr) {
      std::unique_lock<std::mutex> lock(wake_mutex_);
      wake_cv_.wait(lock, [this] { return stopping_ || ready_ > 0; });
      if (stopping_ && ready_ == 0) {
        return;
      }
      continue;
    }
    // Worker utilization: busy nanoseconds accumulate only while a session
    // is armed (no clock reads otherwise). Utilization = busy_ns /
    // (workers × wall time), computed by whoever reads the metrics.
    if (Telemetry* t = CurrentTelemetry()) {
      const uint64_t start = t->NowNs();
      task();
      t->metrics().Counter("sched.worker_busy_ns").Add(t->NowNs() - start);
      t->metrics().Counter("sched.tasks_run").Add(1);
    } else {
      task();
    }
    if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Empty critical section: a WaitIdle caller between its predicate
      // check and blocking holds the mutex, so the notify lands after it
      // blocks instead of being lost.
      {
        std::lock_guard<std::mutex> lock(wake_mutex_);
      }
      idle_cv_.notify_all();
    }
  }
}

void ThreadPool::WaitIdle() {
  if (workers_.empty()) {
    return;
  }
  std::unique_lock<std::mutex> lock(wake_mutex_);
  idle_cv_.wait(lock, [this] { return inflight_.load(std::memory_order_acquire) == 0; });
}

namespace {

// Shared coordination block for one ParallelFor batch. Helper tasks hold it
// through a shared_ptr, so the synchronisation state stays valid for as
// long as any helper can still touch it.
struct ForBatch {
  std::atomic<size_t> cursor{0};
  std::mutex mutex;
  std::condition_variable done_cv;
  size_t finished_helpers = 0;
  // Exceptions thrown by iterations, collected under `mutex`; rethrown as
  // one aggregate only after the barrier, so a throw can never skip sibling
  // iterations or leave the caller's output vector partially filled.
  std::vector<std::pair<size_t, std::string>> errors;
};

void RunIteration(ForBatch& batch, const std::function<void(size_t)>& fn, size_t i) {
  try {
    fn(i);
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(batch.mutex);
    batch.errors.emplace_back(i, e.what());
  } catch (...) {
    std::lock_guard<std::mutex> lock(batch.mutex);
    batch.errors.emplace_back(i, "unknown exception");
  }
}

[[noreturn]] void ThrowBatchErrors(std::vector<std::pair<size_t, std::string>> errors,
                                   size_t count) {
  std::sort(errors.begin(), errors.end());
  std::string what = "parallel-for: " + std::to_string(errors.size()) + " of " +
                     std::to_string(count) + " iteration(s) threw; first at index " +
                     std::to_string(errors.front().first) + ": " + errors.front().second;
  throw ParallelForError(std::move(what), std::move(errors));
}

}  // namespace

void ParallelFor(ThreadPool& pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn) {
  if (begin >= end) {
    return;
  }
  const size_t count = end - begin;
  const size_t lanes = std::min(pool.parallelism(), count);
  if (lanes <= 1) {
    // Serial path: same complete-the-batch-then-throw semantics as the
    // parallel one, so callers see one behaviour at every `jobs` value.
    ForBatch batch;
    for (size_t i = begin; i < end; ++i) {
      RunIteration(batch, fn, i);
    }
    if (!batch.errors.empty()) {
      ThrowBatchErrors(std::move(batch.errors), count);
    }
    return;
  }

  auto batch = std::make_shared<ForBatch>();
  batch->cursor.store(begin, std::memory_order_relaxed);
  // Iterations are claimed one at a time from the shared cursor, so a few
  // expensive items cannot serialise the batch behind one lane. `fn` is
  // captured by reference: ParallelFor does not return before every helper
  // has finished, so the reference cannot dangle.
  const auto drain = [batch, end, &fn] {
    for (size_t i; (i = batch->cursor.fetch_add(1, std::memory_order_relaxed)) < end;) {
      RunIteration(*batch, fn, i);
    }
  };

  const size_t helpers = lanes - 1;
  for (size_t h = 0; h < helpers; ++h) {
    pool.Submit([batch, drain] {
      drain();
      {
        std::lock_guard<std::mutex> lock(batch->mutex);
        ++batch->finished_helpers;
      }
      batch->done_cv.notify_one();
    });
  }

  drain();  // the calling thread is a worker too

  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->done_cv.wait(lock, [&] { return batch->finished_helpers == helpers; });
  if (!batch->errors.empty()) {
    std::vector<std::pair<size_t, std::string>> errors = std::move(batch->errors);
    lock.unlock();
    ThrowBatchErrors(std::move(errors), count);
  }
}

}  // namespace refscan
