#include "src/support/ipc.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/support/faultinject.h"

namespace refscan {

namespace {

void SetError(std::string* error, const char* what) {
  if (error != nullptr) {
    *error = std::string(what) + ": " + std::strerror(errno);
  }
}

bool FillAddr(const std::string& path, sockaddr_un& addr, std::string* error) {
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) {
      *error = "socket path too long: " + path;
    }
    return false;
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

// Writes all of `data`, looping over partial writes and EINTR. MSG_NOSIGNAL:
// a dead peer must surface as EPIPE, not kill the process.
bool SendAll(int fd, const char* data, size_t size, std::string* error) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      SetError(error, "send");
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Reads exactly `size` bytes. Returns 1 on success, 0 on clean EOF before
// the first byte, -1 on error (including EOF mid-buffer).
int RecvAll(int fd, char* data, size_t size, std::string* error) {
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      SetError(error, "recv");
      return -1;
    }
    if (n == 0) {
      if (got == 0) {
        return 0;
      }
      if (error != nullptr) {
        *error = "connection closed mid-frame";
      }
      return -1;
    }
    got += static_cast<size_t>(n);
  }
  return 1;
}

}  // namespace

void OwnedFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

OwnedFd UnixListen(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!FillAddr(path, addr, error)) {
    return OwnedFd();
  }
  OwnedFd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    SetError(error, "socket");
    return OwnedFd();
  }
  ::unlink(path.c_str());  // a stale socket file from a dead server
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    SetError(error, "bind");
    return OwnedFd();
  }
  if (::listen(fd.get(), 64) != 0) {
    SetError(error, "listen");
    return OwnedFd();
  }
  return fd;
}

OwnedFd UnixConnect(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!FillAddr(path, addr, error)) {
    return OwnedFd();
  }
  OwnedFd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    SetError(error, "socket");
    return OwnedFd();
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    SetError(error, "connect");
    return OwnedFd();
  }
  return fd;
}

uint32_t BackoffDelayMs(const BackoffPolicy& policy, int attempt) {
  uint64_t delay = policy.base_delay_ms;
  for (int i = 0; i < attempt && delay < policy.max_delay_ms; ++i) {
    delay *= 2;
  }
  delay = std::min<uint64_t>(delay, policy.max_delay_ms);
  if (delay <= 1) {
    return static_cast<uint32_t>(delay);
  }
  // splitmix64 over (seed, attempt): deterministic, well-spread jitter.
  uint64_t x = policy.jitter_seed + 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(attempt) + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  const uint64_t half = delay / 2;
  return static_cast<uint32_t>(half + x % (delay - half + 1));
}

OwnedFd ConnectWithRetry(const std::string& path, const BackoffPolicy& policy,
                         std::string* error) {
  const int attempts = std::max(policy.attempts, 1);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(BackoffDelayMs(policy, attempt - 1)));
    }
    OwnedFd fd = UnixConnect(path, error);
    if (fd.valid()) {
      return fd;
    }
  }
  return OwnedFd();
}

OwnedFd UnixAccept(int listen_fd, int timeout_ms, std::string* error) {
  if (timeout_ms > 0) {
    pollfd pfd{};
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    int rc;
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      SetError(error, "poll");
      return OwnedFd();
    }
    if (rc == 0) {
      if (error != nullptr) {
        *error = "accept timed out";
      }
      return OwnedFd();
    }
  }
  OwnedFd fd(::accept(listen_fd, nullptr, nullptr));
  if (!fd.valid()) {
    SetError(error, "accept");
  }
  return fd;
}

bool SendFrame(int fd, uint8_t type, std::string_view payload, std::string* error) {
  if (payload.size() > kMaxFrameBytes) {
    if (error != nullptr) {
      *error = "frame payload too large";
    }
    return false;
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  char header[5];
  header[0] = static_cast<char>(len & 0xff);
  header[1] = static_cast<char>((len >> 8) & 0xff);
  header[2] = static_cast<char>((len >> 16) & 0xff);
  header[3] = static_cast<char>((len >> 24) & 0xff);
  header[4] = static_cast<char>(type);
  // Fault site `ipc.write` (subject: decimal frame type). A fired rule cuts
  // this frame mid-write — the bytes that do go out promise more than
  // arrives, so the peer deterministically observes "connection closed
  // mid-frame" (RecvOutcome::kError) once the sender resets the socket,
  // exactly like a peer dying between write(2) calls.
  if (FaultsArmed()) {
    try {
      MaybeFault("ipc.write", std::to_string(type));
    } catch (const FaultInjected& e) {
      if (payload.size() >= 2) {
        SendAll(fd, header, sizeof(header), nullptr);
        SendAll(fd, payload.data(), payload.size() / 2, nullptr);
      } else {
        SendAll(fd, header, 3, nullptr);  // partial header: same mid-frame cut
      }
      if (error != nullptr) {
        *error = e.what();
      }
      return false;
    }
  }
  if (!SendAll(fd, header, sizeof(header), error)) {
    return false;
  }
  return payload.empty() || SendAll(fd, payload.data(), payload.size(), error);
}

RecvOutcome RecvFrame(int fd, uint8_t& type, std::string& payload, std::string* error) {
  char header[5];
  const int rc = RecvAll(fd, header, sizeof(header), error);
  if (rc == 0) {
    return RecvOutcome::kClosed;
  }
  if (rc < 0) {
    return RecvOutcome::kError;
  }
  const uint32_t len = static_cast<uint32_t>(static_cast<uint8_t>(header[0])) |
                       (static_cast<uint32_t>(static_cast<uint8_t>(header[1])) << 8) |
                       (static_cast<uint32_t>(static_cast<uint8_t>(header[2])) << 16) |
                       (static_cast<uint32_t>(static_cast<uint8_t>(header[3])) << 24);
  if (len > kMaxFrameBytes) {
    if (error != nullptr) {
      *error = "frame length " + std::to_string(len) + " exceeds limit";
    }
    return RecvOutcome::kError;
  }
  type = static_cast<uint8_t>(header[4]);
  payload.resize(len);
  if (len > 0 && RecvAll(fd, payload.data(), len, error) != 1) {
    return RecvOutcome::kError;
  }
  return RecvOutcome::kFrame;
}

}  // namespace refscan
