#include "src/support/server.h"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <utility>

namespace refscan {

void ConnectionRegistry::Add(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  fds_.push_back(fd);
}

void ConnectionRegistry::Remove(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  fds_.erase(std::remove(fds_.begin(), fds_.end(), fd), fds_.end());
}

void ConnectionRegistry::ShutdownAll(int how) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const int fd : fds_) {
    ::shutdown(fd, how);
  }
}

bool ConnectionRegistry::WaitIdle(uint32_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  return idle_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           [this] { return active_ == 0; });
}

void ConnectionRegistry::JoinAll() {
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) {
    t.join();
  }
}

size_t ConnectionRegistry::live_connections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

bool DrainConnections(ConnectionRegistry& registry, uint32_t timeout_ms) {
  registry.ShutdownAll(SHUT_RD);
  const bool clean = registry.WaitIdle(timeout_ms);
  if (!clean) {
    registry.ShutdownAll(SHUT_RDWR);
  }
  registry.JoinAll();
  return clean;
}

}  // namespace refscan
