// Deterministic fault-injection registry (DESIGN.md §5.9).
//
// A production scanner meets unreadable files, corrupted cache objects and
// pathological inputs rarely enough that the degraded paths rot unless they
// can be exercised on demand. This registry lets a test, a CI job, or an
// operator arm *named sites* in the pipeline so that specific operations
// fail — deterministically, replaying byte-identically at any `--jobs`
// value — without touching the code under test.
//
// Sites (the strings passed to MaybeFault by the pipeline):
//
//   fs.read          one on-disk file read (subject: tree-relative path)
//   cache.load       one cache object load (subject: object path)
//   cache.store      one cache object store (subject: object path)
//   parser.parse     one file parse (subject: file path)
//   checker.run      one file's checking stage (subject: file path)
//   ipa.summarize    the whole-tree summary stage (subject: "<tree>")
//   worker.facts     a shard worker's facts exchange (subject: worker id)
//   worker.results   a shard worker's results exchange (subject: worker id)
//   serve.accept     one accepted serve connection (subject: accept counter)
//   serve.request    one resident-server request (subject: request name,
//                    e.g. "scan" — see src/serve)
//   ipc.write        one outgoing IPC frame; the frame is truncated
//                    mid-write so the peer observes a mid-frame cut
//                    (subject: decimal frame type)
//
// Spec grammar — comma-separated rules, each `site:trigger[:action]`, plus
// an optional `seed=N` entry that reseeds the `every=` selector:
//
//   triggers   always            fire on every hit
//              once              fire on the first hit per (rule, subject)
//              every=N           fire for a deterministic pseudo-random 1/N
//                                of subjects (hash of seed×site×subject —
//                                NOT a call counter, so the selection is
//                                independent of thread interleaving)
//              file=GLOB         fire when the subject matches the glob
//                                (`*` and `?`, matched over the whole path)
//   actions    throw (default)   throw FaultInjected (permanent failure)
//              io                throw a *transient* FaultInjected — the
//                                engine's sandboxes retry these once
//              truncate          throw a corrupt-data FaultInjected — I/O
//                                sites degrade it like a truncated object
//              delay=MS          sleep MS milliseconds, then succeed (pairs
//                                with ScanOptions::file_timeout_ms)
//
// Examples: `fs.read:every=7`, `parser.parse:file=*.broken.c`,
// `cache.load:once`, `checker.run:file=slow.c:delay=50`.
//
// Arming is process-global (`ArmFaults` / `REFSCAN_FAULTS` via
// ArmFaultsFromEnv) or scoped (`ScopedFaultArm`, used by
// ScanOptions::fault_spec so library callers and tests stay hermetic).
// When disarmed, MaybeFault is one relaxed atomic load — the scan pipeline
// pays nothing for carrying the hooks.

#ifndef REFSCAN_SUPPORT_FAULTINJECT_H_
#define REFSCAN_SUPPORT_FAULTINJECT_H_

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace refscan {

// Thrown by an armed site. `transient_io()` marks failures the engine's
// per-file sandboxes are allowed to retry once (bounded backoff).
class FaultInjected : public std::runtime_error {
 public:
  FaultInjected(std::string site, bool transient_io, const std::string& what)
      : std::runtime_error(what), site_(std::move(site)), transient_io_(transient_io) {}

  const std::string& site() const { return site_; }
  bool transient_io() const { return transient_io_; }

 private:
  std::string site_;
  bool transient_io_;
};

struct FaultRule {
  enum class Trigger : uint8_t { kAlways, kOnce, kEvery, kFile };
  enum class Action : uint8_t { kThrow, kIo, kTruncate, kDelay };

  std::string site;
  Trigger trigger = Trigger::kAlways;
  uint64_t every_n = 1;   // kEvery
  std::string glob;       // kFile
  Action action = Action::kThrow;
  uint32_t delay_ms = 0;  // kDelay
};

struct FaultPlan {
  uint64_t seed = 0;
  std::vector<FaultRule> rules;
};

// Parses the spec grammar above. On failure returns false and (optionally)
// a one-line diagnostic; `out` is left untouched.
bool ParseFaultSpec(std::string_view spec, FaultPlan& out, std::string* error = nullptr);

// Installs / clears the process-global plan. Arming resets all `once`
// counters, so repeated scans replay identically.
void ArmFaults(FaultPlan plan);
void DisarmFaults();

// Arms from the REFSCAN_FAULTS environment variable (unset/empty = no-op,
// returns true). A malformed spec returns false with a diagnostic — callers
// should fail loudly rather than silently scan un-faulted.
bool ArmFaultsFromEnv(std::string* error = nullptr, const char* var = "REFSCAN_FAULTS");

// RAII arming: installs `plan` and restores the previously-armed plan (or
// the disarmed state) on destruction. The string overload ignores malformed
// specs — validate with ParseFaultSpec first when the spec is user input.
class ScopedFaultArm {
 public:
  explicit ScopedFaultArm(FaultPlan plan);
  explicit ScopedFaultArm(std::string_view spec);
  ~ScopedFaultArm();

  ScopedFaultArm(const ScopedFaultArm&) = delete;
  ScopedFaultArm& operator=(const ScopedFaultArm&) = delete;

 private:
  FaultPlan previous_;
  bool previous_armed_ = false;
};

namespace faultinject_detail {
extern std::atomic<bool> g_armed;
void MaybeFaultSlow(std::string_view site, std::string_view subject);
}  // namespace faultinject_detail

inline bool FaultsArmed() {
  return faultinject_detail::g_armed.load(std::memory_order_relaxed);
}

// The per-site hook. Throws FaultInjected or sleeps when an armed rule
// fires; otherwise (and always when disarmed) returns immediately.
inline void MaybeFault(std::string_view site, std::string_view subject) {
  if (!FaultsArmed()) {
    return;
  }
  faultinject_detail::MaybeFaultSlow(site, subject);
}

// `*`/`?` wildcard match over the whole string (exposed for tests).
bool GlobMatch(std::string_view glob, std::string_view text);

}  // namespace refscan

#endif  // REFSCAN_SUPPORT_FAULTINJECT_H_
