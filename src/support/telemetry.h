// Scan observability: tracing spans + metrics registry (DESIGN.md §5.10).
//
// A degraded or slow scan must be diagnosable from its artifacts alone —
// "where did the time go, which stage regressed, which files were retried"
// — without attaching a debugger. Two cooperating pieces:
//
//   * Spans. `TelemetrySpan` is an RAII scoped timer: sites in the pipeline
//     (per stage and per file) open one, and on close the event lands in a
//     per-thread buffer owned by the armed `Telemetry` session. Buffers are
//     appended to only by their owning thread (no locks, no sharing on the
//     hot path); the session collects them at export time. The export is
//     Chrome trace-event JSON (`chrome://tracing` / Perfetto "X" events),
//     with events sorted by (name, arg, start), so the *content* — event
//     names, args, counts — is deterministic for a given input at every
//     `--jobs` value, while timestamps/durations are the measured walltimes.
//     Every span also records its duration into a `span.<name>` latency
//     histogram in the session's metrics registry.
//
//   * Metrics. `MetricsRegistry` holds named counters (monotonic u64),
//     gauges (last/max i64) and log-scale latency histograms, exposed in
//     Prometheus text exposition format (`--metrics-out`, sorted by name).
//     The scan engine counts into a scan-local registry through pre-resolved
//     handles and materialises the stable `ScanStats` façade from it at the
//     end, then merges the scan's registry into the armed session (counters
//     add, gauges max, histograms merge) so `--metrics-out` sees both the
//     engine's counters and the support-layer ones (pool, governor, faults).
//
// Determinism contract (asserted by tests/telemetry_test.cc and CI):
// counters and gauges are deterministic for a given input — identical at
// every `--jobs` value and across runs — EXCEPT those under `sched.`
// (thread-pool scheduling: steals, queue depths, busy time) and any metric
// fed by a wall-clock governor (`governor.deadline_trips`). Histograms
// (`span.*` latencies) are measured time and never deterministic. Exported
// metric names mangle to `refscan_<name>` with non-alphanumerics as '_';
// histograms append `_seconds`. A comparison tool therefore keeps
// `refscan_*` lines and drops `refscan_sched_*`, `refscan_governor_*` and
// `*_seconds*` lines.
//
// Arming follows the faultinject registry pattern: `ScopedTelemetry`
// installs a session process-wide and restores the previous one on
// destruction; when disarmed, a span site costs one relaxed atomic load and
// one branch, and no clock is ever read. Disarm must not race with in-flight
// spans (the CLI arms around the whole run; library callers arm around
// Scan), same contract as fault arming.

#ifndef REFSCAN_SUPPORT_TELEMETRY_H_
#define REFSCAN_SUPPORT_TELEMETRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace refscan {

// ---------------------------------------------------------------- metrics

// Monotonically increasing counter. Thread-safe; relaxed atomics (counts
// are read only after the batch they instrument has completed).
class MetricCounter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-written / high-watermark value. `Set` overwrites, `Max` keeps the
// largest value ever recorded (queue depths, utilization peaks).
class MetricGauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Max(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Latency histogram over nanoseconds: log-2 buckets from 1µs (2^10 ns) up,
// plus an overflow bucket. Exposed in Prometheus exposition as seconds.
class MetricHistogram {
 public:
  static constexpr size_t kBuckets = 24;  // 2^10 ns (1µs) .. 2^33 ns (~8.6s), then +Inf

  void Record(uint64_t ns);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_ns() const { return sum_ns_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const { return buckets_[i].load(std::memory_order_relaxed); }
  // Upper bound of bucket `i` in nanoseconds (the last bucket is +Inf).
  static uint64_t BucketBoundNs(size_t i) { return uint64_t{1} << (10 + i); }

 private:
  friend class MetricsRegistry;
  std::atomic<uint64_t> buckets_[kBuckets + 1] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_ns_{0};
};

// Named metrics, get-or-create. Creation takes a mutex; the returned
// references stay valid for the registry's lifetime (node-based storage),
// so hot sites resolve a handle once and then pay only the atomic ops.
class MetricsRegistry {
 public:
  MetricCounter& Counter(std::string_view name);
  MetricGauge& Gauge(std::string_view name);
  MetricHistogram& Histogram(std::string_view name);

  // 0 / absent-safe readers (for tests and the ScanStats façade).
  uint64_t CounterValue(std::string_view name) const;
  int64_t GaugeValue(std::string_view name) const;

  // Sums counters, maxes gauges, merges histogram buckets. Used to fold a
  // scan-local registry into the armed session.
  void MergeFrom(const MetricsRegistry& other);

  // Prometheus text exposition format, metrics sorted by name: counters as
  // `refscan_<name>`, gauges likewise, histograms as
  // `refscan_<name>_seconds{_bucket,_sum,_count}`. Deterministic field
  // order; see the header comment for which *values* are deterministic.
  std::string ToPrometheusText() const;

  // Sorted snapshots (for tests).
  std::vector<std::pair<std::string, uint64_t>> CounterSnapshot() const;
  std::vector<std::pair<std::string, int64_t>> GaugeSnapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<MetricCounter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<MetricGauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<MetricHistogram>, std::less<>> histograms_;
};

// ---------------------------------------------------------------- tracing

// One completed span. `name` must have static storage duration (span sites
// pass string literals); `arg` is the per-event subject (file path), empty
// for stage-level spans. Times are nanoseconds relative to the session
// epoch.
struct TraceEvent {
  const char* name = "";
  std::string arg;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;
};

// One scan/run's telemetry: trace buffers + metrics registry. Create one,
// arm it with ScopedTelemetry, run, then export. Not reusable concurrently
// by two arms, but sequential scans may share one session (counters and
// events accumulate).
class Telemetry {
 public:
  Telemetry();

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // Appends a completed span to the calling thread's buffer (lock-free
  // after the thread's first event) and records its latency histogram.
  void RecordSpan(const char* name, std::string_view arg, uint64_t start_ns, uint64_t dur_ns);

  uint64_t NowNs() const;  // nanoseconds since the session epoch

  // All events so far, sorted by (name, arg, start, dur) — the canonical
  // deterministic-content order. Safe to call only while no span is open.
  std::vector<TraceEvent> SortedEvents() const;
  size_t event_count() const;

  // Chrome trace-event JSON ("X" complete events, ts/dur in microseconds):
  // loadable by chrome://tracing and Perfetto. Event order is SortedEvents
  // order, so names/args/counts are byte-identical across runs up to the
  // measured ts/dur/tid fields.
  std::string TraceToChromeJson() const;

  // Convenience: metrics().ToPrometheusText().
  std::string MetricsToPrometheusText() const { return metrics_.ToPrometheusText(); }

 private:
  struct ThreadBuffer {
    uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };

  ThreadBuffer& BufferForThisThread();

  const uint64_t generation_;  // process-unique, keys the thread-local cache
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex buffers_mutex_;
  std::deque<ThreadBuffer> buffers_;  // deque: stable addresses for the caches
  MetricsRegistry metrics_;
};

namespace telemetry_detail {
extern std::atomic<Telemetry*> g_session;
}  // namespace telemetry_detail

// The armed session, or nullptr. One relaxed load — this is the whole
// disarmed cost of every instrumentation site.
inline Telemetry* CurrentTelemetry() {
  return telemetry_detail::g_session.load(std::memory_order_relaxed);
}

// RAII process-wide arming; restores the previously-armed session (or the
// disarmed state) on destruction.
class ScopedTelemetry {
 public:
  explicit ScopedTelemetry(Telemetry& session);
  ~ScopedTelemetry();

  ScopedTelemetry(const ScopedTelemetry&) = delete;
  ScopedTelemetry& operator=(const ScopedTelemetry&) = delete;

 private:
  Telemetry* previous_;
};

// RAII scoped timer. Disarmed: one load + branch, no clock read, no copy.
class TelemetrySpan {
 public:
  explicit TelemetrySpan(const char* name, std::string_view arg = {})
      : session_(CurrentTelemetry()) {
    if (session_ != nullptr) {
      name_ = name;
      arg_ = arg;
      start_ns_ = session_->NowNs();
    }
  }
  ~TelemetrySpan() {
    if (session_ != nullptr) {
      session_->RecordSpan(name_, arg_, start_ns_, session_->NowNs() - start_ns_);
    }
  }

  TelemetrySpan(const TelemetrySpan&) = delete;
  TelemetrySpan& operator=(const TelemetrySpan&) = delete;

 private:
  Telemetry* session_;
  const char* name_ = "";
  std::string_view arg_;
  uint64_t start_ns_ = 0;
};

// Counter / gauge helpers for sites that fire rarely enough that a name
// lookup per hit is fine (fault fires, governor trips). Hot sites resolve a
// handle once instead.
inline void TelemetryCount(std::string_view name, uint64_t n = 1) {
  if (Telemetry* t = CurrentTelemetry()) {
    t->metrics().Counter(name).Add(n);
  }
}
inline void TelemetryGaugeMax(std::string_view name, int64_t v) {
  if (Telemetry* t = CurrentTelemetry()) {
    t->metrics().Gauge(name).Max(v);
  }
}

// Mangles an internal metric name to its Prometheus exposition name:
// `refscan_` prefix, non-[a-zA-Z0-9_] characters become '_'.
std::string PrometheusMetricName(std::string_view name);

}  // namespace refscan

#endif  // REFSCAN_SUPPORT_TELEMETRY_H_
