#include "src/support/faultinject.h"

#include <charconv>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "src/support/telemetry.h"

namespace refscan {

namespace {

// Known site names: rejecting unknown sites at parse time turns a typo in a
// CI spec into a hard error instead of a silently un-faulted run.
constexpr std::string_view kKnownSites[] = {
    "fs.read",      "cache.load",    "cache.store",  "parser.parse",
    "checker.run",  "ipa.summarize", "worker.facts", "worker.results",
    "serve.accept", "serve.request", "ipc.write",
};

bool IsKnownSite(std::string_view site) {
  for (const std::string_view s : kKnownSites) {
    if (site == s) {
      return true;
    }
  }
  return false;
}

bool ParseU64(std::string_view text, uint64_t& out) {
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

// FNV-1a over a string, folded into a running state.
uint64_t FnvMix(uint64_t state, std::string_view text) {
  for (const char c : text) {
    state ^= static_cast<uint8_t>(c);
    state *= 0x100000001b3ULL;
  }
  return state;
}

// splitmix64 finalizer: spreads the FNV state so `% N` selections are
// unbiased across subjects.
uint64_t Finalize(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct Registry {
  std::mutex mutex;
  FaultPlan plan;
  // `once` bookkeeping: hit count per (rule index, subject). Cleared on
  // every (re)arm so scans replay identically.
  std::map<std::string, uint64_t> once_counters;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all threads
  return *registry;
}

}  // namespace

namespace faultinject_detail {

std::atomic<bool> g_armed{false};

void MaybeFaultSlow(std::string_view site, std::string_view subject) {
  FaultRule fired;
  bool any = false;
  {
    Registry& reg = GetRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (size_t r = 0; r < reg.plan.rules.size() && !any; ++r) {
      const FaultRule& rule = reg.plan.rules[r];
      if (rule.site != site) {
        continue;
      }
      switch (rule.trigger) {
        case FaultRule::Trigger::kAlways:
          any = true;
          break;
        case FaultRule::Trigger::kFile:
          any = GlobMatch(rule.glob, subject);
          break;
        case FaultRule::Trigger::kEvery: {
          const uint64_t h =
              Finalize(FnvMix(FnvMix(reg.plan.seed ^ 0xcbf29ce484222325ULL, site), subject));
          any = rule.every_n > 0 && h % rule.every_n == 0;
          break;
        }
        case FaultRule::Trigger::kOnce: {
          std::string key = std::to_string(r);
          key.push_back('\0');
          key.append(subject);
          any = reg.once_counters[key]++ == 0;
          break;
        }
      }
      if (any) {
        fired = rule;
      }
    }
  }
  if (!any) {
    return;
  }
  // Observability: every fired rule counts, totalled and per site, so a
  // trace/metrics dump shows how much of a degraded run was injected.
  TelemetryCount("fault.fired");
  TelemetryCount(std::string("fault.fired.") + std::string(site));
  const std::string where = std::string(site) + " (" + std::string(subject) + ")";
  switch (fired.action) {
    case FaultRule::Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(fired.delay_ms));
      return;
    case FaultRule::Action::kIo:
      throw FaultInjected(std::string(site), /*transient_io=*/true,
                          "injected transient I/O fault at " + where);
    case FaultRule::Action::kTruncate:
      throw FaultInjected(std::string(site), /*transient_io=*/false,
                          "injected truncated data at " + where);
    case FaultRule::Action::kThrow:
      throw FaultInjected(std::string(site), /*transient_io=*/false, "injected fault at " + where);
  }
}

}  // namespace faultinject_detail

bool GlobMatch(std::string_view glob, std::string_view text) {
  // Iterative wildcard match with single-star backtracking.
  size_t g = 0, t = 0;
  size_t star = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (g < glob.size() && (glob[g] == '?' || glob[g] == text[t])) {
      ++g;
      ++t;
    } else if (g < glob.size() && glob[g] == '*') {
      star = g++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      g = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (g < glob.size() && glob[g] == '*') {
    ++g;
  }
  return g == glob.size();
}

bool ParseFaultSpec(std::string_view spec, FaultPlan& out, std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error = what;
    }
    return false;
  };

  FaultPlan plan;
  while (!spec.empty()) {
    const size_t comma = spec.find(',');
    std::string_view item = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view{} : spec.substr(comma + 1);
    while (!item.empty() && item.front() == ' ') {
      item.remove_prefix(1);
    }
    while (!item.empty() && item.back() == ' ') {
      item.remove_suffix(1);
    }
    if (item.empty()) {
      continue;
    }

    if (item.starts_with("seed=")) {
      if (!ParseU64(item.substr(5), plan.seed)) {
        return fail("bad seed in '" + std::string(item) + "'");
      }
      continue;
    }

    const size_t c1 = item.find(':');
    if (c1 == std::string_view::npos) {
      return fail("expected site:trigger in '" + std::string(item) + "'");
    }
    FaultRule rule;
    rule.site = std::string(item.substr(0, c1));
    if (!IsKnownSite(rule.site)) {
      return fail("unknown fault site '" + rule.site + "'");
    }

    std::string_view rest = item.substr(c1 + 1);
    const size_t c2 = rest.find(':');
    const std::string_view trigger = rest.substr(0, c2);
    const std::string_view action =
        c2 == std::string_view::npos ? std::string_view{} : rest.substr(c2 + 1);

    if (trigger == "always") {
      rule.trigger = FaultRule::Trigger::kAlways;
    } else if (trigger == "once") {
      rule.trigger = FaultRule::Trigger::kOnce;
    } else if (trigger.starts_with("every=")) {
      rule.trigger = FaultRule::Trigger::kEvery;
      if (!ParseU64(trigger.substr(6), rule.every_n) || rule.every_n == 0) {
        return fail("bad every=N in '" + std::string(item) + "'");
      }
    } else if (trigger.starts_with("file=")) {
      rule.trigger = FaultRule::Trigger::kFile;
      rule.glob = std::string(trigger.substr(5));
      if (rule.glob.empty()) {
        return fail("empty glob in '" + std::string(item) + "'");
      }
    } else {
      return fail("unknown trigger '" + std::string(trigger) + "'");
    }

    if (action.empty() || action == "throw") {
      rule.action = FaultRule::Action::kThrow;
    } else if (action == "io") {
      rule.action = FaultRule::Action::kIo;
    } else if (action == "truncate") {
      rule.action = FaultRule::Action::kTruncate;
    } else if (action.starts_with("delay=")) {
      rule.action = FaultRule::Action::kDelay;
      uint64_t ms = 0;
      if (!ParseU64(action.substr(6), ms) || ms > 60'000) {
        return fail("bad delay=MS in '" + std::string(item) + "'");
      }
      rule.delay_ms = static_cast<uint32_t>(ms);
    } else {
      return fail("unknown action '" + std::string(action) + "'");
    }
    plan.rules.push_back(std::move(rule));
  }

  out = std::move(plan);
  return true;
}

void ArmFaults(FaultPlan plan) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.plan = std::move(plan);
  reg.once_counters.clear();
  faultinject_detail::g_armed.store(!reg.plan.rules.empty(), std::memory_order_relaxed);
}

void DisarmFaults() { ArmFaults(FaultPlan{}); }

bool ArmFaultsFromEnv(std::string* error, const char* var) {
  const char* value = std::getenv(var);
  if (value == nullptr || *value == '\0') {
    return true;
  }
  FaultPlan plan;
  if (!ParseFaultSpec(value, plan, error)) {
    return false;
  }
  ArmFaults(std::move(plan));
  return true;
}

ScopedFaultArm::ScopedFaultArm(FaultPlan plan) {
  Registry& reg = GetRegistry();
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    previous_ = reg.plan;
    previous_armed_ = faultinject_detail::g_armed.load(std::memory_order_relaxed);
  }
  ArmFaults(std::move(plan));
}

ScopedFaultArm::ScopedFaultArm(std::string_view spec) {
  Registry& reg = GetRegistry();
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    previous_ = reg.plan;
    previous_armed_ = faultinject_detail::g_armed.load(std::memory_order_relaxed);
  }
  FaultPlan plan;
  if (ParseFaultSpec(spec, plan)) {
    ArmFaults(std::move(plan));
  }
}

ScopedFaultArm::~ScopedFaultArm() {
  if (previous_armed_) {
    ArmFaults(std::move(previous_));
  } else {
    DisarmFaults();
  }
}

}  // namespace refscan
