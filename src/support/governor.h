// Cooperative resource governors (DESIGN.md §5.9).
//
// Per-file budgets for the scan pipeline: a wall-clock deadline plus the
// size/depth/node caps declared in ScanOptions. Overruns raise
// ResourceLimitError, which the engine's per-file sandboxes convert into a
// quarantined FileFailure of kind kResourceLimit — no thread is ever
// killed, so locks, caches and the thread pool stay healthy.
//
// The deadline is thread-local: the sandbox running one file's parse or
// checking installs a ScopedDeadline, and the long loops underneath
// (parser statements, CFG lowering, per-function checking) poll it with
// CheckDeadline. Polls amortise the clock read over 8 calls; with the
// deadline disarmed a poll is one thread-local flag test.

#ifndef REFSCAN_SUPPORT_GOVERNOR_H_
#define REFSCAN_SUPPORT_GOVERNOR_H_

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace refscan {

// A per-file resource cap was exceeded (deadline, input size, AST depth or
// node count). Quarantined as FailureKind::kResourceLimit.
class ResourceLimitError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class DeadlineExceeded : public ResourceLimitError {
 public:
  using ResourceLimitError::ResourceLimitError;
};

namespace governor_detail {

struct DeadlineState {
  std::chrono::steady_clock::time_point deadline{};
  bool armed = false;
  uint32_t tick = 0;
};

extern thread_local DeadlineState g_deadline;

[[noreturn]] void ThrowDeadlineExceeded(const char* where);

}  // namespace governor_detail

// Installs a wall-clock budget for the current thread; 0 = no deadline.
// Nests: the previous state is restored on destruction.
class ScopedDeadline {
 public:
  explicit ScopedDeadline(uint32_t budget_ms) : saved_(governor_detail::g_deadline) {
    if (budget_ms > 0) {
      governor_detail::g_deadline.deadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(budget_ms);
      governor_detail::g_deadline.armed = true;
      governor_detail::g_deadline.tick = 0;
    }
  }
  ~ScopedDeadline() { governor_detail::g_deadline = saved_; }

  ScopedDeadline(const ScopedDeadline&) = delete;
  ScopedDeadline& operator=(const ScopedDeadline&) = delete;

 private:
  governor_detail::DeadlineState saved_;
};

// Cooperative poll. `where` names the loop for the diagnostic ("parser",
// "cfg", "checker").
inline void CheckDeadline(const char* where) {
  auto& st = governor_detail::g_deadline;
  if (!st.armed) {
    return;
  }
  if ((++st.tick & 7u) != 0) {
    return;
  }
  if (std::chrono::steady_clock::now() >= st.deadline) {
    governor_detail::ThrowDeadlineExceeded(where);
  }
}

}  // namespace refscan

#endif  // REFSCAN_SUPPORT_GOVERNOR_H_
