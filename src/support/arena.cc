#include "src/support/arena.h"

#include <algorithm>

namespace refscan {

namespace {
constexpr size_t kMaxBlockSize = 256 * 1024;
}  // namespace

void* Arena::AllocateSlow(size_t size, size_t align) {
  // Oversized requests get a dedicated block; normal requests grow the
  // chain geometrically so allocation count stays O(log bytes).
  size_t block_size = next_block_size_;
  if (size + align > block_size) {
    block_size = size + align;
  } else {
    next_block_size_ = std::min(next_block_size_ * 2, kMaxBlockSize);
  }
  Block block;
  block.data = std::make_unique<char[]>(block_size);
  block.size = block_size;
  ptr_ = block.data.get();
  end_ = ptr_ + block_size;
  bytes_reserved_ += block_size;
  blocks_.push_back(std::move(block));

  char* aligned = AlignUp(ptr_, align);
  ptr_ = aligned + size;
  bytes_used_ += size;
  return aligned;
}

void Arena::Reset() {
  if (blocks_.empty()) {
    bytes_used_ = 0;
    return;
  }
  // Keep only the largest block; a rescan of a similar unit then bump-fills
  // it without touching the heap.
  auto largest = std::max_element(
      blocks_.begin(), blocks_.end(),
      [](const Block& a, const Block& b) { return a.size < b.size; });
  Block keep = std::move(*largest);
  blocks_.clear();
  ptr_ = keep.data.get();
  end_ = ptr_ + keep.size;
  bytes_reserved_ = keep.size;
  bytes_used_ = 0;
  blocks_.push_back(std::move(keep));
}

}  // namespace refscan
