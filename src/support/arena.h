// Chunked bump allocator for per-unit AST/CFG/CPG storage (DESIGN.md §5.11).
//
// One Arena owns every node of one translation unit: allocation is a pointer
// bump inside a geometrically-growing chain of blocks, addresses are stable
// for the arena's lifetime (blocks never move or reallocate), and the whole
// unit is freed wholesale when the arena is destroyed — no per-node
// `delete`, no destructor walks. Objects placed in an arena must therefore
// be trivially destructible; `New<T>` enforces that at compile time.
//
// Arenas are single-threaded by design: each parse worker owns the arena of
// the unit it is building. Thread-safe sharing of *immutable* arena contents
// after the parse barrier is fine (readers never mutate or allocate).

#ifndef REFSCAN_SUPPORT_ARENA_H_
#define REFSCAN_SUPPORT_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace refscan {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  // Raw aligned allocation. Never returns nullptr (throws std::bad_alloc on
  // OOM like operator new).
  void* Allocate(size_t size, size_t align) {
    char* aligned = AlignUp(ptr_, align);
    if (aligned + size > end_) {
      return AllocateSlow(size, align);
    }
    ptr_ = aligned + size;
    bytes_used_ += size;
    return aligned;
  }

  // Constructs a T in the arena. T must be trivially destructible — the
  // arena frees memory without running destructors.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena-allocated types must be trivially destructible");
    return new (Allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  // Uninitialised array of trivially-destructible Ts.
  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena-allocated types must be trivially destructible");
    return static_cast<T*>(Allocate(sizeof(T) * count, alignof(T)));
  }

  // Copies `text` into the arena with a trailing NUL (not included in the
  // returned view), so .data() doubles as a C string.
  std::string_view CopyString(std::string_view text) {
    char* out = static_cast<char*>(Allocate(text.size() + 1, 1));
    std::memcpy(out, text.data(), text.size());
    out[text.size()] = '\0';
    return {out, text.size()};
  }

  // Rewinds to empty, keeping the largest block for reuse (the steady-state
  // rescan of a same-sized unit then allocates zero new blocks).
  void Reset();

  // Accounting (allocation-regression tests and --stats plumbing).
  size_t bytes_used() const { return bytes_used_; }
  size_t bytes_reserved() const { return bytes_reserved_; }
  size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  static char* AlignUp(char* p, size_t align) {
    const auto v = reinterpret_cast<uintptr_t>(p);
    return reinterpret_cast<char*>((v + align - 1) & ~(align - 1));
  }

  void* AllocateSlow(size_t size, size_t align);

  std::vector<Block> blocks_;
  char* ptr_ = nullptr;
  char* end_ = nullptr;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
  size_t next_block_size_ = 8 * 1024;
};

// Arena-backed growable array of trivially-destructible Ts: the AST's
// replacement for std::vector children (Expr::args, Stmt::stmts). Grows
// geometrically by copying into a fresh arena span; the abandoned prefix
// stays in the arena until the unit dies (bounded ~1x waste, zero frees).
// Iteration order and indexing match std::vector.
template <typename T>
class ArenaVec {
 public:
  static_assert(std::is_trivially_destructible_v<T>);
  static_assert(std::is_trivially_copyable_v<T>);

  ArenaVec() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  void push_back(const T& value, Arena& arena) {
    if (size_ == capacity_) {
      Grow(arena);
    }
    data_[size_++] = value;
  }

 private:
  void Grow(Arena& arena) {
    const uint32_t cap = capacity_ == 0 ? 4 : capacity_ * 2;
    T* fresh = arena.AllocateArray<T>(cap);
    if (size_ > 0) {
      std::memcpy(fresh, data_, sizeof(T) * size_);
    }
    data_ = fresh;
    capacity_ = cap;
  }

  T* data_ = nullptr;
  uint32_t size_ = 0;
  uint32_t capacity_ = 0;
};

}  // namespace refscan

#endif  // REFSCAN_SUPPORT_ARENA_H_
