#include "src/support/fs.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <thread>

#include "src/support/faultinject.h"
#include "src/support/telemetry.h"
#include "src/support/threadpool.h"

namespace refscan {

namespace fs = std::filesystem;

namespace {

struct ReadResult {
  std::string text;
  std::shared_ptr<const char[]> mapping;  // set = mmap-backed, `text` unused
  size_t mapped_size = 0;
  std::string error;
  bool ok = false;
  int retries = 0;
};

// One pre-sized read: stat the size, resize the string once, read straight
// into it. Falls back to chunked appends only when the size is unknowable
// (procfs-style files report 0/err); the old ostringstream-rdbuf copy paid
// for the stream machinery plus a full extra buffer copy per file.
ReadResult ReadFileContents(const fs::path& path) {
  ReadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return result;
  }
  std::error_code ec;
  const uintmax_t size = fs::file_size(path, ec);
  if (!ec && size > 0) {
    result.text.resize(static_cast<size_t>(size));
    in.read(result.text.data(), static_cast<std::streamsize>(result.text.size()));
    result.text.resize(static_cast<size_t>(std::max<std::streamsize>(in.gcount(), 0)));
    result.ok = true;
    return result;
  }
  char buffer[1 << 16];
  while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
    result.text.append(buffer, static_cast<size_t>(in.gcount()));
    if (!in) {
      break;
    }
  }
  result.ok = true;
  return result;
}

// mmap'd read: MAP_PRIVATE read-only pages stay file-backed, so the kernel
// pages them in on demand and can evict them under memory pressure — peak
// RSS tracks the scan's working set, not the tree. Returns false (caller
// falls back to a plain read) when the file is empty or the filesystem
// refuses to map.
bool MmapFileContents(const fs::path& path, ReadResult& result) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return false;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return false;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    return false;
  }
  result.mapping = std::shared_ptr<const char[]>(
      static_cast<const char*>(map),
      [size](const char* p) { ::munmap(const_cast<char*>(p), size); });
  result.mapped_size = size;
  result.ok = true;
  return true;
}

// ReadFileContents behind the `fs.read` fault-injection site. An injected
// transient I/O failure is retried once after a short backoff (the shape a
// real flaky NFS mount or overloaded disk produces); a permanent injected
// failure, like a genuinely unreadable file, reports as such.
ReadResult ReadCandidate(const fs::path& path, const std::string& key, bool use_mmap) {
  TelemetrySpan span("file.load", key);
  for (int attempt = 0;; ++attempt) {
    try {
      MaybeFault("fs.read", key);
      ReadResult result;
      if (!use_mmap || !MmapFileContents(path, result)) {
        result = ReadFileContents(path);
      }
      result.retries = attempt;
      if (!result.ok) {
        result.error = "unreadable";
      }
      return result;
    } catch (const FaultInjected& e) {
      if (e.transient_io() && attempt == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      ReadResult result;
      result.error = e.what();
      result.retries = attempt;
      return result;
    }
  }
}

}  // namespace

SourceTree LoadSourceTreeFromDisk(const std::string& root, const LoadOptions& options,
                                  std::vector<LoadFailure>* failures, LoadStats* stats) {
  TelemetrySpan stage_span("stage.load");
  SourceTree tree;
  std::error_code ec;
  const fs::path root_path(root);
  if (!fs::exists(root_path, ec)) {
    if (failures != nullptr) {
      failures->push_back({root, "does not exist", 0});
    }
    if (stats != nullptr) {
      ++stats->files_failed;
    }
    return tree;
  }

  // Set-based filters: one lookup per entry instead of one string compare
  // per configured name.
  const std::set<std::string, std::less<>> skip_dirs(options.skip_dirs.begin(),
                                                     options.skip_dirs.end());
  const std::set<std::string, std::less<>> extensions(options.extensions.begin(),
                                                      options.extensions.end());

  // Serial walk: collect candidate files (with their tree keys) in
  // directory-iteration order. The reads below fan out over the pool, but
  // insertion is by candidate index, so the tree and the error list come
  // out identical at every `jobs` value.
  struct Candidate {
    fs::path path;
    std::string key;
  };
  std::vector<Candidate> candidates;

  fs::recursive_directory_iterator it(root_path, fs::directory_options::skip_permission_denied,
                                      ec);
  const fs::recursive_directory_iterator end;
  while (it != end) {
    const fs::directory_entry& entry = *it;
    if (entry.is_directory(ec)) {
      if (skip_dirs.find(entry.path().filename().string()) != skip_dirs.end()) {
        it.disable_recursion_pending();
      }
      it.increment(ec);
      continue;
    }
    if (!entry.is_regular_file(ec)) {
      it.increment(ec);
      continue;
    }
    if (extensions.find(entry.path().extension().string()) == extensions.end()) {
      it.increment(ec);
      continue;
    }
    if (options.max_file_bytes > 0) {
      const auto size = entry.file_size(ec);
      if (!ec && size > options.max_file_bytes) {
        it.increment(ec);
        continue;
      }
    }
    const std::string relative = fs::relative(entry.path(), root_path, ec).generic_string();
    candidates.push_back(
        {entry.path(), relative.empty() ? entry.path().generic_string() : relative});
    it.increment(ec);
  }

  ThreadPool pool(options.jobs);
  const bool use_mmap = options.use_mmap;
  std::vector<ReadResult> contents =
      ParallelMap(pool, candidates.size(), [&candidates, use_mmap](size_t i) {
        return ReadCandidate(candidates[i].path, candidates[i].key, use_mmap);
      });

  LoadStats local;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (contents[i].retries > 0) {
      // Retried ≠ degraded: a retried-then-succeeded read is counted here
      // and nowhere else, a retried-then-failed one is counted here AND
      // carries `retries` in its LoadFailure.
      ++local.files_retried;
    }
    if (!contents[i].ok) {
      ++local.files_failed;
      if (failures != nullptr) {
        failures->push_back({candidates[i].key, contents[i].error, contents[i].retries});
      }
      continue;
    }
    ++local.files_loaded;
    if (contents[i].mapping) {
      tree.Add(SourceFile(std::move(candidates[i].key), std::move(contents[i].mapping),
                          contents[i].mapped_size));
    } else {
      tree.Add(std::move(candidates[i].key), std::move(contents[i].text));
    }
  }
  if (Telemetry* t = CurrentTelemetry()) {
    t->metrics().Counter("load.files").Add(local.files_loaded);
    t->metrics().Counter("load.failures").Add(local.files_failed);
    t->metrics().Counter("load.retries").Add(local.files_retried);
  }
  if (stats != nullptr) {
    stats->files_loaded += local.files_loaded;
    stats->files_failed += local.files_failed;
    stats->files_retried += local.files_retried;
  }
  return tree;
}

SourceTree LoadSourceTreeFromDisk(const std::string& root, const LoadOptions& options,
                                  std::vector<std::string>* errors) {
  std::vector<LoadFailure> failures;
  SourceTree tree = LoadSourceTreeFromDisk(root, options, errors ? &failures : nullptr);
  if (errors != nullptr) {
    for (const LoadFailure& f : failures) {
      errors->push_back(f.path + ": " + f.what);
    }
  }
  return tree;
}

}  // namespace refscan
