#include "src/support/fs.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>

#include "src/support/threadpool.h"

namespace refscan {

namespace fs = std::filesystem;

namespace {

struct ReadResult {
  std::string text;
  bool ok = false;
};

// One pre-sized read: stat the size, resize the string once, read straight
// into it. Falls back to chunked appends only when the size is unknowable
// (procfs-style files report 0/err); the old ostringstream-rdbuf copy paid
// for the stream machinery plus a full extra buffer copy per file.
ReadResult ReadFileContents(const fs::path& path) {
  ReadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return result;
  }
  std::error_code ec;
  const uintmax_t size = fs::file_size(path, ec);
  if (!ec && size > 0) {
    result.text.resize(static_cast<size_t>(size));
    in.read(result.text.data(), static_cast<std::streamsize>(result.text.size()));
    result.text.resize(static_cast<size_t>(std::max<std::streamsize>(in.gcount(), 0)));
    result.ok = true;
    return result;
  }
  char buffer[1 << 16];
  while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
    result.text.append(buffer, static_cast<size_t>(in.gcount()));
    if (!in) {
      break;
    }
  }
  result.ok = true;
  return result;
}

}  // namespace

SourceTree LoadSourceTreeFromDisk(const std::string& root, const LoadOptions& options,
                                  std::vector<std::string>* errors) {
  SourceTree tree;
  std::error_code ec;
  const fs::path root_path(root);
  if (!fs::exists(root_path, ec)) {
    if (errors != nullptr) {
      errors->push_back(root + ": does not exist");
    }
    return tree;
  }

  // Set-based filters: one lookup per entry instead of one string compare
  // per configured name.
  const std::set<std::string, std::less<>> skip_dirs(options.skip_dirs.begin(),
                                                     options.skip_dirs.end());
  const std::set<std::string, std::less<>> extensions(options.extensions.begin(),
                                                      options.extensions.end());

  // Serial walk: collect candidate files (with their tree keys) in
  // directory-iteration order. The reads below fan out over the pool, but
  // insertion is by candidate index, so the tree and the error list come
  // out identical at every `jobs` value.
  struct Candidate {
    fs::path path;
    std::string key;
  };
  std::vector<Candidate> candidates;

  fs::recursive_directory_iterator it(root_path, fs::directory_options::skip_permission_denied,
                                      ec);
  const fs::recursive_directory_iterator end;
  while (it != end) {
    const fs::directory_entry& entry = *it;
    if (entry.is_directory(ec)) {
      if (skip_dirs.find(entry.path().filename().string()) != skip_dirs.end()) {
        it.disable_recursion_pending();
      }
      it.increment(ec);
      continue;
    }
    if (!entry.is_regular_file(ec)) {
      it.increment(ec);
      continue;
    }
    if (extensions.find(entry.path().extension().string()) == extensions.end()) {
      it.increment(ec);
      continue;
    }
    if (options.max_file_bytes > 0) {
      const auto size = entry.file_size(ec);
      if (!ec && size > options.max_file_bytes) {
        it.increment(ec);
        continue;
      }
    }
    const std::string relative = fs::relative(entry.path(), root_path, ec).generic_string();
    candidates.push_back(
        {entry.path(), relative.empty() ? entry.path().generic_string() : relative});
    it.increment(ec);
  }

  ThreadPool pool(options.jobs);
  std::vector<ReadResult> contents = ParallelMap(
      pool, candidates.size(), [&candidates](size_t i) { return ReadFileContents(candidates[i].path); });

  for (size_t i = 0; i < candidates.size(); ++i) {
    if (!contents[i].ok) {
      if (errors != nullptr) {
        errors->push_back(candidates[i].path.string() + ": unreadable");
      }
      continue;
    }
    tree.Add(std::move(candidates[i].key), std::move(contents[i].text));
  }
  return tree;
}

}  // namespace refscan
