#include "src/support/fs.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace refscan {

namespace fs = std::filesystem;

SourceTree LoadSourceTreeFromDisk(const std::string& root, const LoadOptions& options,
                                  std::vector<std::string>* errors) {
  SourceTree tree;
  std::error_code ec;
  const fs::path root_path(root);
  if (!fs::exists(root_path, ec)) {
    if (errors != nullptr) {
      errors->push_back(root + ": does not exist");
    }
    return tree;
  }

  auto skip_dir = [&options](const fs::path& dir) {
    const std::string name = dir.filename().string();
    for (const std::string& skip : options.skip_dirs) {
      if (name == skip) {
        return true;
      }
    }
    return false;
  };

  fs::recursive_directory_iterator it(root_path, fs::directory_options::skip_permission_denied,
                                      ec);
  const fs::recursive_directory_iterator end;
  while (it != end) {
    const fs::directory_entry& entry = *it;
    if (entry.is_directory(ec)) {
      if (skip_dir(entry.path())) {
        it.disable_recursion_pending();
      }
      it.increment(ec);
      continue;
    }
    if (!entry.is_regular_file(ec)) {
      it.increment(ec);
      continue;
    }
    const std::string ext = entry.path().extension().string();
    bool wanted = false;
    for (const std::string& e : options.extensions) {
      wanted |= ext == e;
    }
    if (!wanted) {
      it.increment(ec);
      continue;
    }
    if (options.max_file_bytes > 0) {
      const auto size = entry.file_size(ec);
      if (!ec && size > options.max_file_bytes) {
        it.increment(ec);
        continue;
      }
    }

    std::ifstream in(entry.path(), std::ios::binary);
    if (!in) {
      if (errors != nullptr) {
        errors->push_back(entry.path().string() + ": unreadable");
      }
      it.increment(ec);
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string relative = fs::relative(entry.path(), root_path, ec).generic_string();
    tree.Add(relative.empty() ? entry.path().generic_string() : relative, buffer.str());
    it.increment(ec);
  }
  return tree;
}

}  // namespace refscan
