// Source buffers and locations.
//
// refscan analyses in-memory source trees: a SourceFile owns the text of one
// C file; SourceTree is the whole (synthetic or on-disk) kernel tree. All
// later stages (lexer, AST, CFG, CPG, checkers) reference locations by
// file path + 1-based line, matching how the paper's CPG uses embedded line
// numbers to represent execution order.

#ifndef REFSCAN_SUPPORT_SOURCE_H_
#define REFSCAN_SUPPORT_SOURCE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace refscan {

struct SourceLocation {
  std::string file;
  uint32_t line = 0;  // 1-based; 0 means unknown.

  bool operator==(const SourceLocation&) const = default;
  std::string ToString() const;
};

// One source file. Owns its text; provides offset→line mapping.
class SourceFile {
 public:
  SourceFile() = default;
  SourceFile(std::string path, std::string text);

  // Zero-copy variant over an externally owned buffer (an mmap'd file,
  // DESIGN.md §5.15): the shared mapping keeps the bytes alive for as long
  // as any SourceFile copy does, and text() views straight into it — the
  // pages are file-backed and evictable, so a multi-MLOC tree's resident
  // size tracks the scan's working set rather than the tree. The pointer
  // (not the SourceFile) owns the buffer, so moving or copying the
  // SourceFile never invalidates outstanding string_views.
  SourceFile(std::string path, std::shared_ptr<const char[]> mapping, size_t size);

  const std::string& path() const { return path_; }
  std::string_view text() const {
    return mapping_ ? std::string_view(mapping_.get(), mapped_size_) : std::string_view(text_);
  }

  // 1-based line number for a byte offset. Offsets past the end map to the
  // last line.
  uint32_t LineAt(size_t offset) const;

  // Number of lines (a trailing newline does not add an empty line).
  uint32_t line_count() const;

  // Text of a 1-based line, without the newline. Out-of-range returns "".
  std::string_view Line(uint32_t line) const;

 private:
  void IndexLines();

  std::string path_;
  std::string text_;
  std::shared_ptr<const char[]> mapping_;  // set = text() views into this
  size_t mapped_size_ = 0;
  std::vector<uint32_t> line_starts_;  // byte offset of each line start
};

// An in-memory tree of source files keyed by path ("drivers/usb/serial.c").
class SourceTree {
 public:
  // Adds a file; replaces any existing file at the same path.
  void Add(std::string path, std::string text);

  // Adds an already-constructed file (the mmap-backed loader path), keyed
  // by its path. Replaces any existing file at the same path.
  void Add(SourceFile file);

  const SourceFile* Find(std::string_view path) const;

  // Stable path-ordered iteration.
  const std::map<std::string, SourceFile>& files() const { return files_; }

  size_t size() const { return files_.size(); }

  // Total number of source lines in files whose path starts with `prefix`
  // (used for bug-density-per-KLOC, Figure 2 right).
  uint64_t LinesUnder(std::string_view prefix) const;

 private:
  std::map<std::string, SourceFile> files_;
};

// Splits "drivers/usb/serial.c" into its top-level subsystem ("drivers") and
// second-level module ("usb"); missing levels come back empty.
struct PathParts {
  std::string subsystem;
  std::string module;
};
PathParts SplitKernelPath(std::string_view path);

}  // namespace refscan

#endif  // REFSCAN_SUPPORT_SOURCE_H_
