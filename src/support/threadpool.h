// Work-stealing thread pool and data-parallel helpers.
//
// The scan pipeline is embarrassingly parallel per file (parse, CFG/CPG
// build, checking), so the engine fans work out over a pool of workers and
// merges results in a deterministic order. The pool is general-purpose:
//
//   * `ThreadPool(n)` owns `n - 1` background workers; the thread calling
//     `ParallelFor`/`ParallelMap` participates as the n-th worker, so a
//     pool of parallelism 1 spawns no threads and runs everything inline
//     (zero overhead for the serial path, and trivially sanitizer-clean).
//   * Each worker owns a deque: `Submit` distributes round-robin, workers
//     pop their own deque LIFO and steal FIFO from victims when empty —
//     the classic work-stealing layout (Blumofe–Leiserson) that keeps hot
//     tasks cache-local while idle workers drain the longest queues.
//   * `ParallelFor(pool, begin, end, fn)` balances loop iterations over
//     the workers through a shared atomic cursor, so uneven per-item cost
//     (a 10-line header vs. a 4k-line driver) cannot stall the batch.
//
// `Submit`-level tasks must not throw (an escaping exception terminates);
// `ParallelFor`/`ParallelMap` iterations MAY throw: every iteration still
// runs, the barrier collects every exception, and one aggregate
// ParallelForError is raised after the batch completes — so a mid-batch
// throw can never leave a result vector partially spliced or a sibling
// iteration skipped. The scan pipeline additionally sandboxes per-file work
// (see engine.cc); the aggregate rethrow here is the backstop for internal
// bugs, not the primary failure channel.

#ifndef REFSCAN_SUPPORT_THREADPOOL_H_
#define REFSCAN_SUPPORT_THREADPOOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace refscan {

// Aggregate of every exception thrown by a ParallelFor batch. Raised only
// after all iterations have run (the barrier is never broken early), with
// the failing iterations listed in index order — deterministic at every
// thread count.
class ParallelForError : public std::runtime_error {
 public:
  ParallelForError(std::string what, std::vector<std::pair<size_t, std::string>> failures)
      : std::runtime_error(std::move(what)), failures_(std::move(failures)) {}

  // (iteration index, exception message), sorted by index.
  const std::vector<std::pair<size_t, std::string>>& failures() const { return failures_; }

 private:
  std::vector<std::pair<size_t, std::string>> failures_;
};

class ThreadPool {
 public:
  // `parallelism` = total number of threads doing work, counting the caller
  // of ParallelFor/ParallelMap; 0 means one per hardware thread.
  explicit ThreadPool(size_t parallelism = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t parallelism() const { return parallelism_; }

  // Enqueues one task for the background workers. With parallelism 1 there
  // are no workers and the task runs inline, in the caller.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished.
  void WaitIdle();

  // Maps a `jobs` option to an effective parallelism: 0 becomes the
  // hardware thread count, anything else is clamped to >= 1.
  static size_t ResolveJobs(size_t jobs);

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> queue;
  };

  void WorkerLoop(size_t self);
  // Pops own work LIFO, else steals FIFO from another worker. Returns an
  // empty function when every queue is empty.
  std::function<void()> NextTask(size_t self);

  size_t parallelism_ = 1;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable idle_cv_;
  std::atomic<size_t> submit_cursor_{0};
  std::atomic<size_t> inflight_{0};  // queued + running tasks
  size_t ready_ = 0;                 // queued-not-yet-claimed; guarded by wake_mutex_
  bool stopping_ = false;
};

// Runs fn(i) for every i in [begin, end), spread over the pool's workers
// plus the calling thread. Iterations are claimed one at a time from a
// shared cursor, so long items load-balance; the call returns once every
// iteration has finished. fn must be safe to invoke concurrently. A
// throwing iteration does not stop the batch: every other iteration still
// runs, and the collected exceptions surface as one ParallelForError after
// the barrier (identical behaviour at parallelism 1).
void ParallelFor(ThreadPool& pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn);

// ParallelFor that materialises fn(i) into slot i of the result vector —
// output order is index order regardless of execution order, which is what
// keeps parallel scans byte-identical to serial ones.
template <typename Fn>
auto ParallelMap(ThreadPool& pool, size_t count, const Fn& fn)
    -> std::vector<decltype(fn(size_t{0}))> {
  std::vector<decltype(fn(size_t{0}))> out(count);
  ParallelFor(pool, 0, count, [&out, &fn](size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace refscan

#endif  // REFSCAN_SUPPORT_THREADPOOL_H_
