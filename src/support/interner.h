// Global thread-safe string interner (DESIGN.md §5.11).
//
// Maps identifier/token/API-name text to dense 32-bit `Symbol` ids so the
// hot paths — KnowledgeBase::FindApi, CPG event comparison, template
// matching — compare integers instead of hashing strings. Interning is
// sharded (16 shards, each behind its own mutex); id -> text lookup is a
// lock-free read through a two-level page table, so Symbol::view() costs
// two dependent loads.
//
// Symbol 0 is always the empty string, so a default-constructed Symbol
// means "no object", mirroring the empty std::string it replaces.
//
// DETERMINISM CONTRACT: the numeric id a given text receives depends on the
// interning order, which under a parallel parse depends on thread
// interleaving. Two symbols are equal iff their texts are equal (one global
// table, one id per text — this *is* run-stable), but nothing that reaches
// scan output may be ordered by raw id value. Order by text (Symbol's
// operator< compares views) or by source position instead. The symbol table
// itself is append-only and process-lived; Symbols never dangle.

#ifndef REFSCAN_SUPPORT_INTERNER_H_
#define REFSCAN_SUPPORT_INTERNER_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace refscan {

namespace internal {
// id -> NUL-terminated text, lock-free. Defined in interner.cc.
const char* SymbolTextPtr(uint32_t id);
size_t SymbolTextSize(uint32_t id);
}  // namespace internal

class Symbol {
 public:
  constexpr Symbol() = default;
  explicit constexpr Symbol(uint32_t id) : id_(id) {}

  uint32_t id() const { return id_; }
  bool empty() const { return id_ == 0; }

  std::string_view view() const {
    return {internal::SymbolTextPtr(id_), internal::SymbolTextSize(id_)};
  }
  std::string str() const { return std::string(view()); }
  // The interner stores every string NUL-terminated, so this is safe to
  // hand to printf-style formatting.
  const char* c_str() const { return internal::SymbolTextPtr(id_); }

  friend bool operator==(Symbol a, Symbol b) { return a.id_ == b.id_; }
  friend bool operator!=(Symbol a, Symbol b) { return a.id_ != b.id_; }
  friend bool operator==(Symbol a, std::string_view b) { return a.view() == b; }
  friend bool operator==(std::string_view a, Symbol b) { return a == b.view(); }
  // Text order, NOT id order — safe for output-visible sorting.
  friend bool operator<(Symbol a, Symbol b) { return a.view() < b.view(); }

 private:
  uint32_t id_ = 0;
};

Symbol FindSymbol(std::string_view text);  // declared again below with docs

// Membership-only set of Symbols (sorted id vector + binary search). It
// deliberately exposes NO iteration: iterating by id would leak the
// interleaving-dependent interning order into callers (see the determinism
// contract above). Used for CPG param/local sets where only contains()
// matters.
class SymbolSet {
 public:
  void insert(Symbol s) {
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), s.id());
    if (it == ids_.end() || *it != s.id()) {
      ids_.insert(it, s.id());
    }
  }
  bool contains(Symbol s) const {
    return std::binary_search(ids_.begin(), ids_.end(), s.id());
  }
  // Convenience (tests/diagnostics): membership by text without interning.
  bool contains(std::string_view text) const { return contains(FindSymbol(text)); }
  bool empty() const { return ids_.empty(); }
  size_t size() const { return ids_.size(); }

 private:
  std::vector<uint32_t> ids_;
};

// Interns `text`, returning its unique Symbol (allocating one on first
// sight). Thread-safe; lock-free when only reading id -> text.
Symbol Intern(std::string_view text);

// Looks up without inserting; returns the empty Symbol if `text` was never
// interned. (Symbol 0 is also the legitimate id of ""; callers distinguish
// via text.empty() when it matters.)
Symbol FindSymbol(std::string_view text);

// Number of distinct symbols interned so far (including the empty string).
size_t InternedSymbolCount();

// Total text bytes owned by the interner (diagnostics).
size_t InternedTextBytes();

}  // namespace refscan

#endif  // REFSCAN_SUPPORT_INTERNER_H_
