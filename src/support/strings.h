// Small string utilities shared across refscan modules.

#ifndef REFSCAN_SUPPORT_STRINGS_H_
#define REFSCAN_SUPPORT_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace refscan {

// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string_view> Split(std::string_view text, char sep);

// Splits `text` on any whitespace run, dropping empty fields.
std::vector<std::string_view> SplitWhitespace(std::string_view text);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

// ASCII lower-casing (identifiers and commit messages only, no locale).
std::string ToLower(std::string_view text);

// True if `text` contains `word` delimited by non-identifier characters,
// e.g. ContainsWord("of_node_get(np)", "get") is true via the '_' rule below.
// Identifier tokens are split on '_' as well, matching how the paper treats
// API-name keywords ("get" matches "of_node_get").
bool ContainsIdentifierWord(std::string_view text, std::string_view word);

// Tokenizes into identifier words: letters/digits runs, split on '_' and
// non-alphanumerics, lower-cased. "of_node_get(np)" -> {"of","node","get","np"}.
std::vector<std::string> IdentifierWords(std::string_view text);

// printf-style formatting into a std::string.
[[gnu::format(printf, 1, 2)]] std::string StrFormat(const char* fmt, ...);

// True if `name` ends with `suffix` at an identifier-part boundary, e.g.
// EndsWithWord("usb_serial_put", "put") == true,
// EndsWithWord("output", "put") == false.
bool EndsWithWord(std::string_view name, std::string_view suffix);

// True if `name` starts with `prefix` at an identifier-part boundary.
bool StartsWithWord(std::string_view name, std::string_view prefix);

}  // namespace refscan

#endif  // REFSCAN_SUPPORT_STRINGS_H_
