#include "src/support/interner.h"

#include <atomic>
#include <cassert>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace refscan {

namespace {

// Two-level id -> entry table: 4096 entries per page, pages allocated on
// demand. 16M symbols is far beyond any scan (the whole-kernel corpus has
// ~1M distinct identifiers).
constexpr uint32_t kPageBits = 12;
constexpr uint32_t kPageSize = 1u << kPageBits;
constexpr uint32_t kMaxPages = 4096;

struct Entry {
  const char* text = "";  // NUL-terminated, owned by a shard's text chunks
  uint32_t size = 0;
};

struct Page {
  Entry entries[kPageSize];
};

// The id→entry page table lives at namespace scope (zero-initialised, no
// dynamic initialiser) rather than inside the lazily-constructed Interner:
// Symbol::view()/str() resolve through here tens of millions of times per
// scan, and a function-local static would pay the init-guard acquire on
// every call.
std::atomic<Page*> g_pages[kMaxPages];

struct Shard {
  std::mutex mu;
  std::unordered_map<std::string_view, uint32_t> map;
  std::vector<std::unique_ptr<char[]>> chunks;
  char* ptr = nullptr;
  char* end = nullptr;

  const char* Copy(std::string_view text) {
    const size_t need = text.size() + 1;
    if (static_cast<size_t>(end - ptr) < need) {
      const size_t chunk_size = need > 64 * 1024 ? need : 64 * 1024;
      chunks.push_back(std::make_unique<char[]>(chunk_size));
      ptr = chunks.back().get();
      end = ptr + chunk_size;
    }
    char* out = ptr;
    std::memcpy(out, text.data(), text.size());
    out[text.size()] = '\0';
    ptr += need;
    return out;
  }
};

struct Interner {
  std::mutex page_mu;
  std::atomic<uint32_t> next_id{0};
  std::atomic<size_t> text_bytes{0};
  Shard shards[16];

  Interner() {
    // Reserve id 0 for "" so Symbol() round-trips to the empty string.
    Shard& shard = shards[0];
    std::lock_guard<std::mutex> lock(shard.mu);
    const uint32_t id = next_id.fetch_add(1, std::memory_order_relaxed);
    Entry& e = SlotFor(id);
    e.text = "";
    e.size = 0;
    shard.map.emplace(std::string_view(""), id);
  }

  Entry& SlotFor(uint32_t id) {
    const uint32_t page_index = id >> kPageBits;
    assert(page_index < kMaxPages && "interner overflow");
    Page* page = g_pages[page_index].load(std::memory_order_acquire);
    if (page == nullptr) {
      std::lock_guard<std::mutex> lock(page_mu);
      page = g_pages[page_index].load(std::memory_order_relaxed);
      if (page == nullptr) {
        page = new Page();
        g_pages[page_index].store(page, std::memory_order_release);
      }
    }
    return page->entries[id & (kPageSize - 1)];
  }
};

Interner& G() {
  static Interner* interner = new Interner();  // intentionally leaked
  return *interner;
}

uint32_t ShardOf(std::string_view text) {
  return static_cast<uint32_t>(std::hash<std::string_view>{}(text)) & 15u;
}

// Per-thread direct-mapped cache in front of the shard mutexes. Parsing
// interns the same identifiers over and over (every `np`, `->`, struct
// member, callee name in a unit), so most lookups hit here and never touch
// a lock. Entries reference the interner's immortal text, so a hit can be
// validated with one memcmp; collisions simply overwrite (it is a cache,
// the shard map remains the source of truth).
struct TlEntry {
  const char* text = nullptr;
  uint32_t size = 0;
  uint32_t id = 0;
};

constexpr size_t kTlCacheSlots = 8192;  // power of two; ~128KB per thread

thread_local TlEntry tl_cache[kTlCacheSlots];

}  // namespace

namespace internal {

const char* SymbolTextPtr(uint32_t id) {
  Page* page = g_pages[id >> kPageBits].load(std::memory_order_acquire);
  return page == nullptr ? "" : page->entries[id & (kPageSize - 1)].text;
}

size_t SymbolTextSize(uint32_t id) {
  Page* page = g_pages[id >> kPageBits].load(std::memory_order_acquire);
  return page == nullptr ? 0 : page->entries[id & (kPageSize - 1)].size;
}

}  // namespace internal

Symbol Intern(std::string_view text) {
  if (text.empty()) {
    return Symbol();
  }
  const size_t hash = std::hash<std::string_view>{}(text);
  TlEntry& cached = tl_cache[hash & (kTlCacheSlots - 1)];
  if (cached.size == text.size() && cached.text != nullptr &&
      std::memcmp(cached.text, text.data(), text.size()) == 0) {
    return Symbol(cached.id);
  }
  Interner& g = G();
  Shard& shard = g.shards[static_cast<uint32_t>(hash) & 15u];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (const auto it = shard.map.find(text); it != shard.map.end()) {
    cached = TlEntry{it->first.data(), static_cast<uint32_t>(it->first.size()), it->second};
    return Symbol(it->second);
  }
  const char* copy = shard.Copy(text);
  const uint32_t id = g.next_id.fetch_add(1, std::memory_order_relaxed);
  Entry& e = g.SlotFor(id);
  // Publish the entry before the id can be observed through the map. Cross-
  // thread id propagation (events, merge queues) carries its own
  // happens-before; the atomic page pointer covers first-touch reads.
  e.text = copy;
  e.size = static_cast<uint32_t>(text.size());
  g.text_bytes.fetch_add(text.size() + 1, std::memory_order_relaxed);
  shard.map.emplace(std::string_view(copy, text.size()), id);
  cached = TlEntry{copy, static_cast<uint32_t>(text.size()), id};
  return Symbol(id);
}

Symbol FindSymbol(std::string_view text) {
  if (text.empty()) {
    return Symbol();
  }
  Interner& g = G();
  Shard& shard = g.shards[ShardOf(text)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(text);
  return it == shard.map.end() ? Symbol() : Symbol(it->second);
}

size_t InternedSymbolCount() {
  return G().next_id.load(std::memory_order_relaxed);
}

size_t InternedTextBytes() {
  return G().text_bytes.load(std::memory_order_relaxed);
}

}  // namespace refscan
