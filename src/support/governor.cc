#include "src/support/governor.h"

#include "src/support/telemetry.h"

namespace refscan {
namespace governor_detail {

thread_local DeadlineState g_deadline;

void ThrowDeadlineExceeded(const char* where) {
  TelemetryCount("governor.deadline_trips");
  throw DeadlineExceeded(std::string("per-file deadline exceeded in ") + where + " loop");
}

}  // namespace governor_detail
}  // namespace refscan
