// Filesystem loading for on-disk source trees.
//
// The synthetic corpus lives in memory; this adapter lets the same engine
// scan a real checkout (e.g. an actual kernel tree) from disk. The walk is
// serial (directory iteration order feeds the error list deterministically);
// file contents are read and ingested in parallel over a thread pool, with
// insertion in walk order, so the resulting SourceTree and error list are
// identical at every `jobs` value.

#ifndef REFSCAN_SUPPORT_FS_H_
#define REFSCAN_SUPPORT_FS_H_

#include <string>
#include <vector>

#include "src/support/source.h"

namespace refscan {

struct LoadOptions {
  // File extensions to load (C sources and headers by default).
  std::vector<std::string> extensions = {".c", ".h"};
  // Skip files larger than this (generated headers etc.); 0 = no limit.
  size_t max_file_bytes = 4 * 1024 * 1024;
  // Directory names skipped entirely at any depth.
  std::vector<std::string> skip_dirs = {".git", "build", "Documentation"};
  // Reader threads (0 = one per hardware thread, 1 = fully serial). The
  // loaded tree is identical at every value.
  size_t jobs = 0;
  // mmap file contents instead of reading them into heap strings
  // (DESIGN.md §5.15). The pages stay file-backed and evictable, so a
  // multi-MLOC tree's peak RSS tracks the scan's working set rather than
  // the tree size. Files mmap cannot serve (empty, exotic filesystems)
  // silently fall back to a plain read; the loaded text is identical
  // either way.
  bool use_mmap = false;
};

// One file the loader could not read. `path` is the tree-relative key the
// file would have had; `retries` counts re-read attempts (transient I/O
// failures are retried once with a bounded backoff before giving up). The
// CLI surfaces these as quarantined entries in the scan report.
struct LoadFailure {
  std::string path;
  std::string what;
  int retries = 0;
};

// Loader accounting. `files_retried` counts every file that consumed a
// transient-I/O re-read — including those whose retry then SUCCEEDED, which
// produce no LoadFailure and would otherwise be invisible. This is the same
// semantics as ScanStats::files_retried (retried ≠ degraded: only
// quarantined files are degraded), so the CLI can sum the two counters
// without double- or under-counting.
struct LoadStats {
  size_t files_loaded = 0;
  size_t files_failed = 0;
  size_t files_retried = 0;
};

// Recursively loads matching files under `root` into a SourceTree keyed by
// root-relative paths. Unreadable files are skipped; the failure list (if
// non-null) collects them in walk order — identical at every `jobs` value.
// Reads pass through the `fs.read` fault-injection site (faultinject.h) and
// the `stage.load` / `file.load` telemetry spans (telemetry.h).
SourceTree LoadSourceTreeFromDisk(const std::string& root, const LoadOptions& options = {},
                                  std::vector<LoadFailure>* failures = nullptr,
                                  LoadStats* stats = nullptr);

// Back-compat shim: formats each failure as "<path>: <what>".
SourceTree LoadSourceTreeFromDisk(const std::string& root, const LoadOptions& options,
                                  std::vector<std::string>* errors);

}  // namespace refscan

#endif  // REFSCAN_SUPPORT_FS_H_
