// Unix-domain socket transport with length-prefixed frames (DESIGN.md
// §5.13).
//
// Two fleet-scale features ride on this one primitive: sharded multi-process
// scanning (src/checkers/sharded) and the shared content-addressed cache
// server (`refscan cached`, src/cache/store). Both speak the same trivially
// parseable wire format — one frame is
//
//   [u32 payload length, little-endian] [u8 type] [payload bytes]
//
// — so a future resident scan service (ROADMAP item 1) can reuse the framing
// unchanged. Payload encoding is the cache layer's ByteWriter/ByteReader
// format (src/cache/serial.h): every length bounds-checked, corruption
// degrades to a protocol error, never UB.
//
// Error model: every call reports failure through a bool + optional
// std::string* out-param instead of throwing. Peers dying mid-conversation
// are an expected event (a crashed shard worker must degrade, not abort the
// scan), so sends use MSG_NOSIGNAL — a closed peer yields EPIPE, not a
// process-killing SIGPIPE — and receives treat a clean EOF at a frame
// boundary as its own distinct outcome (RecvOutcome::kClosed).

#ifndef REFSCAN_SUPPORT_IPC_H_
#define REFSCAN_SUPPORT_IPC_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace refscan {

// Owns a file descriptor; closes it on destruction. Moveable, not copyable.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { Reset(); }

  OwnedFd(OwnedFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset();

 private:
  int fd_ = -1;
};

// Frames larger than this are rejected on both send and receive: a garbage
// length prefix (corrupt peer, wrong protocol) must fail fast instead of
// provoking a multi-gigabyte allocation. 1 GiB comfortably covers a whole
// serialized shard of kernel-sized translation units.
inline constexpr uint32_t kMaxFrameBytes = 1u << 30;

// Creates, binds and listens on a Unix-domain stream socket at `path`
// (unlinking any stale socket file first). Returns an invalid OwnedFd and
// fills `error` on failure. `path` must fit sockaddr_un (~107 bytes).
OwnedFd UnixListen(const std::string& path, std::string* error = nullptr);

// Connects to the Unix-domain socket at `path`.
OwnedFd UnixConnect(const std::string& path, std::string* error = nullptr);

// Bounded reconnect policy shared by every IPC client (RemoteStore, the
// `scan --remote` client): jittered exponential backoff between connect
// attempts. The jitter is a deterministic hash of (jitter_seed, attempt) —
// not wall clock or rand() — so tests and replayed fault runs see the same
// delays; different clients decorrelate by seeding differently (pid, worker
// id). attempts <= 1 means a single try, no sleeping.
struct BackoffPolicy {
  int attempts = 5;
  uint32_t base_delay_ms = 10;  // delay before the first retry
  uint32_t max_delay_ms = 500;  // exponential growth cap
  uint64_t jitter_seed = 0;
};

// Delay before retry number `attempt` (0-based: the sleep between the first
// failed try and the second). Equal-jitter: half the capped exponential
// deterministically, half from the seed hash. Exposed for tests.
uint32_t BackoffDelayMs(const BackoffPolicy& policy, int attempt);

// UnixConnect with up to policy.attempts tries, sleeping BackoffDelayMs
// between them. The first attempt is immediate, so a healthy server costs
// nothing extra. Returns an invalid fd (and the last connect error) after
// the budget is exhausted.
OwnedFd ConnectWithRetry(const std::string& path, const BackoffPolicy& policy,
                         std::string* error = nullptr);

// Accepts one connection, waiting at most `timeout_ms` (0 = block forever).
// Returns an invalid fd on timeout or error.
OwnedFd UnixAccept(int listen_fd, int timeout_ms, std::string* error = nullptr);

// Writes one complete frame (length prefix + type byte + payload), looping
// over partial writes. Returns false on any error, including a peer that
// closed the connection (EPIPE — mapped from MSG_NOSIGNAL, never a signal).
bool SendFrame(int fd, uint8_t type, std::string_view payload, std::string* error = nullptr);

enum class RecvOutcome {
  kFrame,   // a complete frame was read
  kClosed,  // clean EOF before any byte of a new frame — peer finished
  kError,   // short read mid-frame, oversized length, or a socket error
};

// Reads one complete frame. `type` and `payload` are only valid on kFrame.
RecvOutcome RecvFrame(int fd, uint8_t& type, std::string& payload,
                      std::string* error = nullptr);

}  // namespace refscan

#endif  // REFSCAN_SUPPORT_IPC_H_
