// Shared scaffolding for the Unix-socket daemons (DESIGN.md §5.14).
//
// Both resident servers — the shared cache (`refscan cached`,
// src/cache/store) and the resident scan service (`refscan serve`,
// src/serve) — are an accept loop fanning connections out to threads, and
// both need the same two lifecycle moves:
//
//   Stop   tear everything down now (tests, destructors): SHUT_RDWR every
//          live connection, join.
//   Drain  the SIGTERM path: stop accepting, let requests already received
//          finish and flush their replies, wake idle readers with SHUT_RD
//          (reads fail, in-flight writes still go out — no client is ever
//          left holding a half-written frame), bound the wait, escalate to
//          SHUT_RDWR only past the deadline.
//
// ConnectionRegistry owns that bookkeeping: live fds, their threads, and a
// condition variable counting active connection bodies so the drain wait is
// a timed wait, not a thread join (std::thread cannot timed-join).
//
// Contract: Launch/Add are only called while the owner's accept loop runs;
// the owner stops accepting before WaitIdle/JoinAll, so the thread list is
// stable by the time anyone joins it.

#ifndef REFSCAN_SUPPORT_SERVER_H_
#define REFSCAN_SUPPORT_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace refscan {

class ConnectionRegistry {
 public:
  ConnectionRegistry() = default;
  ConnectionRegistry(const ConnectionRegistry&) = delete;
  ConnectionRegistry& operator=(const ConnectionRegistry&) = delete;

  // Tracks a connection's raw fd for ShutdownAll. The fd must outlive its
  // registration: Remove before the owning OwnedFd closes, so a shutdown
  // never lands on a recycled descriptor.
  void Add(int fd);
  void Remove(int fd);

  // Spawns and tracks one connection thread. `body` runs on the new thread;
  // its completion is what WaitIdle observes. A template because the bodies
  // capture move-only OwnedFds, which std::function cannot hold.
  template <typename Body>
  void Launch(Body&& body) {
    std::lock_guard<std::mutex> lock(mu_);
    ++active_;
    threads_.emplace_back([this, body = std::forward<Body>(body)]() mutable {
      body();
      std::lock_guard<std::mutex> done(mu_);
      --active_;
      idle_cv_.notify_all();
    });
  }

  // shutdown(2) every registered fd with `how` (SHUT_RD to drain — wakes
  // parked readers while replies still flush — or SHUT_RDWR to cut hard).
  void ShutdownAll(int how);

  // Waits until every launched body has returned, at most `timeout_ms`
  // (0 = no wait, just poll). True = all idle.
  bool WaitIdle(uint32_t timeout_ms);

  // Joins every launched thread. Call only after the owner stopped
  // launching; blocks until the bodies return (pair with ShutdownAll).
  void JoinAll();

  size_t live_connections() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::vector<int> fds_;
  std::vector<std::thread> threads_;
  size_t active_ = 0;
};

// The canonical graceful-drain sequence over a registry, shared by both
// daemons (the caller has already stopped its accept loop and closed the
// listener): SHUT_RD everything, wait up to `timeout_ms` for connection
// bodies to finish their in-flight work, escalate to SHUT_RDWR past the
// deadline, then join. Returns true when the drain finished inside the
// budget (no escalation needed).
bool DrainConnections(ConnectionRegistry& registry, uint32_t timeout_ms);

}  // namespace refscan

#endif  // REFSCAN_SUPPORT_SERVER_H_
